// Figure 9 — traffic map snapshots at 8:30 AM and 5:00 PM.
//
// Paper: on an intensive-participation day the system produces a city
// traffic map with five speed levels; the morning snapshot shows the two
// commuter corridors crawling (~20 km/h) while the evening is lighter, and
// the 8 routes cover >50% of the area's roads — far more than the consumer
// (Google-style) traffic layer, which covers only major arterials.
#include <algorithm>
#include <iostream>
#include <set>

#include "bench_common.h"
#include "common/table.h"
#include "core/google_indicator.h"

namespace bussense::bench {
namespace {

void print_snapshot(const TrafficServer& server, const TrafficMap& map,
                    const std::string& label) {
  print_banner(std::cout, "Figure 9 snapshot at " + label);
  Table hist({"speed level", "segments"});
  auto levels = map.level_histogram();
  for (SpeedLevel level :
       {SpeedLevel::kVerySlow, SpeedLevel::kSlow, SpeedLevel::kMedium,
        SpeedLevel::kFast, SpeedLevel::kVeryFast}) {
    hist.add_row({to_string(level), std::to_string(levels[level])});
  }
  hist.print(std::cout);
  std::cout << "live segments: " << map.segments().size()
            << ", length-weighted mean speed: " << fmt(map.mean_speed_kmh(), 1)
            << " km/h, live coverage: "
            << fmt(100.0 * map.coverage_ratio(server.catalog()), 1) << "%\n";
  std::cout << map.render_ascii(server.catalog(), 100, 24);
}

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  Rng rng(9);
  // The paper's incentivised phase: participants ride intensively.
  auto day = bed.world.simulate_day(0, 3.0, rng);
  std::sort(day.trips.begin(), day.trips.end(),
            [](const AnnotatedTrip& a, const AnnotatedTrip& b) {
              return a.upload.samples.back().time < b.upload.samples.back().time;
            });
  bool morning_printed = false;
  for (const AnnotatedTrip& trip : day.trips) {
    const SimTime end = trip.upload.samples.back().time;
    if (!morning_printed && end > at_clock(0, 8, 35)) {
      server.advance_time(at_clock(0, 8, 35));
      print_snapshot(server, server.snapshot(at_clock(0, 8, 30), 2.5 * kHour),
                     "08:30");
      morning_printed = true;
    }
    server.process_trip(trip.upload);
  }
  server.advance_time(at_clock(0, 17, 5));
  print_snapshot(server, server.snapshot(at_clock(0, 17, 0), 2.5 * kHour),
                 "17:00");

  // Bus-network coverage vs the consumer traffic layer (major arterials).
  print_banner(std::cout, "Figure 9(c): coverage vs consumer traffic layer");
  double arterial_len = 0.0;
  for (const RoadLink& link : city.network().links()) {
    if (link.road_class == RoadClass::kMajorArterial) {
      arterial_len += link.length();
    }
  }
  Table cov({"layer", "road length covered (%)"});
  cov.add_row("bussense (8 bus routes)", {100.0 * city.coverage_ratio()}, 1);
  cov.add_row("consumer layer (major arterials only)",
              {100.0 * arterial_len / city.network().total_length()}, 1);
  cov.print(std::cout);
  std::cout << "(paper: bus-route coverage > 50% of roads, well above the "
               "consumer layer)\n";
  std::cout << "trips processed: " << server.trips_processed() << "\n";
  // The morning commuter corridors crawl: report the slowest morning level
  // count explicitly (the paper's 8:30 AM story).
}

void BM_ProcessTrip(benchmark::State& state) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  Rng rng(10);
  const BusRoute& route = *bed.world.city().route_by_name("99", 0);
  const AnnotatedTrip trip =
      bed.world.simulate_single_trip(route, 2, 16, at_clock(0, 9, 0), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.process_trip(trip.upload));
  }
}
BENCHMARK(BM_ProcessTrip);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
