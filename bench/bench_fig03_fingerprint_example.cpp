// Figure 3 — an example area with the cellular fingerprints of ~15 stops.
//
// Paper: ordered cell-ID sets of 15 bus stops in one corridor; the sets are
// highly distinct between stops, and the stops segment the road network.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/matching.h"

namespace bussense::bench {
namespace {

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  Rng rng(3);
  print_banner(std::cout,
               "Figure 3: example corridor fingerprints (route 79, first 15 stops)");
  const BusRoute* route = city.route_by_name("79", 0);
  Table t({"stop", "position (m)", "cell IDs by descending RSS"});
  std::vector<Fingerprint> fps;
  const std::size_t n = std::min<std::size_t>(15, route->stop_count());
  for (std::size_t i = 0; i < n; ++i) {
    const BusStop& stop = city.stop(route->stops()[i].stop);
    const Fingerprint fp = bed.world.scan_stop(stop.id, rng, false);
    fps.push_back(fp);
    t.add_row({stop.name,
               fmt(stop.position.x, 0) + "," + fmt(stop.position.y, 0),
               to_string(fp)});
  }
  t.print(std::cout);

  // Pairwise similarity of neighbouring stops in the example.
  Table sim({"pair", "similarity", "common cells"});
  for (std::size_t i = 0; i + 1 < fps.size(); ++i) {
    sim.add_row({"stop " + std::to_string(i) + " vs " + std::to_string(i + 1),
                 fmt(similarity(fps[i], fps[i + 1]), 2),
                 std::to_string(common_cell_count(fps[i], fps[i + 1]))});
  }
  sim.print(std::cout);
  std::cout << "(paper: neighbouring sets differ strongly; high-similarity "
               "pairs are opposite-side twins)\n";
}

void BM_FingerprintToString(benchmark::State& state) {
  const Fingerprint fp{{2134, 3486, 3893, 1122, 2112, 3484, 1129}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bussense::to_string(fp));
  }
}
BENCHMARK(BM_FingerprintToString);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
