// Extension E1 (paper future work) — region-level traffic inference.
//
// "Deriving the overall traffic of a region from the bus covered road
// segments": the traffic map observes the bus-covered ~50% of road length;
// the region inference extends it to every link by congestion transfer.
// This bench holds the uncovered links out (their ground truth is known to
// the simulator only) and scores the inference against naive baselines.
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/region_inference.h"

namespace bussense::bench {
namespace {

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  Rng rng(61);
  auto day = bed.world.simulate_day(0, 3.0, rng);
  for (const AnnotatedTrip& trip : day.trips) server.process_trip(trip.upload);

  const RegionInference inference(city, server.catalog());
  print_banner(std::cout,
               "Extension E1: region-level inference on uncovered links");
  Table t({"time", "links inferred", "MAE inferred (km/h)",
           "MAE free-speed baseline", "MAE global-mean baseline"});
  for (const int hour : {9, 13, 18}) {
    const SimTime now = at_clock(0, hour, 0);
    server.advance_time(now);
    const TrafficMap map = server.snapshot(now, 2.0 * kHour);
    const auto estimates = inference.infer(map);

    // Global mean of observed speeds (the crudest city-wide summary).
    RunningStats observed;
    for (const LinkTrafficEstimate& e : estimates) {
      if (e.observed) observed.add(e.speed_kmh);
    }
    RunningStats err_inferred, err_free, err_mean;
    for (const LinkTrafficEstimate& e : estimates) {
      if (e.observed) continue;
      const double truth = bed.world.traffic().car_speed_kmh(e.link, now);
      const double free = city.network().link(e.link).free_speed_kmh;
      err_inferred.add(std::abs(e.speed_kmh - truth));
      err_free.add(std::abs(free - truth));
      err_mean.add(std::abs(observed.mean() - truth));
    }
    t.add_row(format_clock(now),
              {static_cast<double>(err_inferred.count()), err_inferred.mean(),
               err_free.mean(), err_mean.mean()});
  }
  t.print(std::cout);
  std::cout << "(congestion transfer should beat both baselines, most "
               "clearly at peak hours)\n";
}

void BM_RegionInfer(benchmark::State& state) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  Rng rng(62);
  auto day = bed.world.simulate_day(0, 1.0, rng);
  for (const AnnotatedTrip& trip : day.trips) server.process_trip(trip.upload);
  server.advance_time(at_clock(0, 20, 0));
  const TrafficMap map = server.snapshot(at_clock(0, 18, 0), 2.0 * kHour);
  const RegionInference inference(bed.world.city(), server.catalog());
  for (auto _ : state) {
    benchmark::DoNotOptimize(inference.infer(map));
  }
}
BENCHMARK(BM_RegionInfer)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
