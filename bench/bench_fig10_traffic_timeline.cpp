// Figure 10 — estimated vs official traffic on two road segments over a day.
//
// Paper: segments A and B, 9:30–19:30, 5-minute windows. v_A (bus-derived
// automobile speed) tracks v_T (taxi AVL official data) closely at low
// speeds and sits below it when traffic is light (buses cap out; taxis
// drive aggressively); the Google-style indicator only gives 4 coarse
// levels.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/google_indicator.h"

namespace bussense::bench {
namespace {

struct Segment {
  const BusRoute* route = nullptr;
  SegmentKey key;
  int from_index = -1;
  SpanInfo info;
};

/// Picks an adjacent stop pair of `route` whose links all satisfy `pred`.
template <typename Pred>
Segment pick_segment(const City& city, const SegmentCatalog& catalog,
                     const std::string& route_name, Pred pred) {
  const BusRoute* route = city.route_by_name(route_name, 0);
  for (std::size_t i = 0; i + 1 < route->stop_count(); ++i) {
    const SegmentKey key{city.effective_stop(route->stops()[i].stop),
                         city.effective_stop(route->stops()[i + 1].stop)};
    const SpanInfo* info = catalog.adjacent(key);
    if (!info) continue;
    bool ok = !info->links.empty();
    for (const auto& [link, len] : info->links) {
      (void)len;
      ok = ok && pred(city.network().link(link));
    }
    if (ok) return Segment{route, key, static_cast<int>(i), *info};
  }
  throw std::runtime_error("no segment matches predicate on " + route_name);
}

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  const SegmentCatalog& catalog = server.catalog();
  Rng rng(10);

  // Segment A: commuter corridor (morning congestion); B: major arterial.
  const Segment seg_a = pick_segment(
      city, catalog, "243", [](const RoadLink& l) { return l.commuter_corridor; });
  const Segment seg_b = pick_segment(city, catalog, "79", [](const RoadLink& l) {
    return l.road_class == RoadClass::kMajorArterial;
  });

  // Dedicated riders cross both segments all day (the paper's incentivised
  // participants), one bus per ~10 minutes.
  std::vector<AnnotatedTrip> trips;
  for (int k = 0;; ++k) {
    const SimTime depart = at_clock(0, 8, 50) + k * 600.0;
    if (depart > at_clock(0, 19, 30)) break;
    trips.push_back(bed.world.simulate_single_trip(
        *seg_a.route, std::max(0, seg_a.from_index - 2),
        std::min<int>(static_cast<int>(seg_a.route->stop_count()) - 1,
                      seg_a.from_index + 3),
        depart, rng));
    trips.push_back(bed.world.simulate_single_trip(
        *seg_b.route, std::max(0, seg_b.from_index - 2),
        std::min<int>(static_cast<int>(seg_b.route->stop_count()) - 1,
                      seg_b.from_index + 3),
        depart + 120.0, rng));
  }
  std::sort(trips.begin(), trips.end(),
            [](const AnnotatedTrip& a, const AnnotatedTrip& b) {
              return a.upload.samples.back().time < b.upload.samples.back().time;
            });

  print_banner(std::cout,
               "Figure 10: v_A vs v_T vs Google-style indicator (9:30-19:30)");
  std::cout << "segment A: commuter corridor on route 243 ("
            << fmt(seg_a.info.length_m, 0) << " m), segment B: major arterial "
            << "on route 79 (" << fmt(seg_b.info.length_m, 0) << " m)\n";
  Table t({"time", "A v_A", "A v_T", "A google", "B v_A", "B v_T", "B google"});
  std::size_t cursor = 0;
  for (SimTime now = at_clock(0, 9, 30); now <= at_clock(0, 19, 30);
       now += 15 * kMinute) {
    while (cursor < trips.size() &&
           trips[cursor].upload.samples.back().time <= now) {
      server.process_trip(trips[cursor].upload);
      ++cursor;
    }
    server.advance_time(now);
    auto row = [&](const Segment& seg) -> std::pair<std::string, std::string> {
      const auto fused = server.fusion().query(seg.key);
      std::string va = "-";
      if (fused && now - fused->updated_at < 30 * kMinute) {
        va = fmt(fused->mean_kmh, 1);
      }
      const double vt = bed.world.taxis().official_speed_over(
          *seg.route, seg.info.arc_from, seg.info.arc_to, now);
      return {va, fmt(vt, 1)};
    };
    const auto [va_a, vt_a] = row(seg_a);
    const auto [va_b, vt_b] = row(seg_b);
    t.add_row({format_clock(now), va_a, vt_a,
               to_string(google_level(std::stod(vt_a))), va_b, vt_b,
               to_string(google_level(std::stod(vt_b)))});
  }
  t.print(std::cout);
  std::cout << "(paper: v_A matches v_T when traffic is slow; v_A sits below "
               "v_T at high speed — buses cap out while taxis run fast)\n";
}

void BM_FusionQuery(benchmark::State& state) {
  SpeedFusion fusion;
  SpeedEstimate e;
  e.segment = SegmentKey{1, 2};
  e.att_speed_kmh = 40.0;
  e.time = 10.0;
  fusion.add(e);
  fusion.flush_until(1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fusion.query(SegmentKey{1, 2}));
  }
}
BENCHMARK(BM_FusionQuery);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
