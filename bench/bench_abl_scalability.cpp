// Ablation A4 — backend scalability.
//
// The paper argues the crowdsourcing design scales to wider monitoring
// fields because the server does per-trip work against a per-city stop
// database. This bench measures server throughput (trips/second) as the
// city (and thus the database) grows, and per-stage costs.
#include <chrono>
#include <iostream>
#include <thread>

#include "bench_common.h"
#include "common/table.h"
#include "core/concurrent_server.h"

namespace bussense::bench {
namespace {

struct SizedWorld {
  std::unique_ptr<World> world;
  StopDatabase database;
  std::vector<AnnotatedTrip> trips;
};

SizedWorld make_world(double width, double height,
                      std::vector<std::string> routes, std::uint64_t seed) {
  SizedWorld out;
  WorldConfig cfg;
  cfg.city.width_m = width;
  cfg.city.height_m = height;
  cfg.city.route_names = std::move(routes);
  cfg.seed = seed;
  out.world = std::make_unique<World>(cfg);
  Rng survey(2024);
  out.database = build_stop_database(
      out.world->city(),
      [&](StopId stop, int run) {
        return out.world->scan_stop(stop, survey, run % 2 == 1);
      },
      3);
  Rng rng(seed + 1);
  const auto day = out.world->simulate_day(0, 2.0, rng);
  out.trips = day.trips;
  return out;
}

std::vector<SizedWorld>& worlds() {
  static std::vector<SizedWorld> w = [] {
    std::vector<SizedWorld> v;
    v.push_back(make_world(3500, 2000, {"79", "243"}, 7));
    v.push_back(make_world(7000, 4000, {"79", "99", "241", "243"}, 8));
    v.push_back(make_world(7000, 4000,
                           {"79", "99", "241", "243", "252", "257", "182", "31"},
                           9));
    return v;
  }();
  return w;
}

void report() {
  print_banner(std::cout, "Ablation A4: backend throughput vs city size");
  Table t({"city", "stops in DB", "trips", "trips/s (single thread)"});
  const std::vector<std::string> labels = {"quarter city / 2 routes",
                                           "full city / 4 routes",
                                           "full city / 8 routes"};
  for (std::size_t i = 0; i < worlds().size(); ++i) {
    SizedWorld& w = worlds()[i];
    TrafficServer server(w.world->city(), w.database);
    const auto start = std::chrono::steady_clock::now();
    for (const AnnotatedTrip& trip : w.trips) server.process_trip(trip.upload);
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    t.add_row({labels[i], std::to_string(w.database.size()),
               std::to_string(w.trips.size()),
               fmt(w.trips.size() / std::max(elapsed, 1e-9), 0)});
  }
  t.print(std::cout);
  std::cout << "(a 2-month 22-participant deployment is ~100 trips/day — "
               "many orders of magnitude below single-core capacity)\n";

  // Concurrent ingestion: the analysis stage is lock-free against immutable
  // state; only the fusion fold takes a mutex.
  print_banner(std::cout, "Ablation A4b: concurrent ingestion scaling");
  SizedWorld& big = worlds()[2];
  Table ct({"threads", "trips/s"});
  for (const int threads : {1, 2, 4}) {
    ConcurrentTrafficServer server(big.world->city(), big.database);
    const auto start = std::chrono::steady_clock::now();
    const int rounds = 4;  // replay the day several times for stable timing
    std::vector<std::thread> pool;
    for (int t_id = 0; t_id < threads; ++t_id) {
      pool.emplace_back([&, t_id] {
        for (int r = 0; r < rounds; ++r) {
          for (std::size_t i = static_cast<std::size_t>(t_id);
               i < big.trips.size(); i += static_cast<std::size_t>(threads)) {
            server.process_trip(big.trips[i].upload);
          }
        }
      });
    }
    for (std::thread& th : pool) th.join();
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    ct.add_row({std::to_string(threads),
                fmt(rounds * big.trips.size() / std::max(elapsed, 1e-9), 0)});
  }
  ct.print(std::cout);
  std::cout << "(analysis is lock-free; scaling tracks the available cores — "
               "on a single-core host the numbers stay flat)\n";
}

void BM_ServerProcessTrip(benchmark::State& state) {
  SizedWorld& w = worlds()[static_cast<std::size_t>(state.range(0))];
  TrafficServer server(w.world->city(), w.database);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.process_trip(w.trips[i % w.trips.size()].upload));
    ++i;
  }
}
BENCHMARK(BM_ServerProcessTrip)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_SurveyDatabaseBuild(benchmark::State& state) {
  const Testbed& bed = testbed();
  for (auto _ : state) {
    Rng survey(1);
    benchmark::DoNotOptimize(build_stop_database(
        bed.world.city(),
        [&](StopId stop, int) { return bed.world.scan_stop(stop, survey); },
        2));
  }
}
BENCHMARK(BM_SurveyDatabaseBuild)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
