// Ablation A4 — backend scalability.
//
// The paper argues the crowdsourcing design scales to wider monitoring
// fields because the server does per-trip work against a per-city stop
// database. This bench measures server throughput (trips/second) as the
// city (and thus the database) grows, the effect of the inverted cell-ID
// index on matcher throughput (A4c), and concurrent ingestion scaling over
// 1/2/4/8 threads (A4b). Besides the human-readable tables it emits
// BENCH_scalability.json so future PRs can track the perf trajectory.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "common/table.h"
#include "core/concurrent_server.h"

namespace bussense::bench {
namespace {

struct SizedWorld {
  std::unique_ptr<World> world;
  StopDatabase database;
  std::vector<AnnotatedTrip> trips;
};

SizedWorld make_world(double width, double height,
                      std::vector<std::string> routes, std::uint64_t seed) {
  SizedWorld out;
  WorldConfig cfg;
  cfg.city.width_m = width;
  cfg.city.height_m = height;
  cfg.city.route_names = std::move(routes);
  cfg.seed = seed;
  out.world = std::make_unique<World>(cfg);
  Rng survey(2024);
  out.database = build_stop_database(
      out.world->city(),
      [&](StopId stop, int run) {
        return out.world->scan_stop(stop, survey, run % 2 == 1);
      },
      3);
  // The ingest workload comes from the deterministic parallel trip driver:
  // bit-identical at any thread count, so the bench input stays stable while
  // fixture construction uses every core.
  ThreadPool pool(std::thread::hardware_concurrency());
  const auto specs = out.world->make_trip_specs(0, 240, seed + 1);
  out.trips = out.world->simulate_trips(specs, seed + 1, &pool);
  return out;
}

std::vector<SizedWorld>& worlds() {
  static std::vector<SizedWorld> w = [] {
    std::vector<SizedWorld> v;
    v.push_back(make_world(3500, 2000, {"79", "243"}, 7));
    v.push_back(make_world(7000, 4000, {"79", "99", "241", "243"}, 8));
    v.push_back(make_world(7000, 4000,
                           {"79", "99", "241", "243", "252", "257", "182", "31"},
                           9));
    return v;
  }();
  return w;
}

// Replays `trips` through any TrafficIngestor front end and returns
// trips/second — the interface is the whole point: the serial server, the
// concurrent server and the async ingest service all time through the same
// harness.
double replay_trips_per_s(TrafficIngestor& server,
                          const std::vector<AnnotatedTrip>& trips) {
  const auto start = std::chrono::steady_clock::now();
  for (const AnnotatedTrip& trip : trips) server.process_trip(trip.upload);
  return trips.size() / std::max(seconds_since(start), 1e-9);
}

void report() {
  JsonReport json;

  print_banner(std::cout, "Ablation A4: backend throughput vs city size");
  Table t({"city", "stops in DB", "trips", "trips/s (single thread)"});
  const std::vector<std::string> labels = {"quarter city / 2 routes",
                                           "full city / 4 routes",
                                           "full city / 8 routes"};
  {
    std::ostringstream rows;
    for (std::size_t i = 0; i < worlds().size(); ++i) {
      SizedWorld& w = worlds()[i];
      TrafficServer server(w.world->city(), w.database);
      const double tps = replay_trips_per_s(server, w.trips);
      t.add_row({labels[i], std::to_string(w.database.size()),
                 std::to_string(w.trips.size()), fmt(tps, 0)});
      if (i) rows << ", ";
      rows << "{\"label\": \"" << labels[i]
           << "\", \"stops\": " << w.database.size()
           << ", \"trips\": " << w.trips.size()
           << ", \"trips_per_s\": " << num(tps) << "}";
    }
    json.field("\"single_thread\": [" + rows.str() + "]");
  }
  t.print(std::cout);
  std::cout << "(a 2-month 22-participant deployment is ~100 trips/day — "
               "many orders of magnitude below single-core capacity)\n";

  // Indexed vs brute-force matching on the largest world: the inverted
  // cell-ID index only aligns records sharing >= ceil(γ / match_score)
  // cell IDs with the sample, so per-sample cost tracks the candidate
  // count, not the database size.
  print_banner(std::cout, "Ablation A4c: indexed vs brute-force matching");
  {
    SizedWorld& big = worlds()[2];
    std::vector<Fingerprint> samples;
    for (const AnnotatedTrip& trip : big.trips) {
      for (const CellularSample& s : trip.upload.samples) {
        if (!s.fingerprint.empty()) samples.push_back(s.fingerprint);
      }
    }
    StopMatcherConfig brute_cfg;
    brute_cfg.accel.use_index = false;
    const StopMatcher indexed(big.database);
    const StopMatcher brute(big.database, brute_cfg);

    // Work accounting (one instrumented pass, untimed).
    double total_candidates = 0.0, total_aligned = 0.0;
    for (const Fingerprint& fp : samples) {
      MatchStats stats;
      (void)indexed.match(fp, &stats);
      total_candidates += static_cast<double>(stats.gamma_candidates);
      total_aligned += static_cast<double>(stats.records_accepted);
    }

    const auto time_matcher = [&](const StopMatcher& matcher) {
      const int rounds = 3;
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < rounds; ++r) {
        for (const Fingerprint& fp : samples) {
          benchmark::DoNotOptimize(matcher.match(fp));
        }
      }
      return rounds * samples.size() / std::max(seconds_since(start), 1e-9);
    };
    const double brute_sps = time_matcher(brute);
    const double indexed_sps = time_matcher(indexed);
    const double speedup = indexed_sps / std::max(brute_sps, 1e-9);
    const double cand_per_sample = total_candidates / samples.size();
    const double aligned_per_sample = total_aligned / samples.size();

    Table mt({"matcher", "samples/s", "candidates/sample", "DP runs/sample"});
    mt.add_row({"brute-force scan", fmt(brute_sps, 0),
                std::to_string(big.database.size()),
                std::to_string(big.database.size())});
    mt.add_row({"inverted index", fmt(indexed_sps, 0), fmt(cand_per_sample, 2),
                fmt(aligned_per_sample, 2)});
    mt.print(std::cout);
    std::cout << "index speedup: " << fmt(speedup, 1) << "x over "
              << big.database.size() << " stops, " << samples.size()
              << " samples\n";
    json.field("\"matcher\": {\"records\": " + std::to_string(big.database.size()) +
               ", \"samples\": " + std::to_string(samples.size()) +
               ", \"brute_samples_per_s\": " + num(brute_sps) +
               ", \"indexed_samples_per_s\": " + num(indexed_sps) +
               ", \"speedup\": " + num(speedup) +
               ", \"candidates_per_sample\": " + num(cand_per_sample) +
               ", \"aligned_per_sample\": " + num(aligned_per_sample) + "}");
  }

  // Per-trip latency distribution (single thread, largest world).
  {
    SizedWorld& big = worlds()[2];
    TrafficServer server(big.world->city(), big.database);
    std::vector<double> us;
    us.reserve(big.trips.size());
    for (const AnnotatedTrip& trip : big.trips) {
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(server.process_trip(trip.upload));
      us.push_back(seconds_since(start) * 1e6);
    }
    std::sort(us.begin(), us.end());
    const double p50 = percentile(us, 0.50);
    const double p99 = percentile(us, 0.99);
    std::cout << "per-trip latency (full city / 8 routes): p50 " << fmt(p50, 1)
              << " us, p99 " << fmt(p99, 1) << " us\n";
    json.field("\"per_trip_latency_us\": {\"p50\": " + num(p50) +
               ", \"p99\": " + num(p99) + "}");
  }

  // Concurrent ingestion: analysis is lock-free against immutable state;
  // estimates are batched per thread and folded into striped fusion locks.
  print_banner(std::cout, "Ablation A4b: concurrent ingestion scaling");
  {
    SizedWorld& big = worlds()[2];
    Table ct({"threads", "trips/s", "scaling"});
    std::ostringstream rows;
    double base_tps = 0.0;
    bool first_row = true;
    for (const int threads : {1, 2, 4, 8}) {
      ConcurrentTrafficServer concurrent(big.world->city(), big.database);
      TrafficIngestor& server = concurrent;  // workers only see the interface
      const auto start = std::chrono::steady_clock::now();
      const int rounds = 4;  // replay the day several times for stable timing
      std::vector<std::thread> pool;
      for (int t_id = 0; t_id < threads; ++t_id) {
        pool.emplace_back([&, t_id] {
          for (int r = 0; r < rounds; ++r) {
            for (std::size_t i = static_cast<std::size_t>(t_id);
                 i < big.trips.size(); i += static_cast<std::size_t>(threads)) {
              server.process_trip(big.trips[i].upload);
            }
          }
        });
      }
      for (std::thread& th : pool) th.join();
      const double elapsed = seconds_since(start);
      const double tps = rounds * big.trips.size() / std::max(elapsed, 1e-9);
      if (threads == 1) base_tps = tps;
      ct.add_row({std::to_string(threads), fmt(tps, 0),
                  fmt(tps / std::max(base_tps, 1e-9), 2) + "x"});
      if (!first_row) rows << ", ";
      first_row = false;
      rows << "{\"threads\": " << threads << ", \"trips_per_s\": " << num(tps)
           << ", \"scaling\": " << num(tps / std::max(base_tps, 1e-9)) << "}";
    }
    ct.print(std::cout);
    std::cout << "(striped fusion locks + per-thread batching; scaling tracks "
                 "the available cores — on a single-core host it stays flat)\n";
    json.field("\"ingestion\": [" + rows.str() + "]");
  }

  json.write("BENCH_scalability.json");
  std::cout << "wrote BENCH_scalability.json\n";
}

void BM_ServerProcessTrip(benchmark::State& state) {
  SizedWorld& w = worlds()[static_cast<std::size_t>(state.range(0))];
  TrafficServer server(w.world->city(), w.database);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        server.process_trip(w.trips[i % w.trips.size()].upload));
    ++i;
  }
}
BENCHMARK(BM_ServerProcessTrip)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_MatcherIndexed(benchmark::State& state) {
  SizedWorld& w = worlds()[2];
  StopMatcherConfig cfg;
  cfg.accel.use_index = state.range(0) != 0;
  const StopMatcher matcher(w.database, cfg);
  std::vector<Fingerprint> samples;
  for (const AnnotatedTrip& trip : w.trips) {
    for (const CellularSample& s : trip.upload.samples) {
      if (!s.fingerprint.empty()) samples.push_back(s.fingerprint);
    }
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(samples[i % samples.size()]));
    ++i;
  }
}
BENCHMARK(BM_MatcherIndexed)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_SurveyDatabaseBuild(benchmark::State& state) {
  const Testbed& bed = testbed();
  for (auto _ : state) {
    Rng survey(1);
    benchmark::DoNotOptimize(build_stop_database(
        bed.world.city(),
        [&](StopId stop, int) { return bed.world.scan_stop(stop, survey); },
        2));
  }
}
BENCHMARK(BM_SurveyDatabaseBuild)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
