// Ablation A2 — Bayesian fusion (Eq. 4) vs naive combiners.
//
// The paper fuses repeated per-segment estimates with a precision-weighted
// Bayesian update on a 5-minute period. This ablation compares it against
// "last report wins" and "grand mean of everything so far" on tracking the
// ground-truth segment speed through a day.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"

namespace bussense::bench {
namespace {

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  Rng rng(31);
  const auto day = bed.world.simulate_day(0, 3.0, rng);

  // Collect the raw per-segment estimates in time order.
  std::vector<SpeedEstimate> estimates;
  for (const AnnotatedTrip& trip : day.trips) {
    const auto report = server.process_trip(trip.upload);
    estimates.insert(estimates.end(), report.estimates.begin(),
                     report.estimates.end());
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const SpeedEstimate& a, const SpeedEstimate& b) {
              return a.time < b.time;
            });

  // Replay them through the three combiners, scoring each query against the
  // ground truth at the query instant.
  struct Cmp {
    bool operator()(const SegmentKey& a, const SegmentKey& b) const {
      return a.from < b.from || (a.from == b.from && a.to < b.to);
    }
  };
  SpeedFusion bayesian;
  std::map<SegmentKey, double, Cmp> last_report;
  std::map<SegmentKey, std::pair<double, int>, Cmp> grand_mean;
  RunningStats err_bayes, err_last, err_mean;
  std::size_t cursor = 0;
  for (SimTime now = at_clock(0, 8, 0); now <= at_clock(0, 20, 0);
       now += 10 * kMinute) {
    while (cursor < estimates.size() && estimates[cursor].time <= now) {
      const SpeedEstimate& e = estimates[cursor];
      bayesian.add(e);
      last_report[e.segment] = e.att_speed_kmh;
      auto& [sum, count] = grand_mean[e.segment];
      sum += e.att_speed_kmh;
      ++count;
      ++cursor;
    }
    bayesian.flush_until(now);
    for (const auto& [key, fused] : bayesian.all()) {
      if (now - fused.updated_at > 30 * kMinute) continue;
      const SpanInfo* info = server.catalog().adjacent(key);
      if (!info) continue;
      const double truth = bed.world.traffic().mean_car_speed_kmh(
          city.route(info->route), info->arc_from, info->arc_to, now);
      err_bayes.add(std::abs(fused.mean_kmh - truth));
      err_last.add(std::abs(last_report.at(key) - truth));
      const auto& [sum, count] = grand_mean.at(key);
      err_mean.add(std::abs(sum / count - truth));
    }
  }

  print_banner(std::cout, "Ablation A2: estimate fusion strategies");
  Table t({"combiner", "mean |error| (km/h)", "queries"});
  t.add_row("Bayesian Eq. 4 (T = 5 min)",
            {err_bayes.mean(), static_cast<double>(err_bayes.count())});
  t.add_row("last report wins",
            {err_last.mean(), static_cast<double>(err_last.count())});
  t.add_row("grand mean of all reports",
            {err_mean.mean(), static_cast<double>(err_mean.count())});
  t.print(std::cout);
  std::cout << "(expected: Eq. 4 beats the grand mean on tracking the daily "
               "congestion cycle and smooths single-report noise)\n";
}

void BM_FusionAddFlush(benchmark::State& state) {
  SpeedEstimate e;
  e.segment = SegmentKey{1, 2};
  e.att_speed_kmh = 42.0;
  double t = 0.0;
  SpeedFusion fusion;
  for (auto _ : state) {
    e.time = t;
    fusion.add(e);
    fusion.flush_until(t + 600.0);
    t += 300.0;
  }
}
BENCHMARK(BM_FusionAddFlush);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
