// Table III — phone power consumption by sensor configuration (mW).
//
// Paper (Monsoon monitor, 10-minute sessions, screen off):
//   HTC Sensation:  70 / 72 / 340 / 82 / 447
//   Nexus One:      84 / 85 / 333 / 96 / 443
// for no sensors / cellular 1 Hz / GPS / cellular+mic(Goertzel) /
// GPS+mic(Goertzel). Cellular sampling is ~2 mW; GPS is ~270 mW.
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "sensing/power_model.h"

namespace bussense::bench {
namespace {

void report() {
  print_banner(std::cout, "Table III: power consumption comparison (mW)");
  const PowerModel power;
  Rng rng(31);
  const std::vector<SensorConfig> configs = {
      SensorConfig::kNoSensors, SensorConfig::kCellular1Hz, SensorConfig::kGps,
      SensorConfig::kCellularMicGoertzel, SensorConfig::kGpsMicGoertzel};
  Table t({"sensor setting", "HTC Sensation", "Nexus One", "paper HTC",
           "paper Nexus"});
  const std::vector<std::pair<std::string, std::string>> paper = {
      {"70", "84"}, {"72", "85"}, {"340", "333"}, {"82", "96"}, {"447", "443"}};
  const PhoneProfile htc = htc_sensation_profile();
  const PhoneProfile nexus = nexus_one_profile();
  for (std::size_t i = 0; i < configs.size(); ++i) {
    // Simulated 10-minute Monsoon sessions, mean (relative std).
    RunningStats h, n;
    for (int s = 0; s < 20; ++s) {
      h.add(power.measure_session_mw(htc, configs[i], 600.0, rng));
      n.add(power.measure_session_mw(nexus, configs[i], 600.0, rng));
    }
    auto cell = [](const RunningStats& s) {
      return fmt(s.mean(), 0) + " (" + fmt(100.0 * s.stddev() / s.mean(), 0) +
             "%)";
    };
    t.add_row({to_string(configs[i]), cell(h), cell(n), paper[i].first,
               paper[i].second});
  }
  t.print(std::cout);

  print_banner(std::cout, "Section IV-D: Goertzel vs FFT app power");
  Table g({"front end", "DSP MAC/s", "CPU power HTC (mW)",
           "app total HTC (mW)"});
  g.add_row({"Goertzel (M=2 tones)", fmt(power.dsp_mac_rate(false), 0),
             fmt(power.dsp_power_mw(htc, false), 1),
             fmt(power.mean_power_mw(htc, SensorConfig::kCellularMicGoertzel), 1)});
  g.add_row({"FFT (full spectrum)", fmt(power.dsp_mac_rate(true), 0),
             fmt(power.dsp_power_mw(htc, true), 1),
             fmt(power.mean_power_mw(htc, SensorConfig::kCellularMicFft), 1)});
  g.print(std::cout);
  std::cout << "saving from Goertzel: "
            << fmt(power.mean_power_mw(htc, SensorConfig::kCellularMicFft) -
                       power.mean_power_mw(htc,
                                           SensorConfig::kCellularMicGoertzel),
                   1)
            << " mW (paper: ~60 mW; see EXPERIMENTS.md for the OCR note)\n";
}

void BM_PowerSession(benchmark::State& state) {
  const PowerModel power;
  const PhoneProfile htc = htc_sensation_profile();
  Rng rng(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(power.measure_session_mw(
        htc, SensorConfig::kGpsMicGoertzel, 600.0, rng));
  }
}
BENCHMARK(BM_PowerSession);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
