#include "bench_common.h"

namespace bussense::bench {

const Testbed& testbed() {
  static const Testbed bed = [] {
    Testbed b;
    Rng survey_rng(2024);
    b.database = build_stop_database(
        b.world.city(),
        [&](StopId stop, int run) {
          return b.world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
    return b;
  }();
  return bed;
}

const std::vector<std::string>& figure2_routes() {
  static const std::vector<std::string> kRoutes = {"79", "99", "243", "252",
                                                   "257"};
  return kRoutes;
}

int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bussense::bench
