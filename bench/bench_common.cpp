#include "bench_common.h"

#ifndef BUSSENSE_GIT_DESCRIBE
#define BUSSENSE_GIT_DESCRIBE "unknown"
#endif
#ifndef BUSSENSE_BUILD_SIMD
#define BUSSENSE_BUILD_SIMD 0
#endif
#ifndef BUSSENSE_BUILD_NATIVE
#define BUSSENSE_BUILD_NATIVE 0
#endif
#ifndef BUSSENSE_BUILD_SANITIZE
#define BUSSENSE_BUILD_SANITIZE ""
#endif

namespace bussense::bench {

std::string build_stanza() {
  std::ostringstream os;
  os << "\"build\": {\"git\": \"" << BUSSENSE_GIT_DESCRIBE << "\", "
     << "\"simd\": " << (BUSSENSE_BUILD_SIMD ? "true" : "false") << ", "
     << "\"native\": " << (BUSSENSE_BUILD_NATIVE ? "true" : "false") << ", "
     << "\"sanitize\": \"" << BUSSENSE_BUILD_SANITIZE << "\"}";
  return os.str();
}

const Testbed& testbed() {
  static const Testbed bed = [] {
    Testbed b;
    Rng survey_rng(2024);
    b.database = build_stop_database(
        b.world.city(),
        [&](StopId stop, int run) {
          return b.world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
    return b;
  }();
  return bed;
}

const std::vector<std::string>& figure2_routes() {
  static const std::vector<std::string> kRoutes = {"79", "99", "243", "252",
                                                   "257"};
  return kRoutes;
}

int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace bussense::bench
