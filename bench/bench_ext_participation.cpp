// Extension E4 — participation study (paper Section VI, future work).
//
// "How to encourage bus riders participation for consistent and good
// performance is important. At the initial stage, we may encourage the bus
// drivers to install our app to bootstrap the system." This bench sweeps
// the participant count and adds the driver-bootstrap mode (one phone per
// bus), reporting live map coverage and estimation error for each level.
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"

namespace bussense::bench {
namespace {

struct Outcome {
  std::size_t trips = 0;
  double coverage = 0.0;
  double mae = 0.0;
};

Outcome evaluate(const Testbed& bed, const std::vector<AnnotatedTrip>& trips) {
  TrafficServer server(bed.world.city(), bed.database);
  Outcome out;
  RunningStats err;
  for (const AnnotatedTrip& trip : trips) {
    const auto report = server.process_trip(trip.upload);
    for (const SpeedEstimate& e : report.estimates) {
      const SpanInfo* info = server.catalog().adjacent(e.segment);
      if (!info) continue;
      const double truth = bed.world.traffic().mean_car_speed_kmh(
          bed.world.city().route(info->route), info->arc_from, info->arc_to,
          e.time);
      err.add(std::abs(e.att_speed_kmh - truth));
    }
  }
  server.advance_time(at_clock(0, 19, 0));
  const TrafficMap evening = server.snapshot(at_clock(0, 18, 30), 2.0 * kHour);
  out.trips = trips.size();
  out.coverage = evening.coverage_ratio(server.catalog());
  out.mae = err.count() > 0 ? err.mean() : 0.0;
  return out;
}

void report() {
  const Testbed& bed = testbed();
  print_banner(std::cout,
               "Extension E4: participation levels vs coverage and accuracy");
  Table t({"deployment", "trips/day", "evening live coverage (%)",
           "estimate MAE (km/h)"});
  for (const int participants : {5, 10, 22, 50}) {
    WorldConfig cfg = bed.world.config();
    cfg.participant_count = participants;
    // Reuse the shared world's radio/city by keeping the same seed; only
    // the participant population differs.
    const World world(cfg);
    Rng rng(81);
    const auto day = world.simulate_day(0, 1.0, rng);
    const Outcome o = evaluate(bed, day.trips);
    t.add_row({std::to_string(participants) + " riders",
               std::to_string(o.trips), fmt(100.0 * o.coverage, 1),
               fmt(o.mae, 2)});
  }
  {
    Rng rng(82);
    const auto trips = bed.world.simulate_driver_day(0, rng);
    const Outcome o = evaluate(bed, trips);
    t.add_row({"driver bootstrap (all buses)", std::to_string(o.trips),
               fmt(100.0 * o.coverage, 1), fmt(o.mae, 2)});
  }
  t.print(std::cout);
  std::cout << "(coverage grows with participation; driver bootstrap saturates the "
               "bus-covered half of the network)\n";
}

void BM_DriverDay(benchmark::State& state) {
  const Testbed& bed = testbed();
  Rng rng(83);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.world.simulate_driver_day(0, rng));
  }
}
BENCHMARK(BM_DriverDay)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
