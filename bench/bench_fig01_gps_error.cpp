// Figure 1 — GPS localisation error in downtown streets.
//
// Paper: HTC Sensation fixes in downtown Singapore; median error ~40 m
// stationary and ~68 m moving on buses; 90th percentiles ~75 m / ~130 m.
// The measurement motivates abandoning GPS for cellular hints.
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "sensing/gps_model.h"

namespace bussense::bench {
namespace {

void report() {
  print_banner(std::cout, "Figure 1: GPS localisation error CDF (downtown)");
  const GpsModel gps;
  Rng rng(1);
  EmpiricalDistribution stationary, mobile;
  const int fixes = 20000;
  for (int i = 0; i < fixes; ++i) {
    stationary.add(gps.sample_error_m(GpsMode::kStationary, rng));
    mobile.add(gps.sample_error_m(GpsMode::kMobileOnBus, rng));
  }

  Table cdf({"error (m)", "CDF stationary", "CDF mobile-on-bus"});
  for (double x = 0.0; x <= 300.0; x += 20.0) {
    cdf.add_row(fmt(x, 0), {stationary.cdf(x), mobile.cdf(x)});
  }
  cdf.print(std::cout);

  Table stats({"series", "median (m)", "p90 (m)", "paper median", "paper p90"});
  stats.add_row({"stationary", fmt(stationary.median(), 1),
                 fmt(stationary.percentile(90), 1), "~40", "~75"});
  stats.add_row({"mobile on bus", fmt(mobile.median(), 1),
                 fmt(mobile.percentile(90), 1), "~68", "~130"});
  stats.print(std::cout);
  std::cout << "(paper p90 digits reconstructed from OCR-damaged text; "
               "see EXPERIMENTS.md)\n";
}

void BM_GpsFix(benchmark::State& state) {
  const GpsModel gps;
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gps.sample_fix(Point{1000.0, 2000.0}, GpsMode::kMobileOnBus, rng));
  }
}
BENCHMARK(BM_GpsFix);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
