// Serving-tier throughput and ingest interference (DESIGN.md §13).
//
// Three questions a deployment asks of the epoch-based serving tier:
//
//   1. read throughput — segment-speed queries/second against a live
//      publisher at 1/2/4/8 reader threads, with publishes ticking
//      underneath; p50/p99 read latency from the query.latency.segment
//      histogram. The acceptance target is >= 1M queries/s aggregate on a
//      multi-core host (a single-core CI box reports what it can);
//   2. publish stall — how long one epoch build+swap takes while readers
//      hammer the pointer (publish.build_s p50/p99). Readers never block
//      a publish; the build cost is the snapshot construction itself;
//   3. ingest interference — trips/second through the concurrent server
//      with 8 readers + a publisher running vs quiescent. The readers are
//      rate-limited to a fixed ~100k queries/s aggregate (production
//      queries arrive at a rate; the flat-out saturation numbers are
//      section 1's), so this measures protocol interference — the serving
//      tier touches no ingest lock, and the contract is <= 10%
//      degradation.
//
// Emits BENCH_serving.json with all three plus a mixed-family section.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "core/epoch_publisher.h"
#include "core/ingest_service.h"
#include "core/query_service.h"
#include "core/workload_replay.h"
#include "trafficsim/lod_world.h"

namespace bussense::bench {
namespace {

struct Fmt {
  static std::string fixed(double v, int prec) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(prec);
    os << v;
    return os.str();
  }
};

std::vector<AnnotatedTrip>& bench_trips() {
  static std::vector<AnnotatedTrip> trips = [] {
    const Testbed& bed = testbed();
    ThreadPool pool(std::thread::hardware_concurrency());
    const auto specs = bed.world.make_trip_specs(0, 240, 91);
    return bed.world.simulate_trips(specs, 91, &pool);
  }();
  return trips;
}

SimTime latest_sample_time() {
  SimTime latest = 0.0;
  for (const AnnotatedTrip& trip : bench_trips()) {
    for (const auto& s : trip.upload.samples) {
      latest = std::max(latest, s.time);
    }
  }
  return latest;
}

// A concurrent server primed with the bench workload, ready to publish.
struct PrimedBackend {
  ConcurrentTrafficServer server;
  SimTime now;

  PrimedBackend() : server(testbed().world.city(), testbed().database) {
    for (const AnnotatedTrip& trip : bench_trips()) {
      server.process_trip(trip.upload);
    }
    now = latest_sample_time() + 10 * kMinute;
    server.advance_time(now);
  }
};

PrimedBackend& primed() {
  static PrimedBackend backend;
  return backend;
}

struct ReadResult {
  double reads_per_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  std::uint64_t publishes = 0;
};

// `readers` threads run segment-speed queries flat out for `duration_s`
// while a publisher re-publishes the live fusion every ~2 ms underneath.
ReadResult run_readers(int readers, double duration_s) {
  PrimedBackend& backend = primed();
  EpochPublisher pub(backend.server.catalog());
  backend.server.publish_epoch(pub, backend.now);
  QueryService svc(pub);
  const auto& keys = backend.server.catalog().adjacent_keys();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread publisher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      backend.server.publish_epoch(pub, backend.now);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  std::vector<std::thread> pool;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      std::uint64_t local = 0;
      std::size_t i = static_cast<std::size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        for (int burst = 0; burst < 256; ++burst) {
          benchmark::DoNotOptimize(svc.segment_speed(keys[i % keys.size()]));
          ++i;
          ++local;
        }
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : pool) t.join();
  publisher.join();
  const double elapsed = seconds_since(start);

  ReadResult out;
  out.reads_per_s = static_cast<double>(reads.load()) / std::max(elapsed, 1e-9);
  const auto lat =
      svc.metrics().snapshot().histograms.at("query.latency.segment");
  out.p50_s = lat.percentile(0.50);
  out.p99_s = lat.percentile(0.99);
  out.publishes = pub.epochs_published();
  return out;
}

// Ingest throughput with and without the serving tier active: replays the
// bench trips through a fresh concurrent server, optionally with 8 reader
// threads + a 2 ms publisher attached to it.
double run_ingest(bool readers_on, int readers = 8) {
  const Testbed& bed = testbed();
  const auto& trips = bench_trips();
  ConcurrentTrafficServer server(bed.world.city(), bed.database);
  EpochPublisher pub(server.catalog());
  QueryService svc(pub);
  const auto& keys = server.catalog().adjacent_keys();
  const SimTime now = latest_sample_time() + 10 * kMinute;

  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  if (readers_on) {
    server.publish_epoch(pub, now);
    pool.emplace_back([&] {  // publisher tick
      while (!stop.load(std::memory_order_relaxed)) {
        server.publish_epoch(pub, now);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([&, r] {
        // ~64 reads per 5 ms per reader: ~100k queries/s aggregate at 8
        // readers — a steady serving load, not a saturation spin.
        std::size_t i = static_cast<std::size_t>(r);
        while (!stop.load(std::memory_order_relaxed)) {
          for (int burst = 0; burst < 64; ++burst) {
            benchmark::DoNotOptimize(svc.segment_speed(keys[i % keys.size()]));
            ++i;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  for (const AnnotatedTrip& trip : trips) server.process_trip(trip.upload);
  server.advance_time(now);
  const double elapsed = seconds_since(start);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : pool) t.join();
  return static_cast<double>(trips.size()) / std::max(elapsed, 1e-9);
}

// A day-0 slice of the LOD metropolis (DESIGN.md §15) replayed through the
// sharded ingest tier with epoch publishes on the advance cadence, then
// served from the resulting epoch — the serving tier read against a city
// map built from tiered-fidelity trips instead of the 240-trip testbed.
// BUSSENSE_LOD_RIDERS overrides the population (0 skips; the full
// city-week determinism run lives in bench_ingest_service).
void lod_report(JsonReport& json) {
  std::int64_t riders = 100'000;
  if (const char* env = std::getenv("BUSSENSE_LOD_RIDERS")) {
    riders = std::atoll(env);
  }
  if (riders <= 0) {
    std::cout << "lod serving: skipped (BUSSENSE_LOD_RIDERS=0)\n";
    return;
  }
  print_banner(std::cout, "LOD metropolis: serving a day-0 epoch");

  const Testbed& bed = testbed();
  const LodWorld lod(bed.world, riders, {});
  ThreadPool pool(8);
  const std::vector<LodTrip> trips = lod.simulate_day(0, &pool);
  std::vector<TimedUpload> workload;
  workload.reserve(trips.size());
  for (const LodTrip& t : trips) {
    workload.push_back(TimedUpload{t.trip.upload, t.arrival});
  }

  ShardedIngestConfig sharding;
  sharding.shards = 4;
  ServerConfig server_config;
  server_config.admission.enabled = true;
  ShardedIngestService service(bed.world.city(), bed.database, server_config,
                               sharding);
  EpochPublisher pub(service.catalog());
  ReplayOptions options;
  options.advance_every_s = 900.0;
  options.publish_every = 1;
  options.publisher = &pub;
  const auto replay_start = std::chrono::steady_clock::now();
  const ReplayStats stats = replay_workload(service, workload, options);
  const double replay_s = seconds_since(replay_start);

  // Flat-out single-reader pass against the final epoch.
  QueryService svc(pub);
  const auto& keys = service.catalog().adjacent_keys();
  std::size_t reads = 0;
  const auto read_start = std::chrono::steady_clock::now();
  while (seconds_since(read_start) < 0.5) {
    for (int burst = 0; burst < 1024; ++burst) {
      benchmark::DoNotOptimize(svc.segment_speed(keys[reads++ % keys.size()]));
    }
  }
  const double reads_per_s =
      static_cast<double>(reads) / seconds_since(read_start);

  const TrafficMap map =
      service.snapshot(stats.last_arrival + 30.0, kDay);
  Table t({"riders", "trips", "epochs", "live segments", "reads/s"});
  t.add_row({std::to_string(riders), std::to_string(stats.submitted),
             std::to_string(stats.epochs_published),
             std::to_string(map.segments().size()),
             Fmt::fixed(reads_per_s, 0)});
  t.print(std::cout);
  json.field("\"lod_serving\": {\"riders\": " + std::to_string(riders) +
             ", \"trips\": " + std::to_string(stats.submitted) +
             ", \"accepted\": " + std::to_string(stats.accepted) +
             ", \"epochs_published\": " + std::to_string(stats.epochs_published) +
             ", \"live_segments\": " + std::to_string(map.segments().size()) +
             ", \"replay_s\": " + num(replay_s) +
             ", \"reads_per_s\": " + num(reads_per_s) + "}");
}

void report() {
  JsonReport json;
  std::cout << "workload: " << bench_trips().size()
            << " trips on the default city; "
            << primed().server.catalog().adjacent_keys().size()
            << " catalogued segments\n";

  print_banner(std::cout, "Serving tier: segment-speed reader ladder");
  Table t({"readers", "reads/s", "p50", "p99", "epochs published"});
  std::ostringstream rows;
  bool first = true;
  double best_reads = 0.0;
  double publish_p50 = 0.0, publish_p99 = 0.0;
  for (const int readers : {1, 2, 4, 8}) {
    const ReadResult r = run_readers(readers, 0.6);
    best_reads = std::max(best_reads, r.reads_per_s);
    t.add_row({std::to_string(readers), Fmt::fixed(r.reads_per_s, 0),
               Fmt::fixed(1e9 * r.p50_s, 0) + " ns",
               Fmt::fixed(1e9 * r.p99_s, 0) + " ns",
               std::to_string(r.publishes)});
    if (!first) rows << ", ";
    first = false;
    rows << "{\"readers\": " << readers
         << ", \"reads_per_s\": " << num(r.reads_per_s)
         << ", \"p50_s\": " << num(r.p50_s) << ", \"p99_s\": " << num(r.p99_s)
         << ", \"epochs_published\": " << r.publishes << "}";
  }
  t.print(std::cout);
  std::cout << "best aggregate: " << Fmt::fixed(best_reads / 1e6, 2)
            << " M reads/s (target: >= 1M on a multi-core host)\n";
  json.field("\"segment_reads\": [" + rows.str() + "]");

  print_banner(std::cout, "Publish stall under read load");
  {
    // One instrumented run: 4 readers, publisher flat out (no sleep
    // between publishes), so build_s sees contention from both sides.
    PrimedBackend& backend = primed();
    EpochPublisher pub(backend.server.catalog());
    QueryService svc(pub);
    const auto& keys = backend.server.catalog().adjacent_keys();
    std::atomic<bool> stop{false};
    std::vector<std::thread> pool;
    for (int r = 0; r < 4; ++r) {
      pool.emplace_back([&, r] {
        std::size_t i = static_cast<std::size_t>(r);
        while (!stop.load(std::memory_order_relaxed)) {
          benchmark::DoNotOptimize(svc.segment_speed(keys[i++ % keys.size()]));
        }
      });
    }
    const auto start = std::chrono::steady_clock::now();
    while (seconds_since(start) < 0.4) {
      backend.server.publish_epoch(pub, backend.now);
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& th : pool) th.join();
    const auto build =
        pub.metrics().snapshot().histograms.at("publish.build_s");
    publish_p50 = build.percentile(0.50);
    publish_p99 = build.percentile(0.99);
    Table pt({"epochs", "build+swap p50", "build+swap p99"});
    pt.add_row({std::to_string(build.total),
                Fmt::fixed(1e6 * publish_p50, 1) + " us",
                Fmt::fixed(1e6 * publish_p99, 1) + " us"});
    pt.print(std::cout);
    json.field("\"publish\": {\"epochs\": " + std::to_string(build.total) +
               ", \"build_p50_s\": " + num(publish_p50) +
               ", \"build_p99_s\": " + num(publish_p99) + "}");
  }

  print_banner(std::cout, "Ingest interference: readers off vs on");
  // Interleaved best-of so warmup and scheduling noise hit both alike.
  (void)run_ingest(false);
  double off = 0.0, on = 0.0;
  for (int round = 0; round < 3; ++round) {
    off = std::max(off, run_ingest(false));
    on = std::max(on, run_ingest(true));
  }
  const double delta = off > 0.0 ? (off - on) / off : 0.0;
  Table it({"serving tier", "ingest trips/s"});
  it.add_row({"off", Fmt::fixed(off, 0)});
  it.add_row({"8 readers (~100k q/s) + publisher", Fmt::fixed(on, 0)});
  it.print(std::cout);
  std::cout << "ingest delta: " << Fmt::fixed(100.0 * delta, 2)
            << "% (contract: <= 10%)\n";
  json.field("\"ingest\": {\"trips_per_s_readers_off\": " + num(off) +
             ", \"trips_per_s_readers_on\": " + num(on) +
             ", \"delta_fraction\": " + num(delta) + "}");

  print_banner(std::cout, "Mixed query families");
  {
    PrimedBackend& backend = primed();
    EpochPublisher pub(backend.server.catalog());
    backend.server.publish_epoch(pub, backend.now);
    QueryService svc(pub);
    const auto& keys = backend.server.catalog().adjacent_keys();
    const BusRoute& route =
        *testbed().world.city().route_by_name(figure2_routes()[0], 0);
    const BoundingBox half = [&] {
      BoundingBox b = pub.geometry().region();
      b.max.x = 0.5 * (b.min.x + b.max.x);
      return b;
    }();
    constexpr int kSegment = 200000, kEta = 2000, kRegion = 20000;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSegment; ++i) {
      benchmark::DoNotOptimize(
          svc.segment_speed(keys[static_cast<std::size_t>(i) % keys.size()]));
    }
    for (int i = 0; i < kEta; ++i) {
      benchmark::DoNotOptimize(svc.route_eta(route, 0, backend.now));
    }
    for (int i = 0; i < kRegion; ++i) {
      benchmark::DoNotOptimize(svc.region_aggregate(half));
    }
    const double elapsed = seconds_since(start);
    const auto snap = svc.metrics().snapshot();
    Table mt({"family", "queries", "p50", "p99"});
    std::ostringstream mrows;
    bool mfirst = true;
    for (const auto& [family, name] :
         std::vector<std::pair<std::string, std::string>>{
             {"segment", "query.latency.segment"},
             {"eta", "query.latency.eta"},
             {"region", "query.latency.region"}}) {
      const auto& h = snap.histograms.at(name);
      mt.add_row({family, std::to_string(h.total),
                  Fmt::fixed(1e6 * h.percentile(0.50), 2) + " us",
                  Fmt::fixed(1e6 * h.percentile(0.99), 2) + " us"});
      if (!mfirst) mrows << ", ";
      mfirst = false;
      mrows << "{\"family\": \"" << family << "\", \"queries\": " << h.total
            << ", \"p50_s\": " << num(h.percentile(0.50))
            << ", \"p99_s\": " << num(h.percentile(0.99)) << "}";
    }
    mt.print(std::cout);
    std::cout << "mixed sweep: " << Fmt::fixed(elapsed, 3) << " s total\n";
    json.field("\"mixed\": [" + mrows.str() + "]");
  }

  lod_report(json);

  json.write("BENCH_serving.json");
  std::cout << "wrote BENCH_serving.json\n";
}

void BM_SegmentSpeedQuery(benchmark::State& state) {
  PrimedBackend& backend = primed();
  EpochPublisher pub(backend.server.catalog());
  backend.server.publish_epoch(pub, backend.now);
  QueryService svc(pub);
  const auto& keys = backend.server.catalog().adjacent_keys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.segment_speed(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_SegmentSpeedQuery);

void BM_EpochPin(benchmark::State& state) {
  PrimedBackend& backend = primed();
  EpochPublisher pub(backend.server.catalog());
  backend.server.publish_epoch(pub, backend.now);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pub.pin());
  }
}
BENCHMARK(BM_EpochPin);

void BM_PublishEpoch(benchmark::State& state) {
  PrimedBackend& backend = primed();
  EpochPublisher pub(backend.server.catalog());
  for (auto _ : state) {
    backend.server.publish_epoch(pub, backend.now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PublishEpoch)->Unit(benchmark::kMicrosecond);

void BM_RegionAggregate(benchmark::State& state) {
  PrimedBackend& backend = primed();
  EpochPublisher pub(backend.server.catalog());
  backend.server.publish_epoch(pub, backend.now);
  QueryService svc(pub);
  const BoundingBox box = pub.geometry().region();
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.region_aggregate(box));
  }
}
BENCHMARK(BM_RegionAggregate)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
