// Equation 3 — regressing the bus→automobile coefficient b.
//
// Paper: ATT = a + b·BTT with a = length/free-speed; linear regression of
// the experimental data puts b within [0.3, 0.8] for most road segments and
// the system fixes b = 0.5. We regress b per segment from simulated bus
// runs against ground-truth automobile travel times (our reconstruction
// multiplies b into the congestion component of the bus running time — see
// travel_estimator.h).
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"

namespace bussense::bench {
namespace {

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  const SegmentCatalog catalog(city);
  const TravelEstimator est(catalog);
  Rng rng(13);

  // Gather (BTT excess, ATT excess) pairs per segment over one day of runs
  // on the study routes.
  std::map<SegmentKey, std::pair<std::vector<double>, std::vector<double>>,
           decltype([](const SegmentKey& a, const SegmentKey& b) {
             return a.from < b.from || (a.from == b.from && a.to < b.to);
           })>
      samples;
  for (const std::string& name : figure2_routes()) {
    const BusRoute* route = city.route_by_name(name, 0);
    for (int k = 0; k < 30; ++k) {
      const SimTime depart = at_clock(0, 7, 0) + k * 25 * kMinute;
      if (depart > at_clock(0, 20, 0)) break;
      // Riders at every stop so every visit is served (clean BTTs).
      std::map<int, int> extra;
      for (std::size_t i = 0; i < route->stop_count(); ++i) {
        extra[static_cast<int>(i)] = 1;
      }
      const BusRun run = bed.world.buses().simulate_run(*route, depart, extra,
                                                        {}, 600.0, rng);
      for (std::size_t i = 0; i + 1 < run.visits.size(); ++i) {
        const StopVisit& from = run.visits[i];
        const StopVisit& to = run.visits[i + 1];
        if (!from.served || !to.served) continue;
        const SegmentKey key{city.effective_stop(from.stop),
                             city.effective_stop(to.stop)};
        const SpanInfo* info = catalog.adjacent(key);
        if (!info) continue;
        const double btt = to.arrival - from.departure;
        const double btt_excess =
            btt - est.free_bus_time_s(info->length_m, info->free_speed_kmh);
        const double att_true =
            info->length_m / 1000.0 /
            bed.world.traffic().mean_car_speed_kmh(
                city.route(info->route), info->arc_from, info->arc_to,
                0.5 * (from.departure + to.arrival)) *
            3600.0;
        const double a = info->length_m / 1000.0 / info->free_speed_kmh * 3600.0;
        if (btt_excess > 5.0) {  // regression needs congestion signal
          samples[key].first.push_back(btt_excess);
          samples[key].second.push_back(att_true - a);
        }
      }
    }
  }

  EmpiricalDistribution bs;
  for (const auto& [key, xy] : samples) {
    (void)key;
    if (xy.first.size() < 8) continue;
    const double b =
        regression_slope_fixed_intercept(xy.first, xy.second, 0.0);
    bs.add(b);
  }

  print_banner(std::cout, "Equation 3: per-segment regressed coefficient b");
  Table t({"statistic", "value"});
  t.add_row({"segments regressed", std::to_string(bs.count())});
  t.add_row({"median b", fmt(bs.median(), 2)});
  t.add_row({"p10 b", fmt(bs.percentile(10), 2)});
  t.add_row({"p90 b", fmt(bs.percentile(90), 2)});
  t.add_row({"fraction in paper band [0.3, 0.8]",
             fmt(bs.cdf(0.8) - bs.cdf(0.3), 2)});
  t.print(std::cout);
  std::cout << "(paper: b in [0.3, 0.8] for most segments; system fixes "
               "b = 0.5)\n";
}

void BM_FreeBusTime(benchmark::State& state) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  const TravelEstimator est(catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.att_seconds(90.0, 400.0, 50.0));
  }
}
BENCHMARK(BM_FreeBusTime);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
