// Fault injection vs the hardened ingest path.
//
// Sweeps FaultPlan::standard over corruption rates and reports what the
// admission stage admits/rejects and how much end-to-end accuracy survives
// (mean |ATT − truth| and the fraction of estimates within 8 km/h). Uploads
// are fed in arrival order with the server clock advanced to each arrival,
// the live-deployment contract the clock-skew watermark assumes. Emits
// BENCH_faults.json; EXPERIMENTS.md records the expectations.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "faults/fault_injection.h"

namespace bussense::bench {
namespace {

constexpr double kArrivalLag = 30.0;
constexpr double kGoodSpeedBand = 8.0;

const std::vector<AnnotatedTrip>& workload() {
  static const std::vector<AnnotatedTrip> trips = [] {
    Rng rng(4);
    auto day = testbed().world.simulate_day(0, 1.5, rng).trips;
    std::erase_if(day, [](const AnnotatedTrip& trip) {
      return trip.upload.samples.empty();
    });
    std::sort(day.begin(), day.end(),
              [](const AnnotatedTrip& a, const AnnotatedTrip& b) {
                return a.upload.samples.back().time <
                       b.upload.samples.back().time;
              });
    return day;
  }();
  return trips;
}

struct SweepRow {
  double rate = 0.0;
  std::size_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rej_duplicate = 0;
  std::uint64_t rej_malformed = 0;
  std::uint64_t rej_non_monotone = 0;
  std::size_t estimates = 0;
  double mean_err = 0.0;
  double within_band = 0.0;
  double trips_per_s = 0.0;
};

SweepRow run_rate(double rate) {
  const Testbed& bed = testbed();
  const auto& trips = workload();

  std::vector<TripUpload> clean;
  std::vector<SimTime> arrivals;
  clean.reserve(trips.size());
  arrivals.reserve(trips.size());
  for (const AnnotatedTrip& trip : trips) {
    clean.push_back(trip.upload);
    arrivals.push_back(trip.upload.samples.back().time + kArrivalLag);
  }

  std::vector<TripUpload> uploads = clean;
  if (rate > 0.0) {
    // Arrival order is the delivery order here (so per-trip arrivals stay
    // known); batch reorder is covered by the property tests.
    FaultPlan plan = FaultPlan::standard(99, rate);
    plan.reorder_batch = false;
    uploads = inject_faults(std::move(uploads), plan);
    // Appended replays arrive with the retry, after everything else.
    arrivals.resize(uploads.size(),
                    arrivals.empty() ? 0.0 : arrivals.back() + kArrivalLag);
  }

  ServerConfig config;
  config.admission.enabled = true;
  TrafficServer server(bed.world.city(), bed.database, config);

  SweepRow row;
  row.rate = rate;
  row.submitted = uploads.size();
  double err_sum = 0.0;
  std::size_t good = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    server.advance_time(arrivals[i]);
    const TripReport report = server.process_trip(uploads[i]);
    if (!report.accepted()) continue;
    for (const SpeedEstimate& e : report.estimates) {
      const SpanInfo* info = server.catalog().adjacent(e.segment);
      if (info == nullptr) continue;
      const double truth = bed.world.traffic().mean_car_speed_kmh(
          bed.world.city().route(info->route), info->arc_from, info->arc_to,
          e.time);
      const double err = std::abs(e.att_speed_kmh - truth);
      err_sum += err;
      if (err <= kGoodSpeedBand) ++good;
      ++row.estimates;
    }
  }
  row.trips_per_s = static_cast<double>(uploads.size()) /
                    std::max(seconds_since(start), 1e-9);
  if (row.estimates > 0) {
    row.mean_err = err_sum / static_cast<double>(row.estimates);
    row.within_band =
        static_cast<double>(good) / static_cast<double>(row.estimates);
  }

  const MetricsSnapshot snap = server.metrics().snapshot();
  row.admitted = snap.counters.at("ingest.admitted");
  row.rej_duplicate = snap.counters.at("ingest.rejected.duplicate");
  row.rej_malformed = snap.counters.at("ingest.rejected.malformed");
  row.rej_non_monotone = snap.counters.at("ingest.rejected.non_monotone");
  return row;
}

void report() {
  JsonReport json;
  const auto& trips = workload();
  std::cout << "workload: " << trips.size()
            << " arrival-ordered trips on the default city, admission on\n";

  print_banner(std::cout,
               "Accuracy vs corruption rate (FaultPlan::standard, seed 99)");
  Table t({"rate", "admitted", "dup", "malformed", "disorder", "estimates",
           "mean |err| km/h", "within 8 km/h"});
  std::ostringstream rows;
  bool first = true;
  double clean_within = 0.0;
  for (const double rate : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    const SweepRow r = run_rate(rate);
    if (rate == 0.0) clean_within = r.within_band;
    t.add_row({fmt(rate, 2),
               std::to_string(r.admitted) + "/" + std::to_string(r.submitted),
               std::to_string(r.rej_duplicate), std::to_string(r.rej_malformed),
               std::to_string(r.rej_non_monotone), std::to_string(r.estimates),
               fmt(r.mean_err, 2), fmt(r.within_band, 3)});
    if (!first) rows << ", ";
    first = false;
    rows << "{\"rate\": " << num(r.rate) << ", \"submitted\": " << r.submitted
         << ", \"admitted\": " << r.admitted
         << ", \"rejected_duplicate\": " << r.rej_duplicate
         << ", \"rejected_malformed\": " << r.rej_malformed
         << ", \"rejected_non_monotone\": " << r.rej_non_monotone
         << ", \"estimates\": " << r.estimates
         << ", \"mean_abs_err_kmh\": " << num(r.mean_err)
         << ", \"within_8kmh\": " << num(r.within_band)
         << ", \"trips_per_s\": " << num(r.trips_per_s) << "}";
  }
  t.print(std::cout);
  std::cout << "(expected: accuracy degrades gracefully — at a 10% rate the "
               "within-8 km/h fraction stays >= 90% of the clean run's "
            << fmt(clean_within, 3)
            << "; replays are fully absorbed by the dedup window)\n";
  json.field("\"sweep\": [" + rows.str() + "]");

  json.write("BENCH_faults.json");
  std::cout << "wrote BENCH_faults.json\n";
}

// Per-trip cost of the corruption pass itself (the test-suite overhead).
void BM_InjectFaults(benchmark::State& state) {
  const auto& trips = workload();
  std::vector<TripUpload> uploads;
  uploads.reserve(trips.size());
  for (const AnnotatedTrip& trip : trips) uploads.push_back(trip.upload);
  const FaultPlan plan = FaultPlan::standard(7, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(inject_faults(uploads, plan));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(uploads.size()));
}
BENCHMARK(BM_InjectFaults);

// Admission overhead on the serial hot path: clean workload, checks on.
void BM_AdmissionPerTrip(benchmark::State& state) {
  const Testbed& bed = testbed();
  const auto& trips = workload();
  ServerConfig config;
  config.admission.enabled = state.range(0) != 0;
  // Capacity 1 keeps the full signature+LRU cost on the hot path while the
  // cycling workload never re-triggers the dedup (each loop evicts the last).
  config.admission.dedup_capacity = 1;
  config.obs.enabled = false;
  TrafficServer server(bed.world.city(), bed.database, config);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.process_trip(trips[i].upload));
    i = (i + 1) % trips.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdmissionPerTrip)->Arg(0)->Arg(1);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
