// Ablation A1/A5 — how much do clustering (III-C.2) and per-trip ML mapping
// (III-C.3) contribute to stop identification accuracy?
//
// The paper motivates both stages as noise defences; this ablation disables
// them independently, at the nominal noise level and at an elevated one
// (stressed radio), and reports per-cluster identification accuracy.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/table.h"

namespace bussense::bench {
namespace {

double accuracy(const World& world, const TrafficServer& server,
                const std::vector<AnnotatedTrip>& trips) {
  int total = 0, correct = 0;
  for (const AnnotatedTrip& trip : trips) {
    const auto matched = server.match_samples(trip.upload);
    std::map<double, StopId> truth;
    for (std::size_t i = 0; i < trip.upload.samples.size(); ++i) {
      truth[trip.upload.samples[i].time] = trip.truth.sample_stops[i];
    }
    const MappedTrip mapped = server.map_trip(server.cluster_samples(matched));
    for (const MappedCluster& mc : mapped.stops) {
      std::map<StopId, int> votes;
      for (const MatchedSample& m : mc.cluster.members) {
        ++votes[truth.at(m.sample.time)];
      }
      StopId majority = kInvalidStop;
      int best = 0;
      for (const auto& [stop, count] : votes) {
        if (count > best) {
          best = count;
          majority = stop;
        }
      }
      if (majority == kInvalidStop) continue;
      ++total;
      if (mc.stop == world.city().effective_stop(majority)) ++correct;
    }
  }
  return total > 0 ? 100.0 * correct / total : 0.0;
}

void report() {
  const Testbed& bed = testbed();

  // Nominal world trips and a stressed world (double in-bus noise, lower
  // beep reliability) to surface the pipeline's noise defences.
  Rng rng(21);
  const auto nominal = bed.world.simulate_day(0, 2.0, rng);
  WorldConfig stressed_cfg = bed.world.config();
  stressed_cfg.scanner.in_bus_noise_db = 5.0;
  stressed_cfg.propagation.temporal_sigma_db = 2.5;
  stressed_cfg.beep_detection_prob = 0.92;
  stressed_cfg.false_beeps_per_trip = 0.4;
  const World stressed(stressed_cfg);
  Rng survey_rng(2024);
  const StopDatabase stressed_db = build_stop_database(
      stressed.city(),
      [&](StopId stop, int run) {
        return stressed.scan_stop(stop, survey_rng, run % 2 == 1);
      },
      5);
  Rng rng2(22);
  const auto stressed_day = stressed.simulate_day(0, 2.0, rng2);

  print_banner(std::cout,
               "Ablation A1/A5: clustering and trip mapping contributions");
  Table t({"pipeline variant", "nominal accuracy (%)", "stressed accuracy (%)"});
  struct Variant {
    std::string name;
    bool clustering;
    bool mapping;
  };
  for (const Variant& v :
       {Variant{"full pipeline", true, true},
        Variant{"no trip mapping (A1)", true, false},
        Variant{"no clustering (A5)", false, true},
        Variant{"neither (raw per-sample)", false, false}}) {
    ServerConfig cfg;
    cfg.stages.clustering = v.clustering;
    cfg.stages.trip_mapping = v.mapping;
    TrafficServer nominal_server(bed.world.city(), bed.database, cfg);
    TrafficServer stressed_server(stressed.city(), stressed_db, cfg);
    t.add_row(v.name, {accuracy(bed.world, nominal_server, nominal.trips),
                       accuracy(stressed, stressed_server, stressed_day.trips)});
  }
  t.print(std::cout);
  std::cout << "(expected: the full pipeline dominates, with the margin "
               "growing under stress)\n";
}

void BM_MapTrip(benchmark::State& state) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  Rng rng(23);
  const BusRoute& route = *bed.world.city().route_by_name("252", 0);
  const AnnotatedTrip trip =
      bed.world.simulate_single_trip(route, 1, 15, at_clock(0, 9, 0), rng);
  const auto clusters = server.cluster_samples(server.match_samples(trip.upload));
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.map_trip(clusters));
  }
}
BENCHMARK(BM_MapTrip);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
