// Table I — the modified Smith–Waterman matching instance, plus the
// mismatch-penalty sweep of Section III-C.1.
//
// Paper: upload {1,2,3,4,5} vs database {1,7,3,5} scores 2.4 from 3
// matches, 1 gap and 1 mismatch; sweeping the penalty from 0.1 to 0.9,
// 0.3 gives the best matching accuracy.
//
// The kernel section times per-sample match() throughput at city scale
// (full city, 8 routes) across the acceleration corners — brute force,
// inverted index, and the fixed-point batch kernel (DESIGN.md §12) — and
// emits BENCH_matching.json for regression tracking. Results are
// bit-identical across all corners (tests/test_matching_simd.cpp), so the
// table is pure throughput.
#include <chrono>
#include <iostream>
#include <memory>
#include <set>

#include "bench_common.h"
#include "common/table.h"
#include "core/matching.h"
#include "core/matching_simd.h"
#include "core/stop_database.h"
#include "core/stop_matcher.h"

namespace bussense::bench {
namespace {

void report_instance() {
  print_banner(std::cout, "Table I: bus stop matching instance");
  const Fingerprint upload{{1, 2, 3, 4, 5}};
  const Fingerprint database{{1, 7, 3, 5}};
  const Alignment a = align(upload, database);
  Table t({"c_upload", "c_database", "matches", "gaps", "mismatches", "score"});
  t.add_row({to_string(upload), to_string(database), std::to_string(a.matches),
             std::to_string(a.gaps), std::to_string(a.mismatches),
             fmt(a.score, 1)});
  t.print(std::cout);
  std::cout << "(paper: 3 matches, 1 gap, 1 mismatch, score 2.4)\n";
}

void report_penalty_sweep() {
  print_banner(std::cout,
               "Section III-C.1: mismatch-penalty sweep (matching accuracy)");
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  Rng rng(41);

  // Survey samples for a subset of stops; evaluate identification accuracy
  // against the full database under each penalty setting.
  std::vector<std::pair<StopId, Fingerprint>> probes;
  for (const BusStop& stop : city.stops()) {
    if (city.effective_stop(stop.id) != stop.id) continue;
    if (stop.id % 3 != 0) continue;  // subsample for speed
    for (int r = 0; r < 4; ++r) {
      probes.emplace_back(stop.id, bed.world.scan_stop(stop.id, rng, true));
    }
  }

  Table t({"penalty", "accuracy (%)"});
  double best_penalty = 0.0, best_acc = -1.0;
  for (double penalty = 0.1; penalty <= 0.91; penalty += 0.1) {
    StopMatcherConfig cfg;
    cfg.matching.mismatch_penalty = penalty;
    cfg.matching.gap_penalty = penalty;
    const StopMatcher matcher(bed.database, cfg);
    int correct = 0;
    for (const auto& [stop, fp] : probes) {
      const auto m = matcher.match(fp);
      if (m && m->stop == stop) ++correct;
    }
    const double acc = 100.0 * correct / static_cast<double>(probes.size());
    t.add_row(fmt(penalty, 1), {acc}, 2);
    if (acc > best_acc) {
      best_acc = acc;
      best_penalty = penalty;
    }
  }
  t.print(std::cout);
  std::cout << "best penalty: " << fmt(best_penalty, 1)
            << " (paper chose 0.3)\n";
}

// --- city-scale kernel throughput -----------------------------------------

struct CityScale {
  std::unique_ptr<World> world;
  StopDatabase database;
  std::vector<Fingerprint> probes;
};

const CityScale& city_scale() {
  static CityScale cs = [] {
    CityScale out;
    WorldConfig cfg;
    cfg.city.width_m = 7000;
    cfg.city.height_m = 4000;
    cfg.city.route_names = {"79", "99", "241", "243", "252", "257", "182", "31"};
    cfg.seed = 9;
    out.world = std::make_unique<World>(cfg);
    Rng survey(2024);
    out.database = build_stop_database(
        out.world->city(),
        [&](StopId stop, int run) {
          return out.world->scan_stop(stop, survey, run % 2 == 1);
        },
        3);
    Rng rng(43);
    for (const BusStop& stop : out.world->city().stops()) {
      if (out.world->city().effective_stop(stop.id) != stop.id) continue;
      if (stop.id % 5 != 0) continue;  // subsample: a few hundred probes
      out.probes.push_back(out.world->scan_stop(stop.id, rng, true));
    }
    return out;
  }();
  return cs;
}

double match_samples_per_s(const StopMatcher& matcher,
                           const std::vector<Fingerprint>& probes,
                           int repeats) {
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    for (const Fingerprint& fp : probes) {
      benchmark::DoNotOptimize(matcher.match(fp));
    }
  }
  const double total = static_cast<double>(probes.size()) * repeats;
  return total / std::max(seconds_since(start), 1e-9);
}

void report_kernel_throughput() {
  print_banner(std::cout,
               "Matching kernel: city-scale match() throughput "
               "(full city, 8 routes)");
  const CityScale& cs = city_scale();

  struct Corner {
    const char* label;
    bool use_index;
    bool use_simd;
    int repeats;
  };
  // Brute force scans every record per sample, so it gets fewer repeats.
  const Corner corners[] = {
      {"brute force, scalar", false, false, 2},
      {"brute force, kernel", false, true, 2},
      {"indexed, scalar", true, false, 20},
      {"indexed, kernel", true, true, 20},
  };

  Table t({"configuration", "samples/s", "speedup"});
  double rates[4] = {0, 0, 0, 0};
  JsonReport json;
  std::ostringstream rows;
  for (int i = 0; i < 4; ++i) {
    StopMatcherConfig cfg;
    cfg.accel.use_index = corners[i].use_index;
    cfg.accel.use_simd = corners[i].use_simd;
    const StopMatcher matcher(cs.database, cfg);
    rates[i] = match_samples_per_s(matcher, cs.probes, corners[i].repeats);
    const double base = corners[i].use_index ? rates[2] : rates[0];
    t.add_row({corners[i].label, fmt(rates[i], 0),
               fmt(rates[i] / std::max(base, 1e-9), 2) + "x"});
    if (i) rows << ", ";
    rows << "{\"label\": \"" << corners[i].label
         << "\", \"samples_per_s\": " << num(rates[i]) << "}";
  }
  t.print(std::cout);
  const double brute_speedup = rates[1] / std::max(rates[0], 1e-9);
  const double indexed_speedup = rates[3] / std::max(rates[2], 1e-9);
  std::cout << "active kernel: " << simd::kernel_name(simd::active_kernel())
            << " (batch width " << simd::batch_width() << ")\n"
            << "kernel speedup: " << fmt(brute_speedup, 2)
            << "x over brute-force scalar, " << fmt(indexed_speedup, 2)
            << "x over indexed scalar\n";

  json.field("\"stops\": " + std::to_string(cs.database.size()));
  json.field("\"probes\": " + std::to_string(cs.probes.size()));
  json.field(std::string("\"kernel\": \"") +
             simd::kernel_name(simd::active_kernel()) + "\"");
  json.field("\"batch_width\": " + std::to_string(simd::batch_width()));
  // Whether the "kernel" corners actually took the batch path: false on
  // hosts without a vector unit, where use_simd is deliberately inert.
  json.field(std::string("\"batch_engaged\": ") +
             (StopMatcher(cs.database).simd_active() ? "true" : "false"));
  json.field("\"corners\": [" + rows.str() + "]");
  json.field("\"kernel_speedup_brute\": " + num(brute_speedup));
  json.field("\"kernel_speedup_indexed\": " + num(indexed_speedup));
  json.write("BENCH_matching.json");
  std::cout << "wrote BENCH_matching.json\n";
}

void BM_Align(benchmark::State& state) {
  const Fingerprint upload{{1, 2, 3, 4, 5}};
  const Fingerprint database{{1, 7, 3, 5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(align(upload, database));
  }
}
BENCHMARK(BM_Align);

void BM_MatchAgainstFullDatabase(benchmark::State& state) {
  const Testbed& bed = testbed();
  const StopMatcher matcher(bed.database);
  Rng rng(42);
  const Fingerprint fp =
      bed.world.scan_stop(bed.world.city().routes()[0].stops()[5].stop, rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(fp));
  }
}
BENCHMARK(BM_MatchAgainstFullDatabase);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report_instance();
  bussense::bench::report_penalty_sweep();
  bussense::bench::report_kernel_throughput();
  return bussense::bench::run_benchmarks(argc, argv);
}
