// Table I — the modified Smith–Waterman matching instance, plus the
// mismatch-penalty sweep of Section III-C.1.
//
// Paper: upload {1,2,3,4,5} vs database {1,7,3,5} scores 2.4 from 3
// matches, 1 gap and 1 mismatch; sweeping the penalty from 0.1 to 0.9,
// 0.3 gives the best matching accuracy.
#include <iostream>
#include <set>

#include "bench_common.h"
#include "common/table.h"
#include "core/matching.h"
#include "core/stop_database.h"
#include "core/stop_matcher.h"

namespace bussense::bench {
namespace {

void report_instance() {
  print_banner(std::cout, "Table I: bus stop matching instance");
  const Fingerprint upload{{1, 2, 3, 4, 5}};
  const Fingerprint database{{1, 7, 3, 5}};
  const Alignment a = align(upload, database);
  Table t({"c_upload", "c_database", "matches", "gaps", "mismatches", "score"});
  t.add_row({to_string(upload), to_string(database), std::to_string(a.matches),
             std::to_string(a.gaps), std::to_string(a.mismatches),
             fmt(a.score, 1)});
  t.print(std::cout);
  std::cout << "(paper: 3 matches, 1 gap, 1 mismatch, score 2.4)\n";
}

void report_penalty_sweep() {
  print_banner(std::cout,
               "Section III-C.1: mismatch-penalty sweep (matching accuracy)");
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  Rng rng(41);

  // Survey samples for a subset of stops; evaluate identification accuracy
  // against the full database under each penalty setting.
  std::vector<std::pair<StopId, Fingerprint>> probes;
  for (const BusStop& stop : city.stops()) {
    if (city.effective_stop(stop.id) != stop.id) continue;
    if (stop.id % 3 != 0) continue;  // subsample for speed
    for (int r = 0; r < 4; ++r) {
      probes.emplace_back(stop.id, bed.world.scan_stop(stop.id, rng, true));
    }
  }

  Table t({"penalty", "accuracy (%)"});
  double best_penalty = 0.0, best_acc = -1.0;
  for (double penalty = 0.1; penalty <= 0.91; penalty += 0.1) {
    StopMatcherConfig cfg;
    cfg.matching.mismatch_penalty = penalty;
    cfg.matching.gap_penalty = penalty;
    const StopMatcher matcher(bed.database, cfg);
    int correct = 0;
    for (const auto& [stop, fp] : probes) {
      const auto m = matcher.match(fp);
      if (m && m->stop == stop) ++correct;
    }
    const double acc = 100.0 * correct / static_cast<double>(probes.size());
    t.add_row(fmt(penalty, 1), {acc}, 2);
    if (acc > best_acc) {
      best_acc = acc;
      best_penalty = penalty;
    }
  }
  t.print(std::cout);
  std::cout << "best penalty: " << fmt(best_penalty, 1)
            << " (paper chose 0.3)\n";
}

void BM_Align(benchmark::State& state) {
  const Fingerprint upload{{1, 2, 3, 4, 5}};
  const Fingerprint database{{1, 7, 3, 5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(align(upload, database));
  }
}
BENCHMARK(BM_Align);

void BM_MatchAgainstFullDatabase(benchmark::State& state) {
  const Testbed& bed = testbed();
  const StopMatcher matcher(bed.database);
  Rng rng(42);
  const Fingerprint fp =
      bed.world.scan_stop(bed.world.city().routes()[0].stops()[5].stop, rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(fp));
  }
}
BENCHMARK(BM_MatchAgainstFullDatabase);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report_instance();
  bussense::bench::report_penalty_sweep();
  return bussense::bench::run_benchmarks(argc, argv);
}
