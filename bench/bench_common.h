// Shared fixture for the benchmark/reproduction harness.
//
// Every bench binary prints the rows/series of one paper table or figure
// first (so `./bench_*` regenerates the experiment), then runs its
// google-benchmark timings. The world and the surveyed fingerprint database
// are built once per process.
#pragma once

#include <benchmark/benchmark.h>

#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

namespace bussense::bench {

struct Testbed {
  World world;
  StopDatabase database;
};

/// The default 7 km x 4 km world with a 5-run mixed-condition survey DB.
const Testbed& testbed();

/// Names of the five routes used in the paper's Figure 2 feasibility study.
const std::vector<std::string>& figure2_routes();

/// Prints the banner, then initialises and runs google-benchmark with the
/// remaining CLI arguments. Returns the process exit code.
int run_benchmarks(int argc, char** argv);

}  // namespace bussense::bench
