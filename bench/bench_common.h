// Shared fixture for the benchmark/reproduction harness.
//
// Every bench binary prints the rows/series of one paper table or figure
// first (so `./bench_*` regenerates the experiment), then runs its
// google-benchmark timings. The world and the surveyed fingerprint database
// are built once per process.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

namespace bussense::bench {

struct Testbed {
  World world;
  StopDatabase database;
};

inline double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

/// p-quantile of an ascending-sorted vector (nearest-rank, no interpolation).
inline double percentile(const std::vector<double>& sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_values.size() - 1));
  return sorted_values[idx];
}

/// The build provenance stanza every report carries: git describe of the
/// built tree plus the flags that change what the numbers mean
/// (BUSSENSE_SIMD, sanitizer instrumentation, -march=native). Captured at
/// configure time as compile definitions on the benchcommon library.
std::string build_stanza();

/// Minimal machine-readable record of a bench run (schema documented by use
/// in EXPERIMENTS.md / future regression tooling). write() appends the
/// `"build"` stanza automatically, so every emitted report records which
/// binary produced it.
struct JsonReport {
  std::ostringstream body;
  bool first = true;

  void field(const std::string& raw) {
    if (!first) body << ",\n";
    first = false;
    body << "  " << raw;
  }
  void write(const std::string& path) {
    field(build_stanza());
    std::ofstream os(path);
    os << "{\n" << body.str() << "\n}\n";
  }
};

inline std::string num(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

/// The default 7 km x 4 km world with a 5-run mixed-condition survey DB.
const Testbed& testbed();

/// Names of the five routes used in the paper's Figure 2 feasibility study.
const std::vector<std::string>& figure2_routes();

/// Prints the banner, then initialises and runs google-benchmark with the
/// remaining CLI arguments. Returns the process exit code.
int run_benchmarks(int argc, char** argv);

}  // namespace bussense::bench
