// Figure 5 — clustering accuracy versus the threshold ε (Eq. 1).
//
// Paper: sweeping ε from 0 to 2 in steps of 0.1 on a route-243 trial; too
// small merges distinct stops, too big splits one stop; accuracy tolerates a
// wide plateau and the system uses ε = 0.6.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/table.h"

namespace bussense::bench {
namespace {

// A sample is correctly clustered when its cluster contains exactly the
// samples that share its ground-truth stop (pure and complete).
double clustering_accuracy(const std::vector<std::vector<SampleCluster>>& trips,
                           const std::vector<std::map<double, StopId>>& truths) {
  int total = 0, correct = 0;
  for (std::size_t t = 0; t < trips.size(); ++t) {
    const auto& truth = truths[t];
    for (const SampleCluster& cluster : trips[t]) {
      // Count samples of each true stop in this cluster.
      std::map<StopId, int> inside;
      for (const MatchedSample& m : cluster.members) {
        ++inside[truth.at(m.sample.time)];
      }
      for (const MatchedSample& m : cluster.members) {
        const StopId ts = truth.at(m.sample.time);
        // Total samples of that true stop in the whole trip.
        int overall = 0;
        for (const auto& [time, stop] : truth) {
          (void)time;
          if (stop == ts) ++overall;
        }
        ++total;
        const bool pure = inside.size() == 1;
        const bool complete = inside[ts] == overall;
        if (pure && complete) ++correct;
      }
    }
  }
  return total > 0 ? 100.0 * correct / total : 0.0;
}

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  const BusRoute& route = *city.route_by_name("243", 0);
  Rng rng(5);

  // Matched samples + ground truth for a batch of morning trips.
  std::vector<std::vector<MatchedSample>> matched_trips;
  std::vector<std::map<double, StopId>> truths;
  for (int k = 0; k < 24; ++k) {
    const SimTime depart = at_clock(0, 7, 20 + k * 25);
    const AnnotatedTrip trip = bed.world.simulate_single_trip(
        route, 1 + k % 3, static_cast<int>(route.stop_count()) - 2 - k % 2,
        depart, rng);
    if (trip.upload.empty()) continue;
    matched_trips.push_back(server.match_samples(trip.upload));
    std::map<double, StopId> truth;
    for (std::size_t i = 0; i < trip.upload.samples.size(); ++i) {
      truth[trip.upload.samples[i].time] =
          trip.truth.sample_stops[i] == kInvalidStop
              ? kInvalidStop
              : city.effective_stop(trip.truth.sample_stops[i]);
    }
    truths.push_back(std::move(truth));
  }

  print_banner(std::cout,
               "Figure 5: clustering accuracy vs threshold epsilon (route 243)");
  Table t({"epsilon", "accuracy (%)"});
  for (double eps = 0.0; eps <= 2.001; eps += 0.1) {
    ClusteringConfig cfg;
    cfg.epsilon = eps;
    std::vector<std::vector<SampleCluster>> clustered;
    clustered.reserve(matched_trips.size());
    for (const auto& samples : matched_trips) {
      clustered.push_back(cluster_samples(samples, cfg));
    }
    t.add_row(fmt(eps, 1), {clustering_accuracy(clustered, truths)}, 2);
  }
  t.print(std::cout);
  std::cout << "(paper: accuracy plateaus over a wide range; system uses "
               "epsilon = 0.6)\n";
}

void BM_ClusterTrip(benchmark::State& state) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  Rng rng(6);
  const BusRoute& route = *bed.world.city().route_by_name("243", 0);
  const AnnotatedTrip trip =
      bed.world.simulate_single_trip(route, 2, 18, at_clock(0, 8, 0), rng);
  const auto matched = server.match_samples(trip.upload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster_samples(matched, ClusteringConfig{}));
  }
}
BENCHMARK(BM_ClusterTrip);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
