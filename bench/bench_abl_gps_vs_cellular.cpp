// Ablation A3 — GPS-trace tracking vs the cellular beep pipeline.
//
// The paper's core argument: urban-canyon GPS is both less accurate for bus
// tracking and two orders of magnitude more power-hungry than cellular
// sampling. This bench runs both trackers over the same physical bus runs
// and reports estimation error beside the phone-side energy cost.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/gps_tracker.h"
#include "sensing/power_model.h"

namespace bussense::bench {
namespace {

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  const SegmentCatalog& catalog = server.catalog();
  const GpsTracker gps(catalog);
  Rng rng(41);

  RunningStats cellular_err, gps_err;
  int cellular_segments = 0, gps_segments = 0;
  for (const std::string name : {"79", "99", "243"}) {
    const BusRoute& route = *city.route_by_name(name, 0);
    for (int k = 0; k < 8; ++k) {
      const SimTime depart = at_clock(0, 7, 30) + k * 80 * kMinute;
      const int last = static_cast<int>(route.stop_count()) - 2;
      const std::map<int, int> board{{1, 1}};
      const std::map<int, int> alight{{last, 1}};
      const BusRun run = bed.world.buses().simulate_run(
          route, depart, board, alight, 600.0, rng, /*record_trajectory=*/true);
      auto score = [&](const std::vector<SpeedEstimate>& estimates,
                       RunningStats& err, int& segs) {
        for (const SpeedEstimate& e : estimates) {
          const SpanInfo* info = catalog.adjacent(e.segment);
          if (!info) continue;
          const double truth = bed.world.traffic().mean_car_speed_kmh(
              city.route(info->route), info->arc_from, info->arc_to, e.time);
          err.add(std::abs(e.att_speed_kmh - truth));
          ++segs;
        }
      };
      const AnnotatedTrip trip =
          bed.world.simulate_single_trip(route, 1, last, depart, rng);
      score(server.process_trip(trip.upload).estimates, cellular_err,
            cellular_segments);
      score(gps.estimate(route, bed.world.gps_trace(run, 2.0, rng)), gps_err,
            gps_segments);
    }
  }

  const PowerModel power;
  const PhoneProfile htc = htc_sensation_profile();
  print_banner(std::cout, "Ablation A3: cellular beep pipeline vs GPS traces");
  Table t({"tracker", "segments", "mean |error| (km/h)", "p90 |error|",
           "phone power (mW)"});
  t.add_row({"cellular + beeps (this system)", std::to_string(cellular_segments),
             fmt(cellular_err.mean(), 2), fmt(cellular_err.max(), 2),
             fmt(power.mean_power_mw(htc, SensorConfig::kCellularMicGoertzel), 0)});
  t.add_row({"GPS traces (0.5 Hz)", std::to_string(gps_segments),
             fmt(gps_err.mean(), 2), fmt(gps_err.max(), 2),
             fmt(power.mean_power_mw(htc, SensorConfig::kGpsMicGoertzel), 0)});
  t.print(std::cout);
  std::cout << "(paper: GPS medians 68 m error on buses and ~340 mW receiver "
               "draw; cellular hints are near-free and more reliable for "
               "stop-level tracking)\n";
}

void BM_GpsEstimateRun(benchmark::State& state) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  const GpsTracker gps(catalog);
  const BusRoute& route = *bed.world.city().route_by_name("79", 0);
  Rng rng(42);
  const BusRun run = bed.world.buses().simulate_run(
      route, at_clock(0, 9, 0), {{1, 1}}, {}, 600.0, rng, true);
  const auto fixes = bed.world.gps_trace(run, 2.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gps.estimate(route, fixes));
  }
}
BENCHMARK(BM_GpsEstimateRun)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
