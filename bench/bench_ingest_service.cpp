// Ingest service throughput, latency and metrics overhead.
//
// Four questions a deployment asks of the async front ends:
//
//   1. sustained throughput — trips/second through the bounded queue for
//      1/2/4/8 workers at two queue depths (kBlock, lossless);
//   2. scale-out — the sharded service's shard ladder (1/2/4/8 shards,
//      SPSC rings, no coordinator); the contract is monotone scaling —
//      adding shards must never cost throughput, and on a many-core host
//      it should scale near-linearly;
//   3. enqueue-to-fused latency — the p50/p99 of the single-queue
//      service's own ingest.queue_latency_s histogram, i.e. the time from
//      a producer handing over an upload until its estimates reach the
//      fusion layer;
//   4. observability cost — serial-server throughput with the metrics
//      layer on vs off (the instruments are relaxed atomics; the contract
//      is <= 5% overhead);
//   5. durability cost — the WAL fsync-policy ladder (off / kNever /
//      kInterval(256) / kEveryRecord) on the serial server; the contract
//      is <= 10% overhead for kInterval, the recommended deployment
//      setting.
//
// Emits BENCH_ingest.json with all five.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/ingest_service.h"
#include "core/workload_replay.h"
#include "trafficsim/lod_world.h"

namespace bussense::bench {
namespace {

struct Fmt {
  static std::string fixed(double v, int prec) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(prec);
    os << v;
    return os.str();
  }
};

std::vector<AnnotatedTrip>& bench_trips() {
  static std::vector<AnnotatedTrip> trips = [] {
    const Testbed& bed = testbed();
    ThreadPool pool(std::thread::hardware_concurrency());
    const auto specs = bed.world.make_trip_specs(0, 360, 91);
    return bed.world.simulate_trips(specs, 91, &pool);
  }();
  return trips;
}

// Replays every trip through the service from `producers` producer threads
// and returns {trips/s, p50 latency s, p99 latency s}.
struct RunResult {
  double trips_per_s = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
};

RunResult run_service(std::size_t workers, std::size_t capacity, int rounds) {
  const Testbed& bed = testbed();
  const auto& trips = bench_trips();
  IngestServiceConfig svc;
  svc.workers = workers;
  svc.queue_capacity = capacity;
  svc.backpressure = IngestServiceConfig::Backpressure::kBlock;
  IngestService service(bed.world.city(), bed.database, {}, svc);

  const int producers = 2;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int p = 0; p < producers; ++p) {
    pool.emplace_back([&, p] {
      for (int r = 0; r < rounds; ++r) {
        for (std::size_t i = static_cast<std::size_t>(p); i < trips.size();
             i += producers) {
          service.process_trip(trips[i].upload);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  service.drain();
  const double elapsed = seconds_since(start);

  RunResult out;
  out.trips_per_s =
      rounds * static_cast<double>(trips.size()) / std::max(elapsed, 1e-9);
  const auto lat =
      service.metrics().snapshot().histograms.at("ingest.queue_latency_s");
  out.p50_s = lat.percentile(0.50);
  out.p99_s = lat.percentile(0.99);
  return out;
}

// Replays every trip through the sharded service from two producer
// threads for `rounds` full passes and returns best-of-round trips/s.
// Best-of keeps the ladder comparable on noisy or core-starved hosts:
// the contract under test is "no negative scaling", not absolute speed.
double run_sharded(std::size_t shards, std::size_t ring_capacity, int rounds) {
  const Testbed& bed = testbed();
  const auto& trips = bench_trips();
  double best = 0.0;
  for (int r = 0; r < rounds; ++r) {
    ShardedIngestConfig cfg;
    cfg.shards = shards;
    cfg.ring_capacity = ring_capacity;
    cfg.backpressure = ShardedIngestConfig::Backpressure::kBlock;
    ShardedIngestService service(bed.world.city(), bed.database, {}, cfg);

    const int producers = 2;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    for (int p = 0; p < producers; ++p) {
      pool.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p); i < trips.size();
             i += producers) {
          service.process_trip(trips[i].upload);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    service.drain();
    const double elapsed = seconds_since(start);
    best = std::max(best, static_cast<double>(trips.size()) /
                              std::max(elapsed, 1e-9));
  }
  return best;
}

// One timed serial replay; returns trips/s.
double serial_round(bool metrics_on) {
  const Testbed& bed = testbed();
  const auto& trips = bench_trips();
  ServerConfig cfg;
  cfg.obs.enabled = metrics_on;
  TrafficServer server(bed.world.city(), bed.database, cfg);
  const auto start = std::chrono::steady_clock::now();
  for (const AnnotatedTrip& trip : trips) server.process_trip(trip.upload);
  return static_cast<double>(trips.size()) /
         std::max(seconds_since(start), 1e-9);
}

// One timed serial replay with the write-ahead trip log enabled under the
// given fsync policy (fresh log directory per round); returns trips/s.
double durable_round(FsyncPolicy policy) {
  const Testbed& bed = testbed();
  const auto& trips = bench_trips();
  static int round_no = 0;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("bussense_bench_wal_" + std::to_string(++round_no));
  std::filesystem::remove_all(dir);
  ServerConfig cfg;
  cfg.durability.enabled = true;
  cfg.durability.directory = dir.string();
  cfg.durability.fsync = policy;
  TrafficServer server(bed.world.city(), bed.database, cfg);
  server.open();
  const auto start = std::chrono::steady_clock::now();
  for (const AnnotatedTrip& trip : trips) server.process_trip(trip.upload);
  const double elapsed = seconds_since(start);
  server.close();
  std::filesystem::remove_all(dir);
  return static_cast<double>(trips.size()) / std::max(elapsed, 1e-9);
}

// The WAL fsync-policy ladder: best of `rounds` per policy, interleaved so
// noise hits every rung alike. "off" is the plain server (durability
// disabled) and the baseline the overheads are quoted against.
struct WalLadder {
  double off = 0.0, never = 0.0, interval = 0.0, every = 0.0;
};

WalLadder wal_policy_trips_per_s(int rounds) {
  (void)serial_round(true);
  (void)durable_round(FsyncPolicy::kNever);
  WalLadder best;
  for (int r = 0; r < rounds; ++r) {
    best.off = std::max(best.off, serial_round(true));
    best.never = std::max(best.never, durable_round(FsyncPolicy::kNever));
    best.interval =
        std::max(best.interval, durable_round(FsyncPolicy::kInterval));
    best.every = std::max(best.every, durable_round(FsyncPolicy::kEveryRecord));
  }
  return best;
}

// Metrics-on vs metrics-off throughput, best of `rounds` with the two
// configurations interleaved (and a discarded warmup) so cache warmup and
// scheduling noise hit both sides alike.
std::pair<double, double> serial_on_off_trips_per_s(int rounds) {
  (void)serial_round(false);
  (void)serial_round(true);
  double best_off = 0.0, best_on = 0.0;
  for (int r = 0; r < rounds; ++r) {
    best_off = std::max(best_off, serial_round(false));
    best_on = std::max(best_on, serial_round(true));
  }
  return {best_on, best_off};
}

// ------------------------------------------------------- LOD city-week

/// The tiered-fidelity metropolis workload (DESIGN.md §15): a city-week of
/// rider trips generated by LodWorld and replayed through the sharded
/// ingest tier. Three things are measured and recorded:
///
///   1. determinism — the day-0 trip stream digested at 1/2/4/8 simulation
///      threads, and the full week digested twice with the same seed at
///      different thread counts, must be bit-identical (the acceptance
///      contract of the generator);
///   2. the rush-hour load ladder — the weekly demand multiplier at the
///      hours a deployment cares about, weekday vs weekend, plus per-day
///      trip volumes;
///   3. replay throughput — trips/s sustained by ShardedIngestService over
///      the whole week, with the admission stage enabled.
///
/// BUSSENSE_LOD_RIDERS overrides the metropolis size (default 1M; CI's
/// fast tier sets it low, scripts/tier1.sh's BUSSENSE_LOD stage runs the
/// full million).
void lod_report(JsonReport& json) {
  std::int64_t riders = 1'000'000;
  if (const char* env = std::getenv("BUSSENSE_LOD_RIDERS")) {
    riders = std::atoll(env);
  }
  if (riders <= 0) {
    std::cout << "lod cityweek: skipped (BUSSENSE_LOD_RIDERS=0)\n";
    return;
  }
  print_banner(std::cout, "LOD metropolis: deterministic city-week");

  const Testbed& bed = testbed();
  LodConfig lod_config;
  const LodWorld lod(bed.world, riders, lod_config);
  const LodCensus& census = lod.census();
  std::cout << "metropolis: riders=" << census.riders
            << " focus=" << census.focus << " event=" << census.event
            << " onrails=" << census.on_rails << "\n";

  // 1a. Day-0 thread ladder: same stream at every thread count.
  std::vector<std::uint64_t> day0_digests;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    day0_digests.push_back(LodWorld::stream_digest(lod.simulate_day(0, &pool)));
  }
  bool day0_identical = true;
  for (const std::uint64_t d : day0_digests) {
    day0_identical = day0_identical && d == day0_digests.front();
  }
  std::cout << "day-0 digest @1/2/4/8 threads: " << std::hex
            << day0_digests.front() << std::dec
            << (day0_identical ? " (bit-identical)" : " MISMATCH") << "\n";

  // 1b + 3. Week run A (8 threads): digest each day, replay it through the
  // sharded service, then free it — the week never lives in memory whole.
  ShardedIngestConfig sharding;
  sharding.shards = 4;
  ServerConfig server_config;
  server_config.admission.enabled = true;
  ShardedIngestService service(bed.world.city(), bed.database, server_config,
                               sharding);
  ThreadPool pool_a(8);
  std::vector<std::uint64_t> week_a;
  std::vector<std::size_t> day_trips;
  std::uint64_t accepted = 0, submitted = 0;
  double replay_s = 0.0, generate_s = 0.0;
  for (int day = 0; day < 7; ++day) {
    const auto gen_start = std::chrono::steady_clock::now();
    const std::vector<LodTrip> trips = lod.simulate_day(day, &pool_a);
    generate_s += seconds_since(gen_start);
    week_a.push_back(LodWorld::stream_digest(trips));
    day_trips.push_back(trips.size());
    std::vector<TimedUpload> workload;
    workload.reserve(trips.size());
    for (const LodTrip& t : trips) {
      workload.push_back(TimedUpload{t.trip.upload, t.arrival});
    }
    ReplayOptions options;
    options.advance_every_s = 900.0;
    const auto start = std::chrono::steady_clock::now();
    const ReplayStats stats = replay_workload(service, workload, options);
    replay_s += seconds_since(start);
    submitted += stats.submitted;
    accepted += stats.accepted;
  }
  const double replay_tps =
      static_cast<double>(submitted) / std::max(replay_s, 1e-9);
  std::cout << "week: " << submitted << " trips generated in "
            << Fmt::fixed(generate_s, 1) << " s, replayed at "
            << Fmt::fixed(replay_tps, 0) << " trips/s (accepted " << accepted
            << "/" << submitted << ")\n";

  // 1c. Week run B, same seed, different thread count: per-day digests
  // must match run A's exactly.
  ThreadPool pool_b(3);
  bool week_identical = true;
  for (int day = 0; day < 7; ++day) {
    week_identical =
        week_identical &&
        LodWorld::stream_digest(lod.simulate_day(day, &pool_b)) == week_a[day];
  }
  std::cout << "week re-run (same seed, 3 threads): "
            << (week_identical ? "bit-identical" : "MISMATCH") << "\n";

  // 2. The rush-hour load ladder, weekday vs weekend.
  const int ladder_hours[] = {6, 7, 8, 9, 12, 17, 18, 19, 22};
  Table lt({"hour", "weekday load", "weekend load"});
  std::ostringstream lrows;
  bool lfirst = true;
  for (const int hour : ladder_hours) {
    const double weekday = lod.load_factor(at_clock(0, hour));
    const double weekend = lod.load_factor(at_clock(5, hour));
    lt.add_row({std::to_string(hour) + ":00", Fmt::fixed(weekday, 3),
                Fmt::fixed(weekend, 3)});
    if (!lfirst) lrows << ", ";
    lfirst = false;
    lrows << "{\"hour\": " << hour << ", \"weekday\": " << num(weekday)
          << ", \"weekend\": " << num(weekend) << "}";
  }
  lt.print(std::cout);

  std::ostringstream drows;
  for (std::size_t day = 0; day < day_trips.size(); ++day) {
    if (day > 0) drows << ", ";
    drows << day_trips[day];
  }
  json.field(
      "\"lod_cityweek\": {\"riders\": " + std::to_string(riders) +
      ", \"focus\": " + std::to_string(census.focus) +
      ", \"event\": " + std::to_string(census.event) +
      ", \"onrails\": " + std::to_string(census.on_rails) +
      ", \"trips\": " + std::to_string(submitted) +
      ", \"accepted\": " + std::to_string(accepted) +
      ", \"trips_per_day\": [" + drows.str() + "]" +
      ", \"day0_digest\": \"" + [&] {
        std::ostringstream os;
        os << std::hex << day0_digests.front();
        return os.str();
      }() + "\", \"thread_ladder_identical\": " +
      (day0_identical ? "true" : "false") +
      ", \"week_rerun_identical\": " + (week_identical ? "true" : "false") +
      ", \"generate_s\": " + num(generate_s) +
      ", \"replay_trips_per_s\": " + num(replay_tps) +
      ", \"load_ladder\": [" + lrows.str() + "]}");

  if (!day0_identical || !week_identical) {
    std::cerr << "LOD determinism violation — digests diverged\n";
    std::exit(1);
  }
}

void report() {
  JsonReport json;
  const std::size_t n_trips = bench_trips().size();
  std::cout << "workload: " << n_trips << " trips on the default city\n";

  print_banner(std::cout, "Ingest service: sustained throughput & latency");
  Table t({"workers", "queue", "trips/s", "p50 enq->fused", "p99 enq->fused"});
  std::ostringstream rows;
  bool first = true;
  for (const std::size_t capacity : {64u, 4096u}) {
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      const RunResult r = run_service(workers, capacity, 3);
      t.add_row({std::to_string(workers), std::to_string(capacity),
                 Fmt::fixed(r.trips_per_s, 0),
                 Fmt::fixed(1e6 * r.p50_s, 1) + " us",
                 Fmt::fixed(1e6 * r.p99_s, 1) + " us"});
      if (!first) rows << ", ";
      first = false;
      rows << "{\"workers\": " << workers << ", \"queue_capacity\": " << capacity
           << ", \"trips_per_s\": " << num(r.trips_per_s)
           << ", \"p50_enqueue_to_fused_s\": " << num(r.p50_s)
           << ", \"p99_enqueue_to_fused_s\": " << num(r.p99_s) << "}";
    }
  }
  t.print(std::cout);
  json.field("\"service\": [" + rows.str() + "]");

  print_banner(std::cout, "Sharded ingest: shard ladder (SPSC rings)");
  Table st({"shards", "trips/s", "vs 1 shard"});
  std::ostringstream srows;
  double one_shard = 0.0;
  bool sfirst = true;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const double tps = run_sharded(shards, 1024, 3);
    if (shards == 1) one_shard = tps;
    st.add_row({std::to_string(shards), Fmt::fixed(tps, 0),
                Fmt::fixed(one_shard > 0.0 ? tps / one_shard : 0.0, 2) + "x"});
    if (!sfirst) srows << ", ";
    sfirst = false;
    srows << "{\"shards\": " << shards
          << ", \"trips_per_s\": " << num(tps) << "}";
  }
  st.print(std::cout);
  json.field("\"sharded\": [" + srows.str() + "]");

  print_banner(std::cout, "Metrics layer overhead (serial server)");
  const auto [on, off] = serial_on_off_trips_per_s(4);
  const double overhead = off > 0.0 ? (off - on) / off : 0.0;
  Table ot({"observability", "trips/s"});
  ot.add_row({"off", Fmt::fixed(off, 0)});
  ot.add_row({"on", Fmt::fixed(on, 0)});
  ot.print(std::cout);
  std::cout << "overhead: " << Fmt::fixed(100.0 * overhead, 2)
            << "% (relaxed-atomic instruments + per-stage clock reads)\n";
  json.field("\"metrics_overhead\": {\"trips_per_s_off\": " + num(off) +
             ", \"trips_per_s_on\": " + num(on) +
             ", \"overhead_fraction\": " + num(overhead) + "}");

  print_banner(std::cout, "Durability: WAL fsync-policy ladder (serial)");
  const WalLadder wal = wal_policy_trips_per_s(5);
  const auto wal_over = [&](double tps) {
    return wal.off > 0.0 ? (wal.off - tps) / wal.off : 0.0;
  };
  Table wt({"wal policy", "trips/s", "overhead vs off"});
  std::ostringstream wrows;
  bool wfirst = true;
  const std::pair<const char*, double> rungs[] = {
      {"off", wal.off},
      {"kNever", wal.never},
      {"kInterval(256)", wal.interval},
      {"kEveryRecord", wal.every}};
  for (const auto& [name, tps] : rungs) {
    wt.add_row({name, Fmt::fixed(tps, 0),
                Fmt::fixed(100.0 * wal_over(tps), 2) + "%"});
    if (!wfirst) wrows << ", ";
    wfirst = false;
    wrows << "{\"policy\": \"" << name << "\", \"trips_per_s\": " << num(tps)
          << ", \"overhead_fraction\": " << num(wal_over(tps)) << "}";
  }
  wt.print(std::cout);
  std::cout << "contract: kInterval overhead <= 10% (recommended setting)\n";
  json.field("\"wal_policy\": [" + wrows.str() + "]");

  lod_report(json);

  json.write("BENCH_ingest.json");
  std::cout << "wrote BENCH_ingest.json\n";
}

void BM_IngestServiceProcessTrip(benchmark::State& state) {
  const Testbed& bed = testbed();
  const auto& trips = bench_trips();
  IngestServiceConfig svc;
  svc.workers = static_cast<std::size_t>(state.range(0));
  svc.queue_capacity = 256;
  IngestService service(bed.world.city(), bed.database, {}, svc);
  std::size_t i = 0;
  for (auto _ : state) {
    service.process_trip(trips[i % trips.size()].upload);
    ++i;
  }
  service.drain();
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_IngestServiceProcessTrip)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_MetricsCounterInc(benchmark::State& state) {
  MetricsRegistry reg;
  Counter& c = reg.counter("bench.counter");
  for (auto _ : state) {
    c.inc();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  MetricsRegistry reg;
  BucketHistogram& h = reg.histogram("bench.hist");
  double v = 1e-6;
  for (auto _ : state) {
    h.record(v);
    v = v < 1.0 ? v * 1.7 : 1e-6;  // sweep the bucket ladder
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricsHistogramRecord);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
