// Figure 11 — CDF of the speed difference Δv = |v_T − v_A| by speed class.
//
// Paper (2-month aggregate): Δv is smallest (~3–5 km/h) for low-speed
// traffic (v_A < 40 km/h), largest (~8–20 km/h) for high-speed traffic
// (v_A > 50), and dispersed up to ~20 for medium speeds — i.e. the system
// is most reliable exactly where it matters, in congestion.
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"

namespace bussense::bench {
namespace {

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  Rng rng(11);

  EmpiricalDistribution low, medium, high;
  const int days = 4;  // compressed stand-in for the paper's 2 months
  for (int day = 0; day < days; ++day) {
    const auto result = bed.world.simulate_day(day, 2.0, rng);
    for (const AnnotatedTrip& trip : result.trips) {
      const auto report = server.process_trip(trip.upload);
      for (const SpeedEstimate& e : report.estimates) {
        const SpanInfo* info = server.catalog().adjacent(e.segment);
        if (!info) continue;
        const double vt = bed.world.taxis().official_speed_over(
            city.route(info->route), info->arc_from, info->arc_to, e.time);
        const double dv = std::abs(vt - e.att_speed_kmh);
        if (e.att_speed_kmh < 40.0) {
          low.add(dv);
        } else if (e.att_speed_kmh <= 50.0) {
          medium.add(dv);
        } else {
          high.add(dv);
        }
      }
    }
  }

  print_banner(std::cout,
               "Figure 11: CDF of speed difference dv = |v_T - v_A| by class");
  Table t({"dv (km/h)", "low (<40)", "medium (40-50)", "high (>50)"});
  for (double x = 0.0; x <= 24.0; x += 2.0) {
    t.add_row(fmt(x, 0), {low.empty() ? 0.0 : low.cdf(x),
                          medium.empty() ? 0.0 : medium.cdf(x),
                          high.empty() ? 0.0 : high.cdf(x)});
  }
  t.print(std::cout);
  Table medians({"class", "samples", "median dv", "p90 dv"});
  auto add = [&](const std::string& name, const EmpiricalDistribution& d) {
    medians.add_row({name, std::to_string(d.count()),
                     d.empty() ? "-" : fmt(d.median(), 1),
                     d.empty() ? "-" : fmt(d.percentile(90), 1)});
  };
  add("low (<40 km/h)", low);
  add("medium (40-50 km/h)", medium);
  add("high (>50 km/h)", high);
  medians.print(std::cout);
  std::cout << "(paper: dv lowest ~3-5 for low speed, ~8-20 for high speed, "
               "dispersed <=20 for medium; simulated horizon " << days
            << " days vs the paper's 2 months)\n";
}

void BM_SimulateDay(benchmark::State& state) {
  const Testbed& bed = testbed();
  Rng rng(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.world.simulate_day(0, 0.5, rng));
  }
}
BENCHMARK(BM_SimulateDay)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
