// Section IV-D — Goertzel vs FFT cost for beep detection.
//
// Paper: Goertzel is O(K_g·N·M) for M monitored frequencies vs the FFT's
// O(K_f·N·log N) with K_f >> K_g; with M = 2 < log2(N) the Goertzel front
// end is the clear winner and cuts the data-collection app's power draw.
// This bench measures actual wall-clock per analysis window and prints the
// operation-count model beside it.
#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "dsp/audio_synth.h"
#include "dsp/beep_detector.h"
#include "dsp/fft.h"
#include "dsp/goertzel.h"

namespace bussense::bench {
namespace {

std::vector<float> test_window(std::size_t n) {
  std::vector<float> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<float>(
        0.3 * std::sin(2.0 * std::numbers::pi * 1000.0 * i / 8000.0) +
        0.1 * std::sin(2.0 * std::numbers::pi * 130.0 * i / 8000.0));
  }
  return w;
}

void report() {
  print_banner(std::cout, "Section IV-D: Goertzel vs FFT operation counts");
  Table t({"window N", "Goertzel MACs (M=2)", "FFT butterflies",
           "log2(N) vs M"});
  for (std::size_t n : {80, 160, 240, 512, 1024}) {
    t.add_row({std::to_string(n), std::to_string(goertzel_op_count(n, 2)),
               std::to_string(fft_op_count(n)),
               fmt(std::log2(static_cast<double>(next_pow2(n))), 1) + " vs 2"});
  }
  t.print(std::cout);
  std::cout << "(Goertzel wins whenever the number of monitored tones M is "
               "below log2(N) — the paper's criterion)\n";
}

void BM_GoertzelWindow(benchmark::State& state) {
  const auto w = test_window(static_cast<std::size_t>(state.range(0)));
  const std::vector<double> tones{1000.0, 3000.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(goertzel_powers(w, 8000.0, tones));
  }
}
BENCHMARK(BM_GoertzelWindow)->Arg(80)->Arg(240)->Arg(1024);

void BM_FftWindow(benchmark::State& state) {
  const auto w = test_window(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(power_spectrum(w));
  }
}
BENCHMARK(BM_FftWindow)->Arg(80)->Arg(240)->Arg(1024);

void BM_BeepDetectorSecondOfAudio(benchmark::State& state) {
  Rng rng(1);
  const auto audio = synthesize_bus_audio(AudioEnvironmentConfig{}, 1.0,
                                          {0.5}, rng);
  for (auto _ : state) {
    BeepDetector detector;
    benchmark::DoNotOptimize(detector.process(audio));
  }
}
BENCHMARK(BM_BeepDetectorSecondOfAudio)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
