// Section IV-D — Goertzel vs FFT cost for beep detection.
//
// Paper: Goertzel is O(K_g·N·M) for M monitored frequencies vs the FFT's
// O(K_f·N·log N) with K_f >> K_g; with M = 2 < log2(N) the Goertzel front
// end is the clear winner and cuts the data-collection app's power draw.
// This bench measures actual wall-clock per analysis window and prints the
// operation-count model beside it.
//
// It also reproduces the PR 3 sensing fast-path numbers and emits
// BENCH_sensing.json: cell-scan throughput by city size (spatial tower index
// vs brute force), beep-detector frame analysis (one-pass GoertzelBank vs
// per-tone scalar Goertzel + separate energy pass), and parallel trip-driver
// scaling at 1/2/4/8 threads with a bit-identity check against the serial
// run. All three fast paths are property-tested result-identical to their
// reference paths (tests/test_sensing_perf.cpp), so these speedups are free.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <numbers>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "cellular/deployment.h"
#include "cellular/scanner.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "dsp/audio_synth.h"
#include "dsp/beep_detector.h"
#include "dsp/fft.h"
#include "dsp/goertzel.h"
#include "dsp/goertzel_bank.h"

namespace bussense::bench {
namespace {

std::vector<float> test_window(std::size_t n) {
  std::vector<float> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<float>(
        0.3 * std::sin(2.0 * std::numbers::pi * 1000.0 * i / 8000.0) +
        0.1 * std::sin(2.0 * std::numbers::pi * 130.0 * i / 8000.0));
  }
  return w;
}

void report() {
  print_banner(std::cout, "Section IV-D: Goertzel vs FFT operation counts");
  Table t({"window N", "Goertzel MACs (M=2)", "FFT butterflies",
           "log2(N) vs M"});
  for (std::size_t n : {80, 160, 240, 512, 1024}) {
    t.add_row({std::to_string(n), std::to_string(goertzel_op_count(n, 2)),
               std::to_string(fft_op_count(n)),
               fmt(std::log2(static_cast<double>(next_pow2(n))), 1) + " vs 2"});
  }
  t.print(std::cout);
  std::cout << "(Goertzel wins whenever the number of monitored tones M is "
               "below log2(N) — the paper's criterion)\n";
}

// ------------------------------------------------- PR 3 sensing fast path

struct ScanCity {
  std::string label;
  std::vector<CellTower> towers;
  std::unique_ptr<RadioEnvironment> env;
  double width, height;
};

std::vector<ScanCity>& scan_cities() {
  static std::vector<ScanCity> cities = [] {
    std::vector<ScanCity> v;
    const auto add = [&](std::string label, double w, double h,
                         std::uint64_t seed) {
      ScanCity c{std::move(label), {}, nullptr, w, h};
      Rng rng(seed);
      c.towers = deploy_towers({{0.0, 0.0}, {w, h}}, DeploymentConfig{}, rng);
      c.env = std::make_unique<RadioEnvironment>(c.towers, PropagationConfig{},
                                                 seed + 1);
      v.push_back(std::move(c));
    };
    add("quarter testbed", 3500, 2000, 31);
    add("full testbed", 7000, 4000, 32);
    add("district", 14000, 8000, 33);
    add("full city", 28000, 16000, 34);
    return v;
  }();
  return cities;
}

double time_scans(const CellScanner& scanner, const ScanCity& city,
                  int scans) {
  Rng pos_rng(7);
  Rng scan_rng(8);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < scans; ++i) {
    const Point p{pos_rng.uniform(0.0, city.width),
                  pos_rng.uniform(0.0, city.height)};
    benchmark::DoNotOptimize(scanner.scan(*city.env, p, scan_rng, i % 2));
  }
  return scans / std::max(seconds_since(start), 1e-9);
}

void sensing_report() {
  JsonReport json;

  // 1. Cell-scan throughput: spatial tower index vs the brute-force loop.
  print_banner(std::cout, "Sensing fast path: indexed vs brute-force scan");
  {
    Table t({"deployment", "towers", "cand/scan", "brute scans/s",
             "indexed scans/s", "speedup"});
    std::ostringstream rows;
    bool first = true;
    for (const ScanCity& city : scan_cities()) {
      ScannerConfig brute_cfg;
      brute_cfg.accel.use_index = false;
      const CellScanner indexed{ScannerConfig{}};
      const CellScanner brute{brute_cfg};
      // Untimed instrumented pass for the work counters.
      ScanStats total{};
      {
        Rng pos_rng(7), scan_rng(8);
        for (int i = 0; i < 200; ++i) {
          ScanStats s;
          const Point p{pos_rng.uniform(0.0, city.width),
                        pos_rng.uniform(0.0, city.height)};
          (void)indexed.scan(*city.env, p, scan_rng, i % 2, &s);
          total.reach_candidates += s.reach_candidates;
        }
      }
      // Fewer timed scans on the bigger deployments (brute force is slow
      // there — that is the point), enough for stable throughput numbers.
      const int scans = std::clamp(
          static_cast<int>(1000000 / city.towers.size()), 500, 4000);
      const double brute_sps = time_scans(brute, city, scans);
      const double indexed_sps = time_scans(indexed, city, scans);
      const double speedup = indexed_sps / std::max(brute_sps, 1e-9);
      const double cand = static_cast<double>(total.reach_candidates) / 200.0;
      t.add_row({city.label, std::to_string(city.towers.size()), fmt(cand, 1),
                 fmt(brute_sps, 0), fmt(indexed_sps, 0),
                 fmt(speedup, 1) + "x"});
      if (!first) rows << ", ";
      first = false;
      rows << "{\"label\": \"" << city.label
           << "\", \"towers\": " << city.towers.size()
           << ", \"candidates_per_scan\": " << num(cand)
           << ", \"brute_scans_per_s\": " << num(brute_sps)
           << ", \"indexed_scans_per_s\": " << num(indexed_sps)
           << ", \"speedup\": " << num(speedup) << "}";
    }
    t.print(std::cout);
    std::cout << "(both paths are bit-identical; the index only skips towers "
                 "provably below the modem sensitivity. The speedup tracks\n"
                 " city area / reach-disk area: the ~3-4 km conservative "
                 "reach disk covers much of the 7x4 km unit testbed, while\n"
                 " the paper's deployment is city-wide — Singapore is ~50x27 "
                 "km, so the 28x16 km row is still conservative)\n";
    json.field("\"scan\": [" + rows.str() + "]");
  }

  // 2. Beep-detector frame path: one-pass bank + O(1) ring windows vs the
  // pre-PR-3 frame path (one goertzel_power traversal per tone, a separate
  // energy pass, erase(begin()) smoothing windows and two-pass baseline
  // statistics every frame). The legacy path is emulated here verbatim so
  // the comparison survives the old code's removal.
  print_banner(std::cout, "Sensing fast path: beep-detector frame analysis");
  {
    const BeepDetectorConfig det;
    const auto frame = test_window(
        static_cast<std::size_t>(det.frame_seconds * det.sample_rate_hz));
    const std::size_t smooth_frames = static_cast<std::size_t>(
        det.smoothing_seconds / det.frame_seconds + 0.5);
    const int frames = 200000;

    // Legacy: per-band full traversals + O(window) vector bookkeeping.
    struct LegacyBand {
      std::vector<double> recent;
      std::vector<double> smooth_buf;
    };
    std::vector<LegacyBand> legacy(det.tone_frequencies_hz.size());
    double sink = 0.0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < frames; ++i) {
      double energy = 0.0;
      for (const float s : frame) energy += static_cast<double>(s) * s;
      const double norm = energy / static_cast<double>(frame.size()) + 1e-12;
      for (std::size_t b = 0; b < legacy.size(); ++b) {
        LegacyBand& band = legacy[b];
        const double raw =
            goertzel_power(frame, det.sample_rate_hz,
                           det.tone_frequencies_hz[b]) /
            norm;
        band.recent.push_back(raw);
        if (band.recent.size() > smooth_frames) {
          band.recent.erase(band.recent.begin());
        }
        double sum = 0.0;
        for (const double v : band.recent) sum += v;
        const double smoothed = sum / static_cast<double>(band.recent.size());
        double mean = 0.0;
        for (const double v : band.smooth_buf) mean += v;
        if (!band.smooth_buf.empty()) {
          mean /= static_cast<double>(band.smooth_buf.size());
        }
        double var = 0.0;
        for (const double v : band.smooth_buf) var += (v - mean) * (v - mean);
        sink += var + mean;
        band.smooth_buf.push_back(smoothed);
        if (band.smooth_buf.size() > det.baseline_frames) {
          band.smooth_buf.erase(band.smooth_buf.begin());
        }
      }
    }
    benchmark::DoNotOptimize(sink);
    const double legacy_fps = frames / std::max(seconds_since(t0), 1e-9);

    // New: fused one-pass bank + running-sum rings.
    GoertzelBank bank(det.sample_rate_hz, det.tone_frequencies_hz);
    std::vector<double> powers(bank.size());
    struct NewBand {
      NewBand(std::size_t s, std::size_t b) : recent(s), baseline(b) {}
      RingWindow recent;
      RingWindow baseline;
    };
    std::vector<NewBand> fresh;
    for (std::size_t b = 0; b < bank.size(); ++b) {
      fresh.emplace_back(smooth_frames, det.baseline_frames);
    }
    const auto t1 = std::chrono::steady_clock::now();
    for (int i = 0; i < frames; ++i) {
      const double norm = bank.analyze(frame, powers) + 1e-12;
      for (std::size_t b = 0; b < fresh.size(); ++b) {
        NewBand& band = fresh[b];
        band.recent.push(powers[b] / norm);
        const double smoothed = band.recent.mean();
        sink += band.baseline.mean() + band.baseline.variance();
        band.baseline.push(smoothed);
      }
    }
    benchmark::DoNotOptimize(sink);
    const double bank_fps = frames / std::max(seconds_since(t1), 1e-9);
    const double speedup = bank_fps / std::max(legacy_fps, 1e-9);

    Table t({"frame path", "frames/s"});
    t.add_row({"legacy (K+1 passes, erase windows)", fmt(legacy_fps, 0)});
    t.add_row({"bank + ring windows (one pass)", fmt(bank_fps, 0)});
    t.print(std::cout);
    std::cout << "detector speedup: " << fmt(speedup, 2) << "x on "
              << frame.size() << "-sample frames, K = " << bank.size()
              << " tones\n";
    json.field("\"detector\": {\"frame_samples\": " +
               std::to_string(frame.size()) +
               ", \"tones\": " + std::to_string(bank.size()) +
               ", \"legacy_frames_per_s\": " + num(legacy_fps) +
               ", \"bank_frames_per_s\": " + num(bank_fps) +
               ", \"speedup\": " + num(speedup) + "}");
  }

  // 3. Parallel trip driver: trips/s at 1/2/4/8 threads, checked
  // bit-identical against the serial run.
  print_banner(std::cout, "Sensing fast path: parallel trip driver");
  {
    WorldConfig cfg;
    cfg.city.route_names = {"79", "99", "241", "243"};
    cfg.seed = 12;
    const World world(cfg);
    const auto specs = world.make_trip_specs(0, 400, 500);
    const auto serial = world.simulate_trips(specs, 500, nullptr);

    const auto same = [](const std::vector<AnnotatedTrip>& a,
                         const std::vector<AnnotatedTrip>& b) {
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].upload.samples.size() != b[i].upload.samples.size()) {
          return false;
        }
        for (std::size_t s = 0; s < a[i].upload.samples.size(); ++s) {
          if (a[i].upload.samples[s].time != b[i].upload.samples[s].time ||
              a[i].upload.samples[s].fingerprint.cells !=
                  b[i].upload.samples[s].fingerprint.cells) {
            return false;
          }
        }
      }
      return true;
    };

    Table t({"threads", "trips/s", "scaling", "identical to serial"});
    std::ostringstream rows;
    double base_tps = 0.0;
    bool identical = true, first = true;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      const int rounds = 3;
      std::vector<AnnotatedTrip> trips;
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < rounds; ++r) {
        trips = world.simulate_trips(specs, 500, &pool);
      }
      const double tps =
          rounds * specs.size() / std::max(seconds_since(start), 1e-9);
      if (threads == 1) base_tps = tps;
      const bool ok = same(serial, trips);
      identical = identical && ok;
      t.add_row({std::to_string(threads), fmt(tps, 0),
                 fmt(tps / std::max(base_tps, 1e-9), 2) + "x",
                 ok ? "yes" : "NO"});
      if (!first) rows << ", ";
      first = false;
      rows << "{\"threads\": " << threads << ", \"trips_per_s\": " << num(tps)
           << ", \"scaling\": " << num(tps / std::max(base_tps, 1e-9)) << "}";
    }
    t.print(std::cout);
    std::cout << "(each trip is seeded from (seed, index); the schedule "
                 "cannot influence the result. Scaling tracks the available "
                 "cores — this host has "
              << std::thread::hardware_concurrency()
              << " — and stays flat on a single-core host)\n";
    json.field("\"trips\": [" + rows.str() + "]");
    json.field("\"hardware_threads\": " +
               std::to_string(std::thread::hardware_concurrency()));
    json.field(std::string("\"trips_bit_identical\": ") +
               (identical ? "true" : "false"));
  }

  json.write("BENCH_sensing.json");
  std::cout << "wrote BENCH_sensing.json\n";
}

void BM_GoertzelWindow(benchmark::State& state) {
  const auto w = test_window(static_cast<std::size_t>(state.range(0)));
  const std::vector<double> tones{1000.0, 3000.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(goertzel_powers(w, 8000.0, tones));
  }
}
BENCHMARK(BM_GoertzelWindow)->Arg(80)->Arg(240)->Arg(1024);

void BM_FftWindow(benchmark::State& state) {
  const auto w = test_window(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(power_spectrum(w));
  }
}
BENCHMARK(BM_FftWindow)->Arg(80)->Arg(240)->Arg(1024);

void BM_BeepDetectorSecondOfAudio(benchmark::State& state) {
  Rng rng(1);
  const auto audio = synthesize_bus_audio(AudioEnvironmentConfig{}, 1.0,
                                          {0.5}, rng);
  for (auto _ : state) {
    BeepDetector detector;
    benchmark::DoNotOptimize(detector.process(audio));
  }
}
BENCHMARK(BM_BeepDetectorSecondOfAudio)->Unit(benchmark::kMicrosecond);

void BM_GoertzelBankWindow(benchmark::State& state) {
  const auto w = test_window(static_cast<std::size_t>(state.range(0)));
  GoertzelBank bank(8000.0, std::vector<double>{1000.0, 3000.0});
  std::vector<double> powers(bank.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.analyze(w, powers));
  }
}
BENCHMARK(BM_GoertzelBankWindow)->Arg(80)->Arg(240)->Arg(1024);

void BM_ScanFullCity(benchmark::State& state) {
  const ScanCity& city = scan_cities()[1];
  ScannerConfig cfg;
  cfg.accel.use_index = state.range(0) != 0;
  const CellScanner scanner(cfg);
  Rng pos_rng(7), scan_rng(8);
  for (auto _ : state) {
    const Point p{pos_rng.uniform(0.0, city.width),
                  pos_rng.uniform(0.0, city.height)};
    benchmark::DoNotOptimize(scanner.scan(*city.env, p, scan_rng));
  }
}
BENCHMARK(BM_ScanFullCity)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  bussense::bench::sensing_report();
  return bussense::bench::run_benchmarks(argc, argv);
}
