// Figure 2(b)/(c) — feasibility of cellular fingerprints as bus-stop
// signatures.
//
// Paper (86 stops on 5 routes): self-similarity of same-stop fingerprints
// is high (~90% of pairs score >= 3, >50% score >= 4); cross-similarity of
// different stops is low (>=70% score 0, >90% below 2; merging opposite-
// side twins, >94% below 2).
#include <iostream>
#include <map>
#include <set>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/matching.h"
#include "core/stop_database.h"

namespace bussense::bench {
namespace {

// Figure 2(a): the measured bus routes and their stops, as a character map
// (one letter per route, 'o' where stops of several routes coincide).
void print_route_map(const City& city) {
  print_banner(std::cout, "Figure 2(a): measured bus routes (5-route study)");
  const int cols = 100, rows = 24;
  std::vector<std::string> grid(rows, std::string(cols, ' '));
  const BoundingBox& region = city.region();
  auto plot = [&](Point p, char c) {
    const int x = static_cast<int>((p.x - region.min.x) / region.width() * (cols - 1));
    const int y = static_cast<int>((p.y - region.min.y) / region.height() * (rows - 1));
    if (x < 0 || x >= cols || y < 0 || y >= rows) return;
    char& cell = grid[static_cast<std::size_t>(rows - 1 - y)][static_cast<std::size_t>(x)];
    cell = (cell == ' ' || cell == c) ? c : 'o';
  };
  char label = 'A';
  for (const std::string& name : figure2_routes()) {
    const BusRoute* route = city.route_by_name(name, 0);
    for (double arc = 0.0; arc < route->length(); arc += 60.0) {
      plot(route->path().point_at(arc), label);
    }
    std::cout << "  " << label << " = route " << name << "  ("
              << route->stop_count() << " stops, "
              << fmt(route->length() / 1000.0, 1) << " km)\n";
    ++label;
  }
  for (const std::string& row : grid) std::cout << row << '\n';
}

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  Rng rng(11);
  print_route_map(city);

  // Collect 8 survey runs per effective stop of the 5 study routes.
  std::set<StopId> eff_stops;
  std::map<std::string, std::set<StopId>> by_route;
  for (const std::string& name : figure2_routes()) {
    for (int dir = 0; dir < 2; ++dir) {
      const BusRoute* route = city.route_by_name(name, dir);
      for (const RouteStop& rs : route->stops()) {
        const StopId eff = city.effective_stop(rs.stop);
        eff_stops.insert(eff);
        by_route[name].insert(eff);
      }
    }
  }
  std::map<StopId, std::vector<Fingerprint>> runs;
  for (StopId s : eff_stops) {
    for (int r = 0; r < 8; ++r) {
      runs[s].push_back(bed.world.scan_stop(s, rng, r % 2 == 1));
    }
  }

  print_banner(std::cout,
               "Figure 2(b): self-similarity of same-stop fingerprints");
  Table self_table({"route", "P(score>=3)", "P(score>=4)", "median score"});
  for (const std::string& name : figure2_routes()) {
    EmpiricalDistribution d;
    for (StopId s : by_route[name]) {
      const auto& v = runs[s];
      for (std::size_t i = 0; i < v.size(); ++i) {
        for (std::size_t j = i + 1; j < v.size(); ++j) {
          d.add(similarity(v[i], v[j]));
        }
      }
    }
    self_table.add_row("route " + name,
                       {1.0 - d.cdf(2.999), 1.0 - d.cdf(3.999), d.median()});
  }
  self_table.print(std::cout);
  std::cout << "(paper: ~90% of scores >= 3, >50% >= 4)\n";

  print_banner(std::cout,
               "Figure 2(c): cross-similarity of different stops");
  // Overall: every physical stop separately (twins separate); effective:
  // twins merged. Representatives = medoid of the 8 runs.
  std::map<StopId, Fingerprint> rep;
  for (StopId s : eff_stops) rep[s] = select_representative(runs[s]);
  std::set<StopId> raw_stops;
  for (const std::string& name : figure2_routes()) {
    for (int dir = 0; dir < 2; ++dir) {
      for (const RouteStop& rs : city.route_by_name(name, dir)->stops()) {
        raw_stops.insert(rs.stop);
      }
    }
  }
  std::map<StopId, Fingerprint> raw_rep;
  for (StopId s : raw_stops) raw_rep[s] = bed.world.scan_stop(s, rng, false);

  EmpiricalDistribution overall, effective;
  {
    std::vector<StopId> ids(raw_stops.begin(), raw_stops.end());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (std::size_t j = i + 1; j < ids.size(); ++j) {
        overall.add(similarity(raw_rep[ids[i]], raw_rep[ids[j]]));
      }
    }
  }
  {
    std::vector<StopId> ids(eff_stops.begin(), eff_stops.end());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (std::size_t j = i + 1; j < ids.size(); ++j) {
        effective.add(similarity(rep[ids[i]], rep[ids[j]]));
      }
    }
  }
  Table cross({"series", "P(score=0)", "P(score<2)", "P(score<3)", "pairs"});
  cross.add_row("overall (twins separate)",
                {overall.cdf(0.0), overall.cdf(1.999), overall.cdf(2.999),
                 static_cast<double>(overall.count())}, 3);
  cross.add_row("effective (twins merged)",
                {effective.cdf(0.0), effective.cdf(1.999), effective.cdf(2.999),
                 static_cast<double>(effective.count())}, 3);
  cross.print(std::cout);
  std::cout << "(paper: >=70% score 0; >90% below 2 overall; >94% below 2 "
               "effective)\n";
  std::cout << "stops on 5 routes: " << raw_stops.size() << " physical, "
            << eff_stops.size() << " effective (paper: 86 surveyed)\n";
}

void BM_Similarity(benchmark::State& state) {
  const Fingerprint a{{1, 2, 3, 4, 5, 6, 7}};
  const Fingerprint b{{1, 9, 3, 5, 7, 8}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(bussense::similarity(a, b));
  }
}
BENCHMARK(BM_Similarity);

void BM_ScanFingerprint(benchmark::State& state) {
  const Testbed& bed = testbed();
  Rng rng(12);
  const StopId stop = bed.world.city().routes()[0].stops()[3].stop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.world.scan_stop(stop, rng, true));
  }
}
BENCHMARK(BM_ScanFingerprint);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
