// Table II — bus stop identification accuracy per route.
//
// Paper: 8 collection rounds per route; one round seeds the fingerprint
// database, the remaining 7 are identified against it. Error rate is below
// 8% on every reported route, and mis-identifications land 1 (rarely 2)
// stops away from the true stop.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/table.h"
#include "core/stop_database.h"
#include "core/stop_matcher.h"

namespace bussense::bench {
namespace {

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  Rng rng(2);

  print_banner(std::cout, "Table II: bus stop identification accuracy");
  Table t({"route", "stops", "total", "errors", "error rate (%)",
           "1 stop away", "2 stops away", "other"});
  const StopMatcher matcher(bed.database);
  for (const std::string name :
       {"79", "99", "241", "243", "252", "257", "182", "31"}) {
    const BusRoute* route = city.route_by_name(name, 0);
    std::map<StopId, int> index_of;
    for (std::size_t i = 0; i < route->stops().size(); ++i) {
      index_of[city.effective_stop(route->stops()[i].stop)] = static_cast<int>(i);
    }
    int total = 0, errors = 0, one = 0, two = 0, other = 0;
    for (const RouteStop& rs : route->stops()) {
      const StopId eff = city.effective_stop(rs.stop);
      for (int round = 0; round < 7; ++round) {
        const Fingerprint fp = bed.world.scan_stop(rs.stop, rng, true);
        const auto m = matcher.match(fp);
        ++total;
        if (m && m->stop == eff) continue;
        ++errors;
        if (!m) {
          ++other;
          continue;
        }
        const auto it = index_of.find(m->stop);
        if (it == index_of.end()) {
          ++other;  // nearby stop of a different route
        } else if (std::abs(it->second - index_of[eff]) == 1) {
          ++one;
        } else if (std::abs(it->second - index_of[eff]) == 2) {
          ++two;
        } else {
          ++other;
        }
      }
    }
    t.add_row({"route " + name, std::to_string(route->stop_count()),
               std::to_string(total), std::to_string(errors),
               fmt(100.0 * errors / total, 2), std::to_string(one),
               std::to_string(two), std::to_string(other)});
  }
  t.print(std::cout);
  std::cout << "(paper: error rate < 8% per route; errors mostly 1 stop "
               "away. \"Other\" errors here are geographically adjacent "
               "stops of crossing routes.)\n";
}

void BM_IdentifyStop(benchmark::State& state) {
  const Testbed& bed = testbed();
  const StopMatcher matcher(bed.database);
  Rng rng(3);
  const Fingerprint fp = bed.world.scan_stop(
      bed.world.city().route_by_name("79", 0)->stops()[4].stop, rng, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(fp));
  }
}
BENCHMARK(BM_IdentifyStop);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
