// Extension E3 — online fingerprint-database maintenance under tower churn.
//
// The paper notes the bus-stop database "can be updated in an online/offline
// manner" and that cellular sources are stable but not immutable. This
// bench renumbers 3% of towers per day for a month and tracks database
// *health* (mean alignment of current scans with the stored entries,
// against the server's γ = 2 acceptance bar) for a frozen database versus
// one maintained by the crowd-driven updater (decay-triggered refresh plus
// hole recovery). Identification accuracy itself is remarkably robust to
// churn in both cases — EXPERIMENTS.md discusses that negative finding.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/db_updater.h"
#include "core/route_graph.h"

namespace bussense::bench {
namespace {

void report() {
  WorldConfig cfg;
  cfg.city.width_m = 4000.0;
  cfg.city.height_m = 2500.0;
  cfg.city.route_names = {"79", "243"};
  cfg.tower_churn_per_day = 0.03;
  cfg.seed = 31;
  const World world(cfg);
  const City& city = world.city();
  const RouteGraph graph(city);
  Rng rng(32);
  StopDatabase static_db = build_stop_database(
      city, [&](StopId s, int) { return world.scan_stop(s, rng, false, 0.0); },
      3);
  StopDatabase updated_db = static_db;
  DatabaseUpdater updater;

  auto health = [&](const StopDatabase& db, int day) {
    Rng r(777);
    double total = 0.0;
    int n = 0;
    for (const StopRecord& rec : db.records()) {
      for (int k = 0; k < 3; ++k) {
        total += similarity(
            world.scan_stop(rec.stop, r, false, at_clock(day, 12, 0)),
            rec.fingerprint);
        ++n;
      }
    }
    return total / n;
  };

  print_banner(std::cout,
               "Extension E3: database health under 3%/day tower churn");
  Table t({"day", "static DB health", "maintained DB health", "refreshes"});
  for (int day = 0; day <= 30; ++day) {
    TrafficServer server(city, updated_db);
    Rng day_rng(100 + static_cast<std::uint64_t>(day));
    for (const BusRoute* route :
         {city.route_by_name("79", 0), city.route_by_name("243", 0)}) {
      for (int k = 0; k < 4; ++k) {
        const AnnotatedTrip trip = world.simulate_single_trip(
            *route, 1, static_cast<int>(route->stop_count()) - 2,
            at_clock(day, 8 + 3 * k, 0), day_rng);
        const auto report = server.process_trip(trip.upload);
        updater.observe(report.mapped, updated_db);
        updater.recover_holes(trip.upload, report.mapped, graph, updated_db);
      }
    }
    if (day % 5 == 0) {
      t.add_row(std::to_string(day),
                {health(static_db, day), health(updated_db, day),
                 static_cast<double>(updater.refreshes())});
    }
  }
  t.print(std::cout);
  std::cout << "(gamma = 2 is the server's acceptance threshold: a static "
               "database sinks toward it; the maintained one stays above)\n";
}

void BM_UpdaterObserve(benchmark::State& state) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  Rng rng(33);
  const BusRoute& route = *bed.world.city().route_by_name("79", 0);
  const AnnotatedTrip trip =
      bed.world.simulate_single_trip(route, 1, 15, at_clock(0, 10, 0), rng);
  const auto report = server.process_trip(trip.upload);
  for (auto _ : state) {
    DatabaseUpdater updater;
    StopDatabase db = bed.database;
    benchmark::DoNotOptimize(updater.observe(report.mapped, db));
  }
}
BENCHMARK(BM_UpdaterObserve)->Unit(benchmark::kMicrosecond)->Iterations(20);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
