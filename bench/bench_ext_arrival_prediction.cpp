// Extension E2 — bus arrival prediction from the live traffic map.
//
// The authors' companion MobiSys'12 system predicts bus arrivals from
// participatory sensing; here the capability derives from the traffic
// server: invert Eq. 3 per segment. The bench scores predicted vs actual
// (simulated) arrival times by prediction horizon, with live traffic
// against a timetable-style free-flow baseline.
#include <iostream>
#include <map>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/arrival_predictor.h"

namespace bussense::bench {
namespace {

void report() {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  Rng rng(71);

  // Prime the traffic map with a morning of intensive riding.
  auto day = bed.world.simulate_day(0, 3.0, rng);
  std::sort(day.trips.begin(), day.trips.end(),
            [](const AnnotatedTrip& a, const AnnotatedTrip& b) {
              return a.upload.samples.back().time < b.upload.samples.back().time;
            });
  for (const AnnotatedTrip& trip : day.trips) {
    if (trip.upload.samples.back().time > at_clock(0, 9, 30)) break;
    server.process_trip(trip.upload);
  }
  const SimTime now = at_clock(0, 9, 35);
  server.advance_time(now);

  // Predict fresh runs on several routes and compare with their reality.
  const ArrivalPredictor live(server.catalog());
  std::map<int, RunningStats> live_err, free_err;  // horizon -> |error|
  const SpeedFusion empty_fusion;
  for (const std::string name : {"79", "99", "243", "252"}) {
    const BusRoute& route = *city.route_by_name(name, 0);
    std::map<int, int> all_stops;
    for (std::size_t i = 0; i < route.stop_count(); ++i) {
      all_stops[static_cast<int>(i)] = 1;
    }
    const BusRun actual = bed.world.buses().simulate_run(
        route, now, all_stops, {}, 600.0, rng);
    const SimTime depart0 = actual.visits[0].departure;
    const auto live_pred =
        live.predict(route, 0, depart0, server.fusion(), now);
    const auto free_pred =
        live.predict(route, 0, depart0, empty_fusion, now);
    for (std::size_t k = 0; k < live_pred.size(); ++k) {
      const int horizon = live_pred[k].stop_index;  // stops ahead
      const SimTime truth =
          actual.visits[static_cast<std::size_t>(horizon)].arrival;
      live_err[horizon].add(std::abs(live_pred[k].eta - truth));
      free_err[horizon].add(std::abs(free_pred[k].eta - truth));
    }
  }

  print_banner(std::cout,
               "Extension E2: arrival prediction error by horizon (9:35 AM)");
  Table t({"stops ahead", "live-traffic MAE (s)", "free-flow MAE (s)"});
  for (const int horizon : {1, 3, 5, 8, 12, 16}) {
    if (!live_err.count(horizon)) continue;
    t.add_row(std::to_string(horizon),
              {live_err[horizon].mean(), free_err[horizon].mean()}, 1);
  }
  t.print(std::cout);
  std::cout << "(live traffic should beat the timetable, most at long "
               "horizons through congested segments)\n";
}

void BM_PredictRoute(benchmark::State& state) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  const ArrivalPredictor predictor(catalog);
  const BusRoute& route = *bed.world.city().route_by_name("79", 0);
  const SpeedFusion fusion;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.predict(route, 0, 0.0, fusion, 0.0));
  }
}
BENCHMARK(BM_PredictRoute)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bussense::bench

int main(int argc, char** argv) {
  bussense::bench::report();
  return bussense::bench::run_benchmarks(argc, argv);
}
