// arrival_board: the bus-stop departure board a rider would actually see.
//
// Builds the live traffic map from a morning of participatory trips,
// publishes it as a serving epoch (DESIGN.md §13), then answers the
// board's ETA queries through the lock-free QueryService — exactly the
// path a production deployment serves riders from, and bit-identical to
// predicting against the live fusion at the publish instant.
//
// Run:  ./arrival_board [route-name] [stop-index] [seed]
#include <algorithm>
#include <iostream>

#include "core/epoch_publisher.h"
#include "core/query_service.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

using namespace bussense;

int main(int argc, char** argv) {
  const std::string route_name = argc > 1 ? argv[1] : "243";
  const int stop_index = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  World world;
  const City& city = world.city();
  const BusRoute* route = city.route_by_name(route_name, 0);
  if (route == nullptr ||
      stop_index >= static_cast<int>(route->stop_count()) - 1) {
    std::cerr << "unknown route or stop index\n";
    return 1;
  }

  Rng survey(2024);
  StopDatabase db = build_stop_database(
      city, [&](StopId s, int run) { return world.scan_stop(s, survey, run % 2); },
      5);
  TrafficServer server(city, std::move(db));

  // A morning of rider uploads feeds the map.
  Rng rng(seed);
  auto day = world.simulate_day(0, 3.0, rng);
  std::sort(day.trips.begin(), day.trips.end(),
            [](const AnnotatedTrip& a, const AnnotatedTrip& b) {
              return a.upload.samples.back().time < b.upload.samples.back().time;
            });
  const SimTime now = at_clock(0, 8, 45);
  for (const AnnotatedTrip& trip : day.trips) {
    if (trip.upload.samples.back().time > now) break;
    server.process_trip(trip.upload);
  }
  server.advance_time(now);

  // Publish the fused state as the serving epoch the board reads from.
  EpochPublisher publisher(server.catalog());
  server.publish_epoch(publisher, now);
  QueryService queries(publisher);

  const BusStop& here = city.stop(route->stops()[stop_index].stop);
  std::cout << "=== " << here.name << "  (route " << route_name
            << ", stop " << stop_index << ")  " << format_clock(now)
            << " ===\n\n";

  // Terminal departures on the headway grid, oldest en-route first; show
  // the next three buses that still reach this stop.
  std::cout << "next buses on route " << route_name << ":\n";
  int shown = 0;
  const double headway = world.config().headway_s;
  for (SimTime depart = now - 45 * kMinute; depart < now + 3 * headway;
       depart += headway) {
    if (shown >= 3) break;
    const auto predictions = queries.route_eta(*route, 0, depart).arrivals;
    for (const ArrivalPrediction& p : predictions) {
      if (p.stop_index != stop_index) continue;
      if (p.eta >= now) {
        const double wait_min = (p.eta - now) / 60.0;
        std::cout << "  bus "
                  << (depart <= now ? "departed " : "departing ")
                  << format_clock(depart) << "  ->  due "
                  << format_clock(p.eta) << "  (" << wait_min << " min, "
                  << (p.from_live_traffic ? "live traffic" : "timetable")
                  << ")\n";
        ++shown;
      }
      break;
    }
  }
  if (shown == 0) {
    std::cout << "  (no bus currently en-route reaches this stop)\n";
  }

  std::cout << "\ndownstream journey from here (next departing bus):\n";
  const RouteEtaResult onward = queries.route_eta(*route, stop_index, now + 60.0);
  for (std::size_t k = 0; k < onward.arrivals.size() && k < 6; ++k) {
    std::cout << "  " << city.stop(onward.arrivals[k].stop).name << "  "
              << format_clock(onward.arrivals[k].eta) << "\n";
  }
  std::cout << "\n(served from epoch " << onward.epoch_id << " @ "
            << format_clock(onward.epoch_time) << ")\n";
  return 0;
}
