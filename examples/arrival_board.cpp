// arrival_board: the bus-stop departure board a rider would actually see.
//
// Builds the live traffic map from a morning of participatory trips, then
// prints predicted arrival times of the next buses at a chosen stop —
// the companion capability of the authors' MobiSys'12 system, derived here
// from the traffic server by inverting the Eq. 3 model per segment.
//
// Run:  ./arrival_board [route-name] [stop-index] [seed]
#include <algorithm>
#include <iostream>

#include "core/arrival_predictor.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

using namespace bussense;

int main(int argc, char** argv) {
  const std::string route_name = argc > 1 ? argv[1] : "243";
  const int stop_index = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  World world;
  const City& city = world.city();
  const BusRoute* route = city.route_by_name(route_name, 0);
  if (route == nullptr ||
      stop_index >= static_cast<int>(route->stop_count()) - 1) {
    std::cerr << "unknown route or stop index\n";
    return 1;
  }

  Rng survey(2024);
  StopDatabase db = build_stop_database(
      city, [&](StopId s, int run) { return world.scan_stop(s, survey, run % 2); },
      5);
  TrafficServer server(city, std::move(db));

  // A morning of rider uploads feeds the map.
  Rng rng(seed);
  auto day = world.simulate_day(0, 3.0, rng);
  std::sort(day.trips.begin(), day.trips.end(),
            [](const AnnotatedTrip& a, const AnnotatedTrip& b) {
              return a.upload.samples.back().time < b.upload.samples.back().time;
            });
  const SimTime now = at_clock(0, 8, 45);
  for (const AnnotatedTrip& trip : day.trips) {
    if (trip.upload.samples.back().time > now) break;
    server.process_trip(trip.upload);
  }
  server.advance_time(now);

  const ArrivalPredictor predictor(server.catalog());
  const BusStop& here = city.stop(route->stops()[stop_index].stop);
  std::cout << "=== " << here.name << "  (route " << route_name
            << ", stop " << stop_index << ")  " << format_clock(now)
            << " ===\n\n";

  // Terminal departures on the headway grid, oldest en-route first; show
  // the next three buses that still reach this stop.
  std::cout << "next buses on route " << route_name << ":\n";
  int shown = 0;
  const double headway = world.config().headway_s;
  for (SimTime depart = now - 45 * kMinute; depart < now + 3 * headway;
       depart += headway) {
    if (shown >= 3) break;
    const auto predictions =
        predictor.predict(*route, 0, depart, server.fusion(), now);
    for (const ArrivalPrediction& p : predictions) {
      if (p.stop_index != stop_index) continue;
      if (p.eta >= now) {
        const double wait_min = (p.eta - now) / 60.0;
        std::cout << "  bus "
                  << (depart <= now ? "departed " : "departing ")
                  << format_clock(depart) << "  ->  due "
                  << format_clock(p.eta) << "  (" << wait_min << " min, "
                  << (p.from_live_traffic ? "live traffic" : "timetable")
                  << ")\n";
        ++shown;
      }
      break;
    }
  }
  if (shown == 0) {
    std::cout << "  (no bus currently en-route reaches this stop)\n";
  }

  std::cout << "\ndownstream journey from here (next departing bus):\n";
  const auto onward =
      predictor.predict(*route, stop_index, now + 60.0, server.fusion(), now);
  for (std::size_t k = 0; k < onward.size() && k < 6; ++k) {
    std::cout << "  " << city.stop(onward[k].stop).name << "  "
              << format_clock(onward[k].eta) << "\n";
  }
  return 0;
}
