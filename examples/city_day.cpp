// city_day: simulate a full service day of participatory sensing and print
// the evolving traffic map (the paper's headline output, Figure 9).
//
// Run:  ./city_day [days] [intensity] [seed]
//   days       number of service days to simulate (default 1)
//   intensity  participation intensity, 1 = the paper's 22 riders at their
//              normal rate, 3 = the incentivised phase (default 3)
#include <algorithm>
#include <iostream>

#include "core/epoch_publisher.h"
#include "core/google_indicator.h"
#include "core/ingest_service.h"
#include "core/query_service.h"
#include "core/svg_map.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

using namespace bussense;

int main(int argc, char** argv) {
  const int days = argc > 1 ? std::atoi(argv[1]) : 1;
  const double intensity = argc > 2 ? std::atof(argv[2]) : 3.0;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 9;

  World world;
  const City& city = world.city();
  Rng survey(2024);
  StopDatabase db = build_stop_database(
      city, [&](StopId s, int run) { return world.scan_stop(s, survey, run % 2); },
      5);
  // Uploads flow through the asynchronous ingest front end — a bounded
  // queue drained by a small worker pool. The rest of the example only
  // talks to the TrafficIngestor interface, and the maps it prints are
  // bit-identical to the serial TrafficServer (determinism contract).
  IngestServiceConfig svc;
  svc.workers = ThreadPool::default_concurrency(4);
  IngestService service(city, std::move(db), {}, svc);
  TrafficIngestor& server = service;

  // The maps below are read through the serving tier: each display hour
  // publishes an immutable epoch and the queries pin it lock-free
  // (DESIGN.md §13) — the same path a dashboard fleet would hit, and
  // bit-identical to calling server.snapshot() directly.
  EpochPublisher publisher(server.catalog());
  QueryService queries(publisher);

  std::cout << "bus-route coverage of the road network: "
            << 100.0 * city.coverage_ratio() << "%\n";

  Rng rng(seed);
  for (int day = 0; day < days; ++day) {
    auto result = world.simulate_day(day, intensity, rng);
    std::sort(result.trips.begin(), result.trips.end(),
              [](const AnnotatedTrip& a, const AnnotatedTrip& b) {
                return a.upload.samples.back().time <
                       b.upload.samples.back().time;
              });
    std::cout << "\n===== day " << day << ": " << result.runs.size()
              << " bus runs, " << result.trips.size()
              << " participant trips =====\n";

    const std::vector<int> snapshot_hours{9, 13, 17, 20};
    std::size_t next_snap = 0;
    for (const AnnotatedTrip& trip : result.trips) {
      const SimTime end = trip.upload.samples.back().time;
      while (next_snap < snapshot_hours.size() &&
             end > at_clock(day, snapshot_hours[next_snap], 0)) {
        const SimTime now = at_clock(day, snapshot_hours[next_snap], 0);
        server.advance_time(now);
        server.publish_epoch(publisher, now, 2.0 * kHour);
        const EpochPublisher::Pin epoch = queries.pin();
        std::cout << "\n--- " << format_clock(now) << " traffic map (epoch "
                  << epoch->id() << ": " << epoch->live_segments()
                  << " live segments, mean " << epoch->mean_speed_kmh()
                  << " km/h, coverage " << 100.0 * epoch->coverage_ratio()
                  << "%)\n";
        std::cout << epoch->map().render_ascii(server.catalog(), 100, 24);
        ++next_snap;
      }
      server.process_trip(trip.upload);
    }
  }

  std::cout << "\nlegend: 1 = <20 km/h ... 5 = >50 km/h, '.' = bus-covered "
               "road without a live estimate\n";
  std::cout << "trips processed: " << server.trips_processed() << "\n";

  // Shareable artifact: the final evening map as SVG, rendered from the
  // last published epoch so the file matches what the serving tier saw.
  const SimTime final_time = at_clock(days - 1, 20, 0);
  server.advance_time(final_time);
  server.publish_epoch(publisher, final_time, 3.0 * kHour);
  const EpochPublisher::Pin evening = queries.pin();
  const std::string svg_path = "traffic_map.svg";
  write_svg_map(evening->map(), server.catalog(), svg_path);
  std::cout << "wrote " << svg_path << "\n";

  // Region query demo: how does the city-centre quadrant compare to the
  // whole network at closing time?
  const BoundingBox& region = city.region();
  BoundingBox centre = region;
  centre.min.x += 0.25 * region.width();
  centre.min.y += 0.25 * region.height();
  centre.max.x -= 0.25 * region.width();
  centre.max.y -= 0.25 * region.height();
  const RegionAggregate agg = queries.region_aggregate(centre);
  std::cout << "city centre at " << format_clock(final_time) << ": "
            << agg.segments_live << "/" << agg.segments_total
            << " segments live, mean " << agg.mean_speed_kmh
            << " km/h, coverage " << 100.0 * agg.coverage_ratio << "%\n";

  const MetricsSnapshot ms = server.metrics().snapshot();
  std::cout << "pipeline p99 trip latency: "
            << 1e6 * ms.histograms.at("pipeline.trip_s").percentile(0.99)
            << " us, samples matched: "
            << ms.counters.at("pipeline.samples_matched") << "\n";
  const MetricsSnapshot qs = publisher.metrics().snapshot();
  std::cout << "serving: " << qs.counters.at("epochs.published")
            << " epochs published, "
            << queries.metrics().snapshot().counters.at("queries.region")
            << " region queries answered\n";
  return 0;
}
