// power_study: why the app samples cellular signals and runs Goertzel
// instead of tracking with GPS (paper Section IV-D / Table III).
//
// Prints the component power model for both measured phones, the DSP cost
// comparison, and a battery-life projection for a commuter's day.
//
// Run:  ./power_study [hours-of-riding-per-day]
#include <iostream>

#include "common/table.h"
#include "sensing/power_model.h"

using namespace bussense;

int main(int argc, char** argv) {
  const double riding_hours = argc > 1 ? std::atof(argv[1]) : 2.0;
  const PowerModel power;

  Table t({"sensor setting", "HTC Sensation (mW)", "Nexus One (mW)"});
  for (SensorConfig cfg :
       {SensorConfig::kNoSensors, SensorConfig::kCellular1Hz, SensorConfig::kGps,
        SensorConfig::kCellularMicGoertzel, SensorConfig::kCellularMicFft,
        SensorConfig::kGpsMicGoertzel}) {
    t.add_row(to_string(cfg),
              {power.mean_power_mw(htc_sensation_profile(), cfg),
               power.mean_power_mw(nexus_one_profile(), cfg)},
              0);
  }
  t.print(std::cout);

  const PhoneProfile htc = htc_sensation_profile();
  const double app = power.mean_power_mw(htc, SensorConfig::kCellularMicGoertzel) -
                     power.mean_power_mw(htc, SensorConfig::kNoSensors);
  const double gps = power.mean_power_mw(htc, SensorConfig::kGpsMicGoertzel) -
                     power.mean_power_mw(htc, SensorConfig::kNoSensors);
  std::cout << "\nmarginal app draw while riding: " << app
            << " mW (cellular+Goertzel) vs " << gps << " mW (GPS design)\n";

  // Battery maths for a typical 3.7 V, 1500 mAh phone of the period.
  const double battery_mwh = 3.7 * 1500.0;
  auto daily_pct = [&](double mw) {
    return 100.0 * mw * riding_hours / battery_mwh;
  };
  std::cout << "for " << riding_hours
            << " h of bus riding per day that costs " << daily_pct(app)
            << "% of a 1500 mAh battery vs " << daily_pct(gps)
            << "% with GPS — the difference between riders leaving the app "
               "on and uninstalling it.\n";

  std::cout << "\nDSP front ends at 8 kHz audio:\n";
  Table d({"front end", "MAC/s", "CPU mW (HTC)"});
  d.add_row("Goertzel, 2 tones", {power.dsp_mac_rate(false),
                                  power.dsp_power_mw(htc, false)}, 1);
  d.add_row("FFT, full spectrum", {power.dsp_mac_rate(true),
                                   power.dsp_power_mw(htc, true)}, 1);
  d.print(std::cout);
  return 0;
}
