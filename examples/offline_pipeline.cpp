// offline_pipeline: the deployment workflow across process boundaries.
//
// In the real system the war-walk tool, the phones and the backend are
// separate programs talking through files/uploads. This example exercises
// that split with the plain-text wire formats:
//
//   1. survey  — build the fingerprint database, save it to disk
//   2. phones  — record a batch of trips, save them to disk
//   3. server  — load both files and produce the traffic estimates
//
// Run:  ./offline_pipeline [workdir]
//
// The backend stage runs behind the TrafficIngestor interface: swap the
// IngestService below for a plain TrafficServer and the estimates are
// bit-identical (the interface's determinism contract).
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/ingest_service.h"
#include "core/serialization.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

using namespace bussense;

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "bussense";
  std::filesystem::create_directories(dir);
  const std::string db_path = (dir / "stops.db").string();
  const std::string trips_path = (dir / "trips.txt").string();

  World world;
  const City& city = world.city();

  // --- 1. the survey tool ----------------------------------------------
  {
    Rng survey(2024);
    const StopDatabase db = build_stop_database(
        city,
        [&](StopId s, int run) { return world.scan_stop(s, survey, run % 2); },
        5);
    save_stop_database(db, db_path);
    std::cout << "survey: wrote " << db.size() << " stop fingerprints to "
              << db_path << "\n";
  }

  // --- 2. the phones -----------------------------------------------------
  {
    Rng rng(17);
    const auto day = world.simulate_day(0, 2.0, rng);
    std::vector<TripUpload> uploads;
    uploads.reserve(day.trips.size());
    for (const AnnotatedTrip& trip : day.trips) uploads.push_back(trip.upload);
    std::ofstream os(trips_path);
    save_trips(uploads, os);
    std::cout << "phones: queued " << uploads.size() << " trips to "
              << trips_path << "\n";
  }

  // --- 3. the backend server --------------------------------------------
  {
    // Async front end: uploads land in a bounded queue and a worker pool
    // runs the pipeline. Everything below the construction line only sees
    // the TrafficIngestor interface.
    IngestServiceConfig svc;
    svc.workers = 2;
    svc.queue_capacity = 256;
    IngestService service(city, load_stop_database(db_path), {}, svc);
    TrafficIngestor& server = service;

    std::ifstream is(trips_path);
    const auto uploads = load_trips(is);
    std::size_t queued = 0;
    for (const TripUpload& trip : uploads) {
      if (server.process_trip(trip).accepted()) ++queued;
    }
    server.advance_time(at_clock(0, 23, 0));  // drains the queue first
    const TrafficMap map = server.snapshot(at_clock(0, 18, 0), 3 * kHour);
    const MetricsSnapshot ms = server.metrics().snapshot();
    std::cout << "server: accepted " << queued << "/" << uploads.size()
              << " trips, " << ms.counters.at("pipeline.estimates")
              << " segment estimates, evening map covers "
              << 100.0 * map.coverage_ratio(server.catalog())
              << "% of the road network\n";

    // The observability layer sees every stage; persist it for operators.
    const std::string metrics_path = (dir / "metrics.json").string();
    std::ofstream(metrics_path) << server.metrics().to_json() << "\n";
    std::cout << "server: metrics (queue depth, per-stage latency) in "
              << metrics_path << "\n";
  }
  std::cout << "artifacts left in " << dir << "\n";
  return 0;
}
