// offline_pipeline: the deployment workflow across process boundaries.
//
// In the real system the war-walk tool, the phones and the backend are
// separate programs talking through files/uploads. This example exercises
// that split with the plain-text wire formats:
//
//   1. survey  — build the fingerprint database, save it to disk
//   2. phones  — record a batch of trips, save them to disk
//   3. server  — load both files and produce the traffic estimates
//
// Run:  ./offline_pipeline [workdir]
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/serialization.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

using namespace bussense;

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "bussense";
  std::filesystem::create_directories(dir);
  const std::string db_path = (dir / "stops.db").string();
  const std::string trips_path = (dir / "trips.txt").string();

  World world;
  const City& city = world.city();

  // --- 1. the survey tool ----------------------------------------------
  {
    Rng survey(2024);
    const StopDatabase db = build_stop_database(
        city,
        [&](StopId s, int run) { return world.scan_stop(s, survey, run % 2); },
        5);
    save_stop_database(db, db_path);
    std::cout << "survey: wrote " << db.size() << " stop fingerprints to "
              << db_path << "\n";
  }

  // --- 2. the phones -----------------------------------------------------
  {
    Rng rng(17);
    const auto day = world.simulate_day(0, 2.0, rng);
    std::vector<TripUpload> uploads;
    uploads.reserve(day.trips.size());
    for (const AnnotatedTrip& trip : day.trips) uploads.push_back(trip.upload);
    std::ofstream os(trips_path);
    save_trips(uploads, os);
    std::cout << "phones: queued " << uploads.size() << " trips to "
              << trips_path << "\n";
  }

  // --- 3. the backend server --------------------------------------------
  {
    TrafficServer server(city, load_stop_database(db_path));
    std::ifstream is(trips_path);
    const auto uploads = load_trips(is);
    std::size_t estimates = 0;
    for (const TripUpload& trip : uploads) {
      estimates += server.process_trip(trip).estimates.size();
    }
    server.advance_time(at_clock(0, 23, 0));
    const TrafficMap map = server.snapshot(at_clock(0, 18, 0), 3 * kHour);
    std::cout << "server: processed " << uploads.size() << " trips, "
              << estimates << " segment estimates, evening map covers "
              << 100.0 * map.coverage_ratio(server.catalog())
              << "% of the road network\n";
  }
  std::cout << "artifacts left in " << dir << "\n";
  return 0;
}
