// offline_pipeline: the deployment workflow across process boundaries.
//
// In the real system the war-walk tool, the phones and the backend are
// separate programs talking through files/uploads. This example exercises
// that split with the plain-text wire formats:
//
//   1. survey  — build the fingerprint database, save it to disk
//   2. phones  — record a batch of trips, save them to disk
//   3. server  — load both files and produce the traffic estimates,
//                journaling every admitted trip to a write-ahead log and
//                then crashing (destruction without close())
//   4. restart — a fresh process recovers checkpoint + WAL suffix and
//                reproduces the same estimates byte-for-byte
//
// Run:  ./offline_pipeline [workdir]
//
// The backend stages run behind the TrafficIngestor interface: swap the
// IngestService below for a plain TrafficServer and the estimates are
// bit-identical (the interface's determinism contract).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/ingest_service.h"
#include "core/serialization.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

using namespace bussense;

// Canonical text form of a map: enough to show two runs agreed exactly.
// Lines are sorted because snapshot order follows processing order, which
// a worker pool does not pin; the estimates themselves are deterministic.
static std::string map_fingerprint(const TrafficMap& map) {
  std::vector<std::string> lines;
  char buf[128];
  for (const MapSegment& s : map.segments()) {
    std::snprintf(buf, sizeof buf, "%d>%d %.17g\n", s.key.from, s.key.to,
                  s.speed_kmh);
    lines.emplace_back(buf);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) out += line;
  return out;
}

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : std::filesystem::temp_directory_path() / "bussense";
  std::filesystem::create_directories(dir);
  const std::string db_path = (dir / "stops.db").string();
  const std::string trips_path = (dir / "trips.txt").string();

  World world;
  const City& city = world.city();

  // --- 1. the survey tool ----------------------------------------------
  {
    Rng survey(2024);
    const StopDatabase db = build_stop_database(
        city,
        [&](StopId s, int run) { return world.scan_stop(s, survey, run % 2); },
        5);
    save_stop_database(db, db_path);
    std::cout << "survey: wrote " << db.size() << " stop fingerprints to "
              << db_path << "\n";
  }

  // --- 2. the phones -----------------------------------------------------
  {
    Rng rng(17);
    const auto day = world.simulate_day(0, 2.0, rng);
    std::vector<TripUpload> uploads;
    uploads.reserve(day.trips.size());
    for (const AnnotatedTrip& trip : day.trips) uploads.push_back(trip.upload);
    std::ofstream os(trips_path);
    save_trips(uploads, os);
    std::cout << "phones: queued " << uploads.size() << " trips to "
              << trips_path << "\n";
  }

  // --- 3. the backend server (durable, then crashes) ---------------------
  ServerConfig backend;
  backend.durability.enabled = true;
  backend.durability.directory = (dir / "durable").string();
  backend.durability.fsync = FsyncPolicy::kInterval;
  std::string crashed_fingerprint;
  {
    // Async front end: uploads land in a bounded queue and a worker pool
    // runs the pipeline. Everything below the construction line only sees
    // the TrafficIngestor interface.
    IngestServiceConfig svc;
    svc.workers = 2;
    svc.queue_capacity = 256;
    IngestService service(city, load_stop_database(db_path), backend, svc);
    TrafficIngestor& server = service;
    server.open();  // fresh directory: nothing to recover yet

    std::ifstream is(trips_path);
    auto uploads = load_trips(is);
    // Feed in start-time order so the mid-feed advance_time is a true
    // watermark: every later trip starts after it, so no estimate lands in
    // a fusion period the barrier already closed.
    std::stable_sort(uploads.begin(), uploads.end(),
                     [](const TripUpload& a, const TripUpload& b) {
                       return a.samples.front().time < b.samples.front().time;
                     });
    std::size_t queued = 0;
    for (std::size_t i = 0; i < uploads.size(); ++i) {
      if (server.process_trip(uploads[i]).accepted()) ++queued;
      if (i == uploads.size() / 2) {
        // Mid-day recovery point: everything before it replays from the
        // checkpoint, everything after from the WAL suffix.
        server.advance_time(uploads[i].samples.front().time);
        std::cout << "server: checkpoint " << server.checkpoint()
                  << " written mid-feed\n";
      }
    }
    server.advance_time(at_clock(0, 23, 0));  // drains the queue first
    const TrafficMap map = server.snapshot(at_clock(0, 18, 0), 3 * kHour);
    crashed_fingerprint = map_fingerprint(map);
    const MetricsSnapshot ms = server.metrics().snapshot();
    std::cout << "server: accepted " << queued << "/" << uploads.size()
              << " trips, " << ms.counters.at("pipeline.estimates")
              << " segment estimates, evening map covers "
              << 100.0 * map.coverage_ratio(server.catalog())
              << "% of the road network\n";
    std::cout << "server: WAL appends=" << ms.counters.at("durability.appends")
              << " bytes=" << ms.counters.at("durability.bytes_appended")
              << " fsyncs=" << ms.counters.at("durability.fsyncs") << "\n";

    // The observability layer sees every stage; persist it for operators.
    const std::string metrics_path = (dir / "metrics.json").string();
    std::ofstream(metrics_path) << server.metrics().to_json() << "\n";
    std::cout << "server: metrics (queue depth, per-stage latency) in "
              << metrics_path << "\n";

    // No close(): scope exit models a power cut after the final fsync
    // interval. Everything admitted is already in the trip log.
    std::cout << "server: crashing without close()\n";
  }

  // --- 4. the restarted server ------------------------------------------
  {
    IngestService service(city, load_stop_database(db_path), backend, {});
    TrafficIngestor& server = service;
    const RecoveryReport rec = server.open();
    std::cout << "restart: checkpoint "
              << (rec.checkpoint_loaded ? std::to_string(rec.checkpoint_id)
                                        : std::string("none"))
              << " + " << rec.replayed_trips << " WAL trips / "
              << rec.replayed_time_marks << " time marks replayed, "
              << rec.truncated_tail_bytes << " torn bytes truncated\n";
    server.advance_time(at_clock(0, 23, 0));
    const TrafficMap map = server.snapshot(at_clock(0, 18, 0), 3 * kHour);
    std::cout << "restart: evening map "
              << (map_fingerprint(map) == crashed_fingerprint
                      ? "byte-identical to the crashed run"
                      : "DIVERGED from the crashed run")
              << "\n";
    server.close();  // clean shutdown this time
  }
  std::cout << "artifacts left in " << dir << "\n";
  return 0;
}
