// lod_cityweek: generate a tiered-fidelity city-week trip stream.
//
// Runs the LodWorld metropolis generator (DESIGN.md §15) for a rider
// population over one or more days and writes the canonical %.17g trip
// stream to a file (or stdout). The stream is a pure function of
// (seed, riders, days) — byte-identical at any thread count — which is
// what scripts/tier1.sh's BUSSENSE_LOD stage checks by diffing two runs
// at different thread counts.
//
// Run:  ./lod_cityweek [riders] [days] [threads] [seed] [out-file]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "trafficsim/lod_world.h"

using namespace bussense;

int main(int argc, char** argv) {
  const std::int64_t riders = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int days = argc > 2 ? std::atoi(argv[2]) : 1;
  const unsigned threads =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 4;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2026;
  const std::string out_path = argc > 5 ? argv[5] : "";

  World world;
  LodConfig config;
  config.seed = seed;
  const LodWorld lod(world, riders, config);
  const LodCensus& census = lod.census();
  std::cerr << "lod_cityweek: riders=" << census.riders
            << " focus=" << census.focus << " event=" << census.event
            << " onrails=" << census.on_rails << " threads=" << threads
            << " seed=" << seed << "\n";

  ThreadPool pool(threads);
  std::vector<LodTrip> all;
  for (int day = 0; day < days; ++day) {
    std::vector<LodTrip> trips = lod.simulate_day(day, &pool);
    std::cerr << "  day " << day << (LodWorld::is_weekend(day) ? " (weekend)" : "")
              << ": " << trips.size() << " trips\n";
    all.insert(all.end(), std::make_move_iterator(trips.begin()),
               std::make_move_iterator(trips.end()));
  }
  const LodLoss loss = lod.loss();
  std::cerr << "  planned=" << loss.planned << " emitted=" << loss.emitted
            << " dropped_no_route=" << loss.dropped_no_route
            << " thin=" << loss.thin << "\n";
  std::cerr << "  stream digest: " << std::hex << LodWorld::stream_digest(all)
            << std::dec << "\n";

  if (out_path.empty()) {
    LodWorld::write_stream(std::cout, all);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    LodWorld::write_stream(out, all);
    std::cerr << "  wrote " << out_path << "\n";
  }
  return 0;
}
