// Quickstart: the full BusSense pipeline in one sitting.
//
//   1. Phone side — detect IC-card beeps in raw bus audio with the Goertzel
//      detector and record a trip of cellular samples.
//   2. Server side — match the samples against the stop fingerprint
//      database, cluster, map the trip under route constraints, and derive
//      per-segment automobile speeds.
//
// Run:  ./quickstart [seed]
#include <iostream>
#include <map>

#include "core/server.h"
#include "core/stop_database.h"
#include "dsp/audio_synth.h"
#include "dsp/beep_detector.h"
#include "sensing/trip_recorder.h"
#include "trafficsim/world.h"

using namespace bussense;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Rng rng(seed);

  // --- Part 1: hear a beep in real audio -------------------------------
  std::cout << "== Part 1: beep detection on synthesized bus audio ==\n";
  AudioEnvironmentConfig cabin;  // 1 kHz + 3 kHz EZ-link reader tones
  const std::vector<SimTime> true_beeps{1.2, 2.4, 3.5};
  const auto audio = synthesize_bus_audio(cabin, 6.0, true_beeps, rng);
  BeepDetector detector;
  const auto events = detector.process(audio);
  std::cout << "synthesized " << audio.size() << " samples with "
            << true_beeps.size() << " card taps; detector found "
            << events.size() << ":\n";
  for (const BeepEvent& e : events) {
    std::cout << "  beep at t=" << e.time << " s (jump " << e.strength
              << " sigma)\n";
  }

  // --- Part 2: a participant rides a bus -------------------------------
  std::cout << "\n== Part 2: one participatory trip through the backend ==\n";
  World world;  // synthetic 7 km x 4 km city, 8 routes, cellular plant
  const City& city = world.city();
  std::cout << "city: " << city.network().size() << " road links, "
            << city.stops().size() << " stops, " << city.routes().size()
            << " directed routes, " << world.radio().towers().size()
            << " cell towers\n";

  // Survey the stop fingerprint database (normally a one-off war-walk).
  Rng survey(2024);
  StopDatabase db = build_stop_database(
      city, [&](StopId s, int run) { return world.scan_stop(s, survey, run % 2); },
      5);
  TrafficServer server(city, std::move(db));

  // A rider boards route 243 at stop 3 during the morning peak.
  const BusRoute& route = *city.route_by_name("243", 0);
  const AnnotatedTrip trip =
      world.simulate_single_trip(route, 3, 15, at_clock(0, 8, 0), rng);
  std::cout << "uploaded trip: " << trip.upload.samples.size()
            << " cellular samples (one per detected tap)\n";

  const auto report = server.process_trip(trip.upload);
  std::cout << "matched " << report.matched.size() << " samples ("
            << report.rejected_samples << " below gamma), clustered into "
            << report.mapped.stops.size() << " stop visits:\n";
  for (const MappedCluster& mc : report.mapped.stops) {
    std::cout << "  " << format_clock(mc.cluster.arrival_time()) << "  "
              << city.stop(mc.stop).name << "  ("
              << mc.cluster.members.size() << " taps)\n";
  }

  std::cout << "\nper-segment automobile speed estimates (Eq. 3):\n";
  for (const SpeedEstimate& e : report.estimates) {
    const SpanInfo* info = server.catalog().adjacent(e.segment);
    const double truth = world.traffic().mean_car_speed_kmh(
        city.route(info->route), info->arc_from, info->arc_to, e.time);
    std::cout << "  " << city.stop(e.segment.from).name << " -> "
              << city.stop(e.segment.to).name << ": v_A = " << e.att_speed_kmh
              << " km/h  (ground truth " << truth << ")\n";
  }
  std::cout << "\ndone — see city_day for the full traffic map.\n";
  return 0;
}
