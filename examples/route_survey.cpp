// route_survey: the fingerprint war-walk tool.
//
// Surveys every stop of one public route, shows the collected cellular
// fingerprints, builds the database entries, and reports how reliably the
// stops of that route are identified afterwards (paper Table II, for one
// route).
//
// Run:  ./route_survey [route-name] [runs] [seed]      e.g. ./route_survey 79 8
#include <iostream>
#include <map>

#include "core/stop_database.h"
#include "core/stop_matcher.h"
#include "trafficsim/world.h"

using namespace bussense;

int main(int argc, char** argv) {
  const std::string route_name = argc > 1 ? argv[1] : "79";
  const int runs = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  World world;
  const City& city = world.city();
  const BusRoute* route = city.route_by_name(route_name, 0);
  if (route == nullptr) {
    std::cerr << "unknown route '" << route_name << "'. Known: ";
    for (const BusRoute& r : city.routes()) {
      if (r.direction() == 0) std::cerr << r.name() << ' ';
    }
    std::cerr << '\n';
    return 1;
  }

  Rng rng(seed);
  std::cout << "surveying route " << route_name << " ("
            << route->stop_count() << " stops, " << route->length() / 1000.0
            << " km), " << runs << " runs per stop\n\n";

  // Full-city database so the identification test is realistic.
  StopDatabase db = build_stop_database(
      city,
      [&](StopId s, int run) { return world.scan_stop(s, rng, run % 2 == 1); },
      runs);

  std::cout << "stop fingerprints (medoid of " << runs << " runs):\n";
  for (const RouteStop& rs : route->stops()) {
    const StopId eff = city.effective_stop(rs.stop);
    const Fingerprint* fp = db.fingerprint_of(eff);
    std::cout << "  arc " << static_cast<int>(rs.arc_pos) << " m  "
              << city.stop(rs.stop).name << "  ["
              << (fp ? to_string(*fp) : "<none>") << "]\n";
  }

  // Identification dry run: fresh in-bus scans against the database.
  const StopMatcher matcher(db);
  int total = 0, correct = 0;
  std::map<std::string, int> confusions;
  for (const RouteStop& rs : route->stops()) {
    const StopId eff = city.effective_stop(rs.stop);
    for (int k = 0; k < 7; ++k) {
      const auto m = matcher.match(world.scan_stop(rs.stop, rng, true));
      ++total;
      if (m && m->stop == eff) {
        ++correct;
      } else if (m) {
        ++confusions[city.stop(rs.stop).name + " -> " + city.stop(m->stop).name];
      } else {
        ++confusions[city.stop(rs.stop).name + " -> (rejected)"];
      }
    }
  }
  std::cout << "\nidentification: " << correct << "/" << total << " correct ("
            << 100.0 * correct / total << "%)\n";
  if (!confusions.empty()) {
    std::cout << "confusions:\n";
    for (const auto& [what, count] : confusions) {
      std::cout << "  " << what << "  x" << count << '\n';
    }
  }
  return 0;
}
