file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_region_inference.dir/bench_ext_region_inference.cpp.o"
  "CMakeFiles/bench_ext_region_inference.dir/bench_ext_region_inference.cpp.o.d"
  "bench_ext_region_inference"
  "bench_ext_region_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_region_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
