file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_fusion.dir/bench_abl_fusion.cpp.o"
  "CMakeFiles/bench_abl_fusion.dir/bench_abl_fusion.cpp.o.d"
  "bench_abl_fusion"
  "bench_abl_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
