# Empty dependencies file for bench_abl_fusion.
# This may be replaced when dependencies are built.
