# Empty dependencies file for bench_fig11_speed_difference.
# This may be replaced when dependencies are built.
