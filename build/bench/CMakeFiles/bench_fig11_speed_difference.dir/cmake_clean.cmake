file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_speed_difference.dir/bench_fig11_speed_difference.cpp.o"
  "CMakeFiles/bench_fig11_speed_difference.dir/bench_fig11_speed_difference.cpp.o.d"
  "bench_fig11_speed_difference"
  "bench_fig11_speed_difference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_speed_difference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
