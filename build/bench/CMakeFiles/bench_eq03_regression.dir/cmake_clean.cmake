file(REMOVE_RECURSE
  "CMakeFiles/bench_eq03_regression.dir/bench_eq03_regression.cpp.o"
  "CMakeFiles/bench_eq03_regression.dir/bench_eq03_regression.cpp.o.d"
  "bench_eq03_regression"
  "bench_eq03_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq03_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
