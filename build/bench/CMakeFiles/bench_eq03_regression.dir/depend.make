# Empty dependencies file for bench_eq03_regression.
# This may be replaced when dependencies are built.
