# Empty dependencies file for bench_fig01_gps_error.
# This may be replaced when dependencies are built.
