# Empty dependencies file for bench_ext_participation.
# This may be replaced when dependencies are built.
