file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_participation.dir/bench_ext_participation.cpp.o"
  "CMakeFiles/bench_ext_participation.dir/bench_ext_participation.cpp.o.d"
  "bench_ext_participation"
  "bench_ext_participation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
