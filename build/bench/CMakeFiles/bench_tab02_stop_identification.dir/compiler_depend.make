# Empty compiler generated dependencies file for bench_tab02_stop_identification.
# This may be replaced when dependencies are built.
