file(REMOVE_RECURSE
  "CMakeFiles/bench_tab02_stop_identification.dir/bench_tab02_stop_identification.cpp.o"
  "CMakeFiles/bench_tab02_stop_identification.dir/bench_tab02_stop_identification.cpp.o.d"
  "bench_tab02_stop_identification"
  "bench_tab02_stop_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab02_stop_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
