# Empty dependencies file for bench_fig09_traffic_map.
# This may be replaced when dependencies are built.
