# Empty dependencies file for bench_abl_gps_vs_cellular.
# This may be replaced when dependencies are built.
