file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_gps_vs_cellular.dir/bench_abl_gps_vs_cellular.cpp.o"
  "CMakeFiles/bench_abl_gps_vs_cellular.dir/bench_abl_gps_vs_cellular.cpp.o.d"
  "bench_abl_gps_vs_cellular"
  "bench_abl_gps_vs_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_gps_vs_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
