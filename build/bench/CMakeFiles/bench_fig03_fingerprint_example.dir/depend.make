# Empty dependencies file for bench_fig03_fingerprint_example.
# This may be replaced when dependencies are built.
