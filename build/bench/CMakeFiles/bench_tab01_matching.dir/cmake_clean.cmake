file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_matching.dir/bench_tab01_matching.cpp.o"
  "CMakeFiles/bench_tab01_matching.dir/bench_tab01_matching.cpp.o.d"
  "bench_tab01_matching"
  "bench_tab01_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
