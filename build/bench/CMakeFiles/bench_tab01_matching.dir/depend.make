# Empty dependencies file for bench_tab01_matching.
# This may be replaced when dependencies are built.
