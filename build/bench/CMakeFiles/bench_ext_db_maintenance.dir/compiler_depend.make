# Empty compiler generated dependencies file for bench_ext_db_maintenance.
# This may be replaced when dependencies are built.
