file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_db_maintenance.dir/bench_ext_db_maintenance.cpp.o"
  "CMakeFiles/bench_ext_db_maintenance.dir/bench_ext_db_maintenance.cpp.o.d"
  "bench_ext_db_maintenance"
  "bench_ext_db_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_db_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
