# Empty dependencies file for bench_tab03_power.
# This may be replaced when dependencies are built.
