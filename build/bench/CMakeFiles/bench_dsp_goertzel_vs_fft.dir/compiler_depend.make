# Empty compiler generated dependencies file for bench_dsp_goertzel_vs_fft.
# This may be replaced when dependencies are built.
