file(REMOVE_RECURSE
  "../lib/libbussense_benchcommon.a"
  "../lib/libbussense_benchcommon.pdb"
  "CMakeFiles/bussense_benchcommon.dir/bench_common.cpp.o"
  "CMakeFiles/bussense_benchcommon.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bussense_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
