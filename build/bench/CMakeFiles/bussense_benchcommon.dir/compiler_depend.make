# Empty compiler generated dependencies file for bussense_benchcommon.
# This may be replaced when dependencies are built.
