file(REMOVE_RECURSE
  "../lib/libbussense_benchcommon.a"
)
