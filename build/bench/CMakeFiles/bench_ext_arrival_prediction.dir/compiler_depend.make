# Empty compiler generated dependencies file for bench_ext_arrival_prediction.
# This may be replaced when dependencies are built.
