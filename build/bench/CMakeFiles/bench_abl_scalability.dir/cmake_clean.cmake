file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_scalability.dir/bench_abl_scalability.cpp.o"
  "CMakeFiles/bench_abl_scalability.dir/bench_abl_scalability.cpp.o.d"
  "bench_abl_scalability"
  "bench_abl_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
