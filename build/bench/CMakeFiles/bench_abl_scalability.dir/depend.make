# Empty dependencies file for bench_abl_scalability.
# This may be replaced when dependencies are built.
