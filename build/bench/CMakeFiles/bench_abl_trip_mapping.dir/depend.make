# Empty dependencies file for bench_abl_trip_mapping.
# This may be replaced when dependencies are built.
