file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_trip_mapping.dir/bench_abl_trip_mapping.cpp.o"
  "CMakeFiles/bench_abl_trip_mapping.dir/bench_abl_trip_mapping.cpp.o.d"
  "bench_abl_trip_mapping"
  "bench_abl_trip_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_trip_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
