# Empty dependencies file for bench_fig05_clustering_threshold.
# This may be replaced when dependencies are built.
