file(REMOVE_RECURSE
  "CMakeFiles/route_survey.dir/route_survey.cpp.o"
  "CMakeFiles/route_survey.dir/route_survey.cpp.o.d"
  "route_survey"
  "route_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
