# Empty dependencies file for route_survey.
# This may be replaced when dependencies are built.
