file(REMOVE_RECURSE
  "CMakeFiles/city_day.dir/city_day.cpp.o"
  "CMakeFiles/city_day.dir/city_day.cpp.o.d"
  "city_day"
  "city_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
