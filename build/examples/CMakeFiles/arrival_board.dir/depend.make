# Empty dependencies file for arrival_board.
# This may be replaced when dependencies are built.
