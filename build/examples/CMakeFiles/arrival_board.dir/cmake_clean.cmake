file(REMOVE_RECURSE
  "CMakeFiles/arrival_board.dir/arrival_board.cpp.o"
  "CMakeFiles/arrival_board.dir/arrival_board.cpp.o.d"
  "arrival_board"
  "arrival_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
