file(REMOVE_RECURSE
  "CMakeFiles/bussense_trafficsim.dir/bus_sim.cpp.o"
  "CMakeFiles/bussense_trafficsim.dir/bus_sim.cpp.o.d"
  "CMakeFiles/bussense_trafficsim.dir/demand.cpp.o"
  "CMakeFiles/bussense_trafficsim.dir/demand.cpp.o.d"
  "CMakeFiles/bussense_trafficsim.dir/taxi_feed.cpp.o"
  "CMakeFiles/bussense_trafficsim.dir/taxi_feed.cpp.o.d"
  "CMakeFiles/bussense_trafficsim.dir/traffic_field.cpp.o"
  "CMakeFiles/bussense_trafficsim.dir/traffic_field.cpp.o.d"
  "CMakeFiles/bussense_trafficsim.dir/world.cpp.o"
  "CMakeFiles/bussense_trafficsim.dir/world.cpp.o.d"
  "libbussense_trafficsim.a"
  "libbussense_trafficsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bussense_trafficsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
