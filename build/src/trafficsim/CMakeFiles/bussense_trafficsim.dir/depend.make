# Empty dependencies file for bussense_trafficsim.
# This may be replaced when dependencies are built.
