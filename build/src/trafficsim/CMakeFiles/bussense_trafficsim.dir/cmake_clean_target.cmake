file(REMOVE_RECURSE
  "libbussense_trafficsim.a"
)
