
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trafficsim/bus_sim.cpp" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/bus_sim.cpp.o" "gcc" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/bus_sim.cpp.o.d"
  "/root/repo/src/trafficsim/demand.cpp" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/demand.cpp.o" "gcc" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/demand.cpp.o.d"
  "/root/repo/src/trafficsim/taxi_feed.cpp" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/taxi_feed.cpp.o" "gcc" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/taxi_feed.cpp.o.d"
  "/root/repo/src/trafficsim/traffic_field.cpp" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/traffic_field.cpp.o" "gcc" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/traffic_field.cpp.o.d"
  "/root/repo/src/trafficsim/world.cpp" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/world.cpp.o" "gcc" "src/trafficsim/CMakeFiles/bussense_trafficsim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bussense_common.dir/DependInfo.cmake"
  "/root/repo/build/src/citynet/CMakeFiles/bussense_citynet.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/bussense_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/bussense_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/bussense_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
