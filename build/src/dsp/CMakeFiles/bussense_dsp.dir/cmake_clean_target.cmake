file(REMOVE_RECURSE
  "libbussense_dsp.a"
)
