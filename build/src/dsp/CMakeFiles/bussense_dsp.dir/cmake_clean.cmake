file(REMOVE_RECURSE
  "CMakeFiles/bussense_dsp.dir/audio_synth.cpp.o"
  "CMakeFiles/bussense_dsp.dir/audio_synth.cpp.o.d"
  "CMakeFiles/bussense_dsp.dir/beep_detector.cpp.o"
  "CMakeFiles/bussense_dsp.dir/beep_detector.cpp.o.d"
  "CMakeFiles/bussense_dsp.dir/fft.cpp.o"
  "CMakeFiles/bussense_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/bussense_dsp.dir/goertzel.cpp.o"
  "CMakeFiles/bussense_dsp.dir/goertzel.cpp.o.d"
  "libbussense_dsp.a"
  "libbussense_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bussense_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
