# Empty dependencies file for bussense_dsp.
# This may be replaced when dependencies are built.
