
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/citynet/bus_route.cpp" "src/citynet/CMakeFiles/bussense_citynet.dir/bus_route.cpp.o" "gcc" "src/citynet/CMakeFiles/bussense_citynet.dir/bus_route.cpp.o.d"
  "/root/repo/src/citynet/city.cpp" "src/citynet/CMakeFiles/bussense_citynet.dir/city.cpp.o" "gcc" "src/citynet/CMakeFiles/bussense_citynet.dir/city.cpp.o.d"
  "/root/repo/src/citynet/city_generator.cpp" "src/citynet/CMakeFiles/bussense_citynet.dir/city_generator.cpp.o" "gcc" "src/citynet/CMakeFiles/bussense_citynet.dir/city_generator.cpp.o.d"
  "/root/repo/src/citynet/road_network.cpp" "src/citynet/CMakeFiles/bussense_citynet.dir/road_network.cpp.o" "gcc" "src/citynet/CMakeFiles/bussense_citynet.dir/road_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bussense_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
