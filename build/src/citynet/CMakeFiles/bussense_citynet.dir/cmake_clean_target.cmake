file(REMOVE_RECURSE
  "libbussense_citynet.a"
)
