# Empty compiler generated dependencies file for bussense_citynet.
# This may be replaced when dependencies are built.
