file(REMOVE_RECURSE
  "CMakeFiles/bussense_citynet.dir/bus_route.cpp.o"
  "CMakeFiles/bussense_citynet.dir/bus_route.cpp.o.d"
  "CMakeFiles/bussense_citynet.dir/city.cpp.o"
  "CMakeFiles/bussense_citynet.dir/city.cpp.o.d"
  "CMakeFiles/bussense_citynet.dir/city_generator.cpp.o"
  "CMakeFiles/bussense_citynet.dir/city_generator.cpp.o.d"
  "CMakeFiles/bussense_citynet.dir/road_network.cpp.o"
  "CMakeFiles/bussense_citynet.dir/road_network.cpp.o.d"
  "libbussense_citynet.a"
  "libbussense_citynet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bussense_citynet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
