# Empty dependencies file for bussense_sensing.
# This may be replaced when dependencies are built.
