
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensing/accel_model.cpp" "src/sensing/CMakeFiles/bussense_sensing.dir/accel_model.cpp.o" "gcc" "src/sensing/CMakeFiles/bussense_sensing.dir/accel_model.cpp.o.d"
  "/root/repo/src/sensing/gps_model.cpp" "src/sensing/CMakeFiles/bussense_sensing.dir/gps_model.cpp.o" "gcc" "src/sensing/CMakeFiles/bussense_sensing.dir/gps_model.cpp.o.d"
  "/root/repo/src/sensing/power_model.cpp" "src/sensing/CMakeFiles/bussense_sensing.dir/power_model.cpp.o" "gcc" "src/sensing/CMakeFiles/bussense_sensing.dir/power_model.cpp.o.d"
  "/root/repo/src/sensing/trip_recorder.cpp" "src/sensing/CMakeFiles/bussense_sensing.dir/trip_recorder.cpp.o" "gcc" "src/sensing/CMakeFiles/bussense_sensing.dir/trip_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bussense_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/bussense_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/bussense_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
