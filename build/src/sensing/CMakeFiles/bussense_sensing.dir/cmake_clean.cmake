file(REMOVE_RECURSE
  "CMakeFiles/bussense_sensing.dir/accel_model.cpp.o"
  "CMakeFiles/bussense_sensing.dir/accel_model.cpp.o.d"
  "CMakeFiles/bussense_sensing.dir/gps_model.cpp.o"
  "CMakeFiles/bussense_sensing.dir/gps_model.cpp.o.d"
  "CMakeFiles/bussense_sensing.dir/power_model.cpp.o"
  "CMakeFiles/bussense_sensing.dir/power_model.cpp.o.d"
  "CMakeFiles/bussense_sensing.dir/trip_recorder.cpp.o"
  "CMakeFiles/bussense_sensing.dir/trip_recorder.cpp.o.d"
  "libbussense_sensing.a"
  "libbussense_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bussense_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
