file(REMOVE_RECURSE
  "libbussense_sensing.a"
)
