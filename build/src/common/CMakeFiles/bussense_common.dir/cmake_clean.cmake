file(REMOVE_RECURSE
  "CMakeFiles/bussense_common.dir/geo.cpp.o"
  "CMakeFiles/bussense_common.dir/geo.cpp.o.d"
  "CMakeFiles/bussense_common.dir/stats.cpp.o"
  "CMakeFiles/bussense_common.dir/stats.cpp.o.d"
  "CMakeFiles/bussense_common.dir/table.cpp.o"
  "CMakeFiles/bussense_common.dir/table.cpp.o.d"
  "libbussense_common.a"
  "libbussense_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bussense_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
