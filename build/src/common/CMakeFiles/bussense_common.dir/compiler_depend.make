# Empty compiler generated dependencies file for bussense_common.
# This may be replaced when dependencies are built.
