file(REMOVE_RECURSE
  "libbussense_common.a"
)
