# Empty dependencies file for bussense_core.
# This may be replaced when dependencies are built.
