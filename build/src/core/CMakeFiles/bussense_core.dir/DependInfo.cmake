
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arrival_predictor.cpp" "src/core/CMakeFiles/bussense_core.dir/arrival_predictor.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/arrival_predictor.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/core/CMakeFiles/bussense_core.dir/clustering.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/clustering.cpp.o.d"
  "/root/repo/src/core/concurrent_server.cpp" "src/core/CMakeFiles/bussense_core.dir/concurrent_server.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/concurrent_server.cpp.o.d"
  "/root/repo/src/core/db_updater.cpp" "src/core/CMakeFiles/bussense_core.dir/db_updater.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/db_updater.cpp.o.d"
  "/root/repo/src/core/fusion.cpp" "src/core/CMakeFiles/bussense_core.dir/fusion.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/fusion.cpp.o.d"
  "/root/repo/src/core/gps_tracker.cpp" "src/core/CMakeFiles/bussense_core.dir/gps_tracker.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/gps_tracker.cpp.o.d"
  "/root/repo/src/core/matching.cpp" "src/core/CMakeFiles/bussense_core.dir/matching.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/matching.cpp.o.d"
  "/root/repo/src/core/region_inference.cpp" "src/core/CMakeFiles/bussense_core.dir/region_inference.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/region_inference.cpp.o.d"
  "/root/repo/src/core/route_graph.cpp" "src/core/CMakeFiles/bussense_core.dir/route_graph.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/route_graph.cpp.o.d"
  "/root/repo/src/core/segment_catalog.cpp" "src/core/CMakeFiles/bussense_core.dir/segment_catalog.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/segment_catalog.cpp.o.d"
  "/root/repo/src/core/serialization.cpp" "src/core/CMakeFiles/bussense_core.dir/serialization.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/serialization.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/bussense_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/server.cpp.o.d"
  "/root/repo/src/core/stop_database.cpp" "src/core/CMakeFiles/bussense_core.dir/stop_database.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/stop_database.cpp.o.d"
  "/root/repo/src/core/stop_matcher.cpp" "src/core/CMakeFiles/bussense_core.dir/stop_matcher.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/stop_matcher.cpp.o.d"
  "/root/repo/src/core/svg_map.cpp" "src/core/CMakeFiles/bussense_core.dir/svg_map.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/svg_map.cpp.o.d"
  "/root/repo/src/core/traffic_map.cpp" "src/core/CMakeFiles/bussense_core.dir/traffic_map.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/traffic_map.cpp.o.d"
  "/root/repo/src/core/travel_estimator.cpp" "src/core/CMakeFiles/bussense_core.dir/travel_estimator.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/travel_estimator.cpp.o.d"
  "/root/repo/src/core/trip_mapper.cpp" "src/core/CMakeFiles/bussense_core.dir/trip_mapper.cpp.o" "gcc" "src/core/CMakeFiles/bussense_core.dir/trip_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bussense_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/bussense_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/citynet/CMakeFiles/bussense_citynet.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/bussense_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/bussense_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
