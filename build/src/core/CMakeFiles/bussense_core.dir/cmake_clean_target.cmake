file(REMOVE_RECURSE
  "libbussense_core.a"
)
