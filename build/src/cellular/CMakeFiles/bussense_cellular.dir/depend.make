# Empty dependencies file for bussense_cellular.
# This may be replaced when dependencies are built.
