file(REMOVE_RECURSE
  "CMakeFiles/bussense_cellular.dir/deployment.cpp.o"
  "CMakeFiles/bussense_cellular.dir/deployment.cpp.o.d"
  "CMakeFiles/bussense_cellular.dir/fingerprint.cpp.o"
  "CMakeFiles/bussense_cellular.dir/fingerprint.cpp.o.d"
  "CMakeFiles/bussense_cellular.dir/radio_environment.cpp.o"
  "CMakeFiles/bussense_cellular.dir/radio_environment.cpp.o.d"
  "CMakeFiles/bussense_cellular.dir/scanner.cpp.o"
  "CMakeFiles/bussense_cellular.dir/scanner.cpp.o.d"
  "libbussense_cellular.a"
  "libbussense_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bussense_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
