
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellular/deployment.cpp" "src/cellular/CMakeFiles/bussense_cellular.dir/deployment.cpp.o" "gcc" "src/cellular/CMakeFiles/bussense_cellular.dir/deployment.cpp.o.d"
  "/root/repo/src/cellular/fingerprint.cpp" "src/cellular/CMakeFiles/bussense_cellular.dir/fingerprint.cpp.o" "gcc" "src/cellular/CMakeFiles/bussense_cellular.dir/fingerprint.cpp.o.d"
  "/root/repo/src/cellular/radio_environment.cpp" "src/cellular/CMakeFiles/bussense_cellular.dir/radio_environment.cpp.o" "gcc" "src/cellular/CMakeFiles/bussense_cellular.dir/radio_environment.cpp.o.d"
  "/root/repo/src/cellular/scanner.cpp" "src/cellular/CMakeFiles/bussense_cellular.dir/scanner.cpp.o" "gcc" "src/cellular/CMakeFiles/bussense_cellular.dir/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bussense_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
