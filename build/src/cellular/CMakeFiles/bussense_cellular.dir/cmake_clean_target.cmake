file(REMOVE_RECURSE
  "libbussense_cellular.a"
)
