# Empty compiler generated dependencies file for test_citynet.
# This may be replaced when dependencies are built.
