file(REMOVE_RECURSE
  "CMakeFiles/test_citynet.dir/test_citynet.cpp.o"
  "CMakeFiles/test_citynet.dir/test_citynet.cpp.o.d"
  "test_citynet"
  "test_citynet.pdb"
  "test_citynet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_citynet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
