file(REMOVE_RECURSE
  "CMakeFiles/test_cellular.dir/test_cellular.cpp.o"
  "CMakeFiles/test_cellular.dir/test_cellular.cpp.o.d"
  "test_cellular"
  "test_cellular.pdb"
  "test_cellular[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
