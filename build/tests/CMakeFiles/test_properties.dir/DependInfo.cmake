
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/test_properties.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_properties.dir/test_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bussense_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trafficsim/CMakeFiles/bussense_trafficsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sensing/CMakeFiles/bussense_sensing.dir/DependInfo.cmake"
  "/root/repo/build/src/citynet/CMakeFiles/bussense_citynet.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/bussense_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/bussense_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bussense_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
