# Empty dependencies file for test_trafficsim.
# This may be replaced when dependencies are built.
