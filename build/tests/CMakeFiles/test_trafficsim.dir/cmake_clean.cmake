file(REMOVE_RECURSE
  "CMakeFiles/test_trafficsim.dir/test_trafficsim.cpp.o"
  "CMakeFiles/test_trafficsim.dir/test_trafficsim.cpp.o.d"
  "test_trafficsim"
  "test_trafficsim.pdb"
  "test_trafficsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trafficsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
