# Empty dependencies file for test_world_detail.
# This may be replaced when dependencies are built.
