file(REMOVE_RECURSE
  "CMakeFiles/test_world_detail.dir/test_world_detail.cpp.o"
  "CMakeFiles/test_world_detail.dir/test_world_detail.cpp.o.d"
  "test_world_detail"
  "test_world_detail.pdb"
  "test_world_detail[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_world_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
