# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_cellular[1]_include.cmake")
include("/root/repo/build/tests/test_citynet[1]_include.cmake")
include("/root/repo/build/tests/test_trafficsim[1]_include.cmake")
include("/root/repo/build/tests/test_sensing[1]_include.cmake")
include("/root/repo/build/tests/test_matching[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_world_detail[1]_include.cmake")
include("/root/repo/build/tests/test_audio_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_svg[1]_include.cmake")
