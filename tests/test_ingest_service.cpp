// Asynchronous ingest service: backpressure semantics, graceful shutdown,
// and the determinism contract — the queued path must produce a fused map
// bit-identical to the serial TrafficServer for the same accepted uploads,
// with metrics on or off, at any worker count.
//
// Configure with -DBUSSENSE_SANITIZE=thread to run this suite under
// ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/ingest_service.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "obs/metrics.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

struct Testbed {
  World world;
  StopDatabase database;
  std::vector<AnnotatedTrip> trips;

  Testbed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
    Rng rng(77);
    trips = world.simulate_day(0, 1.2, rng).trips;
  }
};

const Testbed& testbed() {
  static const Testbed bed;
  return bed;
}

using Backpressure = IngestServiceConfig::Backpressure;

IngestServiceConfig manual_config(Backpressure policy, std::size_t capacity) {
  IngestServiceConfig svc;
  svc.workers = 0;  // manual mode: the test steps the queue
  svc.backpressure = policy;
  svc.queue_capacity = capacity;
  return svc;
}

// ------------------------------------------------------------- validation

TEST(IngestServiceConfig, RejectsNonsense) {
  const Testbed& bed = testbed();
  IngestServiceConfig zero_cap;
  zero_cap.queue_capacity = 0;
  EXPECT_THROW(IngestService(bed.world.city(), bed.database, {}, zero_cap),
               std::invalid_argument);

  // kBlock with no workers would deadlock the first enqueue on a full
  // queue; validate() must refuse the combination up front.
  IngestServiceConfig block_manual;
  block_manual.workers = 0;
  block_manual.backpressure = Backpressure::kBlock;
  EXPECT_THROW(IngestService(bed.world.city(), bed.database, {}, block_manual),
               std::invalid_argument);

  IngestServiceConfig bad_stripes;
  bad_stripes.concurrency.fusion_stripes = 0;
  EXPECT_THROW(IngestService(bed.world.city(), bed.database, {}, bad_stripes),
               std::invalid_argument);
}

TEST(ServerConfigValidation, ThrowsOnNonsense) {
  const Testbed& bed = testbed();
  ServerConfig bad;
  bad.fusion.update_period_s = 0.0;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, bad),
               std::invalid_argument);
  ServerConfig bad2;
  bad2.clustering.max_gap_s = -1.0;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, bad2),
               std::invalid_argument);
}

// ------------------------------------------------------------ backpressure

TEST(IngestBackpressure, RejectPolicyCountsRefusals) {
  const Testbed& bed = testbed();
  ASSERT_GE(bed.trips.size(), 8u);
  IngestService service(bed.world.city(), bed.database, {},
                        manual_config(Backpressure::kReject, 4));

  std::size_t queued = 0, rejected = 0;
  for (std::size_t i = 0; i < 7; ++i) {
    const TripReport r = service.process_trip(bed.trips[i].upload);
    if (r.outcome == IngestOutcome::kQueued) {
      ++queued;
    } else {
      ++rejected;
      EXPECT_EQ(r.outcome, IngestOutcome::kRejected);
      EXPECT_EQ(r.reject_reason, RejectReason::kQueueFull);
      EXPECT_FALSE(r.accepted());
    }
  }
  EXPECT_EQ(queued, 4u);
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(service.queue_depth(), 4u);

  // The refusals are an operator-visible signal, not a silent drop.
  const MetricsSnapshot ms = service.metrics().snapshot();
  EXPECT_EQ(ms.counters.at("ingest.enqueued"), 4u);
  EXPECT_EQ(ms.counters.at("ingest.rejected_queue_full"), 3u);
  EXPECT_EQ(ms.gauges.at("ingest.queue_depth"), 4.0);

  // Draining frees capacity: the next upload is accepted again.
  EXPECT_EQ(service.process_queued(2), 2u);
  EXPECT_EQ(service.process_trip(bed.trips[7].upload).outcome,
            IngestOutcome::kQueued);
  service.drain();
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.trips_processed(), 5u);
}

TEST(IngestBackpressure, DropOldestKeepsFreshestUploads) {
  const Testbed& bed = testbed();
  ASSERT_GE(bed.trips.size(), 6u);
  IngestService service(bed.world.city(), bed.database, {},
                        manual_config(Backpressure::kDropOldest, 3));

  for (std::size_t i = 0; i < 6; ++i) {
    // Every enqueue is accepted — the queue sheds the oldest instead.
    EXPECT_EQ(service.process_trip(bed.trips[i].upload).outcome,
              IngestOutcome::kQueued);
  }
  EXPECT_EQ(service.queue_depth(), 3u);
  const MetricsSnapshot ms = service.metrics().snapshot();
  EXPECT_EQ(ms.counters.at("ingest.enqueued"), 6u);
  EXPECT_EQ(ms.counters.at("ingest.dropped_oldest"), 3u);

  service.drain();
  // Only the freshest three survived to the pipeline.
  EXPECT_EQ(service.trips_processed(), 3u);
}

TEST(IngestBackpressure, BlockPolicyIsLossless) {
  const Testbed& bed = testbed();
  IngestServiceConfig svc;
  svc.workers = 2;
  svc.queue_capacity = 2;  // tiny on purpose: producers must block
  svc.backpressure = Backpressure::kBlock;
  IngestService service(bed.world.city(), bed.database, {}, svc);

  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p); i < bed.trips.size();
           i += 4) {
        if (service.process_trip(bed.trips[i].upload).accepted()) ++accepted;
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.drain();
  EXPECT_EQ(accepted.load(), bed.trips.size());
  EXPECT_EQ(service.trips_processed(), bed.trips.size());
  const MetricsSnapshot ms = service.metrics().snapshot();
  EXPECT_EQ(ms.counters.at("ingest.processed"), bed.trips.size());
  EXPECT_EQ(ms.counters.at("ingest.rejected_queue_full"), 0u);
  EXPECT_EQ(ms.counters.at("ingest.dropped_oldest"), 0u);
}

// ---------------------------------------------------------------- shutdown

TEST(IngestShutdown, DrainsQueueAndRejectsLateUploads) {
  const Testbed& bed = testbed();
  IngestService service(bed.world.city(), bed.database, {},
                        manual_config(Backpressure::kReject, 64));
  const std::size_t n = std::min<std::size_t>(bed.trips.size(), 20);
  for (std::size_t i = 0; i < n; ++i) {
    service.process_trip(bed.trips[i].upload);
  }
  EXPECT_EQ(service.queue_depth(), n);

  service.shutdown();
  EXPECT_TRUE(service.closed());
  // Graceful: everything queued before shutdown was still analysed...
  EXPECT_EQ(service.trips_processed(), n);
  EXPECT_EQ(service.queue_depth(), 0u);

  // ...and late uploads are refused with the explicit reason.
  const TripReport late = service.process_trip(bed.trips[0].upload);
  EXPECT_EQ(late.outcome, IngestOutcome::kRejected);
  EXPECT_EQ(late.reject_reason, RejectReason::kShutdown);
  EXPECT_EQ(service.metrics().snapshot().counters.at(
                "ingest.rejected_shutdown"),
            1u);

  service.shutdown();  // idempotent
  EXPECT_EQ(service.trips_processed(), n);
}

TEST(IngestShutdown, UnderProducerLoadLosesNoAcceptedUpload) {
  const Testbed& bed = testbed();
  for (int round = 0; round < 3; ++round) {
    IngestServiceConfig svc;
    svc.workers = 4;
    svc.queue_capacity = 8;
    svc.backpressure = Backpressure::kReject;
    auto service = std::make_unique<IngestService>(bed.world.city(),
                                                   bed.database, ServerConfig{},
                                                   svc);
    std::atomic<std::size_t> accepted{0}, rejected{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p);
             i < bed.trips.size(); i += 4) {
          const TripReport r = service->process_trip(bed.trips[i].upload);
          if (r.accepted()) {
            ++accepted;
          } else {
            ++rejected;
          }
        }
      });
    }
    // Tear the service down while producers are still hammering it; the
    // destructor runs the same graceful shutdown.
    service->shutdown();
    for (std::thread& t : producers) t.join();
    EXPECT_EQ(accepted.load() + rejected.load(), bed.trips.size());
    // Every accepted upload made it through the pipeline — none were lost
    // between the queue and the workers.
    EXPECT_EQ(service->trips_processed(), accepted.load());
    const MetricsSnapshot ms = service->metrics().snapshot();
    EXPECT_EQ(ms.counters.at("ingest.processed"), accepted.load());
    EXPECT_EQ(ms.counters.at("ingest.rejected_queue_full") +
                  ms.counters.at("ingest.rejected_shutdown"),
              rejected.load());
  }
}

// ------------------------------------------------------------- determinism

// The tentpole property: serial server, async service with metrics on, and
// async service with metrics off — same accepted uploads, bit-identical
// fused maps, at several worker counts.
TEST(IngestDeterminism, QueuedPathBitIdenticalToSerial) {
  const Testbed& bed = testbed();
  ASSERT_GT(bed.trips.size(), 30u);
  const SimTime end = at_clock(1, 0, 0);

  TrafficServer serial(bed.world.city(), bed.database);
  for (const AnnotatedTrip& trip : bed.trips) serial.process_trip(trip.upload);
  serial.advance_time(end);
  const auto expected = serial.fusion().all();
  ASSERT_FALSE(expected.empty());

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    for (const bool metrics_on : {true, false}) {
      ServerConfig cfg;
      cfg.obs.enabled = metrics_on;
      IngestServiceConfig svc;
      svc.workers = workers;
      svc.queue_capacity = 16;  // small: exercises blocking backpressure
      svc.backpressure = Backpressure::kBlock;
      // Small batches + few stripes on purpose: more interleavings.
      svc.concurrency.fusion_stripes = 4;
      svc.concurrency.batch_flush_threshold = 8;
      IngestService service(bed.world.city(), bed.database, cfg, svc);

      std::vector<std::thread> producers;
      for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&, p] {
          for (std::size_t i = static_cast<std::size_t>(p);
               i < bed.trips.size(); i += 3) {
            ASSERT_TRUE(service.process_trip(bed.trips[i].upload).accepted());
          }
        });
      }
      for (std::thread& t : producers) t.join();
      service.advance_time(end);  // drains, then closes periods

      EXPECT_EQ(service.trips_processed(), bed.trips.size());
      const auto got = service.backend().fusion().all();
      ASSERT_EQ(got.size(), expected.size())
          << workers << " workers, metrics " << metrics_on;
      for (const auto& [key, fused] : expected) {
        const auto q = service.backend().fusion().query(key);
        ASSERT_TRUE(q.has_value());
        EXPECT_EQ(q->mean_kmh, fused.mean_kmh);
        EXPECT_EQ(q->variance, fused.variance);
        EXPECT_EQ(q->updated_at, fused.updated_at);
        EXPECT_EQ(q->observation_count, fused.observation_count);
      }
    }
  }
}

TEST(IngestDeterminism, MetricsOffRegistryStaysEmpty) {
  const Testbed& bed = testbed();
  ServerConfig cfg;
  cfg.obs.enabled = false;
  IngestService service(bed.world.city(), bed.database, cfg,
                        manual_config(Backpressure::kReject, 64));
  service.process_trip(bed.trips[0].upload);
  service.drain();
  const MetricsSnapshot ms = service.metrics().snapshot();
  EXPECT_TRUE(ms.counters.empty());
  EXPECT_TRUE(ms.gauges.empty());
  EXPECT_TRUE(ms.histograms.empty());
}

// ------------------------------------------------------- metrics registry

TEST(MetricsRegistry, MergeIsDeterministicAcrossShardings) {
  // The same 1000 observations split across 1, 2, 5 per-thread registries
  // and merged in order must snapshot identically.
  const auto feed = [](MetricsRegistry& reg, int begin, int end) {
    Counter& c = reg.counter("work.items");
    BucketHistogram& h = reg.histogram("work.latency_s");
    Gauge& g = reg.gauge("work.depth");
    for (int i = begin; i < end; ++i) {
      c.inc();
      h.record(1e-6 * static_cast<double>(1 + (i * 7919) % 100000));
      g.set(static_cast<double>(end));
    }
  };

  std::vector<MetricsSnapshot> snaps;
  for (const int shards : {1, 2, 5}) {
    std::vector<MetricsRegistry> parts(static_cast<std::size_t>(shards));
    const int per = 1000 / shards;
    for (int s = 0; s < shards; ++s) {
      feed(parts[static_cast<std::size_t>(s)], s * per, (s + 1) * per);
    }
    // Gauges are last-writer-wins: make every shard agree so the merge
    // order cannot matter for them either.
    for (auto& p : parts) p.gauge("work.depth").set(1000.0);
    MetricsRegistry merged;
    for (const auto& p : parts) merged.merge(p);
    snaps.push_back(merged.snapshot());
  }
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    // Counters, gauges, bucket counts and totals merge exactly; only the
    // histogram's running sum is a float accumulation, which merges to
    // within rounding (documented in obs/metrics.h).
    EXPECT_EQ(snaps[i].counters, snaps[0].counters);
    EXPECT_EQ(snaps[i].gauges, snaps[0].gauges);
    ASSERT_EQ(snaps[i].histograms.size(), snaps[0].histograms.size());
    const auto& a = snaps[0].histograms.at("work.latency_s");
    const auto& b = snaps[i].histograms.at("work.latency_s");
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.percentile(0.5), b.percentile(0.5));
    EXPECT_EQ(a.percentile(0.99), b.percentile(0.99));
    EXPECT_NEAR(a.sum, b.sum, 1e-9 * a.sum);
  }
}

TEST(MetricsRegistry, ConcurrentRecordingCountsEverything) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  BucketHistogram& h = reg.histogram("lat_s");
  std::vector<std::thread> pool;
  constexpr int kThreads = 8, kPer = 5000;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        c.inc();
        h.record(1e-5);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPer));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_NEAR(snap.mean(), 1e-5, 1e-12);
}

TEST(BucketHistogramSnapshot, PercentilesInterpolateAndClamp) {
  BucketHistogram h({1.0, 2.0, 5.0});
  for (int i = 0; i < 50; ++i) h.record(0.5);   // first bucket
  for (int i = 0; i < 50; ++i) h.record(1.5);   // second bucket
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 100u);
  EXPECT_LE(snap.percentile(0.25), 1.0);
  EXPECT_GT(snap.percentile(0.75), 1.0);
  EXPECT_LE(snap.percentile(0.75), 2.0);
  h.record(100.0);  // overflow clamps to the last finite bound
  EXPECT_EQ(h.snapshot().percentile(1.0), 5.0);
  EXPECT_THROW(BucketHistogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(BucketHistogram({}), std::invalid_argument);
}

// ------------------------------------------------------------ deprecation

// The renamed stage methods keep forwarding wrappers for one cycle; this
// test pins their behaviour (and locally silences the deprecation noise).
TEST(DeprecatedWrappers, ForwardToRenamedStageMethods) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  const auto matched = server.match_samples(bed.trips[0].upload);
#ifdef __GNUC__
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  const auto via_old_cluster = server.cluster(matched);
  const MappedTrip via_old_map = server.map(via_old_cluster);
#ifdef __GNUC__
#pragma GCC diagnostic pop
#endif
  const auto via_new_cluster = server.cluster_samples(matched);
  const MappedTrip via_new_map = server.map_trip(via_new_cluster);
  ASSERT_EQ(via_old_cluster.size(), via_new_cluster.size());
  ASSERT_EQ(via_old_map.stops.size(), via_new_map.stops.size());
  for (std::size_t i = 0; i < via_old_map.stops.size(); ++i) {
    EXPECT_EQ(via_old_map.stops[i].stop, via_new_map.stops[i].stop);
  }
}

}  // namespace
}  // namespace bussense
