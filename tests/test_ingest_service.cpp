// Asynchronous ingest services: backpressure semantics, graceful shutdown,
// and the determinism contract — both queued paths (the single-queue
// IngestService and the scale-out ShardedIngestService) must produce a
// fused map bit-identical to the serial TrafficServer for the same
// accepted uploads, with metrics and admission on or off, at any worker,
// shard and producer count, and regardless of when the cross-shard merge
// (advance_time) runs.
//
// Configure with -DBUSSENSE_SANITIZE=thread to run this suite under
// ThreadSanitizer (scripts/tier1.sh BUSSENSE_SHARDED=ON does).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/ingest_service.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "obs/metrics.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

struct Testbed {
  World world;
  StopDatabase database;
  std::vector<AnnotatedTrip> trips;

  Testbed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
    Rng rng(77);
    trips = world.simulate_day(0, 1.2, rng).trips;
  }
};

const Testbed& testbed() {
  static const Testbed bed;
  return bed;
}

using Backpressure = IngestServiceConfig::Backpressure;

IngestServiceConfig manual_config(Backpressure policy, std::size_t capacity) {
  IngestServiceConfig svc;
  svc.workers = 0;  // manual mode: the test steps the queue
  svc.backpressure = policy;
  svc.queue_capacity = capacity;
  return svc;
}

// ------------------------------------------------------------- validation

TEST(IngestServiceConfig, RejectsNonsense) {
  const Testbed& bed = testbed();
  IngestServiceConfig zero_cap;
  zero_cap.queue_capacity = 0;
  EXPECT_THROW(IngestService(bed.world.city(), bed.database, {}, zero_cap),
               std::invalid_argument);

  // kBlock with no workers would deadlock the first enqueue on a full
  // queue; validate() must refuse the combination up front.
  IngestServiceConfig block_manual;
  block_manual.workers = 0;
  block_manual.backpressure = Backpressure::kBlock;
  EXPECT_THROW(IngestService(bed.world.city(), bed.database, {}, block_manual),
               std::invalid_argument);

  IngestServiceConfig bad_stripes;
  bad_stripes.concurrency.fusion_stripes = 0;
  EXPECT_THROW(IngestService(bed.world.city(), bed.database, {}, bad_stripes),
               std::invalid_argument);
}

TEST(ServerConfigValidation, ThrowsOnNonsense) {
  const Testbed& bed = testbed();
  ServerConfig bad;
  bad.fusion.update_period_s = 0.0;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, bad),
               std::invalid_argument);
  ServerConfig bad2;
  bad2.clustering.max_gap_s = -1.0;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, bad2),
               std::invalid_argument);
}

// ------------------------------------------------------------ backpressure

TEST(IngestBackpressure, RejectPolicyCountsRefusals) {
  const Testbed& bed = testbed();
  ASSERT_GE(bed.trips.size(), 8u);
  IngestService service(bed.world.city(), bed.database, {},
                        manual_config(Backpressure::kReject, 4));

  std::size_t queued = 0, rejected = 0;
  for (std::size_t i = 0; i < 7; ++i) {
    const TripReport r = service.process_trip(bed.trips[i].upload);
    if (r.outcome == IngestOutcome::kQueued) {
      ++queued;
    } else {
      ++rejected;
      EXPECT_EQ(r.outcome, IngestOutcome::kRejected);
      EXPECT_EQ(r.reject_reason, RejectReason::kQueueFull);
      EXPECT_FALSE(r.accepted());
    }
  }
  EXPECT_EQ(queued, 4u);
  EXPECT_EQ(rejected, 3u);
  EXPECT_EQ(service.queue_depth(), 4u);

  // The refusals are an operator-visible signal, not a silent drop.
  const MetricsSnapshot ms = service.metrics().snapshot();
  EXPECT_EQ(ms.counters.at("ingest.enqueued"), 4u);
  EXPECT_EQ(ms.counters.at("ingest.rejected_queue_full"), 3u);
  EXPECT_EQ(ms.gauges.at("ingest.queue_depth"), 4.0);

  // Draining frees capacity: the next upload is accepted again.
  EXPECT_EQ(service.process_queued(2), 2u);
  EXPECT_EQ(service.process_trip(bed.trips[7].upload).outcome,
            IngestOutcome::kQueued);
  service.drain();
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.trips_processed(), 5u);
}

TEST(IngestBackpressure, DropOldestKeepsFreshestUploads) {
  const Testbed& bed = testbed();
  ASSERT_GE(bed.trips.size(), 6u);
  IngestService service(bed.world.city(), bed.database, {},
                        manual_config(Backpressure::kDropOldest, 3));

  for (std::size_t i = 0; i < 6; ++i) {
    // Every enqueue is accepted — the queue sheds the oldest instead.
    EXPECT_EQ(service.process_trip(bed.trips[i].upload).outcome,
              IngestOutcome::kQueued);
  }
  EXPECT_EQ(service.queue_depth(), 3u);
  const MetricsSnapshot ms = service.metrics().snapshot();
  EXPECT_EQ(ms.counters.at("ingest.enqueued"), 6u);
  EXPECT_EQ(ms.counters.at("ingest.dropped_oldest"), 3u);

  service.drain();
  // Only the freshest three survived to the pipeline.
  EXPECT_EQ(service.trips_processed(), 3u);
}

TEST(IngestBackpressure, BlockPolicyIsLossless) {
  const Testbed& bed = testbed();
  IngestServiceConfig svc;
  svc.workers = 2;
  svc.queue_capacity = 2;  // tiny on purpose: producers must block
  svc.backpressure = Backpressure::kBlock;
  IngestService service(bed.world.city(), bed.database, {}, svc);

  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = static_cast<std::size_t>(p); i < bed.trips.size();
           i += 4) {
        if (service.process_trip(bed.trips[i].upload).accepted()) ++accepted;
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.drain();
  EXPECT_EQ(accepted.load(), bed.trips.size());
  EXPECT_EQ(service.trips_processed(), bed.trips.size());
  const MetricsSnapshot ms = service.metrics().snapshot();
  EXPECT_EQ(ms.counters.at("ingest.processed"), bed.trips.size());
  EXPECT_EQ(ms.counters.at("ingest.rejected_queue_full"), 0u);
  EXPECT_EQ(ms.counters.at("ingest.dropped_oldest"), 0u);
}

// ---------------------------------------------------------------- shutdown

TEST(IngestShutdown, DrainsQueueAndRejectsLateUploads) {
  const Testbed& bed = testbed();
  IngestService service(bed.world.city(), bed.database, {},
                        manual_config(Backpressure::kReject, 64));
  const std::size_t n = std::min<std::size_t>(bed.trips.size(), 20);
  for (std::size_t i = 0; i < n; ++i) {
    service.process_trip(bed.trips[i].upload);
  }
  EXPECT_EQ(service.queue_depth(), n);

  service.shutdown();
  EXPECT_TRUE(service.closed());
  // Graceful: everything queued before shutdown was still analysed...
  EXPECT_EQ(service.trips_processed(), n);
  EXPECT_EQ(service.queue_depth(), 0u);

  // ...and late uploads are refused with the explicit reason.
  const TripReport late = service.process_trip(bed.trips[0].upload);
  EXPECT_EQ(late.outcome, IngestOutcome::kRejected);
  EXPECT_EQ(late.reject_reason, RejectReason::kShutdown);
  EXPECT_EQ(service.metrics().snapshot().counters.at(
                "ingest.rejected_shutdown"),
            1u);

  service.shutdown();  // idempotent
  EXPECT_EQ(service.trips_processed(), n);
}

TEST(IngestShutdown, UnderProducerLoadLosesNoAcceptedUpload) {
  const Testbed& bed = testbed();
  for (int round = 0; round < 3; ++round) {
    IngestServiceConfig svc;
    svc.workers = 4;
    svc.queue_capacity = 8;
    svc.backpressure = Backpressure::kReject;
    auto service = std::make_unique<IngestService>(bed.world.city(),
                                                   bed.database, ServerConfig{},
                                                   svc);
    std::atomic<std::size_t> accepted{0}, rejected{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p);
             i < bed.trips.size(); i += 4) {
          const TripReport r = service->process_trip(bed.trips[i].upload);
          if (r.accepted()) {
            ++accepted;
          } else {
            ++rejected;
          }
        }
      });
    }
    // Tear the service down while producers are still hammering it; the
    // destructor runs the same graceful shutdown.
    service->shutdown();
    for (std::thread& t : producers) t.join();
    EXPECT_EQ(accepted.load() + rejected.load(), bed.trips.size());
    // Every accepted upload made it through the pipeline — none were lost
    // between the queue and the workers.
    EXPECT_EQ(service->trips_processed(), accepted.load());
    const MetricsSnapshot ms = service->metrics().snapshot();
    EXPECT_EQ(ms.counters.at("ingest.processed"), accepted.load());
    EXPECT_EQ(ms.counters.at("ingest.rejected_queue_full") +
                  ms.counters.at("ingest.rejected_shutdown"),
              rejected.load());
  }
}

// ------------------------------------------------------------- determinism

// The tentpole property: serial server, async service with metrics on, and
// async service with metrics off — same accepted uploads, bit-identical
// fused maps, at several worker counts.
TEST(IngestDeterminism, QueuedPathBitIdenticalToSerial) {
  const Testbed& bed = testbed();
  ASSERT_GT(bed.trips.size(), 30u);
  const SimTime end = at_clock(1, 0, 0);

  TrafficServer serial(bed.world.city(), bed.database);
  for (const AnnotatedTrip& trip : bed.trips) serial.process_trip(trip.upload);
  serial.advance_time(end);
  const auto expected = serial.fusion().all();
  ASSERT_FALSE(expected.empty());

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    for (const bool metrics_on : {true, false}) {
      ServerConfig cfg;
      cfg.obs.enabled = metrics_on;
      IngestServiceConfig svc;
      svc.workers = workers;
      svc.queue_capacity = 16;  // small: exercises blocking backpressure
      svc.backpressure = Backpressure::kBlock;
      // Small batches + few stripes on purpose: more interleavings.
      svc.concurrency.fusion_stripes = 4;
      svc.concurrency.batch_flush_threshold = 8;
      IngestService service(bed.world.city(), bed.database, cfg, svc);

      std::vector<std::thread> producers;
      for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&, p] {
          for (std::size_t i = static_cast<std::size_t>(p);
               i < bed.trips.size(); i += 3) {
            ASSERT_TRUE(service.process_trip(bed.trips[i].upload).accepted());
          }
        });
      }
      for (std::thread& t : producers) t.join();
      service.advance_time(end);  // drains, then closes periods

      EXPECT_EQ(service.trips_processed(), bed.trips.size());
      const auto got = service.backend().fusion().all();
      ASSERT_EQ(got.size(), expected.size())
          << workers << " workers, metrics " << metrics_on;
      for (const auto& [key, fused] : expected) {
        const auto q = service.backend().fusion().query(key);
        ASSERT_TRUE(q.has_value());
        EXPECT_EQ(q->mean_kmh, fused.mean_kmh);
        EXPECT_EQ(q->variance, fused.variance);
        EXPECT_EQ(q->updated_at, fused.updated_at);
        EXPECT_EQ(q->observation_count, fused.observation_count);
      }
    }
  }
}

TEST(IngestDeterminism, MetricsOffRegistryStaysEmpty) {
  const Testbed& bed = testbed();
  ServerConfig cfg;
  cfg.obs.enabled = false;
  IngestService service(bed.world.city(), bed.database, cfg,
                        manual_config(Backpressure::kReject, 64));
  service.process_trip(bed.trips[0].upload);
  service.drain();
  const MetricsSnapshot ms = service.metrics().snapshot();
  EXPECT_TRUE(ms.counters.empty());
  EXPECT_TRUE(ms.gauges.empty());
  EXPECT_TRUE(ms.histograms.empty());
}

// ------------------------------------------------------- metrics registry

TEST(MetricsRegistry, MergeIsDeterministicAcrossShardings) {
  // The same 1000 observations split across 1, 2, 5 per-thread registries
  // and merged in order must snapshot identically.
  const auto feed = [](MetricsRegistry& reg, int begin, int end) {
    Counter& c = reg.counter("work.items");
    BucketHistogram& h = reg.histogram("work.latency_s");
    Gauge& g = reg.gauge("work.depth");
    for (int i = begin; i < end; ++i) {
      c.inc();
      h.record(1e-6 * static_cast<double>(1 + (i * 7919) % 100000));
      g.set(static_cast<double>(end));
    }
  };

  std::vector<MetricsSnapshot> snaps;
  for (const int shards : {1, 2, 5}) {
    std::vector<MetricsRegistry> parts(static_cast<std::size_t>(shards));
    const int per = 1000 / shards;
    for (int s = 0; s < shards; ++s) {
      feed(parts[static_cast<std::size_t>(s)], s * per, (s + 1) * per);
    }
    // Gauges are last-writer-wins: make every shard agree so the merge
    // order cannot matter for them either.
    for (auto& p : parts) p.gauge("work.depth").set(1000.0);
    MetricsRegistry merged;
    for (const auto& p : parts) merged.merge(p);
    snaps.push_back(merged.snapshot());
  }
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    // Counters, gauges, bucket counts and totals merge exactly; only the
    // histogram's running sum is a float accumulation, which merges to
    // within rounding (documented in obs/metrics.h).
    EXPECT_EQ(snaps[i].counters, snaps[0].counters);
    EXPECT_EQ(snaps[i].gauges, snaps[0].gauges);
    ASSERT_EQ(snaps[i].histograms.size(), snaps[0].histograms.size());
    const auto& a = snaps[0].histograms.at("work.latency_s");
    const auto& b = snaps[i].histograms.at("work.latency_s");
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.percentile(0.5), b.percentile(0.5));
    EXPECT_EQ(a.percentile(0.99), b.percentile(0.99));
    EXPECT_NEAR(a.sum, b.sum, 1e-9 * a.sum);
  }
}

TEST(MetricsRegistry, ConcurrentRecordingCountsEverything) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  BucketHistogram& h = reg.histogram("lat_s");
  std::vector<std::thread> pool;
  constexpr int kThreads = 8, kPer = 5000;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        c.inc();
        h.record(1e-5);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPer));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, static_cast<std::uint64_t>(kThreads * kPer));
  EXPECT_NEAR(snap.mean(), 1e-5, 1e-12);
}

TEST(BucketHistogramSnapshot, PercentilesInterpolateAndClamp) {
  BucketHistogram h({1.0, 2.0, 5.0});
  for (int i = 0; i < 50; ++i) h.record(0.5);   // first bucket
  for (int i = 0; i < 50; ++i) h.record(1.5);   // second bucket
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total, 100u);
  EXPECT_LE(snap.percentile(0.25), 1.0);
  EXPECT_GT(snap.percentile(0.75), 1.0);
  EXPECT_LE(snap.percentile(0.75), 2.0);
  h.record(100.0);  // overflow clamps to the last finite bound
  EXPECT_EQ(h.snapshot().percentile(1.0), 5.0);
  EXPECT_THROW(BucketHistogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(BucketHistogram({}), std::invalid_argument);
}

// ---------------------------------------------------------- sharded ingest

const std::vector<TripUpload>& nonempty_uploads() {
  // Admission (rightly) rejects sample-less uploads; the sharded identity
  // sweeps run with admission on, so feed only trips the clean pipeline
  // accepts — identity stays exact.
  static const std::vector<TripUpload> uploads = [] {
    std::vector<TripUpload> out;
    for (const AnnotatedTrip& trip : testbed().trips) {
      if (!trip.upload.samples.empty()) out.push_back(trip.upload);
    }
    return out;
  }();
  return uploads;
}

// Canonical byte rendering of a snapshot: segments in key order, every
// float as %.17g, so two equal strings mean bit-identical fused maps.
// (Striped fusion hands segments out in hash-map order, which tracks
// insertion order — canonicalise before comparing bytes.)
std::string map_bytes(const TrafficMap& map) {
  std::vector<MapSegment> segments = map.segments();
  std::sort(segments.begin(), segments.end(),
            [](const MapSegment& a, const MapSegment& b) {
              return a.key.from != b.key.from ? a.key.from < b.key.from
                                              : a.key.to < b.key.to;
            });
  std::string out;
  char buf[160];
  for (const MapSegment& s : segments) {
    std::snprintf(buf, sizeof buf, "%d>%d %.17g %.17g %d %d;",
                  static_cast<int>(s.key.from), static_cast<int>(s.key.to),
                  s.speed_kmh, s.updated_at, s.observation_count,
                  static_cast<int>(s.level));
    out += buf;
  }
  return out;
}

TEST(ShardedIngestConfigValidation, RejectsNonsense) {
  const Testbed& bed = testbed();
  ShardedIngestConfig zero_shards;
  zero_shards.shards = 0;
  EXPECT_THROW(
      ShardedIngestService(bed.world.city(), bed.database, {}, zero_shards),
      std::invalid_argument);
  ShardedIngestConfig zero_ring;
  zero_ring.ring_capacity = 0;
  EXPECT_THROW(
      ShardedIngestService(bed.world.city(), bed.database, {}, zero_ring),
      std::invalid_argument);
  ShardedIngestConfig zero_lanes;
  zero_lanes.max_producer_lanes = 0;
  EXPECT_THROW(
      ShardedIngestService(bed.world.city(), bed.database, {}, zero_lanes),
      std::invalid_argument);
  ShardedIngestConfig bad_stripes;
  bad_stripes.concurrency.fusion_stripes = 0;
  EXPECT_THROW(
      ShardedIngestService(bed.world.city(), bed.database, {}, bad_stripes),
      std::invalid_argument);
}

TEST(ShardedIngest, PartitionIsStableAndShutdownRejectsLateUploads) {
  const Testbed& bed = testbed();
  const auto& uploads = nonempty_uploads();
  ASSERT_FALSE(uploads.empty());
  ShardedIngestService service(bed.world.city(), bed.database, {}, {});

  // The participant hash is a pure function: same id, same shard, always.
  for (const std::int32_t id : {0, 1, 7, -3, 4096, 1 << 20}) {
    const std::size_t shard = service.shard_of(id);
    EXPECT_LT(shard, service.shard_count());
    EXPECT_EQ(shard, service.shard_of(id));
  }

  for (const TripUpload& upload : uploads) {
    EXPECT_TRUE(service.process_trip(upload).accepted());
  }
  service.drain();
  EXPECT_EQ(service.queue_depth(), 0u);
  EXPECT_EQ(service.trips_processed(), uploads.size());
  const MetricsSnapshot sm = service.shard_metrics();
  EXPECT_EQ(sm.counters.at("ingest.shard.enqueued"), uploads.size());
  EXPECT_EQ(sm.counters.at("ingest.shard.processed"), uploads.size());
  EXPECT_EQ(sm.counters.at("ingest.shard.rejected_ring_full"), 0u);
  EXPECT_EQ(sm.counters.at("ingest.shard.worker_errors"), 0u);

  service.shutdown();
  EXPECT_TRUE(service.closed());
  const TripReport late = service.process_trip(uploads[0]);
  EXPECT_EQ(late.outcome, IngestOutcome::kRejected);
  EXPECT_EQ(late.reject_reason, RejectReason::kShutdown);
  EXPECT_EQ(
      service.shard_metrics().counters.at("ingest.shard.rejected_shutdown"),
      1u);
  service.shutdown();  // idempotent
  EXPECT_EQ(service.trips_processed(), uploads.size());
}

TEST(ShardedIngest, ShutdownUnderProducerLoadLosesNoAcceptedUpload) {
  const Testbed& bed = testbed();
  const auto& uploads = nonempty_uploads();
  for (int round = 0; round < 3; ++round) {
    ShardedIngestConfig svc;
    svc.shards = 4;
    svc.ring_capacity = 4;
    svc.backpressure = ShardedIngestConfig::Backpressure::kReject;
    auto service = std::make_unique<ShardedIngestService>(
        bed.world.city(), bed.database, ServerConfig{}, svc);
    std::atomic<std::size_t> accepted{0}, rejected{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = static_cast<std::size_t>(p); i < uploads.size();
             i += 4) {
          if (service->process_trip(uploads[i]).accepted()) {
            ++accepted;
          } else {
            ++rejected;
          }
        }
      });
    }
    // Tear the service down while producers are still hammering it; every
    // upload that was told kQueued must still reach the pipeline.
    service->shutdown();
    for (std::thread& t : producers) t.join();
    EXPECT_EQ(accepted.load() + rejected.load(), uploads.size());
    EXPECT_EQ(service->trips_processed(), accepted.load());
    const MetricsSnapshot sm = service->shard_metrics();
    EXPECT_EQ(sm.counters.at("ingest.shard.processed"), accepted.load());
    EXPECT_EQ(sm.counters.at("ingest.shard.rejected_ring_full") +
                  sm.counters.at("ingest.shard.rejected_shutdown"),
              rejected.load());
  }
}

// The tentpole property: the sharded path must fuse bit-identically to the
// serial TrafficServer at every shard count, with admission and metrics
// each on and off, under multi-producer feeding.
TEST(ShardedIngestDeterminism, BitIdenticalToSerialAcrossShardsAdmissionMetrics) {
  const Testbed& bed = testbed();
  const auto& uploads = nonempty_uploads();
  ASSERT_GT(uploads.size(), 30u);
  const SimTime end = at_clock(1, 0, 0);

  TrafficServer serial(bed.world.city(), bed.database);
  for (const TripUpload& upload : uploads) serial.process_trip(upload);
  serial.advance_time(end);
  const auto expected = serial.fusion().all();
  ASSERT_FALSE(expected.empty());

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    for (const bool metrics_on : {true, false}) {
      for (const bool admission_enabled : {false, true}) {
        ServerConfig cfg;
        cfg.obs.enabled = metrics_on;
        cfg.admission.enabled = admission_enabled;
        ShardedIngestConfig svc;
        svc.shards = shards;
        svc.ring_capacity = 8;  // tiny: exercises blocking backpressure
        // Small batches + few stripes on purpose: more interleavings.
        svc.concurrency.fusion_stripes = 4;
        svc.concurrency.batch_flush_threshold = 8;
        ShardedIngestService service(bed.world.city(), bed.database, cfg, svc);

        std::vector<std::thread> producers;
        for (int p = 0; p < 3; ++p) {
          producers.emplace_back([&, p] {
            for (std::size_t i = static_cast<std::size_t>(p);
                 i < uploads.size(); i += 3) {
              ASSERT_TRUE(service.process_trip(uploads[i]).accepted());
            }
          });
        }
        for (std::thread& t : producers) t.join();
        service.advance_time(end);

        const std::string label = std::to_string(shards) + " shards, metrics " +
                                  (metrics_on ? "on" : "off") + ", admission " +
                                  (admission_enabled ? "on" : "off");
        EXPECT_EQ(service.trips_processed(), uploads.size()) << label;
        const auto got = service.backend().fusion().all();
        ASSERT_EQ(got.size(), expected.size()) << label;
        for (const auto& [key, fused] : expected) {
          const auto q = service.backend().fusion().query(key);
          ASSERT_TRUE(q.has_value()) << label;
          EXPECT_EQ(q->mean_kmh, fused.mean_kmh) << label;
          EXPECT_EQ(q->variance, fused.variance) << label;
          EXPECT_EQ(q->updated_at, fused.updated_at) << label;
          EXPECT_EQ(q->observation_count, fused.observation_count) << label;
        }

        if (metrics_on) {
          const MetricsSnapshot sm = service.shard_metrics();
          EXPECT_EQ(sm.counters.at("ingest.shard.enqueued"), uploads.size())
              << label;
          EXPECT_EQ(sm.counters.at("ingest.shard.processed"), uploads.size())
              << label;
          if (admission_enabled) {
            EXPECT_EQ(sm.counters.at("ingest.admitted"), uploads.size())
                << label;
          }
        } else {
          EXPECT_TRUE(service.shard_metrics().counters.empty()) << label;
        }
      }
    }
  }
}

// Cross-shard merge determinism: interleave advance_time with trip bursts,
// reshuffle the within-burst feeding order with a seeded Rng, and vary the
// shard and producer counts per run — the final TrafficMap must be
// byte-identical, and so must the merged per-shard metrics JSON, across 20
// reshuffled runs. Skew re-anchoring is disabled (its per-participant
// offset state is processing-order dependent by design — admission.h);
// dedup and the shape bounds stay on.
TEST(ShardedIngestDeterminism, CrossShardMergeByteIdenticalAcrossReshuffledRuns) {
  const Testbed& bed = testbed();
  std::vector<TripUpload> uploads = nonempty_uploads();
  ASSERT_GT(uploads.size(), 16u);
  // Bursts are ordered by first-sample time so each interleaved
  // advance_time() respects the ingestor contract: every estimate of a
  // later burst is newer than the period being closed.
  std::stable_sort(uploads.begin(), uploads.end(),
                   [](const TripUpload& a, const TripUpload& b) {
                     return a.samples.front().time < b.samples.front().time;
                   });
  const std::size_t n = uploads.size();
  const std::array<std::size_t, 5> cut = {0, n / 4, n / 2, 3 * n / 4, n};
  const SimTime end = at_clock(1, 0, 0);

  ServerConfig cfg;
  cfg.admission.enabled = true;
  cfg.admission.max_clock_skew_s = 0.0;  // disable order-dependent skew state

  std::string reference_map, reference_metrics;
  for (int run = 0; run < 20; ++run) {
    ShardedIngestConfig svc;
    svc.shards = std::size_t{1} << (run % 4);  // 1, 2, 4, 8
    svc.ring_capacity = 16;
    svc.concurrency.fusion_stripes = 4;
    svc.concurrency.batch_flush_threshold = 8;
    ShardedIngestService service(bed.world.city(), bed.database, cfg, svc);

    Rng rng(static_cast<std::uint64_t>(900 + run));
    for (int burst = 0; burst < 4; ++burst) {
      std::vector<std::size_t> order;
      for (std::size_t i = cut[burst]; i < cut[burst + 1]; ++i) {
        order.push_back(i);
      }
      for (std::size_t i = order.size(); i > 1; --i) {  // seeded Fisher–Yates
        std::swap(order[i - 1],
                  order[static_cast<std::size_t>(
                      rng.uniform_int(0, static_cast<int>(i) - 1))]);
      }
      const int producers = 1 + run % 3;
      std::vector<std::thread> pool;
      for (int p = 0; p < producers; ++p) {
        pool.emplace_back([&, p] {
          for (std::size_t i = static_cast<std::size_t>(p); i < order.size();
               i += static_cast<std::size_t>(producers)) {
            ASSERT_TRUE(service.process_trip(uploads[order[i]]).accepted());
          }
        });
      }
      for (std::thread& t : pool) t.join();
      // Merge point: close everything strictly older than the next burst.
      const SimTime advance_to =
          burst + 1 < 4 ? uploads[cut[burst + 1]].samples.front().time : end;
      service.advance_time(advance_to);
    }

    const std::string got_map = map_bytes(service.snapshot(end, kDay));
    const std::string got_metrics = service.shard_metrics().to_json();
    if (run == 0) {
      ASSERT_FALSE(got_map.empty());
      reference_map = got_map;
      reference_metrics = got_metrics;
    } else {
      EXPECT_EQ(got_map, reference_map) << "run " << run;
      EXPECT_EQ(got_metrics, reference_metrics) << "run " << run;
    }
  }
}

}  // namespace
}  // namespace bussense
