// Unit tests for the city model: road network, routes, stops, generator
// invariants.
#include <gtest/gtest.h>

#include <set>

#include "citynet/city_generator.h"

namespace bussense {
namespace {

const City& test_city() {
  static const City city = generate_city();
  return city;
}

// ------------------------------------------------------------ road network

TEST(RoadNetwork, RejectsNonDenseIds) {
  std::vector<RoadLink> links;
  links.push_back(RoadLink{5, Polyline({{0, 0}, {1, 0}}), RoadClass::kLocal,
                           45.0, false});
  EXPECT_THROW(RoadNetwork(std::move(links)), std::invalid_argument);
}

TEST(RoadNetwork, TotalLengthSumsLinks) {
  std::vector<RoadLink> links;
  links.push_back(RoadLink{0, Polyline({{0, 0}, {100, 0}}), RoadClass::kLocal,
                           45.0, false});
  links.push_back(RoadLink{1, Polyline({{0, 0}, {0, 50}}), RoadClass::kLocal,
                           45.0, false});
  const RoadNetwork net(std::move(links));
  EXPECT_DOUBLE_EQ(net.total_length(), 150.0);
  EXPECT_EQ(net.size(), 2u);
}

// --------------------------------------------------------------- bus route

BusRoute simple_route() {
  Polyline path({{0.0, 0.0}, {1000.0, 0.0}});
  std::vector<RouteStop> stops{{0, 100.0}, {1, 500.0}, {2, 900.0}};
  std::vector<LinkSpan> spans{{0, 0.0, 600.0}, {1, 600.0, 1000.0}};
  return BusRoute(0, "T", 0, std::move(path), std::move(stops), std::move(spans));
}

TEST(BusRoute, ValidatesStopOrdering) {
  Polyline path({{0.0, 0.0}, {1000.0, 0.0}});
  std::vector<LinkSpan> spans{{0, 0.0, 1000.0}};
  EXPECT_THROW(BusRoute(0, "T", 0, path, {{0, 500.0}, {1, 100.0}}, spans),
               std::invalid_argument);
  EXPECT_THROW(BusRoute(0, "T", 0, path, {{0, 100.0}}, spans),
               std::invalid_argument);
  EXPECT_THROW(BusRoute(0, "T", 0, path, {{0, -5.0}, {1, 100.0}}, spans),
               std::invalid_argument);
}

TEST(BusRoute, ValidatesSpanTiling) {
  Polyline path({{0.0, 0.0}, {1000.0, 0.0}});
  std::vector<RouteStop> stops{{0, 100.0}, {1, 900.0}};
  EXPECT_THROW(BusRoute(0, "T", 0, path, stops, {{0, 0.0, 500.0}}),
               std::invalid_argument);
  EXPECT_THROW(
      BusRoute(0, "T", 0, path, stops, {{0, 0.0, 500.0}, {1, 600.0, 1000.0}}),
      std::invalid_argument);
  EXPECT_THROW(BusRoute(0, "T", 0, path, stops, {}), std::invalid_argument);
}

TEST(BusRoute, StopLookups) {
  const BusRoute r = simple_route();
  EXPECT_EQ(r.stop_index(1).value(), 1);
  EXPECT_FALSE(r.stop_index(99).has_value());
  EXPECT_DOUBLE_EQ(r.stop_arc(2), 900.0);
  EXPECT_DOUBLE_EQ(r.distance_between_stops(0, 2), 800.0);
  EXPECT_THROW(r.distance_between_stops(2, 0), std::invalid_argument);
}

TEST(BusRoute, LinkAt) {
  const BusRoute r = simple_route();
  EXPECT_EQ(r.link_at(0.0), 0);
  EXPECT_EQ(r.link_at(599.0), 0);
  EXPECT_EQ(r.link_at(601.0), 1);
  EXPECT_EQ(r.link_at(2000.0), 1);  // clamped
}

TEST(BusRoute, LinkLengthsBetweenSplitsAtBoundary) {
  const BusRoute r = simple_route();
  const auto parts = r.link_lengths_between(500.0, 700.0);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].first, 0);
  EXPECT_DOUBLE_EQ(parts[0].second, 100.0);
  EXPECT_EQ(parts[1].first, 1);
  EXPECT_DOUBLE_EQ(parts[1].second, 100.0);
}

TEST(BusRoute, LinkLengthsBetweenWholeRoute) {
  const BusRoute r = simple_route();
  const auto parts = r.link_lengths_between(0.0, 1000.0);
  double total = 0.0;
  for (const auto& [link, len] : parts) total += len;
  EXPECT_DOUBLE_EQ(total, 1000.0);
}

TEST(BusRoute, LinkLengthsRejectsReversedArcs) {
  const BusRoute r = simple_route();
  EXPECT_THROW(r.link_lengths_between(700.0, 500.0), std::invalid_argument);
}

// --------------------------------------------------------------- generator

TEST(CityGenerator, ProducesExpectedScale) {
  const City& city = test_city();
  EXPECT_EQ(city.routes().size(), 16u);  // 8 names x 2 directions
  EXPECT_GT(city.stops().size(), 100u);  // paper: >100 stops in the region
  EXPECT_GT(city.network().size(), 200u);
}

TEST(CityGenerator, CoverageAboveHalf) {
  // Paper Figure 9: the 8 routes cover >50% of the roads in the region.
  EXPECT_GT(test_city().coverage_ratio(), 0.5);
}

TEST(CityGenerator, EveryRouteHasBothDirections) {
  const City& city = test_city();
  for (const std::string name :
       {"79", "99", "241", "243", "252", "257", "182", "31"}) {
    const BusRoute* fwd = city.route_by_name(name, 0);
    const BusRoute* rev = city.route_by_name(name, 1);
    ASSERT_NE(fwd, nullptr) << name;
    ASSERT_NE(rev, nullptr) << name;
    EXPECT_NEAR(fwd->length(), rev->length(), 1e-6);
    EXPECT_EQ(fwd->stop_count(), rev->stop_count());
  }
  EXPECT_EQ(city.route_by_name("79", 2), nullptr);
  EXPECT_EQ(city.route_by_name("nope", 0), nullptr);
}

TEST(CityGenerator, StopSpacingInPaperBand) {
  const City& city = test_city();
  for (const BusRoute& route : city.routes()) {
    for (std::size_t i = 1; i < route.stops().size(); ++i) {
      const double gap = route.stops()[i].arc_pos - route.stops()[i - 1].arc_pos;
      EXPECT_GT(gap, 250.0);
      EXPECT_LT(gap, 1000.0);
    }
  }
}

TEST(CityGenerator, TwinsAreSymmetricAndClose) {
  const City& city = test_city();
  int twins = 0;
  for (const BusStop& s : city.stops()) {
    if (!s.opposite) continue;
    ++twins;
    const BusStop& other = city.stop(*s.opposite);
    ASSERT_TRUE(other.opposite.has_value());
    EXPECT_EQ(*other.opposite, s.id);
    EXPECT_LT(distance(s.position, other.position), 30.0);
    // Twins serve opposite headings.
    EXPECT_LT(dot(s.heading, other.heading), 0.0);
  }
  EXPECT_GT(twins, 100);
}

TEST(CityGenerator, EffectiveStopIsCanonicalAndIdempotent) {
  const City& city = test_city();
  for (const BusStop& s : city.stops()) {
    const StopId eff = city.effective_stop(s.id);
    EXPECT_EQ(city.effective_stop(eff), eff);
    if (s.opposite) {
      EXPECT_EQ(city.effective_stop(*s.opposite), eff);
      EXPECT_EQ(eff, std::min(s.id, *s.opposite));
    }
  }
}

TEST(CityGenerator, RouteStopsLieOnPath) {
  const City& city = test_city();
  for (const BusRoute& route : city.routes()) {
    for (const RouteStop& rs : route.stops()) {
      const Point on_path = route.path().point_at(rs.arc_pos);
      const Point stop_pos = city.stop(rs.stop).position;
      // Stop is kerb-side: a few metres off the centreline, but possibly
      // merged with a shared stop up to the merge radius away.
      EXPECT_LT(distance(on_path, stop_pos),
                CityConfig{}.stop_merge_radius_m + 20.0);
    }
  }
}

TEST(CityGenerator, LinkSpansReferenceValidLinks) {
  const City& city = test_city();
  for (const BusRoute& route : city.routes()) {
    for (const LinkSpan& span : route.link_spans()) {
      ASSERT_GE(span.link, 0);
      ASSERT_LT(static_cast<std::size_t>(span.link), city.network().size());
      const double span_len = span.arc_end - span.arc_begin;
      EXPECT_NEAR(span_len, city.network().link(span.link).length(), 1e-6);
    }
  }
}

TEST(CityGenerator, CommuterCorridorExists) {
  const City& city = test_city();
  int commuter_links = 0;
  for (const RoadLink& link : city.network().links()) {
    if (link.commuter_corridor) ++commuter_links;
  }
  EXPECT_GT(commuter_links, 4);
}

TEST(CityGenerator, MultiRouteCoverage) {
  // Paper Section III-A: a large share of covered roads carries >= 2 routes.
  const City& city = test_city();
  const auto one = city.links_covered_by_at_least(1);
  const auto two = city.links_covered_by_at_least(2);
  EXPECT_GT(one.size(), 0u);
  EXPECT_GT(two.size(), 5u);
  EXPECT_LE(two.size(), one.size());
}

TEST(CityGenerator, DeterministicGivenSeed) {
  CityConfig cfg;
  const City a = generate_city(cfg);
  const City b = generate_city(cfg);
  ASSERT_EQ(a.stops().size(), b.stops().size());
  for (std::size_t i = 0; i < a.stops().size(); ++i) {
    EXPECT_EQ(a.stops()[i].position, b.stops()[i].position);
  }
}

TEST(CityGenerator, HonoursRouteSubset) {
  CityConfig cfg;
  cfg.route_names = {"79", "243"};
  const City city = generate_city(cfg);
  EXPECT_EQ(city.routes().size(), 4u);
  EXPECT_NE(city.route_by_name("79", 0), nullptr);
  EXPECT_EQ(city.route_by_name("99", 0), nullptr);
}

TEST(CityGenerator, RejectsUnknownRouteName) {
  CityConfig cfg;
  cfg.route_names = {"not-a-route"};
  EXPECT_THROW(generate_city(cfg), std::invalid_argument);
}

TEST(CityGenerator, RejectsTinyRegion) {
  CityConfig cfg;
  cfg.width_m = 400.0;
  cfg.height_m = 400.0;
  EXPECT_THROW(generate_city(cfg), std::invalid_argument);
}

TEST(City, ReverseRouteServesTwinStops) {
  const City& city = test_city();
  const BusRoute* fwd = city.route_by_name("243", 0);
  const BusRoute* rev = city.route_by_name("243", 1);
  ASSERT_NE(fwd, nullptr);
  ASSERT_NE(rev, nullptr);
  // Effective stop sequences must be exact mirrors.
  std::vector<StopId> f, r;
  for (const RouteStop& rs : fwd->stops()) f.push_back(city.effective_stop(rs.stop));
  for (const RouteStop& rs : rev->stops()) r.push_back(city.effective_stop(rs.stop));
  std::reverse(r.begin(), r.end());
  EXPECT_EQ(f, r);
}

}  // namespace
}  // namespace bussense
