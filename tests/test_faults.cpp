// Fault-injection layer and admission control.
//
// Properties pinned here:
//   * every FaultPlan injector is bit-reproducible from (seed, trip_index)
//     and independent of the rest of the batch;
//   * a zeroed plan is the identity;
//   * on a clean workload the pipeline is bit-identical with admission
//     checks on or off, and across all four TrafficIngestor front ends
//     (the sharded service runs admission partition-locally — dedup and
//     skew state live inside the participant's shard);
//   * the admission stage rejects replays/malformed/disordered uploads
//     with typed reasons instead of throwing, re-anchors skewed clocks,
//     and accounts for every verdict in ingest.* counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/concurrent_server.h"
#include "core/ingest_service.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "faults/fault_injection.h"
#include "sensing/trip_signature.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

struct Testbed {
  World world;
  StopDatabase database;
  std::vector<TripUpload> uploads;

  Testbed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
    Rng rng(77);
    for (AnnotatedTrip& trip : world.simulate_day(0, 1.2, rng).trips) {
      // Admission (rightly) rejects sample-less uploads; keep the workload
      // to trips the clean pipeline accepts so identity tests are exact.
      if (!trip.upload.samples.empty()) {
        uploads.push_back(std::move(trip.upload));
      }
    }
  }
};

const Testbed& testbed() {
  static const Testbed bed;
  return bed;
}

ServerConfig admission_on() {
  ServerConfig config;
  config.admission.enabled = true;
  return config;
}

AnnotatedTrip single_trip(std::uint64_t seed, SimTime depart = 0.0) {
  const Testbed& bed = testbed();
  Rng rng(seed);
  const BusRoute& route = *bed.world.city().route_by_name("243", 0);
  return bed.world.simulate_single_trip(
      route, 2, 14, depart > 0.0 ? depart : at_clock(0, 9, 0), rng);
}

// ------------------------------------------------------------- plan basics

TEST(FaultPlan, ValidatesKnobs) {
  FaultPlan bad;
  bad.duplicate_prob = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = FaultPlan{};
  bad.truncate_min_keep = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = FaultPlan{};
  bad.jitter_sigma_s = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = FaultPlan{};
  bad.clock_skew_max_s = -10.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(FaultPlan{}.validate());
  EXPECT_NO_THROW(FaultPlan::standard(1, 0.25).validate());
  EXPECT_THROW(FaultPlan::standard(1, -0.1), std::invalid_argument);
}

TEST(FaultPlan, ZeroPlanIsIdentity) {
  const Testbed& bed = testbed();
  const FaultPlan plan;  // default: nothing enabled
  ASSERT_TRUE(plan.is_identity());
  FaultStats stats;
  const auto out = inject_faults(bed.uploads, plan, &stats);
  EXPECT_EQ(out, bed.uploads);
  EXPECT_EQ(stats.trips_in, bed.uploads.size());
  EXPECT_EQ(stats.trips_out, bed.uploads.size());
  EXPECT_EQ(stats.corrupted_trips, 0u);
  EXPECT_EQ(stats.duplicated + stats.skewed + stats.jittered +
                stats.truncated + stats.shuffled + stats.cells_dropped +
                stats.cells_injected + stats.batch_reordered,
            0u);
}

TEST(FaultPlan, BitReproducibleFromSeed) {
  const Testbed& bed = testbed();
  const FaultPlan plan = FaultPlan::standard(12345, 0.35);
  FaultStats s1, s2;
  const auto a = inject_faults(bed.uploads, plan, &s1);
  const auto b = inject_faults(bed.uploads, plan, &s2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(s1.corrupted_trips, s2.corrupted_trips);
  EXPECT_EQ(s1.cells_dropped, s2.cells_dropped);
  EXPECT_EQ(s1.cells_injected, s2.cells_injected);
  EXPECT_GT(s1.corrupted_trips, 0u);
  EXPECT_GT(s1.trips_out, s1.trips_in);  // some replays at 35%
}

TEST(FaultPlan, DifferentSeedsProduceDifferentCorruption) {
  const Testbed& bed = testbed();
  const auto a = inject_faults(bed.uploads, FaultPlan::standard(1, 0.5));
  const auto b = inject_faults(bed.uploads, FaultPlan::standard(2, 0.5));
  EXPECT_NE(a, b);
}

TEST(FaultPlan, PerTripCorruptionIndependentOfBatch) {
  const Testbed& bed = testbed();
  FaultPlan plan = FaultPlan::standard(777, 0.4);
  plan.reorder_batch = false;  // the one (documented) batch-level injector
  const auto batch = inject_faults(bed.uploads, plan);
  ASSERT_GE(batch.size(), bed.uploads.size());
  for (std::size_t i = 0; i < bed.uploads.size(); ++i) {
    // Corrupting trip i alone, at its batch stream index, must reproduce
    // exactly what the full-batch pass did to it.
    const auto solo =
        inject_faults({bed.uploads[i]}, plan, nullptr, /*first_index=*/i);
    ASSERT_FALSE(solo.empty());
    EXPECT_EQ(batch[i], solo[0]) << "trip " << i;
  }
}

TEST(FaultPlan, ClockSkewIsConstantPerParticipant) {
  const Testbed& bed = testbed();
  FaultPlan plan;
  plan.seed = 9;
  plan.clock_skew_prob = 1.0;
  plan.clock_skew_max_s = 1800.0;
  const auto out = inject_faults(bed.uploads, plan);
  ASSERT_EQ(out.size(), bed.uploads.size());
  std::map<std::int32_t, double> offset_of;
  std::size_t shifted = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const TripUpload& before = bed.uploads[i];
    const TripUpload& after = out[i];
    ASSERT_EQ(after.samples.size(), before.samples.size());
    if (before.samples.empty()) continue;
    const double offset = after.samples[0].time - before.samples[0].time;
    EXPECT_LE(std::abs(offset), 1800.0);
    if (offset != 0.0) ++shifted;
    // Same constant within the trip... (NEAR: fl(t + offset) − t rounds in
    // the last ulps depending on t's magnitude, the offset itself is exact)
    for (std::size_t k = 0; k < before.samples.size(); ++k) {
      EXPECT_NEAR(after.samples[k].time - before.samples[k].time, offset,
                  1e-6);
    }
    // ...and the same constant for every trip of the participant.
    const auto [it, inserted] =
        offset_of.emplace(before.participant_id, offset);
    if (!inserted) {
      EXPECT_NEAR(it->second, offset, 1e-6);
    }
  }
  EXPECT_GT(shifted, out.size() / 2);  // prob 1: everyone's clock is off
}

TEST(FaultPlan, StatsAccountingAndMetricsExport) {
  const Testbed& bed = testbed();
  FaultStats stats;
  const auto out =
      inject_faults(bed.uploads, FaultPlan::standard(31, 0.3), &stats);
  EXPECT_EQ(stats.trips_in, bed.uploads.size());
  EXPECT_EQ(stats.trips_out, out.size());
  EXPECT_EQ(stats.trips_out, stats.trips_in + stats.duplicated);
  EXPECT_LE(stats.corrupted_trips, stats.trips_in);
  EXPECT_GT(stats.corrupted_trips, 0u);
  EXPECT_EQ(stats.batch_reordered, 1u);

  MetricsRegistry registry;
  stats.register_into(registry);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("faults.injected.duplicate"), stats.duplicated);
  EXPECT_EQ(snap.counters.at("faults.injected.clock_skew"), stats.skewed);
  EXPECT_EQ(snap.counters.at("faults.injected.truncate"), stats.truncated);
  EXPECT_EQ(snap.counters.at("faults.injected.shuffle"), stats.shuffled);
  EXPECT_EQ(snap.counters.at("faults.injected.cells_dropped"),
            stats.cells_dropped);
  EXPECT_EQ(snap.counters.at("faults.injected.cells_injected"),
            stats.cells_injected);
  EXPECT_EQ(snap.counters.at("faults.injected.corrupted_trips"),
            stats.corrupted_trips);
}

// --------------------------------------------------------------- admission

TEST(Admission, RejectsReplayedUploads) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database, admission_on());
  const TripUpload& upload = bed.uploads.front();
  EXPECT_EQ(server.process_trip(upload).outcome, IngestOutcome::kProcessed);
  const TripReport replay = server.process_trip(upload);
  EXPECT_EQ(replay.outcome, IngestOutcome::kRejected);
  EXPECT_EQ(replay.reject_reason, RejectReason::kDuplicate);
  EXPECT_EQ(server.trips_processed(), 1u);
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("ingest.admitted"), 1u);
  EXPECT_EQ(snap.counters.at("ingest.rejected.duplicate"), 1u);
}

TEST(Admission, DedupWindowIsBoundedLru) {
  const Testbed& bed = testbed();
  ASSERT_GE(bed.uploads.size(), 3u);
  ServerConfig config = admission_on();
  config.admission.dedup_capacity = 2;
  TrafficServer server(bed.world.city(), bed.database, config);
  server.process_trip(bed.uploads[0]);
  server.process_trip(bed.uploads[1]);
  server.process_trip(bed.uploads[2]);  // evicts uploads[0]'s signature
  // Outside the window the replay is no longer recognised — the LRU trades
  // a bounded replay horizon for bounded memory.
  EXPECT_EQ(server.process_trip(bed.uploads[0]).outcome,
            IngestOutcome::kProcessed);
  // Inside the window it still is.
  EXPECT_EQ(server.process_trip(bed.uploads[2]).reject_reason,
            RejectReason::kDuplicate);
}

TEST(Admission, RejectsMalformedUploads) {
  const Testbed& bed = testbed();
  ServerConfig config = admission_on();
  config.admission.max_samples = 32;
  TrafficServer server(bed.world.city(), bed.database, config);

  // Empty upload: no usable signal.
  EXPECT_EQ(server.process_trip(TripUpload{}).reject_reason,
            RejectReason::kMalformed);

  // Sample-count bound (memory-exhaustion vector).
  TripUpload oversized;
  for (int i = 0; i < 33; ++i) {
    oversized.samples.push_back(
        CellularSample{static_cast<double>(i), Fingerprint{{1, 2}}});
  }
  EXPECT_EQ(server.process_trip(oversized).reject_reason,
            RejectReason::kMalformed);

  // Fingerprint far beyond what a scan can see.
  TripUpload fat;
  fat.samples.push_back(CellularSample{0.0, {}});
  fat.samples[0].fingerprint.cells.assign(65, 7);
  EXPECT_EQ(server.process_trip(fat).reject_reason, RejectReason::kMalformed);

  // Non-finite timestamps.
  TripUpload nan_time;
  nan_time.samples.push_back(CellularSample{
      std::numeric_limits<double>::quiet_NaN(), Fingerprint{{1}}});
  EXPECT_EQ(server.process_trip(nan_time).reject_reason,
            RejectReason::kMalformed);

  // Implausible duration.
  TripUpload era;
  era.samples.push_back(CellularSample{0.0, Fingerprint{{1}}});
  era.samples.push_back(CellularSample{7.0 * 3600.0, Fingerprint{{1}}});
  EXPECT_EQ(server.process_trip(era).reject_reason, RejectReason::kMalformed);

  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("ingest.rejected.malformed"), 5u);
  EXPECT_EQ(server.trips_processed(), 0u);
}

TEST(Admission, RejectsDisorderBeyondToleranceOnly) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database, admission_on());

  TripUpload wild;
  wild.samples.push_back(CellularSample{1000.0, Fingerprint{{1}}});
  wild.samples.push_back(CellularSample{100.0, Fingerprint{{1}}});
  EXPECT_EQ(server.process_trip(wild).reject_reason,
            RejectReason::kNonMonotone);

  // A small inversion is lossy-link reordering — tolerated (the matcher
  // sorts), not rejected.
  TripUpload mild = single_trip(21).upload;
  ASSERT_GE(mild.samples.size(), 2u);
  std::swap(mild.samples[0].time, mild.samples[1].time);
  EXPECT_EQ(server.process_trip(mild).outcome, IngestOutcome::kProcessed);
}

TEST(Admission, ReanchorsSkewedParticipantClocks) {
  const Testbed& bed = testbed();
  TrafficServer reference(bed.world.city(), bed.database);
  TrafficServer server(bed.world.city(), bed.database, admission_on());

  AnnotatedTrip trip = single_trip(33);
  trip.upload.participant_id = 7001;
  const TripReport clean = reference.process_trip(trip.upload);
  ASSERT_GT(clean.estimates.size(), 3u);
  const SimTime end = trip.upload.samples.back().time;

  // The fusion watermark is what skew is judged against.
  server.advance_time(end + 60.0);

  // Same trip, phone clock 2 h fast. Without correction every estimate
  // lands 2 h in the future; with it, BTTs (time deltas) are untouched and
  // the timeline returns to the plausible window around the watermark.
  TripUpload skewed = trip.upload;
  for (CellularSample& s : skewed.samples) s.time += 7200.0;
  const TripReport report = server.process_trip(skewed);
  EXPECT_EQ(report.outcome, IngestOutcome::kProcessed);
  ASSERT_EQ(report.estimates.size(), clean.estimates.size());
  for (std::size_t i = 0; i < clean.estimates.size(); ++i) {
    // The correction is a constant shift, so BTT deltas — and the speeds
    // derived from them — survive (up to shift-arithmetic rounding).
    EXPECT_NEAR(report.estimates[i].att_speed_kmh,
                clean.estimates[i].att_speed_kmh, 1e-6);
    EXPECT_EQ(report.estimates[i].segment, clean.estimates[i].segment);
    // Re-anchored to end at the watermark, not 2 h out.
    EXPECT_LT(report.estimates[i].time, end + 120.0);
  }

  // The offset is remembered per participant: a second trip from the same
  // phone is corrected by the same amount without fresh evidence.
  AnnotatedTrip second = single_trip(34, at_clock(0, 9, 30));
  second.upload.participant_id = 7001;
  TripUpload second_skewed = second.upload;
  for (CellularSample& s : second_skewed.samples) s.time += 7200.0;
  const TripReport second_report = server.process_trip(second_skewed);
  EXPECT_EQ(second_report.outcome, IngestOutcome::kProcessed);
  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("ingest.skew_corrected"), 2u);

  TrafficServer second_reference(bed.world.city(), bed.database);
  const TripReport second_clean = second_reference.process_trip(second.upload);
  ASSERT_EQ(second_report.estimates.size(), second_clean.estimates.size());
  for (std::size_t i = 0; i < second_clean.estimates.size(); ++i) {
    EXPECT_NEAR(second_report.estimates[i].att_speed_kmh,
                second_clean.estimates[i].att_speed_kmh, 1e-6);
  }
}

// ------------------------------------------------- clean-workload identity

template <typename FusionLike>
void expect_fused_equal(
    const std::vector<std::pair<SegmentKey, FusedSpeed>>& expected,
    const FusionLike& fusion, const std::string& label) {
  ASSERT_EQ(fusion.all().size(), expected.size()) << label;
  for (const auto& [key, fused] : expected) {
    const auto got = fusion.query(key);
    ASSERT_TRUE(got.has_value()) << label;
    EXPECT_EQ(got->mean_kmh, fused.mean_kmh) << label;
    EXPECT_EQ(got->variance, fused.variance) << label;
    EXPECT_EQ(got->updated_at, fused.updated_at) << label;
    EXPECT_EQ(got->observation_count, fused.observation_count) << label;
  }
}

// The acceptance property: admission on + zero FaultPlan must be
// bit-identical to the trusting pipeline, on every front end.
TEST(AdmissionIdentity, CleanWorkloadBitIdenticalAcrossFrontEnds) {
  const Testbed& bed = testbed();
  const SimTime end = at_clock(1, 0, 0);
  const auto clean = inject_faults(bed.uploads, FaultPlan{});  // identity

  TrafficServer baseline(bed.world.city(), bed.database);  // admission off
  for (const TripUpload& upload : clean) baseline.process_trip(upload);
  baseline.advance_time(end);
  const auto expected = baseline.fusion().all();
  ASSERT_FALSE(expected.empty());

  // Serial server, admission on.
  TrafficServer serial(bed.world.city(), bed.database, admission_on());
  for (const TripUpload& upload : clean) {
    ASSERT_TRUE(serial.process_trip(upload).accepted());
  }
  serial.advance_time(end);
  expect_fused_equal(expected, serial.fusion(), "serial");
  EXPECT_EQ(serial.metrics().snapshot().counters.at("ingest.admitted"),
            clean.size());

  // Concurrent server, admission on, 4 threads.
  ConcurrentTrafficServer concurrent(bed.world.city(), bed.database,
                                     admission_on());
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < clean.size();
           i += 4) {
        concurrent.process_trip(clean[i]);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  concurrent.advance_time(end);
  expect_fused_equal(expected, concurrent.fusion(), "concurrent");
  EXPECT_EQ(concurrent.trips_processed(), clean.size());

  // Async ingest service, admission on, 4 workers.
  IngestService service(bed.world.city(), bed.database, admission_on());
  for (const TripUpload& upload : clean) {
    ASSERT_TRUE(service.process_trip(upload).accepted());
  }
  service.advance_time(end);
  expect_fused_equal(expected, service.backend().fusion(), "service");
  EXPECT_EQ(service.trips_processed(), clean.size());

  // Sharded ingest service, admission on — but partition-local: each
  // shard's dedup LRU and skew table only ever sees its own participants.
  // 4 shards, 3 producer threads.
  ShardedIngestService sharded(bed.world.city(), bed.database, admission_on());
  std::vector<std::thread> feeders;
  for (int t = 0; t < 3; ++t) {
    feeders.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < clean.size();
           i += 3) {
        ASSERT_TRUE(sharded.process_trip(clean[i]).accepted());
      }
    });
  }
  for (std::thread& th : feeders) th.join();
  sharded.advance_time(end);
  expect_fused_equal(expected, sharded.backend().fusion(), "sharded");
  EXPECT_EQ(sharded.trips_processed(), clean.size());
  // Admission verdicts land in the shard registries; the deterministic
  // merge accounts for every upload exactly once across shards.
  EXPECT_EQ(sharded.shard_metrics().counters.at("ingest.admitted"),
            clean.size());
}

// Replays are byte-identical, so whichever copy wins admission yields the
// same analysis: under a duplicate-only plan the fused map must still be
// bit-identical to the clean baseline at any worker interleaving.
TEST(AdmissionIdentity, DuplicateOnlyPlanFusesToCleanBaseline) {
  const Testbed& bed = testbed();
  const SimTime end = at_clock(1, 0, 0);
  FaultPlan plan;
  plan.seed = 5;
  plan.duplicate_prob = 0.5;
  FaultStats stats;
  const auto corrupted = inject_faults(bed.uploads, plan, &stats);
  ASSERT_GT(stats.duplicated, 0u);

  TrafficServer baseline(bed.world.city(), bed.database);
  for (const TripUpload& upload : bed.uploads) baseline.process_trip(upload);
  baseline.advance_time(end);

  ConcurrentTrafficServer hardened(bed.world.city(), bed.database,
                                   admission_on());
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < corrupted.size();
           i += 4) {
        hardened.process_trip(corrupted[i]);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  hardened.advance_time(end);
  expect_fused_equal(baseline.fusion().all(), hardened.fusion(),
                     "dedup vs clean");

  const MetricsSnapshot snap = hardened.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("ingest.rejected.duplicate"), stats.duplicated);
  EXPECT_EQ(snap.counters.at("ingest.admitted"), bed.uploads.size());
}

// Every submitted upload is accounted for: admitted + Σ rejected == sent.
TEST(AdmissionAccounting, VerdictCountsCoverEverySubmission) {
  const Testbed& bed = testbed();
  const auto corrupted =
      inject_faults(bed.uploads, FaultPlan::standard(404, 0.2));

  ConcurrentTrafficServer server(bed.world.city(), bed.database,
                                 admission_on());
  std::uint64_t accepted_reports = 0, rejected_reports = 0;
  std::mutex count_mutex;
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      std::uint64_t acc = 0, rej = 0;
      for (std::size_t i = static_cast<std::size_t>(t); i < corrupted.size();
           i += 4) {
        if (server.process_trip(corrupted[i]).accepted()) {
          ++acc;
        } else {
          ++rej;
        }
      }
      const std::lock_guard<std::mutex> lock(count_mutex);
      accepted_reports += acc;
      rejected_reports += rej;
    });
  }
  for (std::thread& th : pool) th.join();
  server.advance_time(at_clock(1, 0, 0));

  EXPECT_EQ(accepted_reports + rejected_reports, corrupted.size());
  const MetricsSnapshot snap = server.metrics().snapshot();
  const std::uint64_t admitted = snap.counters.at("ingest.admitted");
  const std::uint64_t rejected =
      snap.counters.at("ingest.rejected.duplicate") +
      snap.counters.at("ingest.rejected.malformed") +
      snap.counters.at("ingest.rejected.non_monotone");
  EXPECT_EQ(admitted, accepted_reports);
  EXPECT_EQ(rejected, rejected_reports);
  EXPECT_EQ(admitted + rejected, corrupted.size());
  EXPECT_GT(rejected, 0u);  // 20% corruption must trip some check
  EXPECT_EQ(server.trips_processed(), admitted);
}

// --------------------------------------------------------- trip signatures

TEST(TripSignature, DistinguishesContentAndOrder) {
  const Testbed& bed = testbed();
  const TripUpload& a = bed.uploads[0];
  const TripUpload& b = bed.uploads[1];
  EXPECT_EQ(trip_signature(a), trip_signature(a));
  EXPECT_NE(trip_signature(a), trip_signature(b));

  TripUpload other_participant = a;
  other_participant.participant_id += 1;
  EXPECT_NE(trip_signature(a), trip_signature(other_participant));

  TripUpload perturbed = a;
  ASSERT_FALSE(perturbed.samples.empty());
  perturbed.samples[0].time += 1e-9;
  EXPECT_NE(trip_signature(a), trip_signature(perturbed));

  // Cell-boundary shifts must not alias ({1,2},{3} vs {1},{2,3}).
  TripUpload x, y;
  x.samples = {CellularSample{0.0, Fingerprint{{1, 2}}},
               CellularSample{0.0, Fingerprint{{3}}}};
  y.samples = {CellularSample{0.0, Fingerprint{{1}}},
               CellularSample{0.0, Fingerprint{{2, 3}}}};
  EXPECT_NE(trip_signature(x), trip_signature(y));
}

TEST(AdmissionConfigValidation, ThrowsOnNonsense) {
  const Testbed& bed = testbed();
  ServerConfig bad = admission_on();
  bad.admission.max_samples = 0;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, bad),
               std::invalid_argument);
  bad = admission_on();
  bad.admission.min_samples = 10;
  bad.admission.max_samples = 5;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, bad),
               std::invalid_argument);
  bad = admission_on();
  bad.admission.max_trip_duration_s = 0.0;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, bad),
               std::invalid_argument);
  bad = admission_on();
  bad.admission.max_clock_skew_s = -1.0;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace bussense
