// Unit tests for the common toolkit: geometry, statistics, time, tables, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/geo.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "common/table.h"

namespace bussense {
namespace {

// ---------------------------------------------------------------- geometry

TEST(Point, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ((a + b), (Point{4.0, 1.0}));
  EXPECT_EQ((a - b), (Point{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Point{2.0, 4.0}));
}

TEST(Point, NormAndDistance) {
  EXPECT_DOUBLE_EQ(norm(Point{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Point{0.0, 0.0}, Point{3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(dot(Point{1.0, 2.0}, Point{3.0, 4.0}), 11.0);
}

TEST(Point, Lerp) {
  const Point p = lerp(Point{0.0, 0.0}, Point{10.0, 20.0}, 0.25);
  EXPECT_DOUBLE_EQ(p.x, 2.5);
  EXPECT_DOUBLE_EQ(p.y, 5.0);
}

TEST(BoundingBox, ContainsAndDims) {
  const BoundingBox box{{0.0, 0.0}, {10.0, 5.0}};
  EXPECT_TRUE(box.contains(Point{5.0, 2.5}));
  EXPECT_TRUE(box.contains(Point{0.0, 0.0}));
  EXPECT_FALSE(box.contains(Point{11.0, 2.0}));
  EXPECT_FALSE(box.contains(Point{5.0, -0.1}));
  EXPECT_DOUBLE_EQ(box.width(), 10.0);
  EXPECT_DOUBLE_EQ(box.height(), 5.0);
}

TEST(Polyline, LengthOfStraightLine) {
  const Polyline line({{0.0, 0.0}, {100.0, 0.0}});
  EXPECT_DOUBLE_EQ(line.length(), 100.0);
}

TEST(Polyline, LengthOfLShape) {
  const Polyline line({{0.0, 0.0}, {100.0, 0.0}, {100.0, 50.0}});
  EXPECT_DOUBLE_EQ(line.length(), 150.0);
}

TEST(Polyline, CollapsesDuplicateVertices) {
  const Polyline line({{0.0, 0.0}, {0.0, 0.0}, {10.0, 0.0}, {10.0, 0.0}});
  EXPECT_EQ(line.vertices().size(), 2u);
  EXPECT_DOUBLE_EQ(line.length(), 10.0);
}

TEST(Polyline, RejectsDegenerate) {
  EXPECT_THROW(Polyline({}), std::invalid_argument);
  EXPECT_THROW(Polyline({{1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(Polyline({{1.0, 1.0}, {1.0, 1.0}}), std::invalid_argument);
}

TEST(Polyline, PointAtInterpolatesAndClamps) {
  const Polyline line({{0.0, 0.0}, {100.0, 0.0}, {100.0, 100.0}});
  EXPECT_EQ(line.point_at(0.0), (Point{0.0, 0.0}));
  EXPECT_EQ(line.point_at(50.0), (Point{50.0, 0.0}));
  EXPECT_EQ(line.point_at(150.0), (Point{100.0, 50.0}));
  EXPECT_EQ(line.point_at(-10.0), (Point{0.0, 0.0}));
  EXPECT_EQ(line.point_at(1e9), (Point{100.0, 100.0}));
}

TEST(Polyline, DirectionAtFollowsSegments) {
  const Polyline line({{0.0, 0.0}, {100.0, 0.0}, {100.0, 100.0}});
  EXPECT_NEAR(line.direction_at(50.0).x, 1.0, 1e-12);
  EXPECT_NEAR(line.direction_at(150.0).y, 1.0, 1e-12);
}

TEST(Polyline, ProjectOntoSegmentInterior) {
  const Polyline line({{0.0, 0.0}, {100.0, 0.0}});
  const auto proj = line.project(Point{40.0, 30.0});
  EXPECT_DOUBLE_EQ(proj.arc_length, 40.0);
  EXPECT_DOUBLE_EQ(proj.distance, 30.0);
  EXPECT_EQ(proj.closest, (Point{40.0, 0.0}));
}

TEST(Polyline, ProjectClampsToEndpoints) {
  const Polyline line({{0.0, 0.0}, {100.0, 0.0}});
  EXPECT_DOUBLE_EQ(line.project(Point{-50.0, 0.0}).arc_length, 0.0);
  EXPECT_DOUBLE_EQ(line.project(Point{150.0, 10.0}).arc_length, 100.0);
}

TEST(Polyline, ProjectPicksNearestOfManySegments) {
  const Polyline line({{0.0, 0.0}, {100.0, 0.0}, {100.0, 100.0}});
  const auto proj = line.project(Point{98.0, 60.0});
  EXPECT_NEAR(proj.arc_length, 160.0, 1e-9);
}

TEST(Polyline, ReversedPreservesGeometry) {
  const Polyline line({{0.0, 0.0}, {100.0, 0.0}, {100.0, 100.0}});
  const Polyline rev = line.reversed();
  EXPECT_DOUBLE_EQ(rev.length(), line.length());
  const Point p1 = line.point_at(30.0);
  const Point p2 = rev.point_at(line.length() - 30.0);
  EXPECT_NEAR(p1.x, p2.x, 1e-9);
  EXPECT_NEAR(p1.y, p2.y, 1e-9);
}

// A property sweep: point_at and project are inverse along the line.
class PolylineRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(PolylineRoundTrip, ProjectInvertsPointAt) {
  const Polyline line(
      {{0.0, 0.0}, {120.0, 30.0}, {200.0, 30.0}, {260.0, -40.0}, {400.0, 0.0}});
  const double s = GetParam() * line.length();
  const Point p = line.point_at(s);
  const auto proj = line.project(p);
  EXPECT_NEAR(proj.arc_length, s, 1e-6);
  EXPECT_NEAR(proj.distance, 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AlongTheLine, PolylineRoundTrip,
                         ::testing::Values(0.0, 0.1, 0.25, 0.33, 0.5, 0.66,
                                           0.75, 0.9, 0.999, 1.0));

// -------------------------------------------------------------- statistics

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(EmpiricalDistribution, PercentileInterpolates) {
  EmpiricalDistribution d;
  d.add_all({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(d.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(d.percentile(50.0), 30.0);
  EXPECT_DOUBLE_EQ(d.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(d.percentile(25.0), 20.0);
  EXPECT_DOUBLE_EQ(d.percentile(12.5), 15.0);
}

TEST(EmpiricalDistribution, PercentileOfEmptyThrows) {
  EmpiricalDistribution d;
  EXPECT_THROW(d.percentile(50.0), std::logic_error);
}

TEST(EmpiricalDistribution, CdfCountsInclusive) {
  EmpiricalDistribution d;
  d.add_all({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
}

TEST(EmpiricalDistribution, CdfSeriesEndpointsAndMonotonicity) {
  EmpiricalDistribution d;
  for (int i = 0; i < 100; ++i) d.add(static_cast<double>(i));
  const auto series = d.cdf_series(0.0, 99.0, 25);
  ASSERT_EQ(series.size(), 25u);
  EXPECT_DOUBLE_EQ(series.front().first, 0.0);
  EXPECT_DOUBLE_EQ(series.back().first, 99.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(LinearRegression, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = linear_regression(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearRegression, RejectsDegenerateInput) {
  EXPECT_THROW(linear_regression({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(linear_regression({1.0, 1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(linear_regression({1.0, 2.0}, {1.0}), std::invalid_argument);
}

TEST(LinearRegression, FixedInterceptRecoversSlope) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 20; ++i) {
    xs.push_back(i);
    ys.push_back(5.0 + 0.5 * i);
  }
  EXPECT_NEAR(regression_slope_fixed_intercept(xs, ys, 5.0), 0.5, 1e-12);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10.0, 0.0, 5), std::invalid_argument);
}

// -------------------------------------------------------------------- time

TEST(SimTime, ClockConstruction) {
  EXPECT_DOUBLE_EQ(at_clock(0, 8, 30), 8.5 * kHour);
  EXPECT_DOUBLE_EQ(at_clock(1, 0, 0), kDay);
  EXPECT_DOUBLE_EQ(at_clock(2, 17, 0, 30.0), 2 * kDay + 17 * kHour + 30.0);
}

TEST(SimTime, TimeOfDayWraps) {
  EXPECT_DOUBLE_EQ(time_of_day(kDay + 3600.0), 3600.0);
  EXPECT_DOUBLE_EQ(time_of_day(5 * kDay), 0.0);
}

TEST(SimTime, DayIndex) {
  EXPECT_EQ(day_index(0.0), 0);
  EXPECT_EQ(day_index(kDay - 1.0), 0);
  EXPECT_EQ(day_index(kDay), 1);
  EXPECT_EQ(day_index(2.5 * kDay), 2);
}

TEST(SimTime, FormatClock) {
  EXPECT_EQ(format_clock(at_clock(0, 8, 30)), "08:30");
  EXPECT_EQ(format_clock(at_clock(3, 17, 5)), "17:05");
}

TEST(SimTime, SpeedConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(kmh_to_ms(36.0), 10.0);
  EXPECT_DOUBLE_EQ(ms_to_kmh(kmh_to_ms(53.7)), 53.7);
}

// ------------------------------------------------------------------- table

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row("long-label", {3.14159}, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-label"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) {
    differ = a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0);
  }
  EXPECT_TRUE(differ);
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(4);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    lo = lo || v == 0;
    hi = hi || v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NormalMomentsApproximate) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, LognormalMedianApproximate) {
  Rng rng(6);
  EmpiricalDistribution d;
  for (int i = 0; i < 20000; ++i) d.add(rng.lognormal_median(40.0, 0.5));
  EXPECT_NEAR(d.median(), 40.0, 1.5);
}

TEST(Rng, PoissonMeanApproximate) {
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.poisson(3.5));
  EXPECT_NEAR(s.mean(), 3.5, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.fork();
  // The fork must not replay the parent stream.
  Rng b(9);
  (void)b.fork();
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) {
    differ = child.uniform(0.0, 1.0) != a.uniform(0.0, 1.0);
  }
  EXPECT_TRUE(differ);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace bussense
