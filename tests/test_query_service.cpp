// Epoch-based serving tier (DESIGN.md §13): the publish/pin/retire
// protocol, bit-identity of published epochs against the serial snapshot,
// the three query families, and the obs instruments.
//
// The concurrency properties this suite pins down:
//
//   * no torn epoch — 8 readers validating internal invariants while a
//     publisher churns epochs over live concurrent ingest (run under
//     ThreadSanitizer by scripts/tier1.sh BUSSENSE_SERVING=ON);
//   * retired epochs are reclaimed — a 10k-epoch churn with readers
//     attached ends with exactly one live epoch (run under
//     AddressSanitizer leak checking by the same tier-1 stage);
//   * epoch-boundary equivalence — an epoch published at SimTime `now` is
//     bit-identical to the serial TrafficMap::snapshot at the same `now`,
//     for every front end.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/epoch_publisher.h"
#include "core/ingest_service.h"
#include "core/query_service.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "obs/metrics.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

struct Testbed {
  World world;
  StopDatabase database;
  std::vector<AnnotatedTrip> trips;

  Testbed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
    Rng rng(77);
    trips = world.simulate_day(0, 1.2, rng).trips;
  }
};

const Testbed& testbed() {
  static const Testbed bed;
  return bed;
}

// Canonical byte rendering of a traffic map: segments in key order, every
// float as %.17g — equal strings mean bit-identical maps (same idiom as
// the ingest identity suite).
std::string map_bytes(const TrafficMap& map) {
  std::vector<MapSegment> segments = map.segments();
  std::sort(segments.begin(), segments.end(),
            [](const MapSegment& a, const MapSegment& b) {
              return a.key.from != b.key.from ? a.key.from < b.key.from
                                              : a.key.to < b.key.to;
            });
  std::string out;
  char buf[160];
  for (const MapSegment& s : segments) {
    std::snprintf(buf, sizeof buf, "%d>%d %.17g %.17g %d %d;",
                  static_cast<int>(s.key.from), static_cast<int>(s.key.to),
                  s.speed_kmh, s.updated_at, s.observation_count,
                  static_cast<int>(s.level));
    out += buf;
  }
  return out;
}

// Order-sensitive equality: same segments in the same order with the same
// bits (stronger than map_bytes — also pins the traversal order).
void expect_maps_identical_in_order(const TrafficMap& a, const TrafficMap& b) {
  ASSERT_EQ(a.segments().size(), b.segments().size());
  EXPECT_EQ(a.time(), b.time());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    const MapSegment& x = a.segments()[i];
    const MapSegment& y = b.segments()[i];
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.speed_kmh, y.speed_kmh);
    EXPECT_EQ(x.updated_at, y.updated_at);
    EXPECT_EQ(x.observation_count, y.observation_count);
    EXPECT_EQ(x.level, y.level);
  }
}

// A small synthetic fusion over the first `n` catalogued segments — the
// cheap substrate for churn/staleness tests.
SpeedFusion tiny_fusion(const SegmentCatalog& catalog, std::size_t n,
                        double speed_kmh, SimTime at) {
  SpeedFusion fusion;
  const auto& keys = catalog.adjacent_keys();
  for (std::size_t i = 0; i < std::min(n, keys.size()); ++i) {
    SpeedEstimate e;
    e.segment = keys[i];
    e.att_speed_kmh = speed_kmh;
    e.time = at;
    fusion.add(e);
  }
  fusion.flush_until(at + kHour);
  return fusion;
}

// A serial server primed with the testbed's simulated day up to `now`.
struct PrimedServer {
  TrafficServer server;
  SimTime now;

  explicit PrimedServer(std::size_t max_trips = 200)
      : server(testbed().world.city(), testbed().database) {
    const Testbed& bed = testbed();
    SimTime latest = 0.0;
    std::size_t fed = 0;
    for (const AnnotatedTrip& trip : bed.trips) {
      if (trip.upload.samples.empty()) continue;
      server.process_trip(trip.upload);
      for (const auto& s : trip.upload.samples) {
        latest = std::max(latest, s.time);
      }
      if (++fed >= max_trips) break;
    }
    // Stay inside the predictor's 1800 s staleness window so live
    // estimates actually influence ETAs.
    now = latest + 10 * kMinute;
    server.advance_time(now);
  }
};

// ------------------------------------------------------------- validation

TEST(EpochPublisherConfig, RejectsNonsense) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisherConfig no_readers;
  no_readers.max_readers = 0;
  EXPECT_THROW(EpochPublisher(catalog, no_readers), std::invalid_argument);
  EpochPublisherConfig bad_grid;
  bad_grid.grid_cols = 0;
  EXPECT_THROW(EpochPublisher(catalog, bad_grid), std::invalid_argument);
  EpochPublisherConfig bad_age;
  bad_age.max_age_s = 0.0;
  EXPECT_THROW(EpochPublisher(catalog, bad_age), std::invalid_argument);
}

// ------------------------------------------------- empty-publisher behavior

TEST(EpochPublisher, PinBeforeFirstPublishIsFalsy) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisher pub(catalog);
  EXPECT_FALSE(pub.pin());
  EXPECT_EQ(pub.epochs_published(), 0u);
  EXPECT_EQ(pub.epochs_live(), 0u);
  EXPECT_EQ(pub.pinned_readers(), 0u);
}

TEST(QueryService, AnswersBeforeFirstPublish) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisher pub(catalog);
  QueryService svc(pub);

  const auto speed = svc.segment_speed(catalog.adjacent_keys().front());
  EXPECT_EQ(speed.epoch_id, 0u);
  EXPECT_FALSE(speed.live);

  const BusRoute& route = *bed.world.city().route_by_name("79", 0);
  const auto eta = svc.route_eta(route, 0, 1000.0);
  EXPECT_EQ(eta.epoch_id, 0u);
  ASSERT_EQ(eta.arrivals.size(), route.stop_count() - 1);
  for (const ArrivalPrediction& p : eta.arrivals) {
    EXPECT_FALSE(p.from_live_traffic);  // free-flow fallback
    EXPECT_GT(p.eta, 1000.0);
  }

  const auto region = svc.region_aggregate(pub.geometry().region());
  EXPECT_EQ(region.epoch_id, 0u);
  EXPECT_EQ(region.segments_total, 0);

  const auto snap = svc.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("queries.no_epoch"), 3u);
}

// ----------------------------------------------------- epoch bit-identity

TEST(EpochServing, PublishedEpochMatchesSerialSnapshot) {
  const PrimedServer primed;
  EpochPublisher pub(primed.server.catalog());
  const std::uint64_t id = primed.server.publish_epoch(pub, primed.now);
  EXPECT_EQ(id, 1u);

  const EpochPublisher::Pin p = pub.pin();
  ASSERT_TRUE(p);
  EXPECT_EQ(p->id(), 1u);
  EXPECT_EQ(p->time(), primed.now);
  const TrafficMap serial = primed.server.snapshot(primed.now);
  ASSERT_GT(serial.segments().size(), 0u);
  expect_maps_identical_in_order(p->map(), serial);

  // Precomputed aggregates match the map's own methods bit-for-bit.
  EXPECT_EQ(p->mean_speed_kmh(), serial.mean_speed_kmh());
  EXPECT_EQ(p->coverage_ratio(),
            serial.coverage_ratio(primed.server.catalog()));
  EXPECT_EQ(p->level_histogram(), serial.level_histogram());
}

TEST(EpochServing, AllFrontEndsPublishIdenticalEpochs) {
  const Testbed& bed = testbed();
  std::vector<TripUpload> uploads;
  for (const AnnotatedTrip& trip : bed.trips) {
    if (!trip.upload.samples.empty()) uploads.push_back(trip.upload);
    if (uploads.size() >= 120) break;
  }
  ASSERT_GE(uploads.size(), 20u);
  SimTime latest = 0.0;
  for (const TripUpload& u : uploads) {
    for (const auto& s : u.samples) latest = std::max(latest, s.time);
  }
  const SimTime now = latest + kHour;

  auto epoch_bytes = [&](TrafficIngestor& ingestor) {
    EpochPublisher pub(ingestor.catalog());
    ingestor.publish_epoch(pub, now);
    const EpochPublisher::Pin p = pub.pin();
    return map_bytes(p->map());
  };

  TrafficServer serial(bed.world.city(), bed.database);
  for (const TripUpload& u : uploads) serial.process_trip(u);
  serial.advance_time(now);
  const std::string expected = epoch_bytes(serial);
  EXPECT_EQ(expected, map_bytes(serial.snapshot(now)));

  ConcurrentTrafficServer concurrent(bed.world.city(), bed.database);
  for (const TripUpload& u : uploads) concurrent.process_trip(u);
  concurrent.advance_time(now);
  EXPECT_EQ(epoch_bytes(concurrent), expected);

  IngestServiceConfig manual;
  manual.workers = 0;
  manual.backpressure = IngestServiceConfig::Backpressure::kReject;
  manual.queue_capacity = uploads.size() + 1;
  IngestService service(bed.world.city(), bed.database, {}, manual);
  for (const TripUpload& u : uploads) service.process_trip(u);
  service.advance_time(now);
  EXPECT_EQ(epoch_bytes(service), expected);

  ShardedIngestService sharded(bed.world.city(), bed.database);
  for (const TripUpload& u : uploads) sharded.process_trip(u);
  sharded.advance_time(now);
  EXPECT_EQ(epoch_bytes(sharded), expected);
}

// ------------------------------------------------------ staleness boundary

// The cutoff in TrafficMap::add_fused is strict `>` on the age: an
// estimate exactly max_age_s old is included; one epsilon older is not.
// Pinned across both fusion overloads and the visiting build.
TEST(TrafficMapStaleness, BoundaryIsInclusiveAtExactlyMaxAge) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  const SegmentKey key = catalog.adjacent_keys().front();

  SpeedFusion fusion;
  SpeedEstimate e;
  e.segment = key;
  e.att_speed_kmh = 25.0;
  e.time = 300.0;
  fusion.add(e);
  fusion.flush_until(10000.0);
  const auto fused = fusion.query(key);
  ASSERT_TRUE(fused.has_value());
  const SimTime updated = fused->updated_at;

  StripedSpeedFusion striped;
  striped.add(e);
  striped.flush_until(10000.0);
  ASSERT_EQ(striped.query(key)->updated_at, updated);

  const double max_age = 600.0;
  const SimTime at_boundary = updated + max_age;  // age == max_age exactly
  const SimTime past_boundary =
      std::nextafter(at_boundary, std::numeric_limits<double>::infinity());

  // Exactly max_age_s old: included, by every build path.
  EXPECT_EQ(
      TrafficMap::snapshot(fusion, catalog, at_boundary, max_age).segments().size(),
      1u);
  EXPECT_EQ(TrafficMap::snapshot(striped, catalog, at_boundary, max_age)
                .segments()
                .size(),
            1u);
  EXPECT_EQ(TrafficMap::snapshot_visiting(fusion, catalog, at_boundary, max_age)
                .segments()
                .size(),
            1u);
  EXPECT_EQ(
      TrafficMap::snapshot_visiting(striped, catalog, at_boundary, max_age)
          .segments()
          .size(),
      1u);

  // One epsilon older: excluded, by every build path.
  EXPECT_TRUE(TrafficMap::snapshot(fusion, catalog, past_boundary, max_age)
                  .segments()
                  .empty());
  EXPECT_TRUE(TrafficMap::snapshot(striped, catalog, past_boundary, max_age)
                  .segments()
                  .empty());
  EXPECT_TRUE(
      TrafficMap::snapshot_visiting(fusion, catalog, past_boundary, max_age)
          .segments()
          .empty());
  EXPECT_TRUE(
      TrafficMap::snapshot_visiting(striped, catalog, past_boundary, max_age)
          .segments()
          .empty());
}

TEST(TrafficMapStaleness, VisitingBuildBitIdenticalToCopyingBuild) {
  const PrimedServer primed;
  const SpeedFusion& fusion = primed.server.fusion();
  const SegmentCatalog& catalog = primed.server.catalog();
  expect_maps_identical_in_order(
      TrafficMap::snapshot_visiting(fusion, catalog, primed.now),
      TrafficMap::snapshot(fusion, catalog, primed.now));
}

// ----------------------------------------------------------- query families

TEST(QueryService, SegmentSpeedMatchesSnapshotForAllKeys) {
  const PrimedServer primed;
  EpochPublisher pub(primed.server.catalog());
  primed.server.publish_epoch(pub, primed.now);
  QueryService svc(pub);

  const TrafficMap serial = primed.server.snapshot(primed.now);
  std::size_t live = 0;
  for (const SegmentKey& key : primed.server.catalog().adjacent_keys()) {
    const SegmentSpeedResult r = svc.segment_speed(key);
    EXPECT_EQ(r.epoch_id, 1u);
    EXPECT_EQ(r.epoch_time, primed.now);
    const auto it = std::find_if(
        serial.segments().begin(), serial.segments().end(),
        [&](const MapSegment& s) { return s.key == key; });
    if (it == serial.segments().end()) {
      EXPECT_FALSE(r.live);
      continue;
    }
    ++live;
    ASSERT_TRUE(r.live);
    EXPECT_EQ(r.speed_kmh, it->speed_kmh);
    EXPECT_EQ(r.level, it->level);
    EXPECT_EQ(r.updated_at, it->updated_at);
    EXPECT_EQ(r.observation_count, it->observation_count);
  }
  EXPECT_EQ(live, serial.segments().size());
}

TEST(QueryService, RouteEtaMatchesPredictorAgainstLiveFusion) {
  const PrimedServer primed;
  EpochPublisher pub(primed.server.catalog());
  primed.server.publish_epoch(pub, primed.now);
  QueryService svc(pub);

  const ArrivalPredictor predictor(primed.server.catalog());
  bool any_live = false;
  for (const char* name : {"79", "243"}) {
    for (int dir = 0; dir < 2; ++dir) {
      const BusRoute* route = testbed().world.city().route_by_name(name, dir);
      if (!route) continue;
      const SimTime depart = primed.now - 10 * kMinute;
      const RouteEtaResult served = svc.route_eta(*route, 0, depart);
      EXPECT_EQ(served.epoch_id, 1u);
      const auto expected = predictor.predict(*route, 0, depart,
                                              primed.server.fusion(),
                                              primed.now);
      ASSERT_EQ(served.arrivals.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(served.arrivals[i].eta, expected[i].eta);  // bit-identical
        EXPECT_EQ(served.arrivals[i].from_live_traffic,
                  expected[i].from_live_traffic);
        any_live |= expected[i].from_live_traffic;
      }
    }
  }
  EXPECT_TRUE(any_live);  // the primed map must actually influence an ETA
}

TEST(QueryService, RegionAggregatesMatchWholeMapStatistics) {
  const PrimedServer primed;
  EpochPublisher pub(primed.server.catalog());
  primed.server.publish_epoch(pub, primed.now);
  QueryService svc(pub);

  const TrafficMap serial = primed.server.snapshot(primed.now);
  const RegionAggregate whole = svc.region_aggregate(pub.geometry().region());
  EXPECT_EQ(whole.epoch_id, 1u);
  EXPECT_EQ(whole.epoch_time, primed.now);
  EXPECT_EQ(whole.segments_total,
            static_cast<int>(pub.geometry().size()));
  EXPECT_EQ(whole.segments_live,
            static_cast<int>(serial.segments().size()));
  // Same length-weighted mean as the map (different but fixed fold order —
  // compare to rounding).
  EXPECT_NEAR(whole.mean_speed_kmh, serial.mean_speed_kmh(),
              1e-9 * std::max(1.0, serial.mean_speed_kmh()));
  int hist_sum = 0;
  for (const int c : whole.level_histogram) hist_sum += c;
  EXPECT_EQ(hist_sum, whole.segments_live);
  for (const auto& [level, count] : serial.level_histogram()) {
    EXPECT_EQ(whole.level_histogram[static_cast<std::size_t>(level)], count);
  }
  EXPECT_GT(whole.coverage_ratio, 0.0);
  EXPECT_LE(whole.coverage_ratio, 1.0);

  // An empty box aggregates to zero.
  const RegionAggregate empty =
      svc.region_aggregate({{-500.0, -500.0}, {-400.0, -400.0}});
  EXPECT_EQ(empty.segments_total, 0);
  EXPECT_EQ(empty.segments_live, 0);
  EXPECT_EQ(empty.mean_speed_kmh, 0.0);

  // Determinism: repeating the query reproduces every field bit-for-bit.
  const RegionAggregate again = svc.region_aggregate(pub.geometry().region());
  EXPECT_EQ(again.mean_speed_kmh, whole.mean_speed_kmh);
  EXPECT_EQ(again.live_length_m, whole.live_length_m);
  EXPECT_EQ(again.total_length_m, whole.total_length_m);
  EXPECT_EQ(again.coverage_ratio, whole.coverage_ratio);

  // A half-city box sees a strict subset.
  BoundingBox half = pub.geometry().region();
  half.max.x = 0.5 * (half.min.x + half.max.x);
  const RegionAggregate left = svc.region_aggregate(half);
  EXPECT_LT(left.segments_total, whole.segments_total);
  EXPECT_LE(left.segments_live, whole.segments_live);
}

// ------------------------------------------------------- k-nearest queries

// Brute-force oracle: scan every catalogued segment, keep the live ones,
// sort by (distance, key) and take k — the ring walk must match this
// bit-for-bit, including the computed distances.
std::vector<NearestSegment> brute_force_k_nearest(const EpochPublisher& pub,
                                                  const EpochSnapshot& snap,
                                                  Point p, std::size_t k) {
  std::vector<NearestSegment> all;
  for (std::uint32_t o = 0; o < pub.geometry().size(); ++o) {
    const SegmentGeometry::Entry& e = pub.geometry().entry(o);
    const MapSegment* live = snap.segment(e.key);
    if (!live) continue;
    all.push_back({*live, e.midpoint, distance(p, e.midpoint)});
  }
  std::sort(all.begin(), all.end(),
            [](const NearestSegment& a, const NearestSegment& b) {
              if (a.distance_m != b.distance_m) {
                return a.distance_m < b.distance_m;
              }
              if (a.segment.key.from != b.segment.key.from) {
                return a.segment.key.from < b.segment.key.from;
              }
              return a.segment.key.to < b.segment.key.to;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

void expect_nearest_identical(const std::vector<NearestSegment>& got,
                              const std::vector<NearestSegment>& want,
                              const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].segment.key, want[i].segment.key) << label << " row " << i;
    EXPECT_EQ(got[i].distance_m, want[i].distance_m) << label << " row " << i;
    EXPECT_EQ(got[i].midpoint.x, want[i].midpoint.x) << label << " row " << i;
    EXPECT_EQ(got[i].midpoint.y, want[i].midpoint.y) << label << " row " << i;
    EXPECT_EQ(got[i].segment.speed_kmh, want[i].segment.speed_kmh)
        << label << " row " << i;
    EXPECT_EQ(got[i].segment.updated_at, want[i].segment.updated_at)
        << label << " row " << i;
    EXPECT_EQ(got[i].segment.observation_count,
              want[i].segment.observation_count)
        << label << " row " << i;
  }
}

// The ring walk must agree with the brute-force oracle for random query
// points inside the city box, outside it (clamping only shrinks per-axis
// distances, so the pruning bound stays valid), and at several k including
// k larger than the live-segment count.
TEST(KNearestLiveSegments, BitIdenticalToBruteForceSweep) {
  const PrimedServer primed;
  EpochPublisher pub(primed.server.catalog());
  primed.server.publish_epoch(pub, primed.now);
  QueryService svc(pub);
  const EpochPublisher::Pin pin = pub.pin();
  ASSERT_TRUE(pin);
  ASSERT_GT(pin->live_segments(), 10u);

  const BoundingBox& box = pub.geometry().region();
  Rng rng(4242);
  std::vector<Point> points;
  for (int i = 0; i < 40; ++i) {  // interior
    points.push_back({rng.uniform(box.min.x, box.max.x),
                      rng.uniform(box.min.y, box.max.y)});
  }
  const double w = box.max.x - box.min.x, h = box.max.y - box.min.y;
  for (int i = 0; i < 20; ++i) {  // exterior, up to half a box-size away
    points.push_back({rng.uniform(box.min.x - 0.5 * w, box.max.x + 0.5 * w),
                      rng.uniform(box.min.y - 0.5 * h, box.max.y + 0.5 * h)});
  }
  points.push_back(box.min);  // corners and just-past-corner extremes
  points.push_back(box.max);
  points.push_back({box.min.x - 3.0 * w, box.max.y + 2.0 * h});

  for (const Point& p : points) {
    for (const std::size_t k :
         {std::size_t{1}, std::size_t{3}, std::size_t{17},
          pin->live_segments(), pin->live_segments() + 64}) {
      const auto want = brute_force_k_nearest(pub, *pin, p, k);
      const std::string label = "p=(" + std::to_string(p.x) + "," +
                                std::to_string(p.y) +
                                ") k=" + std::to_string(k);
      expect_nearest_identical(pin->k_nearest(p, k), want, label);

      const KNearestResult via_service = svc.k_nearest_live_segments(p, k);
      EXPECT_EQ(via_service.epoch_id, 1u) << label;
      EXPECT_EQ(via_service.epoch_time, primed.now) << label;
      expect_nearest_identical(via_service.nearest, want, label + " (svc)");
    }
  }

  // k = 0 and the pre-publish/no-epoch path are well-defined empties.
  EXPECT_TRUE(pin->k_nearest(points.front(), 0).empty());
  const auto counters = svc.metrics().snapshot().counters;
  EXPECT_GT(counters.at("queries.knearest"), 0u);
}

TEST(KNearestLiveSegments, BeforeFirstPublishIsEmpty) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisher pub(catalog);
  QueryService svc(pub);
  const KNearestResult r = svc.k_nearest_live_segments(0.0, 0.0, 5);
  EXPECT_EQ(r.epoch_id, 0u);
  EXPECT_TRUE(r.nearest.empty());
  EXPECT_EQ(svc.metrics().snapshot().counters.at("queries.no_epoch"), 1u);
}

// --------------------------------------------------------- pin/retire rules

TEST(EpochPublisher, PinnedEpochSurvivesLaterPublishes) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisher pub(catalog);
  const SpeedFusion fusion = tiny_fusion(catalog, 8, 30.0, 4000.0);

  pub.publish_from(fusion, 5000.0);
  EpochPublisher::Pin old = pub.pin();
  ASSERT_TRUE(old);
  EXPECT_EQ(old->id(), 1u);

  pub.publish_from(fusion, 6000.0);
  pub.publish_from(fusion, 7000.0);
  // The pinned epoch is retired but must not be reclaimed.
  EXPECT_EQ(pub.epochs_published(), 3u);
  EXPECT_EQ(pub.epochs_retired(), 1u);  // epoch 2 freed; epoch 1 pinned
  EXPECT_EQ(pub.epochs_live(), 2u);
  EXPECT_EQ(old->id(), 1u);
  EXPECT_EQ(old->time(), 5000.0);

  old = EpochPublisher::Pin();  // release
  pub.reclaim();
  EXPECT_EQ(pub.epochs_live(), 1u);
  EXPECT_EQ(pub.epochs_retired(), 2u);
  EXPECT_EQ(pub.pin()->id(), 3u);
}

TEST(EpochPublisher, PinsAreReentrantPerThread) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisher pub(catalog);
  const SpeedFusion fusion = tiny_fusion(catalog, 4, 30.0, 4000.0);
  pub.publish_from(fusion, 5000.0);

  EpochPublisher::Pin outer = pub.pin();
  pub.publish_from(fusion, 6000.0);
  EpochPublisher::Pin inner = pub.pin();  // nested: same epoch as outer
  EXPECT_EQ(inner.get(), outer.get());
  EXPECT_EQ(inner->id(), 1u);
  inner = EpochPublisher::Pin();  // inner release keeps the outer pin
  EXPECT_EQ(outer->id(), 1u);
  EXPECT_EQ(pub.pinned_readers(), 1u);
  outer = EpochPublisher::Pin();
  EXPECT_EQ(pub.pinned_readers(), 0u);
  // Fully released: the next pin observes the newest epoch.
  EXPECT_EQ(pub.pin()->id(), 2u);
}

TEST(EpochPublisher, OverflowReadersBeyondSlotCapacity) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisherConfig cfg;
  cfg.max_readers = 2;
  EpochPublisher pub(catalog, cfg);
  const SpeedFusion fusion = tiny_fusion(catalog, 8, 30.0, 4000.0);
  pub.publish_from(fusion, 5000.0);

  constexpr int kThreads = 6;
  std::atomic<int> pinned{0};
  std::atomic<bool> go{false};
  std::atomic<int> ok{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      const EpochPublisher::Pin p = pub.pin();
      if (p && p->id() == 1u && p->live_segments() == 8u) ok.fetch_add(1);
      pinned.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
    });
  }
  while (pinned.load() < kThreads) std::this_thread::yield();
  EXPECT_EQ(ok.load(), kThreads);  // every thread saw a valid epoch
  EXPECT_EQ(pub.pinned_readers(), static_cast<std::size_t>(kThreads));
  // A publish while all six hold pins must keep epoch 1 alive.
  pub.publish_from(fusion, 6000.0);
  EXPECT_EQ(pub.epochs_live(), 2u);
  go.store(true);
  for (std::thread& t : pool) t.join();
  pub.reclaim();
  EXPECT_EQ(pub.epochs_live(), 1u);
  EXPECT_EQ(pub.pinned_readers(), 0u);
  // Exactly max_readers slots exist; the other four threads overflowed.
  EXPECT_EQ(pub.metrics().snapshot().counters.at("epochs.overflow_readers"),
            static_cast<std::uint64_t>(kThreads) - cfg.max_readers);
}

// ------------------------------------------------- concurrency properties

// Property (a): no torn epoch. Eight readers continuously pin and validate
// internal invariants of whatever epoch they see, while one thread ingests
// trips through the concurrent server and another publishes epochs from
// the live striped fusion. Run under TSan by the tier-1 serving stage.
TEST(EpochServingProperty, NoTornEpochUnderPublishAndIngest) {
  const Testbed& bed = testbed();
  ConcurrentTrafficServer server(bed.world.city(), bed.database);
  EpochPublisherConfig cfg;
  cfg.max_readers = 16;
  EpochPublisher pub(server.catalog(), cfg);
  QueryService svc(pub);

  std::vector<TripUpload> uploads;
  for (const AnnotatedTrip& trip : bed.trips) {
    if (!trip.upload.samples.empty()) uploads.push_back(trip.upload);
    if (uploads.size() >= 60) break;
  }
  ASSERT_GE(uploads.size(), 10u);

  constexpr int kReaders = 8;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> validated{0};

  std::thread ingest([&] {
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      server.process_trip(uploads[i++ % uploads.size()]);
    }
  });

  std::thread publisher([&] {
    SimTime now = at_clock(0, 8, 0);
    while (!stop.load(std::memory_order_relaxed)) {
      now += kMinute;
      server.advance_time(now);
      server.publish_epoch(pub, now);
    }
  });

  std::vector<std::thread> readers;
  const BusRoute& route = *bed.world.city().route_by_name("79", 0);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t last_id = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const EpochPublisher::Pin p = pub.pin();
        if (!p) continue;
        // Epoch ids only move forward for any single reader.
        ASSERT_GE(p->id(), last_id);
        last_id = p->id();
        // Internal consistency: every derived field recomputes to itself.
        const TrafficMap& map = p->map();
        for (const MapSegment& seg : map.segments()) {
          ASSERT_EQ(seg.level, classify_speed(seg.speed_kmh));
          ASSERT_LE(seg.updated_at, p->time());
        }
        ASSERT_EQ(p->mean_speed_kmh(), map.mean_speed_kmh());
        int hist = 0;
        for (const auto& [level, count] : p->level_histogram()) {
          (void)level;
          hist += count;
        }
        ASSERT_EQ(hist, static_cast<int>(map.segments().size()));
        // Exercise the query families concurrently too.
        if (r % 2 == 0) {
          (void)svc.route_eta(route, 0, p->time());
        } else {
          (void)svc.region_aggregate(pub.geometry().region());
        }
        validated.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Run until every actor has demonstrably overlapped: plenty of epochs
  // published, plenty of reader validations — capped by a generous
  // deadline so sanitizer builds still terminate.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((validated.load(std::memory_order_relaxed) < 2000 ||
          pub.epochs_published() < 100) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_relaxed);
  publisher.join();
  ingest.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GE(pub.epochs_published(), 100u);
  EXPECT_GE(validated.load(), 2000u);
  pub.reclaim();
  EXPECT_EQ(pub.epochs_live(), 1u);
}

// Property (b): retired epochs are reclaimed. 10k epochs churn over a tiny
// fusion while readers pin; at the end exactly one epoch remains. Run
// under ASan leak checking by the tier-1 serving stage.
TEST(EpochServingProperty, TenThousandEpochChurnReclaimsEverything) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisher pub(catalog);
  const SpeedFusion fusion = tiny_fusion(catalog, 6, 35.0, 1000.0);

  constexpr int kEpochs = 10000;
  // Publish times creep forward by 10 ms per epoch so every epoch stays
  // far inside the 3600 s staleness window.
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const EpochPublisher::Pin p = pub.pin();
        if (p) {
          ASSERT_EQ(p->live_segments(), 6u);
          ASSERT_EQ(p->map().segments()[0].speed_kmh,
                    p->map().segments()[1].speed_kmh);
        }
      }
    });
  }

  for (int i = 0; i < kEpochs; ++i) {
    pub.publish_from(fusion, 2000.0 + 0.01 * i);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  pub.reclaim();
  EXPECT_EQ(pub.epochs_published(), static_cast<std::uint64_t>(kEpochs));
  EXPECT_EQ(pub.epochs_live(), 1u);
  EXPECT_EQ(pub.epochs_retired(), static_cast<std::uint64_t>(kEpochs) - 1);
  EXPECT_EQ(pub.pinned_readers(), 0u);
  // The surviving epoch is the newest.
  EXPECT_EQ(pub.pin()->id(), static_cast<std::uint64_t>(kEpochs));
}

// ------------------------------------------------------- background ticker

TEST(EpochPublisher, BackgroundTickerPublishesPeriodically) {
  const PrimedServer primed;
  EpochPublisher pub(primed.server.catalog());
  std::atomic<int> ticks{0};
  SimTime now = primed.now;
  pub.start(
      [&](EpochPublisher& p) {
        now += kMinute;
        primed.server.publish_epoch(p, now);
        ticks.fetch_add(1);
      },
      0.005);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ticks.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pub.stop();
  const int final_ticks = ticks.load();
  EXPECT_GE(final_ticks, 3);
  EXPECT_EQ(pub.epochs_published(), static_cast<std::uint64_t>(final_ticks));
  // stop() is a barrier: no further publishes afterwards.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ticks.load(), final_ticks);
  EXPECT_EQ(pub.pin()->id(), static_cast<std::uint64_t>(final_ticks));
}

// ------------------------------------------------------------ observability

TEST(EpochPublisherMetrics, InstrumentsTrackLifecycle) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisher pub(catalog);
  const SpeedFusion fusion = tiny_fusion(catalog, 4, 30.0, 1000.0);
  for (int i = 0; i < 5; ++i) pub.publish_from(fusion, 5000.0 + i);

  const MetricsSnapshot snap = pub.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("epochs.published"), 5u);
  EXPECT_EQ(snap.counters.at("epochs.retired"), 4u);
  EXPECT_EQ(snap.gauges.at("epochs.live"), 1.0);
  EXPECT_EQ(snap.gauges.at("epochs.pinned"), 0.0);
  EXPECT_EQ(snap.histograms.at("publish.build_s").total, 5u);

  // The pinned gauge samples the registry at reclaim time.
  const EpochPublisher::Pin p = pub.pin();
  pub.reclaim();
  EXPECT_EQ(pub.metrics().snapshot().gauges.at("epochs.pinned"), 1.0);
}

TEST(QueryServiceMetrics, LatencyHistogramPerFamily) {
  const PrimedServer primed;
  EpochPublisher pub(primed.server.catalog());
  primed.server.publish_epoch(pub, primed.now);
  QueryService svc(pub);

  const SegmentKey key = primed.server.catalog().adjacent_keys().front();
  const BusRoute& route = *testbed().world.city().route_by_name("79", 0);
  for (int i = 0; i < 7; ++i) (void)svc.segment_speed(key);
  for (int i = 0; i < 3; ++i) (void)svc.route_eta(route, 0, primed.now);
  for (int i = 0; i < 2; ++i) {
    (void)svc.region_aggregate(pub.geometry().region());
  }

  const MetricsSnapshot snap = svc.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("queries.segment"), 7u);
  EXPECT_EQ(snap.counters.at("queries.eta"), 3u);
  EXPECT_EQ(snap.counters.at("queries.region"), 2u);
  EXPECT_EQ(snap.counters.at("queries.no_epoch"), 0u);
  EXPECT_EQ(snap.histograms.at("query.latency.segment").total, 7u);
  EXPECT_EQ(snap.histograms.at("query.latency.eta").total, 3u);
  EXPECT_EQ(snap.histograms.at("query.latency.region").total, 2u);
}

TEST(QueryServiceMetrics, DisabledObservabilityRecordsNothing) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  EpochPublisherConfig pcfg;
  pcfg.obs.enabled = false;
  EpochPublisher pub(catalog, pcfg);
  const SpeedFusion fusion = tiny_fusion(catalog, 4, 30.0, 1000.0);
  pub.publish_from(fusion, 5000.0);

  QueryServiceConfig qcfg;
  qcfg.obs.enabled = false;
  QueryService svc(pub, qcfg);
  (void)svc.segment_speed(catalog.adjacent_keys().front());

  EXPECT_TRUE(pub.metrics().snapshot().counters.empty());
  EXPECT_TRUE(svc.metrics().snapshot().counters.empty());
  EXPECT_TRUE(svc.metrics().snapshot().histograms.empty());
  // Counters still work without instruments.
  EXPECT_EQ(pub.epochs_published(), 1u);
}

// Satellite: Gauge semantics under registry merge and JSON export —
// last-writer-wins, matching the instantaneous-value meaning.
TEST(GaugeMergeSemantics, MergeTakesOtherValueAndExportsDeterministically) {
  MetricsRegistry a, b;
  a.gauge("epochs.pinned").set(2.0);
  a.counter("epochs.published").add(10);
  b.gauge("epochs.pinned").set(5.0);
  b.counter("epochs.published").add(3);

  a.merge(b);
  const MetricsSnapshot snap = a.snapshot();
  EXPECT_EQ(snap.gauges.at("epochs.pinned"), 5.0);  // last writer wins
  EXPECT_EQ(snap.counters.at("epochs.published"), 13u);  // counters sum

  // Merging a registry that lacks the gauge leaves the value untouched.
  MetricsRegistry c;
  c.counter("unrelated").inc();
  a.merge(c);
  EXPECT_EQ(a.snapshot().gauges.at("epochs.pinned"), 5.0);

  // A gauge present in `other` overwrites even with the default 0.0 —
  // last-writer-wins has no "keep the larger" special case.
  MetricsRegistry d;
  d.gauge("epochs.pinned").set(0.0);
  a.merge(d);
  EXPECT_EQ(a.snapshot().gauges.at("epochs.pinned"), 0.0);

  // JSON export is deterministic: equal contents, equal bytes.
  MetricsRegistry x, y;
  x.gauge("g.two").set(2.5);
  x.gauge("g.one").set(-1.0);
  x.counter("c").add(7);
  y.counter("c").add(7);
  y.gauge("g.one").set(-1.0);  // registered in a different order
  y.gauge("g.two").set(2.5);
  EXPECT_EQ(x.to_json(), y.to_json());
  EXPECT_NE(x.to_json().find("\"g.one\""), std::string::npos);
}

}  // namespace
}  // namespace bussense
