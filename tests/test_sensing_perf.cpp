// Sensing fast-path equivalence: the indexed scan, the one-pass Goertzel
// bank and the parallel trip driver must be *result-identical* to their
// brute-force / scalar / serial reference paths — the contract that lets
// the benches claim speedups without changing any downstream number.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "cellular/deployment.h"
#include "cellular/scanner.h"
#include "cellular/tower_index.h"
#include "common/thread_pool.h"
#include "dsp/audio_synth.h"
#include "dsp/beep_detector.h"
#include "dsp/goertzel.h"
#include "dsp/goertzel_bank.h"
#include "dsp/sliding_window.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

// ------------------------------------------------- indexed scan identity

class ScanEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScanEquivalence, IndexedMatchesBruteForceBitForBit) {
  Rng meta(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const double w = meta.uniform(1500.0, 9000.0);
    const double h = meta.uniform(1500.0, 6000.0);
    Rng deploy_rng(meta.engine()());
    const auto towers =
        deploy_towers({{0.0, 0.0}, {w, h}}, DeploymentConfig{}, deploy_rng);
    const RadioEnvironment env(towers, PropagationConfig{}, meta.engine()());

    ScannerConfig indexed_cfg, brute_cfg;
    brute_cfg.accel.use_index = false;
    const CellScanner indexed(indexed_cfg);
    const CellScanner brute(brute_cfg);

    const std::uint64_t scan_seed = meta.engine()();
    Rng rng_a(scan_seed), rng_b(scan_seed);
    for (int s = 0; s < 50; ++s) {
      const Point p{meta.uniform(-500.0, w + 500.0),
                    meta.uniform(-500.0, h + 500.0)};
      const bool in_bus = meta.bernoulli(0.5);
      ScanStats stats;
      const auto a = indexed.scan(env, p, rng_a, in_bus, &stats);
      const auto b = brute.scan(env, p, rng_b, in_bus);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].rss_dbm, b[i].rss_dbm);  // bit-identical doubles
      }
      // Both paths must consume the caller's rng stream identically.
      EXPECT_EQ(rng_a.engine()(), rng_b.engine()());
      EXPECT_EQ(stats.towers_considered, towers.size());
      EXPECT_LE(stats.reach_candidates, stats.towers_considered);
      EXPECT_LE(stats.towers_accepted, stats.reach_candidates);
      EXPECT_EQ(stats.towers_pruned,
                stats.towers_considered - stats.towers_accepted);
    }
  }
}

TEST_P(ScanEquivalence, WorldScanStopWithChurnIsIndexInvariant) {
  WorldConfig base;
  base.city.route_names = {"79", "243"};
  base.city.width_m = 4000.0;
  base.city.height_m = 2500.0;
  base.seed = GetParam();
  base.tower_churn_per_day = 0.05;
  base.tower_churn_event_day = 2;
  base.tower_churn_event_fraction = 0.3;
  WorldConfig brute = base;
  brute.scanner.accel.use_index = false;
  const World world_indexed(base), world_brute(brute);

  const std::uint64_t scan_seed = 1234 + GetParam();
  Rng rng_a(scan_seed), rng_b(scan_seed);
  Rng pick(GetParam() ^ 0xabcd);
  for (int s = 0; s < 40; ++s) {
    const auto stop = static_cast<StopId>(pick.uniform_int(
        0, static_cast<int>(world_indexed.city().stops().size()) - 1));
    const bool in_bus = pick.bernoulli(0.5);
    const SimTime when = at_clock(pick.uniform_int(0, 4), 12, 0);
    const Fingerprint a = world_indexed.scan_stop(stop, rng_a, in_bus, when);
    const Fingerprint b = world_brute.scan_stop(stop, rng_b, in_bus, when);
    EXPECT_EQ(a.cells, b.cells);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanEquivalence,
                         ::testing::Values(1u, 7u, 42u, 1337u));

TEST(TowerIndex, QueryMatchesLinearScan) {
  Rng rng(5);
  std::vector<CellTower> towers;
  for (int i = 0; i < 300; ++i) {
    towers.push_back(CellTower{static_cast<CellId>(1000 + i),
                               {rng.uniform(-2000.0, 7000.0),
                                rng.uniform(-1000.0, 5000.0)},
                               38.5});
  }
  const TowerIndex index(towers, 750.0);
  std::vector<std::uint32_t> got;
  for (int trial = 0; trial < 200; ++trial) {
    const Point p{rng.uniform(-3000.0, 8000.0), rng.uniform(-2000.0, 6000.0)};
    const double radius = rng.uniform(0.0, 4000.0);
    index.query(p, radius, got);
    std::vector<std::uint32_t> want;
    for (std::uint32_t i = 0; i < towers.size(); ++i) {
      if (distance(towers[i].position, p) <= radius) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(TowerIndex, OutlierTowerFallsBackToLinearScan) {
  // One tower 10,000 km away makes the bounding-box grid astronomically
  // large; the index must fall back to a linear scan instead of allocating
  // a CSR over the whole box, and queries must still be exact.
  Rng rng(17);
  std::vector<CellTower> towers;
  for (int i = 0; i < 40; ++i) {
    towers.push_back(CellTower{static_cast<CellId>(i),
                               {rng.uniform(0.0, 5000.0),
                                rng.uniform(0.0, 3000.0)},
                               38.5});
  }
  towers.push_back(CellTower{999, {1.0e10, -1.0e10}, 38.5});
  const TowerIndex index(towers, 750.0);
  std::vector<std::uint32_t> got;
  for (int trial = 0; trial < 50; ++trial) {
    const Point p{rng.uniform(-1000.0, 6000.0), rng.uniform(-1000.0, 4000.0)};
    const double radius = rng.uniform(0.0, 4000.0);
    index.query(p, radius, got);
    std::vector<std::uint32_t> want;
    for (std::uint32_t i = 0; i < towers.size(); ++i) {
      if (distance(towers[i].position, p) <= radius) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(ScanStats, IndexPrunesOnTheFullCity) {
  Rng rng(11);
  const auto towers = deploy_towers({{0.0, 0.0}, {7000.0, 4000.0}},
                                    DeploymentConfig{}, rng);
  const RadioEnvironment env(towers, PropagationConfig{}, 99);
  const CellScanner scanner;
  Rng scan_rng(3);
  ScanStats total{};
  for (int s = 0; s < 20; ++s) {
    ScanStats stats;
    const Point p{scan_rng.uniform(0.0, 7000.0), scan_rng.uniform(0.0, 4000.0)};
    (void)scanner.scan(env, p, scan_rng, false, &stats);
    total.merge(stats);
  }
  EXPECT_LT(total.reach_candidates, total.towers_considered);
  // The per-tower RSS upper bound is the big lever: only towers near the
  // phone ever get a temporal deviate drawn.
  EXPECT_LT(total.towers_accepted, total.towers_considered / 4);
}

// --------------------------------------------------- Goertzel bank identity

TEST(GoertzelBank, MatchesScalarGoertzelWithinTolerance) {
  Rng rng(21);
  const double fs = 8000.0;
  const std::vector<double> tones{700.0, 1000.0, 2400.0, 3000.0, 3900.0};
  GoertzelBank bank(fs, tones);
  ASSERT_EQ(bank.size(), tones.size());
  std::vector<double> powers(tones.size());
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(16, 1024));
    std::vector<float> frame(n);
    const double f0 = rng.uniform(100.0, 3900.0);
    for (std::size_t i = 0; i < n; ++i) {
      frame[i] = static_cast<float>(
          rng.normal(0.0, 0.1) +
          0.4 * std::sin(2.0 * std::numbers::pi * f0 * i / fs));
    }
    const double energy = bank.analyze(frame, powers);
    double want_energy = 0.0;
    for (float s : frame) want_energy += static_cast<double>(s) * s;
    want_energy /= static_cast<double>(n);
    EXPECT_NEAR(energy, want_energy, 1e-12 * std::abs(want_energy));
    for (std::size_t k = 0; k < tones.size(); ++k) {
      const double want = goertzel_power(frame, fs, tones[k]);
      EXPECT_NEAR(powers[k], want, 1e-12 * std::max(1.0, std::abs(want)))
          << "tone " << tones[k] << " trial " << trial;
    }
  }
}

TEST(GoertzelBank, ReusableAcrossFrames) {
  const double fs = 8000.0;
  const std::vector<double> tones{1000.0, 3000.0};
  GoertzelBank bank(fs, tones);
  std::vector<double> first(2), again(2);
  std::vector<float> frame(240);
  for (std::size_t i = 0; i < frame.size(); ++i) {
    frame[i] =
        static_cast<float>(std::sin(2.0 * std::numbers::pi * 1000.0 * i / fs));
  }
  bank.analyze(frame, first);
  std::vector<float> other(100, 0.25f);
  bank.analyze(other, again);  // state must reset between frames
  bank.analyze(frame, again);
  EXPECT_EQ(first[0], again[0]);
  EXPECT_EQ(first[1], again[1]);
}

// ------------------------------------------------------ ring-buffer window

TEST(RingWindow, MatchesBruteForceStatsOverAStream) {
  Rng rng(31);
  RingWindow win(7);
  std::vector<double> history;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    win.push(x);
    history.push_back(x);
    const std::size_t n = std::min<std::size_t>(7, history.size());
    double mean = 0.0;
    for (std::size_t k = history.size() - n; k < history.size(); ++k) {
      mean += history[k];
    }
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t k = history.size() - n; k < history.size(); ++k) {
      var += (history[k] - mean) * (history[k] - mean);
    }
    var /= static_cast<double>(n);
    ASSERT_EQ(win.size(), n);
    EXPECT_NEAR(win.mean(), mean, 1e-9);
    EXPECT_NEAR(win.variance(), var, 1e-9);
  }
  win.clear();
  EXPECT_EQ(win.size(), 0u);
  EXPECT_EQ(win.mean(), 0.0);
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reusable for several jobs, including empty and single-element ones.
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
  std::atomic<int> one{0};
  pool.parallel_for(1, [&](std::size_t) { one.fetch_add(1); });
  EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPool, BackToBackJobsNeverLoseWork) {
  // Regression: a straggler still draining job N's claim loop must not be
  // able to swallow an index of job N+1 (small n keeps that window wide).
  ThreadPool pool(4);
  for (int round = 0; round < 2000; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 3) << "round " << round;
  }
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i % 7 == 3) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives and keeps working after a throwing job.
  std::atomic<int> count{0};
  pool.parallel_for(32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

// --------------------------------------- parallel trip driver determinism

void expect_trips_identical(const std::vector<AnnotatedTrip>& a,
                            const std::vector<AnnotatedTrip>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].upload.samples.size(), b[i].upload.samples.size()) << i;
    for (std::size_t s = 0; s < a[i].upload.samples.size(); ++s) {
      EXPECT_EQ(a[i].upload.samples[s].time, b[i].upload.samples[s].time);
      EXPECT_EQ(a[i].upload.samples[s].fingerprint.cells,
                b[i].upload.samples[s].fingerprint.cells);
    }
    EXPECT_EQ(a[i].truth.route_id, b[i].truth.route_id);
    EXPECT_EQ(a[i].truth.sample_stops, b[i].truth.sample_stops);
  }
}

TEST(ParallelTrips, BitIdenticalAtAnyThreadCount) {
  WorldConfig cfg;
  cfg.city.route_names = {"79", "243", "99"};
  cfg.city.width_m = 5000.0;
  cfg.city.height_m = 3000.0;
  cfg.seed = 77;
  const World world(cfg);
  const auto specs = world.make_trip_specs(0, 24, 2026);
  ASSERT_EQ(specs.size(), 24u);
  for (const World::TripSpec& spec : specs) {
    EXPECT_NE(spec.route, kInvalidRoute);
    EXPECT_LT(spec.board, spec.alight);
  }

  const auto serial = world.simulate_trips(specs, 555, nullptr);
  int with_samples = 0;
  for (const AnnotatedTrip& t : serial) with_samples += !t.upload.empty();
  EXPECT_GE(with_samples, 16);  // the workload is not degenerate

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const auto parallel = world.simulate_trips(specs, 555, &pool);
    expect_trips_identical(serial, parallel);
  }
}

TEST(ParallelTrips, SpecStreamsAreOrderIndependent) {
  WorldConfig cfg;
  cfg.city.route_names = {"79", "243"};
  cfg.city.width_m = 4000.0;
  cfg.city.height_m = 2500.0;
  const World world(cfg);
  // A prefix of a longer workload is the same workload: spec i depends only
  // on (seed, i).
  const auto small = world.make_trip_specs(0, 8, 99);
  const auto large = world.make_trip_specs(0, 32, 99);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].route, large[i].route);
    EXPECT_EQ(small[i].board, large[i].board);
    EXPECT_EQ(small[i].alight, large[i].alight);
    EXPECT_EQ(small[i].depart, large[i].depart);
  }
}

// ----------------------------------------- audio chain through the pool

TEST(ParallelAudio, DetectorChainsAreIndependentAcrossThreads) {
  // Several rides' cabin audio analysed concurrently (one detector each)
  // must reproduce the serial event streams exactly.
  constexpr int kRides = 6;
  std::vector<std::vector<float>> audio(kRides);
  for (int r = 0; r < kRides; ++r) {
    Rng rng(100 + r);
    audio[static_cast<std::size_t>(r)] = synthesize_bus_audio(
        AudioEnvironmentConfig{}, 6.0, {1.0, 2.5, 4.0 + 0.2 * r}, rng);
  }
  std::vector<std::vector<BeepEvent>> serial(kRides), parallel(kRides);
  for (int r = 0; r < kRides; ++r) {
    BeepDetector detector;
    serial[static_cast<std::size_t>(r)] =
        detector.process(audio[static_cast<std::size_t>(r)]);
  }
  ThreadPool pool(4);
  pool.parallel_for(kRides, [&](std::size_t r) {
    BeepDetector detector;
    parallel[r] = detector.process(audio[r]);
  });
  for (int r = 0; r < kRides; ++r) {
    const auto& a = serial[static_cast<std::size_t>(r)];
    const auto& b = parallel[static_cast<std::size_t>(r)];
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GE(a.size(), 3u);
    for (std::size_t e = 0; e < a.size(); ++e) {
      EXPECT_EQ(a[e].time, b[e].time);
      EXPECT_EQ(a[e].strength, b[e].strength);
    }
  }
}

}  // namespace
}  // namespace bussense
