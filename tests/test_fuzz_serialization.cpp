// Deterministic fuzz suite for the serialization loaders.
//
// The loaders parse attacker-controlled bytes (uploads cross a network in a
// real deployment), so the contract in core/serialization.h is fuzz-shaped:
// for ANY input, load_trips / load_stop_database either
//
//   (a) throws std::runtime_error, or
//   (b) returns a value that re-serialises to a loadable FIXED-POINT
//       document (save → load → save reproduces the same bytes),
//
// and never crashes, hangs, corrupts memory or throws anything else. The
// fuzzer below drives ≥ 10k seeded mutations of valid corpora through that
// contract; scripts/tier1.sh re-runs it under ASan/UBSan (BUSSENSE_FAULTS=ON)
// so "no UB" is checked by the sanitizers, not by luck. Directed regressions
// at the end pin the hostile inputs that motivated the bounds (count-field
// overcommit, non-finite times, fingerprint bombs, trailing-junk numbers).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/serialization.h"
#include "core/stop_database.h"

namespace bussense {
namespace {

constexpr int kMutationsPerLoader = 6000;  // 12k total, ≥ 10k required

// ------------------------------------------------------------------ corpora

std::string trips_corpus() {
  std::vector<TripUpload> trips;
  Rng rng(4242);
  for (int t = 0; t < 14; ++t) {
    TripUpload trip;
    trip.participant_id = t * 3 - 5;  // include negative ids
    const int samples = rng.uniform_int(0, 9);
    double time = rng.uniform(0.0, 86400.0);
    for (int s = 0; s < samples; ++s) {
      time += rng.uniform(1.0, 30.0);
      CellularSample sample;
      sample.time = time;
      if (rng.bernoulli(0.9)) {  // leave some fingerprints empty ("-")
        const int cells = rng.uniform_int(1, 6);
        for (int c = 0; c < cells; ++c) {
          sample.fingerprint.cells.push_back(rng.uniform_int(1, 4000));
        }
      }
      trip.samples.push_back(std::move(sample));
    }
    trips.push_back(std::move(trip));
  }
  std::stringstream ss;
  save_trips(trips, ss);
  return ss.str();
}

std::string stopdb_corpus() {
  StopDatabase db;
  Rng rng(1717);
  for (int s = 0; s < 40; ++s) {
    Fingerprint fp;
    const int cells = rng.uniform_int(0, 7);
    for (int c = 0; c < cells; ++c) {
      fp.cells.push_back(rng.uniform_int(1, 4000));
    }
    db.add(s, fp);
  }
  std::stringstream ss;
  save_stop_database(db, ss);
  return ss.str();
}

// ----------------------------------------------------------------- mutator

std::vector<std::string> split_lines(const std::string& doc) {
  std::vector<std::string> lines;
  std::string line;
  std::stringstream ss(doc);
  while (std::getline(ss, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string doc;
  for (const std::string& line : lines) {
    doc += line;
    doc += '\n';
  }
  return doc;
}

char random_byte(Rng& rng) {
  static const std::string pool =
      "0123456789-,.eE+ \t\nstopsampletripv#xyz\x01\x7f";
  return pool[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(pool.size()) - 1))];
}

std::string mutate(std::string doc, Rng& rng) {
  static const std::vector<std::string> hostile_tokens = {
      "-5",
      "99999999999999",
      "18446744073709551616",
      "nan",
      "inf",
      "-inf",
      "1e999",
      "12x",
      "1,,2",
      "-",
      "",
      "0x10",
      "2147483648",
      "trip 0 1048577",
      "stop -2 1,2",
  };
  const int edits = rng.uniform_int(1, 4);
  for (int e = 0; e < edits; ++e) {
    if (doc.empty()) doc = "x";
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(doc.size()) - 1));
    switch (rng.uniform_int(0, 7)) {
      case 0:  // flip one byte
        doc[pos] = random_byte(rng);
        break;
      case 1:  // insert one byte
        doc.insert(doc.begin() + static_cast<std::ptrdiff_t>(pos),
                   random_byte(rng));
        break;
      case 2:  // delete one byte
        doc.erase(pos, 1);
        break;
      case 3:  // truncate (simulated cut-off upload)
        doc.resize(pos);
        break;
      case 4: {  // duplicate a line
        auto lines = split_lines(doc);
        if (lines.empty()) break;
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(lines.size()) - 1));
        lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                     lines[at]);
        doc = join_lines(lines);
        break;
      }
      case 5: {  // delete a line
        auto lines = split_lines(doc);
        if (lines.empty()) break;
        lines.erase(lines.begin() +
                    rng.uniform_int(0, static_cast<int>(lines.size()) - 1));
        doc = join_lines(lines);
        break;
      }
      case 6: {  // swap two lines (field/record reordering)
        auto lines = split_lines(doc);
        if (lines.size() < 2) break;
        const int a = rng.uniform_int(0, static_cast<int>(lines.size()) - 1);
        const int b = rng.uniform_int(0, static_cast<int>(lines.size()) - 1);
        std::swap(lines[static_cast<std::size_t>(a)],
                  lines[static_cast<std::size_t>(b)]);
        doc = join_lines(lines);
        break;
      }
      default: {  // splice in a hostile token
        const auto& token = hostile_tokens[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(hostile_tokens.size()) - 1))];
        doc.insert(pos, token);
        break;
      }
    }
  }
  return doc;
}

// ---------------------------------------------------------------- contract

bool times_close(double a, double b) {
  // One save/load cycle may round a full-precision double to the stream's
  // 6 significant digits; after that the text is a fixed point.
  return std::abs(a - b) <= 1e-5 * std::max(1.0, std::abs(a));
}

void check_trips_contract(const std::string& doc) {
  std::vector<TripUpload> first;
  try {
    std::stringstream is(doc);
    first = load_trips(is);
  } catch (const std::runtime_error&) {
    return;  // typed rejection is the other valid outcome
  } catch (const std::exception& e) {
    ADD_FAILURE() << "load_trips threw a non-contract exception: " << e.what()
                  << "\ninput:\n"
                  << doc;
    return;
  }
  std::stringstream out1;
  save_trips(first, out1);
  const std::string text = out1.str();
  std::vector<TripUpload> second;
  try {
    std::stringstream is(text);
    second = load_trips(is);
  } catch (const std::exception& e) {
    ADD_FAILURE() << "accepted value failed to reload: " << e.what()
                  << "\nreserialised:\n"
                  << text << "\noriginal input:\n"
                  << doc;
    return;
  }
  std::stringstream out2;
  save_trips(second, out2);
  EXPECT_EQ(text, out2.str()) << "re-serialisation is not a fixed point";
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t t = 0; t < first.size(); ++t) {
    EXPECT_EQ(second[t].participant_id, first[t].participant_id);
    ASSERT_EQ(second[t].samples.size(), first[t].samples.size());
    for (std::size_t s = 0; s < first[t].samples.size(); ++s) {
      EXPECT_EQ(second[t].samples[s].fingerprint,
                first[t].samples[s].fingerprint);
      EXPECT_TRUE(
          times_close(second[t].samples[s].time, first[t].samples[s].time))
          << second[t].samples[s].time << " vs " << first[t].samples[s].time;
    }
  }
}

void check_stopdb_contract(const std::string& doc) {
  StopDatabase first;
  try {
    std::stringstream is(doc);
    first = load_stop_database(is);
  } catch (const std::runtime_error&) {
    return;
  } catch (const std::exception& e) {
    ADD_FAILURE() << "load_stop_database threw a non-contract exception: "
                  << e.what() << "\ninput:\n"
                  << doc;
    return;
  }
  std::stringstream out1;
  save_stop_database(first, out1);
  const std::string text = out1.str();
  StopDatabase second;
  try {
    std::stringstream is(text);
    second = load_stop_database(is);
  } catch (const std::exception& e) {
    ADD_FAILURE() << "accepted database failed to reload: " << e.what()
                  << "\nreserialised:\n"
                  << text << "\noriginal input:\n"
                  << doc;
    return;
  }
  // Stop ids and cell ids are integers: the round trip must be exact.
  std::stringstream out2;
  save_stop_database(second, out2);
  EXPECT_EQ(text, out2.str());
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.records().size(); ++i) {
    EXPECT_EQ(second.records()[i].stop, first.records()[i].stop);
    EXPECT_EQ(second.records()[i].fingerprint, first.records()[i].fingerprint);
  }
}

// -------------------------------------------------------------------- fuzz

TEST(FuzzSerialization, CorporaRoundTripUnmutated) {
  check_trips_contract(trips_corpus());
  check_stopdb_contract(stopdb_corpus());
  // And the corpora are actually accepted, not rejected.
  std::stringstream trips_in(trips_corpus());
  EXPECT_EQ(load_trips(trips_in).size(), 14u);
  std::stringstream db_in(stopdb_corpus());
  EXPECT_EQ(load_stop_database(db_in).size(), 40u);
}

TEST(FuzzSerialization, TripsLoaderSurvivesMutations) {
  const std::string corpus = trips_corpus();
  for (int i = 0; i < kMutationsPerLoader; ++i) {
    Rng rng = Rng::stream(0xf022eull, static_cast<std::uint64_t>(i));
    const std::string doc = mutate(corpus, rng);
    check_trips_contract(doc);
    if (HasFatalFailure()) {
      ADD_FAILURE() << "mutation index " << i;
      return;
    }
  }
}

TEST(FuzzSerialization, StopDatabaseLoaderSurvivesMutations) {
  const std::string corpus = stopdb_corpus();
  for (int i = 0; i < kMutationsPerLoader; ++i) {
    Rng rng = Rng::stream(0x5700dbull, static_cast<std::uint64_t>(i));
    const std::string doc = mutate(corpus, rng);
    check_stopdb_contract(doc);
    if (HasFatalFailure()) {
      ADD_FAILURE() << "mutation index " << i;
      return;
    }
  }
}

TEST(FuzzSerialization, MutationsAreDeterministic) {
  const std::string corpus = trips_corpus();
  for (int i : {0, 17, 4999}) {
    Rng a = Rng::stream(0xf022eull, static_cast<std::uint64_t>(i));
    Rng b = Rng::stream(0xf022eull, static_cast<std::uint64_t>(i));
    EXPECT_EQ(mutate(corpus, a), mutate(corpus, b));
  }
}

// ------------------------------------------------------ directed regressions

TEST(FuzzSerialization, RejectsHostileSampleCounts) {
  // The count field is attacker-controlled; before the bound this was an
  // overcommit allocation (reserve(9e13)) with no bytes behind it.
  std::stringstream huge("bussense-trips v1\ntrip 0 99999999999999\n");
  EXPECT_THROW(load_trips(huge), std::runtime_error);
  std::stringstream negative("bussense-trips v1\ntrip 0 -5\n");
  EXPECT_THROW(load_trips(negative), std::runtime_error);
  std::stringstream overflow("bussense-trips v1\ntrip 0 18446744073709551616\n");
  EXPECT_THROW(load_trips(overflow), std::runtime_error);
  // Just over the documented 2^20 bound, with no sample lines to back it.
  std::stringstream bound("bussense-trips v1\ntrip 0 1048577\n");
  EXPECT_THROW(load_trips(bound), std::runtime_error);
}

TEST(FuzzSerialization, RejectsNonFiniteTimes) {
  for (const char* bad : {"nan", "inf", "-inf", "1e999"}) {
    std::stringstream is(std::string("bussense-trips v1\ntrip 0 1\nsample ") +
                         bad + " 1,2\n");
    EXPECT_THROW(load_trips(is), std::runtime_error) << bad;
  }
}

TEST(FuzzSerialization, RejectsFingerprintBombs) {
  std::string cells = "1";
  for (int i = 0; i < 5000; ++i) cells += ",1";
  std::stringstream db("bussense-stopdb v1\nstop 1 " + cells + "\n");
  EXPECT_THROW(load_stop_database(db), std::runtime_error);
  std::stringstream trips("bussense-trips v1\ntrip 0 1\nsample 1.0 " + cells +
                          "\n");
  EXPECT_THROW(load_trips(trips), std::runtime_error);
}

TEST(FuzzSerialization, RejectsBadStopIds) {
  std::stringstream negative("bussense-stopdb v1\nstop -2 1,2\n");
  EXPECT_THROW(load_stop_database(negative), std::runtime_error);
  std::stringstream huge("bussense-stopdb v1\nstop 99999999999 1\n");
  EXPECT_THROW(load_stop_database(huge), std::runtime_error);
}

TEST(FuzzSerialization, RejectsPartiallyNumericCellIds) {
  // stol("12x") happily parses 12 and stops; the loader must not.
  std::stringstream db("bussense-stopdb v1\nstop 1 12x\n");
  EXPECT_THROW(load_stop_database(db), std::runtime_error);
  std::stringstream gap("bussense-stopdb v1\nstop 1 1,,2\n");
  EXPECT_THROW(load_stop_database(gap), std::runtime_error);
  std::stringstream trips("bussense-trips v1\ntrip 0 1\nsample 1.0 3,4x\n");
  EXPECT_THROW(load_trips(trips), std::runtime_error);
}

TEST(FuzzSerialization, RejectsTruncatedAndMisframedDocuments) {
  std::stringstream truncated("bussense-trips v1\ntrip 1 2\nsample 1.0 5\n");
  EXPECT_THROW(load_trips(truncated), std::runtime_error);
  std::stringstream orphan("bussense-trips v1\nsample 1.0 5\n");
  EXPECT_THROW(load_trips(orphan), std::runtime_error);
  std::stringstream no_header("trip 0 0\n");
  EXPECT_THROW(load_trips(no_header), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW(load_trips(empty), std::runtime_error);
  std::stringstream empty_db("");
  EXPECT_THROW(load_stop_database(empty_db), std::runtime_error);
}

}  // namespace
}  // namespace bussense
