// Unit tests for the traffic simulation substrate: ground-truth field,
// demand, bus kinematics, taxi feed, world orchestration.
#include <gtest/gtest.h>

#include <map>

#include "citynet/city_generator.h"
#include "common/stats.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

const City& test_city() {
  static const City city = generate_city();
  return city;
}

const TrafficField& test_field() {
  static const TrafficField field(test_city().network(), TrafficFieldConfig{},
                                  77);
  return field;
}

// The full default world is expensive to build; share one across tests.
const World& test_world() {
  static const World world{};
  return world;
}

// ----------------------------------------------------------- traffic field

TEST(TrafficField, CongestionWithinBounds) {
  const auto& field = test_field();
  for (SegmentId link : {0, 10, 50, 100}) {
    for (double h = 0.0; h < 24.0; h += 0.25) {
      const double c = field.congestion(link, h * kHour);
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, TrafficFieldConfig{}.max_congestion);
    }
  }
}

TEST(TrafficField, SpeedNeverExceedsFreeSpeed) {
  const auto& field = test_field();
  for (SegmentId link = 0; link < static_cast<SegmentId>(test_city().network().size());
       link += 7) {
    const double free = test_city().network().link(link).free_speed_kmh;
    for (double h = 6.0; h < 22.0; h += 1.0) {
      EXPECT_LE(field.car_speed_kmh(link, h * kHour), free + 1e-9);
      EXPECT_GT(field.car_speed_kmh(link, h * kHour), 0.0);
    }
  }
}

TEST(TrafficField, MorningPeakSlowerThanMidday) {
  const auto& field = test_field();
  // Average across many links: peak-hour speeds are systematically lower.
  double peak = 0.0, midday = 0.0;
  int n = 0;
  for (SegmentId link = 0; link < 200; link += 3) {
    peak += field.car_speed_kmh(link, at_clock(0, 8, 24));
    midday += field.car_speed_kmh(link, at_clock(0, 12, 30));
    ++n;
  }
  EXPECT_LT(peak / n + 5.0, midday / n);
}

TEST(TrafficField, CommuterCorridorCongestsHardInTheMorning) {
  const auto& field = test_field();
  const auto& net = test_city().network();
  double corridor = 0.0, other = 0.0;
  int nc = 0, no = 0;
  for (const RoadLink& link : net.links()) {
    const double c = field.congestion(link.id, at_clock(0, 8, 24));
    if (link.commuter_corridor) {
      corridor += c;
      ++nc;
    } else {
      other += c;
      ++no;
    }
  }
  ASSERT_GT(nc, 0);
  EXPECT_GT(corridor / nc, other / no + 0.2);
}

TEST(TrafficField, MeanCarSpeedIsHarmonic) {
  const auto& field = test_field();
  const BusRoute& route = test_city().routes()[0];
  const double v = field.mean_car_speed_kmh(route, 0.0, 1000.0, at_clock(0, 12, 0));
  EXPECT_GT(v, 5.0);
  EXPECT_LT(v, 65.0);
}

TEST(TrafficField, DeterministicGivenSeed) {
  const TrafficField f1(test_city().network(), TrafficFieldConfig{}, 42);
  const TrafficField f2(test_city().network(), TrafficFieldConfig{}, 42);
  EXPECT_DOUBLE_EQ(f1.car_speed_kmh(5, 12345.0), f2.car_speed_kmh(5, 12345.0));
}

// ------------------------------------------------------------------ demand

TEST(DemandModel, TimeFactorPeaksAtCommuteHours) {
  const DemandModel demand(DemandConfig{}, 10, 1);
  const double morning = demand.time_factor(at_clock(0, 8, 18));
  const double noon = demand.time_factor(at_clock(0, 13, 0));
  const double night = demand.time_factor(at_clock(0, 2, 0));
  EXPECT_GT(morning, 1.8 * noon);
  EXPECT_LT(night, 0.5 * noon);
}

TEST(DemandModel, BoardingRateScalesWithWindow) {
  const DemandModel demand(DemandConfig{}, 10, 2);
  Rng rng(3);
  RunningStats s5, s10;
  for (int i = 0; i < 3000; ++i) {
    s5.add(demand.draw_boarders(3, at_clock(0, 12, 0), 300.0, rng));
    s10.add(demand.draw_boarders(3, at_clock(0, 12, 0), 600.0, rng));
  }
  EXPECT_NEAR(s10.mean() / std::max(s5.mean(), 1e-9), 2.0, 0.25);
}

TEST(DemandModel, ZeroWindowMeansNoBoarders) {
  const DemandModel demand(DemandConfig{}, 10, 2);
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(demand.draw_boarders(0, at_clock(0, 8, 0), 0.0, rng), 0);
  }
}

TEST(DemandModel, PopularityVariesAcrossStopsDeterministically) {
  const DemandModel d1(DemandConfig{}, 50, 9);
  const DemandModel d2(DemandConfig{}, 50, 9);
  bool varies = false;
  for (StopId s = 0; s < 50; ++s) {
    EXPECT_DOUBLE_EQ(d1.boarding_rate_per_s(s, at_clock(0, 12, 0)),
                     d2.boarding_rate_per_s(s, at_clock(0, 12, 0)));
    varies = varies || d1.boarding_rate_per_s(s, at_clock(0, 12, 0)) !=
                           d1.boarding_rate_per_s(0, at_clock(0, 12, 0));
  }
  EXPECT_TRUE(varies);
}

// ----------------------------------------------------------------- bus sim

struct RunFixture {
  const World& world = test_world();
  const BusRoute& route = *world.city().route_by_name("79", 0);
  Rng rng{55};
  BusRun run = world.buses().simulate_run(route, at_clock(0, 9, 0),
                                          {{2, 1}}, {{8, 1}}, 600.0, rng,
                                          /*record_trajectory=*/true);
};

TEST(BusSim, VisitsEveryStopInOrder) {
  RunFixture f;
  ASSERT_EQ(f.run.visits.size(), f.route.stop_count());
  for (std::size_t i = 0; i < f.run.visits.size(); ++i) {
    EXPECT_EQ(f.run.visits[i].stop_index, static_cast<int>(i));
    EXPECT_EQ(f.run.visits[i].stop, f.route.stops()[i].stop);
    if (i > 0) {
      EXPECT_GE(f.run.visits[i].arrival, f.run.visits[i - 1].departure);
    }
    EXPECT_GE(f.run.visits[i].departure, f.run.visits[i].arrival);
  }
  EXPECT_GE(f.run.end_time, f.run.visits.back().departure);
}

TEST(BusSim, ExtraBoardersForceService) {
  RunFixture f;
  EXPECT_TRUE(f.run.visits[2].served);
  EXPECT_GE(f.run.visits[2].boarders, 1);
  EXPECT_TRUE(f.run.visits[8].served);
  EXPECT_GE(f.run.visits[8].alighters, 1);
}

TEST(BusSim, ServedStopsHaveTapsMatchingCounts) {
  RunFixture f;
  for (const StopVisit& v : f.run.visits) {
    if (v.served) {
      EXPECT_EQ(static_cast<int>(v.taps.size()), v.boarders + v.alighters);
      for (const TapEvent& tap : v.taps) {
        EXPECT_GE(tap.time, v.arrival);
        EXPECT_LE(tap.time, v.departure + 0.5);
      }
    } else {
      EXPECT_TRUE(v.taps.empty());
      EXPECT_EQ(v.boarders, 0);
      EXPECT_EQ(v.alighters, 0);
      EXPECT_DOUBLE_EQ(v.arrival, v.departure);
    }
  }
}

TEST(BusSim, DwellGrowsWithPassengerCount) {
  RunFixture f;
  const World& world = f.world;
  Rng rng(66);
  const BusRun busy = world.buses().simulate_run(
      f.route, at_clock(0, 9, 0), {{2, 12}}, {}, 600.0, rng);
  const StopVisit& v = busy.visits[2];
  EXPECT_GT(v.departure - v.arrival,
            world.buses().config().base_dwell_s + 10.0);
}

TEST(BusSim, TrajectoryIsMonotone) {
  RunFixture f;
  ASSERT_GT(f.run.trajectory.size(), 10u);
  for (std::size_t i = 1; i < f.run.trajectory.size(); ++i) {
    EXPECT_GE(f.run.trajectory[i].time, f.run.trajectory[i - 1].time);
    EXPECT_GE(f.run.trajectory[i].arc, f.run.trajectory[i - 1].arc);
  }
  // The run ends at the final stop (not the path end); allow one dt of
  // integration overshoot.
  EXPECT_NEAR(f.run.trajectory.back().arc,
              f.route.stop_arc(static_cast<int>(f.route.stop_count()) - 1),
              9.0);
}

TEST(BusSim, ArcAtInterpolates) {
  RunFixture f;
  const StopVisit& v = f.run.visits[5];
  // While dwelling at a served stop the bus sits at the stop arc.
  if (v.served) {
    EXPECT_NEAR(f.run.arc_at(0.5 * (v.arrival + v.departure)),
                f.route.stop_arc(5), 3.0);
  }
  EXPECT_DOUBLE_EQ(f.run.arc_at(f.run.depart_time - 100.0),
                   f.run.trajectory.front().arc);
  EXPECT_DOUBLE_EQ(f.run.arc_at(f.run.end_time + 100.0),
                   f.run.trajectory.back().arc);
}

TEST(BusSim, ArcAtWithoutTrajectoryThrows) {
  RunFixture f;
  BusRun bare;
  EXPECT_THROW(bare.arc_at(0.0), std::logic_error);
}

TEST(BusSim, PeakRunsAreSlowerThanOffPeak) {
  const World& world = test_world();
  const BusRoute& route = *world.city().route_by_name("243", 0);
  Rng rng(77);
  const BusRun peak =
      world.buses().simulate_run(route, at_clock(0, 8, 0), {}, {}, 600.0, rng);
  const BusRun off =
      world.buses().simulate_run(route, at_clock(0, 13, 0), {}, {}, 600.0, rng);
  EXPECT_GT(peak.end_time - peak.depart_time,
            1.1 * (off.end_time - off.depart_time));
}

// --------------------------------------------------------------- taxi feed

TEST(TaxiFeed, DeterministicWithinWindow) {
  const World& world = test_world();
  const double v1 = world.taxis().official_speed_kmh(10, at_clock(0, 12, 1));
  const double v2 = world.taxis().official_speed_kmh(10, at_clock(0, 12, 4));
  EXPECT_DOUBLE_EQ(v1, v2);  // same 5-minute window
  const double v3 = world.taxis().official_speed_kmh(10, at_clock(0, 12, 6));
  EXPECT_NE(v1, v3);  // adjacent window re-draws noise
}

TEST(TaxiFeed, TracksGroundTruthClosely) {
  const World& world = test_world();
  RunningStats err;
  for (SegmentId link = 0; link < 200; link += 5) {
    for (int h = 7; h < 20; ++h) {
      const SimTime t = at_clock(0, h, 2);
      const double truth = world.traffic().car_speed_kmh(link, t + 148.0);
      const double taxi = world.taxis().official_speed_kmh(link, t);
      err.add(std::abs(taxi - truth));
    }
  }
  EXPECT_LT(err.mean(), 5.0);
}

TEST(TaxiFeed, AggressiveAboveKneeOnly) {
  const World& world = test_world();
  // At congested times taxi ~= car; at free flow taxi exceeds car.
  double low_bias = 0.0, high_bias = 0.0;
  int nl = 0, nh = 0;
  for (SegmentId link = 0; link < 240; ++link) {
    for (int h = 7; h < 21; ++h) {
      const SimTime t = at_clock(0, h, 2);
      const double car = world.traffic().car_speed_kmh(link, t + 148.0);
      const double taxi = world.taxis().official_speed_kmh(link, t);
      if (car < 30.0) {
        low_bias += taxi - car;
        ++nl;
      } else if (car > 52.0) {
        high_bias += taxi - car;
        ++nh;
      }
    }
  }
  ASSERT_GT(nl, 10);
  ASSERT_GT(nh, 10);
  EXPECT_LT(std::abs(low_bias / nl), 1.0);
  EXPECT_GT(high_bias / nh, 2.0);
}

TEST(TaxiFeed, SpeedOverSpanPositive) {
  const World& world = test_world();
  const BusRoute& route = world.city().routes()[0];
  const double v =
      world.taxis().official_speed_over(route, 100.0, 900.0, at_clock(0, 10, 0));
  EXPECT_GT(v, 5.0);
  EXPECT_LT(v, 80.0);
}

// ------------------------------------------------------------------- world

TEST(World, SingleTripProducesAlignedGroundTruth) {
  const World& world = test_world();
  const BusRoute& route = *world.city().route_by_name("99", 0);
  Rng rng(88);
  const AnnotatedTrip trip =
      world.simulate_single_trip(route, 2, 12, at_clock(0, 10, 0), rng);
  ASSERT_FALSE(trip.upload.empty());
  EXPECT_EQ(trip.upload.samples.size(), trip.truth.sample_stops.size());
  EXPECT_EQ(trip.truth.route_id, route.id());
  // Sample times strictly increasing; true stops follow route order.
  for (std::size_t i = 1; i < trip.upload.samples.size(); ++i) {
    EXPECT_GT(trip.upload.samples[i].time, trip.upload.samples[i - 1].time);
  }
  int last_index = -1;
  for (StopId s : trip.truth.sample_stops) {
    if (s == kInvalidStop) continue;  // spurious beep
    const auto idx = route.stop_index(s);
    ASSERT_TRUE(idx.has_value());
    EXPECT_GE(*idx, last_index);
    last_index = *idx;
  }
}

TEST(World, SimulateDayProducesRunsAndTrips) {
  const World& world = test_world();
  Rng rng(99);
  const auto day = world.simulate_day(0, 1.0, rng);
  EXPECT_GT(day.runs.size(), 500u);   // 16 routes, ~14.5 h service, 10 min headway
  EXPECT_GT(day.trips.size(), 30u);   // 22 participants x ~4 trips, some lost
  for (const AnnotatedTrip& trip : day.trips) {
    EXPECT_GE(trip.upload.samples.size(), 2u);
    EXPECT_EQ(trip.upload.samples.size(), trip.truth.sample_stops.size());
  }
}

TEST(World, IntensityScalesTripCount) {
  const World& world = test_world();
  Rng rng1(100), rng2(100);
  const auto normal = world.simulate_day(0, 1.0, rng1);
  const auto intensive = world.simulate_day(0, 3.0, rng2);
  EXPECT_GT(intensive.trips.size(), 2.0 * normal.trips.size());
}

TEST(World, GpsTraceCoversRun) {
  const World& world = test_world();
  const BusRoute& route = *world.city().route_by_name("31", 0);
  Rng rng(101);
  const BusRun run =
      world.buses().simulate_run(route, at_clock(0, 11, 0), {}, {}, 600.0,
                                 rng, /*record_trajectory=*/true);
  const auto fixes = world.gps_trace(run, 2.0, rng);
  EXPECT_GT(fixes.size(), 100u);
  EXPECT_NEAR(fixes.front().first, run.depart_time, 2.0);
  // Urban-canyon errors: fixes scatter around the path by tens of metres.
  RunningStats err;
  for (const auto& [t, fix] : fixes) {
    err.add(distance(fix, route.path().point_at(run.arc_at(t))));
  }
  EXPECT_GT(err.mean(), 30.0);
  EXPECT_LT(err.mean(), 150.0);
}

TEST(World, ScanStopInBusDiffersFromKerbOccasionally) {
  const World& world = test_world();
  Rng rng(102);
  const StopId stop = world.city().routes()[0].stops()[3].stop;
  const Fingerprint kerb = world.scan_stop(stop, rng, false);
  EXPECT_FALSE(kerb.empty());
  EXPECT_LE(kerb.size(), 7u);
}

}  // namespace
}  // namespace bussense
