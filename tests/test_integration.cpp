// Integration tests: the full simulated world driving the full backend
// pipeline, ablation orderings, determinism.
#include <gtest/gtest.h>

#include <map>

#include "common/stats.h"
#include "core/gps_tracker.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

// A shared world + surveyed database (expensive to build).
struct Testbed {
  World world;
  StopDatabase database;

  Testbed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
  }
};

const Testbed& testbed() {
  static const Testbed bed;
  return bed;
}

// Fraction of clusters whose mapped stop equals the majority ground truth of
// its member samples.
double mapping_accuracy(const World& world, const TrafficServer& server,
                        const std::vector<AnnotatedTrip>& trips) {
  int total = 0, correct = 0;
  for (const AnnotatedTrip& trip : trips) {
    std::size_t rejected = 0;
    const auto matched = server.match_samples(trip.upload, &rejected);
    // Align matched samples back to truth indices by timestamp.
    std::map<double, StopId> truth_by_time;
    for (std::size_t i = 0; i < trip.upload.samples.size(); ++i) {
      truth_by_time[trip.upload.samples[i].time] = trip.truth.sample_stops[i];
    }
    const auto clusters = server.cluster_samples(matched);
    const MappedTrip mapped = server.map_trip(clusters);
    for (const MappedCluster& mc : mapped.stops) {
      std::map<StopId, int> votes;
      for (const MatchedSample& m : mc.cluster.members) {
        ++votes[truth_by_time.at(m.sample.time)];
      }
      StopId majority = kInvalidStop;
      int best = 0;
      for (const auto& [stop, count] : votes) {
        if (count > best) {
          best = count;
          majority = stop;
        }
      }
      if (majority == kInvalidStop) continue;  // spurious-dominated cluster
      ++total;
      if (mc.stop == world.city().effective_stop(majority)) ++correct;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

TEST(Integration, SingleTripMapsToTrueStops) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  const BusRoute& route = *bed.world.city().route_by_name("243", 0);
  Rng rng(1);
  const AnnotatedTrip trip =
      bed.world.simulate_single_trip(route, 3, 15, at_clock(0, 8, 0), rng);
  ASSERT_GT(trip.upload.samples.size(), 10u);
  const double acc = mapping_accuracy(bed.world, server, {trip});
  EXPECT_GT(acc, 0.9);
}

TEST(Integration, EstimatesTrackGroundTruthOnCongestedRoute) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  const BusRoute& route = *bed.world.city().route_by_name("243", 0);
  Rng rng(2);
  const AnnotatedTrip trip =
      bed.world.simulate_single_trip(route, 2, 18, at_clock(0, 8, 10), rng);
  const auto report = server.process_trip(trip.upload);
  ASSERT_GT(report.estimates.size(), 5u);
  RunningStats err;
  for (const SpeedEstimate& e : report.estimates) {
    const SpanInfo* info = server.catalog().adjacent(e.segment);
    ASSERT_NE(info, nullptr);
    const double truth = bed.world.traffic().mean_car_speed_kmh(
        bed.world.city().route(info->route), info->arc_from, info->arc_to,
        e.time);
    err.add(std::abs(e.att_speed_kmh - truth));
  }
  // Morning commuter congestion: the low-speed regime where the paper finds
  // the tightest agreement (Δv ~ 3-5 km/h).
  EXPECT_LT(err.mean(), 6.0);
}

TEST(Integration, FullDayFeedsTheTrafficMap) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  Rng rng(3);
  const auto day = bed.world.simulate_day(0, 2.0, rng);
  ASSERT_GT(day.trips.size(), 50u);
  for (const AnnotatedTrip& trip : day.trips) {
    server.process_trip(trip.upload);
  }
  server.advance_time(at_clock(0, 22, 0));
  const TrafficMap evening = server.snapshot(at_clock(0, 19, 0), 2.0 * kHour);
  EXPECT_GT(evening.segments().size(), 20u);
  EXPECT_GT(evening.coverage_ratio(server.catalog()), 0.05);
  EXPECT_GT(evening.mean_speed_kmh(), 15.0);
  EXPECT_LT(evening.mean_speed_kmh(), 60.0);
}

TEST(Integration, DayScaleMappingAccuracyHigh) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  Rng rng(4);
  const auto day = bed.world.simulate_day(0, 1.5, rng);
  const double acc = mapping_accuracy(bed.world, server, day.trips);
  // Paper Table II: per-sample identification error <= 8%; clustering plus
  // route constraints push per-cluster accuracy higher still.
  EXPECT_GT(acc, 0.93);
}

TEST(Integration, TripMappingAblationDoesNotHurt) {
  const Testbed& bed = testbed();
  ServerConfig with, without;
  without.stages.trip_mapping = false;
  TrafficServer s_with(bed.world.city(), bed.database, with);
  TrafficServer s_without(bed.world.city(), bed.database, without);
  Rng rng(5);
  const auto day = bed.world.simulate_day(0, 1.0, rng);
  const double acc_with = mapping_accuracy(bed.world, s_with, day.trips);
  const double acc_without = mapping_accuracy(bed.world, s_without, day.trips);
  EXPECT_GE(acc_with + 0.01, acc_without);
}

TEST(Integration, ServerRejectsSpuriousSamplesViaGamma) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  // A fingerprint of towers that exist nowhere in the database.
  TripUpload trip;
  trip.samples.push_back(CellularSample{0.0, Fingerprint{{999901, 999902}}});
  trip.samples.push_back(CellularSample{5.0, Fingerprint{{999903, 999904}}});
  const auto report = server.process_trip(trip);
  EXPECT_EQ(report.matched.size(), 0u);
  EXPECT_EQ(report.rejected_samples, 2u);
  EXPECT_TRUE(report.estimates.empty());
}

TEST(Integration, DeterministicGivenSeeds) {
  const Testbed& bed = testbed();
  Rng rng1(7), rng2(7);
  const auto day1 = bed.world.simulate_day(0, 1.0, rng1);
  const auto day2 = bed.world.simulate_day(0, 1.0, rng2);
  ASSERT_EQ(day1.trips.size(), day2.trips.size());
  for (std::size_t i = 0; i < day1.trips.size(); ++i) {
    ASSERT_EQ(day1.trips[i].upload.samples.size(),
              day2.trips[i].upload.samples.size());
    for (std::size_t k = 0; k < day1.trips[i].upload.samples.size(); ++k) {
      EXPECT_DOUBLE_EQ(day1.trips[i].upload.samples[k].time,
                       day2.trips[i].upload.samples[k].time);
      EXPECT_EQ(day1.trips[i].upload.samples[k].fingerprint,
                day2.trips[i].upload.samples[k].fingerprint);
    }
  }
}

TEST(Integration, GpsBaselineNoisierThanCellular) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  const SegmentCatalog& catalog = server.catalog();
  const GpsTracker gps(catalog);
  const BusRoute& route = *bed.world.city().route_by_name("79", 0);
  Rng rng(8);
  RunningStats cellular_err, gps_err;
  for (int trial = 0; trial < 6; ++trial) {
    const SimTime depart = at_clock(0, 9 + trial, 15);
    const std::map<int, int> board{{1, 1}};
    const std::map<int, int> alight{{static_cast<int>(route.stop_count()) - 2, 1}};
    const BusRun run = bed.world.buses().simulate_run(
        route, depart, board, alight, 600.0, rng, /*record_trajectory=*/true);
    // Cellular pipeline.
    const AnnotatedTrip trip = bed.world.simulate_single_trip(
        route, 1, static_cast<int>(route.stop_count()) - 2, depart, rng);
    const auto report = server.process_trip(trip.upload);
    for (const SpeedEstimate& e : report.estimates) {
      const SpanInfo* info = catalog.adjacent(e.segment);
      const double truth = bed.world.traffic().mean_car_speed_kmh(
          bed.world.city().route(info->route), info->arc_from, info->arc_to,
          e.time);
      cellular_err.add(std::abs(e.att_speed_kmh - truth));
    }
    // GPS baseline on the same physical run.
    const auto fixes = bed.world.gps_trace(run, 2.0, rng);
    for (const SpeedEstimate& e : gps.estimate(route, fixes)) {
      const SpanInfo* info = catalog.adjacent(e.segment);
      const double truth = bed.world.traffic().mean_car_speed_kmh(
          bed.world.city().route(info->route), info->arc_from, info->arc_to,
          e.time);
      gps_err.add(std::abs(e.att_speed_kmh - truth));
    }
  }
  ASSERT_GT(cellular_err.count(), 20u);
  ASSERT_GT(gps_err.count(), 20u);
  EXPECT_LT(cellular_err.mean(), gps_err.mean());
}

TEST(Integration, SmallCityWorldWorksEndToEnd) {
  // The library is not tied to the default city: build a smaller world.
  WorldConfig cfg;
  cfg.city.width_m = 4000.0;
  cfg.city.height_m = 3000.0;
  cfg.city.route_names = {"79", "243", "31"};
  cfg.participant_count = 8;
  cfg.seed = 99;
  const World world(cfg);
  EXPECT_EQ(world.city().routes().size(), 6u);
  Rng rng(1);
  StopDatabase db = build_stop_database(
      world.city(),
      [&](StopId stop, int) { return world.scan_stop(stop, rng, false); }, 3);
  TrafficServer server(world.city(), std::move(db));
  const auto day = world.simulate_day(0, 2.0, rng);
  EXPECT_GT(day.trips.size(), 10u);
  int est = 0;
  for (const AnnotatedTrip& trip : day.trips) {
    est += static_cast<int>(server.process_trip(trip.upload).estimates.size());
  }
  EXPECT_GT(est, 20);
}

}  // namespace
}  // namespace bussense
