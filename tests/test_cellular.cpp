// Unit tests for the cellular substrate: propagation, scanning, fingerprints,
// tower deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cellular/deployment.h"
#include "cellular/fingerprint.h"
#include "cellular/radio_environment.h"
#include "cellular/scanner.h"
#include "common/stats.h"

namespace bussense {
namespace {

RadioEnvironment small_env(std::uint64_t seed = 1) {
  std::vector<CellTower> towers{
      {2001, {0.0, 0.0}, 38.5},
      {2002, {600.0, 0.0}, 38.5},
      {2003, {0.0, 600.0}, 38.5},
      {2004, {600.0, 600.0}, 38.5},
  };
  return RadioEnvironment(std::move(towers), PropagationConfig{}, seed);
}

// ------------------------------------------------------------- propagation

TEST(RadioEnvironment, MeanRssDecreasesWithDistanceOnAverage) {
  const auto env = small_env();
  const CellTower& tower = env.towers()[0];
  // Shadowing can invert individual pairs; compare averages over bearings.
  double near = 0.0, far = 0.0;
  for (int k = 0; k < 16; ++k) {
    const double a = k * 0.3927;
    near += env.mean_rss_dbm(tower,
                             {100.0 * std::cos(a), 100.0 * std::sin(a)});
    far += env.mean_rss_dbm(tower, {800.0 * std::cos(a), 800.0 * std::sin(a)});
  }
  EXPECT_GT(near / 16.0, far / 16.0 + 10.0);
}

TEST(RadioEnvironment, MeanRssDeterministic) {
  const auto env1 = small_env(7);
  const auto env2 = small_env(7);
  const Point p{123.4, 567.8};
  EXPECT_DOUBLE_EQ(env1.mean_rss_dbm(env1.towers()[1], p),
                   env2.mean_rss_dbm(env2.towers()[1], p));
}

TEST(RadioEnvironment, DifferentTerrainSeedsDiffer) {
  const auto env1 = small_env(1);
  const auto env2 = small_env(2);
  const Point p{123.4, 567.8};
  EXPECT_NE(env1.mean_rss_dbm(env1.towers()[1], p),
            env2.mean_rss_dbm(env2.towers()[1], p));
}

TEST(RadioEnvironment, ShadowFieldIsSpatiallyContinuous) {
  const auto env = small_env();
  const CellTower& tower = env.towers()[0];
  // 1 m apart, same distance ring: RSS must differ by far less than sigma.
  const double a = env.mean_rss_dbm(tower, {300.0, 100.0});
  const double b = env.mean_rss_dbm(tower, {300.0, 101.0});
  EXPECT_LT(std::abs(a - b), 1.5);
}

TEST(RadioEnvironment, TemporalVariationHasConfiguredSpread) {
  const auto env = small_env();
  const CellTower& tower = env.towers()[0];
  const Point p{250.0, 250.0};
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 4000; ++i) s.add(env.sample_rss_dbm(tower, p, rng));
  EXPECT_NEAR(s.mean(), env.mean_rss_dbm(tower, p), 0.1);
  EXPECT_NEAR(s.stddev(), env.config().temporal_sigma_db, 0.1);
}

TEST(RadioEnvironment, ExtraNoiseWidensSpread) {
  const auto env = small_env();
  const CellTower& tower = env.towers()[0];
  const Point p{250.0, 250.0};
  Rng rng(6);
  RunningStats s;
  for (int i = 0; i < 4000; ++i) s.add(env.sample_rss_dbm(tower, p, rng, 3.0));
  EXPECT_NEAR(s.stddev(),
              std::hypot(env.config().temporal_sigma_db, 3.0), 0.15);
}

// ------------------------------------------------------------- fingerprint

TEST(Fingerprint, MakeSortsByDescendingRss) {
  const Fingerprint fp = make_fingerprint(
      {{10, -80.0}, {11, -60.0}, {12, -95.0}, {13, -70.0}});
  EXPECT_EQ(fp.cells, (std::vector<CellId>{11, 13, 10, 12}));
}

TEST(Fingerprint, MakeDeduplicatesKeepingStrongest) {
  const Fingerprint fp =
      make_fingerprint({{10, -80.0}, {11, -60.0}, {10, -50.0}});
  EXPECT_EQ(fp.cells, (std::vector<CellId>{10, 11}));
}

TEST(Fingerprint, CommonCellCount) {
  const Fingerprint a{{1, 2, 3, 4}};
  const Fingerprint b{{3, 4, 5}};
  EXPECT_EQ(common_cell_count(a, b), 2);
  EXPECT_EQ(common_cell_count(a, Fingerprint{}), 0);
  EXPECT_EQ(common_cell_count(a, a), 4);
}

TEST(Fingerprint, ToStringFormat) {
  EXPECT_EQ(to_string(Fingerprint{{2134, 3486, 1122}}), "2134,3486,1122");
  EXPECT_EQ(to_string(Fingerprint{}), "");
}

TEST(Fingerprint, EmptyAndSize) {
  Fingerprint fp;
  EXPECT_TRUE(fp.empty());
  fp.cells = {1, 2};
  EXPECT_EQ(fp.size(), 2u);
}

// ----------------------------------------------------------------- scanner

TEST(CellScanner, ResultSortedAndCapped) {
  const auto env = small_env();
  ScannerConfig cfg;
  cfg.max_towers = 3;
  const CellScanner scanner(cfg);
  Rng rng(7);
  const auto obs = scanner.scan(env, {300.0, 300.0}, rng);
  ASSERT_LE(obs.size(), 3u);
  for (std::size_t i = 1; i < obs.size(); ++i) {
    EXPECT_GE(obs[i - 1].rss_dbm, obs[i].rss_dbm);
  }
}

TEST(CellScanner, SensitivityFiltersWeakTowers) {
  const auto env = small_env();
  ScannerConfig strict;
  strict.sensitivity_dbm = -20.0;  // nothing is that strong at 300 m
  const CellScanner scanner(strict);
  Rng rng(8);
  EXPECT_TRUE(scanner.scan(env, {300.0, 300.0}, rng).empty());
}

TEST(CellScanner, FingerprintMatchesScanOrder) {
  const auto env = small_env();
  const CellScanner scanner;
  Rng rng1(9), rng2(9);
  const auto obs = scanner.scan(env, {200.0, 100.0}, rng1);
  const auto fp = scanner.scan_fingerprint(env, {200.0, 100.0}, rng2);
  ASSERT_EQ(fp.size(), obs.size());
  for (std::size_t i = 0; i < obs.size(); ++i) {
    EXPECT_EQ(fp.cells[i], obs[i].id);
  }
}

TEST(CellScanner, NearbyLocationsShareTowersDistantOnesDont) {
  // Two towers 5 km apart: a phone near one never reports the other.
  std::vector<CellTower> towers{{3001, {0.0, 0.0}, 38.5},
                                {3002, {5000.0, 0.0}, 38.5}};
  const RadioEnvironment env(std::move(towers), PropagationConfig{}, 3);
  const CellScanner scanner;
  Rng rng(10);
  const auto fp = scanner.scan_fingerprint(env, {50.0, 0.0}, rng);
  ASSERT_EQ(fp.size(), 1u);
  EXPECT_EQ(fp.cells[0], 3001);
}

// -------------------------------------------------------------- deployment

TEST(Deployment, CoversRegionWithMargin) {
  Rng rng(11);
  const BoundingBox region{{0.0, 0.0}, {2000.0, 1000.0}};
  DeploymentConfig cfg;
  cfg.spacing_m = 500.0;
  cfg.margin_m = 500.0;
  const auto towers = deploy_towers(region, cfg, rng);
  EXPECT_GT(towers.size(), 20u);
  for (const CellTower& t : towers) {
    EXPECT_GE(t.position.x, -cfg.margin_m - cfg.spacing_m);
    EXPECT_LE(t.position.x, 2000.0 + cfg.margin_m + cfg.spacing_m);
  }
}

TEST(Deployment, IdsUniqueAndSequentialFromBase) {
  Rng rng(12);
  const BoundingBox region{{0.0, 0.0}, {1000.0, 1000.0}};
  DeploymentConfig cfg;
  cfg.first_cell_id = 5000;
  const auto towers = deploy_towers(region, cfg, rng);
  std::set<CellId> ids;
  for (const CellTower& t : towers) ids.insert(t.id);
  EXPECT_EQ(ids.size(), towers.size());
  EXPECT_EQ(*ids.begin(), 5000);
  EXPECT_EQ(*ids.rbegin(), 5000 + static_cast<CellId>(towers.size()) - 1);
}

TEST(Deployment, RejectsNonPositiveSpacing) {
  Rng rng(13);
  DeploymentConfig cfg;
  cfg.spacing_m = 0.0;
  EXPECT_THROW(deploy_towers({{0, 0}, {100, 100}}, cfg, rng),
               std::invalid_argument);
}

TEST(Deployment, VisibleTowerCountInPaperBand) {
  // Full-region deployment: a phone should see roughly 4-7 towers.
  Rng rng(14);
  const BoundingBox region{{0.0, 0.0}, {7000.0, 4000.0}};
  const auto towers = deploy_towers(region, DeploymentConfig{}, rng);
  const RadioEnvironment env(towers, PropagationConfig{}, 99);
  const CellScanner scanner;
  Rng scan_rng(15);
  for (int i = 0; i < 30; ++i) {
    const Point p{scan_rng.uniform(1000.0, 6000.0),
                  scan_rng.uniform(1000.0, 3000.0)};
    const auto fp = scanner.scan_fingerprint(env, p, scan_rng);
    EXPECT_GE(fp.size(), 4u);
    EXPECT_LE(fp.size(), 7u);
  }
}

}  // namespace
}  // namespace bussense
