// Durable ingest: write-ahead trip log + checkpoint/restore (DESIGN.md §14).
//
// The tentpole property: kill an ingestor mid-period at a randomized point,
// recover from the latest checkpoint + WAL suffix, resume the feed — the
// final fused TrafficMap must be byte-identical to an uninterrupted run,
// across all four front ends with admission on and off. The fault half of
// the suite attacks the log bytes directly: torn tails are truncated, CRC
// failures end the scan, duplicated blocks are skipped, and a corrupt or
// half-written checkpoint falls back to an older valid one — corruption is
// never propagated into the fused state.
//
// Configure with -DBUSSENSE_SANITIZE=address,undefined to run this suite
// under ASan+UBSan (scripts/tier1.sh BUSSENSE_DURABILITY=ON does).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/admission.h"
#include "core/checkpoint.h"
#include "core/concurrent_server.h"
#include "core/ingest_service.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "core/trip_log.h"
#include "obs/metrics.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

struct Testbed {
  World world;
  StopDatabase database;
  std::vector<AnnotatedTrip> trips;

  Testbed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
    Rng rng(77);
    trips = world.simulate_day(0, 1.2, rng).trips;
  }
};

const Testbed& testbed() {
  static const Testbed bed;
  return bed;
}

// Uploads the clean pipeline accepts, ordered by first-sample time so
// interleaved advance_time() calls respect the ingestor contract.
const std::vector<TripUpload>& sorted_uploads() {
  static const std::vector<TripUpload> uploads = [] {
    std::vector<TripUpload> out;
    for (const AnnotatedTrip& trip : testbed().trips) {
      if (!trip.upload.samples.empty()) out.push_back(trip.upload);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TripUpload& a, const TripUpload& b) {
                       return a.samples.front().time < b.samples.front().time;
                     });
    return out;
  }();
  return uploads;
}

// Canonical byte rendering of a snapshot: segments in key order, every
// float as %.17g — equal strings mean bit-identical fused maps (same idiom
// as the ingest identity suite).
std::string map_bytes(const TrafficMap& map) {
  std::vector<MapSegment> segments = map.segments();
  std::sort(segments.begin(), segments.end(),
            [](const MapSegment& a, const MapSegment& b) {
              return a.key.from != b.key.from ? a.key.from < b.key.from
                                              : a.key.to < b.key.to;
            });
  std::string out;
  char buf[160];
  for (const MapSegment& s : segments) {
    std::snprintf(buf, sizeof buf, "%d>%d %.17g %.17g %d %d;",
                  static_cast<int>(s.key.from), static_cast<int>(s.key.to),
                  s.speed_kmh, s.updated_at, s.observation_count,
                  static_cast<int>(s.level));
    out += buf;
  }
  return out;
}

// Fresh scratch directory per use; removed on destruction.
struct TempDir {
  std::filesystem::path path;

  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("bussense_test_durability_" +
            std::to_string(counter.fetch_add(1)) + "_" +
            std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& p) {
  std::ifstream is(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::filesystem::path& p,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(p, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

// Admission arms disable skew re-anchoring: a corrected trip's samples are
// shifted back to the watermark, handing the fusion estimates for periods
// an earlier advance_time already closed — processing-order dependent by
// design (admission.h), exactly as in the cross-shard identity suite. The
// skew half of WAL replay has its own unit test below.
ServerConfig base_config(bool admission_on) {
  ServerConfig cfg;
  cfg.admission.enabled = admission_on;
  cfg.admission.max_clock_skew_s = 0.0;
  return cfg;
}

ServerConfig durable_config(const std::string& dir, bool admission_on,
                            FsyncPolicy policy = FsyncPolicy::kNever) {
  ServerConfig cfg = base_config(admission_on);
  cfg.durability.enabled = true;
  cfg.durability.directory = dir;
  cfg.durability.fsync = policy;
  return cfg;
}

WalRecord trip_record(const TripUpload& upload) {
  WalRecord r;
  r.type = WalRecordType::kTrip;
  r.trip = upload;
  return r;
}

// ------------------------------------------------------------- validation

TEST(DurabilityConfigValidation, ThrowsOnNonsense) {
  const Testbed& bed = testbed();
  ServerConfig no_dir;
  no_dir.durability.enabled = true;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, no_dir),
               std::invalid_argument);

  TempDir dir;
  ServerConfig zero_interval = durable_config(dir.str(), false);
  zero_interval.durability.fsync = FsyncPolicy::kInterval;
  zero_interval.durability.fsync_interval_records = 0;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, zero_interval),
               std::invalid_argument);

  ServerConfig no_keep = durable_config(dir.str(), false);
  no_keep.durability.checkpoints_kept = 0;
  EXPECT_THROW(TrafficServer(bed.world.city(), bed.database, no_keep),
               std::invalid_argument);

  // Disabled durability ignores the other knobs entirely.
  ServerConfig off;
  off.durability.fsync_interval_records = 0;
  TrafficServer ok(bed.world.city(), bed.database, off);
  EXPECT_FALSE(ok.open().durable);
}

// ------------------------------------------------------------- WAL format

TEST(WalPayload, RoundTripsAndEncodesDeterministically) {
  const auto& uploads = sorted_uploads();
  ASSERT_FALSE(uploads.empty());

  WalRecord trip = trip_record(uploads[0]);
  trip.seq = 7;
  trip.signature = 0xdeadbeefcafef00dULL;
  trip.skew_offset_s = -1.25;
  const std::vector<std::uint8_t> bytes = encode_wal_payload(trip);
  EXPECT_EQ(encode_wal_payload(trip), bytes);  // deterministic

  WalRecord back;
  ASSERT_TRUE(decode_wal_payload(bytes.data(), bytes.size(), &back));
  EXPECT_EQ(back.type, WalRecordType::kTrip);
  EXPECT_EQ(back.seq, 7u);
  EXPECT_EQ(back.signature, trip.signature);
  EXPECT_EQ(back.skew_offset_s, trip.skew_offset_s);
  EXPECT_EQ(back.trip, trip.trip);

  WalRecord mark;
  mark.type = WalRecordType::kTimeMark;
  mark.seq = 8;
  mark.mark_time = 12345.675;
  const std::vector<std::uint8_t> mbytes = encode_wal_payload(mark);
  WalRecord mback;
  ASSERT_TRUE(decode_wal_payload(mbytes.data(), mbytes.size(), &mback));
  EXPECT_EQ(mback.type, WalRecordType::kTimeMark);
  EXPECT_EQ(mback.seq, 8u);
  EXPECT_EQ(mback.mark_time, mark.mark_time);

  // Every strict prefix of a valid payload is rejected, never misdecoded.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    WalRecord ignored;
    EXPECT_FALSE(decode_wal_payload(bytes.data(), n, &ignored)) << n;
  }
}

TEST(TripLogWriter, SameInputYieldsByteIdenticalLogs) {
  const auto& uploads = sorted_uploads();
  const std::size_t n = std::min<std::size_t>(uploads.size(), 12);
  TempDir dir;
  const auto write_log = [&](const std::string& name) {
    TripLogWriter writer((dir.path / name).string(), FsyncPolicy::kNever, 256,
                         /*next_seq=*/1);
    for (std::size_t i = 0; i < n; ++i) {
      const auto res = writer.append(trip_record(uploads[i]));
      EXPECT_EQ(res.seq, i + 1);
      EXPECT_GT(res.bytes, 0u);
    }
    WalRecord mark;
    mark.type = WalRecordType::kTimeMark;
    mark.mark_time = 4242.0;
    writer.append(mark);
    writer.close();
  };
  write_log("a.wal");
  write_log("b.wal");
  const auto a = read_bytes(dir.path / "a.wal");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, read_bytes(dir.path / "b.wal"));

  const WalScanResult scan = scan_trip_log((dir.path / "a.wal").string(),
                                           /*repair=*/false);
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), n + 1);
  EXPECT_EQ(scan.trip_records, n);
  EXPECT_EQ(scan.next_seq, n + 2);
  EXPECT_EQ(scan.duplicate_records, 0u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(scan.records[i].seq, i + 1);
    EXPECT_EQ(scan.records[i].trip, uploads[i]);
  }
  EXPECT_EQ(scan.records.back().type, WalRecordType::kTimeMark);

  // A missing file is an empty log, not an error.
  const WalScanResult missing =
      scan_trip_log((dir.path / "nope.wal").string(), /*repair=*/false);
  EXPECT_TRUE(missing.records.empty());
  EXPECT_EQ(missing.next_seq, 1u);
  EXPECT_FALSE(missing.torn);
}

// Every truncation point of the log yields the longest valid prefix;
// repair shrinks the file so a subsequent scan is clean.
TEST(WalScan, TornTailTruncationSweep) {
  const auto& uploads = sorted_uploads();
  const std::size_t n = std::min<std::size_t>(uploads.size(), 6);
  TempDir dir;
  const std::filesystem::path full = dir.path / "full.wal";
  {
    TripLogWriter writer(full.string(), FsyncPolicy::kNever, 256, 1);
    for (std::size_t i = 0; i < n; ++i) writer.append(trip_record(uploads[i]));
    writer.close();
  }
  const std::vector<std::uint8_t> bytes = read_bytes(full);
  const WalScanResult clean = scan_trip_log(full.string(), /*repair=*/false);
  ASSERT_EQ(clean.records.size(), n);

  // Frame boundaries from the clean scan's payload sizes.
  std::vector<std::size_t> boundary = {8};  // after the magic
  for (const WalRecord& r : clean.records) {
    boundary.push_back(boundary.back() + 8 + encode_wal_payload(r).size());
  }
  ASSERT_EQ(boundary.back(), bytes.size());

  const std::filesystem::path cut_path = dir.path / "cut.wal";
  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    write_bytes(cut_path,
                std::vector<std::uint8_t>(bytes.begin(),
                                          bytes.begin() +
                                              static_cast<std::ptrdiff_t>(cut)));
    const WalScanResult scan = scan_trip_log(cut_path.string(),
                                             /*repair=*/true);
    // Longest valid prefix: every whole frame at or before the cut.
    std::size_t want = 0, want_end = 8;
    while (want + 1 < boundary.size() && boundary[want + 1] <= cut) {
      want_end = boundary[++want];
    }
    ASSERT_EQ(scan.records.size(), want) << "cut " << cut;
    for (std::size_t i = 0; i < want; ++i) {
      EXPECT_EQ(scan.records[i].seq, clean.records[i].seq) << "cut " << cut;
      EXPECT_EQ(scan.records[i].trip, clean.records[i].trip) << "cut " << cut;
    }
    if (cut < 8) {
      // Not even a magic: scanned as empty (and flagged torn when there
      // are stray bytes).
      EXPECT_EQ(scan.records.size(), 0u);
    } else {
      EXPECT_EQ(scan.torn, cut != want_end) << "cut " << cut;
      EXPECT_EQ(scan.truncated_tail_bytes, cut - want_end) << "cut " << cut;
      // Repair truncated the file to the valid prefix; a rescan is clean.
      EXPECT_EQ(std::filesystem::file_size(cut_path), want_end)
          << "cut " << cut;
      const WalScanResult again =
          scan_trip_log(cut_path.string(), /*repair=*/false);
      EXPECT_FALSE(again.torn) << "cut " << cut;
      EXPECT_EQ(again.records.size(), want) << "cut " << cut;
      EXPECT_EQ(again.next_seq, scan.next_seq) << "cut " << cut;
    }
  }
}

// A flipped bit anywhere in the log never produces a record that differs
// from the uncorrupted prefix — the CRC (or the decoder) ends the scan
// first.
TEST(WalScan, BitFlipsNeverPropagate) {
  const auto& uploads = sorted_uploads();
  const std::size_t n = std::min<std::size_t>(uploads.size(), 5);
  TempDir dir;
  const std::filesystem::path full = dir.path / "full.wal";
  {
    TripLogWriter writer(full.string(), FsyncPolicy::kNever, 256, 1);
    for (std::size_t i = 0; i < n; ++i) writer.append(trip_record(uploads[i]));
    writer.close();
  }
  const std::vector<std::uint8_t> bytes = read_bytes(full);
  const WalScanResult clean = scan_trip_log(full.string(), /*repair=*/false);
  ASSERT_EQ(clean.records.size(), n);
  std::vector<std::vector<std::uint8_t>> clean_payloads;
  for (const WalRecord& r : clean.records) {
    clean_payloads.push_back(encode_wal_payload(r));
  }

  const std::filesystem::path flip_path = dir.path / "flip.wal";
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    for (const std::uint8_t mask : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> corrupt = bytes;
      corrupt[pos] ^= mask;
      write_bytes(flip_path, corrupt);
      const WalScanResult scan =
          scan_trip_log(flip_path.string(), /*repair=*/false);
      ASSERT_LE(scan.records.size(), clean.records.size())
          << "pos " << pos << " mask " << int(mask);
      for (std::size_t i = 0; i < scan.records.size(); ++i) {
        EXPECT_EQ(encode_wal_payload(scan.records[i]), clean_payloads[i])
            << "pos " << pos << " mask " << int(mask) << " record " << i;
      }
    }
  }
}

TEST(WalScan, DuplicatedBlockIsSkippedNotReplayedTwice) {
  const auto& uploads = sorted_uploads();
  TempDir dir;
  const std::filesystem::path log = dir.path / "dup.wal";
  {
    TripLogWriter writer(log.string(), FsyncPolicy::kNever, 256, 1);
    writer.append(trip_record(uploads[0]));
    writer.append(trip_record(uploads[1]));
    writer.close();
  }
  std::vector<std::uint8_t> bytes = read_bytes(log);
  // Frame 1 spans [8, 8 + 8 + payload_len) — the payload is fixed-width,
  // so its encoded size is independent of the seq the writer stamped.
  // Duplicate the frame in place: the classic doubled block from a buggy
  // copy/restore.
  const std::size_t frame1_end =
      8 + 8 + encode_wal_payload(trip_record(uploads[0])).size();
  std::vector<std::uint8_t> doubled(bytes.begin(),
                                    bytes.begin() +
                                        static_cast<std::ptrdiff_t>(frame1_end));
  doubled.insert(doubled.end(),
                 bytes.begin() + 8,
                 bytes.begin() + static_cast<std::ptrdiff_t>(frame1_end));
  doubled.insert(doubled.end(),
                 bytes.begin() + static_cast<std::ptrdiff_t>(frame1_end),
                 bytes.end());
  write_bytes(log, doubled);

  const WalScanResult scan = scan_trip_log(log.string(), /*repair=*/false);
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0].seq, 1u);
  EXPECT_EQ(scan.records[1].seq, 2u);
  EXPECT_EQ(scan.duplicate_records, 1u);
  EXPECT_EQ(scan.next_seq, 3u);
}

// ------------------------------------------------------------- checkpoints

TEST(Checkpoint, RoundTripsAndPicksNewestValid) {
  const Testbed& bed = testbed();
  const auto& uploads = sorted_uploads();
  TempDir dir;

  // Real state: a durable serial server part-way through the day.
  TrafficServer server(bed.world.city(), bed.database,
                       durable_config(dir.str(), true));
  server.open();
  for (std::size_t i = 0; i < std::min<std::size_t>(uploads.size(), 40); ++i) {
    server.process_trip(uploads[i]);
  }
  const std::uint64_t id1 = server.checkpoint();
  EXPECT_EQ(id1, 1u);
  for (std::size_t i = 40; i < std::min<std::size_t>(uploads.size(), 60); ++i) {
    server.process_trip(uploads[i]);
  }
  const std::uint64_t id2 = server.checkpoint();
  EXPECT_EQ(id2, 2u);
  server.close();

  const auto loaded = load_latest_checkpoint(dir.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->id, 2u);
  EXPECT_FALSE(loaded->state.fusion.empty());
  ASSERT_EQ(loaded->state.covers_seq.size(), 1u);

  // encode → decode → encode is byte-stable.
  const auto bytes = encode_checkpoint(loaded->id, loaded->state);
  std::uint64_t rid = 0;
  CheckpointState rstate;
  ASSERT_TRUE(decode_checkpoint(bytes.data(), bytes.size(), &rid, &rstate));
  EXPECT_EQ(rid, loaded->id);
  EXPECT_EQ(encode_checkpoint(rid, rstate), bytes);

  // Every strict prefix fails to decode (no partial restores).
  for (std::size_t cut : {std::size_t{0}, std::size_t{7}, std::size_t{9},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::uint64_t ignored_id = 0;
    CheckpointState ignored;
    EXPECT_FALSE(decode_checkpoint(bytes.data(), cut, &ignored_id, &ignored))
        << cut;
  }

  // Corrupt the newest file: loading falls back to the older checkpoint.
  const std::filesystem::path newest =
      dir.path / "checkpoint-00000000000000000002.ckpt";
  ASSERT_TRUE(std::filesystem::exists(newest));
  std::vector<std::uint8_t> corrupt = read_bytes(newest);
  corrupt[corrupt.size() / 2] ^= 0x40;
  write_bytes(newest, corrupt);
  const auto fallback = load_latest_checkpoint(dir.str());
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->id, 1u);

  // A stray .tmp from a crash mid-checkpoint is never loaded.
  write_bytes(dir.path / "checkpoint-00000000000000000009.tmp",
              {1, 2, 3, 4});
  EXPECT_EQ(load_latest_checkpoint(dir.str())->id, 1u);

  // All checkpoints corrupt: recovery falls back to a full WAL replay.
  const std::filesystem::path oldest =
      dir.path / "checkpoint-00000000000000000001.ckpt";
  write_bytes(oldest, {9, 9, 9});
  EXPECT_FALSE(load_latest_checkpoint(dir.str()).has_value());
}

TEST(Checkpoint, PruneKeepsOnlyTheNewest) {
  TempDir dir;
  CheckpointState state;
  state.covers_seq = {0};
  for (std::uint64_t id = 1; id <= 5; ++id) {
    save_checkpoint_file(dir.str(), id, state);
  }
  prune_checkpoints(dir.str(), 2);
  std::size_t remaining = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path)) {
    if (e.path().extension() == ".ckpt") ++remaining;
  }
  EXPECT_EQ(remaining, 2u);
  EXPECT_EQ(load_latest_checkpoint(dir.str())->id, 5u);
}

// --------------------------------------------------------------- lifecycle

TEST(DurableLifecycle, GuardsProcessTripOutsideOpenClose) {
  const Testbed& bed = testbed();
  const auto& uploads = sorted_uploads();
  TempDir dir;
  TrafficServer server(bed.world.city(), bed.database,
                       durable_config(dir.str(), false));

  // Before open(): rejected, not silently dropped.
  const TripReport early = server.process_trip(uploads[0]);
  EXPECT_EQ(early.outcome, IngestOutcome::kRejected);
  EXPECT_EQ(early.reject_reason, RejectReason::kShutdown);

  const RecoveryReport report = server.open();
  EXPECT_TRUE(report.durable);
  EXPECT_FALSE(report.checkpoint_loaded);
  EXPECT_EQ(report.replayed_trips, 0u);

  EXPECT_TRUE(server.process_trip(uploads[0]).accepted());
  EXPECT_GT(server.checkpoint(), 0u);

  server.close();
  const TripReport late = server.process_trip(uploads[1]);
  EXPECT_EQ(late.outcome, IngestOutcome::kRejected);
  EXPECT_EQ(late.reject_reason, RejectReason::kShutdown);
  EXPECT_EQ(server.checkpoint(), 0u);  // no checkpoints after close
  server.close();                      // idempotent

  // The durability instruments recorded the run.
  const MetricsSnapshot ms = server.metrics().snapshot();
  EXPECT_EQ(ms.counters.at("durability.appends"), 1u);
  EXPECT_EQ(ms.counters.at("durability.checkpoints"), 1u);
  EXPECT_GT(ms.counters.at("durability.bytes_appended"), 0u);
}

TEST(DurableLifecycle, AsyncServiceRejectsAtEnqueueOutsideOpenClose) {
  const Testbed& bed = testbed();
  const auto& uploads = sorted_uploads();
  TempDir dir;
  IngestServiceConfig manual;
  manual.workers = 0;
  manual.backpressure = IngestServiceConfig::Backpressure::kReject;
  manual.queue_capacity = uploads.size() + 1;
  IngestService service(bed.world.city(), bed.database,
                        durable_config(dir.str(), false), manual);

  EXPECT_EQ(service.process_trip(uploads[0]).reject_reason,
            RejectReason::kShutdown);
  service.open();
  EXPECT_TRUE(service.process_trip(uploads[0]).accepted());
  service.close();
  EXPECT_EQ(service.process_trip(uploads[1]).reject_reason,
            RejectReason::kShutdown);
  EXPECT_EQ(service.trips_processed(), 1u);
}

// ------------------------------------------------- admission replay (skew)

// The crash-identity suite above runs with skew re-anchoring off because
// corrected estimates depend on where the flush boundaries fall. The WAL
// still has to carry skew state through recovery, so exercise that half
// directly: admit a skewed trip, feed the recorded AdmitInfo into a fresh
// controller via note_replayed, and the exported states must match.
TEST(AdmissionReplay, NoteReplayedRebuildsSkewAndDedupState) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  MetricsRegistry metrics;

  AdmissionController reference(cfg);
  reference.bind_metrics(&metrics);
  reference.observe_time(at_clock(10, 0, 0));

  // A trip whose last sample lands a full day past the watermark: well
  // beyond max_clock_skew_s, so re-anchoring must fire.
  TripUpload skewed;
  skewed.participant_id = 7;
  for (int i = 0; i < 5; ++i) {
    CellularSample s;
    s.time = at_clock(34, 0, 0) + 30.0 * i;
    s.fingerprint.cells = {101, 202, 303};
    skewed.samples.push_back(s);
  }

  TripUpload corrected;
  const TripUpload* use = nullptr;
  AdmitInfo info;
  ASSERT_EQ(reference.admit(skewed, corrected, use, &info),
            RejectReason::kNone);
  EXPECT_NE(info.signature, 0u);
  EXPECT_NE(info.skew_offset_s, 0.0);
  ASSERT_EQ(use, &corrected);
  EXPECT_EQ(corrected.samples.back().time,
            skewed.samples.back().time - info.skew_offset_s);

  // Replay path: a fresh controller fed the WAL facts, not the upload.
  AdmissionController replayed(cfg);
  replayed.observe_time(at_clock(10, 0, 0));
  replayed.note_replayed(info.signature, skewed.participant_id,
                         info.skew_offset_s);

  const AdmissionCheckpoint ref_state = reference.export_state();
  const AdmissionCheckpoint rep_state = replayed.export_state();
  EXPECT_EQ(ref_state.lru_oldest_first, rep_state.lru_oldest_first);
  EXPECT_EQ(ref_state.skew_offsets, rep_state.skew_offsets);
  EXPECT_EQ(ref_state.have_watermark, rep_state.have_watermark);
  EXPECT_EQ(ref_state.watermark, rep_state.watermark);
  ASSERT_EQ(rep_state.skew_offsets.size(), 1u);
  EXPECT_EQ(rep_state.skew_offsets[0].first, 7);
  EXPECT_EQ(rep_state.skew_offsets[0].second, info.skew_offset_s);

  // With identical state, the replayed controller dedup-rejects the same
  // upload and re-applies the same offset to the participant's next trip.
  AdmitInfo dup_info;
  EXPECT_EQ(replayed.admit(skewed, corrected, use, &dup_info),
            RejectReason::kDuplicate);

  // export → restore → export round-trips exactly.
  AdmissionController restored(cfg);
  restored.restore_state(ref_state);
  const AdmissionCheckpoint round = restored.export_state();
  EXPECT_EQ(round.lru_oldest_first, ref_state.lru_oldest_first);
  EXPECT_EQ(round.skew_offsets, ref_state.skew_offsets);
  EXPECT_EQ(round.have_watermark, ref_state.have_watermark);
  EXPECT_EQ(round.watermark, ref_state.watermark);
}

// ---------------------------------------------------- crash-recovery suite

enum class FrontEnd { kSerial, kConcurrent, kService, kSharded };

constexpr std::size_t kShards = 3;

const char* name_of(FrontEnd fe) {
  switch (fe) {
    case FrontEnd::kSerial: return "serial";
    case FrontEnd::kConcurrent: return "concurrent";
    case FrontEnd::kService: return "service";
    case FrontEnd::kSharded: return "sharded";
  }
  return "?";
}

std::unique_ptr<TrafficIngestor> make_front_end(FrontEnd fe,
                                                const ServerConfig& cfg) {
  const Testbed& bed = testbed();
  switch (fe) {
    case FrontEnd::kSerial:
      return std::make_unique<TrafficServer>(bed.world.city(), bed.database,
                                             cfg);
    case FrontEnd::kConcurrent:
      return std::make_unique<ConcurrentTrafficServer>(bed.world.city(),
                                                       bed.database, cfg);
    case FrontEnd::kService: {
      IngestServiceConfig manual;
      manual.workers = 0;  // manual mode: deterministic processing order
      manual.backpressure = IngestServiceConfig::Backpressure::kReject;
      manual.queue_capacity = sorted_uploads().size() + 1;
      return std::make_unique<IngestService>(bed.world.city(), bed.database,
                                             cfg, manual);
    }
    case FrontEnd::kSharded: {
      ShardedIngestConfig svc;
      svc.shards = kShards;
      svc.ring_capacity = 64;
      return std::make_unique<ShardedIngestService>(bed.world.city(),
                                                    bed.database, cfg, svc);
    }
  }
  return nullptr;
}

// The uninterrupted reference: same front end, durability off, one
// advance_time at the mid-feed barrier and one at the end.
std::string reference_map_bytes(FrontEnd fe, bool admission_on,
                                std::size_t adv_index, SimTime end) {
  const auto& uploads = sorted_uploads();
  auto ingestor = make_front_end(fe, base_config(admission_on));
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    if (i == adv_index) {
      ingestor->advance_time(uploads[adv_index].samples.front().time);
    }
    EXPECT_TRUE(ingestor->process_trip(uploads[i]).accepted());
  }
  ingestor->advance_time(end);
  return map_bytes(ingestor->snapshot(end, kDay));
}

// One crash-recovery run: feed to a randomized kill point (advancing time
// at a barrier on the way, optionally checkpointing, optionally tearing
// the log tail after the kill), destroy without close() — a crash — then
// recover into a fresh instance and resume the feed. The final map must be
// byte-identical to the uninterrupted serial reference (all front ends
// fuse bit-identically to it — the ingest identity suite).
void run_crash_recovery_case(FrontEnd fe, bool admission_on, int variant,
                             std::uint64_t seed, const std::string& expected) {
  const auto& uploads = sorted_uploads();
  ASSERT_GT(uploads.size(), 40u);
  const SimTime end = at_clock(1, 0, 0);
  Rng rng(seed);

  const std::size_t adv_index = uploads.size() / 3;
  const std::size_t cut = adv_index + 4 +
                          static_cast<std::size_t>(rng.uniform_int(
                              0, static_cast<int>(uploads.size() / 2)));
  const bool with_checkpoint = variant == 0;
  const bool tear_tail = variant == 1;
  const bool fake_mid_checkpoint_crash = variant == 2;
  const std::size_t checkpoint_at =
      adv_index + 1 +
      static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(cut - adv_index) - 3));

  const std::string label = std::string(name_of(fe)) + ", admission " +
                            (admission_on ? "on" : "off") + ", variant " +
                            std::to_string(variant) + ", cut " +
                            std::to_string(cut);
  ASSERT_FALSE(expected.empty()) << label;

  TempDir dir;
  const ServerConfig cfg = durable_config(dir.str(), admission_on);

  {  // The doomed run: destroyed without close() — a crash.
    auto crashed = make_front_end(fe, cfg);
    const RecoveryReport fresh = crashed->open();
    EXPECT_TRUE(fresh.durable) << label;
    EXPECT_FALSE(fresh.checkpoint_loaded) << label;
    for (std::size_t i = 0; i < cut; ++i) {
      if (i == adv_index) {
        crashed->advance_time(uploads[adv_index].samples.front().time);
      }
      if (with_checkpoint && i == checkpoint_at) {
        EXPECT_GT(crashed->checkpoint(), 0u) << label;
      }
      ASSERT_TRUE(crashed->process_trip(uploads[i]).accepted()) << label;
    }
  }

  if (tear_tail) {
    // Lose the last few bytes of one WAL segment — the torn records must
    // be re-fed, not resurrected from garbage.
    std::filesystem::path victim;
    std::uintmax_t largest = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir.path)) {
      if (e.path().extension() == ".wal" && e.file_size() > largest) {
        largest = e.file_size();
        victim = e.path();
      }
    }
    ASSERT_FALSE(victim.empty()) << label;
    const std::uintmax_t chop =
        static_cast<std::uintmax_t>(rng.uniform_int(1, 40));
    std::filesystem::resize_file(victim, largest - chop);
  }
  if (fake_mid_checkpoint_crash) {
    // Artifacts of a crash inside checkpoint(): a garbage .ckpt and a
    // half-written .tmp. Recovery must skip both.
    write_bytes(dir.path / "checkpoint-00000000000000009999.ckpt",
                {0xde, 0xad, 0xbe, 0xef});
    write_bytes(dir.path / "checkpoint-00000000000000000003.tmp", {1, 2});
  }

  auto recovered = make_front_end(fe, cfg);
  const RecoveryReport report = recovered->open();
  EXPECT_TRUE(report.durable) << label;
  EXPECT_EQ(report.checkpoint_loaded, with_checkpoint) << label;
  if (!with_checkpoint) {
    // The checkpoint covers the mid-feed barrier's marks; without one they
    // are replayed to restore the admission watermark.
    EXPECT_GT(report.replayed_time_marks, 0u) << label;
  }
  const std::size_t segments = fe == FrontEnd::kSharded ? kShards : 1;
  ASSERT_EQ(report.recovered_trips_per_segment.size(), segments) << label;
  std::uint64_t recovered_total = 0;
  for (const std::uint64_t r : report.recovered_trips_per_segment) {
    recovered_total += r;
  }
  // Everything accepted before the crash survived — except, with a torn
  // tail, the trailing record(s) chopped off, which are re-fed below.
  EXPECT_LE(recovered_total, cut) << label;
  if (!tear_tail) {
    EXPECT_EQ(recovered_total, cut) << label;
  }

  // Resume: skip the first recovered_trips_per_segment[s] uploads of each
  // segment's feed subsequence (they are already durable), re-feed the
  // rest — including any torn-tail losses.
  auto* sharded = dynamic_cast<ShardedIngestService*>(recovered.get());
  std::vector<std::uint64_t> seen(segments, 0);
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    const std::size_t seg =
        sharded ? sharded->shard_of(uploads[i].participant_id) : 0;
    if (seen[seg]++ < report.recovered_trips_per_segment[seg]) continue;
    ASSERT_TRUE(recovered->process_trip(uploads[i]).accepted()) << label;
  }
  recovered->advance_time(end);
  EXPECT_EQ(map_bytes(recovered->snapshot(end, kDay)), expected) << label;
  recovered->close();
}

TEST(CrashRecovery, ByteIdenticalAcrossFrontEndsAdmissionAndKillPoints) {
  const SimTime end = at_clock(1, 0, 0);
  const std::size_t adv_index = sorted_uploads().size() / 3;
  const std::string expected_off =
      reference_map_bytes(FrontEnd::kSerial, false, adv_index, end);
  const std::string expected_on =
      reference_map_bytes(FrontEnd::kSerial, true, adv_index, end);

  std::uint64_t seed = 5150;
  for (const FrontEnd fe : {FrontEnd::kSerial, FrontEnd::kConcurrent,
                            FrontEnd::kService, FrontEnd::kSharded}) {
    for (const bool admission_on : {false, true}) {
      const int variant = static_cast<int>(seed % 3);
      run_crash_recovery_case(fe, admission_on, variant, seed,
                              admission_on ? expected_on : expected_off);
      ++seed;
    }
  }
}

// Crash at the extremes: before any upload and after the whole feed.
TEST(CrashRecovery, EmptyAndCompleteLogsRecover) {
  const auto& uploads = sorted_uploads();
  const SimTime end = at_clock(1, 0, 0);
  const std::string expected =
      reference_map_bytes(FrontEnd::kSerial, true, uploads.size() / 3, end);

  TempDir dir;
  const ServerConfig cfg = durable_config(dir.str(), true);
  {  // Crash before processing anything.
    auto crashed = make_front_end(FrontEnd::kSerial, cfg);
    crashed->open();
  }
  {  // Recover the empty log, run the full feed, crash at the very end.
    auto full = make_front_end(FrontEnd::kSerial, cfg);
    const RecoveryReport empty = full->open();
    EXPECT_EQ(empty.replayed_trips, 0u);
    for (std::size_t i = 0; i < uploads.size(); ++i) {
      if (i == uploads.size() / 3) {
        full->advance_time(uploads[uploads.size() / 3].samples.front().time);
      }
      ASSERT_TRUE(full->process_trip(uploads[i]).accepted());
    }
  }
  auto recovered = make_front_end(FrontEnd::kSerial, cfg);
  const RecoveryReport report = recovered->open();
  EXPECT_EQ(report.replayed_trips, uploads.size());
  recovered->advance_time(end);
  EXPECT_EQ(map_bytes(recovered->snapshot(end, kDay)), expected);
  recovered->close();
}

// The write-ahead property itself: a record that reached the log but whose
// effects never reached fusion (crash between append and apply) is
// recovered. Emulated by appending one extra record directly.
TEST(CrashRecovery, AppendedButUnappliedTripIsRecovered) {
  const auto& uploads = sorted_uploads();
  const SimTime end = at_clock(1, 0, 0);
  const std::size_t cut = uploads.size() / 2;
  const std::string expected =
      reference_map_bytes(FrontEnd::kSerial, false, uploads.size() / 3, end);

  TempDir dir;
  const ServerConfig cfg = durable_config(dir.str(), false);
  {
    auto crashed = make_front_end(FrontEnd::kSerial, cfg);
    crashed->open();
    for (std::size_t i = 0; i < cut; ++i) {
      if (i == uploads.size() / 3) {
        crashed->advance_time(uploads[uploads.size() / 3].samples.front().time);
      }
      ASSERT_TRUE(crashed->process_trip(uploads[i]).accepted());
    }
  }
  {  // The upload at `cut` made the log but never touched fusion.
    const std::string segment = (dir.path / "trips-0000.wal").string();
    const WalScanResult scan = scan_trip_log(segment, /*repair=*/true);
    TripLogWriter writer(segment, FsyncPolicy::kNever, 256, scan.next_seq);
    writer.append(trip_record(uploads[cut]));
    writer.close();
  }
  auto recovered = make_front_end(FrontEnd::kSerial, cfg);
  const RecoveryReport report = recovered->open();
  EXPECT_EQ(report.recovered_trips_per_segment.at(0), cut + 1);
  for (std::size_t i = cut + 1; i < uploads.size(); ++i) {
    ASSERT_TRUE(recovered->process_trip(uploads[i]).accepted());
  }
  recovered->advance_time(end);
  EXPECT_EQ(map_bytes(recovered->snapshot(end, kDay)), expected);
  recovered->close();
}

// Recovery of the fsync'd policies goes through the same code path; one
// smoke arm each to pin the policies' append metadata.
TEST(CrashRecovery, FsyncPoliciesRecoverIdentically) {
  const auto& uploads = sorted_uploads();
  const SimTime end = at_clock(1, 0, 0);
  const std::size_t cut = uploads.size() / 4;
  const std::string expected =
      reference_map_bytes(FrontEnd::kSerial, false, uploads.size() / 3, end);

  for (const FsyncPolicy policy :
       {FsyncPolicy::kInterval, FsyncPolicy::kEveryRecord}) {
    TempDir dir;
    ServerConfig cfg = durable_config(dir.str(), false, policy);
    cfg.durability.fsync_interval_records = 8;
    {
      auto crashed = make_front_end(FrontEnd::kSerial, cfg);
      crashed->open();
      for (std::size_t i = 0; i < cut; ++i) {
        ASSERT_TRUE(crashed->process_trip(uploads[i]).accepted());
      }
      if (policy == FsyncPolicy::kEveryRecord) {
        const MetricsSnapshot ms = crashed->metrics().snapshot();
        EXPECT_GE(ms.counters.at("durability.fsyncs"), cut);
      }
    }
    auto recovered = make_front_end(FrontEnd::kSerial, cfg);
    const RecoveryReport report = recovered->open();
    EXPECT_EQ(report.replayed_trips, cut) << to_string(policy);
    for (std::size_t i = cut; i < uploads.size(); ++i) {
      if (i == uploads.size() / 3) {
        recovered->advance_time(
            uploads[uploads.size() / 3].samples.front().time);
      }
      ASSERT_TRUE(recovered->process_trip(uploads[i]).accepted());
    }
    recovered->advance_time(end);
    EXPECT_EQ(map_bytes(recovered->snapshot(end, kDay)), expected)
        << to_string(policy);
    recovered->close();
  }
}

}  // namespace
}  // namespace bussense
