// Audio-level end-to-end test: the complete phone stack on raw samples.
//
// DESIGN.md documents that day-scale simulation uses an event-level beep
// channel calibrated against the audio path. This test validates the whole
// chain with no such shortcut: a bus run's cabin audio is synthesised
// sample-by-sample with the true tap times, the Goertzel beep detector
// recovers the beeps, the trip recorder builds the upload with real
// cellular scans at the detected instants, and the server maps the trip.
#include <gtest/gtest.h>

#include <map>

#include "core/server.h"
#include "core/stop_database.h"
#include "dsp/audio_synth.h"
#include "dsp/beep_detector.h"
#include "sensing/trip_recorder.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

TEST(AudioEndToEnd, FullRideThroughRawAudio) {
  WorldConfig cfg;
  cfg.city.route_names = {"243", "99"};
  cfg.city.width_m = 6000.0;
  cfg.city.height_m = 4000.0;
  cfg.seed = 5;
  const World world(cfg);
  const City& city = world.city();
  Rng rng(6);

  // Survey database + server.
  StopDatabase db = build_stop_database(
      city, [&](StopId s, int run) { return world.scan_stop(s, rng, run % 2); },
      5);
  TrafficServer server(city, std::move(db));

  // Simulate the physical run: the rider boards at stop 2, alights at 8.
  const BusRoute& route = *city.route_by_name("243", 0);
  const int board = 2, alight = 8;
  const BusRun run = world.buses().simulate_run(
      route, at_clock(0, 9, 0), {{board, 1}}, {{alight, 1}}, 600.0, rng,
      /*record_trajectory=*/true);

  // Collect the true tap times heard during the ride and synthesise the
  // cabin audio for that window (relative to ride start).
  const SimTime ride_start = run.visits[board].arrival - 2.0;
  const SimTime ride_end = run.visits[alight].departure + 2.0;
  std::vector<SimTime> tap_offsets;
  std::map<double, StopId> stop_at_offset;  // truth per beep offset
  for (int k = board; k <= alight; ++k) {
    const StopVisit& v = run.visits[static_cast<std::size_t>(k)];
    for (const TapEvent& tap : v.taps) {
      tap_offsets.push_back(tap.time - ride_start);
      stop_at_offset[tap.time - ride_start] = v.stop;
    }
  }
  ASSERT_GE(tap_offsets.size(), 8u);
  AudioEnvironmentConfig cabin;
  const auto audio =
      synthesize_bus_audio(cabin, ride_end - ride_start, tap_offsets, rng);

  // Phone stack: detector -> recorder with real scans at detected times.
  BeepDetector detector;
  detector.set_origin(ride_start);
  const auto events = detector.process(audio);
  // Nearly every tap detected, no gross over-detection.
  EXPECT_GE(events.size(), tap_offsets.size() * 9 / 10);
  EXPECT_LE(events.size(), tap_offsets.size() + 2);

  std::vector<StopId> truth_sequence;
  TripRecorder recorder(
      TripRecorderConfig{}, 1,
      [&](SimTime t) {
        // The phone scans wherever the bus is at the detected time.
        const Point pos = route.path().point_at(run.arc_at(t));
        // Truth bookkeeping: nearest tap offset identifies the stop.
        double best = 1e18;
        StopId stop = kInvalidStop;
        for (const auto& [offset, s] : stop_at_offset) {
          if (std::abs(offset - (t - ride_start)) < best) {
            best = std::abs(offset - (t - ride_start));
            stop = s;
          }
        }
        truth_sequence.push_back(stop);
        return world.scanner().scan_fingerprint(world.radio(), pos, rng, true);
      },
      [&](SimTime) { return 0.9; });  // riding a bus
  for (const BeepEvent& e : events) recorder.on_beep(e.time);
  const auto upload = recorder.flush();
  ASSERT_TRUE(upload.has_value());
  ASSERT_EQ(upload->samples.size(), truth_sequence.size());

  // Backend: the mapped stops match the audio-derived ground truth.
  const auto report = server.process_trip(*upload);
  ASSERT_GE(report.mapped.stops.size(), 5u);
  std::map<double, StopId> truth_by_time;
  for (std::size_t i = 0; i < upload->samples.size(); ++i) {
    truth_by_time[upload->samples[i].time] = truth_sequence[i];
  }
  int correct = 0, total = 0;
  for (const MappedCluster& mc : report.mapped.stops) {
    std::map<StopId, int> votes;
    for (const MatchedSample& m : mc.cluster.members) {
      ++votes[truth_by_time.at(m.sample.time)];
    }
    StopId majority = kInvalidStop;
    int best = 0;
    for (const auto& [stop, count] : votes) {
      if (count > best) {
        best = count;
        majority = stop;
      }
    }
    ++total;
    if (mc.stop == city.effective_stop(majority)) ++correct;
  }
  EXPECT_GE(correct, total - 1);  // at most one mis-mapped visit
  EXPECT_GT(report.estimates.size(), 3u);

  // Timing fidelity: detected beep times reproduce tap times closely, so
  // the travel-time estimates carry through.
  for (const SpeedEstimate& e : report.estimates) {
    EXPECT_GT(e.att_speed_kmh, 3.0);
    EXPECT_LT(e.att_speed_kmh, 80.0);
  }
}

TEST(AudioEndToEnd, TrainRideIsFilteredAtTheFirstBeep) {
  // Same audio stack, but the accelerometer says "rapid train": the trip
  // recorder must refuse to record anything.
  AudioEnvironmentConfig cabin;
  Rng rng(7);
  const auto audio = synthesize_bus_audio(cabin, 8.0, {2.0, 3.0, 4.0}, rng);
  BeepDetector detector;
  const auto events = detector.process(audio);
  ASSERT_GE(events.size(), 3u);
  int scans = 0;
  TripRecorder recorder(
      TripRecorderConfig{}, 2,
      [&](SimTime) {
        ++scans;
        return Fingerprint{{1}};
      },
      [](SimTime) { return 0.05; });  // smooth: a train
  for (const BeepEvent& e : events) recorder.on_beep(e.time);
  EXPECT_FALSE(recorder.flush().has_value());
  EXPECT_EQ(scans, 0);
}

}  // namespace
}  // namespace bussense
