// Unit tests for the phone-side sensing stack: GPS error model, vehicle
// classification, trip recorder, power model.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "sensing/accel_model.h"
#include "sensing/gps_model.h"
#include "sensing/power_model.h"
#include "sensing/trip_recorder.h"

namespace bussense {
namespace {

// --------------------------------------------------------------- gps model

TEST(GpsModel, StationaryMatchesPaperFigure1) {
  const GpsModel gps;
  Rng rng(1);
  EmpiricalDistribution d;
  for (int i = 0; i < 30000; ++i) {
    d.add(gps.sample_error_m(GpsMode::kStationary, rng));
  }
  EXPECT_NEAR(d.median(), 40.0, 2.0);       // paper: median ~40 m
  EXPECT_NEAR(d.percentile(90.0), 75.0, 5.0);  // paper: p90 ~75 m
}

TEST(GpsModel, MobileOnBusWorseThanStationary) {
  const GpsModel gps;
  Rng rng(2);
  EmpiricalDistribution d;
  for (int i = 0; i < 30000; ++i) {
    d.add(gps.sample_error_m(GpsMode::kMobileOnBus, rng));
  }
  EXPECT_NEAR(d.median(), 68.0, 3.0);        // paper: median ~68 m
  EXPECT_NEAR(d.percentile(90.0), 130.0, 8.0);  // paper: p90 ~130 m
}

TEST(GpsModel, FixOffsetMatchesSampledError) {
  const GpsModel gps;
  Rng rng(3);
  const Point truth{1000.0, 2000.0};
  RunningStats err;
  for (int i = 0; i < 5000; ++i) {
    err.add(distance(gps.sample_fix(truth, GpsMode::kStationary, rng), truth));
  }
  EXPECT_NEAR(err.mean(), 45.0, 5.0);  // lognormal(40, .49) mean ~45
}

TEST(GpsModel, BearingIsUnbiased) {
  const GpsModel gps;
  Rng rng(4);
  const Point truth{0.0, 0.0};
  Point sum{0.0, 0.0};
  for (int i = 0; i < 20000; ++i) {
    sum = sum + gps.sample_fix(truth, GpsMode::kMobileOnBus, rng);
  }
  EXPECT_NEAR(sum.x / 20000.0, 0.0, 2.0);
  EXPECT_NEAR(sum.y / 20000.0, 0.0, 2.0);
}

// ------------------------------------------------------------- accel model

TEST(AccelModel, BusAndTrainPopulationsSeparate) {
  const AccelModel accel;
  Rng rng(5);
  int bus_below = 0, train_above = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (accel.sample_variance(VehicleClass::kBus, rng) <
        kDefaultAccelVarianceThreshold) {
      ++bus_below;
    }
    if (accel.sample_variance(VehicleClass::kRapidTrain, rng) >=
        kDefaultAccelVarianceThreshold) {
      ++train_above;
    }
  }
  // Misclassification on either side stays below ~1%.
  EXPECT_LT(bus_below, n / 100);
  EXPECT_LT(train_above, n / 100);
}

TEST(AccelModel, MediansMatchConfig) {
  AccelModelConfig cfg;
  const AccelModel accel(cfg);
  Rng rng(6);
  EmpiricalDistribution bus, train;
  for (int i = 0; i < 20000; ++i) {
    bus.add(accel.sample_variance(VehicleClass::kBus, rng));
    train.add(accel.sample_variance(VehicleClass::kRapidTrain, rng));
  }
  EXPECT_NEAR(bus.median(), cfg.bus_variance_median, 0.05);
  EXPECT_NEAR(train.median(), cfg.train_variance_median, 0.01);
}

// ----------------------------------------------------------- trip recorder

TripRecorder make_recorder(double accel_variance = 1.0,
                           TripRecorderConfig cfg = {}) {
  return TripRecorder(
      cfg, 7, [](SimTime) { return Fingerprint{{1, 2, 3}}; },
      [accel_variance](SimTime) { return accel_variance; });
}

TEST(TripRecorder, RecordsSamplesPerBeep) {
  auto rec = make_recorder();
  EXPECT_FALSE(rec.on_beep(100.0).has_value());
  EXPECT_TRUE(rec.recording());
  rec.on_beep(101.0);
  rec.on_beep(160.0);
  EXPECT_EQ(rec.open_sample_count(), 3u);
  const auto trip = rec.flush();
  ASSERT_TRUE(trip.has_value());
  EXPECT_EQ(trip->samples.size(), 3u);
  EXPECT_EQ(trip->participant_id, 7);
  EXPECT_DOUBLE_EQ(trip->samples[0].time, 100.0);
  EXPECT_EQ(trip->samples[0].fingerprint, (Fingerprint{{1, 2, 3}}));
}

TEST(TripRecorder, TimeoutConcludesTrip) {
  auto rec = make_recorder();
  rec.on_beep(0.0);
  rec.on_beep(30.0);
  EXPECT_FALSE(rec.tick(500.0).has_value());  // within 10 min
  const auto trip = rec.tick(700.0);
  ASSERT_TRUE(trip.has_value());
  EXPECT_EQ(trip->samples.size(), 2u);
  EXPECT_FALSE(rec.recording());
}

TEST(TripRecorder, LateBeepClosesOldTripAndOpensNew) {
  auto rec = make_recorder();
  rec.on_beep(0.0);
  rec.on_beep(20.0);
  const auto done = rec.on_beep(2000.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->samples.size(), 2u);
  EXPECT_TRUE(rec.recording());
  EXPECT_EQ(rec.open_sample_count(), 1u);
}

TEST(TripRecorder, TrainRidesAreRejected) {
  auto rec = make_recorder(/*accel_variance=*/0.05);
  EXPECT_FALSE(rec.on_beep(0.0).has_value());
  EXPECT_FALSE(rec.recording());
  EXPECT_FALSE(rec.flush().has_value());
}

TEST(TripRecorder, AccelCheckedOnlyAtTripStart) {
  // First beep on a bus; later low-variance readings don't cancel the trip.
  int calls = 0;
  TripRecorder rec(
      TripRecorderConfig{}, 1, [](SimTime) { return Fingerprint{{9}}; },
      [&calls](SimTime) {
        ++calls;
        return calls == 1 ? 1.0 : 0.01;
      });
  rec.on_beep(0.0);
  rec.on_beep(10.0);
  rec.on_beep(20.0);
  const auto trip = rec.flush();
  ASSERT_TRUE(trip.has_value());
  EXPECT_EQ(trip->samples.size(), 3u);
  EXPECT_EQ(calls, 1);
}

TEST(TripRecorder, SingleSampleTripDiscarded) {
  auto rec = make_recorder();
  rec.on_beep(0.0);
  EXPECT_FALSE(rec.flush().has_value());
}

TEST(TripRecorder, MinSamplesConfigurable) {
  TripRecorderConfig cfg;
  cfg.min_samples = 1;
  auto rec = make_recorder(1.0, cfg);
  rec.on_beep(0.0);
  const auto trip = rec.flush();
  ASSERT_TRUE(trip.has_value());
  EXPECT_EQ(trip->samples.size(), 1u);
}

TEST(TripRecorder, RequiresCallbacks) {
  EXPECT_THROW(TripRecorder(TripRecorderConfig{}, 0, nullptr,
                            [](SimTime) { return 1.0; }),
               std::invalid_argument);
  EXPECT_THROW(TripRecorder(TripRecorderConfig{}, 0,
                            [](SimTime) { return Fingerprint{}; }, nullptr),
               std::invalid_argument);
}

// -------------------------------------------------------------- power model

TEST(PowerModel, TableThreeHtcValues) {
  const PowerModel power;
  const PhoneProfile htc = htc_sensation_profile();
  EXPECT_NEAR(power.mean_power_mw(htc, SensorConfig::kNoSensors), 70.0, 1.0);
  EXPECT_NEAR(power.mean_power_mw(htc, SensorConfig::kCellular1Hz), 72.0, 1.0);
  EXPECT_NEAR(power.mean_power_mw(htc, SensorConfig::kGps), 340.0, 2.0);
  EXPECT_NEAR(power.mean_power_mw(htc, SensorConfig::kCellularMicGoertzel),
              82.0, 3.0);
  EXPECT_NEAR(power.mean_power_mw(htc, SensorConfig::kGpsMicGoertzel), 447.0,
              5.0);
}

TEST(PowerModel, TableThreeNexusValues) {
  const PowerModel power;
  const PhoneProfile nexus = nexus_one_profile();
  EXPECT_NEAR(power.mean_power_mw(nexus, SensorConfig::kNoSensors), 84.0, 1.0);
  EXPECT_NEAR(power.mean_power_mw(nexus, SensorConfig::kCellular1Hz), 85.0, 1.0);
  EXPECT_NEAR(power.mean_power_mw(nexus, SensorConfig::kGps), 333.0, 2.0);
  EXPECT_NEAR(power.mean_power_mw(nexus, SensorConfig::kCellularMicGoertzel),
              96.0, 3.0);
  EXPECT_NEAR(power.mean_power_mw(nexus, SensorConfig::kGpsMicGoertzel), 443.0,
              5.0);
}

TEST(PowerModel, GoertzelSavesOverFft) {
  // Paper Section IV-D: replacing FFT with Goertzel cuts the app draw by
  // tens of milliwatts.
  const PowerModel power;
  const PhoneProfile htc = htc_sensation_profile();
  const double goertzel =
      power.mean_power_mw(htc, SensorConfig::kCellularMicGoertzel);
  const double fft = power.mean_power_mw(htc, SensorConfig::kCellularMicFft);
  EXPECT_GT(fft - goertzel, 40.0);
  EXPECT_LT(fft - goertzel, 90.0);
}

TEST(PowerModel, DspRateModelOrdersCorrectly) {
  const PowerModel power;
  // Goertzel monitors M=2 tones: 16k MAC/s at 8 kHz; the FFT front end costs
  // over an order of magnitude more.
  EXPECT_DOUBLE_EQ(power.dsp_mac_rate(false), 16000.0);
  EXPECT_GT(power.dsp_mac_rate(true), 10.0 * power.dsp_mac_rate(false));
}

TEST(PowerModel, GpsDominatesCellular) {
  const PowerModel power;
  for (const PhoneProfile& phone :
       {htc_sensation_profile(), nexus_one_profile()}) {
    const double gps = power.mean_power_mw(phone, SensorConfig::kGps) -
                       power.mean_power_mw(phone, SensorConfig::kNoSensors);
    const double cell =
        power.mean_power_mw(phone, SensorConfig::kCellular1Hz) -
        power.mean_power_mw(phone, SensorConfig::kNoSensors);
    EXPECT_GT(gps, 100.0 * cell);
  }
}

TEST(PowerModel, SessionMeasurementNoiseShrinksWithDuration) {
  const PowerModel power;
  const PhoneProfile htc = htc_sensation_profile();
  Rng rng(20);
  RunningStats short_runs, long_runs;
  for (int i = 0; i < 400; ++i) {
    short_runs.add(
        power.measure_session_mw(htc, SensorConfig::kGps, 60.0, rng));
    long_runs.add(
        power.measure_session_mw(htc, SensorConfig::kGps, 3600.0, rng));
  }
  EXPECT_GT(short_runs.stddev(), 2.0 * long_runs.stddev());
  EXPECT_NEAR(long_runs.mean(), 340.0, 10.0);
}

TEST(PowerModel, SessionRejectsNonPositiveDuration) {
  const PowerModel power;
  Rng rng(21);
  EXPECT_THROW(power.measure_session_mw(htc_sensation_profile(),
                                        SensorConfig::kGps, 0.0, rng),
               std::invalid_argument);
}

TEST(PowerModel, ConfigNames) {
  EXPECT_EQ(to_string(SensorConfig::kNoSensors), "No sensors");
  EXPECT_EQ(to_string(SensorConfig::kGpsMicGoertzel), "GPS+Mic(Goertzel)");
  EXPECT_EQ(to_string(SensorConfig::kCellularMicFft), "Cellular+Mic(FFT)");
}

}  // namespace
}  // namespace bussense
