// Property suite for the fixed-point batch-scoring kernel and the matcher's
// SIMD path (DESIGN.md §12).
//
// The contract under test: the vectorized path is a *pure optimisation* —
// similarity()/match()/match_all() results (scores, winners, tie-breaks by
// common-cell count, below-γ rejections) are bit-identical across every
// kernel (AVX2 / NEON / scalar batch) and across index on/off × SIMD
// on/off, for randomized fingerprints, degenerate lengths (0/1/max),
// duplicate cell IDs and non-quantizable scoring configs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/matching.h"
#include "core/matching_simd.h"
#include "core/stop_database.h"
#include "core/stop_matcher.h"

namespace bussense {
namespace {

Fingerprint random_fingerprint(Rng& rng, int len, int pool) {
  Fingerprint fp;
  for (int i = 0; i < len; ++i) fp.cells.push_back(rng.uniform_int(1, pool));
  return fp;
}

// ------------------------------------------------- fixed-point quantization

TEST(FixedPoint, DefaultConfigQuantizesExactly) {
  const FixedScores fs = quantize_scores(MatchingConfig{});
  EXPECT_TRUE(fs.exact);
  EXPECT_EQ(fs.match, 10);
  EXPECT_EQ(fs.mismatch, 3);
  EXPECT_EQ(fs.gap, 3);
}

TEST(FixedPoint, NonDeciMultiplesAreRejected) {
  MatchingConfig cfg;
  cfg.mismatch_penalty = 0.25;  // llround→3, but 0.3 != 0.25
  EXPECT_FALSE(quantize_scores(cfg).exact);
  cfg.mismatch_penalty = 0.3;
  cfg.match_score = 1.0 + 1e-12;
  EXPECT_FALSE(quantize_scores(cfg).exact);
  cfg.match_score = 4000.0;  // 40000 deci-units overflow int16
  EXPECT_FALSE(quantize_scores(cfg).exact);
}

TEST(FixedPoint, UsabilityTracksOverflowBound) {
  const FixedScores fs = quantize_scores(MatchingConfig{});
  EXPECT_TRUE(fixed_point_usable(fs, 0));
  EXPECT_TRUE(fixed_point_usable(fs, 7));
  EXPECT_TRUE(fixed_point_usable(fs, 3276));   // 32760 fits int16
  EXPECT_FALSE(fixed_point_usable(fs, 3277));  // 32770 would overflow
  MatchingConfig negative;
  negative.gap_penalty = -0.3;  // growth along gaps breaks the bound proof
  EXPECT_FALSE(fixed_point_usable(quantize_scores(negative), 7));
}

TEST(FixedPoint, ScalarSimilarityMatchesPaperInstanceExactly) {
  // {1,2,3,4,5} vs {1,7,3,5}: 3 matches − 1 gap − 1 mismatch = 24 deci.
  const Fingerprint upload{{1, 2, 3, 4, 5}};
  const Fingerprint database{{1, 7, 3, 5}};
  EXPECT_EQ(similarity(upload, database), fixed_to_score(24));
}

// ----------------------------------------------------------- kernel identity

std::vector<simd::Kernel> available_kernels() {
  std::vector<simd::Kernel> out{simd::Kernel::kScalar};
  if (simd::kernel_available(simd::Kernel::kAvx2)) {
    out.push_back(simd::Kernel::kAvx2);
  }
  if (simd::kernel_available(simd::Kernel::kNeon)) {
    out.push_back(simd::Kernel::kNeon);
  }
  return out;
}

TEST(KernelDispatch, ActiveKernelIsAvailableAndNamed) {
  const simd::Kernel k = simd::active_kernel();
  EXPECT_NE(k, simd::Kernel::kAuto);
  EXPECT_TRUE(simd::kernel_available(k));
  EXPECT_STRNE(simd::kernel_name(k), "unknown");
  EXPECT_EQ(simd::batch_width(k), k == simd::Kernel::kAvx2 ? 16u : 8u);
  EXPECT_EQ(simd::batch_width(simd::Kernel::kAuto), simd::batch_width(k));
}

// Every compiled kernel scores a transposed batch identically to per-pair
// scalar similarity() — the core bit-identity the matcher relies on. Runs
// rank-space batches against cell-ID-space similarity() via an identity
// dictionary (ranks == cell ids), which the quantization argument reduces to.
class KernelIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KernelIdentity, BatchScoresEqualScalarSimilarity) {
  Rng rng(GetParam());
  const FixedScores fs = quantize_scores(MatchingConfig{});
  for (const simd::Kernel kernel : available_kernels()) {
    const std::size_t width = simd::batch_width(kernel);
    std::vector<std::int16_t> db_t;
    std::vector<std::int16_t> scores10(width);
    for (int trial = 0; trial < 50; ++trial) {
      // Degenerate lengths on purpose: n in 0..8, m in 1..8, small pools
      // force duplicates and unknown-cell mismatches.
      const int n = rng.uniform_int(0, 8);
      const int m = rng.uniform_int(1, 8);
      const int pool = rng.uniform_int(2, 12);
      const Fingerprint upload = random_fingerprint(rng, n, pool);
      std::vector<Fingerprint> lanes;
      const std::size_t used = 1 + rng.uniform_int(0, static_cast<int>(width) - 1);
      for (std::size_t l = 0; l < used; ++l) {
        lanes.push_back(random_fingerprint(rng, m, pool));
      }
      // Identity quantization: cell ids are already small ints.
      std::vector<std::int16_t> up(upload.cells.begin(), upload.cells.end());
      db_t.assign(static_cast<std::size_t>(m) * width, simd::kPadRank);
      for (std::size_t l = 0; l < used; ++l) {
        for (int j = 0; j < m; ++j) {
          db_t[static_cast<std::size_t>(j) * width + l] =
              static_cast<std::int16_t>(lanes[l].cells[j]);
        }
      }
      simd::score_batch(up.data(), up.size(), db_t.data(), m, fs,
                        scores10.data(), kernel);
      for (std::size_t l = 0; l < used; ++l) {
        EXPECT_EQ(fixed_to_score(scores10[l]), similarity(upload, lanes[l]))
            << simd::kernel_name(kernel) << " lane " << l << ": "
            << to_string(upload) << " vs " << to_string(lanes[l]);
      }
      for (std::size_t l = used; l < width; ++l) {
        EXPECT_EQ(scores10[l], 0) << "pad lane " << l << " must score 0";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelIdentity, ::testing::Values(21, 22, 23));

TEST(KernelIdentity, CompiledKernelsAgreeWithEachOther) {
  // Redundant with the scalar comparison above but pins the cross-ISA
  // claim directly on hosts that have a vector unit.
  const auto kernels = available_kernels();
  if (kernels.size() < 2) GTEST_SKIP() << "no vector kernel compiled in";
  Rng rng(99);
  const FixedScores fs = quantize_scores(MatchingConfig{});
  for (int trial = 0; trial < 100; ++trial) {
    const int n = rng.uniform_int(1, 7);
    const int m = rng.uniform_int(1, 7);
    const Fingerprint upload = random_fingerprint(rng, n, 9);
    // Build one batch per kernel width from the same candidates.
    std::vector<Fingerprint> cands;
    for (std::size_t l = 0; l < 8; ++l) {
      cands.push_back(random_fingerprint(rng, m, 9));
    }
    std::vector<std::int16_t> up(upload.cells.begin(), upload.cells.end());
    std::vector<std::vector<std::int16_t>> results;
    for (const simd::Kernel kernel : kernels) {
      const std::size_t width = simd::batch_width(kernel);
      std::vector<std::int16_t> db_t(static_cast<std::size_t>(m) * width,
                                     simd::kPadRank);
      for (std::size_t l = 0; l < cands.size(); ++l) {
        for (int j = 0; j < m; ++j) {
          db_t[static_cast<std::size_t>(j) * width + l] =
              static_cast<std::int16_t>(cands[l].cells[j]);
        }
      }
      std::vector<std::int16_t> scores10(width);
      simd::score_batch(up.data(), up.size(), db_t.data(), m, fs,
                        scores10.data(), kernel);
      scores10.resize(cands.size());
      results.push_back(std::move(scores10));
    }
    for (std::size_t k = 1; k < results.size(); ++k) {
      EXPECT_EQ(results[k], results[0]) << simd::kernel_name(kernels[k]);
    }
  }
}

// ------------------------------------------------------------ quantized view

TEST(QuantizedView, DictionaryIsInjectiveAndRanksMirrorRecords) {
  StopDatabase db;
  db.add(1, Fingerprint{{100, 200, 300}});
  db.add(2, Fingerprint{{200, 400}});
  db.add(3, Fingerprint{{100, 100, 500}});  // duplicate cell in one print
  const StopDatabase::QuantizedView& qv = db.quantized();
  ASSERT_TRUE(qv.valid);
  ASSERT_EQ(qv.record.size(), 3u);
  std::size_t total = 0;
  for (std::size_t r = 0; r < db.size(); ++r) {
    const std::vector<CellId>& cells = db.records()[r].fingerprint.cells;
    ASSERT_EQ(qv.record[r].length, cells.size());
    for (std::size_t j = 0; j < cells.size(); ++j) {
      EXPECT_EQ(qv.ranks[qv.record[r].offset + j], qv.rank_of(cells[j]));
      EXPECT_GE(qv.rank_of(cells[j]), 0);
    }
    total += cells.size();
  }
  EXPECT_EQ(qv.ranks.size(), total);
  EXPECT_EQ(qv.rank_of(999999), simd::kUnknownRank);
  // Injective: distinct cells → distinct ranks.
  EXPECT_NE(qv.rank_of(100), qv.rank_of(200));
  EXPECT_NE(qv.rank_of(200), qv.rank_of(400));
}

TEST(QuantizedView, RanksAreGroupedByLengthClass) {
  StopDatabase db;
  db.add(1, Fingerprint{{1, 2, 3, 4, 5}});
  db.add(2, Fingerprint{{6, 7}});
  db.add(3, Fingerprint{{8, 9, 10, 11, 12}});
  db.add(4, Fingerprint{{13, 14}});
  const StopDatabase::QuantizedView& qv = db.quantized();
  // Offsets ordered by (length, record): both 2-cell records precede both
  // 5-cell records in the rank blob.
  EXPECT_LT(qv.record[1].offset, qv.record[3].offset);
  EXPECT_LT(qv.record[3].offset, qv.record[0].offset);
  EXPECT_LT(qv.record[0].offset, qv.record[2].offset);
}

TEST(QuantizedView, MutationInvalidatesAndRebuilds) {
  StopDatabase db;
  db.add(1, Fingerprint{{1, 2, 3}});
  const std::size_t before = db.quantized().ranks.size();
  EXPECT_EQ(before, 3u);
  db.add(1, Fingerprint{{4, 5, 6, 7}});  // replace
  const StopDatabase::QuantizedView& qv = db.quantized();
  EXPECT_EQ(qv.ranks.size(), 4u);
  EXPECT_EQ(qv.record[0].length, 4u);
  EXPECT_EQ(qv.rank_of(7), qv.ranks[qv.record[0].offset + 3]);
  // Copies rebuild their own cache lazily.
  const StopDatabase copy = db;
  EXPECT_EQ(copy.quantized().ranks.size(), 4u);
}

// ----------------------------------------- matcher bit-identity sweep

struct MatcherSet {
  // The four acceleration corners; [0] (index off, simd off) is the
  // reference brute-force scan.
  std::vector<StopMatcher> matchers;
  explicit MatcherSet(const StopDatabase& db, StopMatcherConfig base = {}) {
    for (const bool use_index : {false, true}) {
      for (const bool use_simd : {false, true}) {
        StopMatcherConfig cfg = base;
        cfg.accel.use_index = use_index;
        cfg.accel.use_simd = use_simd;
        matchers.emplace_back(db, cfg);
      }
    }
  }
};

void expect_identical_results(const MatcherSet& set, const Fingerprint& sample) {
  const auto ref = set.matchers[0].match(sample);
  const auto ref_all = set.matchers[0].match_all(sample);
  for (std::size_t i = 1; i < set.matchers.size(); ++i) {
    const StopMatcher& m = set.matchers[i];
    const auto got = m.match(sample);
    ASSERT_EQ(got.has_value(), ref.has_value())
        << "config " << i << " sample " << to_string(sample);
    if (ref) {
      EXPECT_EQ(got->stop, ref->stop) << "config " << i;
      EXPECT_EQ(got->score, ref->score) << "config " << i;  // bit-identical
      EXPECT_EQ(got->common_cells, ref->common_cells) << "config " << i;
    }
    const auto got_all = m.match_all(sample);
    ASSERT_EQ(got_all.size(), ref_all.size()) << "config " << i;
    for (std::size_t j = 0; j < got_all.size(); ++j) {
      EXPECT_EQ(got_all[j].stop, ref_all[j].stop) << "config " << i;
      EXPECT_EQ(got_all[j].score, ref_all[j].score) << "config " << i;
      EXPECT_EQ(got_all[j].common_cells, ref_all[j].common_cells)
          << "config " << i;
    }
  }
}

class SimdMatcherEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdMatcherEquivalence, AllAccelerationCornersMatchBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const int n_records = rng.uniform_int(1, 60);
    const int pool = rng.uniform_int(4, 10 + 4 * n_records);
    StopDatabase db;
    for (int r = 0; r < n_records; ++r) {
      // Mixed length classes incl. degenerate 1-cell prints; small pools
      // force duplicate cell IDs within and across fingerprints.
      db.add(static_cast<StopId>(r + 1),
             random_fingerprint(rng, rng.uniform_int(1, 9), pool));
    }
    const MatcherSet set(db);
    // The batch path engages exactly when a vector kernel is live; either
    // way the identity sweep below must hold.
    EXPECT_EQ(set.matchers[3].simd_active(),
              simd::active_kernel() != simd::Kernel::kScalar);
    for (int q = 0; q < 30; ++q) {
      expect_identical_results(
          set, random_fingerprint(rng, rng.uniform_int(0, 8), pool));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdMatcherEquivalence,
                         ::testing::Values(31, 32, 33));

TEST(SimdMatcher, TieBreaksIdenticallyAcrossCorners) {
  // Three records with the same score against the probe; two share the same
  // common-cell count, so the winner is decided by (score, common, db
  // order) exactly as the scalar scan resolves it.
  StopDatabase db;
  db.add(1, Fingerprint{{1, 2, 9}});   // score 2, common 2
  db.add(2, Fingerprint{{1, 2, 8}});   // score 2, common 2 (db-order loser)
  db.add(3, Fingerprint{{1, 2}});      // score 2, common 2, shorter
  const Fingerprint probe{{1, 2, 7}};
  const MatcherSet set(db);
  const auto ref = set.matchers[0].match(probe);
  ASSERT_TRUE(ref.has_value());
  expect_identical_results(set, probe);
}

TEST(SimdMatcher, NonQuantizableConfigFallsBackScalar) {
  StopDatabase db;
  db.add(1, Fingerprint{{1, 2, 3, 4}});
  db.add(2, Fingerprint{{3, 4, 5, 6}});
  StopMatcherConfig cfg;
  cfg.matching.mismatch_penalty = 0.25;  // not a deci multiple
  const MatcherSet set(db, cfg);
  EXPECT_FALSE(set.matchers[3].simd_active());
  Rng rng(7);
  for (int q = 0; q < 20; ++q) {
    expect_identical_results(set, random_fingerprint(rng, rng.uniform_int(0, 7), 8));
  }
}

TEST(SimdMatcher, OverflowLengthClassFallsBackPerClass) {
  // match_score 3276.7 quantizes to 32767 deci-units: usable for 1-cell
  // prints, overflow for anything longer — the SIMD path must score the
  // long class through scalar similarity() and still agree bitwise.
  StopDatabase db;
  db.add(1, Fingerprint{{1}});
  db.add(2, Fingerprint{{1, 2}});
  db.add(3, Fingerprint{{2, 3}});
  StopMatcherConfig cfg;
  cfg.matching.match_score = 3276.7;
  cfg.accept_threshold = 3276.7;
  const MatcherSet set(db, cfg);
  EXPECT_EQ(set.matchers[3].simd_active(),
            simd::active_kernel() != simd::Kernel::kScalar);
  Rng rng(8);
  for (int q = 0; q < 20; ++q) {
    expect_identical_results(set, random_fingerprint(rng, rng.uniform_int(0, 4), 5));
  }
}

TEST(SimdMatcher, EmptyDatabaseAndEmptySample) {
  StopDatabase empty_db;
  const MatcherSet empty_set(empty_db);
  expect_identical_results(empty_set, Fingerprint{{1, 2, 3}});
  StopDatabase db;
  db.add(1, Fingerprint{{1, 2, 3}});
  const MatcherSet set(db);
  expect_identical_results(set, Fingerprint{});
}

// ------------------------------------------------------- stats accounting

TEST(SimdMatcher, StatsInvariantsHoldOnSimdPath) {
  Rng rng(77);
  StopDatabase db;
  for (int r = 0; r < 40; ++r) {
    db.add(static_cast<StopId>(r + 1), random_fingerprint(rng, 7, 30));
  }
  // Index + simd on; the scalar path has its own incumbent skip, so the
  // invariants (and a firing prescreen) hold whether or not a vector
  // kernel is live on this host.
  const StopMatcher matcher(db);
  std::size_t skipped_total = 0;
  for (int q = 0; q < 60; ++q) {
    MatchStats stats;
    (void)matcher.match(random_fingerprint(rng, 7, 30), &stats);
    EXPECT_EQ(stats.records_considered, db.size());
    EXPECT_LE(stats.gamma_candidates, stats.records_considered);
    EXPECT_LE(stats.records_accepted + stats.records_bound_skipped,
              stats.gamma_candidates);
    EXPECT_EQ(stats.records_pruned,
              stats.records_considered - stats.records_accepted);
    skipped_total += stats.records_bound_skipped;
    // match_all never skips on the incumbent bound.
    MatchStats all_stats;
    (void)matcher.match_all(random_fingerprint(rng, 7, 30), &all_stats);
    EXPECT_EQ(all_stats.records_bound_skipped, 0u);
    EXPECT_EQ(all_stats.records_accepted, all_stats.gamma_candidates);
  }
  // The prescreen must actually fire on a crowded database.
  EXPECT_GT(skipped_total, 0u);
}

TEST(SimdMatcher, BoundSkippedFlowsIntoMetricsRegistry) {
  Rng rng(78);
  StopDatabase db;
  for (int r = 0; r < 40; ++r) {
    db.add(static_cast<StopId>(r + 1), random_fingerprint(rng, 7, 30));
  }
  StopMatcher matcher(db);
  MetricsRegistry registry;
  matcher.bind_metrics(&registry);
  MatchStats total;
  for (int q = 0; q < 60; ++q) {
    MatchStats stats;
    (void)matcher.match(random_fingerprint(rng, 7, 30), &stats);
    total.merge(stats);
  }
  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("matcher.calls"), 60u);
  EXPECT_EQ(snap.counters.at("matcher.records_bound_skipped"),
            total.records_bound_skipped);
  EXPECT_EQ(snap.counters.at("matcher.records_accepted"),
            total.records_accepted);
}

// ------------------------------------------------- scratch retention cap

TEST(SimdMatcher, CandidateScratchShrinksAfterHugeDatabase) {
  // A single call against a >2^16-record database grows the thread-local
  // candidate scratch; the next call against a small database must give the
  // memory back (DESIGN.md §12 retention cap).
  constexpr std::size_t kHuge = (std::size_t{1} << 16) + 500;
  StopDatabase huge;
  for (std::size_t r = 0; r < kHuge; ++r) {
    huge.add(static_cast<StopId>(r + 1),
             Fingerprint{{static_cast<CellId>(1 + (r % 97)),
                          static_cast<CellId>(200 + (r % 89))}});
  }
  const StopMatcher big_matcher(huge);
  (void)big_matcher.match(Fingerprint{{5, 205, 7}});
  EXPECT_GE(StopMatcher::thread_scratch_capacity(), kHuge);

  StopDatabase small;
  small.add(1, Fingerprint{{5, 205, 7}});
  const StopMatcher small_matcher(small);
  const auto hit = small_matcher.match(Fingerprint{{5, 205, 7}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->stop, 1);
  EXPECT_LE(StopMatcher::thread_scratch_capacity(),
            std::size_t{1} << 16);
}

}  // namespace
}  // namespace bussense
