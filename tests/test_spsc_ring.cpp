// Lock-free SPSC ring: capacity/wrap/full/empty invariants, FIFO order
// across wraps, single-producer single-consumer stress (run this suite
// under TSan via scripts/tier1.sh BUSSENSE_SHARDED=ON), and the
// drain-on-shutdown ordering the sharded ingest service relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"

namespace bussense {
namespace {

// ----------------------------------------------------- capacity invariants

TEST(SpscRingCapacity, RoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRingInvariants, FullAndEmptyBoundaries) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(int(i))) << i;
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));  // full: refused, nothing overwritten
  EXPECT_EQ(ring.size(), 4u);

  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));  // empty: refused, out untouched
  EXPECT_EQ(out, 3);
}

TEST(SpscRingInvariants, FifoOrderSurvivesManyWraps) {
  SpscRing<std::uint32_t> ring(8);
  std::uint32_t pushed = 0, popped = 0;
  // Interleave pushes and pops so head/tail wrap the 8-slot buffer
  // thousands of times; order and count must be exact throughout.
  for (int round = 0; round < 10000; ++round) {
    while (pushed < popped + 5 && ring.try_push(std::uint32_t(pushed))) {
      ++pushed;
    }
    std::uint32_t out = 0;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, popped);
      ++popped;
    }
  }
  EXPECT_EQ(pushed, popped);
  EXPECT_GT(popped, 40000u);
}

TEST(SpscRingInvariants, FailedPushLeavesMoveOnlyValueIntact) {
  SpscRing<std::unique_ptr<int>> ring(1);
  auto first = std::make_unique<int>(7);
  ASSERT_TRUE(ring.try_push(std::move(first)));

  auto second = std::make_unique<int>(8);
  EXPECT_FALSE(ring.try_push(std::move(second)));
  ASSERT_NE(second, nullptr);  // refused push must not consume the value
  EXPECT_EQ(*second, 8);

  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 7);
  ASSERT_TRUE(ring.try_push(std::move(second)));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 8);
}

// ------------------------------------------------------------- SPSC stress

// One producer, one consumer, a deliberately tiny ring: both sides spin on
// full/empty so every index-handoff path runs millions of times. Values
// must arrive complete, in order, exactly once. TSan checks the memory
// ordering claims.
TEST(SpscRingStress, SingleProducerSingleConsumerOrdered) {
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring(16);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(std::uint64_t(i))) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0, checksum = 0;
  while (expected < kItems) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      checksum += out;
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(checksum, kItems * (kItems - 1) / 2);
}

// Payloads with heap state (like TripUpload's sample vector) must move
// through intact — no torn reads of the slot under concurrency.
TEST(SpscRingStress, HeapPayloadsMoveThroughIntact) {
  constexpr int kItems = 20000;
  SpscRing<std::string> ring(8);

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      std::string payload(1 + i % 61, char('a' + i % 26));
      while (!ring.try_push(std::move(payload))) std::this_thread::yield();
    }
  });

  for (int i = 0; i < kItems; ++i) {
    std::string out;
    while (!ring.try_pop(out)) std::this_thread::yield();
    ASSERT_EQ(out.size(), std::size_t(1 + i % 61));
    ASSERT_EQ(out, std::string(1 + i % 61, char('a' + i % 26)));
  }
  producer.join();
}

// -------------------------------------------------------- shutdown draining

// The sharded service's shutdown contract: the producer stops (simulated
// by a closed flag), and whatever it pushed before stopping is drained by
// the consumer afterwards — complete and still in FIFO order.
TEST(SpscRingShutdown, DrainAfterProducerStopsPreservesOrder) {
  SpscRing<int> ring(64);
  std::atomic<bool> closed{false};
  std::atomic<int> produced{0};

  std::thread producer([&] {
    int i = 0;
    while (!closed.load(std::memory_order_acquire)) {
      if (ring.try_push(int(i))) {
        produced.store(i + 1, std::memory_order_release);
        ++i;
      }
    }
  });

  // Let it run, then "shut down" mid-stream.
  int drained = 0, out = -1;
  while (drained < 1000) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, drained);
      ++drained;
    }
  }
  closed.store(true, std::memory_order_release);
  producer.join();

  // Post-shutdown drain: everything the producer managed to push arrives,
  // in order, with nothing duplicated or lost.
  while (ring.try_pop(out)) {
    ASSERT_EQ(out, drained);
    ++drained;
  }
  EXPECT_EQ(drained, produced.load(std::memory_order_acquire));
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace bussense
