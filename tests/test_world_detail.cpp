// Detailed behavioural tests for the world orchestrator and the estimation
// round-trip identities between the core models.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/arrival_predictor.h"
#include "core/region_inference.h"
#include "core/segment_catalog.h"
#include "core/travel_estimator.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

const World& test_world() {
  static const World world{};
  return world;
}

// ----------------------------------------------------------- day structure

TEST(WorldDay, RunCountsMatchHeadwayAndServiceWindow) {
  const World& world = test_world();
  Rng rng(1);
  const auto day = world.simulate_day(0, 0.0, rng);  // no participants
  EXPECT_TRUE(day.trips.empty());
  // Service window 6:30-21:00 at 10-minute headway: ~87 runs per directed
  // route, 16 routes.
  const double expected_per_route =
      (world.config().service_end_h - world.config().service_start_h) *
      3600.0 / world.config().headway_s;
  const double expected = expected_per_route * 16;
  EXPECT_NEAR(static_cast<double>(day.runs.size()), expected, expected * 0.08);
  std::map<RouteId, int> per_route;
  for (const BusRun& run : day.runs) {
    ++per_route[run.route];
    EXPECT_GE(time_of_day(run.depart_time) / kHour,
              world.config().service_start_h - 0.1);
    EXPECT_LE(time_of_day(run.depart_time) / kHour,
              world.config().service_end_h + 0.1);
  }
  EXPECT_EQ(per_route.size(), 16u);
}

TEST(WorldDay, TripsFallInsideServiceHours) {
  const World& world = test_world();
  Rng rng(2);
  const auto day = world.simulate_day(0, 1.5, rng);
  ASSERT_GT(day.trips.size(), 30u);
  for (const AnnotatedTrip& trip : day.trips) {
    for (const CellularSample& s : trip.upload.samples) {
      const double h = time_of_day(s.time) / kHour;
      EXPECT_GT(h, world.config().service_start_h - 0.2);
      EXPECT_LT(h, world.config().service_end_h + 2.5);  // last runs finish late
    }
  }
}

TEST(WorldDay, FalseBeepsAreMarkedInvalidInTruth) {
  WorldConfig cfg;
  cfg.city.route_names = {"79", "243"};
  cfg.city.width_m = 5000.0;
  cfg.city.height_m = 3000.0;
  cfg.false_beeps_per_trip = 4.0;  // force plenty of spurious samples
  const World world(cfg);
  Rng rng(3);
  const BusRoute& route = *world.city().route_by_name("79", 0);
  int invalid = 0, total = 0;
  for (int k = 0; k < 6; ++k) {
    const AnnotatedTrip trip = world.simulate_single_trip(
        route, 1, static_cast<int>(route.stop_count()) - 2,
        at_clock(0, 9 + k, 0), rng);
    for (StopId s : trip.truth.sample_stops) {
      ++total;
      invalid += s == kInvalidStop;
    }
  }
  EXPECT_GT(invalid, 5);
  EXPECT_LT(invalid, total / 3);
}

TEST(WorldDay, ZeroDetectionProbabilityYieldsNoTrips) {
  WorldConfig cfg;
  cfg.city.route_names = {"79"};
  cfg.city.width_m = 5000.0;
  cfg.city.height_m = 3000.0;
  cfg.beep_detection_prob = 0.0;
  cfg.false_beeps_per_trip = 0.0;
  const World world(cfg);
  Rng rng(4);
  const auto day = world.simulate_day(0, 2.0, rng);
  EXPECT_TRUE(day.trips.empty());
}

TEST(WorldDay, SampleStopsAreServedStopsOfTheRun) {
  const World& world = test_world();
  Rng rng(5);
  const auto day = world.simulate_day(0, 1.0, rng);
  for (const AnnotatedTrip& trip : day.trips) {
    const BusRoute& route = world.city().route(trip.truth.route_id);
    for (StopId s : trip.truth.sample_stops) {
      if (s == kInvalidStop) continue;
      EXPECT_TRUE(route.stop_index(s).has_value());
    }
  }
}

// ----------------------------------------------------- estimation identity

TEST(ModelIdentity, PredictorInvertsEstimatorExactly) {
  // att_seconds and segment_bus_time_s are inverse maps for BTT >= free
  // flow: estimate a speed from a BTT, then predict the BTT back.
  const World& world = test_world();
  const SegmentCatalog catalog(world.city());
  AttModelConfig att;
  const TravelEstimator estimator(catalog, att);
  ArrivalPredictorConfig pcfg;
  pcfg.att = att;
  const ArrivalPredictor predictor(catalog, pcfg);
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    const SpanInfo* info = catalog.adjacent(key);
    const double free_btt =
        estimator.free_bus_time_s(info->length_m, info->free_speed_kmh);
    for (double extra : {0.0, 15.0, 60.0, 200.0}) {
      const double btt = free_btt + extra;
      const double att_s =
          estimator.att_seconds(btt, info->length_m, info->free_speed_kmh);
      const double speed = info->length_m / 1000.0 / (att_s / 3600.0);
      EXPECT_NEAR(predictor.segment_bus_time_s(*info, speed), btt, 0.5)
          << "segment " << key.from << "->" << key.to << " extra " << extra;
    }
  }
}

TEST(ModelIdentity, FreeFlowSpeedsRoundTripThroughTheMap) {
  // Free-flow BTT -> estimator -> speed equals the catalogued free speed.
  const World& world = test_world();
  const SegmentCatalog catalog(world.city());
  const TravelEstimator estimator(catalog);
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    const SpanInfo* info = catalog.adjacent(key);
    const double free_btt =
        estimator.free_bus_time_s(info->length_m, info->free_speed_kmh);
    const double att_s =
        estimator.att_seconds(free_btt, info->length_m, info->free_speed_kmh);
    const double speed = info->length_m / 1000.0 / (att_s / 3600.0);
    EXPECT_NEAR(speed, info->free_speed_kmh, 1e-6);
  }
}

// ------------------------------------------------------- region inference

TEST(RegionInferenceDetail, WiderKernelReachesMoreLinks) {
  const World& world = test_world();
  const SegmentCatalog catalog(world.city());
  SpeedFusion fusion;
  // Sparse evidence: one estimate on a single segment.
  SpeedEstimate e;
  e.segment = catalog.adjacent_keys()[10];
  e.att_speed_kmh = 25.0;
  e.time = 10.0;
  fusion.add(e);
  fusion.flush_until(1e6);
  const TrafficMap map = TrafficMap::snapshot(fusion, catalog, 400.0, 1e9);

  RegionInferenceConfig narrow, wide;
  narrow.kernel_bandwidth_m = 300.0;
  wide.kernel_bandwidth_m = 1500.0;
  const RegionInference inf_narrow(world.city(), catalog, narrow);
  const RegionInference inf_wide(world.city(), catalog, wide);
  EXPECT_LT(inf_narrow.infer(map).size(), inf_wide.infer(map).size());
}

TEST(RegionInferenceDetail, CrossClassAffinityDampensTransfer) {
  const World& world = test_world();
  const SegmentCatalog catalog(world.city());
  SpeedFusion fusion;
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    const SpanInfo* info = catalog.adjacent(key);
    SpeedEstimate e;
    e.segment = key;
    e.att_speed_kmh = info->free_speed_kmh * 0.4;  // 60% congestion
    e.time = 10.0;
    fusion.add(e);
  }
  fusion.flush_until(1e6);
  const TrafficMap map = TrafficMap::snapshot(fusion, catalog, 400.0, 1e9);
  RegionInferenceConfig blocked;
  blocked.cross_class_affinity = 0.0;  // no transfer across classes
  const RegionInference inference(world.city(), catalog, blocked);
  for (const LinkTrafficEstimate& est : inference.infer(map)) {
    if (est.observed) continue;
    // Still inferred (same-class evidence exists) and still ~60% congested.
    EXPECT_NEAR(est.congestion, 0.6, 0.08);
  }
}

// ----------------------------------------------------------- taps & dwell

TEST(BusDetail, ForcedAlighterAloneStillServesStop) {
  const World& world = test_world();
  const BusRoute& route = *world.city().route_by_name("31", 0);
  // Night-time run: background demand ~0, but one rider must get off.
  Rng rng(6);
  const BusRun run = world.buses().simulate_run(
      route, at_clock(0, 23, 30), {}, {{5, 1}}, 600.0, rng);
  EXPECT_TRUE(run.visits[5].served);
  EXPECT_GE(run.visits[5].alighters, 1);
  ASSERT_FALSE(run.visits[5].taps.empty());
  EXPECT_FALSE(run.visits[5].taps.front().boarding);  // tap-out
}

TEST(BusDetail, SkippedStopsHaveNoDwell) {
  const World& world = test_world();
  const BusRoute& route = *world.city().route_by_name("31", 0);
  Rng rng(7);
  const BusRun run = world.buses().simulate_run(
      route, at_clock(0, 23, 45), {}, {}, 30.0, rng);  // tiny headway window
  int skipped = 0;
  for (const StopVisit& v : run.visits) {
    if (!v.served) {
      ++skipped;
      EXPECT_DOUBLE_EQ(v.arrival, v.departure);
    }
  }
  EXPECT_GT(skipped, 3);  // late night, near-zero demand
}

TEST(BusDetail, HigherDemandWindowMeansMoreBoarders) {
  const World& world = test_world();
  const BusRoute& route = *world.city().route_by_name("79", 0);
  Rng rng(8);
  int short_window = 0, long_window = 0;
  for (int k = 0; k < 5; ++k) {
    const BusRun a = world.buses().simulate_run(route, at_clock(0, 8, 10 * k),
                                                {}, {}, 120.0, rng);
    const BusRun b = world.buses().simulate_run(route, at_clock(0, 8, 10 * k),
                                                {}, {}, 1200.0, rng);
    for (const StopVisit& v : a.visits) short_window += v.boarders;
    for (const StopVisit& v : b.visits) long_window += v.boarders;
  }
  EXPECT_GT(long_window, 3 * short_window);
}

// ------------------------------------------------------------ churn extras

TEST(ChurnDetail, EventRenumbersExpectedFraction) {
  WorldConfig cfg;
  cfg.city.route_names = {"79"};
  cfg.city.width_m = 5000.0;
  cfg.city.height_m = 3000.0;
  cfg.tower_churn_event_day = 3;
  cfg.tower_churn_event_fraction = 0.5;
  const World world(cfg);
  // Build a wide fingerprint over many ids and compare before/after.
  Fingerprint fp;
  for (CellId id = 1001; id < 1401; ++id) fp.cells.push_back(id);
  const Fingerprint before = world.apply_churn(fp, at_clock(2, 12, 0));
  const Fingerprint after = world.apply_churn(fp, at_clock(3, 12, 0));
  EXPECT_EQ(before, fp);  // nothing before the event day
  int changed = 0;
  for (std::size_t i = 0; i < fp.cells.size(); ++i) {
    if (after.cells[i] != fp.cells[i]) ++changed;
  }
  EXPECT_NEAR(static_cast<double>(changed) / fp.cells.size(), 0.5, 0.08);
}

}  // namespace
}  // namespace bussense
