// Unit tests for the modified Smith–Waterman fingerprint matcher — including
// the paper's Table I worked example.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/matching.h"

namespace bussense {
namespace {

TEST(Matching, PaperTableOneInstanceScores2point4) {
  // Upload {1,2,3,4,5} vs database {1,7,3,5}: 3 matches, 1 gap, 1 mismatch.
  const Fingerprint upload{{1, 2, 3, 4, 5}};
  const Fingerprint database{{1, 7, 3, 5}};
  EXPECT_NEAR(similarity(upload, database), 2.4, 1e-9);
  const Alignment a = align(upload, database);
  EXPECT_NEAR(a.score, 2.4, 1e-9);
  EXPECT_EQ(a.matches, 3);
  EXPECT_EQ(a.mismatches, 1);
  EXPECT_EQ(a.gaps, 1);
}

TEST(Matching, IdenticalFingerprintsScoreFullLength) {
  const Fingerprint fp{{10, 20, 30, 40, 50, 60, 70}};
  EXPECT_DOUBLE_EQ(similarity(fp, fp), 7.0);
  const Alignment a = align(fp, fp);
  EXPECT_EQ(a.matches, 7);
  EXPECT_EQ(a.mismatches, 0);
  EXPECT_EQ(a.gaps, 0);
}

TEST(Matching, DisjointFingerprintsScoreZero) {
  EXPECT_DOUBLE_EQ(similarity(Fingerprint{{1, 2, 3}}, Fingerprint{{4, 5, 6}}),
                   0.0);
}

TEST(Matching, EmptyFingerprintScoresZero) {
  EXPECT_DOUBLE_EQ(similarity(Fingerprint{}, Fingerprint{{1, 2}}), 0.0);
  EXPECT_DOUBLE_EQ(similarity(Fingerprint{{1, 2}}, Fingerprint{}), 0.0);
  EXPECT_DOUBLE_EQ(align(Fingerprint{}, Fingerprint{}).score, 0.0);
}

TEST(Matching, ScoreIsSymmetric) {
  // With symmetric penalties the optimal local alignment score is symmetric.
  const Fingerprint a{{1, 2, 3, 4, 5, 6}};
  const Fingerprint b{{2, 9, 4, 6, 8}};
  EXPECT_DOUBLE_EQ(similarity(a, b), similarity(b, a));
}

TEST(Matching, LocalAlignmentIgnoresBadPrefix) {
  // The matching block sits after unrelated leading IDs; local alignment
  // must still find it at full score.
  const Fingerprint a{{100, 200, 1, 2, 3}};
  const Fingerprint b{{1, 2, 3}};
  EXPECT_DOUBLE_EQ(similarity(a, b), 3.0);
}

TEST(Matching, RankOrderMatters) {
  // Same ID set, reversed order: alignment cannot recover full score.
  const Fingerprint a{{1, 2, 3, 4, 5}};
  const Fingerprint b{{5, 4, 3, 2, 1}};
  EXPECT_LT(similarity(a, b), 2.0);
}

TEST(Matching, SingleRankSwapCostsLittle) {
  // Adjacent rank flip (the common temporal perturbation) keeps the score
  // high — the robustness the paper relies on.
  const Fingerprint a{{1, 2, 3, 4, 5}};
  const Fingerprint b{{1, 3, 2, 4, 5}};
  EXPECT_GE(similarity(a, b), 3.4);
}

TEST(Matching, GapPenaltyAppliedPerSkip) {
  const Fingerprint a{{1, 2, 3}};
  const Fingerprint b{{1, 9, 9, 2, 3}};  // two gaps in b
  EXPECT_NEAR(similarity(a, b), 3.0 - 2 * 0.3, 1e-9);
}

TEST(Matching, ScoreBoundedByMaxSimilarity) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    Fingerprint a, b;
    const int na = rng.uniform_int(1, 7);
    const int nb = rng.uniform_int(1, 7);
    for (int i = 0; i < na; ++i) a.cells.push_back(rng.uniform_int(1, 12));
    for (int i = 0; i < nb; ++i) b.cells.push_back(rng.uniform_int(1, 12));
    const double s = similarity(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, max_similarity(a, b) + 1e-9);
  }
}

TEST(Matching, MaxSimilarityUsesShorterLength) {
  EXPECT_DOUBLE_EQ(max_similarity(Fingerprint{{1, 2, 3}}, Fingerprint{{1, 2}}),
                   2.0);
  MatchingConfig cfg;
  cfg.match_score = 2.0;
  EXPECT_DOUBLE_EQ(
      max_similarity(Fingerprint{{1, 2, 3}}, Fingerprint{{1, 2}}, cfg), 4.0);
}

// Penalty sweep (the paper varied the mismatch cost 0.1–0.9): score of the
// Table I instance decreases monotonically in the penalty.
class PenaltySweep : public ::testing::TestWithParam<double> {};

TEST_P(PenaltySweep, TableOneScoreFormula) {
  MatchingConfig cfg;
  cfg.mismatch_penalty = GetParam();
  cfg.gap_penalty = GetParam();
  const Fingerprint upload{{1, 2, 3, 4, 5}};
  const Fingerprint database{{1, 7, 3, 5}};
  // Best alignment depends on the penalty: with high penalties the aligner
  // can retreat to shorter all-match blocks. Score stays within bounds and
  // decreases weakly with the penalty.
  const double s = similarity(upload, database, cfg);
  EXPECT_LE(s, 3.0);
  EXPECT_GE(s, 1.0);  // block {1} alone already scores 1
  MatchingConfig softer = cfg;
  softer.mismatch_penalty = std::max(0.0, cfg.mismatch_penalty - 0.1);
  softer.gap_penalty = softer.mismatch_penalty;
  EXPECT_GE(similarity(upload, database, softer), s - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Penalties, PenaltySweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9));

TEST(Matching, AlignmentStatsConsistentWithScore) {
  Rng rng(2);
  const MatchingConfig cfg;
  for (int trial = 0; trial < 300; ++trial) {
    Fingerprint a, b;
    const int na = rng.uniform_int(1, 7);
    const int nb = rng.uniform_int(1, 7);
    for (int i = 0; i < na; ++i) a.cells.push_back(rng.uniform_int(1, 10));
    for (int i = 0; i < nb; ++i) b.cells.push_back(rng.uniform_int(1, 10));
    const Alignment al = align(a, b, cfg);
    const double reconstructed = al.matches * cfg.match_score -
                                 al.mismatches * cfg.mismatch_penalty -
                                 al.gaps * cfg.gap_penalty;
    EXPECT_NEAR(al.score, reconstructed, 1e-9)
        << to_string(a) << " vs " << to_string(b);
    EXPECT_NEAR(al.score, similarity(a, b, cfg), 1e-9);
  }
}

}  // namespace
}  // namespace bussense
