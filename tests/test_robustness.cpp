// Robustness and concurrency tests: malformed uploads from the crowd must
// never corrupt or crash the backend, and concurrent ingestion must be
// deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/concurrent_server.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

struct Testbed {
  World world;
  StopDatabase database;

  Testbed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
  }
};

const Testbed& testbed() {
  static const Testbed bed;
  return bed;
}

AnnotatedTrip good_trip(std::uint64_t seed = 1) {
  const Testbed& bed = testbed();
  Rng rng(seed);
  const BusRoute& route = *bed.world.city().route_by_name("243", 0);
  return bed.world.simulate_single_trip(route, 2, 14, at_clock(0, 9, 0), rng);
}

// -------------------------------------------------------------- bad uploads

TEST(Robustness, OutOfOrderSamplesAreSorted) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  AnnotatedTrip trip = good_trip(2);
  // Shuffle the upload: phones on lossy links may deliver out of order.
  std::mt19937_64 gen(3);
  std::shuffle(trip.upload.samples.begin(), trip.upload.samples.end(), gen);
  const auto report = server.process_trip(trip.upload);
  EXPECT_GT(report.mapped.stops.size(), 5u);
  for (std::size_t i = 1; i < report.matched.size(); ++i) {
    EXPECT_LE(report.matched[i - 1].sample.time, report.matched[i].sample.time);
  }
  EXPECT_GT(report.estimates.size(), 3u);
}

TEST(Robustness, ShuffledUploadGivesSameResultAsOrdered) {
  const Testbed& bed = testbed();
  TrafficServer a(bed.world.city(), bed.database);
  TrafficServer b(bed.world.city(), bed.database);
  AnnotatedTrip trip = good_trip(4);
  const auto ordered = a.process_trip(trip.upload);
  std::mt19937_64 gen(5);
  std::shuffle(trip.upload.samples.begin(), trip.upload.samples.end(), gen);
  const auto shuffled = b.process_trip(trip.upload);
  ASSERT_EQ(ordered.mapped.stops.size(), shuffled.mapped.stops.size());
  for (std::size_t i = 0; i < ordered.mapped.stops.size(); ++i) {
    EXPECT_EQ(ordered.mapped.stops[i].stop, shuffled.mapped.stops[i].stop);
  }
  ASSERT_EQ(ordered.estimates.size(), shuffled.estimates.size());
}

TEST(Robustness, EmptyAndDegenerateUploads) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  const auto empty = server.process_trip(TripUpload{});
  EXPECT_TRUE(empty.matched.empty());
  EXPECT_TRUE(empty.estimates.empty());

  TripUpload blanks;
  blanks.samples.resize(5);  // empty fingerprints, zero times
  const auto report = server.process_trip(blanks);
  EXPECT_TRUE(report.matched.empty());
  EXPECT_EQ(report.rejected_samples, 5u);
}

TEST(Robustness, DuplicateTimestampsAreTolerated) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  AnnotatedTrip trip = good_trip(6);
  // Clone every sample (double-tap artefacts).
  auto samples = trip.upload.samples;
  trip.upload.samples.insert(trip.upload.samples.end(), samples.begin(),
                             samples.end());
  const auto report = server.process_trip(trip.upload);
  EXPECT_GT(report.mapped.stops.size(), 5u);
}

TEST(Robustness, UnknownTowersOnlyTripIsDiscarded) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  TripUpload garbage;
  for (int i = 0; i < 20; ++i) {
    garbage.samples.push_back(CellularSample{
        static_cast<double>(i * 30),
        Fingerprint{{900000 + i, 910000 + i, 920000 + i}}});
  }
  const auto report = server.process_trip(garbage);
  EXPECT_TRUE(report.estimates.empty());
  EXPECT_EQ(report.rejected_samples, 20u);
}

TEST(Robustness, SingleSampleTripYieldsNoEstimates) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  AnnotatedTrip trip = good_trip(7);
  trip.upload.samples.resize(1);
  const auto report = server.process_trip(trip.upload);
  EXPECT_TRUE(report.estimates.empty());
}

TEST(Robustness, NegativeAndHugeTimestamps) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  AnnotatedTrip trip = good_trip(8);
  trip.upload.samples.front().time = -1e9;
  trip.upload.samples.back().time = 1e12;
  // Must not throw; the absurd gaps simply split/discard estimates.
  EXPECT_NO_THROW(server.process_trip(trip.upload));
}

// -------------------------------------------------------------- concurrency

TEST(ConcurrentServer, MatchesSerialResults) {
  const Testbed& bed = testbed();
  Rng rng(9);
  const auto day = bed.world.simulate_day(0, 1.5, rng);
  ASSERT_GT(day.trips.size(), 40u);

  TrafficServer serial(bed.world.city(), bed.database);
  for (const AnnotatedTrip& trip : day.trips) serial.process_trip(trip.upload);
  serial.advance_time(at_clock(0, 23, 0));

  ConcurrentTrafficServer concurrent(bed.world.city(), bed.database);
  const int threads = 4;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < day.trips.size();
           i += threads) {
        concurrent.process_trip(day.trips[i].upload);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  concurrent.advance_time(at_clock(0, 23, 0));

  EXPECT_EQ(concurrent.trips_processed(), day.trips.size());
  // Period-batched fusion sums are order-insensitive, so the fused map is
  // identical whatever the interleaving.
  const auto serial_all = serial.fusion().all();
  for (const auto& [key, fused] : serial_all) {
    const auto other = concurrent.fusion().query(key);
    ASSERT_TRUE(other.has_value());
    // Sorted-order period sums make fusion order-insensitive, so the fused
    // values are bit-identical — not merely close — to serial ingestion.
    EXPECT_EQ(other->mean_kmh, fused.mean_kmh);
    EXPECT_EQ(other->observation_count, fused.observation_count);
  }
  EXPECT_EQ(concurrent.fusion().all().size(), serial_all.size());
}

TEST(ConcurrentServer, SnapshotWhileIngesting) {
  const Testbed& bed = testbed();
  Rng rng(10);
  const auto day = bed.world.simulate_day(0, 1.0, rng);
  ConcurrentTrafficServer server(bed.world.city(), bed.database);
  std::atomic<bool> done{false};
  std::thread ingester([&] {
    for (const AnnotatedTrip& trip : day.trips) server.process_trip(trip.upload);
    done = true;
  });
  int snapshots = 0;
  while (!done) {
    server.advance_time(at_clock(0, 23, 0));
    const TrafficMap map = server.snapshot(at_clock(0, 20, 0), 24 * kHour);
    (void)map;
    ++snapshots;
  }
  ingester.join();
  EXPECT_GT(snapshots, 0);
  EXPECT_EQ(server.trips_processed(), day.trips.size());
}

TEST(ConcurrentServer, AnalyzeIsPure) {
  const Testbed& bed = testbed();
  TrafficServer server(bed.world.city(), bed.database);
  const AnnotatedTrip trip = good_trip(11);
  const auto r1 = server.analyze_trip(trip.upload);
  const auto r2 = server.analyze_trip(trip.upload);
  ASSERT_EQ(r1.estimates.size(), r2.estimates.size());
  for (std::size_t i = 0; i < r1.estimates.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.estimates[i].att_speed_kmh,
                     r2.estimates[i].att_speed_kmh);
  }
  // analyze_trip must not have fed the fusion state.
  EXPECT_TRUE(server.fusion().all().empty());
  EXPECT_EQ(server.trips_processed(), 0u);
}

}  // namespace
}  // namespace bussense
