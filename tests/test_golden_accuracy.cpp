// Golden end-to-end accuracy regression.
//
// Pins the headline quality numbers of the pipeline on a fixed-seed
// workload — stop-identification accuracy, matched-sample rate, and
// per-segment speed error — in explicit bands, so an innocent-looking
// change to matching, clustering or the ATT model that silently trades
// accuracy away fails THIS test instead of drifting unnoticed.
//
// The second half measures graceful degradation: the same workload pushed
// through FaultPlan corruption at a 10% rate, against a server with the
// admission stage enabled, must retain at least 90% of the clean run's
// accuracy (the ISSUE's acceptance bar) and must account for every
// submitted upload in the ingest.* counters.
//
// Harness note: uploads are fed in arrival order (a phone uploads ~30 s
// after the trip ends) with the server clock advanced to each arrival, the
// same contract a live deployment gives the admission stage's clock-skew
// watermark. Batch reorder is exercised in test_faults; here delivery
// order is the arrival order so that per-trip arrival times stay known.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <iostream>
#include <map>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"
#include "core/ingest_service.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "core/workload_replay.h"
#include "faults/fault_injection.h"
#include "trafficsim/lod_world.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

constexpr double kArrivalLag = 30.0;  ///< upload lands 30 s after trip end
constexpr double kGoodSpeedBand = 8.0;  ///< |att − truth| ≤ 8 km/h is "good"

struct GoldenBed {
  World world;
  StopDatabase database;
  std::vector<AnnotatedTrip> trips;  ///< sorted by trip end (arrival order)

  GoldenBed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
    Rng rng(4);
    trips = world.simulate_day(0, 1.5, rng).trips;
    std::erase_if(trips, [](const AnnotatedTrip& trip) {
      return trip.upload.samples.empty();
    });
    std::sort(trips.begin(), trips.end(),
              [](const AnnotatedTrip& a, const AnnotatedTrip& b) {
                return a.upload.samples.back().time <
                       b.upload.samples.back().time;
              });
  }
};

const GoldenBed& bed() {
  static const GoldenBed instance;
  return instance;
}

ServerConfig admission_on() {
  ServerConfig config;
  config.admission.enabled = true;
  return config;
}

/// Fraction of clusters whose mapped stop equals the majority ground truth
/// of its member samples (same definition as the integration suite).
double stop_accuracy(const World& world, const TrafficServer& server,
                     const std::vector<AnnotatedTrip>& trips) {
  int total = 0, correct = 0;
  for (const AnnotatedTrip& trip : trips) {
    const auto matched = server.match_samples(trip.upload);
    std::map<double, StopId> truth_by_time;
    for (std::size_t i = 0; i < trip.upload.samples.size(); ++i) {
      truth_by_time[trip.upload.samples[i].time] = trip.truth.sample_stops[i];
    }
    const MappedTrip mapped = server.map_trip(server.cluster_samples(matched));
    for (const MappedCluster& mc : mapped.stops) {
      std::map<StopId, int> votes;
      for (const MatchedSample& m : mc.cluster.members) {
        ++votes[truth_by_time.at(m.sample.time)];
      }
      StopId majority = kInvalidStop;
      int best = 0;
      for (const auto& [stop, count] : votes) {
        if (count > best) {
          best = count;
          majority = stop;
        }
      }
      if (majority == kInvalidStop) continue;  // spurious-dominated cluster
      ++total;
      if (mc.stop == world.city().effective_stop(majority)) ++correct;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

/// Estimate-level quality of one arrival-ordered ingest run.
struct RunQuality {
  std::size_t submitted = 0;
  std::size_t accepted = 0;
  std::size_t samples = 0;
  std::size_t matched = 0;
  std::size_t estimates = 0;
  double mean_speed_err = 0.0;  ///< mean |att − truth| km/h
  double within_band = 0.0;     ///< fraction of estimates within 8 km/h

  double matched_rate() const {
    return samples > 0 ? static_cast<double>(matched) / samples : 0.0;
  }
};

/// Feeds `uploads` (arrival-ordered; arrival = `arrivals[i]`) through
/// `server`, advancing the clock to each arrival first — the live-deployment
/// contract the skew watermark assumes.
RunQuality run_ingest(const World& world, TrafficServer& server,
                      const std::vector<TripUpload>& uploads,
                      const std::vector<SimTime>& arrivals) {
  RunQuality q;
  q.submitted = uploads.size();
  double err_sum = 0.0;
  std::size_t good = 0;
  for (std::size_t i = 0; i < uploads.size(); ++i) {
    server.advance_time(arrivals[i]);
    const TripReport report = server.process_trip(uploads[i]);
    if (!report.accepted()) continue;
    ++q.accepted;
    q.samples += uploads[i].samples.size();
    q.matched += report.matched.size();
    for (const SpeedEstimate& e : report.estimates) {
      const SpanInfo* info = server.catalog().adjacent(e.segment);
      if (info == nullptr) continue;
      const double truth = world.traffic().mean_car_speed_kmh(
          world.city().route(info->route), info->arc_from, info->arc_to,
          e.time);
      const double err = std::abs(e.att_speed_kmh - truth);
      err_sum += err;
      if (err <= kGoodSpeedBand) ++good;
      ++q.estimates;
    }
  }
  q.mean_speed_err =
      q.estimates > 0 ? err_sum / static_cast<double>(q.estimates) : 0.0;
  q.within_band =
      q.estimates > 0
          ? static_cast<double>(good) / static_cast<double>(q.estimates)
          : 0.0;
  return q;
}

std::vector<SimTime> arrival_times(const std::vector<TripUpload>& uploads) {
  std::vector<SimTime> arrivals;
  arrivals.reserve(uploads.size());
  for (const TripUpload& upload : uploads) {
    arrivals.push_back(upload.samples.back().time + kArrivalLag);
  }
  return arrivals;
}

// ------------------------------------------------------------ clean goldens

TEST(GoldenAccuracy, StopIdentificationStaysInBand) {
  const GoldenBed& golden = bed();
  TrafficServer server(golden.world.city(), golden.database);
  const double accuracy =
      stop_accuracy(golden.world, server, golden.trips);
  std::cout << "[golden] stop_accuracy = " << accuracy << "\n";
  // Paper Table II reports ≤ 8% per-sample identification error; clustering
  // plus route constraints land the fixed-seed workload at 0.9864. The
  // margin buys headroom against libm/compiler variation, nothing more.
  EXPECT_GE(accuracy, 0.96);
  EXPECT_LE(accuracy, 1.0);
}

TEST(GoldenAccuracy, CleanRunQualityStaysInBands) {
  const GoldenBed& golden = bed();
  std::vector<TripUpload> uploads;
  uploads.reserve(golden.trips.size());
  for (const AnnotatedTrip& trip : golden.trips) uploads.push_back(trip.upload);

  TrafficServer server(golden.world.city(), golden.database, admission_on());
  const RunQuality q =
      run_ingest(golden.world, server, uploads, arrival_times(uploads));
  std::cout << "[golden] clean: accepted=" << q.accepted << "/" << q.submitted
            << " matched_rate=" << q.matched_rate()
            << " estimates=" << q.estimates
            << " mean_speed_err=" << q.mean_speed_err
            << " within8=" << q.within_band << "\n";

  // A clean workload through the admission stage loses nothing.
  EXPECT_EQ(q.accepted, q.submitted);

  // Golden bands, pinned from the measured values on the fixed-seed
  // workload (matched_rate 0.9974, 876 estimates, mean err 2.97 km/h,
  // within-8 0.979). Fixed seeds ⇒ exact reproducibility; the margins only
  // buy headroom against libm/compiler variation across toolchains.
  EXPECT_GE(q.matched_rate(), 0.97);
  EXPECT_LE(q.matched_rate(), 1.0);
  EXPECT_GE(q.estimates, 700u);
  EXPECT_LE(q.estimates, 1100u);
  EXPECT_LE(q.mean_speed_err, 4.0);
  EXPECT_GE(q.mean_speed_err, 1.5);
  EXPECT_GE(q.within_band, 0.93);
}

// ------------------------------------------------------ degradation golden

TEST(GoldenAccuracy, TenPercentCorruptionDegradesGracefully) {
  const GoldenBed& golden = bed();
  std::vector<TripUpload> clean;
  clean.reserve(golden.trips.size());
  for (const AnnotatedTrip& trip : golden.trips) clean.push_back(trip.upload);

  // The standard adversarial mix at a 10% rate, minus batch reorder: this
  // harness feeds uploads in arrival order (see file comment), and the
  // per-trip injectors are index-stable so arrivals stay aligned.
  FaultPlan plan = FaultPlan::standard(99, 0.10);
  plan.reorder_batch = false;
  FaultStats stats;
  const std::vector<TripUpload> corrupted =
      inject_faults(clean, plan, &stats);
  ASSERT_GT(stats.corrupted_trips, 0u);

  // Arrivals: corruption never changes when the phone uploads — trip i
  // still arrives at its clean end time; appended replays arrive with the
  // retry, right after the first copy's slot (dedup judges them on bytes,
  // so the exact retry time is immaterial).
  std::vector<SimTime> arrivals = arrival_times(clean);
  arrivals.resize(corrupted.size(),
                  arrivals.empty() ? 0.0 : arrivals.back() + kArrivalLag);

  TrafficServer clean_server(golden.world.city(), golden.database,
                             admission_on());
  const RunQuality clean_q = run_ingest(golden.world, clean_server, clean,
                                        arrival_times(clean));

  TrafficServer hard_server(golden.world.city(), golden.database,
                            admission_on());
  const RunQuality dirty_q =
      run_ingest(golden.world, hard_server, corrupted, arrivals);

  std::cout << "[golden] corrupt: accepted=" << dirty_q.accepted << "/"
            << dirty_q.submitted << " estimates=" << dirty_q.estimates
            << " mean_speed_err=" << dirty_q.mean_speed_err
            << " within8=" << dirty_q.within_band
            << " (clean within8=" << clean_q.within_band << ")\n";

  // Graceful degradation: ≥ 90% of the clean run's accuracy survives a 10%
  // corruption rate, on both the per-estimate accuracy and the volume of
  // usable estimates.
  EXPECT_GE(dirty_q.within_band, 0.9 * clean_q.within_band);
  EXPECT_GE(static_cast<double>(dirty_q.estimates),
            0.75 * static_cast<double>(clean_q.estimates));
  EXPECT_LE(dirty_q.mean_speed_err, clean_q.mean_speed_err + 3.0);

  // Accounting: every submitted upload got a verdict, and the counters say
  // the same thing the reports did.
  const MetricsSnapshot snap = hard_server.metrics().snapshot();
  const std::uint64_t admitted = snap.counters.at("ingest.admitted");
  const std::uint64_t rejected =
      snap.counters.at("ingest.rejected.duplicate") +
      snap.counters.at("ingest.rejected.malformed") +
      snap.counters.at("ingest.rejected.non_monotone");
  EXPECT_EQ(admitted, dirty_q.accepted);
  EXPECT_EQ(admitted + rejected, corrupted.size());
  // Replays are byte-identical, so the dedup window catches every replay
  // whose original passed the shape checks (replays of shape-rejected trips
  // are charged to the shape reason instead — shape runs before dedup).
  EXPECT_GT(snap.counters.at("ingest.rejected.duplicate"), 0u);
  EXPECT_LE(snap.counters.at("ingest.rejected.duplicate"), stats.duplicated);
}

// ------------------------------------------------- metropolis smoke golden

TEST(GoldenAccuracy, OnRailsMetropolisSurvivesShardedIngestInBand) {
  const GoldenBed& golden = bed();

  // 50k riders in the LOD configuration the million-rider bench scales up
  // from: tiny Focus/Event caps, so the population is OnRails-dominated
  // and the workload is almost entirely closed-form trips.
  LodConfig lod_config;
  lod_config.focus_cap = 4;
  lod_config.event_cap = 64;
  lod_config.trips_per_rider_per_day = 0.1;
  const LodWorld lod(golden.world, 50'000, lod_config);
  const LodCensus& census = lod.census();
  EXPECT_EQ(census.riders, 50'000u);
  EXPECT_GE(census.on_rails, 49'000u);

  ThreadPool pool(4);
  const std::vector<LodTrip> trips = lod.simulate_day(0, &pool);
  ASSERT_GE(trips.size(), 3000u);
  const LodLoss loss = lod.loss();
  EXPECT_EQ(loss.planned, loss.emitted + loss.dropped_no_route + loss.thin);
  EXPECT_EQ(loss.dropped_no_route, 0u);

  std::vector<TimedUpload> workload;
  workload.reserve(trips.size());
  for (const LodTrip& t : trips) {
    workload.push_back(TimedUpload{t.trip.upload, t.arrival});
  }

  ShardedIngestConfig sharding;
  sharding.shards = 4;
  ShardedIngestService service(golden.world.city(), golden.database,
                               admission_on(), sharding);
  ReplayOptions options;
  options.advance_every_s = 900.0;
  const ReplayStats stats = replay_workload(service, workload, options);
  EXPECT_EQ(stats.submitted, workload.size());
  EXPECT_EQ(stats.accepted, stats.submitted);  // clean workload loses nothing

  // Fused-map quality: every live segment's fused speed against the
  // traffic-field ground truth at its last-update instant.
  const TrafficMap map =
      service.snapshot(stats.last_arrival + kArrivalLag, kDay);
  std::size_t scored = 0, good = 0;
  double err_sum = 0.0;
  for (const MapSegment& seg : map.segments()) {
    const SpanInfo* info = service.catalog().adjacent(seg.key);
    if (info == nullptr) continue;
    const double truth = golden.world.traffic().mean_car_speed_kmh(
        golden.world.city().route(info->route), info->arc_from, info->arc_to,
        seg.updated_at);
    const double err = std::abs(seg.speed_kmh - truth);
    err_sum += err;
    if (err <= kGoodSpeedBand) ++good;
    ++scored;
  }
  ASSERT_GT(scored, 100u);
  const double within8 = static_cast<double>(good) / scored;
  const double mean_err = err_sum / static_cast<double>(scored);
  std::cout << "[golden] metropolis: trips=" << trips.size()
            << " accepted=" << stats.accepted << " segments=" << scored
            << " mean_err=" << mean_err << " within8=" << within8 << "\n";

  // Counters account for every upload, shard by shard.
  const MetricsSnapshot shard_snap = service.shard_metrics();
  const std::uint64_t admitted = shard_snap.counters.at("ingest.admitted");
  const std::uint64_t rejected =
      shard_snap.counters.at("ingest.rejected.duplicate") +
      shard_snap.counters.at("ingest.rejected.malformed") +
      shard_snap.counters.at("ingest.rejected.non_monotone");
  EXPECT_EQ(admitted, stats.accepted);
  EXPECT_EQ(rejected, 0u);

  // Golden bands, pinned from the measured fixed-seed values. The OnRails
  // channel feeds the same backend as the waveform path; a fused city map
  // built purely from closed-form trips must stay inside the clean-run
  // accuracy envelope.
  EXPECT_GE(within8, 0.93);
  EXPECT_LE(mean_err, 4.5);
  EXPECT_GE(mean_err, 1.0);
}

}  // namespace
}  // namespace bussense
