// Tests for the extension modules: region inference, arrival prediction,
// online database maintenance (with tower churn), serialization, transfer
// trips and driver-bootstrap mode.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "common/stats.h"
#include "core/arrival_predictor.h"
#include "core/db_updater.h"
#include "core/region_inference.h"
#include "core/serialization.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

struct Testbed {
  World world;
  StopDatabase database;

  Testbed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
  }
};

const Testbed& testbed() {
  static const Testbed bed;
  return bed;
}

// --------------------------------------------------------- transfer trips

TEST(TransferTrips, FindTransferStopsAreClose) {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  const BusRoute& a = *city.route_by_name("79", 0);
  const BusRoute& b = *city.route_by_name("243", 0);
  const auto [i, j] = bed.world.find_transfer_stops(a, b);
  ASSERT_GE(i, 0);
  ASSERT_GE(j, 0);
  const double d = distance(
      city.stop(a.stops()[static_cast<std::size_t>(i)].stop).position,
      city.stop(b.stops()[static_cast<std::size_t>(j)].stop).position);
  EXPECT_LT(d, 300.0);  // a walkable transfer
}

TEST(TransferTrips, UploadSpansBothLegsAsOneTrip) {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  const BusRoute& a = *city.route_by_name("79", 0);
  const BusRoute& b = *city.route_by_name("243", 0);
  const auto [ta, tb] = bed.world.find_transfer_stops(a, b);
  Rng rng(1);
  const AnnotatedTrip trip = bed.world.simulate_transfer_trip(
      a, std::max(0, ta - 4), ta, b, tb,
      std::min<int>(static_cast<int>(b.stop_count()) - 1, tb + 4),
      at_clock(0, 10, 0), rng);
  ASSERT_GE(trip.upload.samples.size(), 6u);
  ASSERT_EQ(trip.truth.leg_routes.size(), 2u);
  EXPECT_EQ(trip.truth.leg_routes[0], a.id());
  EXPECT_EQ(trip.truth.leg_routes[1], b.id());
  // Samples include true stops from both routes.
  bool has_a = false, has_b = false;
  for (StopId s : trip.truth.sample_stops) {
    if (s == kInvalidStop) continue;
    has_a = has_a || a.stop_index(s).has_value();
    has_b = has_b || b.stop_index(s).has_value();
  }
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_b);
}

TEST(TransferTrips, ServerMapsConcatenatedRoutes) {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  const BusRoute& a = *city.route_by_name("99", 0);
  const BusRoute& b = *city.route_by_name("252", 0);
  const auto [ta, tb] = bed.world.find_transfer_stops(a, b);
  Rng rng(2);
  const AnnotatedTrip trip = bed.world.simulate_transfer_trip(
      a, std::max(0, ta - 4), ta, b, tb,
      std::min<int>(static_cast<int>(b.stop_count()) - 1, tb + 4),
      at_clock(0, 11, 0), rng);
  const auto report = server.process_trip(trip.upload);
  // Mapping accuracy across the concatenation.
  std::map<double, StopId> truth;
  for (std::size_t i = 0; i < trip.upload.samples.size(); ++i) {
    truth[trip.upload.samples[i].time] = trip.truth.sample_stops[i];
  }
  int correct = 0, total = 0;
  for (const MappedCluster& mc : report.mapped.stops) {
    const StopId t = truth.at(mc.cluster.members.front().sample.time);
    if (t == kInvalidStop) continue;
    ++total;
    if (mc.stop == city.effective_stop(t)) ++correct;
  }
  ASSERT_GT(total, 5);
  EXPECT_GE(static_cast<double>(correct) / total, 0.8);
  // Estimates exist on both legs but never across the transfer gap.
  EXPECT_GT(report.estimates.size(), 3u);
}

TEST(TransferTrips, DriverDayCoversEveryRoute) {
  WorldConfig cfg;
  cfg.city.route_names = {"79", "31"};
  cfg.city.width_m = 5000.0;
  cfg.city.height_m = 3000.0;
  cfg.service_start_h = 9.0;
  cfg.service_end_h = 11.0;
  const World world(cfg);
  Rng rng(3);
  const auto trips = world.simulate_driver_day(0, rng);
  // 4 directed routes x ~12 runs in 2 h.
  EXPECT_GT(trips.size(), 30u);
  std::map<std::int32_t, int> per_route;
  for (const AnnotatedTrip& t : trips) ++per_route[t.truth.route_id];
  EXPECT_EQ(per_route.size(), world.city().routes().size());
}

// -------------------------------------------------------- region inference

TEST(RegionInference, ObservedLinksPassThrough) {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  const SegmentCatalog catalog(city);
  SpeedFusion fusion;
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    SpeedEstimate e;
    e.segment = key;
    e.att_speed_kmh = 33.0;
    e.time = 10.0;
    fusion.add(e);
  }
  fusion.flush_until(1e6);
  const TrafficMap map = TrafficMap::snapshot(fusion, catalog, 400.0, 1e9);
  const RegionInference inference(city, catalog);
  const auto estimates = inference.infer(map);
  int observed = 0;
  for (const LinkTrafficEstimate& est : estimates) {
    if (est.observed) {
      ++observed;
      EXPECT_NEAR(est.speed_kmh, 33.0, 1e-6);
      EXPECT_DOUBLE_EQ(est.confidence, 1.0);
    }
  }
  EXPECT_GT(observed, 100);
}

TEST(RegionInference, UniformCongestionTransfers) {
  // Every observed segment at half its free speed => inferred links should
  // land near 50% congestion too.
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  const SegmentCatalog catalog(city);
  SpeedFusion fusion;
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    const SpanInfo* info = catalog.adjacent(key);
    SpeedEstimate e;
    e.segment = key;
    e.att_speed_kmh = info->free_speed_kmh * 0.5;
    e.time = 10.0;
    fusion.add(e);
  }
  fusion.flush_until(1e6);
  const TrafficMap map = TrafficMap::snapshot(fusion, catalog, 400.0, 1e9);
  const RegionInference inference(city, catalog);
  int inferred = 0;
  for (const LinkTrafficEstimate& est : inference.infer(map)) {
    if (est.observed) continue;
    ++inferred;
    EXPECT_NEAR(est.congestion, 0.5, 0.05);
    EXPECT_GT(est.confidence, 0.0);
    EXPECT_LT(est.confidence, 1.0);
  }
  EXPECT_GT(inferred, 30);  // the network is bigger than the bus coverage
}

TEST(RegionInference, EmptyMapInfersNothing) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  SpeedFusion fusion;
  const TrafficMap map = TrafficMap::snapshot(fusion, catalog, 0.0, 1.0);
  const RegionInference inference(bed.world.city(), catalog);
  EXPECT_TRUE(inference.infer(map).empty());
}

// ------------------------------------------------------- arrival predictor

TEST(ArrivalPredictor, FreeFlowEtaMatchesKinematics) {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  const SegmentCatalog catalog(city);
  const ArrivalPredictor predictor(catalog);
  const BusRoute& route = *city.route_by_name("79", 0);
  const SpeedFusion empty_fusion;
  const auto predictions =
      predictor.predict(route, 0, 1000.0, empty_fusion, 1000.0);
  ASSERT_EQ(predictions.size(), route.stop_count() - 1);
  for (const ArrivalPrediction& p : predictions) {
    EXPECT_FALSE(p.from_live_traffic);
    EXPECT_GT(p.eta, 1000.0);
  }
  // Ballpark: ~400 m hops at ~40-48 km/h bus free speed plus overhead.
  const double per_stop = predictions[4].travel_s / 5.0;
  EXPECT_GT(per_stop, 25.0);
  EXPECT_LT(per_stop, 80.0);
}

TEST(ArrivalPredictor, CongestionDelaysEta) {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  const SegmentCatalog catalog(city);
  const ArrivalPredictor predictor(catalog);
  const BusRoute& route = *city.route_by_name("79", 0);
  SpeedFusion congested;
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    SpeedEstimate e;
    e.segment = key;
    e.att_speed_kmh = 15.0;
    e.time = 99000.0;  // period closes at 99300, fresh relative to `now`
    congested.add(e);
  }
  congested.flush_until(1e5);
  const SpeedFusion empty_fusion;
  const auto slow = predictor.predict(route, 0, 1e5, congested, 1e5 + 10.0);
  const auto fast = predictor.predict(route, 0, 1e5, empty_fusion, 1e5 + 10.0);
  ASSERT_EQ(slow.size(), fast.size());
  EXPECT_TRUE(slow[3].from_live_traffic);
  EXPECT_GT(slow[3].travel_s, 1.5 * fast[3].travel_s);
}

TEST(ArrivalPredictor, StaleTrafficFallsBackToFreeFlow) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  const ArrivalPredictor predictor(catalog);
  const BusRoute& route = *bed.world.city().route_by_name("79", 0);
  SpeedFusion stale;
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    SpeedEstimate e;
    e.segment = key;
    e.att_speed_kmh = 15.0;
    e.time = 100.0;
    stale.add(e);
  }
  stale.flush_until(1e5);
  const auto predictions =
      predictor.predict(route, 0, 1e6, stale, 1e6);  // hours later
  for (const ArrivalPrediction& p : predictions) {
    EXPECT_FALSE(p.from_live_traffic);
  }
}

TEST(ArrivalPredictor, PredictionsTrackSimulatedBus) {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  TrafficServer server(city, bed.database);
  Rng rng(5);
  // Prime the traffic map with a midday run's estimates.
  const BusRoute& route = *city.route_by_name("243", 0);
  const SimTime depart = at_clock(0, 12, 0);
  const AnnotatedTrip primer = bed.world.simulate_single_trip(
      route, 0, static_cast<int>(route.stop_count()) - 1, depart, rng);
  server.process_trip(primer.upload);
  server.advance_time(depart + kHour);

  // Predict the next bus and compare against its simulated reality.
  const ArrivalPredictor predictor(server.catalog());
  const std::map<int, int> all_stops = [&] {
    std::map<int, int> m;
    for (std::size_t i = 0; i < route.stop_count(); ++i) {
      m[static_cast<int>(i)] = 1;
    }
    return m;
  }();
  const SimTime next_depart = depart + 30 * kMinute;
  const BusRun actual = bed.world.buses().simulate_run(
      route, next_depart, all_stops, {}, 600.0, rng);
  const auto predictions =
      predictor.predict(route, 0, actual.visits[0].departure, server.fusion(),
                        next_depart + kHour);
  RunningStats err;
  for (const ArrivalPrediction& p : predictions) {
    const StopVisit& visit = actual.visits[static_cast<std::size_t>(p.stop_index)];
    err.add(std::abs(p.eta - visit.arrival));
  }
  // Paper-companion quality: within about a minute over a whole route.
  EXPECT_LT(err.mean(), 90.0);
}

TEST(ArrivalPredictor, RejectsBadIndex) {
  const Testbed& bed = testbed();
  const SegmentCatalog catalog(bed.world.city());
  const ArrivalPredictor predictor(catalog);
  const BusRoute& route = *bed.world.city().route_by_name("79", 0);
  const SpeedFusion fusion;
  EXPECT_THROW(predictor.predict(route, -1, 0.0, fusion, 0.0),
               std::invalid_argument);
  EXPECT_THROW(predictor.predict(route, static_cast<int>(route.stop_count()),
                                 0.0, fusion, 0.0),
               std::invalid_argument);
}

// ------------------------------------------------------------- db updater

MappedTrip confident_trip(StopId stop, const Fingerprint& fp, int taps,
                          double score = 5.0) {
  MappedTrip trip;
  SampleCluster cluster;
  for (int i = 0; i < taps; ++i) {
    cluster.members.push_back(
        MatchedSample{CellularSample{static_cast<double>(i), fp}, stop, score});
  }
  cluster.candidates.push_back(StopCandidate{stop, 1.0, score});
  trip.stops.push_back(MappedCluster{cluster, stop});
  return trip;
}

TEST(DbUpdater, RefreshesDecayedEntryWithContinuity) {
  DatabaseUpdater updater;
  StopDatabase db;
  // Incumbent shares a 3-ID block with the fresh samples (one tower
  // renumbered): decayed below the refresh trigger but continuous.
  db.add(7, Fingerprint{{1, 2, 3, 9}});
  const Fingerprint fresh{{1, 2, 3, 4}};
  const int refreshed =
      updater.observe(confident_trip(7, fresh, 12), db);
  EXPECT_EQ(refreshed, 1);
  EXPECT_EQ(*db.fingerprint_of(7), fresh);
  EXPECT_GT(updater.observations(), 10u);
}

TEST(DbUpdater, HealthyEntryIsLeftAlone) {
  DatabaseUpdater updater;
  StopDatabase db;
  const Fingerprint entry{{1, 2, 3, 4, 5}};
  db.add(7, entry);
  // Fresh samples still align well (score 5 on a 5-ID entry).
  EXPECT_EQ(updater.observe(confident_trip(7, entry, 12), db), 0);
  EXPECT_EQ(*db.fingerprint_of(7), entry);
}

TEST(DbUpdater, ContinuityGuardBlocksForeignFingerprints) {
  DatabaseUpdater updater;
  StopDatabase db;
  db.add(7, Fingerprint{{1, 2, 3, 9}});
  // Confidently mis-mapped cluster from a different radio neighbourhood:
  // decayed (sim 0) but not continuous either -> no refresh.
  EXPECT_EQ(updater.observe(confident_trip(7, Fingerprint{{50, 51, 52, 53}}, 12), db),
            0);
  EXPECT_EQ(*db.fingerprint_of(7), (Fingerprint{{1, 2, 3, 9}}));
}

TEST(DbUpdater, IgnoresLowConfidenceClusters) {
  DatabaseUpdater updater;
  StopDatabase db;
  db.add(7, Fingerprint{{1, 2, 3, 9}});
  MappedTrip trip = confident_trip(7, Fingerprint{{1, 2, 3, 4}}, 12);
  trip.stops[0].cluster.candidates[0].probability = 0.6;  // mixed votes
  EXPECT_EQ(updater.observe(trip, db), 0);
  trip.stops[0].cluster.candidates[0].probability = 1.0;
  trip.stops[0].cluster.candidates[0].mean_similarity = 2.0;  // weak match
  EXPECT_EQ(updater.observe(trip, db), 0);
  EXPECT_EQ(*db.fingerprint_of(7), (Fingerprint{{1, 2, 3, 9}}));
}

TEST(DbUpdater, IgnoresClustersOverriddenByMapping) {
  DatabaseUpdater updater;
  StopDatabase db;
  db.add(7, Fingerprint{{1, 2, 3, 9}});
  MappedTrip trip = confident_trip(9, Fingerprint{{1, 2, 3, 4}}, 12);
  // The trip mapper chose 7 even though the local match said 9: too risky.
  trip.stops[0].stop = 7;
  EXPECT_EQ(updater.observe(trip, db), 0);
}

TEST(DbUpdater, HoleRecoveryResurrectsDeadStop) {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  const RouteGraph graph(city);
  const BusRoute& route = city.routes()[0];
  auto eff = [&](int i) { return city.effective_stop(route.stops()[static_cast<std::size_t>(i)].stop); };

  StopDatabase db;
  db.add(eff(2), Fingerprint{{11, 12, 13, 14}});
  db.add(eff(4), Fingerprint{{31, 32, 33, 34}});
  db.add(eff(3), Fingerprint{{91, 92}});  // dead entry: matches nothing

  // Upload: confident clusters at stops 2 and 4, orphans in between whose
  // fingerprints never matched the dead entry.
  TripUpload upload;
  MappedTrip mapped;
  auto add_cluster = [&](StopId stop, const Fingerprint& fp, double t0) {
    SampleCluster c;
    for (int i = 0; i < 4; ++i) {
      const CellularSample s{t0 + i, fp};
      upload.samples.push_back(s);
      c.members.push_back(MatchedSample{s, stop, 4.0});
    }
    c.candidates.push_back(StopCandidate{stop, 1.0, 4.0});
    mapped.stops.push_back(MappedCluster{c, stop});
  };
  add_cluster(eff(2), Fingerprint{{11, 12, 13, 14}}, 0.0);
  const Fingerprint orphan_fp{{21, 22, 23, 24}};
  for (int rep = 0; rep < 12; ++rep) {
    upload.samples.push_back(CellularSample{60.0 + rep, orphan_fp});
  }
  add_cluster(eff(4), Fingerprint{{31, 32, 33, 34}}, 120.0);

  DatabaseUpdater updater;
  const int recovered = updater.recover_holes(upload, mapped, graph, db);
  EXPECT_EQ(recovered, 1);
  EXPECT_EQ(*db.fingerprint_of(eff(3)), orphan_fp);
}

TEST(DbUpdater, HoleRecoveryNeedsBothAnchors) {
  const Testbed& bed = testbed();
  const City& city = bed.world.city();
  const RouteGraph graph(city);
  StopDatabase db;
  DatabaseUpdater updater;
  TripUpload upload;
  MappedTrip mapped;  // fewer than two clusters: nothing to anchor on
  EXPECT_EQ(updater.recover_holes(upload, mapped, graph, db), 0);
}

TEST(DbUpdater, KeepsDatabaseHealthyUnderTowerChurn) {
  // A world whose towers renumber at 3%/day. Accuracy is remarkably robust
  // either way (partial fingerprints still win — see EXPERIMENTS.md for the
  // negative system-level finding), but the *database health* — how well
  // entries align with current scans — decays toward the γ = 2 acceptance
  // threshold with a static DB and is held clearly above it by the updater.
  WorldConfig cfg;
  cfg.city.width_m = 4000.0;
  cfg.city.height_m = 2500.0;
  cfg.city.route_names = {"79", "243"};
  cfg.tower_churn_per_day = 0.03;
  cfg.seed = 31;
  const World world(cfg);
  const City& city = world.city();
  const RouteGraph graph(city);
  Rng rng(32);
  StopDatabase static_db = build_stop_database(
      city,
      [&](StopId s, int) { return world.scan_stop(s, rng, false, 0.0); }, 3);
  StopDatabase updated_db = static_db;
  DatabaseUpdater updater;

  for (int day = 0; day <= 30; day += 2) {
    TrafficServer server(city, updated_db);
    Rng day_rng(100 + static_cast<std::uint64_t>(day));
    for (const BusRoute* route :
         {city.route_by_name("79", 0), city.route_by_name("243", 0)}) {
      for (int k = 0; k < 4; ++k) {
        const AnnotatedTrip trip = world.simulate_single_trip(
            *route, 1, static_cast<int>(route->stop_count()) - 2,
            at_clock(day, 8 + 3 * k, 0), day_rng);
        const auto report = server.process_trip(trip.upload);
        updater.observe(report.mapped, updated_db);
        updater.recover_holes(trip.upload, report.mapped, graph, updated_db);
      }
    }
  }
  EXPECT_GT(updater.refreshes(), 10u);

  auto health = [&](const StopDatabase& db) {
    Rng r(777);
    double total = 0.0;
    int n = 0;
    for (const StopRecord& rec : db.records()) {
      for (int k = 0; k < 3; ++k) {
        total += similarity(
            world.scan_stop(rec.stop, r, false, at_clock(30, 12, 0)),
            rec.fingerprint);
        ++n;
      }
    }
    return total / n;
  };
  const double static_health = health(static_db);
  const double updated_health = health(updated_db);
  EXPECT_GT(updated_health, static_health + 0.3);
}

// ------------------------------------------------------------ serialization

TEST(Serialization, StopDatabaseRoundTrip) {
  StopDatabase db;
  db.add(3, Fingerprint{{1101, 1102, 1103}});
  db.add(9, Fingerprint{{2201}});
  db.add(12, Fingerprint{});
  std::stringstream ss;
  save_stop_database(db, ss);
  const StopDatabase loaded = load_stop_database(ss);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(*loaded.fingerprint_of(3), (Fingerprint{{1101, 1102, 1103}}));
  EXPECT_EQ(*loaded.fingerprint_of(9), (Fingerprint{{2201}}));
  EXPECT_TRUE(loaded.fingerprint_of(12)->empty());
}

TEST(Serialization, TripsRoundTrip) {
  std::vector<TripUpload> trips(2);
  trips[0].participant_id = 4;
  trips[0].samples = {CellularSample{100.5, Fingerprint{{1, 2}}},
                      CellularSample{130.25, Fingerprint{{3}}}};
  trips[1].participant_id = 9;  // empty trip
  std::stringstream ss;
  save_trips(trips, ss);
  const auto loaded = load_trips(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].participant_id, 4);
  ASSERT_EQ(loaded[0].samples.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0].samples[1].time, 130.25);
  EXPECT_EQ(loaded[0].samples[0].fingerprint, (Fingerprint{{1, 2}}));
  EXPECT_TRUE(loaded[1].samples.empty());
}

TEST(Serialization, RejectsCorruptInput) {
  std::stringstream no_header("not a header\n");
  EXPECT_THROW(load_stop_database(no_header), std::runtime_error);
  std::stringstream bad_line("bussense-stopdb v1\nstop x y\n");
  EXPECT_THROW(load_stop_database(bad_line), std::runtime_error);
  std::stringstream truncated("bussense-trips v1\ntrip 1 2\nsample 1.0 5\n");
  EXPECT_THROW(load_trips(truncated), std::runtime_error);
  std::stringstream bad_cell("bussense-stopdb v1\nstop 1 12,ab\n");
  EXPECT_THROW(load_stop_database(bad_cell), std::runtime_error);
}

TEST(Serialization, FileRoundTrip) {
  StopDatabase db;
  db.add(1, Fingerprint{{5, 6}});
  const std::string path = ::testing::TempDir() + "/bussense_db.txt";
  save_stop_database(db, path);
  const StopDatabase loaded = load_stop_database(path);
  EXPECT_EQ(*loaded.fingerprint_of(1), (Fingerprint{{5, 6}}));
  EXPECT_THROW(load_stop_database(path + ".missing"), std::runtime_error);
}

// ------------------------------------------------------------ tower churn

TEST(TowerChurn, ZeroChurnIsIdentity) {
  const Testbed& bed = testbed();
  const Fingerprint fp{{1101, 1102}};
  EXPECT_EQ(bed.world.apply_churn(fp, 30 * kDay), fp);
}

TEST(TowerChurn, ChurnRenumbersOverTime) {
  WorldConfig cfg;
  cfg.city.width_m = 4000.0;
  cfg.city.height_m = 2500.0;
  cfg.city.route_names = {"79"};
  cfg.tower_churn_per_day = 0.05;
  const World world(cfg);
  Rng rng(1);
  const StopId stop = world.city().routes()[0].stops()[2].stop;
  // Mean RSS ordering is stable, so comparing day-0 and day-40 scans
  // isolates the renumbering.
  int changed = 0;
  for (int k = 0; k < 10; ++k) {
    Rng r1(static_cast<std::uint64_t>(k)), r2(static_cast<std::uint64_t>(k));
    const Fingerprint early = world.scan_stop(stop, r1, false, 0.0);
    const Fingerprint late = world.scan_stop(stop, r2, false, 40 * kDay);
    if (!(early == late)) ++changed;
  }
  EXPECT_GT(changed, 7);  // 5%/day over 40 days churns almost every tower
}

}  // namespace
}  // namespace bussense
