// Concurrent ingestion determinism: N threads interleaving process_trip,
// advance_time and snapshot must produce a fused map *bit-identical* to
// single-threaded ingestion — SpeedFusion sums each period's estimates in
// sorted order, so the result depends only on the multiset of estimates.
//
// Configure with -DBUSSENSE_SANITIZE=thread to run this suite (and the
// rest of the tests) under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/concurrent_server.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

struct Testbed {
  World world;
  StopDatabase database;

  Testbed() {
    Rng survey_rng(2024);
    database = build_stop_database(
        world.city(),
        [&](StopId stop, int run) {
          return world.scan_stop(stop, survey_rng, run % 2 == 1);
        },
        5);
  }
};

const Testbed& testbed() {
  static const Testbed bed;
  return bed;
}

TEST(ConcurrencyDeterminism, InterleavedOpsBitIdenticalToSerial) {
  const Testbed& bed = testbed();
  Rng rng(21);
  const auto day = bed.world.simulate_day(0, 1.5, rng);
  ASSERT_GT(day.trips.size(), 40u);
  const SimTime end = at_clock(1, 0, 0);

  TrafficServer serial(bed.world.city(), bed.database);
  for (const AnnotatedTrip& trip : day.trips) serial.process_trip(trip.upload);
  serial.advance_time(end);
  const auto expected = serial.fusion().all();
  ASSERT_FALSE(expected.empty());

  for (const int threads : {2, 4, 8}) {
    // Small batches + few stripes on purpose: more flush/lock interleavings.
    ConcurrentServerConfig cc;
    cc.fusion_stripes = 4;
    cc.batch_flush_threshold = 8;
    ConcurrentTrafficServer server(bed.world.city(), bed.database, {}, cc);
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        int done = 0;
        for (std::size_t i = next.fetch_add(1); i < day.trips.size();
             i = next.fetch_add(1)) {
          server.process_trip(day.trips[i].upload);
          if (++done % 8 == 0) {
            // Interleave drains and reads mid-ingestion. advance_time(0)
            // closes no period that is still receiving estimates — the
            // determinism contract — but exercises the batch-drain and
            // stripe-lock paths against concurrent folds.
            server.advance_time(0.0);
            (void)server.snapshot(end, 24 * kHour);
          }
        }
      });
    }
    for (std::thread& th : pool) th.join();
    server.advance_time(end);

    EXPECT_EQ(server.trips_processed(), day.trips.size());
    ASSERT_EQ(server.fusion().all().size(), expected.size()) << threads;
    for (const auto& [key, fused] : expected) {
      const auto got = server.fusion().query(key);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->mean_kmh, fused.mean_kmh);
      EXPECT_EQ(got->variance, fused.variance);
      EXPECT_EQ(got->updated_at, fused.updated_at);
      EXPECT_EQ(got->observation_count, fused.observation_count);
    }
  }
}

TEST(ConcurrencyDeterminism, BatchThresholdDoesNotChangeResults) {
  const Testbed& bed = testbed();
  Rng rng(22);
  const auto day = bed.world.simulate_day(0, 0.8, rng);
  const SimTime end = at_clock(1, 0, 0);

  std::vector<std::vector<std::pair<SegmentKey, FusedSpeed>>> results;
  for (const std::size_t threshold : {1u, 4u, 1024u}) {
    ConcurrentServerConfig cc;
    cc.batch_flush_threshold = threshold;
    ConcurrentTrafficServer server(bed.world.city(), bed.database, {}, cc);
    for (const AnnotatedTrip& trip : day.trips) server.process_trip(trip.upload);
    server.advance_time(end);
    results.push_back(server.fusion().all());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].size(), results[0].size());
    for (const auto& [key, fused] : results[0]) {
      bool found = false;
      for (const auto& [key2, fused2] : results[i]) {
        if (!(key2 == key)) continue;
        found = true;
        EXPECT_EQ(fused2.mean_kmh, fused.mean_kmh);
        EXPECT_EQ(fused2.observation_count, fused.observation_count);
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(ConcurrencyDeterminism, StripeCountInvariant) {
  const Testbed& bed = testbed();
  Rng rng(23);
  const auto day = bed.world.simulate_day(0, 0.8, rng);
  const SimTime end = at_clock(1, 0, 0);

  ConcurrentServerConfig one;
  one.fusion_stripes = 1;
  ConcurrentTrafficServer coarse(bed.world.city(), bed.database, {}, one);
  ConcurrentServerConfig many;
  many.fusion_stripes = 64;
  ConcurrentTrafficServer fine(bed.world.city(), bed.database, {}, many);
  for (const AnnotatedTrip& trip : day.trips) {
    coarse.process_trip(trip.upload);
    fine.process_trip(trip.upload);
  }
  coarse.advance_time(end);
  fine.advance_time(end);
  const auto a = coarse.fusion().all();
  ASSERT_EQ(a.size(), fine.fusion().all().size());
  for (const auto& [key, fused] : a) {
    const auto got = fine.fusion().query(key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->mean_kmh, fused.mean_kmh);
  }
}

}  // namespace
}  // namespace bussense
