// Unit tests for the backend pipeline stages: stop database, matcher,
// clustering, route graph, trip mapper, segment catalog, travel estimator,
// fusion, traffic map, GPS baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "citynet/city_generator.h"
#include "common/rng.h"
#include "core/clustering.h"
#include "core/fusion.h"
#include "core/google_indicator.h"
#include "core/gps_tracker.h"
#include "core/route_graph.h"
#include "core/segment_catalog.h"
#include "core/server.h"
#include "core/stop_database.h"
#include "core/stop_matcher.h"
#include "core/traffic_map.h"
#include "core/travel_estimator.h"
#include "core/trip_mapper.h"

namespace bussense {
namespace {

const City& test_city() {
  static const City city = generate_city();
  return city;
}

// ------------------------------------------------------------ stop database

TEST(StopDatabase, AddAndLookup) {
  StopDatabase db;
  db.add(3, Fingerprint{{1, 2}});
  db.add(5, Fingerprint{{3, 4}});
  EXPECT_EQ(db.size(), 2u);
  ASSERT_NE(db.fingerprint_of(3), nullptr);
  EXPECT_EQ(*db.fingerprint_of(3), (Fingerprint{{1, 2}}));
  EXPECT_EQ(db.fingerprint_of(99), nullptr);
}

TEST(StopDatabase, AddReplacesExisting) {
  StopDatabase db;
  db.add(3, Fingerprint{{1, 2}});
  db.add(3, Fingerprint{{7, 8}});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(*db.fingerprint_of(3), (Fingerprint{{7, 8}}));
}

TEST(StopDatabase, MedoidPicksCentralSample) {
  // Two similar samples and one outlier: the medoid is one of the pair.
  const std::vector<Fingerprint> samples{
      Fingerprint{{1, 2, 3, 4}},
      Fingerprint{{1, 2, 3, 5}},
      Fingerprint{{9, 8, 7, 6}},
  };
  const Fingerprint rep = select_representative(samples);
  EXPECT_TRUE(rep == samples[0] || rep == samples[1]);
}

TEST(StopDatabase, MedoidOfSingleSampleIsItself) {
  const std::vector<Fingerprint> samples{Fingerprint{{4, 5}}};
  EXPECT_EQ(select_representative(samples), samples[0]);
}

TEST(StopDatabase, MedoidOfEmptyThrows) {
  EXPECT_THROW(select_representative({}), std::invalid_argument);
}

TEST(StopDatabase, BuildCoversEffectiveStopsOnly) {
  const City& city = test_city();
  int scans = 0;
  const StopDatabase db = build_stop_database(
      city,
      [&](StopId stop, int run) {
        ++scans;
        return Fingerprint{{stop * 10 + run % 2, stop * 10 + 1}};
      },
      2);
  // One record per effective stop; twins share the canonical entry.
  std::size_t effective = 0;
  for (const BusStop& s : city.stops()) {
    if (city.effective_stop(s.id) == s.id) ++effective;
  }
  EXPECT_EQ(db.size(), effective);
  EXPECT_EQ(scans, static_cast<int>(effective) * 2);
  for (const StopRecord& r : db.records()) {
    EXPECT_EQ(city.effective_stop(r.stop), r.stop);
  }
}

TEST(StopDatabase, BuildRejectsBadRunCount) {
  EXPECT_THROW(build_stop_database(
                   test_city(), [](StopId, int) { return Fingerprint{}; }, 0),
               std::invalid_argument);
}

// ----------------------------------------------------------------- matcher

StopDatabase toy_db() {
  StopDatabase db;
  db.add(0, Fingerprint{{1, 2, 3, 4, 5}});
  db.add(1, Fingerprint{{10, 11, 12, 13}});
  db.add(2, Fingerprint{{1, 2, 3, 9, 8}});
  return db;
}

TEST(StopMatcher, PicksBestScoringStop) {
  const StopDatabase db = toy_db();
  const StopMatcher matcher(db);
  const auto m = matcher.match(Fingerprint{{10, 11, 12, 13}});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->stop, 1);
  EXPECT_DOUBLE_EQ(m->score, 4.0);
}

TEST(StopMatcher, GammaThresholdRejectsWeakMatches) {
  const StopDatabase db = toy_db();
  const StopMatcher matcher(db);
  EXPECT_FALSE(matcher.match(Fingerprint{{77, 88}}).has_value());
  EXPECT_FALSE(matcher.match(Fingerprint{{1, 99}}).has_value());  // score 1
}

TEST(StopMatcher, TieBreakByCommonCells) {
  StopDatabase db;
  // Both stops align {1,2,3} perfectly; stop 1 shares one extra weak ID.
  db.add(0, Fingerprint{{1, 2, 3, 7, 8}});
  db.add(1, Fingerprint{{1, 2, 3, 6, 9}});
  const StopMatcher matcher(db);
  const auto m = matcher.match(Fingerprint{{1, 2, 3, 9}});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->stop, 1);
  EXPECT_EQ(m->common_cells, 4);
}

TEST(StopMatcher, MatchAllSortedByScore) {
  const StopDatabase db = toy_db();
  const StopMatcher matcher(db);
  const auto all = matcher.match_all(Fingerprint{{1, 2, 3, 4, 5}});
  ASSERT_EQ(all.size(), 2u);  // stops 0 and 2 pass gamma
  EXPECT_EQ(all[0].stop, 0);
  EXPECT_GE(all[0].score, all[1].score);
}

// -------------------------------------------------------------- clustering

MatchedSample ms(double t, StopId stop, double score) {
  return MatchedSample{CellularSample{t, Fingerprint{}}, stop, score};
}

TEST(Clustering, AffinityFormulaMatchesEq1) {
  const ClusteringConfig cfg;
  // Same stop, same score, 0 s apart: (30-0)/30 + (7-0)/7 = 2.
  EXPECT_DOUBLE_EQ(cluster_affinity(ms(0, 1, 5), ms(0, 1, 5), cfg), 2.0);
  // Different stops: L = 0.
  EXPECT_DOUBLE_EQ(cluster_affinity(ms(0, 1, 5), ms(15, 2, 5), cfg), 0.5);
  // Same stop, score gap 3.5, 30 s apart: 0 + (7-3.5)/7 = 0.5.
  EXPECT_DOUBLE_EQ(cluster_affinity(ms(0, 1, 2.0), ms(30, 1, 5.5), cfg), 0.5);
}

TEST(Clustering, GroupsTapsAtOneStop) {
  std::vector<MatchedSample> samples;
  for (int i = 0; i < 6; ++i) samples.push_back(ms(100.0 + i * 1.1, 4, 5.0));
  const auto clusters = cluster_samples(samples);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 6u);
  EXPECT_EQ(clusters[0].best_candidate().stop, 4);
  EXPECT_DOUBLE_EQ(clusters[0].best_candidate().probability, 1.0);
  EXPECT_DOUBLE_EQ(clusters[0].arrival_time(), 100.0);
  EXPECT_NEAR(clusters[0].departure_time(), 105.5, 1e-9);
}

TEST(Clustering, SplitsDistantStops) {
  std::vector<MatchedSample> samples{ms(0, 1, 5), ms(1, 1, 5), ms(120, 2, 5),
                                     ms(121, 2, 5)};
  const auto clusters = cluster_samples(samples);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].best_candidate().stop, 1);
  EXPECT_EQ(clusters[1].best_candidate().stop, 2);
}

TEST(Clustering, MisMatchedSampleStaysInTimeCluster) {
  // One noisy sample matched to a different stop but taken within the same
  // dwell: time affinity keeps it in the cluster; candidates reflect both.
  std::vector<MatchedSample> samples{ms(0, 1, 5), ms(1, 3, 4), ms(2, 1, 5)};
  const auto clusters = cluster_samples(samples);
  ASSERT_EQ(clusters.size(), 1u);
  ASSERT_EQ(clusters[0].candidates.size(), 2u);
  EXPECT_EQ(clusters[0].best_candidate().stop, 1);
  EXPECT_NEAR(clusters[0].best_candidate().probability, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(clusters[0].candidates[1].probability, 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(clusters[0].candidates[1].mean_similarity, 4.0);
}

TEST(Clustering, RequiresTimeOrder) {
  std::vector<MatchedSample> samples{ms(10, 1, 5), ms(5, 1, 5)};
  EXPECT_THROW(cluster_samples(samples), std::invalid_argument);
}

TEST(Clustering, EmptyInputYieldsNoClusters) {
  EXPECT_TRUE(cluster_samples({}).empty());
}

// Larger ε splits more: cluster count is non-decreasing in ε.
class EpsilonMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(EpsilonMonotonicity, ClusterCountNonDecreasing) {
  Rng rng(5);
  std::vector<MatchedSample> samples;
  double t = 0.0;
  for (int stop = 0; stop < 8; ++stop) {
    const int taps = rng.uniform_int(1, 5);
    for (int k = 0; k < taps; ++k) {
      samples.push_back(ms(t, stop, rng.uniform(3.0, 7.0)));
      t += rng.uniform(0.8, 2.5);
    }
    t += rng.uniform(40.0, 90.0);
  }
  ClusteringConfig lo, hi;
  lo.epsilon = GetParam();
  hi.epsilon = GetParam() + 0.2;
  EXPECT_LE(cluster_samples(samples, lo).size(),
            cluster_samples(samples, hi).size());
}

INSTANTIATE_TEST_SUITE_P(Epsilons, EpsilonMonotonicity,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2,
                                           1.4, 1.6, 1.8));

// ------------------------------------------------------------- route graph

TEST(RouteGraph, RelationFollowsRouteOrder) {
  const City& city = test_city();
  const RouteGraph graph(city);
  const BusRoute& route = city.routes()[0];
  const StopId a = city.effective_stop(route.stops()[1].stop);
  const StopId b = city.effective_stop(route.stops()[4].stop);
  EXPECT_EQ(graph.relation(a, b), 1);   // b behind a (skips allowed)
  EXPECT_EQ(graph.relation(a, a), 1);   // same stop
  // The reverse variant makes (b, a) reachable too — via the twin sequence —
  // so pick a pair on a one-directional stretch for the -1 case: use two
  // stops from unrelated routes that share no corridor.
  EXPECT_EQ(graph.route_sequence(route.id()).size(), route.stop_count());
}

TEST(RouteGraph, UnrelatedStopsScoreMinusOne) {
  const City& city = test_city();
  const RouteGraph graph(city);
  // Find two effective stops that never co-occur on any route.
  const auto& routes = city.routes();
  const StopId x = city.effective_stop(routes[0].stops()[0].stop);
  StopId y = kInvalidStop;
  for (const BusStop& s : city.stops()) {
    const StopId eff = city.effective_stop(s.id);
    bool co_occurs = false;
    for (const BusRoute& r : routes) {
      bool has_x = false, has_y = false;
      for (const RouteStop& rs : r.stops()) {
        const StopId e = city.effective_stop(rs.stop);
        has_x = has_x || e == x;
        has_y = has_y || e == eff;
      }
      co_occurs = co_occurs || (has_x && has_y);
    }
    if (!co_occurs && eff != x) {
      y = eff;
      break;
    }
  }
  ASSERT_NE(y, kInvalidStop);
  EXPECT_EQ(graph.relation(x, y), -1);
  EXPECT_EQ(graph.relation(y, x), -1);
}

// ------------------------------------------------------------- trip mapper

SampleCluster cluster_of(std::vector<StopCandidate> candidates, double t0) {
  SampleCluster c;
  c.members.push_back(ms(t0, candidates.front().stop, 5.0));
  c.candidates = std::move(candidates);
  return c;
}

TEST(TripMapper, RouteConstraintOverridesLocalBest) {
  const City& city = test_city();
  const RouteGraph graph(city);
  const TripMapper mapper(graph);
  const BusRoute& route = city.routes()[0];
  const StopId s1 = city.effective_stop(route.stops()[1].stop);
  const StopId s2 = city.effective_stop(route.stops()[2].stop);
  const StopId s3 = city.effective_stop(route.stops()[3].stop);
  // Middle cluster slightly prefers an unreachable stop; order fixes it.
  StopId rogue = kInvalidStop;
  for (const BusStop& s : city.stops()) {
    const StopId eff = city.effective_stop(s.id);
    if (eff != s1 && eff != s2 && eff != s3 &&
        graph.relation(s1, eff) == -1 && graph.relation(eff, s3) == -1) {
      rogue = eff;
      break;
    }
  }
  ASSERT_NE(rogue, kInvalidStop);
  std::vector<SampleCluster> clusters{
      cluster_of({{s1, 1.0, 6.0}}, 0.0),
      cluster_of({{rogue, 0.6, 5.0}, {s2, 0.4, 5.0}}, 60.0),
      cluster_of({{s3, 1.0, 6.0}}, 120.0),
  };
  const MappedTrip trip = mapper.map_trip(clusters);
  ASSERT_EQ(trip.stops.size(), 3u);
  EXPECT_EQ(trip.stops[0].stop, s1);
  EXPECT_EQ(trip.stops[1].stop, s2);  // constraint rescued the right stop
  EXPECT_EQ(trip.stops[2].stop, s3);
}

TEST(TripMapper, EmptyTrip) {
  const RouteGraph graph(test_city());
  const TripMapper mapper(graph);
  EXPECT_TRUE(mapper.map_trip({}).stops.empty());
}

TEST(TripMapper, ThrowsOnClusterWithoutCandidates) {
  const RouteGraph graph(test_city());
  const TripMapper mapper(graph);
  std::vector<SampleCluster> clusters(1);
  EXPECT_THROW(mapper.map_trip(clusters), std::invalid_argument);
}

// Property: the DP equals exhaustive enumeration on random instances.
class DpEqualsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(DpEqualsBruteForce, SameLikelihood) {
  const City& city = test_city();
  const RouteGraph graph(city);
  const TripMapper mapper(graph);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Random clusters with 1-3 candidates drawn from random effective stops.
  std::vector<StopId> pool;
  for (const BusStop& s : city.stops()) {
    if (city.effective_stop(s.id) == s.id) pool.push_back(s.id);
  }
  std::vector<SampleCluster> clusters;
  const int n = rng.uniform_int(2, 6);
  for (int k = 0; k < n; ++k) {
    std::vector<StopCandidate> cands;
    const int m = rng.uniform_int(1, 3);
    for (int c = 0; c < m; ++c) {
      cands.push_back(StopCandidate{
          pool[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<int>(pool.size()) - 1))],
          rng.uniform(0.1, 1.0), rng.uniform(2.0, 7.0)});
    }
    clusters.push_back(cluster_of(std::move(cands), k * 60.0));
  }
  const MappedTrip dp = mapper.map_trip(clusters);
  const MappedTrip brute = mapper.map_trip_exhaustive(clusters);
  EXPECT_NEAR(dp.likelihood, brute.likelihood, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DpEqualsBruteForce,
                         ::testing::Range(0, 25));

// --------------------------------------------------------- segment catalog

TEST(SegmentCatalog, AdjacentSegmentsTileEveryRoute) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  for (const BusRoute& route : city.routes()) {
    for (std::size_t i = 0; i + 1 < route.stop_count(); ++i) {
      const SegmentKey key{
          city.effective_stop(route.stops()[i].stop),
          city.effective_stop(route.stops()[i + 1].stop)};
      const SpanInfo* info = catalog.adjacent(key);
      ASSERT_NE(info, nullptr);
      EXPECT_GT(info->length_m, 0.0);
      EXPECT_GT(info->free_speed_kmh, 20.0);
    }
  }
}

TEST(SegmentCatalog, SpanResolvesSkippedStops) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  const BusRoute& route = city.routes()[2];
  const SegmentKey span_key{
      city.effective_stop(route.stops()[1].stop),
      city.effective_stop(route.stops()[4].stop)};
  const auto span = catalog.span(span_key);
  ASSERT_TRUE(span.has_value());
  EXPECT_NEAR(span->length_m, route.stop_arc(4) - route.stop_arc(1), 1e-6);
  const auto chain = catalog.adjacent_chain(span_key);
  ASSERT_EQ(chain.size(), 3u);
  double chain_len = 0.0;
  for (const SegmentKey& k : chain) chain_len += catalog.adjacent(k)->length_m;
  EXPECT_NEAR(chain_len, span->length_m, 1e-6);
}

TEST(SegmentCatalog, UnknownPairReturnsEmpty) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  EXPECT_FALSE(catalog.span(SegmentKey{0, 0}).has_value());
  EXPECT_TRUE(catalog.adjacent_chain(SegmentKey{0, 0}).empty());
}

TEST(SegmentCatalog, LinkDecompositionSumsToLength) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    const SpanInfo* info = catalog.adjacent(key);
    double total = 0.0;
    for (const auto& [link, len] : info->links) total += len;
    EXPECT_NEAR(total, info->length_m, 1e-6);
  }
}

// --------------------------------------------------------- travel estimator

TEST(TravelEstimator, AttReducesToFreeTimeAtFreeFlow) {
  const SegmentCatalog catalog(test_city());
  const TravelEstimator est(catalog);
  const double free_btt = est.free_bus_time_s(400.0, 50.0);
  const double att = est.att_seconds(free_btt, 400.0, 50.0);
  EXPECT_NEAR(att, 0.4 / 50.0 * 3600.0, 1e-9);  // a = 28.8 s
  // Faster-than-free BTT clamps at a.
  EXPECT_NEAR(est.att_seconds(free_btt - 10.0, 400.0, 50.0), att, 1e-9);
}

TEST(TravelEstimator, AttGrowsLinearlyWithCongestionExcess) {
  const SegmentCatalog catalog(test_city());
  AttModelConfig cfg;
  cfg.b = 0.5;
  const TravelEstimator est(catalog, cfg);
  const double free_btt = est.free_bus_time_s(400.0, 50.0);
  const double att1 = est.att_seconds(free_btt + 20.0, 400.0, 50.0);
  const double att2 = est.att_seconds(free_btt + 40.0, 400.0, 50.0);
  EXPECT_NEAR(att2 - att1, 0.5 * 20.0, 1e-9);
}

TEST(TravelEstimator, EstimateFromHandBuiltTrip) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  const RouteGraph graph(city);
  const TravelEstimator est(catalog);
  const BusRoute& route = city.routes()[0];
  auto eff = [&](int i) { return city.effective_stop(route.stops()[i].stop); };
  // Clusters at stops 2, 3 and 5 (stop 4 skipped by the bus).
  MappedTrip trip;
  auto add = [&](int stop_idx, double t_arr, double t_dep) {
    SampleCluster c;
    c.members.push_back(ms(t_arr, eff(stop_idx), 5.0));
    c.members.push_back(ms(t_dep, eff(stop_idx), 5.0));
    c.candidates.push_back(StopCandidate{eff(stop_idx), 1.0, 5.0});
    trip.stops.push_back(MappedCluster{c, eff(stop_idx)});
  };
  add(2, 0.0, 10.0);
  add(3, 70.0, 80.0);
  add(5, 250.0, 260.0);
  const auto estimates = est.estimate(trip);
  // Adjacent pair 2->3 plus the skip span 3->5 projected onto 3->4 and 4->5.
  ASSERT_EQ(estimates.size(), 3u);
  EXPECT_EQ(estimates[0].segment, (SegmentKey{eff(2), eff(3)}));
  EXPECT_DOUBLE_EQ(estimates[0].btt_s, 60.0);
  EXPECT_EQ(estimates[1].segment, (SegmentKey{eff(3), eff(4)}));
  EXPECT_EQ(estimates[2].segment, (SegmentKey{eff(4), eff(5)}));
  EXPECT_DOUBLE_EQ(estimates[1].btt_s, 170.0);
  EXPECT_DOUBLE_EQ(estimates[1].att_speed_kmh, estimates[2].att_speed_kmh);
  for (const auto& e : estimates) {
    EXPECT_GT(e.att_speed_kmh, 0.0);
    EXPECT_LT(e.att_speed_kmh, 80.0);
  }
}

TEST(TravelEstimator, SkipsDegeneratePairs) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  const TravelEstimator est(catalog);
  const BusRoute& route = city.routes()[0];
  const StopId s = city.effective_stop(route.stops()[2].stop);
  MappedTrip trip;
  SampleCluster c;
  c.members.push_back(ms(0.0, s, 5.0));
  c.candidates.push_back(StopCandidate{s, 1.0, 5.0});
  trip.stops.push_back(MappedCluster{c, s});
  trip.stops.push_back(MappedCluster{c, s});  // same stop twice
  EXPECT_TRUE(est.estimate(trip).empty());
}

// ------------------------------------------------------------------ fusion

SpeedEstimate estimate_at(SegmentKey key, double speed, SimTime t) {
  SpeedEstimate e;
  e.segment = key;
  e.att_speed_kmh = speed;
  e.time = t;
  return e;
}

TEST(SpeedFusion, FirstObservationInitialises) {
  SpeedFusion fusion;
  fusion.add(estimate_at({1, 2}, 40.0, 100.0));
  fusion.flush_until(1000.0);
  const auto f = fusion.query({1, 2});
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->mean_kmh, 40.0);
  EXPECT_EQ(f->observation_count, 1);
}

TEST(SpeedFusion, Eq4PrecisionWeightedUpdate) {
  FusionConfig cfg;
  cfg.observation_variance = 30.0;
  cfg.variance_floor = 0.0;
  cfg.process_noise_per_s = 0.0;
  SpeedFusion fusion(cfg);
  fusion.add(estimate_at({1, 2}, 40.0, 100.0));   // period 0
  fusion.add(estimate_at({1, 2}, 50.0, 400.0));   // period 1
  fusion.flush_until(10000.0);
  const auto f = fusion.query({1, 2});
  ASSERT_TRUE(f.has_value());
  // After init: v=40, s2=30. Update with v̄=50, s̄2=30 -> v=45, s2=15.
  EXPECT_DOUBLE_EQ(f->mean_kmh, 45.0);
  EXPECT_DOUBLE_EQ(f->variance, 15.0);
}

TEST(SpeedFusion, WithinPeriodObservationsAreAveraged) {
  SpeedFusion fusion;
  fusion.add(estimate_at({3, 4}, 30.0, 10.0));
  fusion.add(estimate_at({3, 4}, 50.0, 20.0));  // same 5-minute period
  fusion.flush_until(1000.0);
  const auto f = fusion.query({3, 4});
  ASSERT_TRUE(f.has_value());
  EXPECT_DOUBLE_EQ(f->mean_kmh, 40.0);
  EXPECT_EQ(f->observation_count, 2);
}

TEST(SpeedFusion, OpenPeriodNotFlushed) {
  SpeedFusion fusion;
  fusion.add(estimate_at({5, 6}, 30.0, 10.0));
  fusion.flush_until(200.0);  // same period still open
  EXPECT_FALSE(fusion.query({5, 6}).has_value());
  fusion.flush_until(301.0);
  EXPECT_TRUE(fusion.query({5, 6}).has_value());
}

TEST(SpeedFusion, AgeingShiftsWeightTowardFreshData) {
  // After a long silent gap the stale mean barely counts: the fused value
  // moves most of the way to the new observation.
  FusionConfig cfg;
  cfg.observation_variance = 30.0;
  cfg.process_noise_per_s = 0.03;
  SpeedFusion fusion(cfg);
  fusion.add(estimate_at({1, 2}, 20.0, 10.0));
  fusion.add(estimate_at({1, 2}, 50.0, 2.0 * kHour));
  fusion.flush_until(3.0 * kHour);
  const auto f = fusion.query({1, 2});
  ASSERT_TRUE(f.has_value());
  EXPECT_GT(f->mean_kmh, 40.0);  // tracked the fresh 50, not the stale 20
}

TEST(SpeedFusion, VarianceDecreasesMonotonicallyToFloor) {
  FusionConfig cfg;
  cfg.variance_floor = 4.0;
  cfg.process_noise_per_s = 0.0;
  SpeedFusion fusion(cfg);
  double prev = 1e9;
  for (int k = 0; k < 20; ++k) {
    fusion.add(estimate_at({1, 2}, 40.0, k * 300.0 + 10.0));
    fusion.flush_until((k + 1) * 300.0 + 10.0);
    const auto f = fusion.query({1, 2});
    ASSERT_TRUE(f.has_value());
    EXPECT_LE(f->variance, prev + 1e-12);
    prev = f->variance;
  }
  EXPECT_DOUBLE_EQ(prev, 4.0);
}

TEST(SpeedFusion, SegmentsIsolated) {
  SpeedFusion fusion;
  fusion.add(estimate_at({1, 2}, 40.0, 10.0));
  fusion.add(estimate_at({2, 3}, 20.0, 10.0));
  fusion.flush_until(1000.0);
  EXPECT_DOUBLE_EQ(fusion.query({1, 2})->mean_kmh, 40.0);
  EXPECT_DOUBLE_EQ(fusion.query({2, 3})->mean_kmh, 20.0);
  EXPECT_EQ(fusion.all().size(), 2u);
}

// ------------------------------------------------------------- traffic map

TEST(TrafficMap, ClassifyLevels) {
  EXPECT_EQ(classify_speed(10.0), SpeedLevel::kVerySlow);
  EXPECT_EQ(classify_speed(25.0), SpeedLevel::kSlow);
  EXPECT_EQ(classify_speed(35.0), SpeedLevel::kMedium);
  EXPECT_EQ(classify_speed(45.0), SpeedLevel::kFast);
  EXPECT_EQ(classify_speed(55.0), SpeedLevel::kVeryFast);
}

TEST(TrafficMap, SnapshotFiltersStaleEstimates) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  SpeedFusion fusion;
  const SegmentKey key = catalog.adjacent_keys()[0];
  fusion.add(estimate_at(key, 35.0, 100.0));
  fusion.flush_until(10000.0);
  const TrafficMap fresh = TrafficMap::snapshot(fusion, catalog, 500.0, 3600.0);
  EXPECT_EQ(fresh.segments().size(), 1u);
  const TrafficMap stale = TrafficMap::snapshot(fusion, catalog, 50000.0, 3600.0);
  EXPECT_TRUE(stale.segments().empty());
}

TEST(TrafficMap, CoverageAndHistogram) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  SpeedFusion fusion;
  double t = 10.0;
  for (const SegmentKey& key : catalog.adjacent_keys()) {
    fusion.add(estimate_at(key, 15.0 + (key.from % 5) * 10.0, t));
  }
  fusion.flush_until(1e6);
  const TrafficMap map = TrafficMap::snapshot(fusion, catalog, 400.0, 1e9);
  EXPECT_EQ(map.segments().size(), catalog.adjacent_keys().size());
  EXPECT_GT(map.coverage_ratio(catalog), 0.4);
  int total = 0;
  for (const auto& [level, count] : map.level_histogram()) total += count;
  EXPECT_EQ(total, static_cast<int>(map.segments().size()));
  EXPECT_GT(map.mean_speed_kmh(), 10.0);
}

TEST(TrafficMap, AsciiRenderHasExpectedShape) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  SpeedFusion fusion;
  fusion.add(estimate_at(catalog.adjacent_keys()[0], 12.0, 10.0));
  fusion.flush_until(1e6);
  const TrafficMap map = TrafficMap::snapshot(fusion, catalog, 400.0, 1e9);
  const std::string art = map.render_ascii(catalog, 70, 20);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 20);
  EXPECT_NE(art.find('1'), std::string::npos);  // the very-slow segment
  EXPECT_NE(art.find('.'), std::string::npos);  // uncovered bus roads
}

// -------------------------------------------------------- google indicator

TEST(GoogleIndicator, LevelsAndCodes) {
  EXPECT_EQ(google_level(10.0), GoogleLevel::kVerySlow);
  EXPECT_EQ(google_level(30.0), GoogleLevel::kSlow);
  EXPECT_EQ(google_level(40.0), GoogleLevel::kNormal);
  EXPECT_EQ(google_level(60.0), GoogleLevel::kFast);
  EXPECT_EQ(google_level_code(GoogleLevel::kVerySlow), 1);
  EXPECT_EQ(google_level_code(GoogleLevel::kFast), 4);
  EXPECT_EQ(to_string(GoogleLevel::kNormal), "normal");
}

// ------------------------------------------------------------- gps tracker

TEST(GpsTracker, MatchedArcsAreMonotone) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  const GpsTracker tracker(catalog);
  const BusRoute& route = city.routes()[0];
  // Clean synthetic trace with a deliberate backward scatter.
  std::vector<std::pair<SimTime, Point>> fixes;
  for (double arc = 0.0; arc < 2000.0; arc += 100.0) {
    fixes.emplace_back(arc / 10.0, route.path().point_at(arc));
  }
  fixes[5].second = route.path().point_at(300.0);  // behind fix 4
  const auto arcs = tracker.matched_arcs(route, fixes);
  for (std::size_t i = 1; i < arcs.size(); ++i) {
    EXPECT_GE(arcs[i], arcs[i - 1]);
  }
}

TEST(GpsTracker, CleanTraceRecoversBusTravelTimes) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  AttModelConfig att;
  const GpsTracker tracker(catalog, att);
  const BusRoute& route = city.routes()[0];
  // Bus at constant 10 m/s, no noise: BTT between adjacent stops = gap/10.
  std::vector<std::pair<SimTime, Point>> fixes;
  for (double arc = 0.0; arc <= route.length(); arc += 20.0) {
    fixes.emplace_back(arc / 10.0, route.path().point_at(arc));
  }
  const auto estimates = tracker.estimate(route, fixes);
  ASSERT_GT(estimates.size(), 5u);
  for (const auto& e : estimates) {
    const SpanInfo* info = catalog.adjacent(e.segment);
    ASSERT_NE(info, nullptr);
    EXPECT_NEAR(e.btt_s, info->length_m / 10.0, 5.0);
  }
}

TEST(GpsTracker, TooFewFixesYieldNothing) {
  const City& city = test_city();
  const SegmentCatalog catalog(city);
  const GpsTracker tracker(catalog);
  EXPECT_TRUE(tracker.estimate(city.routes()[0], {}).empty());
  EXPECT_TRUE(
      tracker.estimate(city.routes()[0], {{0.0, Point{0, 0}}}).empty());
}

}  // namespace
}  // namespace bussense
