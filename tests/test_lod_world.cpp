// Property suite for the tiered-fidelity metropolis simulation
// (trafficsim/lod_world.h, DESIGN.md §15).
//
// The three load-bearing properties:
//   (a) a simulated day is a pure function of the seed — byte-identical
//       trip streams at 1/2/4/8 threads and across repeated runs;
//   (b) tier populations are isolated — growing or shrinking the Focus
//       cohort changes only the riders who enter or leave Focus, every
//       other rider's output stays byte-stable;
//   (c) the Event tier's calibrated shortcut tracks the Focus tier's full
//       waveform path — same bus, agreeing stop sequences, and
//       server-level accuracy within a pinned golden band.
// Plus: event-channel calibration pins, the weekly load curve shape,
// make_trip_specs loss accounting (the silent-drop fix), and the shared
// workload-replay driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "core/server.h"
#include "core/stop_database.h"
#include "core/workload_replay.h"
#include "core/epoch_publisher.h"
#include "trafficsim/lod_world.h"

namespace bussense {
namespace {

// The full default world is expensive to build; share one across tests.
const World& test_world() {
  static const World world{};
  return world;
}

/// A compact LOD population over the shared world: enough riders to cover
/// several parallel blocks, trip rate high enough that every suite sees
/// real trips.
LodConfig small_lod_config() {
  LodConfig config;
  config.focus_fraction = 0.01;
  config.event_fraction = 0.20;
  config.focus_cap = 8;
  config.event_cap = 1024;
  config.trips_per_rider_per_day = 0.6;
  config.seed = 2026;
  return config;
}

const LodWorld& small_lod() {
  static const LodWorld lod(test_world(), 3000, small_lod_config());
  return lod;
}

// ------------------------------------------------------------ tier census

TEST(LodTiers, AssignmentDeterministicAndCapped) {
  const LodWorld& lod = small_lod();
  const LodCensus& census = lod.census();
  EXPECT_EQ(census.riders, 3000u);
  EXPECT_EQ(census.focus + census.event + census.on_rails, census.riders);
  EXPECT_LE(census.focus, small_lod_config().focus_cap);
  EXPECT_LE(census.event, small_lod_config().event_cap);
  // focus_fraction 0.01 over 3000 riders ⇒ ~30 candidates against a cap of
  // 8: the cap binds and demotion is visible in the census.
  EXPECT_EQ(census.focus, small_lod_config().focus_cap);
  EXPECT_GT(census.focus_demoted, 0u);

  // A second LodWorld over the same (world, riders, config) agrees rider
  // by rider.
  const LodWorld again(test_world(), 3000, small_lod_config());
  for (std::int64_t rider = 0; rider < lod.riders(); ++rider) {
    ASSERT_EQ(lod.tier_of(rider), again.tier_of(rider)) << "rider " << rider;
  }
}

TEST(LodTiers, TierNamesRoundTrip) {
  EXPECT_STREQ(to_string(FidelityTier::kFocus), "focus");
  EXPECT_STREQ(to_string(FidelityTier::kEvent), "event");
  EXPECT_STREQ(to_string(FidelityTier::kOnRails), "onrails");
}

// ---------------------------------------------- (a) thread-count identity

TEST(LodDeterminism, DayStreamByteIdenticalAtAnyThreadCount) {
  const LodWorld& lod = small_lod();
  const std::vector<LodTrip> serial = lod.simulate_day(0, nullptr);
  ASSERT_GT(serial.size(), 100u);
  const std::uint64_t want = LodWorld::stream_digest(serial);

  std::ostringstream serial_text;
  LodWorld::write_stream(serial_text, serial);

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const std::vector<LodTrip> parallel = lod.simulate_day(0, &pool);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    EXPECT_EQ(LodWorld::stream_digest(parallel), want) << threads << " threads";
    std::ostringstream text;
    LodWorld::write_stream(text, parallel);
    EXPECT_EQ(text.str(), serial_text.str()) << threads << " threads";
  }
}

TEST(LodDeterminism, StreamSortedByArrival) {
  const std::vector<LodTrip> trips = small_lod().simulate_day(0, nullptr);
  for (std::size_t i = 1; i < trips.size(); ++i) {
    EXPECT_LE(trips[i - 1].arrival, trips[i].arrival);
  }
  for (const LodTrip& t : trips) {
    ASSERT_GE(t.trip.upload.samples.size(), 2u);
    EXPECT_DOUBLE_EQ(t.arrival, t.trip.upload.samples.back().time +
                                    small_lod().config().upload_lag_s);
  }
}

// ------------------------------------------- (b) focus-cohort isolation

TEST(LodIsolation, FocusCohortSizeOnlyAffectsFocusRiders) {
  LodConfig small = small_lod_config();
  small.focus_cap = 2;
  LodConfig large = small_lod_config();
  large.focus_cap = 12;
  const LodWorld lod_small(test_world(), 2000, small);
  const LodWorld lod_large(test_world(), 2000, large);

  std::size_t moved = 0, stable = 0;
  for (std::int64_t rider = 0; rider < 2000; ++rider) {
    const bool focus_in_either =
        lod_small.tier_of(rider) == FidelityTier::kFocus ||
        lod_large.tier_of(rider) == FidelityTier::kFocus;
    if (focus_in_either) {
      ++moved;
      continue;
    }
    // Not Focus under either cap: tier identical (Event candidacy never
    // looks at Focus membership) and the whole day byte-stable.
    ASSERT_EQ(lod_small.tier_of(rider), lod_large.tier_of(rider))
        << "rider " << rider;
    ++stable;
    const auto a = lod_small.simulate_rider_day(rider, 0);
    const auto b = lod_large.simulate_rider_day(rider, 0);
    ASSERT_EQ(LodWorld::stream_digest(a), LodWorld::stream_digest(b))
        << "rider " << rider;
  }
  // The cap change actually moved somebody (12 focus slots vs 2).
  EXPECT_GE(moved, 10u);
  EXPECT_GT(stable, 1900u);
  // Growing the cap only adds focus riders — the small cohort is a subset.
  for (std::int64_t rider = 0; rider < 2000; ++rider) {
    if (lod_small.tier_of(rider) == FidelityTier::kFocus) {
      EXPECT_EQ(lod_large.tier_of(rider), FidelityTier::kFocus);
    }
  }
}

// --------------------------------------- (c) event-vs-focus golden band

/// Ordered distinct true stops visited by an upload's samples (spurious
/// samples excluded).
std::vector<StopId> true_stop_sequence(const AnnotatedTrip& trip) {
  std::vector<StopId> seq;
  for (StopId stop : trip.truth.sample_stops) {
    if (stop == kInvalidStop) continue;
    if (seq.empty() || seq.back() != stop) seq.push_back(stop);
  }
  return seq;
}

TEST(LodCrossTier, EventAndFocusRideTheSameBusAndAgreeOnStops) {
  LodConfig config = small_lod_config();
  config.trips_per_rider_per_day = 2.0;
  const LodWorld lod(test_world(), 24, config);

  std::size_t trips_compared = 0;
  double agreement_sum = 0.0;
  for (std::int64_t rider = 0; rider < lod.riders(); ++rider) {
    const auto focus = lod.simulate_rider_day(rider, 0, FidelityTier::kFocus);
    const auto event = lod.simulate_rider_day(rider, 0, FidelityTier::kEvent);
    std::map<int, const LodTrip*> focus_by_index;
    for (const LodTrip& t : focus) focus_by_index[t.trip_index] = &t;
    for (const LodTrip& e : event) {
      const auto it = focus_by_index.find(e.trip_index);
      if (it == focus_by_index.end()) continue;
      const LodTrip& f = *it->second;
      // Same plan substream ⇒ same bus ride in both tiers.
      ASSERT_EQ(f.trip.truth.route_id, e.trip.truth.route_id);
      ASSERT_EQ(f.trip.truth.board_stop_index, e.trip.truth.board_stop_index);
      ASSERT_EQ(f.trip.truth.alight_stop_index, e.trip.truth.alight_stop_index);

      const std::vector<StopId> fs = true_stop_sequence(f.trip);
      const std::vector<StopId> es = true_stop_sequence(e.trip);
      const std::set<StopId> fset(fs.begin(), fs.end());
      const std::set<StopId> eset(es.begin(), es.end());
      std::vector<StopId> common;
      std::set_intersection(fset.begin(), fset.end(), eset.begin(), eset.end(),
                            std::back_inserter(common));
      std::vector<StopId> all;
      std::set_union(fset.begin(), fset.end(), eset.begin(), eset.end(),
                     std::back_inserter(all));
      ASSERT_FALSE(all.empty());
      agreement_sum += static_cast<double>(common.size()) /
                       static_cast<double>(all.size());
      ++trips_compared;
    }
  }
  ASSERT_GE(trips_compared, 20u);
  const double agreement = agreement_sum / static_cast<double>(trips_compared);
  std::cout << "[lod] focus/event stop agreement = " << agreement << " over "
            << trips_compared << " trips\n";
  // Golden band, pinned from the measured fixed-seed value (1.0 over 52
  // trips): the waveform path and the calibrated event channel hear almost
  // the same stops — they differ only through detection/spurious noise.
  EXPECT_GE(agreement, 0.92);
  EXPECT_LE(agreement, 1.0);
}

// ----------------------------------------------- event-channel calibration

TEST(LodCalibration, WaveformPathPinsTheEventChannel) {
  const EventChannelCalibration cal = calibrate_event_channel(
      AudioEnvironmentConfig{}, BeepDetectorConfig{}, /*clips=*/10,
      /*clip_s=*/30.0, /*taps_per_clip=*/6, /*seed=*/7);
  EXPECT_EQ(cal.clips, 10u);
  EXPECT_EQ(cal.taps, 60u);
  std::cout << "[lod] calibration: detected=" << cal.detected << "/" << cal.taps
            << " spurious=" << cal.spurious << "\n";
  // Pinned from the measured fixed-seed run: the default detector hears
  // nearly every default-amplitude beep and essentially never invents one.
  // The world's default event channel (0.98 / 0.06) sits inside this band.
  EXPECT_GE(cal.detection_prob(), 0.90);
  EXPECT_LE(cal.detection_prob(), 1.0);
  EXPECT_LE(cal.spurious, 3u);

  const EventChannelConfig derived = cal.to_config(/*typical_trip_s=*/600.0);
  EXPECT_NO_THROW(derived.validate());
  EXPECT_LE(std::abs(derived.detection_prob - WorldConfig{}.beep_detection_prob),
            0.08);
}

TEST(LodCalibration, ChannelConfigValidation) {
  EventChannelConfig bad;
  bad.detection_prob = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = EventChannelConfig{};
  bad.false_beeps_per_trip = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_NO_THROW(EventChannelConfig{}.validate());
}

/// Fraction of clusters whose mapped stop equals the majority ground truth
/// of its member samples (same definition as test_golden_accuracy).
double stop_accuracy(const World& world, const TrafficServer& server,
                     const std::vector<AnnotatedTrip>& trips) {
  int total = 0, correct = 0;
  for (const AnnotatedTrip& trip : trips) {
    const auto matched = server.match_samples(trip.upload);
    std::map<double, StopId> truth_by_time;
    for (std::size_t i = 0; i < trip.upload.samples.size(); ++i) {
      truth_by_time[trip.upload.samples[i].time] = trip.truth.sample_stops[i];
    }
    const MappedTrip mapped = server.map_trip(server.cluster_samples(matched));
    for (const MappedCluster& mc : mapped.stops) {
      std::map<StopId, int> votes;
      for (const MatchedSample& m : mc.cluster.members) {
        ++votes[truth_by_time.at(m.sample.time)];
      }
      StopId majority = kInvalidStop;
      int best = 0;
      for (const auto& [stop, count] : votes) {
        if (count > best) {
          best = count;
          majority = stop;
        }
      }
      if (majority == kInvalidStop) continue;
      ++total;
      if (mc.stop == world.city().effective_stop(majority)) ++correct;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

double matched_fraction(const TrafficServer& server,
                        const std::vector<AnnotatedTrip>& trips) {
  std::size_t samples = 0, matched = 0;
  for (const AnnotatedTrip& trip : trips) {
    samples += trip.upload.samples.size();
    matched += server.match_samples(trip.upload).size();
  }
  return samples > 0 ? static_cast<double>(matched) / samples : 0.0;
}

TEST(LodCalibration, EventTierAccuracyTracksFocusReferenceAtTestbedScale) {
  // The paper-scale testbed (22 riders) pushed through both tiers; the
  // backend must score the event-tier workload the same way it scores the
  // waveform-path workload, within a pinned band.
  const World& world = test_world();
  LodConfig config = small_lod_config();
  config.trips_per_rider_per_day = 2.0;
  const LodWorld lod(world, 22, config);

  std::vector<AnnotatedTrip> focus_trips, event_trips;
  for (std::int64_t rider = 0; rider < lod.riders(); ++rider) {
    for (LodTrip& t : lod.simulate_rider_day(rider, 0, FidelityTier::kFocus)) {
      focus_trips.push_back(std::move(t.trip));
    }
    for (LodTrip& t : lod.simulate_rider_day(rider, 0, FidelityTier::kEvent)) {
      event_trips.push_back(std::move(t.trip));
    }
  }
  ASSERT_GE(focus_trips.size(), 25u);
  ASSERT_GE(event_trips.size(), 25u);

  Rng survey_rng(2024);
  StopDatabase database = build_stop_database(
      world.city(),
      [&](StopId stop, int run) {
        return world.scan_stop(stop, survey_rng, run % 2 == 1);
      },
      5);
  TrafficServer server(world.city(), database);

  const double focus_acc = stop_accuracy(world, server, focus_trips);
  const double event_acc = stop_accuracy(world, server, event_trips);
  const double focus_matched = matched_fraction(server, focus_trips);
  const double event_matched = matched_fraction(server, event_trips);
  std::cout << "[lod] testbed focus: acc=" << focus_acc
            << " matched=" << focus_matched << " trips=" << focus_trips.size()
            << "\n[lod] testbed event: acc=" << event_acc
            << " matched=" << event_matched << " trips=" << event_trips.size()
            << "\n";

  // Pinned golden bands (fixed-seed measurements: focus 0.986/0.998,
  // event 0.983/0.999): both tiers identify stops well, and the calibrated
  // shortcut must not drift from its waveform reference.
  EXPECT_GE(focus_acc, 0.95);
  EXPECT_GE(event_acc, 0.95);
  EXPECT_LE(std::abs(focus_acc - event_acc), 0.04);
  EXPECT_GE(focus_matched, 0.97);
  EXPECT_GE(event_matched, 0.97);
  EXPECT_LE(std::abs(focus_matched - event_matched), 0.05);
}

// ------------------------------------------------- weekly demand shape

TEST(LodLoadCurve, WeekdayRushBeatsMiddayAndWeekendIsFlatter) {
  const LodWorld& lod = small_lod();
  const DemandConfig demand;  // world default: peaks at 8.3 / 18.2
  const double rush =
      lod.load_factor(at_clock(0, 0) + demand.morning_peak_h * kHour);
  const double midday = lod.load_factor(at_clock(0, 12, 30));
  const double night = lod.load_factor(at_clock(0, 2));
  EXPECT_GT(rush, 1.5 * midday);
  EXPECT_GT(midday, night);

  // Weekend (day 5): lower volume and flatter peaks.
  const double weekend_rush =
      lod.load_factor(at_clock(5, 0) + demand.morning_peak_h * kHour);
  const double weekend_midday = lod.load_factor(at_clock(5, 12, 30));
  EXPECT_LT(weekend_rush, rush);
  EXPECT_LT(weekend_rush / std::max(weekend_midday, 1e-9),
            rush / std::max(midday, 1e-9));

  // The supremum used for rejection sampling really is an upper bound.
  for (int day = 0; day < 7; ++day) {
    for (double h = 0.0; h < 24.0; h += 0.21) {
      EXPECT_LE(lod.load_factor(at_clock(day, 0) + h * kHour),
                lod.max_load_factor());
    }
  }
}

TEST(LodLoadCurve, DepotPulsesLiftServiceEdges) {
  LodConfig no_pulse = small_lod_config();
  no_pulse.depot_pulse_boost = 1e-12;  // validate() wants > 0
  const LodWorld pulsed(test_world(), 100, small_lod_config());
  const LodWorld flat(test_world(), 100, no_pulse);
  const double start_h = test_world().config().service_start_h;
  const double end_h = test_world().config().service_end_h;
  EXPECT_GT(pulsed.load_factor(at_clock(0, 0) + start_h * kHour),
            flat.load_factor(at_clock(0, 0) + start_h * kHour) + 0.5);
  EXPECT_GT(pulsed.load_factor(at_clock(0, 0) + end_h * kHour),
            flat.load_factor(at_clock(0, 0) + end_h * kHour) + 0.5);
  // Away from the depots the pulse has died off.
  EXPECT_NEAR(pulsed.load_factor(at_clock(0, 13)),
              flat.load_factor(at_clock(0, 13)), 0.05);
}

TEST(LodLoadCurve, WeekdayVolumeExceedsWeekend) {
  const LodWorld& lod = small_lod();
  std::uint64_t weekday = 0, weekend = 0;
  for (std::int64_t rider = 0; rider < lod.riders(); ++rider) {
    weekday += static_cast<std::uint64_t>(lod.trip_count(rider, 0));
    weekend += static_cast<std::uint64_t>(lod.trip_count(rider, 5));
  }
  EXPECT_GT(weekday, weekend);
  // Volume tracks the configured weekend scale, loosely (Poisson noise).
  const double ratio = static_cast<double>(weekend) /
                       std::max<std::uint64_t>(weekday, 1);
  EXPECT_NEAR(ratio, small_lod_config().weekend_factor, 0.15);
}

// -------------------------------------------------- spec-loss accounting

TEST(LodSpecLoss, MakeTripSpecsAccountsForEverySpec) {
  const World& world = test_world();
  World::TripSpecStats stats;
  const auto specs = world.make_trip_specs(0, 500, 91, &stats);
  EXPECT_EQ(stats.requested, 500u);
  EXPECT_EQ(stats.emitted, specs.size());
  EXPECT_EQ(stats.requested, stats.emitted + stats.dropped_no_route);
  // The default city has eight ≥4-stop routes: nothing can drop.
  EXPECT_EQ(stats.dropped_no_route, 0u);

  MetricsRegistry registry;
  stats.export_to(registry);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("trafficsim.specs.requested"), 500u);
  EXPECT_EQ(snap.counters.at("trafficsim.specs.emitted"), specs.size());
  EXPECT_EQ(snap.counters.at("trafficsim.specs.dropped"), 0u);
}

TEST(LodSpecLoss, DegenerateCitySurfacesTheDrops) {
  // Stops 2.8 km apart in a 7×4 km city: every route ends up with two or
  // three stops, so every spec exhausts its retries — the loss that used
  // to vanish silently must now be fully accounted.
  WorldConfig config;
  config.city.stop_spacing_m = 2800.0;
  config.city.stop_spacing_jitter_m = 0.0;
  const World degenerate(config);
  bool all_short = true;
  for (const BusRoute& route : degenerate.city().routes()) {
    if (route.stop_count() >= 4) all_short = false;
  }
  ASSERT_TRUE(all_short);

  World::TripSpecStats stats;
  const auto specs = degenerate.make_trip_specs(0, 64, 5, &stats);
  EXPECT_TRUE(specs.empty());
  EXPECT_EQ(stats.requested, 64u);
  EXPECT_EQ(stats.dropped_no_route, 64u);
  EXPECT_EQ(stats.emitted, 0u);
}

TEST(LodSpecLoss, LodRunsReportZeroUnexplainedLoss) {
  LodConfig config = small_lod_config();
  const LodWorld lod(test_world(), 400, config);
  const auto trips = lod.simulate_day(0, nullptr);
  const LodLoss loss = lod.loss();
  EXPECT_EQ(loss.planned, loss.emitted + loss.dropped_no_route + loss.thin);
  EXPECT_EQ(loss.dropped_no_route, 0u);
  EXPECT_EQ(loss.emitted, trips.size());

  MetricsRegistry registry;
  lod.export_loss(registry);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("trafficsim.lod.planned"), loss.planned);
  EXPECT_EQ(snap.counters.at("trafficsim.lod.dropped_no_route"), 0u);
}

// ------------------------------------------------------- workload replay

std::vector<TimedUpload> to_workload(const std::vector<LodTrip>& trips) {
  std::vector<TimedUpload> workload;
  workload.reserve(trips.size());
  for (const LodTrip& t : trips) {
    workload.push_back(TimedUpload{t.trip.upload, t.arrival});
  }
  return workload;
}

StopDatabase test_database() {
  const World& world = test_world();
  Rng survey_rng(2024);
  return build_stop_database(
      world.city(),
      [&](StopId stop, int run) {
        return world.scan_stop(stop, survey_rng, run % 2 == 1);
      },
      5);
}

TEST(WorkloadReplay, DrivesIngestWithAdvanceCadenceAndAccounting) {
  LodConfig config = small_lod_config();
  const LodWorld lod(test_world(), 300, config);
  const std::vector<TimedUpload> workload =
      to_workload(lod.simulate_day(0, nullptr));
  ASSERT_GT(workload.size(), 20u);

  ServerConfig server_config;
  server_config.admission.enabled = true;
  TrafficServer server(test_world().city(), test_database(), server_config);
  ReplayOptions options;
  options.advance_every_s = 600.0;
  const ReplayStats stats = replay_workload(server, workload, options);

  EXPECT_EQ(stats.submitted, workload.size());
  EXPECT_EQ(stats.submitted, stats.accepted + stats.rejected);
  EXPECT_EQ(stats.rejected, 0u);  // a clean generated workload loses nothing
  EXPECT_EQ(stats.first_arrival, workload.front().arrival);
  EXPECT_EQ(stats.last_arrival, workload.back().arrival);
  // Cadence: one advance per crossed 600 s boundary plus the final one.
  const auto boundaries = static_cast<std::uint64_t>(
      std::floor(workload.back().arrival / 600.0) -
      std::floor(workload.front().arrival / 600.0));
  EXPECT_EQ(stats.advances, boundaries + 1);

  const MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_EQ(snap.counters.at("ingest.admitted"), stats.accepted);
  EXPECT_EQ(server.trips_processed(), stats.accepted);
}

TEST(WorkloadReplay, PublishesEpochsOnCadence) {
  LodConfig config = small_lod_config();
  const LodWorld lod(test_world(), 200, config);
  const std::vector<TimedUpload> workload =
      to_workload(lod.simulate_day(0, nullptr));
  ASSERT_GT(workload.size(), 10u);

  TrafficServer server(test_world().city(), test_database());
  EpochPublisher publisher(server.catalog());
  ReplayOptions options;
  options.advance_every_s = 900.0;
  options.publish_every = 2;
  options.publisher = &publisher;
  const ReplayStats stats = replay_workload(server, workload, options);
  EXPECT_GE(stats.epochs_published, 1u);
  // Mid-replay publishes fire every second advance; the final advance
  // always publishes.
  EXPECT_EQ(stats.epochs_published, (stats.advances - 1) / 2 + 1);
}

TEST(WorkloadReplay, RejectsUnsortedWorkloadsAndBadOptions) {
  LodConfig config = small_lod_config();
  const LodWorld lod(test_world(), 120, config);
  std::vector<TimedUpload> workload = to_workload(lod.simulate_day(0, nullptr));
  ASSERT_GT(workload.size(), 2u);
  TrafficServer server(test_world().city(), test_database());

  std::swap(workload.front().arrival, workload.back().arrival);
  EXPECT_THROW(replay_workload(server, workload), std::invalid_argument);

  ReplayOptions bad;
  bad.publish_every = 2;  // no publisher
  EXPECT_THROW(replay_workload(server, {}, bad), std::invalid_argument);
  EXPECT_EQ(replay_workload(server, {}).submitted, 0u);
}

}  // namespace
}  // namespace bussense
