// Cross-module property and parameterized sweeps: invariants that must hold
// across configurations, seeds and scales (not just the default testbed).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <set>

#include "citynet/city_generator.h"
#include "common/stats.h"
#include "core/matching.h"
#include "core/route_graph.h"
#include "core/segment_catalog.h"
#include "cellular/deployment.h"
#include "cellular/scanner.h"
#include "core/stop_matcher.h"
#include "core/server.h"
#include "core/travel_estimator.h"
#include "core/traffic_map.h"
#include "dsp/audio_synth.h"
#include "dsp/beep_detector.h"
#include "dsp/fft.h"
#include "dsp/goertzel.h"
#include "trafficsim/world.h"

namespace bussense {
namespace {

// ------------------------------------------------------ city invariants

struct CityParams {
  double width;
  double height;
  std::uint64_t seed;
  std::vector<std::string> routes;
};

class CityInvariants : public ::testing::TestWithParam<CityParams> {};

TEST_P(CityInvariants, HoldAcrossConfigurations) {
  const CityParams& p = GetParam();
  CityConfig cfg;
  cfg.width_m = p.width;
  cfg.height_m = p.height;
  cfg.seed = p.seed;
  cfg.route_names = p.routes;
  const City city = generate_city(cfg);

  // Route invariants: spans tile, stops ordered, both directions mirrored.
  for (const BusRoute& route : city.routes()) {
    double expected = 0.0;
    for (const LinkSpan& span : route.link_spans()) {
      EXPECT_NEAR(span.arc_begin, expected, 1e-6);
      expected = span.arc_end;
    }
    EXPECT_NEAR(expected, route.length(), 1e-6);
    for (std::size_t i = 1; i < route.stops().size(); ++i) {
      EXPECT_GT(route.stops()[i].arc_pos, route.stops()[i - 1].arc_pos);
    }
  }
  // Twin symmetry everywhere.
  for (const BusStop& s : city.stops()) {
    if (s.opposite) {
      EXPECT_EQ(*city.stop(*s.opposite).opposite, s.id);
    }
  }
  // The segment catalog must cover every adjacent pair.
  const SegmentCatalog catalog(city);
  for (const BusRoute& route : city.routes()) {
    for (std::size_t i = 0; i + 1 < route.stop_count(); ++i) {
      const SegmentKey key{city.effective_stop(route.stops()[i].stop),
                           city.effective_stop(route.stops()[i + 1].stop)};
      EXPECT_NE(catalog.adjacent(key), nullptr);
    }
  }
  // The route graph respects every route order.
  const RouteGraph graph(city);
  for (const BusRoute& route : city.routes()) {
    const auto& seq = graph.route_sequence(route.id());
    for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
      EXPECT_EQ(graph.relation(seq[i], seq[i + 1]), 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, CityInvariants,
    ::testing::Values(
        CityParams{7000, 4000, 7, {"79", "99", "241", "243", "252", "257", "182", "31"}},
        CityParams{7000, 4000, 99, {"79", "99", "243"}},
        CityParams{5000, 5000, 3, {"241", "252", "182"}},
        CityParams{4000, 2500, 11, {"79", "31"}},
        CityParams{9000, 6000, 21, {"99", "257", "182", "31"}}));

// ----------------------------------------------------- matching properties

class MatchingProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingProperties, TriangleOfBasicInvariants) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    Fingerprint a, b;
    const int na = rng.uniform_int(1, 7);
    const int nb = rng.uniform_int(1, 7);
    std::set<CellId> seen;
    for (int i = 0; i < na; ++i) a.cells.push_back(rng.uniform_int(1, 15));
    for (int i = 0; i < nb; ++i) b.cells.push_back(rng.uniform_int(1, 15));
    const double sab = similarity(a, b);
    // Symmetry, bounds, self-maximality.
    EXPECT_DOUBLE_EQ(sab, similarity(b, a));
    EXPECT_GE(sab, 0.0);
    EXPECT_LE(sab, max_similarity(a, b) + 1e-9);
    EXPECT_GE(similarity(a, a), sab - 1e-9);
    // Appending a fresh unmatched id never lowers the local-alignment score.
    Fingerprint a_ext = a;
    a_ext.cells.push_back(9999);
    EXPECT_GE(similarity(a_ext, b) + 1e-9, sab);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingProperties,
                         ::testing::Values(1, 2, 3, 4, 5));

// --------------------------------------------- indexed matcher equivalence

// The inverted-index candidate generation must be a pure optimisation:
// match() and match_all() results — stop, score, common-cell tie-break,
// below-γ rejections — are identical to the brute-force database scan for
// any database size and fingerprint content (including duplicate cell IDs,
// which make the shared-cell pruning bound conservative but still sound).
class IndexedMatcherEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexedMatcherEquivalence, MatchAndMatchAllIdenticalToBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const int n_records = rng.uniform_int(1, 60);
    // Small pools force collisions/duplicates; large pools force rejections.
    const int pool = rng.uniform_int(4, 10 + 4 * n_records);
    StopDatabase db;
    for (int r = 0; r < n_records; ++r) {
      Fingerprint fp;
      const int len = rng.uniform_int(1, 7);
      for (int k = 0; k < len; ++k) fp.cells.push_back(rng.uniform_int(1, pool));
      db.add(static_cast<StopId>(r + 1), std::move(fp));
    }
    StopMatcherConfig brute_cfg;
    brute_cfg.accel.use_index = false;
    const StopMatcher indexed(db);  // use_index defaults to true
    const StopMatcher brute(db, brute_cfg);
    for (int q = 0; q < 40; ++q) {
      Fingerprint sample;
      const int len = rng.uniform_int(0, 7);
      for (int k = 0; k < len; ++k)
        sample.cells.push_back(rng.uniform_int(1, pool));
      MatchStats stats;
      const auto a = indexed.match(sample, &stats);
      const auto b = brute.match(sample);
      ASSERT_EQ(a.has_value(), b.has_value()) << to_string(sample);
      if (a) {
        EXPECT_EQ(a->stop, b->stop);
        EXPECT_EQ(a->score, b->score);  // same DP kernel → bit-identical
        EXPECT_EQ(a->common_cells, b->common_cells);
      }
      EXPECT_LE(stats.records_accepted, stats.gamma_candidates);
      EXPECT_LE(stats.gamma_candidates, stats.records_considered);
      EXPECT_EQ(stats.records_pruned,
                stats.records_considered - stats.records_accepted);
      const auto all_a = indexed.match_all(sample);
      const auto all_b = brute.match_all(sample);
      ASSERT_EQ(all_a.size(), all_b.size());
      for (std::size_t i = 0; i < all_a.size(); ++i) {
        EXPECT_EQ(all_a[i].stop, all_b[i].stop);
        EXPECT_EQ(all_a[i].score, all_b[i].score);
        EXPECT_EQ(all_a[i].common_cells, all_b[i].common_cells);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedMatcherEquivalence,
                         ::testing::Values(11, 12, 13));

TEST(IndexedMatcher, ReplacedFingerprintIsReindexed) {
  StopDatabase db;
  db.add(1, Fingerprint{{1, 2, 3}});
  db.add(2, Fingerprint{{4, 5, 6}});
  db.add(1, Fingerprint{{7, 8, 9}});  // replaces stop 1's fingerprint
  const StopMatcher matcher(db);
  // Old posting entries must be gone: {1,2,3} now matches nothing.
  EXPECT_FALSE(matcher.match(Fingerprint{{1, 2, 3}}).has_value());
  const auto hit = matcher.match(Fingerprint{{7, 8, 9}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->stop, 1);
  EXPECT_DOUBLE_EQ(hit->score, 3.0);
}

TEST(IndexedMatcher, FullPipelineReportsIdenticalToBruteForce) {
  // End-to-end: on the default test world, the whole pipeline — matched
  // samples, rejections, mapped stops, speed estimates — is byte-identical
  // with and without the index.
  World world;
  Rng survey(2024);
  const StopDatabase db = build_stop_database(
      world.city(),
      [&](StopId stop, int run) {
        return world.scan_stop(stop, survey, run % 2 == 1);
      },
      3);
  ServerConfig brute_cfg;
  brute_cfg.matcher.accel.use_index = false;
  const TrafficServer indexed(world.city(), db);
  const TrafficServer brute(world.city(), db, brute_cfg);
  Rng rng(31);
  const auto day = world.simulate_day(0, 1.0, rng);
  ASSERT_GT(day.trips.size(), 20u);
  for (const AnnotatedTrip& trip : day.trips) {
    const auto a = indexed.analyze_trip(trip.upload);
    const auto b = brute.analyze_trip(trip.upload);
    EXPECT_EQ(a.rejected_samples, b.rejected_samples);
    ASSERT_EQ(a.matched.size(), b.matched.size());
    for (std::size_t i = 0; i < a.matched.size(); ++i) {
      EXPECT_EQ(a.matched[i].stop, b.matched[i].stop);
      EXPECT_EQ(a.matched[i].score, b.matched[i].score);
    }
    ASSERT_EQ(a.mapped.stops.size(), b.mapped.stops.size());
    for (std::size_t i = 0; i < a.mapped.stops.size(); ++i) {
      EXPECT_EQ(a.mapped.stops[i].stop, b.mapped.stops[i].stop);
    }
    ASSERT_EQ(a.estimates.size(), b.estimates.size());
    for (std::size_t i = 0; i < a.estimates.size(); ++i) {
      EXPECT_EQ(a.estimates[i].segment, b.estimates[i].segment);
      EXPECT_EQ(a.estimates[i].att_speed_kmh, b.estimates[i].att_speed_kmh);
      EXPECT_EQ(a.estimates[i].time, b.estimates[i].time);
    }
  }
}

TEST(IndexedMatcher, PruningSkipsHopelessCandidates) {
  // 1 shared cell cannot reach γ = 2, so the index must not even align it.
  StopDatabase db;
  db.add(1, Fingerprint{{10, 11, 12, 13}});
  db.add(2, Fingerprint{{20, 21, 22, 23}});
  const StopMatcher matcher(db);
  MatchStats stats;
  EXPECT_FALSE(matcher.match(Fingerprint{{10, 30, 31}}, &stats).has_value());
  EXPECT_EQ(stats.records_considered, 2u);
  EXPECT_EQ(stats.gamma_candidates, 0u);
  EXPECT_EQ(stats.records_accepted, 0u);
  EXPECT_EQ(stats.records_pruned, 2u);
}

// ------------------------------------------------------- goertzel vs fft

class SpectrumAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpectrumAgreement, ParsevalHoldsForAllSizes) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<float> x(n);
  for (float& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));
  double time_energy = 0.0;
  for (float v : x) time_energy += static_cast<double>(v) * v;
  const auto spec = fft_real(x);
  double freq_energy = 0.0;
  for (const auto& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(spec.size()), time_energy,
              1e-6 * time_energy + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpectrumAgreement,
                         ::testing::Values(2, 16, 64, 128, 256, 500, 1024));

// SNR sweep: the detector holds its ~98% hit rate down to modest beep
// amplitudes and never fires without a beep.
class BeepSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(BeepSnrSweep, DetectsAtAmplitude) {
  AudioEnvironmentConfig env;
  env.beep_amplitude = GetParam();
  Rng rng(static_cast<std::uint64_t>(GetParam() * 1000));
  int hits = 0;
  const int trials = 12;
  for (int i = 0; i < trials; ++i) {
    const auto audio = synthesize_bus_audio(env, 4.0, {2.0}, rng);
    BeepDetector detector;
    const auto events = detector.process(audio);
    hits += !events.empty() && std::abs(events.front().time - 2.0) < 0.1;
  }
  EXPECT_GE(hits, trials - 1);
}

INSTANTIATE_TEST_SUITE_P(Amplitudes, BeepSnrSweep,
                         ::testing::Values(0.15, 0.2, 0.3, 0.5));

// ------------------------------------------------------ radio propagation

class PathLossExponent : public ::testing::TestWithParam<double> {};

TEST_P(PathLossExponent, MeanSlopeMatchesModel) {
  PropagationConfig cfg;
  cfg.path_loss_exponent = GetParam();
  cfg.shadow_sigma_db = 0.0;  // isolate the deterministic slope
  std::vector<CellTower> towers{{1, {0.0, 0.0}, 38.5}};
  const RadioEnvironment env(towers, cfg, 1);
  const double r1 = env.mean_rss_dbm(env.towers()[0], {100.0, 0.0});
  const double r2 = env.mean_rss_dbm(env.towers()[0], {1000.0, 0.0});
  // One decade of distance costs 10*n dB.
  EXPECT_NEAR(r1 - r2, 10.0 * GetParam(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Exponents, PathLossExponent,
                         ::testing::Values(2.0, 2.7, 3.5, 4.0));

class ScannerCap : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScannerCap, NeverExceedsMaxTowers) {
  Rng rng(5);
  const BoundingBox region{{0.0, 0.0}, {3000.0, 3000.0}};
  const auto towers = deploy_towers(region, DeploymentConfig{}, rng);
  const RadioEnvironment env(towers, PropagationConfig{}, 2);
  ScannerConfig cfg;
  cfg.max_towers = GetParam();
  const CellScanner scanner(cfg);
  for (int i = 0; i < 20; ++i) {
    const Point p{rng.uniform(500.0, 2500.0), rng.uniform(500.0, 2500.0)};
    EXPECT_LE(scanner.scan_fingerprint(env, p, rng).size(), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, ScannerCap, ::testing::Values(1, 3, 5, 7, 10));

// ----------------------------------------------------- traffic field days

TEST(TrafficFieldProperties, ConsecutiveDaysDiffer) {
  const City city = generate_city();
  const TrafficField field(city.network(), TrafficFieldConfig{}, 5);
  // The noise periods do not divide a day, so day 0 and day 1 at the same
  // clock time are distinct while both stay within bounds.
  int distinct = 0;
  for (SegmentId link = 0; link < 50; ++link) {
    const double v0 = field.car_speed_kmh(link, at_clock(0, 9, 0));
    const double v1 = field.car_speed_kmh(link, at_clock(1, 9, 0));
    if (std::abs(v0 - v1) > 0.1) ++distinct;
  }
  EXPECT_GT(distinct, 30);
}

TEST(TrafficFieldProperties, HarmonicMeanBelowArithmetic) {
  const City city = generate_city();
  const TrafficField field(city.network(), TrafficFieldConfig{}, 6);
  const BusRoute& route = city.routes()[0];
  const SimTime t = at_clock(0, 8, 30);
  const auto parts = route.link_lengths_between(0.0, 3000.0);
  double arith = 0.0, len = 0.0;
  for (const auto& [link, l] : parts) {
    arith += field.car_speed_kmh(link, t) * l;
    len += l;
  }
  arith /= len;
  EXPECT_LE(field.mean_car_speed_kmh(route, 0.0, 3000.0, t), arith + 1e-9);
}

// ------------------------------------------------------------- bus physics

class BusKinematics : public ::testing::TestWithParam<int> {};

TEST_P(BusKinematics, SpeedRespectsLimitsEveryRun) {
  static const World world{};
  const BusRoute& route =
      world.city().routes()[static_cast<std::size_t>(GetParam())];
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
  const BusRun run = world.buses().simulate_run(
      route, at_clock(0, 8, 0), {{1, 2}}, {}, 600.0, rng,
      /*record_trajectory=*/true);
  const double vmax = kmh_to_ms(world.buses().config().max_speed_kmh);
  for (std::size_t i = 1; i < run.trajectory.size(); ++i) {
    const double dt = run.trajectory[i].time - run.trajectory[i - 1].time;
    if (dt <= 0.0) continue;
    const double v = (run.trajectory[i].arc - run.trajectory[i - 1].arc) / dt;
    EXPECT_LE(v, vmax + 0.5);
    EXPECT_GE(v, -1e-9);
  }
  // Arrival/departure bookkeeping is monotone across the whole run.
  SimTime prev = run.depart_time;
  for (const StopVisit& v : run.visits) {
    EXPECT_GE(v.arrival, prev - 1e-9);
    EXPECT_GE(v.departure, v.arrival);
    prev = v.departure;
  }
}

INSTANTIATE_TEST_SUITE_P(Routes, BusKinematics,
                         ::testing::Values(0, 2, 5, 8, 11, 14));

// -------------------------------------------------------------- estimator

TEST(TravelModelProperties, AttMonotoneInBtt) {
  const City city = generate_city();
  const SegmentCatalog catalog(city);
  const TravelEstimator est(catalog);
  double prev = 0.0;
  for (double btt = 10.0; btt < 400.0; btt += 10.0) {
    const double att = est.att_seconds(btt, 400.0, 50.0);
    EXPECT_GE(att, prev);
    prev = att;
  }
}

TEST(TravelModelProperties, SpeedLevelsPartitionTheLine) {
  // Every speed belongs to exactly one of the five display levels and the
  // mapping is monotone.
  SpeedLevel prev = classify_speed(0.0);
  for (double v = 0.0; v < 90.0; v += 0.5) {
    const SpeedLevel level = classify_speed(v);
    EXPECT_GE(static_cast<int>(level), static_cast<int>(prev));
    prev = level;
  }
  EXPECT_EQ(prev, SpeedLevel::kVeryFast);
}

// ------------------------------------------------------------- world scale

class WorldScales : public ::testing::TestWithParam<int> {};

TEST_P(WorldScales, DayPipelineConsistentAtAnyParticipation) {
  static const World world{};
  static StopDatabase db = [] {
    Rng survey(2024);
    return build_stop_database(
        world.city(),
        [&](StopId s, int run) { return world.scan_stop(s, survey, run % 2); },
        3);
  }();
  WorldConfig cfg = world.config();
  cfg.participant_count = GetParam();
  const World scaled(cfg);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto day = scaled.simulate_day(0, 1.0, rng);
  TrafficServer server(scaled.city(), db);
  int estimates = 0;
  for (const AnnotatedTrip& trip : day.trips) {
    const auto report = server.process_trip(trip.upload);
    estimates += static_cast<int>(report.estimates.size());
    // Every estimate's speed is physical.
    for (const SpeedEstimate& e : report.estimates) {
      EXPECT_GT(e.att_speed_kmh, 0.0);
      EXPECT_LT(e.att_speed_kmh, 80.0);
      EXPECT_GT(e.btt_s, 0.0);
    }
  }
  if (GetParam() > 0) {
    EXPECT_GT(estimates, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Participants, WorldScales,
                         ::testing::Values(1, 5, 22));

}  // namespace
}  // namespace bussense
