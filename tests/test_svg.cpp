// Tests for the SVG traffic-map renderer.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "citynet/city_generator.h"
#include "core/svg_map.h"

namespace bussense {
namespace {

struct Fixture {
  City city = generate_city();
  SegmentCatalog catalog{city};

  TrafficMap map_with(double speed_kmh, int segments) const {
    SpeedFusion fusion;
    for (int i = 0; i < segments; ++i) {
      SpeedEstimate e;
      e.segment = catalog.adjacent_keys()[static_cast<std::size_t>(i)];
      e.att_speed_kmh = speed_kmh;
      e.time = 10.0;
      fusion.add(e);
    }
    fusion.flush_until(1e6);
    return TrafficMap::snapshot(fusion, catalog, 400.0, 1e9);
  }
};

TEST(SvgMap, ProducesWellFormedDocument) {
  const Fixture f;
  std::ostringstream os;
  write_svg_map(f.map_with(35.0, 5), f.catalog, os);
  const std::string svg = os.str();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Road base layer + stops + 5 coloured segments.
  EXPECT_GT(std::count(svg.begin(), svg.end(), '\n'), 200);
  EXPECT_NE(svg.find("#cccccc"), std::string::npos);   // roads
  EXPECT_NE(svg.find("<circle"), std::string::npos);   // stops
  EXPECT_NE(svg.find(speed_level_color(SpeedLevel::kMedium)),
            std::string::npos);
}

TEST(SvgMap, ColorsFollowSpeedLevels) {
  const Fixture f;
  std::ostringstream slow, fast;
  write_svg_map(f.map_with(12.0, 3), f.catalog, slow);
  write_svg_map(f.map_with(58.0, 3), f.catalog, fast);
  EXPECT_NE(slow.str().find(speed_level_color(SpeedLevel::kVerySlow)),
            std::string::npos);
  EXPECT_EQ(slow.str().find(speed_level_color(SpeedLevel::kVeryFast)),
            std::string::npos);
  EXPECT_NE(fast.str().find(speed_level_color(SpeedLevel::kVeryFast)),
            std::string::npos);
}

TEST(SvgMap, AllLevelColorsDistinct) {
  std::set<std::string> colors;
  for (SpeedLevel level :
       {SpeedLevel::kVerySlow, SpeedLevel::kSlow, SpeedLevel::kMedium,
        SpeedLevel::kFast, SpeedLevel::kVeryFast}) {
    colors.insert(speed_level_color(level));
  }
  EXPECT_EQ(colors.size(), 5u);
}

TEST(SvgMap, OptionsControlLayers) {
  const Fixture f;
  SvgMapOptions no_stops;
  no_stops.draw_stops = false;
  std::ostringstream os;
  write_svg_map(f.map_with(35.0, 2), f.catalog, os, no_stops);
  EXPECT_EQ(os.str().find("<circle"), std::string::npos);
}

TEST(SvgMap, FileOverloadWritesAndThrows) {
  const Fixture f;
  const std::string path = ::testing::TempDir() + "/bussense_map.svg";
  write_svg_map(f.map_with(35.0, 2), f.catalog, path);
  std::ifstream is(path);
  EXPECT_TRUE(is.good());
  EXPECT_THROW(
      write_svg_map(f.map_with(35.0, 2), f.catalog, "/nonexistent-dir/x.svg"),
      std::runtime_error);
}

}  // namespace
}  // namespace bussense
