// Unit tests for the DSP stack: Goertzel, FFT, sliding window, beep
// detection on synthesised bus audio.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/rng.h"
#include "dsp/audio_synth.h"
#include "dsp/beep_detector.h"
#include "dsp/fft.h"
#include "dsp/goertzel.h"
#include "dsp/sliding_window.h"

namespace bussense {
namespace {

std::vector<float> make_tone(double freq, double fs, std::size_t n,
                             double amp = 1.0) {
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(
        amp * std::sin(2.0 * std::numbers::pi * freq * i / fs));
  }
  return out;
}

// ---------------------------------------------------------------- goertzel

TEST(Goertzel, DetectsItsOwnBin) {
  const auto tone = make_tone(1000.0, 8000.0, 256);
  const double on = goertzel_power(tone, 8000.0, 1000.0);
  const double off = goertzel_power(tone, 8000.0, 3000.0);
  EXPECT_GT(on, 50.0 * off);
}

TEST(Goertzel, PowerScalesWithAmplitudeSquared) {
  const auto a1 = make_tone(1000.0, 8000.0, 256, 1.0);
  const auto a2 = make_tone(1000.0, 8000.0, 256, 2.0);
  const double p1 = goertzel_power(a1, 8000.0, 1000.0);
  const double p2 = goertzel_power(a2, 8000.0, 1000.0);
  EXPECT_NEAR(p2 / p1, 4.0, 0.01);
}

TEST(Goertzel, RejectsBadArguments) {
  const auto tone = make_tone(1000.0, 8000.0, 64);
  EXPECT_THROW(goertzel_power({}, 8000.0, 1000.0), std::invalid_argument);
  EXPECT_THROW(goertzel_power(tone, 8000.0, 0.0), std::invalid_argument);
  EXPECT_THROW(goertzel_power(tone, 8000.0, 4000.0), std::invalid_argument);
  EXPECT_THROW(goertzel_power(tone, 8000.0, 4500.0), std::invalid_argument);
}

TEST(Goertzel, MultiFrequencyMatchesSingle) {
  const auto tone = make_tone(1000.0, 8000.0, 256);
  const std::vector<double> freqs{500.0, 1000.0, 3000.0};
  const auto powers = goertzel_powers(tone, 8000.0, freqs);
  ASSERT_EQ(powers.size(), 3u);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_DOUBLE_EQ(powers[i], goertzel_power(tone, 8000.0, freqs[i]));
  }
}

TEST(GoertzelFilter, StreamingMatchesBatch) {
  const auto tone = make_tone(1234.0, 8000.0, 200);
  GoertzelFilter filter(8000.0, 1234.0);
  for (float s : tone) filter.push(s);
  EXPECT_NEAR(filter.power(), goertzel_power(tone, 8000.0, 1234.0), 1e-9);
  EXPECT_EQ(filter.samples_seen(), 200u);
}

TEST(GoertzelFilter, ResetClearsState) {
  GoertzelFilter filter(8000.0, 1000.0);
  for (float s : make_tone(1000.0, 8000.0, 100)) filter.push(s);
  filter.reset();
  EXPECT_EQ(filter.samples_seen(), 0u);
  EXPECT_DOUBLE_EQ(filter.power(), 0.0);
}

TEST(Goertzel, OpCountModel) {
  EXPECT_EQ(goertzel_op_count(240, 2), 480u);
  EXPECT_EQ(goertzel_op_count(0, 5), 0u);
}

// --------------------------------------------------------------------- fft

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(240), 256u);
  EXPECT_EQ(next_pow2(256), 256u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  EXPECT_THROW(fft_inplace(data), std::invalid_argument);
  std::vector<std::complex<double>> one(1);
  EXPECT_THROW(fft_inplace(one), std::invalid_argument);
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<std::complex<double>> data(8, 0.0);
  data[0] = 1.0;
  fft_inplace(data);
  for (const auto& c : data) EXPECT_NEAR(std::abs(c), 1.0, 1e-12);
}

TEST(Fft, ToneConcentratesInItsBin) {
  // 1 kHz at fs 8 kHz with a 256-point FFT: exactly bin 32.
  const auto tone = make_tone(1000.0, 8000.0, 256);
  const auto power = power_spectrum(tone);
  std::size_t argmax = 0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    if (power[k] > power[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 32u);
}

TEST(Fft, ParsevalHolds) {
  Rng rng(11);
  std::vector<float> x(256);
  for (float& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));
  double time_energy = 0.0;
  for (float v : x) time_energy += static_cast<double>(v) * v;
  const auto spec = fft_real(x);
  double freq_energy = 0.0;
  for (const auto& c : spec) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / spec.size(), time_energy, 1e-6);
}

TEST(Fft, OpCountGrowsNLogN) {
  EXPECT_EQ(fft_op_count(256), 1024u);  // 128 * 8
  EXPECT_EQ(fft_op_count(240), 1024u);  // padded to 256
  EXPECT_EQ(fft_op_count(1024), 5120u);
}

// Cross-validation: Goertzel and FFT agree on tone powers across frequencies
// that fall exactly on FFT bins (fs = 8 kHz, N = 256 -> 31.25 Hz bins).
class GoertzelVsFft : public ::testing::TestWithParam<double> {};

TEST_P(GoertzelVsFft, AgreeOnBinPower) {
  const double freq = GetParam();
  const auto tone = make_tone(freq, 8000.0, 256, 0.7);
  const double g = goertzel_power(tone, 8000.0, freq);
  const double f = fft_bin_power(tone, 8000.0, freq);
  EXPECT_NEAR(g, f, 0.02 * std::max(g, f) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(OnBinFrequencies, GoertzelVsFft,
                         ::testing::Values(250.0, 500.0, 1000.0, 1500.0,
                                           2000.0, 2400.0 - 2400.0 + 2500.0,
                                           3000.0, 3500.0));

// ------------------------------------------------------------------ window

TEST(SlidingWindow, MeanOverWindow) {
  SlidingWindow w(3);
  w.push(1.0);
  w.push(2.0);
  w.push(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.push(7.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
  EXPECT_TRUE(w.full());
}

TEST(SlidingWindow, StddevMatchesDefinition) {
  SlidingWindow w(4);
  for (double x : {2.0, 4.0, 6.0, 8.0}) w.push(x);
  EXPECT_NEAR(w.stddev(), std::sqrt(20.0 / 3.0), 1e-12);
}

TEST(SlidingWindow, ClearResets) {
  SlidingWindow w(2);
  w.push(5.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

// ----------------------------------------------------------- beep detector

AudioEnvironmentConfig quiet_bus() {
  AudioEnvironmentConfig cfg;
  return cfg;
}

TEST(BeepDetector, DetectsSingleBeep) {
  Rng rng(21);
  const auto audio = synthesize_bus_audio(quiet_bus(), 10.0, {5.0}, rng);
  BeepDetector detector;
  const auto events = detector.process(audio);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].time, 5.0, 0.08);
}

TEST(BeepDetector, NoFalsePositivesInPlainNoise) {
  Rng rng(22);
  const auto audio = synthesize_bus_audio(quiet_bus(), 20.0, {}, rng);
  BeepDetector detector;
  EXPECT_TRUE(detector.process(audio).empty());
}

TEST(BeepDetector, DetectsBeepTrainWithCorrectCount) {
  Rng rng(23);
  const std::vector<SimTime> beeps{2.0, 3.2, 4.4, 8.0, 9.1};
  const auto audio = synthesize_bus_audio(quiet_bus(), 12.0, beeps, rng);
  BeepDetector detector;
  const auto events = detector.process(audio);
  ASSERT_EQ(events.size(), beeps.size());
  for (std::size_t i = 0; i < beeps.size(); ++i) {
    EXPECT_NEAR(events[i].time, beeps[i], 0.08);
  }
}

TEST(BeepDetector, RefractoryCollapsesOnePhysicalBeep) {
  // One long beep (two overlapping bursts 50 ms apart) must yield one event.
  Rng rng(24);
  const auto audio = synthesize_bus_audio(quiet_bus(), 6.0, {3.0, 3.05}, rng);
  BeepDetector detector;
  EXPECT_EQ(detector.process(audio).size(), 1u);
}

TEST(BeepDetector, ChunkedProcessingMatchesWholeClip) {
  Rng rng1(25), rng2(25);
  const auto audio1 = synthesize_bus_audio(quiet_bus(), 10.0, {4.0, 7.0}, rng1);
  const auto audio2 = synthesize_bus_audio(quiet_bus(), 10.0, {4.0, 7.0}, rng2);
  BeepDetector whole, chunked;
  const auto events_whole = whole.process(audio1);
  std::vector<BeepEvent> events_chunked;
  const std::size_t chunk = 333;
  for (std::size_t i = 0; i < audio2.size(); i += chunk) {
    const std::size_t n = std::min(chunk, audio2.size() - i);
    const auto ev = chunked.process(
        std::span<const float>(audio2.data() + i, n));
    events_chunked.insert(events_chunked.end(), ev.begin(), ev.end());
  }
  ASSERT_EQ(events_whole.size(), events_chunked.size());
  for (std::size_t i = 0; i < events_whole.size(); ++i) {
    EXPECT_DOUBLE_EQ(events_whole[i].time, events_chunked[i].time);
  }
}

TEST(BeepDetector, OriginShiftsEventTimes) {
  Rng rng(26);
  const auto audio = synthesize_bus_audio(quiet_bus(), 6.0, {2.0}, rng);
  BeepDetector detector;
  detector.set_origin(100.0);
  const auto events = detector.process(audio);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].time, 102.0, 0.08);
}

TEST(BeepDetector, LondonSingleToneConfigWorks) {
  // Oyster readers: single 2.4 kHz tone.
  AudioEnvironmentConfig env = quiet_bus();
  env.tone_frequencies_hz = {2400.0};
  BeepDetectorConfig det;
  det.tone_frequencies_hz = {2400.0};
  Rng rng(27);
  const auto audio = synthesize_bus_audio(env, 8.0, {4.0}, rng);
  BeepDetector detector(det);
  const auto events = detector.process(audio);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].time, 4.0, 0.08);
}

TEST(BeepDetector, SingaporeDetectorIgnoresLondonBeep) {
  // A 2.4 kHz-only beep must not trigger the dual 1k+3k detector: both
  // monitored bands have to jump.
  AudioEnvironmentConfig env = quiet_bus();
  env.tone_frequencies_hz = {2400.0};
  Rng rng(28);
  const auto audio = synthesize_bus_audio(env, 8.0, {4.0}, rng);
  BeepDetector detector;  // default 1 kHz + 3 kHz
  EXPECT_TRUE(detector.process(audio).empty());
}

TEST(BeepDetector, DetectsInLoudCabin) {
  AudioEnvironmentConfig env = quiet_bus();
  env.white_noise_rms = 0.04;
  env.engine_rumble_amplitude = 0.15;
  env.babble_amplitude = 0.05;
  Rng rng(29);
  const auto audio = synthesize_bus_audio(env, 10.0, {5.0}, rng);
  BeepDetector detector;
  const auto events = detector.process(audio);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NEAR(events[0].time, 5.0, 0.08);
}

TEST(BeepDetector, RejectsBadConfig) {
  BeepDetectorConfig cfg;
  cfg.tone_frequencies_hz.clear();
  EXPECT_THROW(BeepDetector{cfg}, std::invalid_argument);
  BeepDetectorConfig cfg2;
  cfg2.frame_seconds = 0.0;
  EXPECT_THROW(BeepDetector{cfg2}, std::invalid_argument);
}

// Detection-rate calibration backing the event-level beep channel: the
// world model assumes ~98% per-tap detection; verify the audio path clears
// that bar under nominal cabin noise.
TEST(BeepDetector, DetectionRateSupportsEventLevelCalibration) {
  Rng rng(30);
  int detected = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    const auto audio = synthesize_bus_audio(quiet_bus(), 4.0, {2.0}, rng);
    BeepDetector detector;
    detected += detector.process(audio).empty() ? 0 : 1;
  }
  EXPECT_GE(detected, static_cast<int>(trials * 0.95));
}

// ------------------------------------------------------------- audio synth

TEST(AudioSynth, LengthMatchesDuration) {
  Rng rng(31);
  const auto audio = synthesize_bus_audio(quiet_bus(), 2.5, {}, rng);
  EXPECT_EQ(audio.size(), 20000u);
}

TEST(AudioSynth, RejectsNonPositiveDuration) {
  Rng rng(32);
  EXPECT_THROW(synthesize_bus_audio(quiet_bus(), 0.0, {}, rng),
               std::invalid_argument);
}

TEST(AudioSynth, BeepRaisesTonePower) {
  Rng rng(33);
  const auto cfg = quiet_bus();
  const auto audio = synthesize_bus_audio(cfg, 4.0, {2.0}, rng);
  const auto fs = cfg.sample_rate_hz;
  const std::span<const float> during(audio.data() + static_cast<int>(2.02 * fs),
                                      400);
  const std::span<const float> before(audio.data() + static_cast<int>(1.0 * fs),
                                      400);
  EXPECT_GT(goertzel_power(during, fs, 1000.0),
            10.0 * goertzel_power(before, fs, 1000.0));
  EXPECT_GT(goertzel_power(during, fs, 3000.0),
            10.0 * goertzel_power(before, fs, 3000.0));
}

TEST(AudioSynth, BeepsOutsideClipIgnored) {
  Rng rng(34);
  const auto audio = synthesize_bus_audio(quiet_bus(), 2.0, {-1.0, 5.0}, rng);
  BeepDetector detector;
  EXPECT_TRUE(detector.process(audio).empty());
}

TEST(AudioSynth, DeterministicGivenSeed) {
  Rng rng1(35), rng2(35);
  const auto a = synthesize_bus_audio(quiet_bus(), 1.0, {0.5}, rng1);
  const auto b = synthesize_bus_audio(quiet_bus(), 1.0, {0.5}, rng2);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bussense
