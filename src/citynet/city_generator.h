// Synthetic city generator (substitute for the Jurong West testbed).
//
// Generates a width x height region with a grid street plan, eight public
// bus routes named after the paper's (79, 99, 241, 243, 252, 257, 182 and
// the partial 31), each in two directed variants, and bus stops every
// ~350-450 m with opposite-side twins on two-way roads. Two designated
// "commuter corridor" streets in the middle of the region model the paper's
// university<->station shuttle roads that congest every morning.
//
// Everything is deterministic given the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "citynet/city.h"

namespace bussense {

struct CityConfig {
  double width_m = 7000.0;   ///< paper region: 7 km x 4 km (25 km^2 quoted)
  double height_m = 4000.0;
  double grid_spacing_m = 500.0;
  double stop_spacing_m = 400.0;        ///< mean inter-stop distance
  double stop_spacing_jitter_m = 50.0;  ///< uniform jitter on spacing
  double stop_side_offset_m = 8.0;      ///< stop offset from road centreline
  double stop_merge_radius_m = 150.0;   ///< reuse radius for shared stops
  std::uint64_t seed = 7;
  /// Public route names; templates exist for up to eight routes.
  std::vector<std::string> route_names = {"79",  "99",  "241", "243",
                                          "252", "257", "182", "31"};
};

City generate_city(const CityConfig& config = {});

}  // namespace bussense
