#include "citynet/bus_route.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bussense {

namespace {
constexpr double kArcEps = 1e-6;
}

BusRoute::BusRoute(RouteId id, std::string name, int direction, Polyline path,
                   std::vector<RouteStop> stops, std::vector<LinkSpan> link_spans)
    : id_(id),
      name_(std::move(name)),
      direction_(direction),
      path_(std::move(path)),
      stops_(std::move(stops)),
      link_spans_(std::move(link_spans)) {
  if (stops_.size() < 2) {
    throw std::invalid_argument("BusRoute needs at least two stops");
  }
  for (std::size_t i = 0; i < stops_.size(); ++i) {
    if (stops_[i].arc_pos < -kArcEps ||
        stops_[i].arc_pos > path_.length() + kArcEps) {
      throw std::invalid_argument("BusRoute: stop arc outside path");
    }
    if (i > 0 && stops_[i].arc_pos <= stops_[i - 1].arc_pos) {
      throw std::invalid_argument("BusRoute: stop arcs must strictly increase");
    }
  }
  if (link_spans_.empty()) {
    throw std::invalid_argument("BusRoute: no link spans");
  }
  double expected = 0.0;
  for (const LinkSpan& span : link_spans_) {
    if (std::abs(span.arc_begin - expected) > 1e-3 ||
        span.arc_end <= span.arc_begin) {
      throw std::invalid_argument("BusRoute: link spans must tile the path");
    }
    expected = span.arc_end;
  }
  if (std::abs(expected - path_.length()) > 1e-3) {
    throw std::invalid_argument("BusRoute: link spans do not cover the path");
  }
}

std::optional<int> BusRoute::stop_index(StopId stop) const {
  for (std::size_t i = 0; i < stops_.size(); ++i) {
    if (stops_[i].stop == stop) return static_cast<int>(i);
  }
  return std::nullopt;
}

double BusRoute::stop_arc(int index) const {
  return stops_.at(static_cast<std::size_t>(index)).arc_pos;
}

double BusRoute::distance_between_stops(int i, int j) const {
  if (j <= i) throw std::invalid_argument("distance_between_stops: j must be > i");
  return stop_arc(j) - stop_arc(i);
}

SegmentId BusRoute::link_at(double arc) const {
  const double a = std::clamp(arc, 0.0, length());
  // Spans are sorted by arc_begin; find the first with arc_end >= a.
  auto it = std::lower_bound(
      link_spans_.begin(), link_spans_.end(), a,
      [](const LinkSpan& span, double value) { return span.arc_end < value; });
  if (it == link_spans_.end()) --it;
  return it->link;
}

std::vector<std::pair<SegmentId, double>> BusRoute::link_lengths_between(
    double arc_a, double arc_b) const {
  if (arc_a > arc_b) {
    throw std::invalid_argument("link_lengths_between: arc_a > arc_b");
  }
  const double a = std::clamp(arc_a, 0.0, length());
  const double b = std::clamp(arc_b, 0.0, length());
  std::vector<std::pair<SegmentId, double>> parts;
  for (const LinkSpan& span : link_spans_) {
    const double lo = std::max(a, span.arc_begin);
    const double hi = std::min(b, span.arc_end);
    if (hi > lo + kArcEps) parts.emplace_back(span.link, hi - lo);
  }
  return parts;
}

}  // namespace bussense
