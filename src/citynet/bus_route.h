// Directed bus route: a path through the road network with ordered stops.
//
// Each public route name (e.g. "79") has two directed variants, one per
// travel direction; the reverse variant serves the opposite-side twin stops.
// The route also records which road links it traverses and where, so that
// ground-truth traffic and coverage statistics can be projected between the
// "inter-stop segment" unit used by the estimator and the link unit used by
// the traffic field.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "citynet/types.h"
#include "common/geo.h"

namespace bussense {

/// A stop visit position along the route path.
struct RouteStop {
  StopId stop = kInvalidStop;
  double arc_pos = 0.0;  ///< arc length along the route path, metres
};

/// The portion of the route path lying on one road link.
struct LinkSpan {
  SegmentId link = kInvalidSegment;
  double arc_begin = 0.0;
  double arc_end = 0.0;
};

class BusRoute {
 public:
  /// Invariants checked: stops strictly increasing in arc_pos within
  /// [0, path.length()]; link spans contiguous from 0 to path.length().
  BusRoute(RouteId id, std::string name, int direction, Polyline path,
           std::vector<RouteStop> stops, std::vector<LinkSpan> link_spans);

  RouteId id() const { return id_; }
  const std::string& name() const { return name_; }
  /// 0 = forward, 1 = reverse service of the same public route.
  int direction() const { return direction_; }
  const Polyline& path() const { return path_; }
  const std::vector<RouteStop>& stops() const { return stops_; }
  const std::vector<LinkSpan>& link_spans() const { return link_spans_; }
  double length() const { return path_.length(); }
  std::size_t stop_count() const { return stops_.size(); }

  /// Index of `stop` in this route's stop sequence, if served.
  std::optional<int> stop_index(StopId stop) const;

  /// Arc position of the i-th stop. Precondition: valid index.
  double stop_arc(int index) const;

  /// Road distance between the i-th and j-th stops (j > i).
  double distance_between_stops(int i, int j) const;

  /// Link id under arc position `arc` (clamped to the path).
  SegmentId link_at(double arc) const;

  /// (link, metres-on-link) decomposition of the span [arc_a, arc_b].
  /// Precondition: arc_a <= arc_b.
  std::vector<std::pair<SegmentId, double>> link_lengths_between(
      double arc_a, double arc_b) const;

 private:
  RouteId id_;
  std::string name_;
  int direction_;
  Polyline path_;
  std::vector<RouteStop> stops_;
  std::vector<LinkSpan> link_spans_;
};

}  // namespace bussense
