// Road network: links between adjacent intersections of the simulated city.
//
// A "link" is the unit at which ground-truth traffic is defined and at which
// map coverage is reported. The paper's estimation unit — the stretch
// between two adjacent bus stops — maps onto one or more (possibly partial)
// links via BusRoute::link_lengths_between.
#pragma once

#include <vector>

#include "citynet/types.h"
#include "common/geo.h"

namespace bussense {

enum class RoadClass {
  kMajorArterial,  ///< high free speed, strong peak congestion
  kArterial,
  kLocal,
};

struct RoadLink {
  SegmentId id = kInvalidSegment;
  Polyline path;
  RoadClass road_class = RoadClass::kArterial;
  double free_speed_kmh = 50.0;
  /// True for the paper's "two main roads in the middle" with routine
  /// university<->station commuter shuttles and deep morning congestion.
  bool commuter_corridor = false;

  double length() const { return path.length(); }
};

class RoadNetwork {
 public:
  explicit RoadNetwork(std::vector<RoadLink> links);

  /// Precondition: `id` was returned by this network.
  const RoadLink& link(SegmentId id) const { return links_.at(static_cast<std::size_t>(id)); }
  const std::vector<RoadLink>& links() const { return links_; }
  std::size_t size() const { return links_.size(); }

  /// Sum of all link lengths, metres.
  double total_length() const { return total_length_; }

 private:
  std::vector<RoadLink> links_;
  double total_length_ = 0.0;
};

}  // namespace bussense
