// The complete city model: region, road network, stops, directed routes.
#pragma once

#include <string>
#include <vector>

#include "citynet/bus_route.h"
#include "citynet/bus_stop.h"
#include "citynet/road_network.h"
#include "citynet/types.h"

namespace bussense {

class City {
 public:
  City(BoundingBox region, RoadNetwork network, std::vector<BusStop> stops,
       std::vector<BusRoute> routes);

  const BoundingBox& region() const { return region_; }
  const RoadNetwork& network() const { return network_; }
  const std::vector<BusStop>& stops() const { return stops_; }
  const std::vector<BusRoute>& routes() const { return routes_; }

  const BusStop& stop(StopId id) const {
    return stops_.at(static_cast<std::size_t>(id));
  }
  const BusRoute& route(RouteId id) const {
    return routes_.at(static_cast<std::size_t>(id));
  }

  /// Directed route variant by public name, or nullptr.
  const BusRoute* route_by_name(const std::string& name, int direction) const;

  /// Canonical id for location purposes: opposite-side twins collapse to the
  /// smaller id of the pair (the paper's "effective" stop treatment).
  StopId effective_stop(StopId id) const;

  /// Total length of links traversed by at least one route, metres.
  double covered_length() const;

  /// Fraction of road length covered by at least one route.
  double coverage_ratio() const;

  /// Link ids traversed by at least `min_routes` distinct public route names.
  std::vector<SegmentId> links_covered_by_at_least(int min_routes) const;

 private:
  BoundingBox region_;
  RoadNetwork network_;
  std::vector<BusStop> stops_;
  std::vector<BusRoute> routes_;
};

}  // namespace bussense
