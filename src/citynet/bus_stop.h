// Physical bus stop.
#pragma once

#include <optional>
#include <string>

#include "citynet/types.h"
#include "common/geo.h"

namespace bussense {

struct BusStop {
  StopId id = kInvalidStop;
  std::string name;
  Point position;
  /// Unit direction of travel this stop serves (stops are kerb-side and
  /// directional; the twin on the other side serves the opposite heading).
  Point heading{1.0, 0.0};
  /// The twin stop on the opposite side of a two-way road, if any. Twins are
  /// ~15 m apart, have near-identical cellular fingerprints, and are merged
  /// into one "effective" stop for location-reference purposes (paper
  /// Section III-A, Figure 2(c) "effective CDF").
  std::optional<StopId> opposite;
};

}  // namespace bussense
