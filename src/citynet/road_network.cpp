#include "citynet/road_network.h"

#include <stdexcept>

namespace bussense {

RoadNetwork::RoadNetwork(std::vector<RoadLink> links) : links_(std::move(links)) {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].id != static_cast<SegmentId>(i)) {
      throw std::invalid_argument("RoadNetwork: link ids must be dense 0..n-1");
    }
    total_length_ += links_[i].length();
  }
}

}  // namespace bussense
