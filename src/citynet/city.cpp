#include "citynet/city.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace bussense {

City::City(BoundingBox region, RoadNetwork network, std::vector<BusStop> stops,
           std::vector<BusRoute> routes)
    : region_(region),
      network_(std::move(network)),
      stops_(std::move(stops)),
      routes_(std::move(routes)) {
  for (std::size_t i = 0; i < stops_.size(); ++i) {
    if (stops_[i].id != static_cast<StopId>(i)) {
      throw std::invalid_argument("City: stop ids must be dense 0..n-1");
    }
  }
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    if (routes_[i].id() != static_cast<RouteId>(i)) {
      throw std::invalid_argument("City: route ids must be dense 0..n-1");
    }
  }
}

const BusRoute* City::route_by_name(const std::string& name,
                                    int direction) const {
  for (const BusRoute& r : routes_) {
    if (r.name() == name && r.direction() == direction) return &r;
  }
  return nullptr;
}

StopId City::effective_stop(StopId id) const {
  const BusStop& s = stop(id);
  if (s.opposite.has_value()) return std::min(id, *s.opposite);
  return id;
}

double City::covered_length() const {
  std::set<SegmentId> covered;
  for (const BusRoute& r : routes_) {
    for (const LinkSpan& span : r.link_spans()) covered.insert(span.link);
  }
  double length = 0.0;
  for (SegmentId id : covered) length += network_.link(id).length();
  return length;
}

double City::coverage_ratio() const {
  return network_.total_length() > 0.0 ? covered_length() / network_.total_length()
                                       : 0.0;
}

std::vector<SegmentId> City::links_covered_by_at_least(int min_routes) const {
  // Count distinct public names per link (both directions of one name count once).
  std::vector<std::set<std::string>> names(network_.size());
  for (const BusRoute& r : routes_) {
    for (const LinkSpan& span : r.link_spans()) {
      names[static_cast<std::size_t>(span.link)].insert(r.name());
    }
  }
  std::vector<SegmentId> out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (static_cast<int>(names[i].size()) >= min_routes) {
      out.push_back(static_cast<SegmentId>(i));
    }
  }
  return out;
}

}  // namespace bussense
