// Identifier types for the city model.
#pragma once

#include <cstdint>

namespace bussense {

using SegmentId = std::int32_t;  ///< road link (between adjacent intersections)
using StopId = std::int32_t;     ///< physical bus stop (one side of the road)
using RouteId = std::int32_t;    ///< directed bus route variant

constexpr SegmentId kInvalidSegment = -1;
constexpr StopId kInvalidStop = -1;
constexpr RouteId kInvalidRoute = -1;

}  // namespace bussense
