#include "citynet/city_generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/rng.h"

namespace bussense {

namespace {

/// Grid coordinates of an intersection.
struct GridPoint {
  int i = 0;  ///< column
  int j = 0;  ///< row
};

/// Fractional route waypoint templates; snapped to the nearest intersection.
/// Consecutive waypoints must share a row or a column after snapping.
struct RouteTemplate {
  std::string name;
  std::vector<std::pair<double, double>> waypoints;  ///< (fx, fy) in [0,1]
};

const std::vector<RouteTemplate>& route_templates() {
  static const std::vector<RouteTemplate> kTemplates = {
      {"79", {{0.0, 0.125}, {0.43, 0.125}, {0.43, 0.5}, {0.71, 0.5}, {0.71, 0.875}, {1.0, 0.875}}},
      {"99", {{0.0, 0.875}, {0.29, 0.875}, {0.29, 0.375}, {0.64, 0.375}, {0.64, 0.0}, {1.0, 0.0}}},
      {"241", {{0.07, 0.0}, {0.07, 1.0}, {0.21, 1.0}, {0.21, 0.0}}},
      {"243", {{0.36, 0.0}, {0.36, 1.0}, {0.5, 1.0}, {0.5, 0.0}}},
      {"252", {{0.64, 0.125}, {0.64, 1.0}, {0.79, 1.0}, {0.79, 0.125}}},
      {"257", {{0.93, 0.0}, {0.93, 1.0}, {1.0, 1.0}, {1.0, 0.125}}},
      {"182", {{0.0, 0.625}, {0.57, 0.625}, {0.57, 0.75}, {1.0, 0.75}}},
      {"31", {{0.0, 0.375}, {0.71, 0.375}}},
  };
  return kTemplates;
}

class GeneratorState {
 public:
  explicit GeneratorState(const CityConfig& config)
      : config_(config),
        cols_(static_cast<int>(std::lround(config.width_m / config.grid_spacing_m)) + 1),
        rows_(static_cast<int>(std::lround(config.height_m / config.grid_spacing_m)) + 1),
        rng_(config.seed) {
    if (cols_ < 3 || rows_ < 3) {
      throw std::invalid_argument("generate_city: region too small for the grid");
    }
    build_links();
  }

  City build() {
    std::vector<BusRoute> routes;
    RouteId next_route = 0;
    const auto& templates = route_templates();
    for (const std::string& name : config_.route_names) {
      const auto it =
          std::find_if(templates.begin(), templates.end(),
                       [&](const RouteTemplate& t) { return t.name == name; });
      if (it == templates.end()) {
        throw std::invalid_argument("generate_city: no template for route " + name);
      }
      auto [path, spans] = trace_path(snap_waypoints(it->waypoints));
      // Forward stops define the centreline points; the reverse variant
      // mirrors them so opposite-side twins face each other.
      const std::vector<double> centre_arcs = draw_stop_arcs(path.length());
      routes.push_back(make_route(next_route++, name, /*direction=*/0, path,
                                  spans, centre_arcs));
      routes.push_back(make_reverse_route(next_route++, name, path, spans,
                                          centre_arcs));
    }
    const BoundingBox region{{0.0, 0.0}, {config_.width_m, config_.height_m}};
    return City(region, RoadNetwork(std::move(links_)), std::move(stops_),
                std::move(routes));
  }

 private:
  Point intersection(GridPoint g) const {
    const double sx = config_.width_m / static_cast<double>(cols_ - 1);
    const double sy = config_.height_m / static_cast<double>(rows_ - 1);
    return Point{g.i * sx, g.j * sy};
  }

  SegmentId horizontal_link_id(int i, int j) const {
    return static_cast<SegmentId>(j * (cols_ - 1) + i);
  }
  SegmentId vertical_link_id(int i, int j) const {
    return static_cast<SegmentId>(rows_ * (cols_ - 1) + i * (rows_ - 1) + j);
  }

  void build_links() {
    const int mid_row = rows_ / 2;
    const int commuter_a = static_cast<int>(std::lround(0.36 * (cols_ - 1)));
    const int commuter_b = static_cast<int>(std::lround(0.50 * (cols_ - 1)));
    links_.reserve(static_cast<std::size_t>(rows_ * (cols_ - 1) + cols_ * (rows_ - 1)));
    // Horizontal links first (ids must match horizontal_link_id).
    for (int j = 0; j < rows_; ++j) {
      for (int i = 0; i < cols_ - 1; ++i) {
        Polyline path({intersection({i, j}), intersection({i + 1, j})});
        RoadClass cls = RoadClass::kLocal;
        double speed = 45.0;
        if (j == mid_row || j == 0 || j == rows_ - 1) {
          cls = RoadClass::kMajorArterial;
          speed = 60.0;
        } else if (j % 2 == 0) {
          cls = RoadClass::kArterial;
          speed = 55.0;
        }
        links_.push_back(RoadLink{horizontal_link_id(i, j), std::move(path), cls,
                                  speed, /*commuter_corridor=*/false});
      }
    }
    for (int i = 0; i < cols_; ++i) {
      for (int j = 0; j < rows_ - 1; ++j) {
        Polyline path({intersection({i, j}), intersection({i, j + 1})});
        RoadClass cls = RoadClass::kLocal;
        double speed = 45.0;
        bool commuter = false;
        if (i == commuter_a || i == commuter_b) {
          cls = RoadClass::kArterial;
          speed = 50.0;
          commuter = true;
        } else if (i % 3 == 0) {
          cls = RoadClass::kArterial;
          speed = 55.0;
        }
        links_.push_back(RoadLink{vertical_link_id(i, j), std::move(path), cls,
                                  speed, commuter});
      }
    }
  }

  std::vector<GridPoint> snap_waypoints(
      const std::vector<std::pair<double, double>>& fractions) const {
    std::vector<GridPoint> pts;
    pts.reserve(fractions.size());
    for (auto [fx, fy] : fractions) {
      pts.push_back(GridPoint{
          static_cast<int>(std::lround(fx * (cols_ - 1))),
          static_cast<int>(std::lround(fy * (rows_ - 1)))});
    }
    return pts;
  }

  /// Walks the grid through the waypoints, producing the route polyline and
  /// the traversed link spans.
  std::pair<Polyline, std::vector<LinkSpan>> trace_path(
      const std::vector<GridPoint>& waypoints) const {
    if (waypoints.size() < 2) {
      throw std::invalid_argument("trace_path: need at least two waypoints");
    }
    std::vector<Point> vertices{intersection(waypoints.front())};
    std::vector<LinkSpan> spans;
    double arc = 0.0;
    auto add_link = [&](SegmentId id, GridPoint to) {
      const Point p = intersection(to);
      const double len = distance(vertices.back(), p);
      spans.push_back(LinkSpan{id, arc, arc + len});
      arc += len;
      vertices.push_back(p);
    };
    GridPoint cur = waypoints.front();
    for (std::size_t w = 1; w < waypoints.size(); ++w) {
      const GridPoint target = waypoints[w];
      if (cur.i != target.i && cur.j != target.j) {
        throw std::invalid_argument(
            "trace_path: consecutive waypoints must share a row or column");
      }
      while (cur.i < target.i) { add_link(horizontal_link_id(cur.i, cur.j), {cur.i + 1, cur.j}); ++cur.i; }
      while (cur.i > target.i) { add_link(horizontal_link_id(cur.i - 1, cur.j), {cur.i - 1, cur.j}); --cur.i; }
      while (cur.j < target.j) { add_link(vertical_link_id(cur.i, cur.j), {cur.i, cur.j + 1}); ++cur.j; }
      while (cur.j > target.j) { add_link(vertical_link_id(cur.i, cur.j - 1), {cur.i, cur.j - 1}); --cur.j; }
    }
    return {Polyline(std::move(vertices)), std::move(spans)};
  }

  /// Stop centreline arc positions along a path of length `len`.
  std::vector<double> draw_stop_arcs(double len) {
    std::vector<double> arcs;
    double arc = config_.stop_spacing_m * 0.5 +
                 rng_.uniform(-config_.stop_spacing_jitter_m,
                              config_.stop_spacing_jitter_m);
    while (arc < len - config_.stop_spacing_m * 0.25) {
      arcs.push_back(arc);
      arc += config_.stop_spacing_m + rng_.uniform(-config_.stop_spacing_jitter_m,
                                                   config_.stop_spacing_jitter_m);
    }
    if (arcs.size() < 2) {
      throw std::invalid_argument("draw_stop_arcs: route too short for stops");
    }
    return arcs;
  }

  /// Kerb-side position for a stop: offset to the left of travel (Singapore
  /// drives on the left; stops are on the near side).
  Point kerb_position(const Polyline& path, double arc) const {
    const Point c = path.point_at(arc);
    const Point d = path.direction_at(arc);
    const Point left{-d.y, d.x};
    return c + left * config_.stop_side_offset_m;
  }

  /// Finds an existing same-heading stop within the merge radius (shared
  /// stop on a common corridor), else creates a new stop and twin-links it
  /// with any opposite-heading stop across the road.
  StopId obtain_stop(Point position, Point heading) {
    for (const BusStop& s : stops_) {
      if (dot(s.heading, heading) > 0.5 &&
          distance(s.position, position) <= config_.stop_merge_radius_m) {
        return s.id;
      }
    }
    BusStop stop;
    stop.id = static_cast<StopId>(stops_.size());
    stop.name = "Stop-" + std::to_string(stop.id);
    stop.position = position;
    stop.heading = heading;
    // Twin: an opposite-heading stop just across the road.
    const double twin_radius = 2.0 * config_.stop_side_offset_m + 10.0;
    for (BusStop& other : stops_) {
      if (!other.opposite.has_value() && dot(other.heading, heading) < -0.5 &&
          distance(other.position, position) <= twin_radius) {
        stop.opposite = other.id;
        other.opposite = stop.id;
        break;
      }
    }
    stops_.push_back(std::move(stop));
    return stops_.back().id;
  }

  BusRoute make_route(RouteId id, const std::string& name, int direction,
                      const Polyline& path, const std::vector<LinkSpan>& spans,
                      const std::vector<double>& centre_arcs) {
    std::vector<RouteStop> stops;
    stops.reserve(centre_arcs.size());
    for (double arc : centre_arcs) {
      const StopId sid = obtain_stop(kerb_position(path, arc), path.direction_at(arc));
      // Merging may map two nearby arcs to the same stop; keep the first.
      if (std::any_of(stops.begin(), stops.end(),
                      [&](const RouteStop& rs) { return rs.stop == sid; })) {
        continue;
      }
      stops.push_back(RouteStop{sid, arc});
    }
    return BusRoute(id, name, direction, path, std::move(stops), spans);
  }

  BusRoute make_reverse_route(RouteId id, const std::string& name,
                              const Polyline& forward_path,
                              const std::vector<LinkSpan>& forward_spans,
                              const std::vector<double>& centre_arcs) {
    const double len = forward_path.length();
    const Polyline path = forward_path.reversed();
    std::vector<LinkSpan> spans;
    spans.reserve(forward_spans.size());
    for (auto it = forward_spans.rbegin(); it != forward_spans.rend(); ++it) {
      spans.push_back(LinkSpan{it->link, len - it->arc_end, len - it->arc_begin});
    }
    std::vector<RouteStop> stops;
    for (auto it = centre_arcs.rbegin(); it != centre_arcs.rend(); ++it) {
      const double rev_arc = len - *it;
      const StopId sid =
          obtain_stop(kerb_position(path, rev_arc), path.direction_at(rev_arc));
      if (std::any_of(stops.begin(), stops.end(),
                      [&](const RouteStop& rs) { return rs.stop == sid; })) {
        continue;
      }
      stops.push_back(RouteStop{sid, rev_arc});
    }
    return BusRoute(id, name, /*direction=*/1, path, std::move(stops), spans);
  }

  const CityConfig& config_;
  int cols_;
  int rows_;
  Rng rng_;
  std::vector<RoadLink> links_;
  std::vector<BusStop> stops_;
};

}  // namespace

City generate_city(const CityConfig& config) {
  return GeneratorState(config).build();
}

}  // namespace bussense
