#include "cellular/fingerprint.h"

#include <algorithm>

namespace bussense {

Fingerprint make_fingerprint(std::vector<CellObservation> observations) {
  std::stable_sort(observations.begin(), observations.end(),
                   [](const CellObservation& a, const CellObservation& b) {
                     return a.rss_dbm > b.rss_dbm;
                   });
  Fingerprint fp;
  fp.cells.reserve(observations.size());
  for (const CellObservation& o : observations) {
    if (std::find(fp.cells.begin(), fp.cells.end(), o.id) == fp.cells.end()) {
      fp.cells.push_back(o.id);
    }
  }
  return fp;
}

int common_cell_count(const Fingerprint& a, const Fingerprint& b) {
  int count = 0;
  for (CellId id : a.cells) {
    if (std::find(b.cells.begin(), b.cells.end(), id) != b.cells.end()) {
      ++count;
    }
  }
  return count;
}

std::string to_string(const Fingerprint& fp) {
  std::string out;
  for (std::size_t i = 0; i < fp.cells.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(fp.cells[i]);
  }
  return out;
}

}  // namespace bussense
