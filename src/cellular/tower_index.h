// Uniform-grid spatial index over the deployed cell towers.
//
// City-scale scans must not walk every tower: a tower whose path loss at the
// scan position cannot be overcome even by the most favourable shadowing and
// temporal deviate can never clear the modem sensitivity, and the set of
// towers that *can* is bounded by a disk around the scan position. The index
// buckets towers into fixed-size grid cells (CSR layout) so a radius query
// touches only the cells overlapping the disk. Candidates are returned in
// ascending tower order, which keeps the indexed scan's evaluation order —
// and therefore its output, including tie-breaking — identical to the
// brute-force loop over `RadioEnvironment::towers()`.
#pragma once

#include <cstdint>
#include <vector>

#include "cellular/cell_tower.h"
#include "common/geo.h"

namespace bussense {

class TowerIndex {
 public:
  /// Builds the grid over `towers` with cells of `cell_m` metres. Tower
  /// order (and thus the indices handed back by `query`) follows `towers`.
  TowerIndex(const std::vector<CellTower>& towers, double cell_m);

  /// Appends to `out` the indices (into the tower vector the index was built
  /// from) of all towers within `radius_m` of `p`, ascending. `out` is
  /// cleared first.
  void query(Point p, double radius_m, std::vector<std::uint32_t>& out) const;

  double cell_m() const { return cell_m_; }
  std::size_t tower_count() const { return positions_.size(); }

 private:
  double cell_m_;
  std::int64_t gx0_ = 0, gy0_ = 0;  ///< grid origin cell
  std::size_t nx_ = 0, ny_ = 0;     ///< grid extent in cells
  bool brute_ = false;  ///< bounding box too sparse for a grid; scan linearly
  std::vector<std::uint32_t> cell_start_;  ///< CSR offsets, nx_*ny_ + 1
  std::vector<std::uint32_t> entries_;     ///< tower indices, cell-major
  std::vector<Point> positions_;           ///< tower positions by index
};

}  // namespace bussense
