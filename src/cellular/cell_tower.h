// Cell tower description.
#pragma once

#include <cstdint>

#include "common/geo.h"

namespace bussense {

/// GSM/UMTS cell identity as reported by the phone's modem. The simulator
/// assigns 4-digit-style IDs reminiscent of the paper's Figure 3 examples.
using CellId = std::int32_t;

struct CellTower {
  CellId id = 0;
  Point position;
  double tx_power_dbm = 37.0;  ///< effective radiated power at the reference distance
};

}  // namespace bussense
