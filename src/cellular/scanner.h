// Phone-side cell scan: which towers a phone reports at a position.
//
// Real modems report the serving cell plus a handful of monitored
// neighbours; the paper observes 4–7 visible towers per bus stop. The
// scanner samples RSS for every deployed tower, keeps those above the modem
// sensitivity, and truncates to the strongest max_towers.
#pragma once

#include <vector>

#include "cellular/fingerprint.h"
#include "cellular/radio_environment.h"
#include "common/rng.h"

namespace bussense {

struct ScannerConfig {
  double sensitivity_dbm = -100.0;  ///< weakest reportable RSS
  std::size_t max_towers = 7;       ///< modem neighbour-list capacity
  /// Additional per-scan RSS spread when the phone is inside a bus (body
  /// and vehicle attenuation varies with seating position).
  double in_bus_noise_db = 1.8;
};

class CellScanner {
 public:
  explicit CellScanner(ScannerConfig config = {}) : config_(config) {}

  /// Scans at `p`. `in_bus` adds the in-bus noise term. Result is sorted by
  /// descending RSS.
  std::vector<CellObservation> scan(const RadioEnvironment& env, Point p,
                                    Rng& rng, bool in_bus = false) const;

  /// Convenience: scan and convert to an ordered fingerprint.
  Fingerprint scan_fingerprint(const RadioEnvironment& env, Point p, Rng& rng,
                               bool in_bus = false) const;

  const ScannerConfig& config() const { return config_; }

 private:
  ScannerConfig config_;
};

}  // namespace bussense
