// Phone-side cell scan: which towers a phone reports at a position.
//
// Real modems report the serving cell plus a handful of monitored
// neighbours; the paper observes 4–7 visible towers per bus stop. The
// scanner samples RSS per tower, keeps those above the modem sensitivity,
// and truncates to the strongest max_towers.
//
// The fast path asks the environment's spatial tower index only for towers
// inside the conservative reach disk, prunes each candidate by its RSS
// upper bound before drawing the (counter-based, clamped) temporal deviate,
// and is bit-identical to the brute-force loop over every deployed tower —
// any skipped tower provably cannot clear the sensitivity threshold.
// `use_index = false` keeps the brute-force scan for the ablations.
#pragma once

#include <vector>

#include "cellular/fingerprint.h"
#include "cellular/radio_environment.h"
#include "common/rng.h"

namespace bussense {

struct ScannerConfig {
  double sensitivity_dbm = -100.0;  ///< weakest reportable RSS
  std::size_t max_towers = 7;       ///< modem neighbour-list capacity
  /// Additional per-scan RSS spread when the phone is inside a bus (body
  /// and vehicle attenuation varies with seating position).
  double in_bus_noise_db = 1.8;
  /// Scan via the spatial tower index. Falls back to the full loop
  /// automatically when the reach bound is unsound (non-positive path-loss
  /// exponent or noise clamp).
  bool use_index = true;
};

/// Per-call work counters (benches report candidates/scan).
struct ScanStats {
  std::size_t towers = 0;      ///< deployed towers
  std::size_t candidates = 0;  ///< towers inside the reach disk
  std::size_t sampled = 0;     ///< candidates whose temporal deviate was drawn
};

class CellScanner {
 public:
  explicit CellScanner(ScannerConfig config = {}) : config_(config) {}

  /// Scans at `p`. `in_bus` adds the in-bus noise term. Result is sorted by
  /// descending RSS (ties by ascending cell id). Consumes exactly one draw
  /// from `rng` (the per-scan noise key) on either path.
  std::vector<CellObservation> scan(const RadioEnvironment& env, Point p,
                                    Rng& rng, bool in_bus = false,
                                    ScanStats* stats = nullptr) const;

  /// Convenience: scan and convert to an ordered fingerprint.
  Fingerprint scan_fingerprint(const RadioEnvironment& env, Point p, Rng& rng,
                               bool in_bus = false,
                               ScanStats* stats = nullptr) const;

  const ScannerConfig& config() const { return config_; }

 private:
  ScannerConfig config_;
};

}  // namespace bussense
