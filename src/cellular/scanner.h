// Phone-side cell scan: which towers a phone reports at a position.
//
// Real modems report the serving cell plus a handful of monitored
// neighbours; the paper observes 4–7 visible towers per bus stop. The
// scanner samples RSS per tower, keeps those above the modem sensitivity,
// and truncates to the strongest max_towers.
//
// The fast path asks the environment's spatial tower index only for towers
// inside the conservative reach disk, prunes each candidate by its RSS
// upper bound before drawing the (counter-based, clamped) temporal deviate,
// and is bit-identical to the brute-force loop over every deployed tower —
// any skipped tower provably cannot clear the sensitivity threshold.
// `accel.use_index = false` keeps the brute-force scan for the ablations.
#pragma once

#include <vector>

#include "cellular/fingerprint.h"
#include "cellular/radio_environment.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace bussense {

struct ScannerConfig {
  double sensitivity_dbm = -100.0;  ///< weakest reportable RSS
  std::size_t max_towers = 7;       ///< modem neighbour-list capacity
  /// Additional per-scan RSS spread when the phone is inside a bus (body
  /// and vehicle attenuation varies with seating position).
  double in_bus_noise_db = 1.8;

  /// Fast-path switches (DESIGN.md §7). Grouped so ablations flip one
  /// documented knob instead of a loose boolean.
  struct Acceleration {
    /// Scan via the spatial tower index. Falls back to the full loop
    /// automatically when the reach bound is unsound (non-positive
    /// path-loss exponent or noise clamp).
    bool use_index = true;
  };
  Acceleration accel;

  /// Throws std::invalid_argument on nonsense (zero neighbour capacity,
  /// negative in-bus noise, non-finite sensitivity). Called by CellScanner.
  void validate() const;
};

/// Per-call work counters. Follows the repo-wide stats convention:
/// `*_considered` (total work the brute-force path would do), `*_pruned`
/// (work the fast path provably skipped), `*_accepted` (work actually
/// done), with reset()/merge() for aggregation — see MatchStats.
struct ScanStats {
  std::size_t towers_considered = 0;  ///< deployed towers
  std::size_t reach_candidates = 0;   ///< towers inside the reach disk
  std::size_t towers_pruned = 0;      ///< skipped before the temporal draw
  std::size_t towers_accepted = 0;    ///< temporal deviate actually drawn

  void reset() { *this = ScanStats{}; }
  void merge(const ScanStats& other) {
    towers_considered += other.towers_considered;
    reach_candidates += other.reach_candidates;
    towers_pruned += other.towers_pruned;
    towers_accepted += other.towers_accepted;
  }
};

class CellScanner {
 public:
  explicit CellScanner(ScannerConfig config = {}) : config_(config) {
    config_.validate();
  }

  /// Scans at `p`. `in_bus` adds the in-bus noise term. Result is sorted by
  /// descending RSS (ties by ascending cell id). Consumes exactly one draw
  /// from `rng` (the per-scan noise key) on either path.
  std::vector<CellObservation> scan(const RadioEnvironment& env, Point p,
                                    Rng& rng, bool in_bus = false,
                                    ScanStats* stats = nullptr) const;

  /// Convenience: scan and convert to an ordered fingerprint.
  Fingerprint scan_fingerprint(const RadioEnvironment& env, Point p, Rng& rng,
                               bool in_bus = false,
                               ScanStats* stats = nullptr) const;

  /// Accumulates every scan's ScanStats into `registry` (counters
  /// `scanner.scans`, `scanner.towers_considered/pruned/accepted`,
  /// `scanner.reach_candidates`). Counter updates are lock-free, so bound
  /// scanners stay safe to use from many threads; recording never affects
  /// scan results. Pass nullptr to unbind.
  void bind_metrics(MetricsRegistry* registry);

  const ScannerConfig& config() const { return config_; }

 private:
  ScannerConfig config_;
  // Cached instrument handles (null when unbound). The registry outlives
  // the scanner by contract.
  Counter* scans_ = nullptr;
  Counter* considered_ = nullptr;
  Counter* reach_ = nullptr;
  Counter* pruned_ = nullptr;
  Counter* accepted_ = nullptr;
};

}  // namespace bussense
