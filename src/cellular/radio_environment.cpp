#include "cellular/radio_environment.h"

#include <cmath>

namespace bussense {

namespace {

// SplitMix64 — cheap, well-mixed 64-bit hash used to derive the static
// shadowing field deterministically from (seed, tower, grid cell).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Standard normal deviate derived from a hash via Box–Muller on two hashed
// uniforms. Deterministic, no generator state.
double hashed_normal(std::uint64_t h) {
  const std::uint64_t h1 = splitmix64(h);
  const std::uint64_t h2 = splitmix64(h1 ^ 0xda942042e4dd58b5ULL);
  const double u1 =
      (static_cast<double>(h1 >> 11) + 0.5) / 9007199254740992.0;  // (0,1)
  const double u2 = static_cast<double>(h2 >> 11) / 9007199254740992.0;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

}  // namespace

RadioEnvironment::RadioEnvironment(std::vector<CellTower> towers,
                                   PropagationConfig config,
                                   std::uint64_t terrain_seed)
    : towers_(std::move(towers)),
      config_(config),
      terrain_seed_(terrain_seed) {}

double RadioEnvironment::shadow_at_node(CellId tower, std::int64_t gx,
                                        std::int64_t gy) const {
  std::uint64_t h = terrain_seed_;
  h = splitmix64(h ^ static_cast<std::uint64_t>(tower));
  h = splitmix64(h ^ static_cast<std::uint64_t>(gx) * 0x9e3779b97f4a7c15ULL);
  h = splitmix64(h ^ static_cast<std::uint64_t>(gy) * 0xc2b2ae3d27d4eb4fULL);
  return hashed_normal(h) * config_.shadow_sigma_db;
}

double RadioEnvironment::static_shadow_db(CellId tower, Point p) const {
  const double g = config_.shadow_grid_m;
  const double fx = p.x / g;
  const double fy = p.y / g;
  const auto x0 = static_cast<std::int64_t>(std::floor(fx));
  const auto y0 = static_cast<std::int64_t>(std::floor(fy));
  const double tx = fx - static_cast<double>(x0);
  const double ty = fy - static_cast<double>(y0);
  const double s00 = shadow_at_node(tower, x0, y0);
  const double s10 = shadow_at_node(tower, x0 + 1, y0);
  const double s01 = shadow_at_node(tower, x0, y0 + 1);
  const double s11 = shadow_at_node(tower, x0 + 1, y0 + 1);
  const double s0 = s00 * (1.0 - tx) + s10 * tx;
  const double s1 = s01 * (1.0 - tx) + s11 * tx;
  return s0 * (1.0 - ty) + s1 * ty;
}

double RadioEnvironment::mean_rss_dbm(const CellTower& tower, Point p) const {
  const double d = std::max(distance(tower.position, p), config_.ref_distance_m);
  const double path_loss =
      config_.ref_loss_db +
      10.0 * config_.path_loss_exponent * std::log10(d / config_.ref_distance_m);
  return tower.tx_power_dbm - path_loss + static_shadow_db(tower.id, p);
}

double RadioEnvironment::sample_rss_dbm(const CellTower& tower, Point p,
                                        Rng& rng, double extra_noise_db) const {
  const double sigma = std::hypot(config_.temporal_sigma_db, extra_noise_db);
  return mean_rss_dbm(tower, p) + rng.normal(0.0, sigma);
}

}  // namespace bussense
