#include "cellular/radio_environment.h"

#include <algorithm>
#include <cmath>

namespace bussense {

namespace {

// Standard normal deviate derived from a hash via Box–Muller on two hashed
// uniforms. Deterministic, no generator state.
double hashed_normal(std::uint64_t h) {
  const std::uint64_t h1 = mix64(h);
  const std::uint64_t h2 = mix64(h1 ^ 0xda942042e4dd58b5ULL);
  const double u1 =
      (static_cast<double>(h1 >> 11) + 0.5) / 9007199254740992.0;  // (0,1)
  const double u2 = static_cast<double>(h2 >> 11) / 9007199254740992.0;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

// Memo for shadow-node deviates: consecutive scan positions interpolate the
// same grid nodes, and the Box–Muller evaluation dominates the node cost.
// Direct-mapped, thread-local (the environment is shared across trip
// threads), keyed by the full 64-bit node hash and storing the *unscaled*
// deviate, so the cache is transparent to sigma/clamp configuration.
struct NodeCacheEntry {
  std::uint64_t key = 0;
  double deviate = 0.0;
};
constexpr std::size_t kNodeCacheSize = 8192;  // power of two, ~128 KiB/thread

double cached_hashed_normal(std::uint64_t h) {
  thread_local std::vector<NodeCacheEntry> cache(kNodeCacheSize);
  NodeCacheEntry& e = cache[h & (kNodeCacheSize - 1)];
  // Key 0 marks an empty slot; h == 0 itself just recomputes every time.
  if (e.key != h) {
    e.key = h;
    e.deviate = hashed_normal(h);
  }
  return e.deviate;
}

// Grid cell size of the tower index. Coarser than the deployment spacing so
// a reach-radius query touches few cells, fine enough that border cells do
// not drag in whole districts.
constexpr double kIndexCellM = 750.0;

}  // namespace

RadioEnvironment::RadioEnvironment(std::vector<CellTower> towers,
                                   PropagationConfig config,
                                   std::uint64_t terrain_seed)
    : towers_(std::move(towers)),
      config_(config),
      terrain_seed_(terrain_seed) {
  for (const CellTower& t : towers_) {
    max_tx_power_dbm_ = std::max(max_tx_power_dbm_, t.tx_power_dbm);
  }
  index_ = std::make_unique<TowerIndex>(towers_, kIndexCellM);
}

double RadioEnvironment::shadow_at_node(CellId tower, std::int64_t gx,
                                        std::int64_t gy) const {
  std::uint64_t h = terrain_seed_;
  h = mix64(h ^ static_cast<std::uint64_t>(tower));
  h = mix64(h ^ static_cast<std::uint64_t>(gx) * 0x9e3779b97f4a7c15ULL);
  h = mix64(h ^ static_cast<std::uint64_t>(gy) * 0xc2b2ae3d27d4eb4fULL);
  const double c = config_.noise_clamp_sigmas;
  return std::clamp(cached_hashed_normal(h), -c, c) * config_.shadow_sigma_db;
}

double RadioEnvironment::static_shadow_db(CellId tower, Point p) const {
  const double g = config_.shadow_grid_m;
  const double fx = p.x / g;
  const double fy = p.y / g;
  const auto x0 = static_cast<std::int64_t>(std::floor(fx));
  const auto y0 = static_cast<std::int64_t>(std::floor(fy));
  const double tx = fx - static_cast<double>(x0);
  const double ty = fy - static_cast<double>(y0);
  const double s00 = shadow_at_node(tower, x0, y0);
  const double s10 = shadow_at_node(tower, x0 + 1, y0);
  const double s01 = shadow_at_node(tower, x0, y0 + 1);
  const double s11 = shadow_at_node(tower, x0 + 1, y0 + 1);
  const double s0 = s00 * (1.0 - tx) + s10 * tx;
  const double s1 = s01 * (1.0 - tx) + s11 * tx;
  return s0 * (1.0 - ty) + s1 * ty;
}

double RadioEnvironment::mean_rss_dbm(const CellTower& tower, Point p) const {
  const double d = std::max(distance(tower.position, p), config_.ref_distance_m);
  const double path_loss =
      config_.ref_loss_db +
      10.0 * config_.path_loss_exponent * std::log10(d / config_.ref_distance_m);
  return tower.tx_power_dbm - path_loss + static_shadow_db(tower.id, p);
}

double RadioEnvironment::sample_rss_dbm(const CellTower& tower, Point p,
                                        Rng& rng, double extra_noise_db) const {
  const double sigma = std::hypot(config_.temporal_sigma_db, extra_noise_db);
  return mean_rss_dbm(tower, p) + rng.normal(0.0, sigma);
}

double RadioEnvironment::temporal_noise_db(CellId tower, std::uint64_t scan_key,
                                           double extra_noise_db) const {
  const std::uint64_t h =
      mix64(scan_key ^ static_cast<std::uint64_t>(tower) *
                           0x9e3779b97f4a7c15ULL);
  const double sigma = std::hypot(config_.temporal_sigma_db, extra_noise_db);
  const double c = config_.noise_clamp_sigmas;
  return std::clamp(hashed_normal(h), -c, c) * sigma;
}

double RadioEnvironment::sample_rss_dbm(const CellTower& tower, Point p,
                                        std::uint64_t scan_key,
                                        double extra_noise_db) const {
  return mean_rss_dbm(tower, p) +
         temporal_noise_db(tower.id, scan_key, extra_noise_db);
}

double RadioEnvironment::reach_radius_m(double tx_power_dbm,
                                        double min_rss_dbm,
                                        double extra_noise_db) const {
  const double sigma_t = std::hypot(config_.temporal_sigma_db, extra_noise_db);
  const double margin = config_.noise_clamp_sigmas *
                        (std::abs(config_.shadow_sigma_db) + sigma_t);
  // tx − ref_loss − 10·n·log10(d/d0) + margin ≥ min_rss, solved for d.
  const double budget = tx_power_dbm - config_.ref_loss_db - min_rss_dbm + margin;
  if (budget <= 0.0) return 0.0;
  return config_.ref_distance_m *
         std::pow(10.0, budget / (10.0 * config_.path_loss_exponent));
}

double RadioEnvironment::max_reach_radius_m(double min_rss_dbm,
                                            double extra_noise_db) const {
  return reach_radius_m(max_tx_power_dbm_, min_rss_dbm, extra_noise_db);
}

}  // namespace bussense
