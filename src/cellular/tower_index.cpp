#include "cellular/tower_index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bussense {

namespace {
std::int64_t grid_floor(double v, double cell_m) {
  return static_cast<std::int64_t>(std::floor(v / cell_m));
}
}  // namespace

TowerIndex::TowerIndex(const std::vector<CellTower>& towers, double cell_m)
    : cell_m_(cell_m) {
  if (cell_m <= 0.0) {
    throw std::invalid_argument("TowerIndex: non-positive cell size");
  }
  positions_.reserve(towers.size());
  for (const CellTower& t : towers) positions_.push_back(t.position);
  if (positions_.empty()) {
    cell_start_.assign(1, 0);
    return;
  }
  std::int64_t gx1 = 0, gy1 = 0;
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const std::int64_t gx = grid_floor(positions_[i].x, cell_m_);
    const std::int64_t gy = grid_floor(positions_[i].y, cell_m_);
    if (i == 0) {
      gx0_ = gx1 = gx;
      gy0_ = gy1 = gy;
    } else {
      gx0_ = std::min(gx0_, gx);
      gy0_ = std::min(gy0_, gy);
      gx1 = std::max(gx1, gx);
      gy1 = std::max(gy1, gy);
    }
  }
  // A single outlier coordinate makes the bounding-box grid area — and the
  // CSR offset allocation — quadratic in the outlier distance. Cap the cell
  // count relative to the tower count and fall back to a linear scan for
  // such degenerate deployments (checked spanx-first so the product below
  // cannot overflow).
  const std::int64_t spanx = gx1 - gx0_ + 1;
  const std::int64_t spany = gy1 - gy0_ + 1;
  const auto max_cells = std::max<std::int64_t>(
      4096, 64 * static_cast<std::int64_t>(positions_.size()));
  if (spanx > max_cells || spany > max_cells / spanx) {
    brute_ = true;
    cell_start_.assign(1, 0);
    return;
  }
  nx_ = static_cast<std::size_t>(spanx);
  ny_ = static_cast<std::size_t>(spany);

  // Counting sort into CSR: ascending tower index within each cell because
  // the fill pass walks towers in order.
  cell_start_.assign(nx_ * ny_ + 1, 0);
  const auto cell_of = [&](Point p) {
    const auto cx = static_cast<std::size_t>(grid_floor(p.x, cell_m_) - gx0_);
    const auto cy = static_cast<std::size_t>(grid_floor(p.y, cell_m_) - gy0_);
    return cy * nx_ + cx;
  };
  for (const Point& p : positions_) ++cell_start_[cell_of(p) + 1];
  for (std::size_t c = 1; c < cell_start_.size(); ++c) {
    cell_start_[c] += cell_start_[c - 1];
  }
  entries_.resize(positions_.size());
  std::vector<std::uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    entries_[cursor[cell_of(positions_[i])]++] = static_cast<std::uint32_t>(i);
  }
}

void TowerIndex::query(Point p, double radius_m,
                       std::vector<std::uint32_t>& out) const {
  out.clear();
  if (positions_.empty() || radius_m < 0.0) return;
  if (brute_) {
    const double r2 = radius_m * radius_m;
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      const double dx = positions_[i].x - p.x;
      const double dy = positions_[i].y - p.y;
      if (dx * dx + dy * dy <= r2) out.push_back(static_cast<std::uint32_t>(i));
    }
    return;  // walked in tower order, so already ascending
  }
  const std::int64_t cx0 =
      std::max(grid_floor(p.x - radius_m, cell_m_), gx0_);
  const std::int64_t cy0 =
      std::max(grid_floor(p.y - radius_m, cell_m_), gy0_);
  const std::int64_t cx1 = std::min(grid_floor(p.x + radius_m, cell_m_),
                                    gx0_ + static_cast<std::int64_t>(nx_) - 1);
  const std::int64_t cy1 = std::min(grid_floor(p.y + radius_m, cell_m_),
                                    gy0_ + static_cast<std::int64_t>(ny_) - 1);
  const double r2 = radius_m * radius_m;
  for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      const std::size_t c = static_cast<std::size_t>(cy - gy0_) * nx_ +
                            static_cast<std::size_t>(cx - gx0_);
      for (std::uint32_t e = cell_start_[c]; e < cell_start_[c + 1]; ++e) {
        const std::uint32_t i = entries_[e];
        const double dx = positions_[i].x - p.x;
        const double dy = positions_[i].y - p.y;
        if (dx * dx + dy * dy <= r2) out.push_back(i);
      }
    }
  }
  // Cells are visited row-major but candidates must mirror the brute-force
  // tower order exactly.
  std::sort(out.begin(), out.end());
}

}  // namespace bussense
