// Synthetic tower deployment for a monitored region.
//
// Towers sit on a jittered lattice extended by a margin beyond the region so
// border locations see a full neighbourhood. Spacing ~500 m with ~700 m
// effective range reproduces the paper's observation of 4–7 visible towers
// per bus stop and per-tower coverage of roughly 200–900 m.
#pragma once

#include <vector>

#include "cellular/cell_tower.h"
#include "common/geo.h"
#include "common/rng.h"

namespace bussense {

struct DeploymentConfig {
  double spacing_m = 450.0;
  double jitter_frac = 0.3;      ///< uniform jitter as a fraction of spacing
  double margin_m = 800.0;       ///< lattice extension beyond the region
  double tx_power_dbm = 38.5;
  CellId first_cell_id = 1001;   ///< IDs assigned sequentially from here
};

std::vector<CellTower> deploy_towers(const BoundingBox& region,
                                     const DeploymentConfig& config, Rng& rng);

}  // namespace bussense
