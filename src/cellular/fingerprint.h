// Cellular fingerprints: the set of visible cell towers ordered by RSS.
//
// The paper's central representation (Section III-A): RSS magnitudes vary
// with conditions but the *rank order* of towers at a location is stable, so
// a bus stop is signatured by its ordered cell-ID set and compared with an
// order-aware alignment (core/matching.h).
#pragma once

#include <string>
#include <vector>

#include "cellular/cell_tower.h"

namespace bussense {

/// One tower seen in a scan.
struct CellObservation {
  CellId id = 0;
  double rss_dbm = 0.0;
};

/// Ordered cell-ID set. Invariant maintained by make_fingerprint: ids are
/// unique and ordered by descending RSS of the originating scan.
struct Fingerprint {
  std::vector<CellId> cells;

  bool empty() const { return cells.empty(); }
  std::size_t size() const { return cells.size(); }
  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

/// Builds a fingerprint from scan observations (sorts by descending RSS).
Fingerprint make_fingerprint(std::vector<CellObservation> observations);

/// Number of cell IDs the two fingerprints share (order-insensitive); the
/// paper's tie-break when two stops score equally.
int common_cell_count(const Fingerprint& a, const Fingerprint& b);

/// "2134,3486,1122" — the rendering used in Figure 3.
std::string to_string(const Fingerprint& fp);

}  // namespace bussense
