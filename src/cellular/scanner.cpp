#include "cellular/scanner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bussense {

namespace {

// The reach bound divides by the path-loss exponent and multiplies the
// clamp; non-positive values make it unsound, so keep the exhaustive scan.
bool index_usable(const RadioEnvironment& env) {
  return env.config().path_loss_exponent > 0.0 &&
         env.config().noise_clamp_sigmas > 0.0;
}

}  // namespace

void ScannerConfig::validate() const {
  if (max_towers == 0) {
    throw std::invalid_argument("ScannerConfig: max_towers must be >= 1");
  }
  if (!(in_bus_noise_db >= 0.0)) {
    throw std::invalid_argument("ScannerConfig: in_bus_noise_db must be >= 0");
  }
  if (!std::isfinite(sensitivity_dbm)) {
    throw std::invalid_argument("ScannerConfig: sensitivity_dbm must be finite");
  }
}

void CellScanner::bind_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    scans_ = considered_ = reach_ = pruned_ = accepted_ = nullptr;
    return;
  }
  scans_ = &registry->counter("scanner.scans");
  considered_ = &registry->counter("scanner.towers_considered");
  reach_ = &registry->counter("scanner.reach_candidates");
  pruned_ = &registry->counter("scanner.towers_pruned");
  accepted_ = &registry->counter("scanner.towers_accepted");
}

std::vector<CellObservation> CellScanner::scan(const RadioEnvironment& env,
                                               Point p, Rng& rng, bool in_bus,
                                               ScanStats* stats) const {
  const double extra = in_bus ? config_.in_bus_noise_db : 0.0;
  // One engine draw keys every tower's temporal deviate for this scan, so
  // the caller's rng stream advances identically on both paths.
  const std::uint64_t scan_key = rng.engine()();

  ScanStats local;
  const bool counting = stats != nullptr || scans_ != nullptr;
  local.towers_considered = env.towers().size();

  std::vector<CellObservation> seen;
  if (config_.accel.use_index && index_usable(env)) {
    thread_local std::vector<std::uint32_t> candidates;
    env.tower_index().query(
        p, env.max_reach_radius_m(config_.sensitivity_dbm, extra), candidates);
    local.reach_candidates = candidates.size();
    const double noise_bound =
        env.config().noise_clamp_sigmas *
        std::hypot(env.config().temporal_sigma_db, extra);
    for (const std::uint32_t i : candidates) {
      const CellTower& tower = env.towers()[i];
      // The mean already contains the (clamped) shadowing, so mean + the
      // clamped temporal bound is a sound per-tower RSS upper bound; a
      // candidate below it is dropped without hashing its deviate. Skipping
      // is free of side effects because the deviate is counter-based.
      const double mean = env.mean_rss_dbm(tower, p);
      if (mean + noise_bound < config_.sensitivity_dbm) continue;
      ++local.towers_accepted;
      const double rss = mean + env.temporal_noise_db(tower.id, scan_key, extra);
      if (rss >= config_.sensitivity_dbm) {
        seen.push_back(CellObservation{tower.id, rss});
      }
    }
  } else {
    local.reach_candidates = env.towers().size();
    for (const CellTower& tower : env.towers()) {
      ++local.towers_accepted;
      const double rss = env.sample_rss_dbm(tower, p, scan_key, extra);
      if (rss >= config_.sensitivity_dbm) {
        seen.push_back(CellObservation{tower.id, rss});
      }
    }
  }
  if (counting) {
    local.towers_pruned = local.towers_considered - local.towers_accepted;
    if (stats) *stats = local;
    if (scans_) {
      scans_->inc();
      considered_->add(local.towers_considered);
      reach_->add(local.reach_candidates);
      pruned_->add(local.towers_pruned);
      accepted_->add(local.towers_accepted);
    }
  }
  std::sort(seen.begin(), seen.end(),
            [](const CellObservation& a, const CellObservation& b) {
              return a.rss_dbm != b.rss_dbm ? a.rss_dbm > b.rss_dbm
                                            : a.id < b.id;
            });
  if (seen.size() > config_.max_towers) seen.resize(config_.max_towers);
  return seen;
}

Fingerprint CellScanner::scan_fingerprint(const RadioEnvironment& env, Point p,
                                          Rng& rng, bool in_bus,
                                          ScanStats* stats) const {
  return make_fingerprint(scan(env, p, rng, in_bus, stats));
}

}  // namespace bussense
