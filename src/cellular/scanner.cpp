#include "cellular/scanner.h"

#include <algorithm>

namespace bussense {

std::vector<CellObservation> CellScanner::scan(const RadioEnvironment& env,
                                               Point p, Rng& rng,
                                               bool in_bus) const {
  const double extra = in_bus ? config_.in_bus_noise_db : 0.0;
  std::vector<CellObservation> seen;
  for (const CellTower& tower : env.towers()) {
    const double rss = env.sample_rss_dbm(tower, p, rng, extra);
    if (rss >= config_.sensitivity_dbm) {
      seen.push_back(CellObservation{tower.id, rss});
    }
  }
  std::sort(seen.begin(), seen.end(),
            [](const CellObservation& a, const CellObservation& b) {
              return a.rss_dbm > b.rss_dbm;
            });
  if (seen.size() > config_.max_towers) seen.resize(config_.max_towers);
  return seen;
}

Fingerprint CellScanner::scan_fingerprint(const RadioEnvironment& env, Point p,
                                          Rng& rng, bool in_bus) const {
  return make_fingerprint(scan(env, p, rng, in_bus));
}

}  // namespace bussense
