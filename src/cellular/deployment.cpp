#include "cellular/deployment.h"

#include <cmath>
#include <stdexcept>

namespace bussense {

std::vector<CellTower> deploy_towers(const BoundingBox& region,
                                     const DeploymentConfig& config, Rng& rng) {
  if (config.spacing_m <= 0.0) {
    throw std::invalid_argument("deploy_towers: spacing must be positive");
  }
  const double x0 = region.min.x - config.margin_m;
  const double y0 = region.min.y - config.margin_m;
  const double x1 = region.max.x + config.margin_m;
  const double y1 = region.max.y + config.margin_m;

  std::vector<CellTower> towers;
  CellId next_id = config.first_cell_id;
  const double jitter = config.spacing_m * config.jitter_frac;
  // Offset odd rows by half a spacing for a roughly hexagonal layout.
  int row = 0;
  for (double y = y0; y <= y1; y += config.spacing_m, ++row) {
    const double row_offset = (row % 2 == 1) ? config.spacing_m / 2.0 : 0.0;
    for (double x = x0 + row_offset; x <= x1; x += config.spacing_m) {
      CellTower tower;
      tower.id = next_id++;
      tower.position = Point{x + rng.uniform(-jitter, jitter),
                             y + rng.uniform(-jitter, jitter)};
      tower.tx_power_dbm = config.tx_power_dbm;
      towers.push_back(tower);
    }
  }
  return towers;
}

}  // namespace bussense
