#include "trafficsim/world.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <stdexcept>

#include "obs/metrics.h"
#include "sensing/gps_model.h"

namespace bussense {

World::World(WorldConfig config) : config_(std::move(config)) {
  Rng rng(config_.seed);
  city_ = std::make_unique<City>(generate_city(config_.city));
  Rng tower_rng = rng.fork();
  radio_ = std::make_unique<RadioEnvironment>(
      deploy_towers(city_->region(), config_.towers, tower_rng),
      config_.propagation, rng.fork().engine()());
  scanner_ = CellScanner(config_.scanner);
  traffic_ = std::make_unique<TrafficField>(city_->network(), config_.traffic,
                                            rng.fork().engine()());
  demand_ = std::make_unique<DemandModel>(config_.demand, city_->stops().size(),
                                          rng.fork().engine()());
  taxis_ = std::make_unique<TaxiFeed>(*traffic_, config_.taxi,
                                      rng.fork().engine()());
  bus_sim_ = std::make_unique<BusSimulator>(*city_, *traffic_, *demand_,
                                            config_.bus);
  accel_model_ = AccelModel(config_.accel);
  EventChannelConfig channel;
  channel.detection_prob = config_.beep_detection_prob;
  channel.false_beeps_per_trip = config_.false_beeps_per_trip;
  event_channel_ = EventChannel(channel);
}

Fingerprint World::scan_stop(StopId stop, Rng& rng, bool in_bus,
                             SimTime when) const {
  return apply_churn(
      scanner_.scan_fingerprint(*radio_, city_->stop(stop).position, rng, in_bus),
      when);
}

Fingerprint World::apply_churn(Fingerprint fingerprint, SimTime when) const {
  const bool gradual = config_.tower_churn_per_day > 0.0;
  const bool event = config_.tower_churn_event_day >= 0 &&
                     config_.tower_churn_event_fraction > 0.0;
  if (!gradual && !event) return fingerprint;
  const int day = day_index(when);
  for (CellId& id : fingerprint.cells) {
    // Count deterministic churn events for this tower up to `day`; each one
    // renumbers the cell (a large offset stands in for a fresh id).
    int epoch = 0;
    if (gradual) {
      for (int d = 1; d <= day; ++d) {
        const std::uint64_t h =
            mix64(config_.seed ^ (static_cast<std::uint64_t>(id) << 20) ^
                      static_cast<std::uint64_t>(d));
        const double u = static_cast<double>(h >> 11) / 9007199254740992.0;
        if (u < config_.tower_churn_per_day) ++epoch;
      }
    }
    if (event && day >= config_.tower_churn_event_day) {
      const std::uint64_t h = mix64(
          config_.seed ^ 0xabcdef ^ (static_cast<std::uint64_t>(id) << 20));
      const double u = static_cast<double>(h >> 11) / 9007199254740992.0;
      if (u < config_.tower_churn_event_fraction) ++epoch;
    }
    id += static_cast<CellId>(epoch) * 1000000;
  }
  return fingerprint;
}

AnnotatedTrip World::build_trip(const BusRoute& route, const BusRun& run,
                                int board, int alight, std::int32_t participant,
                                Rng& rng, const EventChannel* channel) const {
  return build_trip_from_legs({TripLeg{&route, &run, board, alight}},
                              participant, rng, channel);
}

AnnotatedTrip World::build_trip_from_legs(const std::vector<TripLeg>& legs,
                                          std::int32_t participant, Rng& rng,
                                          const EventChannel* channel) const {
  if (legs.empty()) {
    throw std::invalid_argument("build_trip_from_legs: no legs");
  }
  const EventChannel& beeps_channel = channel ? *channel : event_channel_;
  struct BeepContext {
    SimTime time;
    Point position;
    StopId true_stop;
  };
  std::vector<BeepContext> beeps;
  for (const TripLeg& leg : legs) {
    const BusRoute& route = *leg.route;
    const BusRun& run = *leg.run;
    if (leg.board < 0 || leg.alight <= leg.board ||
        leg.alight >= static_cast<int>(run.visits.size())) {
      throw std::invalid_argument("build_trip_from_legs: invalid stop indices");
    }
    for (int k = leg.board; k <= leg.alight; ++k) {
      const StopVisit& visit = run.visits[static_cast<std::size_t>(k)];
      if (!visit.served) continue;
      const double arc = route.stop_arc(k);
      const Point bus_pos = route.path().point_at(arc);
      for (const TapEvent& tap : visit.taps) {
        if (beeps_channel.delivered(rng)) {
          beeps.push_back(BeepContext{tap.time, bus_pos, visit.stop});
        }
      }
    }
    // Spurious detections while the bus is moving (sound-alike noises).
    if (!run.trajectory.empty()) {
      const int spurious = beeps_channel.spurious_count(rng);
      const SimTime t0 =
          run.visits[static_cast<std::size_t>(leg.board)].departure;
      const SimTime t1 =
          run.visits[static_cast<std::size_t>(leg.alight)].arrival;
      for (int s = 0; s < spurious && t1 > t0; ++s) {
        const SimTime t = beeps_channel.spurious_time(t0, t1, rng);
        const Point pos = route.path().point_at(run.arc_at(t));
        beeps.push_back(BeepContext{t, pos, kInvalidStop});
      }
    }
  }
  std::sort(beeps.begin(), beeps.end(),
            [](const BeepContext& a, const BeepContext& b) {
              return a.time < b.time;
            });

  // Feed the beeps through the real phone-side trip recorder.
  std::size_t cursor = 0;
  std::vector<StopId> scanned_stops;  // true stop per executed scan, in order
  TripRecorder recorder(
      config_.recorder, participant,
      [&](SimTime t) {
        const BeepContext& ctx = beeps[cursor];
        scanned_stops.push_back(ctx.true_stop);
        return apply_churn(scanner_.scan_fingerprint(*radio_, ctx.position, rng,
                                                     /*in_bus=*/true),
                           t);
      },
      [&](SimTime /*t*/) {
        return accel_model_.sample_variance(VehicleClass::kBus, rng);
      });

  std::vector<TripUpload> uploads;
  for (cursor = 0; cursor < beeps.size(); ++cursor) {
    if (auto done = recorder.on_beep(beeps[cursor].time)) {
      uploads.push_back(std::move(*done));
    }
  }
  if (auto done = recorder.flush()) uploads.push_back(std::move(*done));

  // Align ground-truth stop ids with the uploaded samples: uploads consume
  // the scan history in order.
  std::deque<StopId> history(scanned_stops.begin(), scanned_stops.end());
  AnnotatedTrip best;
  for (TripUpload& up : uploads) {
    TripGroundTruth truth;
    truth.route_id = legs.front().route->id();
    truth.board_stop_index = legs.front().board;
    truth.alight_stop_index = legs.back().alight;
    for (const TripLeg& leg : legs) truth.leg_routes.push_back(leg.route->id());
    for (std::size_t i = 0; i < up.samples.size(); ++i) {
      truth.sample_stops.push_back(history.front());
      history.pop_front();
    }
    if (up.samples.size() > best.upload.samples.size()) {
      best.upload = std::move(up);
      best.truth = std::move(truth);
    }
  }
  return best;
}

std::pair<int, int> World::find_transfer_stops(const BusRoute& a,
                                               const BusRoute& b) const {
  double best_dist = std::numeric_limits<double>::infinity();
  std::pair<int, int> best{-1, -1};
  // Leave at least two stops of travel on each side of the transfer.
  for (int i = 2; i + 1 < static_cast<int>(a.stop_count()); ++i) {
    const Point pa = city_->stop(a.stops()[static_cast<std::size_t>(i)].stop).position;
    for (int j = 1; j + 2 < static_cast<int>(b.stop_count()); ++j) {
      const Point pb =
          city_->stop(b.stops()[static_cast<std::size_t>(j)].stop).position;
      const double d = distance(pa, pb);
      if (d < best_dist) {
        best_dist = d;
        best = {i, j};
      }
    }
  }
  return best;
}

AnnotatedTrip World::simulate_transfer_trip(const BusRoute& first, int board_a,
                                            int alight_a, const BusRoute& second,
                                            int board_b, int alight_b,
                                            SimTime first_depart,
                                            Rng& rng) const {
  const std::map<int, int> board_map_a{{board_a, 1}};
  const std::map<int, int> alight_map_a{{alight_a, 1}};
  const BusRun run_a =
      bus_sim_->simulate_run(first, first_depart, board_map_a, alight_map_a,
                             config_.headway_s, rng, /*record_trajectory=*/true);
  const SimTime transfer_done =
      run_a.visits[static_cast<std::size_t>(alight_a)].departure;

  // Timetable the second bus so it reaches the transfer stop a few minutes
  // after the rider — comfortably inside the recorder's 10-minute timeout.
  const double eta_to_board = second.stop_arc(board_b) / kmh_to_ms(22.0);
  SimTime second_depart = transfer_done + 4.0 * kMinute - eta_to_board;
  const std::map<int, int> board_map_b{{board_b, 1}};
  const std::map<int, int> alight_map_b{{alight_b, 1}};
  BusRun run_b;
  for (int attempt = 0; attempt < 6; ++attempt) {
    run_b = bus_sim_->simulate_run(second, second_depart, board_map_b,
                                   alight_map_b, config_.headway_s, rng,
                                   /*record_trajectory=*/true);
    const SimTime pickup =
        run_b.visits[static_cast<std::size_t>(board_b)].arrival;
    if (pickup > transfer_done + 30.0 &&
        pickup < transfer_done + config_.recorder.trip_timeout_s - 60.0) {
      break;
    }
    // Too early or too late: shift the departure toward the target window.
    second_depart += (transfer_done + 4.0 * kMinute) - pickup;
  }
  return build_trip_from_legs(
      {TripLeg{&first, &run_a, board_a, alight_a},
       TripLeg{&second, &run_b, board_b, alight_b}},
      /*participant=*/0, rng);
}

void World::TripSpecStats::export_to(MetricsRegistry& registry) const {
  registry.counter("trafficsim.specs.requested").add(requested);
  registry.counter("trafficsim.specs.emitted").add(emitted);
  registry.counter("trafficsim.specs.dropped").add(dropped_no_route);
}

std::vector<World::TripSpec> World::make_trip_specs(int day, std::size_t count,
                                                    std::uint64_t seed,
                                                    TripSpecStats* stats) const {
  std::vector<TripSpec> specs;
  if (stats) stats->requested += count;
  if (city_->routes().empty()) {
    if (stats) stats->dropped_no_route += count;
    return specs;
  }
  specs.reserve(count);
  const SimTime day0 = at_clock(day, 0);
  for (std::size_t i = 0; i < count; ++i) {
    // Each spec from its own substream: the workload for (seed, i) never
    // depends on how many specs were requested.
    Rng rng = Rng::stream(seed, i);
    TripSpec spec;
    for (int tries = 0; tries < 32; ++tries) {
      const auto route_idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(city_->routes().size()) - 1));
      const BusRoute& route = city_->routes()[route_idx];
      const int n_stops = static_cast<int>(route.stop_count());
      if (n_stops < 4) continue;
      spec.route = route.id();
      spec.board = rng.uniform_int(0, n_stops - 3);
      const int ride = 2 + rng.poisson(5.0);
      spec.alight = std::min(spec.board + ride, n_stops - 1);
      break;
    }
    // Every retry drew a route too short to ride: drop the spec rather
    // than hand simulate_trips an invalid route id — but never silently,
    // the caller can see the loss in `stats`.
    if (spec.route == kInvalidRoute) {
      if (stats) ++stats->dropped_no_route;
      continue;
    }
    spec.depart =
        day0 + rng.uniform(config_.service_start_h, config_.service_end_h - 0.5) *
                   kHour;
    specs.push_back(spec);
  }
  if (stats) stats->emitted += specs.size();
  return specs;
}

std::vector<AnnotatedTrip> World::simulate_trips(
    const std::vector<TripSpec>& specs, std::uint64_t seed,
    ThreadPool* pool) const {
  std::vector<AnnotatedTrip> trips(specs.size());
  const auto simulate_one = [&](std::size_t i) {
    const TripSpec& spec = specs[i];
    Rng rng = Rng::stream(seed, i);
    trips[i] = simulate_single_trip(city_->route(spec.route), spec.board,
                                    spec.alight, spec.depart, rng);
  };
  if (pool) {
    pool->parallel_for(specs.size(), simulate_one);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) simulate_one(i);
  }
  return trips;
}

std::vector<AnnotatedTrip> World::simulate_driver_day(int day, Rng& rng) const {
  std::vector<AnnotatedTrip> trips;
  for (const BusRoute& route : city_->routes()) {
    SimTime depart = at_clock(day, 0) + config_.service_start_h * kHour +
                     rng.uniform(0.0, 120.0);
    const SimTime end = at_clock(day, 0) + config_.service_end_h * kHour;
    const int last = static_cast<int>(route.stop_count()) - 1;
    while (depart < end) {
      AnnotatedTrip trip = simulate_single_trip(route, 0, last, depart, rng);
      if (!trip.upload.empty()) trips.push_back(std::move(trip));
      depart += config_.headway_s + rng.uniform(-60.0, 60.0);
    }
  }
  return trips;
}

AnnotatedTrip World::simulate_single_trip(const BusRoute& route, int board,
                                          int alight, SimTime bus_depart,
                                          Rng& rng, std::int32_t participant,
                                          const EventChannel* channel) const {
  const std::map<int, int> boarders{{board, 1}};
  const std::map<int, int> alighters{{alight, 1}};
  const BusRun run =
      bus_sim_->simulate_run(route, bus_depart, boarders, alighters,
                             config_.headway_s, rng, /*record_trajectory=*/true);
  return build_trip(route, run, board, alight, participant, rng, channel);
}

World::DayResult World::simulate_day(int day, double intensity, Rng& rng) const {
  DayResult result;

  // Departure timetable per directed route.
  struct PlannedRun {
    RouteId route;
    SimTime depart;
    std::map<int, int> extra_boarders;
    std::map<int, int> extra_alighters;
    std::vector<std::tuple<std::int32_t, int, int>> riders;  // (pid, board, alight)
  };
  std::vector<std::vector<PlannedRun>> timetable(city_->routes().size());
  for (const BusRoute& route : city_->routes()) {
    SimTime t = at_clock(day, 0) + config_.service_start_h * kHour +
                rng.uniform(0.0, 120.0);
    const SimTime end = at_clock(day, 0) + config_.service_end_h * kHour;
    while (t < end) {
      timetable[static_cast<std::size_t>(route.id())].push_back(
          PlannedRun{route.id(), t, {}, {}, {}});
      t += config_.headway_s + rng.uniform(-60.0, 60.0);
    }
  }

  // Participant trip plans, assigned to timetabled runs.
  const double max_factor = config_.demand.peak_multiplier + 0.1;
  for (int p = 0; p < config_.participant_count; ++p) {
    const int trips =
        rng.poisson(config_.trips_per_participant_per_day * intensity);
    for (int k = 0; k < trips; ++k) {
      const auto route_idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(city_->routes().size()) - 1));
      const BusRoute& route = city_->routes()[route_idx];
      auto& runs = timetable[route_idx];
      if (runs.empty()) continue;
      const int n_stops = static_cast<int>(route.stop_count());
      if (n_stops < 4) continue;
      const int board = rng.uniform_int(0, n_stops - 3);
      const int ride = 2 + rng.poisson(5.0);
      const int alight = std::min(board + ride, n_stops - 1);
      // Desired start hour, biased toward commute peaks by rejection.
      double h = 0.0;
      for (int tries = 0; tries < 32; ++tries) {
        h = rng.uniform(config_.service_start_h, config_.service_end_h - 0.5);
        if (rng.uniform(0.0, max_factor) <=
            demand_->time_factor(at_clock(day, 0) + h * kHour)) {
          break;
        }
      }
      const SimTime desired = at_clock(day, 0) + h * kHour;
      // Approximate bus progress at 22 km/h commercial speed to pick the run
      // whose arrival at the boarding stop is soonest after `desired`.
      const double eta_s = route.stop_arc(board) / kmh_to_ms(22.0);
      std::size_t chosen = runs.size() - 1;
      for (std::size_t r = 0; r < runs.size(); ++r) {
        if (runs[r].depart + eta_s >= desired) {
          chosen = r;
          break;
        }
      }
      PlannedRun& run = runs[chosen];
      run.extra_boarders[board] += 1;
      run.extra_alighters[alight] += 1;
      run.riders.emplace_back(p, board, alight);
    }
  }

  // Simulate every run; build trips for runs carrying participants.
  for (const BusRoute& route : city_->routes()) {
    for (PlannedRun& planned : timetable[static_cast<std::size_t>(route.id())]) {
      const bool has_riders = !planned.riders.empty();
      BusRun run = bus_sim_->simulate_run(route, planned.depart,
                                          planned.extra_boarders,
                                          planned.extra_alighters,
                                          config_.headway_s, rng, has_riders);
      for (const auto& [pid, board, alight] : planned.riders) {
        AnnotatedTrip trip = build_trip(route, run, board, alight, pid, rng);
        if (!trip.upload.empty()) result.trips.push_back(std::move(trip));
      }
      run.trajectory.clear();  // not needed downstream; keep memory bounded
      result.runs.push_back(std::move(run));
    }
  }
  return result;
}

std::vector<std::pair<SimTime, Point>> World::gps_trace(const BusRun& run,
                                                        double period_s,
                                                        Rng& rng) const {
  if (period_s <= 0.0) {
    throw std::invalid_argument("gps_trace: non-positive period");
  }
  const BusRoute& route = city_->route(run.route);
  const GpsModel gps;
  std::vector<std::pair<SimTime, Point>> fixes;
  for (SimTime t = run.depart_time; t <= run.end_time; t += period_s) {
    const Point true_pos = route.path().point_at(run.arc_at(t));
    fixes.emplace_back(t, gps.sample_fix(true_pos, GpsMode::kMobileOnBus, rng));
  }
  return fixes;
}

}  // namespace bussense
