// Ground-truth automobile traffic field.
//
// Defines the "real" car speed on every road link at every instant — the
// quantity the paper's system estimates and the LTA taxi feed samples. Each
// link gets a congestion profile: morning and evening Gaussian peak bumps
// whose depth depends on the road class (commuter-corridor links congest
// hard every morning, reproducing the paper's Figure 9 story), plus a few
// slow sinusoidal noise components with link-specific phases so no two
// links or days look identical.
#pragma once

#include <cstdint>
#include <vector>

#include "citynet/bus_route.h"
#include "citynet/road_network.h"
#include "common/sim_time.h"

namespace bussense {

struct TrafficFieldConfig {
  double morning_peak_h = 8.4;
  double evening_peak_h = 18.1;
  double morning_width_h = 1.0;
  double evening_width_h = 1.4;
  double max_congestion = 0.80;  ///< speed never drops below 20% of free
};

class TrafficField {
 public:
  TrafficField(const RoadNetwork& network, TrafficFieldConfig config,
               std::uint64_t seed);

  /// Congestion level of a link at time `t`, in [0, max_congestion];
  /// 0 = free flow.
  double congestion(SegmentId link, SimTime t) const;

  /// Ground-truth automobile speed on a link, km/h.
  double car_speed_kmh(SegmentId link, SimTime t) const;

  /// Harmonic-mean (travel-time-weighted) car speed over the route span
  /// [arc_a, arc_b] at time `t` — the ground truth for one inter-stop
  /// segment. Precondition: arc_a < arc_b.
  double mean_car_speed_kmh(const BusRoute& route, double arc_a, double arc_b,
                            SimTime t) const;

  const RoadNetwork& network() const { return *network_; }

 private:
  struct LinkProfile {
    double morning_amp = 0.0;
    double evening_amp = 0.0;
    double noise_amp[3] = {0, 0, 0};
    double noise_period_s[3] = {1, 1, 1};
    double noise_phase[3] = {0, 0, 0};
  };

  const RoadNetwork* network_;
  TrafficFieldConfig config_;
  std::vector<LinkProfile> profiles_;
};

}  // namespace bussense
