// World: the full simulated testbed, wired together.
//
// Owns the city, the cellular plant, the ground-truth traffic field, the
// demand model, the bus simulator, the taxi AVL feed and the participant
// population; produces bus runs and the annotated participant trips the
// backend server consumes. This is the substitute for the paper's
// Singapore deployment (DESIGN.md Section 2).
//
// Beep channel: day-scale simulation uses the *event-level* channel — each
// IC-card tap is delivered to nearby phones with a calibrated detection
// probability, plus a low rate of spurious beeps. The audio-level channel
// (dsp/audio_synth.h + dsp/beep_detector.h) validates that calibration in
// tests and the quickstart example.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cellular/deployment.h"
#include "cellular/radio_environment.h"
#include "cellular/scanner.h"
#include "citynet/city.h"
#include "citynet/city_generator.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sensing/accel_model.h"
#include "sensing/event_channel.h"
#include "sensing/trip.h"
#include "sensing/trip_recorder.h"
#include "trafficsim/bus_sim.h"
#include "trafficsim/demand.h"
#include "trafficsim/taxi_feed.h"
#include "trafficsim/traffic_field.h"

namespace bussense {

class MetricsRegistry;  // obs/metrics.h

struct WorldConfig {
  CityConfig city;
  DeploymentConfig towers;
  PropagationConfig propagation;
  ScannerConfig scanner;
  TrafficFieldConfig traffic;
  DemandConfig demand;
  BusSimConfig bus;
  TaxiFeedConfig taxi;
  TripRecorderConfig recorder;
  AccelModelConfig accel;

  double headway_s = 600.0;       ///< bus departure interval per route
  double service_start_h = 6.5;
  double service_end_h = 21.0;
  int participant_count = 22;     ///< the paper's population
  double trips_per_participant_per_day = 4.0;
  double beep_detection_prob = 0.98;  ///< event-level channel calibration
  double false_beeps_per_trip = 0.06; ///< spurious detections mid-ride
  /// Fraction of cell towers renumbered per day (network maintenance /
  /// re-sectoring). Non-zero churn slowly invalidates a static fingerprint
  /// database — the scenario the online DB updater defends against.
  double tower_churn_per_day = 0.0;
  /// One-off maintenance event: on `tower_churn_event_day` the operator
  /// renumbers `tower_churn_event_fraction` of all towers at once.
  int tower_churn_event_day = -1;
  double tower_churn_event_fraction = 0.0;
  std::uint64_t seed = 42;
};

class World {
 public:
  explicit World(WorldConfig config = {});

  const WorldConfig& config() const { return config_; }
  const City& city() const { return *city_; }
  const RadioEnvironment& radio() const { return *radio_; }
  const CellScanner& scanner() const { return scanner_; }
  const TrafficField& traffic() const { return *traffic_; }
  const DemandModel& demand() const { return *demand_; }
  const TaxiFeed& taxis() const { return *taxis_; }
  const BusSimulator& buses() const { return *bus_sim_; }
  const AccelModel& accel() const { return accel_model_; }
  /// The config-derived event-level beep channel used for every simulated
  /// trip. LOD runs substitute a calibrated channel per tier.
  const EventChannel& event_channel() const { return event_channel_; }

  /// One full service day of every directed route, with participant trips.
  /// `intensity` scales trips per participant (1 = normal, ~3 = the paper's
  /// incentivised intensive phase).
  struct DayResult {
    std::vector<BusRun> runs;
    std::vector<AnnotatedTrip> trips;
  };
  DayResult simulate_day(int day, double intensity, Rng& rng) const;

  /// A single annotated participant trip riding `route` from stop index
  /// `board` to `alight` on a bus departing the terminal at `bus_depart`.
  /// `channel` overrides the beep-delivery model (null = the world's own);
  /// the bus-run and sensing draw sequence is channel-independent up to the
  /// channel's own draws, so runs with identical channel parameters are
  /// bit-identical whichever instance carries them.
  AnnotatedTrip simulate_single_trip(const BusRoute& route, int board,
                                     int alight, SimTime bus_depart, Rng& rng,
                                     std::int32_t participant = 0,
                                     const EventChannel* channel = nullptr) const;

  /// A transfer trip: ride `first` from `board_a` to `alight_a`, walk to the
  /// nearby `board_b` stop of `second`, and continue to `alight_b`. The
  /// second bus is timetabled to pick the rider up within the recorder's
  /// trip timeout, so the phone uploads one concatenated trip — the
  /// multi-route case of the paper's Eq. 2.
  AnnotatedTrip simulate_transfer_trip(const BusRoute& first, int board_a,
                                       int alight_a, const BusRoute& second,
                                       int board_b, int alight_b,
                                       SimTime first_depart, Rng& rng) const;

  /// Stop-index pair (i on `a`, j on `b`, with usable upstream/downstream
  /// spans) whose stops are closest — a natural transfer point.
  std::pair<int, int> find_transfer_stops(const BusRoute& a,
                                          const BusRoute& b) const;

  /// One trip per bus run over a whole day — the paper's "encourage the bus
  /// drivers to install our app to bootstrap the system" deployment mode.
  std::vector<AnnotatedTrip> simulate_driver_day(int day, Rng& rng) const;

  /// One independently simulated rider trip: ride `route` from stop index
  /// `board` to `alight` on a bus departing the terminal at `depart`.
  struct TripSpec {
    RouteId route = kInvalidRoute;
    int board = 0;
    int alight = 1;
    SimTime depart = 0.0;
  };

  /// Accounting for spec generation: the retry loop can exhaust its 32
  /// attempts in a degenerate city (every route shorter than 4 stops) and
  /// must then drop the spec. Large LOD runs assert dropped == 0 so spec
  /// loss is never silent.
  struct TripSpecStats {
    std::uint64_t requested = 0;
    std::uint64_t emitted = 0;
    std::uint64_t dropped_no_route = 0;  ///< all 32 retries hit short routes

    /// Adds the counts to `trafficsim.specs.{requested,emitted,dropped}`.
    void export_to(MetricsRegistry& registry) const;
  };

  /// A deterministic city-scale trip workload: `count` specs over the day's
  /// service window, each drawn from its own (seed, index) substream.
  /// `stats`, when non-null, accumulates generation accounting.
  std::vector<TripSpec> make_trip_specs(int day, std::size_t count,
                                        std::uint64_t seed,
                                        TripSpecStats* stats = nullptr) const;

  /// Simulates every spec, fanned out over `pool` (serial when null). Trip
  /// i is seeded by the order-independent substream (seed, i), so the
  /// result vector is bit-identical at any thread count — including the
  /// serial run. This is the front-end counterpart of the backend's
  /// concurrent ingestion path.
  std::vector<AnnotatedTrip> simulate_trips(const std::vector<TripSpec>& specs,
                                            std::uint64_t seed,
                                            ThreadPool* pool = nullptr) const;

  /// One survey scan at a stop (used to build/evaluate fingerprint DBs).
  /// `when` determines which tower-churn epoch applies.
  Fingerprint scan_stop(StopId stop, Rng& rng, bool in_bus = false,
                        SimTime when = 0.0) const;

  /// Rewrites cell ids for towers that have churned by time `when`.
  Fingerprint apply_churn(Fingerprint fingerprint, SimTime when) const;

  /// GPS fixes along a recorded bus run every `period_s` (baseline input).
  std::vector<std::pair<SimTime, Point>> gps_trace(const BusRun& run,
                                                   double period_s,
                                                   Rng& rng) const;

  /// One bus leg of a (possibly multi-leg) participant trip.
  struct TripLeg {
    const BusRoute* route = nullptr;
    const BusRun* run = nullptr;
    int board = -1;
    int alight = -1;
  };

 private:
  /// Builds the annotated trip of one rider on `run` (visits board..alight).
  AnnotatedTrip build_trip(const BusRoute& route, const BusRun& run, int board,
                           int alight, std::int32_t participant, Rng& rng,
                           const EventChannel* channel = nullptr) const;

  /// Builds the annotated trip across several consecutive bus legs.
  AnnotatedTrip build_trip_from_legs(const std::vector<TripLeg>& legs,
                                     std::int32_t participant, Rng& rng,
                                     const EventChannel* channel = nullptr) const;

  WorldConfig config_;
  std::unique_ptr<City> city_;
  std::unique_ptr<RadioEnvironment> radio_;
  CellScanner scanner_;
  std::unique_ptr<TrafficField> traffic_;
  std::unique_ptr<DemandModel> demand_;
  std::unique_ptr<TaxiFeed> taxis_;
  std::unique_ptr<BusSimulator> bus_sim_;
  AccelModel accel_model_;
  EventChannel event_channel_;
};

}  // namespace bussense
