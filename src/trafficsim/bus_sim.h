// Kinematic bus simulation along a route.
//
// A bus cruises at a fraction of the ambient car speed (buses keep stricter
// limits and stop more — the physical source of the paper's BTT/ATT gap),
// capped at its own maximum, with bounded acceleration and braking. At each
// stop it draws waiting boarders from the demand model and alighters from
// the onboard load; if nobody boards or alights the stop is skipped (the
// paper's merged-segment case). Served stops produce IC-card tap events —
// the beeps that riders' phones hear.
#pragma once

#include <map>
#include <vector>

#include "citynet/city.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "trafficsim/demand.h"
#include "trafficsim/traffic_field.h"

namespace bussense {

struct BusSimConfig {
  double max_speed_kmh = 55.0;      ///< bus speed cap (stricter limits)
  /// Bus speed as a fraction of ambient car speed at free flow. Congestion
  /// hits buses harder than cars (no lane changes, blocked stops), so the
  /// factor degrades with the congestion level — this is what makes the
  /// regressed Eq. 3 coefficient b land in the paper's [0.3, 0.8] band.
  double base_speed_factor = 0.88;
  double congestion_sensitivity = 0.50;  ///< factor loss per unit congestion
  double min_speed_factor = 0.40;
  double min_speed_kmh = 5.0;       ///< crawl speed in the worst jam
  double accel_ms2 = 1.1;
  double decel_ms2 = 1.4;
  double base_dwell_s = 8.0;
  double per_boarder_s = 2.2;
  double per_alighter_s = 1.6;
  double tap_start_offset_s = 1.0;  ///< first tap after doors open
  double tap_interval_s = 1.1;      ///< spacing between consecutive taps
  double stop_decision_distance_m = 90.0;  ///< where serve/skip is decided
  double dt_s = 0.5;
};

struct TapEvent {
  SimTime time = 0.0;
  bool boarding = true;  ///< false = alighting tap-out
};

struct StopVisit {
  int stop_index = -1;
  StopId stop = kInvalidStop;
  SimTime arrival = 0.0;    ///< doors-open time (or pass-by time if skipped)
  SimTime departure = 0.0;  ///< doors-closed time (== arrival if skipped)
  int boarders = 0;
  int alighters = 0;
  bool served = false;
  std::vector<TapEvent> taps;
};

struct TrajectoryPoint {
  SimTime time = 0.0;
  double arc = 0.0;
};

struct BusRun {
  RouteId route = kInvalidRoute;
  SimTime depart_time = 0.0;
  SimTime end_time = 0.0;
  std::vector<StopVisit> visits;           ///< one per route stop, in order
  std::vector<TrajectoryPoint> trajectory; ///< ~1 s sampling, if recorded

  /// Arc position at time `t` by linear interpolation of the trajectory.
  /// Precondition: trajectory recorded and t within [depart_time, end_time].
  double arc_at(SimTime t) const;
};

class BusSimulator {
 public:
  BusSimulator(const City& city, const TrafficField& traffic,
               const DemandModel& demand, BusSimConfig config = {});

  /// Simulates one end-to-end run departing at `depart`.
  /// `extra_boarders` / `extra_alighters` map stop indices to participant
  /// riders that must board/alight there (their stops are always served).
  /// `headway_s` is the accumulation window for waiting passengers.
  BusRun simulate_run(const BusRoute& route, SimTime depart,
                      const std::map<int, int>& extra_boarders,
                      const std::map<int, int>& extra_alighters,
                      double headway_s, Rng& rng,
                      bool record_trajectory = false) const;

  const BusSimConfig& config() const { return config_; }

 private:
  const City* city_;
  const TrafficField* traffic_;
  const DemandModel* demand_;
  BusSimConfig config_;
};

}  // namespace bussense
