// Passenger demand model.
//
// Governs how many passengers board at each stop (Poisson arrivals whose
// rate follows a daily activity curve with commute peaks, scaled by a
// per-stop popularity factor) and how riders alight. Every boarding or
// alighting passenger taps an IC card, which is what the phones hear.
#pragma once

#include <cstdint>
#include <vector>

#include "citynet/types.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace bussense {

struct DemandConfig {
  double base_boarding_per_min = 0.22;  ///< per stop, off-peak daytime
  double peak_multiplier = 2.8;
  double night_multiplier = 0.35;
  double morning_peak_h = 8.3;
  double evening_peak_h = 18.2;
  double peak_width_h = 1.3;
  double alight_probability = 0.14;     ///< per onboard passenger per stop
  double popularity_sigma = 0.45;       ///< log-normal spread across stops
};

class DemandModel {
 public:
  DemandModel(DemandConfig config, std::size_t stop_count, std::uint64_t seed);

  /// Daily activity multiplier (also used to draw participant trip times).
  double time_factor(SimTime t) const;

  /// Mean boarding rate at a stop, passengers per second.
  double boarding_rate_per_s(StopId stop, SimTime t) const;

  /// Passengers waiting at a stop after `window_s` seconds of accumulation
  /// (the headway since the previous bus).
  int draw_boarders(StopId stop, SimTime t, double window_s, Rng& rng) const;

  double alight_probability() const { return config_.alight_probability; }

  const DemandConfig& config() const { return config_; }

 private:
  DemandConfig config_;
  std::vector<double> popularity_;  ///< per-stop multiplier
};

}  // namespace bussense
