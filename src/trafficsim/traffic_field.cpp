#include "trafficsim/traffic_field.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.h"

namespace bussense {

TrafficField::TrafficField(const RoadNetwork& network, TrafficFieldConfig config,
                           std::uint64_t seed)
    : network_(&network), config_(config) {
  Rng rng(seed);
  profiles_.reserve(network.size());
  for (const RoadLink& link : network.links()) {
    LinkProfile p;
    if (link.commuter_corridor) {
      // The paper's two mid-region roads with routine university<->station
      // shuttles every morning: deep, reliable morning congestion.
      p.morning_amp = rng.uniform(0.58, 0.72);
      p.evening_amp = rng.uniform(0.22, 0.38);
    } else {
      switch (link.road_class) {
        case RoadClass::kMajorArterial:
          p.morning_amp = rng.uniform(0.30, 0.45);
          p.evening_amp = rng.uniform(0.35, 0.50);
          break;
        case RoadClass::kArterial:
          p.morning_amp = rng.uniform(0.25, 0.40);
          p.evening_amp = rng.uniform(0.28, 0.45);
          break;
        case RoadClass::kLocal:
          p.morning_amp = rng.uniform(0.10, 0.25);
          p.evening_amp = rng.uniform(0.12, 0.30);
          break;
      }
    }
    for (int k = 0; k < 3; ++k) {
      p.noise_amp[k] = rng.uniform(0.015, 0.055);
      // Periods chosen not to divide a day, so consecutive days differ.
      p.noise_period_s[k] = rng.uniform(2300.0, 7900.0);
      p.noise_phase[k] = rng.uniform(0.0, 2.0 * std::numbers::pi);
    }
    profiles_.push_back(p);
  }
}

double TrafficField::congestion(SegmentId link, SimTime t) const {
  const LinkProfile& p = profiles_.at(static_cast<std::size_t>(link));
  const double h = time_of_day(t) / kHour;
  auto bump = [](double h, double centre, double width) {
    const double z = (h - centre) / width;
    return std::exp(-0.5 * z * z);
  };
  double c = p.morning_amp *
                 bump(h, config_.morning_peak_h, config_.morning_width_h) +
             p.evening_amp *
                 bump(h, config_.evening_peak_h, config_.evening_width_h);
  for (int k = 0; k < 3; ++k) {
    c += p.noise_amp[k] *
         std::sin(2.0 * std::numbers::pi * t / p.noise_period_s[k] +
                  p.noise_phase[k]);
  }
  return std::clamp(c, 0.0, config_.max_congestion);
}

double TrafficField::car_speed_kmh(SegmentId link, SimTime t) const {
  const RoadLink& l = network_->link(link);
  return l.free_speed_kmh * (1.0 - congestion(link, t));
}

double TrafficField::mean_car_speed_kmh(const BusRoute& route, double arc_a,
                                        double arc_b, SimTime t) const {
  const auto parts = route.link_lengths_between(arc_a, arc_b);
  double total_len = 0.0;
  double total_time_h = 0.0;
  for (const auto& [link, len_m] : parts) {
    const double v = car_speed_kmh(link, t);
    total_len += len_m;
    total_time_h += (len_m / 1000.0) / std::max(v, 1.0);
  }
  if (total_time_h <= 0.0) return 0.0;
  return (total_len / 1000.0) / total_time_h;
}

}  // namespace bussense
