// Tiered-fidelity metropolis simulation (DESIGN.md §15).
//
// World tops out at the paper's 22-participant testbed because every trip
// pays for the full sensing stack. LodWorld scales the same city to a
// million riders by borrowing level-of-detail tiers from game-engine
// traffic simulation: a small sampled cohort runs the *whole* pipeline
// (waveform audio → beep detector → trip recorder), a mid tier replaces
// the waveform with the calibrated event-level beep channel, and the long
// tail is synthesized in closed form straight from the traffic field.
//
//   Focus   — full audio-DSP sensing path, exactly today's pipeline.
//   Event   — calibrated beep-event channel over the same bus kinematics.
//   OnRails — closed-form trips: per-link speeds from the traffic field,
//             demand-driven dwells, uploads emitted directly.
//
// Determinism: tier assignment, per-rider trip plans and per-trip
// simulation all run on order-independent Rng::stream substreams keyed by
// (seed, rider, day, trip), so a simulated day is bit-identical at any
// thread count, and changing one tier's population cannot perturb another
// tier's riders (property-tested in tests/test_lod_world.cpp).
//
// Demand shape: a weekly load curve — weekday commute peaks from the
// demand model, flattened/scaled weekends, and depot pulses at service
// start and end — drives both how many trips each rider takes and when
// they depart, so the ingest tier sees realistic rush-hour bursts.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/thread_pool.h"
#include "dsp/audio_synth.h"
#include "dsp/beep_detector.h"
#include "sensing/event_channel.h"
#include "sensing/trip.h"
#include "trafficsim/world.h"

namespace bussense {

enum class FidelityTier : std::uint8_t {
  kFocus = 0,
  kEvent = 1,
  kOnRails = 2,
};

const char* to_string(FidelityTier tier);

struct LodConfig {
  /// Target fraction of riders eligible for each non-default tier; the
  /// caps below bound the actual cohort sizes.
  double focus_fraction = 0.002;
  double event_fraction = 0.05;
  /// Hard per-tier population caps. Candidates beyond the cap are demoted
  /// deterministically (smallest tier draws win, ties by rider id).
  std::size_t focus_cap = 64;
  std::size_t event_cap = 4096;

  /// Weekday mean trips per rider per day (metropolis riders mostly don't
  /// ride the bus on any given day; 0.1 ≈ one bus trip per rider-fortnight).
  double trips_per_rider_per_day = 0.10;
  /// Weekend volume scale; weekend load curves are also flattened.
  double weekend_factor = 0.55;
  /// Depot pulses: extra load factor peaking at service start/end as buses
  /// surge out of / back into depots.
  double depot_pulse_boost = 0.9;
  double depot_pulse_width_min = 25.0;
  /// Delay from a trip's last sample to its upload hitting the ingest tier.
  double upload_lag_s = 30.0;

  /// Focus tier: the audio environment and detector the sampled cohort runs.
  AudioEnvironmentConfig audio;
  BeepDetectorConfig detector;
  /// Event + OnRails tiers: the calibrated beep-delivery error model.
  EventChannelConfig event;

  std::uint64_t seed = 2026;

  /// Throws std::invalid_argument on nonsense (fractions outside [0, 1],
  /// non-positive rates).
  void validate() const;
};

/// Tier population accounting, fixed at construction.
struct LodCensus {
  std::size_t riders = 0;
  std::size_t focus = 0;
  std::size_t event = 0;
  std::size_t on_rails = 0;
  /// Candidates that drew into a tier but were demoted by its cap.
  std::size_t focus_demoted = 0;
  std::size_t event_demoted = 0;
};

/// One simulated rider trip, ready for ingest replay.
struct LodTrip {
  std::int64_t rider = 0;
  int day = 0;
  int trip_index = 0;           ///< within (rider, day)
  FidelityTier tier = FidelityTier::kOnRails;
  AnnotatedTrip trip;
  SimTime arrival = 0.0;        ///< when the upload reaches the ingest tier
};

/// Generation-loss accounting across simulate_* calls. Every planned trip
/// is either emitted or counted here — nothing is dropped silently.
struct LodLoss {
  std::uint64_t planned = 0;           ///< trips drawn by rider plans
  std::uint64_t dropped_no_route = 0;  ///< 32 route retries all too short
  std::uint64_t thin = 0;              ///< < min_samples after sensing
  std::uint64_t emitted = 0;
};

class LodWorld {
 public:
  /// `world` must outlive the LodWorld. Riders are 0..riders-1; rider id
  /// doubles as the upload participant id.
  LodWorld(const World& world, std::int64_t riders, LodConfig config = {});

  const World& world() const { return *world_; }
  const LodConfig& config() const { return config_; }
  std::int64_t riders() const { return riders_; }
  const LodCensus& census() const { return census_; }
  const EventChannel& event_channel() const { return event_channel_; }

  FidelityTier tier_of(std::int64_t rider) const {
    return static_cast<FidelityTier>(tiers_[static_cast<std::size_t>(rider)]);
  }

  /// Simulated days 0–4 are weekdays, 5–6 the weekend (repeating weekly).
  static bool is_weekend(int day) { return day % 7 >= 5; }

  /// The weekly demand multiplier at `t`: weekday commute peaks, flattened
  /// and scaled weekends, depot pulses at service start/end. Trip counts
  /// and departure times are both shaped by this curve.
  double load_factor(SimTime t) const;
  /// Supremum of load_factor over the week (for rejection sampling).
  double max_load_factor() const { return max_load_factor_; }

  /// Trips rider takes on `day` — a pure function of (seed, rider, day),
  /// independent of tier, so re-simulating a rider in another tier replays
  /// the same trip plan.
  int trip_count(std::int64_t rider, int day) const;

  /// Simulates every rider's trips for one day, fanned out over `pool`
  /// (serial when null). Bit-identical at any thread count; the result is
  /// sorted by (arrival, rider, trip_index) — the ingest replay order.
  std::vector<LodTrip> simulate_day(int day, ThreadPool* pool = nullptr) const {
    return simulate_day_range(day, 0, riders_, pool);
  }
  std::vector<LodTrip> simulate_day_range(int day, std::int64_t rider_begin,
                                          std::int64_t rider_end,
                                          ThreadPool* pool = nullptr) const;

  /// One rider's trips on one day, optionally forced through `tier`
  /// instead of the rider's assigned tier. The bus-run and trip-plan
  /// substreams are tier-independent, so the same rider re-simulated in
  /// Focus vs Event rides the *same* buses — only the sensing channel
  /// differs (the cross-tier accuracy property).
  std::vector<LodTrip> simulate_rider_day(
      std::int64_t rider, int day,
      std::optional<FidelityTier> tier = std::nullopt) const;

  /// Loss counters accumulated by simulate_* calls (atomic; totals are
  /// deterministic because the dropped set is).
  LodLoss loss() const;
  /// Exports loss counters as `trafficsim.lod.*` metrics.
  void export_loss(MetricsRegistry& registry) const;

  /// Canonical text serialization of a trip stream with %.17g doubles —
  /// byte-for-byte comparable across runs (save_trips' default precision
  /// is lossy at week timescales).
  static void write_stream(std::ostream& out, const std::vector<LodTrip>& trips);
  /// FNV-1a digest over the same content (raw double bits), usable at
  /// scales where materializing the text stream would be wasteful.
  static std::uint64_t stream_digest(const std::vector<LodTrip>& trips,
                                     std::uint64_t seed = 0xcbf29ce484222325ULL);

 private:
  void assign_tiers();
  Rng plan_rng(std::int64_t rider, int day) const;
  Rng trip_rng(std::int64_t rider, int day, int trip_index) const;

  struct TripPlan {
    RouteId route = kInvalidRoute;
    int board = 0;
    int alight = 1;
    SimTime depart = 0.0;
  };
  /// Draws the rider's full day plan; invalid specs keep kInvalidRoute.
  std::vector<TripPlan> plan_day(std::int64_t rider, int day) const;

  AnnotatedTrip focus_trip(const BusRoute& route, const BusRun& run, int board,
                           int alight, std::int32_t participant,
                           Rng& rng) const;
  AnnotatedTrip onrails_trip(const BusRoute& route, int board, int alight,
                             SimTime depart, std::int32_t participant,
                             Rng& rng) const;

  const World* world_;
  std::int64_t riders_;
  LodConfig config_;
  EventChannel event_channel_;
  std::vector<std::uint8_t> tiers_;
  LodCensus census_;
  double max_load_factor_ = 1.0;
  mutable std::atomic<std::uint64_t> planned_{0};
  mutable std::atomic<std::uint64_t> dropped_no_route_{0};
  mutable std::atomic<std::uint64_t> thin_{0};
  mutable std::atomic<std::uint64_t> emitted_{0};
};

}  // namespace bussense
