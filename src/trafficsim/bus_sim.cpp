#include "trafficsim/bus_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bussense {

double BusRun::arc_at(SimTime t) const {
  if (trajectory.empty()) {
    throw std::logic_error("BusRun::arc_at: trajectory not recorded");
  }
  if (t <= trajectory.front().time) return trajectory.front().arc;
  if (t >= trajectory.back().time) return trajectory.back().arc;
  const auto it = std::lower_bound(
      trajectory.begin(), trajectory.end(), t,
      [](const TrajectoryPoint& p, SimTime value) { return p.time < value; });
  const TrajectoryPoint& hi = *it;
  const TrajectoryPoint& lo = *(it - 1);
  const double span = hi.time - lo.time;
  const double f = span > 0.0 ? (t - lo.time) / span : 0.0;
  return lo.arc + f * (hi.arc - lo.arc);
}

BusSimulator::BusSimulator(const City& city, const TrafficField& traffic,
                           const DemandModel& demand, BusSimConfig config)
    : city_(&city), traffic_(&traffic), demand_(&demand), config_(config) {}

BusRun BusSimulator::simulate_run(const BusRoute& route, SimTime depart,
                                  const std::map<int, int>& extra_boarders,
                                  const std::map<int, int>& extra_alighters,
                                  double headway_s, Rng& rng,
                                  bool record_trajectory) const {
  BusRun run;
  run.route = route.id();
  run.depart_time = depart;
  run.visits.reserve(route.stop_count());

  SimTime t = depart;
  double arc = 0.0;
  double v = 0.0;  // m/s
  int onboard_background = 0;
  double last_traj_sample = -1e18;

  auto record = [&](bool force = false) {
    if (!record_trajectory) return;
    if (force || t - last_traj_sample >= 1.0) {
      run.trajectory.push_back(TrajectoryPoint{t, arc});
      last_traj_sample = t;
    }
  };
  record(true);

  const double accel = config_.accel_ms2 * config_.dt_s;
  const double decel = config_.decel_ms2 * config_.dt_s;

  for (int k = 0; k < static_cast<int>(route.stop_count()); ++k) {
    const RouteStop& rs = route.stops()[static_cast<std::size_t>(k)];
    const bool final_stop = k + 1 == static_cast<int>(route.stop_count());

    // Serve/skip decision state for this approach.
    bool decided = false;
    bool serve = false;
    int boarders = 0;
    int alighters = 0;

    // Drive until the stop arc is reached.
    while (arc < rs.arc_pos - 0.25) {
      const double dist_left = rs.arc_pos - arc;
      if (!decided && dist_left <= config_.stop_decision_distance_m) {
        decided = true;
        boarders = demand_->draw_boarders(rs.stop, t, headway_s, rng);
        if (const auto it = extra_boarders.find(k); it != extra_boarders.end()) {
          boarders += it->second;
        }
        int forced_alight = 0;
        if (const auto it = extra_alighters.find(k); it != extra_alighters.end()) {
          forced_alight = it->second;
        }
        if (final_stop) {
          alighters = onboard_background + forced_alight;
        } else {
          for (int p = 0; p < onboard_background; ++p) {
            if (rng.bernoulli(demand_->alight_probability())) ++alighters;
          }
          alighters += forced_alight;
        }
        serve = boarders > 0 || alighters > 0;
      }

      const SegmentId link = route.link_at(arc);
      const double car_kmh = traffic_->car_speed_kmh(link, t);
      const double factor =
          std::max(config_.min_speed_factor,
                   config_.base_speed_factor -
                       config_.congestion_sensitivity *
                           traffic_->congestion(link, t));
      double target_kmh = std::clamp(car_kmh * factor, config_.min_speed_kmh,
                                     config_.max_speed_kmh);
      double target = kmh_to_ms(target_kmh);
      if (decided && serve) {
        // Brake so that v^2 <= 2 a d at every point of the approach.
        const double brake_limit =
            std::sqrt(std::max(0.0, 2.0 * config_.decel_ms2 * dist_left));
        target = std::min(target, brake_limit);
      }
      v = std::clamp(target, v - decel, v + accel);
      v = std::max(v, 0.3);  // never fully stalls between stops
      arc += v * config_.dt_s;
      t += config_.dt_s;
      record();
    }
    // The integration step may overshoot a skipped stop slightly; never move
    // the bus backwards.
    arc = std::max(arc, rs.arc_pos);

    StopVisit visit;
    visit.stop_index = k;
    visit.stop = rs.stop;
    visit.arrival = t;
    visit.boarders = boarders;
    visit.alighters = alighters;
    visit.served = serve;
    if (serve) {
      v = 0.0;
      record(true);
      // Alighting passengers tap out first, then boarders tap in.
      SimTime tap = t + config_.tap_start_offset_s;
      for (int a = 0; a < visit.alighters; ++a) {
        visit.taps.push_back(TapEvent{tap + rng.uniform(-0.2, 0.2), false});
        tap += config_.tap_interval_s;
      }
      for (int b = 0; b < visit.boarders; ++b) {
        visit.taps.push_back(TapEvent{tap + rng.uniform(-0.2, 0.2), true});
        tap += config_.tap_interval_s;
      }
      const double dwell =
          std::max(config_.base_dwell_s,
                   config_.tap_start_offset_s +
                       config_.per_boarder_s * visit.boarders +
                       config_.per_alighter_s * visit.alighters);
      t += dwell;
      visit.departure = t;
      onboard_background += visit.boarders;
      onboard_background -= visit.alighters;
      onboard_background = std::max(onboard_background, 0);
      record(true);
    } else {
      visit.departure = t;
    }
    run.visits.push_back(std::move(visit));
  }

  run.end_time = t;
  record(true);
  return run;
}

}  // namespace bussense
