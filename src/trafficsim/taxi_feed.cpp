#include "trafficsim/taxi_feed.h"

#include <algorithm>
#include <cmath>

namespace bussense {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double hashed_normal(std::uint64_t h) {
  const std::uint64_t h1 = splitmix64(h);
  const std::uint64_t h2 = splitmix64(h1 ^ 0x6a09e667f3bcc909ULL);
  const double u1 = (static_cast<double>(h1 >> 11) + 0.5) / 9007199254740992.0;
  const double u2 = static_cast<double>(h2 >> 11) / 9007199254740992.0;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double hashed_uniform(std::uint64_t h) {
  return static_cast<double>(splitmix64(h) >> 11) / 9007199254740992.0;
}

}  // namespace

TaxiFeed::TaxiFeed(const TrafficField& traffic, TaxiFeedConfig config,
                   std::uint64_t seed)
    : traffic_(&traffic), config_(config), seed_(seed) {}

double TaxiFeed::window_noise_kmh(SegmentId link, std::int64_t window) const {
  std::uint64_t h = seed_;
  h = splitmix64(h ^ static_cast<std::uint64_t>(link));
  h = splitmix64(h ^ static_cast<std::uint64_t>(window) * 0x9e3779b97f4a7c15ULL);
  // Probe count varies per window; more probes, tighter estimate.
  const int probes =
      1 + static_cast<int>(hashed_uniform(h ^ 0x1234) * 2.0 *
                           config_.mean_probes_per_window);
  const double sigma =
      config_.per_probe_noise_kmh / std::sqrt(static_cast<double>(probes));
  return hashed_normal(h) * sigma;
}

double TaxiFeed::official_speed_kmh(SegmentId link, SimTime t) const {
  const auto window = static_cast<std::int64_t>(std::floor(t / config_.window_s));
  const SimTime mid = (static_cast<double>(window) + 0.5) * config_.window_s;
  const double car = traffic_->car_speed_kmh(link, mid);
  // Taxis drive above the ambient flow once the road opens up.
  const double z =
      (car - config_.aggressiveness_knee_kmh) / config_.aggressiveness_scale_kmh;
  const double sigmoid = 1.0 / (1.0 + std::exp(-z));
  const double aggressive = car * (1.0 + config_.aggressiveness_max * sigmoid);
  return std::max(0.0, aggressive + window_noise_kmh(link, window));
}

double TaxiFeed::official_speed_over(const BusRoute& route, double arc_a,
                                     double arc_b, SimTime t) const {
  const auto parts = route.link_lengths_between(arc_a, arc_b);
  double total_len = 0.0;
  double total_time_h = 0.0;
  for (const auto& [link, len_m] : parts) {
    const double v = official_speed_kmh(link, t);
    total_len += len_m;
    total_time_h += (len_m / 1000.0) / std::max(v, 1.0);
  }
  if (total_time_h <= 0.0) return 0.0;
  return (total_len / 1000.0) / total_time_h;
}

}  // namespace bussense
