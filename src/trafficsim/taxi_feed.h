// Official taxi AVL traffic feed (substitute for the LTA data).
//
// The paper compares its estimates against travel speeds derived from the
// AVL reports of >1000 Singapore taxis, aggregated over 5-minute windows.
// We model that feed directly: per (link, window) the official speed is the
// ground-truth car speed at the window midpoint, scaled by a mild
// "taxi aggressiveness" factor (taxis exceed general traffic when the road
// is clear — the paper's explanation for the high-speed gap in Figure 10)
// and perturbed by probe-sampling noise that shrinks with the number of
// probes. Deterministic per (link, window) so repeated queries agree.
#pragma once

#include <cstdint>

#include "citynet/bus_route.h"
#include "common/sim_time.h"
#include "trafficsim/traffic_field.h"

namespace bussense {

struct TaxiFeedConfig {
  double window_s = 300.0;            ///< 5-minute aggregation (paper)
  double aggressiveness_max = 0.12;   ///< max fraction above car speed
  double aggressiveness_knee_kmh = 45.0;
  double aggressiveness_scale_kmh = 6.0;
  double per_probe_noise_kmh = 3.0;
  double mean_probes_per_window = 6.0;
};

class TaxiFeed {
 public:
  TaxiFeed(const TrafficField& traffic, TaxiFeedConfig config,
           std::uint64_t seed);

  /// Official mean taxi speed on `link` in the 5-minute window containing
  /// `t`, km/h.
  double official_speed_kmh(SegmentId link, SimTime t) const;

  /// Harmonic-mean official speed over a route span (one inter-stop
  /// segment). Precondition: arc_a < arc_b.
  double official_speed_over(const BusRoute& route, double arc_a, double arc_b,
                             SimTime t) const;

  const TaxiFeedConfig& config() const { return config_; }

 private:
  double window_noise_kmh(SegmentId link, std::int64_t window) const;

  const TrafficField* traffic_;
  TaxiFeedConfig config_;
  std::uint64_t seed_;
};

}  // namespace bussense
