#include "trafficsim/lod_world.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.h"

namespace bussense {
namespace {

// Substream salts: tier assignment, per-(rider, day) trip plans and
// per-(rider, day, trip) simulation each live in their own key space so no
// tier or plan draw can perturb another rider's stream.
constexpr std::uint64_t kTierSalt = 0x7469657273616c74ULL;
constexpr std::uint64_t kPlanSalt = 0x706c616e73616c74ULL;
constexpr std::uint64_t kTripSalt = 0x7472697073616c74ULL;

/// Focus tier: a detector event within this window of a tap is that tap.
constexpr double kFocusMatchTolerance = 0.25;
/// Focus tier: rendered cabin audio around each dwell, seconds. The lead
/// gives the detector's noise baseline (0.5 s) time to settle before the
/// first tap burst.
constexpr double kFocusClipLead = 2.5;
constexpr double kFocusClipTail = 1.0;

/// Riders per parallel work unit. Fixed (never derived from the thread
/// count) so the block decomposition — and therefore the output — is
/// identical at any pool size.
constexpr std::int64_t kRiderBlock = 1024;

}  // namespace

const char* to_string(FidelityTier tier) {
  switch (tier) {
    case FidelityTier::kFocus:
      return "focus";
    case FidelityTier::kEvent:
      return "event";
    case FidelityTier::kOnRails:
      return "onrails";
  }
  return "unknown";
}

void LodConfig::validate() const {
  if (!(focus_fraction >= 0.0 && focus_fraction <= 1.0) ||
      !(event_fraction >= 0.0 && event_fraction <= 1.0)) {
    throw std::invalid_argument("LodConfig: tier fraction outside [0, 1]");
  }
  if (!(trips_per_rider_per_day >= 0.0)) {
    throw std::invalid_argument("LodConfig: negative trips_per_rider_per_day");
  }
  if (!(weekend_factor >= 0.0) || !(depot_pulse_boost >= 0.0) ||
      !(depot_pulse_width_min > 0.0)) {
    throw std::invalid_argument("LodConfig: bad load-curve shape");
  }
  if (!(upload_lag_s >= 0.0)) {
    throw std::invalid_argument("LodConfig: negative upload_lag_s");
  }
  event.validate();
}

LodWorld::LodWorld(const World& world, std::int64_t riders, LodConfig config)
    : world_(&world), riders_(riders), config_(std::move(config)),
      event_channel_(config_.event) {
  if (riders_ < 0) {
    throw std::invalid_argument("LodWorld: negative rider count");
  }
  config_.validate();
  assign_tiers();

  // Supremum of the weekly load curve, for departure rejection sampling.
  // One-minute scan over the week; the curve is smooth at that scale.
  double max_load = 0.0;
  for (int day = 0; day < 7; ++day) {
    for (int minute = 0; minute < 24 * 60; ++minute) {
      max_load = std::max(max_load, load_factor(at_clock(day, 0) + minute * kMinute));
    }
  }
  max_load_factor_ = max_load * 1.01;
}

void LodWorld::assign_tiers() {
  tiers_.assign(static_cast<std::size_t>(riders_),
                static_cast<std::uint8_t>(FidelityTier::kOnRails));
  census_ = LodCensus{};
  census_.riders = static_cast<std::size_t>(riders_);

  // Each rider draws (u_focus, u_event) from its own tier substream — a
  // pure function of (seed, rider). Caps keep the smallest draws (ties by
  // rider id), so membership is deterministic and, crucially, the Event
  // candidate ranking never looks at Focus membership: growing or
  // shrinking the Focus cohort can only move riders into or out of Focus,
  // never reshuffle who the *other* tiers contain.
  struct Candidate {
    double u;
    std::int64_t rider;
    bool operator<(const Candidate& o) const {
      return u != o.u ? u < o.u : rider < o.rider;
    }
  };
  std::vector<Candidate> focus_cands;
  std::vector<Candidate> event_cands;
  for (std::int64_t rider = 0; rider < riders_; ++rider) {
    Rng t = Rng::stream(config_.seed ^ kTierSalt, static_cast<std::uint64_t>(rider));
    const double u_focus = t.uniform(0.0, 1.0);
    const double u_event = t.uniform(0.0, 1.0);
    if (u_focus < config_.focus_fraction) focus_cands.push_back({u_focus, rider});
    if (u_event < config_.event_fraction) event_cands.push_back({u_event, rider});
  }
  std::sort(focus_cands.begin(), focus_cands.end());
  std::sort(event_cands.begin(), event_cands.end());

  const std::size_t focus_n = std::min(focus_cands.size(), config_.focus_cap);
  census_.focus_demoted = focus_cands.size() - focus_n;
  for (std::size_t i = 0; i < focus_n; ++i) {
    tiers_[static_cast<std::size_t>(focus_cands[i].rider)] =
        static_cast<std::uint8_t>(FidelityTier::kFocus);
  }
  const std::size_t event_n = std::min(event_cands.size(), config_.event_cap);
  census_.event_demoted = event_cands.size() - event_n;
  for (std::size_t i = 0; i < event_n; ++i) {
    auto& slot = tiers_[static_cast<std::size_t>(event_cands[i].rider)];
    if (slot != static_cast<std::uint8_t>(FidelityTier::kFocus)) {
      slot = static_cast<std::uint8_t>(FidelityTier::kEvent);
    }
  }
  for (std::uint8_t t : tiers_) {
    switch (static_cast<FidelityTier>(t)) {
      case FidelityTier::kFocus: ++census_.focus; break;
      case FidelityTier::kEvent: ++census_.event; break;
      case FidelityTier::kOnRails: ++census_.on_rails; break;
    }
  }
}

double LodWorld::load_factor(SimTime t) const {
  const bool weekend = is_weekend(day_index(t));
  double f = world_->demand().time_factor(t);
  if (weekend) {
    // Flatten the commute peaks (sqrt keeps nights quiet while shaving the
    // peaks) and scale the overall volume down.
    f = config_.weekend_factor * std::sqrt(f);
  }
  // Depot pulses: buses surge out of depots at service start and stream
  // back at service end, dragging rider activity with them.
  const double h = time_of_day(t) / kHour;
  const double width_h = config_.depot_pulse_width_min / 60.0;
  const double weekend_scale = weekend ? config_.weekend_factor : 1.0;
  const auto pulse = [&](double center_h) {
    const double d = (h - center_h) / width_h;
    return config_.depot_pulse_boost * std::exp(-0.5 * d * d);
  };
  f += weekend_scale * (pulse(world_->config().service_start_h) +
                        pulse(world_->config().service_end_h));
  return f;
}

Rng LodWorld::plan_rng(std::int64_t rider, int day) const {
  return Rng::stream(mix64(config_.seed ^ kPlanSalt) ^
                         mix64(static_cast<std::uint64_t>(rider)),
                     static_cast<std::uint64_t>(day));
}

Rng LodWorld::trip_rng(std::int64_t rider, int day, int trip_index) const {
  return Rng::stream(mix64(config_.seed ^ kTripSalt) ^
                         mix64(static_cast<std::uint64_t>(rider)),
                     (static_cast<std::uint64_t>(day) << 20) |
                         static_cast<std::uint64_t>(trip_index));
}

int LodWorld::trip_count(std::int64_t rider, int day) const {
  Rng plan = plan_rng(rider, day);
  const double rate = config_.trips_per_rider_per_day *
                      (is_weekend(day) ? config_.weekend_factor : 1.0);
  return plan.poisson(rate);
}

std::vector<LodWorld::TripPlan> LodWorld::plan_day(std::int64_t rider,
                                                   int day) const {
  Rng plan = plan_rng(rider, day);
  const double rate = config_.trips_per_rider_per_day *
                      (is_weekend(day) ? config_.weekend_factor : 1.0);
  const int trips = plan.poisson(rate);  // same first draw as trip_count()
  std::vector<TripPlan> plans;
  plans.reserve(static_cast<std::size_t>(trips));
  const auto& routes = world_->city().routes();
  const WorldConfig& wc = world_->config();
  const SimTime day0 = at_clock(day, 0);
  for (int k = 0; k < trips; ++k) {
    TripPlan p;
    if (!routes.empty()) {
      for (int tries = 0; tries < 32; ++tries) {
        const auto idx = static_cast<std::size_t>(
            plan.uniform_int(0, static_cast<int>(routes.size()) - 1));
        const BusRoute& route = routes[idx];
        const int n_stops = static_cast<int>(route.stop_count());
        if (n_stops < 4) continue;
        p.route = route.id();
        p.board = plan.uniform_int(0, n_stops - 3);
        const int ride = 2 + plan.poisson(5.0);
        p.alight = std::min(p.board + ride, n_stops - 1);
        break;
      }
    }
    if (p.route != kInvalidRoute) {
      // Departure hour shaped by the weekly load curve via rejection.
      double h = 0.5 * (wc.service_start_h + wc.service_end_h);
      for (int tries = 0; tries < 32; ++tries) {
        h = plan.uniform(wc.service_start_h, wc.service_end_h - 0.5);
        if (plan.uniform(0.0, max_load_factor_) <=
            load_factor(day0 + h * kHour)) {
          break;
        }
      }
      p.depart = day0 + h * kHour;
    }
    plans.push_back(p);
  }
  return plans;
}

AnnotatedTrip LodWorld::focus_trip(const BusRoute& route, const BusRun& run,
                                   int board, int alight,
                                   std::int32_t participant, Rng& rng) const {
  // The full waveform path: render cabin audio around every served dwell,
  // run the streaming detector over it, and feed the detected events
  // through the phone-side trip recorder — exactly the testbed pipeline,
  // windowed to the dwells so a week of Focus riders stays affordable.
  struct BeepContext {
    SimTime time;
    Point position;
    StopId true_stop;
  };
  std::vector<BeepContext> beeps;
  for (int k = board; k <= alight; ++k) {
    const StopVisit& visit = run.visits[static_cast<std::size_t>(k)];
    if (!visit.served) continue;
    const SimTime clip_start = visit.arrival - kFocusClipLead;
    const double clip_s = (visit.departure + kFocusClipTail) - clip_start;
    std::vector<SimTime> tap_offsets;
    tap_offsets.reserve(visit.taps.size());
    for (const TapEvent& tap : visit.taps) {
      tap_offsets.push_back(tap.time - clip_start);
    }
    const std::vector<float> audio =
        synthesize_bus_audio(config_.audio, clip_s, tap_offsets, rng);
    BeepDetector detector(config_.detector);
    detector.set_origin(clip_start);
    for (const BeepEvent& event : detector.process(audio)) {
      bool matched = false;
      for (const TapEvent& tap : visit.taps) {
        if (std::abs(event.time - tap.time) <= kFocusMatchTolerance) {
          matched = true;
          break;
        }
      }
      const SimTime t =
          std::clamp(event.time, run.depart_time, run.end_time);
      beeps.push_back(BeepContext{event.time,
                                  route.path().point_at(run.arc_at(t)),
                                  matched ? visit.stop : kInvalidStop});
    }
  }
  std::sort(beeps.begin(), beeps.end(),
            [](const BeepContext& a, const BeepContext& b) {
              return a.time < b.time;
            });

  std::size_t cursor = 0;
  std::vector<StopId> scanned_stops;
  TripRecorder recorder(
      world_->config().recorder, participant,
      [&](SimTime t) {
        const BeepContext& ctx = beeps[cursor];
        scanned_stops.push_back(ctx.true_stop);
        return world_->apply_churn(
            world_->scanner().scan_fingerprint(world_->radio(), ctx.position,
                                               rng, /*in_bus=*/true),
            t);
      },
      [&](SimTime /*t*/) {
        return world_->accel().sample_variance(VehicleClass::kBus, rng);
      });
  std::vector<TripUpload> uploads;
  for (cursor = 0; cursor < beeps.size(); ++cursor) {
    if (auto done = recorder.on_beep(beeps[cursor].time)) {
      uploads.push_back(std::move(*done));
    }
  }
  if (auto done = recorder.flush()) uploads.push_back(std::move(*done));

  std::size_t history = 0;
  AnnotatedTrip best;
  for (TripUpload& up : uploads) {
    TripGroundTruth truth;
    truth.route_id = route.id();
    truth.board_stop_index = board;
    truth.alight_stop_index = alight;
    truth.leg_routes.push_back(route.id());
    for (std::size_t i = 0; i < up.samples.size(); ++i) {
      truth.sample_stops.push_back(scanned_stops[history++]);
    }
    if (up.samples.size() > best.upload.samples.size()) {
      best.upload = std::move(up);
      best.truth = std::move(truth);
    }
  }
  return best;
}

AnnotatedTrip LodWorld::onrails_trip(const BusRoute& route, int board,
                                     int alight, SimTime depart,
                                     std::int32_t participant,
                                     Rng& rng) const {
  // Closed-form trip: per-link speeds straight from the traffic field with
  // the bus congestion penalty, demand-driven dwells, one sample per
  // served stop the rider is aboard for (subject to the calibrated
  // delivery probability). No waveform, no recorder, no spurious beeps —
  // the long-tail approximation DESIGN.md §15 documents.
  const BusSimConfig& bus = world_->buses().config();
  const TrafficField& traffic = world_->traffic();
  const DemandModel& demand = world_->demand();
  const double headway = world_->config().headway_s;

  AnnotatedTrip trip;
  trip.upload.participant_id = participant;
  trip.truth.route_id = route.id();
  trip.truth.board_stop_index = board;
  trip.truth.alight_stop_index = alight;
  trip.truth.leg_routes.push_back(route.id());

  SimTime t = depart;
  double prev_arc = 0.0;
  for (int k = 0; k <= alight; ++k) {
    const double arc = route.stop_arc(k);
    for (const auto& [link, metres] : route.link_lengths_between(prev_arc, arc)) {
      const double congestion = traffic.congestion(link, t);
      const double factor =
          std::max(bus.min_speed_factor,
                   bus.base_speed_factor - bus.congestion_sensitivity * congestion);
      const double v_kmh =
          std::clamp(traffic.car_speed_kmh(link, t) * factor, bus.min_speed_kmh,
                     bus.max_speed_kmh);
      t += metres / kmh_to_ms(v_kmh);
    }
    prev_arc = arc;

    const StopId stop = route.stops()[static_cast<std::size_t>(k)].stop;
    int boarders = demand.draw_boarders(stop, t, headway, rng);
    int alighters = 0;
    if (k == board) boarders += 1;
    if (k == alight) alighters += 1;
    if (boarders == 0 && alighters == 0) continue;  // skipped stop

    if (k >= board && k <= alight && event_channel_.delivered(rng)) {
      const SimTime sample_t = t + bus.tap_start_offset_s;
      const Point pos = route.path().point_at(arc);
      Fingerprint fp = world_->apply_churn(
          world_->scanner().scan_fingerprint(world_->radio(), pos, rng,
                                             /*in_bus=*/true),
          sample_t);
      trip.upload.samples.push_back(CellularSample{sample_t, std::move(fp)});
      trip.truth.sample_stops.push_back(stop);
    }
    t += std::max(bus.base_dwell_s,
                  bus.tap_start_offset_s + bus.per_boarder_s * boarders +
                      bus.per_alighter_s * alighters);
  }
  return trip;
}

std::vector<LodTrip> LodWorld::simulate_rider_day(
    std::int64_t rider, int day, std::optional<FidelityTier> tier) const {
  const FidelityTier effective = tier.value_or(tier_of(rider));
  const auto participant = static_cast<std::int32_t>(rider);
  const std::size_t min_samples = world_->config().recorder.min_samples;

  std::vector<LodTrip> out;
  const std::vector<TripPlan> plans = plan_day(rider, day);
  std::uint64_t planned = plans.size(), dropped = 0, thin = 0;
  for (std::size_t k = 0; k < plans.size(); ++k) {
    const TripPlan& plan = plans[k];
    if (plan.route == kInvalidRoute) {
      ++dropped;
      continue;
    }
    const BusRoute& route = world_->city().route(plan.route);
    Rng rng = trip_rng(rider, day, static_cast<int>(k));
    AnnotatedTrip trip;
    switch (effective) {
      case FidelityTier::kFocus: {
        // Same simulate_run draw prefix as the Event tier, so the same
        // rider re-simulated across tiers rides the identical bus.
        const std::map<int, int> boarders{{plan.board, 1}};
        const std::map<int, int> alighters{{plan.alight, 1}};
        const BusRun run = world_->buses().simulate_run(
            route, plan.depart, boarders, alighters, world_->config().headway_s,
            rng, /*record_trajectory=*/true);
        trip = focus_trip(route, run, plan.board, plan.alight, participant, rng);
        break;
      }
      case FidelityTier::kEvent:
        trip = world_->simulate_single_trip(route, plan.board, plan.alight,
                                            plan.depart, rng, participant,
                                            &event_channel_);
        break;
      case FidelityTier::kOnRails:
        trip = onrails_trip(route, plan.board, plan.alight, plan.depart,
                            participant, rng);
        break;
    }
    if (trip.upload.samples.size() < min_samples) {
      ++thin;
      continue;
    }
    LodTrip lod;
    lod.rider = rider;
    lod.day = day;
    lod.trip_index = static_cast<int>(k);
    lod.tier = effective;
    lod.arrival = trip.upload.samples.back().time + config_.upload_lag_s;
    lod.trip = std::move(trip);
    out.push_back(std::move(lod));
  }
  planned_.fetch_add(planned, std::memory_order_relaxed);
  dropped_no_route_.fetch_add(dropped, std::memory_order_relaxed);
  thin_.fetch_add(thin, std::memory_order_relaxed);
  emitted_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

std::vector<LodTrip> LodWorld::simulate_day_range(int day,
                                                  std::int64_t rider_begin,
                                                  std::int64_t rider_end,
                                                  ThreadPool* pool) const {
  if (rider_begin < 0 || rider_end > riders_ || rider_begin > rider_end) {
    throw std::invalid_argument("simulate_day_range: bad rider range");
  }
  const std::int64_t total = rider_end - rider_begin;
  const std::size_t blocks =
      static_cast<std::size_t>((total + kRiderBlock - 1) / kRiderBlock);
  std::vector<std::vector<LodTrip>> per_block(blocks);
  const auto body = [&](std::size_t b) {
    const std::int64_t lo = rider_begin + static_cast<std::int64_t>(b) * kRiderBlock;
    const std::int64_t hi = std::min(lo + kRiderBlock, rider_end);
    std::vector<LodTrip>& block = per_block[b];
    for (std::int64_t rider = lo; rider < hi; ++rider) {
      std::vector<LodTrip> trips = simulate_rider_day(rider, day);
      block.insert(block.end(), std::make_move_iterator(trips.begin()),
                   std::make_move_iterator(trips.end()));
    }
  };
  if (pool) {
    pool->parallel_for(blocks, body);
  } else {
    for (std::size_t b = 0; b < blocks; ++b) body(b);
  }
  std::size_t count = 0;
  for (const auto& block : per_block) count += block.size();
  std::vector<LodTrip> out;
  out.reserve(count);
  for (auto& block : per_block) {
    out.insert(out.end(), std::make_move_iterator(block.begin()),
               std::make_move_iterator(block.end()));
  }
  // Ingest replay order. (arrival, rider, trip_index) is a total order —
  // (rider, trip_index) is unique — so the sort result is schedule-free.
  std::sort(out.begin(), out.end(), [](const LodTrip& a, const LodTrip& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.rider != b.rider) return a.rider < b.rider;
    return a.trip_index < b.trip_index;
  });
  return out;
}

LodLoss LodWorld::loss() const {
  LodLoss loss;
  loss.planned = planned_.load(std::memory_order_relaxed);
  loss.dropped_no_route = dropped_no_route_.load(std::memory_order_relaxed);
  loss.thin = thin_.load(std::memory_order_relaxed);
  loss.emitted = emitted_.load(std::memory_order_relaxed);
  return loss;
}

void LodWorld::export_loss(MetricsRegistry& registry) const {
  const LodLoss l = loss();
  registry.counter("trafficsim.lod.planned").add(l.planned);
  registry.counter("trafficsim.lod.dropped_no_route").add(l.dropped_no_route);
  registry.counter("trafficsim.lod.thin").add(l.thin);
  registry.counter("trafficsim.lod.emitted").add(l.emitted);
}

namespace {

void put_double(std::ostream& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

struct Fnv1a {
  std::uint64_t h;
  explicit Fnv1a(std::uint64_t seed) : h(seed) {}
  void byte(std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
};

}  // namespace

void LodWorld::write_stream(std::ostream& out,
                            const std::vector<LodTrip>& trips) {
  out << "bussense-lod-trips v1\n";
  for (const LodTrip& t : trips) {
    out << "trip " << t.rider << ' ' << t.day << ' ' << t.trip_index << ' '
        << to_string(t.tier) << ' ' << t.trip.upload.participant_id << ' '
        << t.trip.truth.route_id << ' ' << t.trip.truth.board_stop_index << ' '
        << t.trip.truth.alight_stop_index << ' ';
    put_double(out, t.arrival);
    out << ' ' << t.trip.upload.samples.size() << '\n';
    for (std::size_t i = 0; i < t.trip.upload.samples.size(); ++i) {
      const CellularSample& s = t.trip.upload.samples[i];
      out << "s ";
      put_double(out, s.time);
      out << ' ' << t.trip.truth.sample_stops[i] << ' '
          << s.fingerprint.cells.size();
      for (CellId id : s.fingerprint.cells) out << ' ' << id;
      out << '\n';
    }
  }
  out << "end " << trips.size() << '\n';
}

std::uint64_t LodWorld::stream_digest(const std::vector<LodTrip>& trips,
                                      std::uint64_t seed) {
  Fnv1a hash(seed);
  for (const LodTrip& t : trips) {
    hash.u64(static_cast<std::uint64_t>(t.rider));
    hash.u64(static_cast<std::uint64_t>(t.day));
    hash.u64(static_cast<std::uint64_t>(t.trip_index));
    hash.byte(static_cast<std::uint8_t>(t.tier));
    hash.u64(static_cast<std::uint64_t>(t.trip.upload.participant_id));
    hash.u64(static_cast<std::uint64_t>(t.trip.truth.route_id));
    hash.u64(static_cast<std::uint64_t>(t.trip.truth.board_stop_index));
    hash.u64(static_cast<std::uint64_t>(t.trip.truth.alight_stop_index));
    hash.f64(t.arrival);
    hash.u64(t.trip.upload.samples.size());
    for (std::size_t i = 0; i < t.trip.upload.samples.size(); ++i) {
      const CellularSample& s = t.trip.upload.samples[i];
      hash.f64(s.time);
      hash.u64(static_cast<std::uint64_t>(t.trip.truth.sample_stops[i]));
      hash.u64(s.fingerprint.cells.size());
      for (CellId id : s.fingerprint.cells) {
        hash.u64(static_cast<std::uint64_t>(id));
      }
    }
  }
  hash.u64(trips.size());
  return hash.h;
}

}  // namespace bussense
