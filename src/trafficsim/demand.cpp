#include "trafficsim/demand.h"

#include <algorithm>
#include <cmath>

namespace bussense {

DemandModel::DemandModel(DemandConfig config, std::size_t stop_count,
                         std::uint64_t seed)
    : config_(config) {
  Rng rng(seed);
  popularity_.reserve(stop_count);
  for (std::size_t i = 0; i < stop_count; ++i) {
    popularity_.push_back(rng.lognormal_median(1.0, config_.popularity_sigma));
  }
}

double DemandModel::time_factor(SimTime t) const {
  const double h = time_of_day(t) / kHour;
  if (h < 5.5 || h > 23.0) return config_.night_multiplier * 0.5;
  auto bump = [&](double centre) {
    const double z = (h - centre) / config_.peak_width_h;
    return std::exp(-0.5 * z * z);
  };
  const double peak = bump(config_.morning_peak_h) + bump(config_.evening_peak_h);
  double f = 1.0 + (config_.peak_multiplier - 1.0) * std::min(peak, 1.0);
  if (h < 6.5) f *= config_.night_multiplier;       // early morning ramp
  if (h > 21.5) f *= config_.night_multiplier * 2.0;
  return f;
}

double DemandModel::boarding_rate_per_s(StopId stop, SimTime t) const {
  const double pop = popularity_.at(static_cast<std::size_t>(stop));
  return config_.base_boarding_per_min / 60.0 * pop * time_factor(t);
}

int DemandModel::draw_boarders(StopId stop, SimTime t, double window_s,
                               Rng& rng) const {
  const double mean = boarding_rate_per_s(stop, t) * std::max(window_s, 0.0);
  return rng.poisson(mean);
}

}  // namespace bussense
