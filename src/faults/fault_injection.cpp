#include "faults/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/rng.h"

namespace bussense {

namespace {

// Substream salts: per-participant skew and the batch-level reorder must
// not collide with the per-trip streams, which use the plan seed directly.
constexpr std::uint64_t kSkewSalt = 0x5ca1edc10c4b17e5ULL;
constexpr std::uint64_t kReorderSalt = 0xba7c40fde11e7ULL;

// Bogus tower ids land far outside any generated deployment (the simulated
// city numbers towers densely from 0; test fixtures use the 9e5 range for
// "towers that exist nowhere").
constexpr CellId kBogusCellBase = 900000;

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("FaultPlan: ") + what);
}

void require_prob(double p, const char* what) {
  require(p >= 0.0 && p <= 1.0, what);
}

/// The constant clock offset of `participant` under `plan` (0 when the
/// participant's clock is healthy). Hashed from (seed, participant) only,
/// so every trip of the participant agrees.
double participant_clock_offset(const FaultPlan& plan,
                                std::int32_t participant) {
  if (plan.clock_skew_prob <= 0.0 || plan.clock_skew_max_s <= 0.0) return 0.0;
  Rng rng = Rng::stream(plan.seed ^ kSkewSalt,
                        static_cast<std::uint64_t>(
                            static_cast<std::uint32_t>(participant)));
  if (!rng.bernoulli(plan.clock_skew_prob)) return 0.0;
  return rng.uniform(-plan.clock_skew_max_s, plan.clock_skew_max_s);
}

}  // namespace

bool FaultPlan::is_identity() const {
  return duplicate_prob == 0.0 && clock_skew_prob == 0.0 &&
         jitter_prob == 0.0 && truncate_prob == 0.0 && shuffle_prob == 0.0 &&
         tower_drop_prob == 0.0 && tower_inject_prob == 0.0 && !reorder_batch;
}

void FaultPlan::validate() const {
  require_prob(duplicate_prob, "duplicate_prob must be in [0, 1]");
  require_prob(clock_skew_prob, "clock_skew_prob must be in [0, 1]");
  require_prob(jitter_prob, "jitter_prob must be in [0, 1]");
  require_prob(truncate_prob, "truncate_prob must be in [0, 1]");
  require_prob(shuffle_prob, "shuffle_prob must be in [0, 1]");
  require_prob(tower_drop_prob, "tower_drop_prob must be in [0, 1]");
  require_prob(tower_inject_prob, "tower_inject_prob must be in [0, 1]");
  require_prob(cell_drop_fraction, "cell_drop_fraction must be in [0, 1]");
  require_prob(cell_inject_fraction, "cell_inject_fraction must be in [0, 1]");
  require(clock_skew_max_s >= 0.0, "clock_skew_max_s must be >= 0");
  require(jitter_sigma_s >= 0.0, "jitter_sigma_s must be >= 0");
  require(truncate_min_keep > 0.0 && truncate_min_keep <= 1.0,
          "truncate_min_keep must be in (0, 1]");
}

FaultPlan FaultPlan::standard(std::uint64_t seed, double rate) {
  FaultPlan plan;
  plan.seed = seed;
  plan.duplicate_prob = rate;
  plan.clock_skew_prob = rate;
  plan.clock_skew_max_s = 1800.0;
  plan.jitter_prob = rate;
  plan.jitter_sigma_s = 2.0;
  plan.truncate_prob = rate;
  plan.shuffle_prob = rate;
  plan.tower_drop_prob = rate;
  plan.tower_inject_prob = rate;
  plan.reorder_batch = true;
  plan.validate();
  return plan;
}

void FaultStats::register_into(MetricsRegistry& registry) const {
  registry.counter("faults.injected.duplicate").add(duplicated);
  registry.counter("faults.injected.clock_skew").add(skewed);
  registry.counter("faults.injected.jitter").add(jittered);
  registry.counter("faults.injected.truncate").add(truncated);
  registry.counter("faults.injected.shuffle").add(shuffled);
  registry.counter("faults.injected.cells_dropped").add(cells_dropped);
  registry.counter("faults.injected.cells_injected").add(cells_injected);
  registry.counter("faults.injected.batch_reorder").add(batch_reordered);
  registry.counter("faults.injected.corrupted_trips").add(corrupted_trips);
}

std::vector<TripUpload> inject_faults(std::vector<TripUpload> trips,
                                      const FaultPlan& plan,
                                      FaultStats* stats,
                                      std::uint64_t first_index) {
  plan.validate();
  FaultStats local;
  local.trips_in = trips.size();

  std::vector<TripUpload> replays;
  for (std::size_t i = 0; i < trips.size(); ++i) {
    TripUpload& trip = trips[i];
    // One substream per trip, consumed in a fixed injector order. The
    // selection draw for every injector happens unconditionally so a
    // trip's corruption never depends on which *other* trips were
    // selected (only on the plan's own knobs).
    Rng rng = Rng::stream(plan.seed, first_index + i);
    bool corrupted = false;

    const double offset = participant_clock_offset(plan, trip.participant_id);
    if (offset != 0.0 && !trip.samples.empty()) {
      for (CellularSample& s : trip.samples) s.time += offset;
      ++local.skewed;
      corrupted = true;
    }

    if (rng.bernoulli(plan.jitter_prob) && plan.jitter_sigma_s > 0.0 &&
        !trip.samples.empty()) {
      for (CellularSample& s : trip.samples) {
        s.time += rng.normal(0.0, plan.jitter_sigma_s);
      }
      ++local.jittered;
      corrupted = true;
    }

    if (rng.bernoulli(plan.truncate_prob) && trip.samples.size() > 1) {
      const double keep_fraction =
          rng.uniform(plan.truncate_min_keep, 1.0);
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 keep_fraction * static_cast<double>(trip.samples.size())));
      if (keep < trip.samples.size()) {
        trip.samples.resize(keep);
        ++local.truncated;
        corrupted = true;
      }
    }

    if (rng.bernoulli(plan.shuffle_prob) && trip.samples.size() > 1) {
      // Fisher–Yates with the trip's own substream (std::shuffle's draw
      // count is implementation-defined; this stays reproducible).
      for (std::size_t k = trip.samples.size() - 1; k > 0; --k) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(k)));
        std::swap(trip.samples[k], trip.samples[j]);
      }
      ++local.shuffled;
      corrupted = true;
    }

    if (rng.bernoulli(plan.tower_drop_prob)) {
      std::uint64_t dropped = 0;
      for (CellularSample& s : trip.samples) {
        auto& cells = s.fingerprint.cells;
        for (std::size_t c = cells.size(); c-- > 0;) {
          if (rng.bernoulli(plan.cell_drop_fraction)) {
            cells.erase(cells.begin() + static_cast<std::ptrdiff_t>(c));
            ++dropped;
          }
        }
      }
      if (dropped > 0) {
        local.cells_dropped += dropped;
        corrupted = true;
      }
    }

    if (rng.bernoulli(plan.tower_inject_prob)) {
      std::uint64_t injected = 0;
      for (CellularSample& s : trip.samples) {
        if (!rng.bernoulli(plan.cell_inject_fraction)) continue;
        auto& cells = s.fingerprint.cells;
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(cells.size())));
        cells.insert(cells.begin() + static_cast<std::ptrdiff_t>(pos),
                     kBogusCellBase + rng.uniform_int(0, 99999));
        ++injected;
      }
      if (injected > 0) {
        local.cells_injected += injected;
        corrupted = true;
      }
    }

    if (rng.bernoulli(plan.duplicate_prob)) {
      // Replay the upload exactly as it went out (post-corruption): a
      // retrying phone resends the same bytes. Appended after the loop so
      // per-trip stream indices stay aligned with the input batch.
      replays.push_back(trip);
      ++local.duplicated;
      corrupted = true;
    }

    if (corrupted) ++local.corrupted_trips;
  }

  for (TripUpload& replay : replays) trips.push_back(std::move(replay));

  if (plan.reorder_batch && trips.size() > 1) {
    Rng rng = Rng::stream(plan.seed ^ kReorderSalt, trips.size());
    for (std::size_t k = trips.size() - 1; k > 0; --k) {
      const auto j =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(k)));
      std::swap(trips[k], trips[j]);
    }
    local.batch_reordered = 1;
  }

  local.trips_out = trips.size();
  if (stats) *stats = local;
  return trips;
}

}  // namespace bussense
