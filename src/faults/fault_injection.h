// Deterministic fault injection for trip uploads.
//
// The backend ingests uploads from uncontrolled participant phones, so real
// deployments see trips that arrive late, duplicated, clock-skewed,
// truncated, shuffled, or carrying garbage fingerprints (the paper's §V
// reports non-beep false triggers and missed detections). This layer turns
// those failure modes into a composable, seed-driven corruption pass over a
// batch of uploads, so tests and benches can measure how the hardened
// ingest path degrades — and pin that degradation.
//
// Determinism contract: every per-trip corruption is drawn from the
// order-independent substream Rng::stream(plan.seed, first_index + i), and
// per-participant decisions (clock skew) are hashed from
// (plan.seed, participant_id) alone. Corrupting trip i therefore does not
// depend on how many other trips are in the batch or on any previous
// injector draws — inject_faults({t}, plan, first_index = i) reproduces
// exactly what inject_faults(batch, plan) did to batch[i]
// (property-tested). The only batch-level injector is the final delivery
// reorder, which permutes the output vector as a whole.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "sensing/trip.h"

namespace bussense {

/// Which corruptions to apply, and how hard. A default-constructed plan is
/// the identity (property-tested). Probabilities are per trip unless noted;
/// the inner *_fraction knobs control how much of a selected trip is
/// corrupted.
struct FaultPlan {
  std::uint64_t seed = 0;

  /// Replayed uploads: the corrupted trip is appended again at the end of
  /// the batch, byte-identical — exactly what a phone retrying over a flaky
  /// link produces.
  double duplicate_prob = 0.0;

  /// Per-*participant* constant clock offset, uniform in ±clock_skew_max_s.
  /// Hashed from (seed, participant_id): every trip of a skewed participant
  /// shifts by the same offset, matching a miscalibrated phone clock.
  double clock_skew_prob = 0.0;
  double clock_skew_max_s = 1800.0;

  /// Per-sample timestamp jitter (normal, sigma seconds) on selected trips.
  double jitter_prob = 0.0;
  double jitter_sigma_s = 2.0;

  /// Truncation: a selected trip keeps only a prefix of its samples, with
  /// the kept fraction uniform in [truncate_min_keep, 1).
  double truncate_prob = 0.0;
  double truncate_min_keep = 0.25;

  /// Sample-order shuffle (lossy-link delivery reordering) on selected
  /// trips.
  double shuffle_prob = 0.0;

  /// Fingerprint corruption on selected trips: each cell of each sample is
  /// dropped with probability cell_drop_fraction / a bogus tower id is
  /// inserted at a random rank with probability cell_inject_fraction.
  double tower_drop_prob = 0.0;
  double cell_drop_fraction = 0.3;
  double tower_inject_prob = 0.0;
  double cell_inject_fraction = 0.3;

  /// Out-of-order batch delivery: permute the whole output batch
  /// (including appended duplicates). The one batch-level injector.
  bool reorder_batch = false;

  /// True when the plan corrupts nothing — inject_faults() is then the
  /// identity on any input.
  bool is_identity() const;

  /// Throws std::invalid_argument on nonsense (probabilities outside
  /// [0, 1], negative magnitudes, truncate_min_keep outside (0, 1]).
  void validate() const;

  /// The standard adversarial mix used by the golden degradation tests and
  /// bench_faults: every per-trip injector at probability `rate`, skewed
  /// clocks up to ±30 min, plus batch reorder.
  static FaultPlan standard(std::uint64_t seed, double rate);
};

/// What a corruption pass actually did (for accounting and the
/// faults.injected.* metrics).
struct FaultStats {
  std::uint64_t trips_in = 0;
  std::uint64_t trips_out = 0;
  std::uint64_t duplicated = 0;       ///< trips appended again
  std::uint64_t skewed = 0;           ///< trips shifted by a participant offset
  std::uint64_t jittered = 0;         ///< trips with per-sample jitter
  std::uint64_t truncated = 0;        ///< trips that lost a suffix
  std::uint64_t shuffled = 0;         ///< trips with sample order permuted
  std::uint64_t cells_dropped = 0;    ///< fingerprint cells removed
  std::uint64_t cells_injected = 0;   ///< bogus tower ids inserted
  std::uint64_t batch_reordered = 0;  ///< 1 when the batch was permuted

  /// Number of trips that were corrupted in at least one way (duplicates
  /// count via their original).
  std::uint64_t corrupted_trips = 0;

  /// Publishes the counts as faults.injected.* counters (adds to whatever
  /// is already there, so repeated passes accumulate).
  void register_into(MetricsRegistry& registry) const;
};

/// Applies `plan` to the batch. Returns the corrupted batch; `stats` (when
/// non-null) receives the injection accounting. `first_index` offsets the
/// per-trip substream indices so a sub-batch can reproduce a slice of a
/// larger batch's corruption (see the determinism contract above).
std::vector<TripUpload> inject_faults(std::vector<TripUpload> trips,
                                      const FaultPlan& plan,
                                      FaultStats* stats = nullptr,
                                      std::uint64_t first_index = 0);

}  // namespace bussense
