// Small fixed-size thread pool with an index-sharded parallel_for.
//
// The trip driver fans independent rider simulations out over a fixed set
// of workers; each body invocation owns its output slot and its own Rng, so
// the schedule never influences the results — parallel_for(n, body) is
// bit-identical to calling body(0..n-1) serially, at any thread count.
// Workers sleep between jobs; the submitting thread participates in the
// work, so a pool of size 1 degrades to a plain loop.
//
// Each parallel_for publishes a heap-allocated Job record that workers pin
// with a shared_ptr before touching it. A worker that is still draining the
// claim loop of job N when job N+1 is published keeps operating on job N's
// counters (where every remaining claim is a no-op), so back-to-back
// parallel_for calls on one pool never race a straggler from the previous
// job against the new one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bussense {

class ThreadPool {
 public:
  /// A pool of `threads` total workers (the caller counts as one, so
  /// `threads - 1` are spawned). 0 is treated as 1.
  explicit ThreadPool(unsigned threads) {
    const unsigned n = threads == 0 ? 1 : threads;
    workers_.reserve(n - 1);
    for (unsigned i = 0; i + 1 < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Hardware concurrency clamped to [1, cap] — the shared default for
  /// sizing pools in examples and benches (hardware_concurrency() may
  /// report 0 on exotic platforms).
  static unsigned default_concurrency(unsigned cap = 8) {
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned n = hw == 0 ? 1 : hw;
    return n < cap ? n : cap;
  }

  /// Runs body(0), …, body(n-1) across the pool and blocks until all have
  /// returned. The first exception thrown by a body is rethrown here (the
  /// remaining indices still run). Not reentrant.
  ///
  /// Bodies may be long-running service loops (the async ingest service
  /// parks every worker in a drain loop until shutdown); the pool makes no
  /// fairness assumptions — it only shards indices.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    auto job = std::make_shared<Job>(body, n);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++epoch_;
    }
    work_cv_.notify_all();
    run_job(*job);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job->remaining.load(std::memory_order_acquire) == 0;
    });
    if (job_ == job) job_ = nullptr;
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  /// One parallel_for invocation. `body` outlives the record because the
  /// submitting thread blocks until `remaining` hits zero, and no index
  /// below `total` can be claimed once all of them have finished.
  struct Job {
    Job(const std::function<void(std::size_t)>& b, std::size_t n)
        : body(&b), total(n), remaining(n) {}
    const std::function<void(std::size_t)>* body;
    std::size_t total;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining;
    std::exception_ptr error;  ///< guarded by the pool mutex_
  };

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        job = job_;
      }
      if (job) run_job(*job);
    }
  }

  void run_job(Job& job) {
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.total) return;
      try {
        (*job.body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace bussense
