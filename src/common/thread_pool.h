// Small fixed-size thread pool with an index-sharded parallel_for.
//
// The trip driver fans independent rider simulations out over a fixed set
// of workers; each body invocation owns its output slot and its own Rng, so
// the schedule never influences the results — parallel_for(n, body) is
// bit-identical to calling body(0..n-1) serially, at any thread count.
// Workers sleep between jobs; the submitting thread participates in the
// work, so a pool of size 1 degrades to a plain loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bussense {

class ThreadPool {
 public:
  /// A pool of `threads` total workers (the caller counts as one, so
  /// `threads - 1` are spawned). 0 is treated as 1.
  explicit ThreadPool(unsigned threads) {
    const unsigned n = threads == 0 ? 1 : threads;
    workers_.reserve(n - 1);
    for (unsigned i = 0; i + 1 < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs body(0), …, body(n-1) across the pool and blocks until all have
  /// returned. The first exception thrown by a body is rethrown here (the
  /// remaining indices still run). Not reentrant.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      body_ = &body;
      total_ = n;
      next_.store(0, std::memory_order_relaxed);
      remaining_.store(n, std::memory_order_relaxed);
      error_ = nullptr;
      ++epoch_;
    }
    work_cv_.notify_all();
    run_job(body);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
    body_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* body = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        body = body_;
      }
      if (body) run_job(*body);
    }
  }

  void run_job(const std::function<void(std::size_t)>& body) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= total_) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t total_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> remaining_{0};
  std::exception_ptr error_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace bussense
