// Planar geometry primitives for the simulated city.
//
// All coordinates are metres in a local East-North frame whose origin is the
// south-west corner of the monitored region. The paper's testbed is a
// 7 km x 4 km area of Jurong West, Singapore; a planar frame is accurate to
// well under a metre at that scale, so no geodesy is needed.
#pragma once

#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

namespace bussense {

/// A point (or displacement) in the local planar frame, metres.
struct Point {
  double x = 0.0;  ///< metres east of the region origin
  double y = 0.0;  ///< metres north of the region origin

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(Point a, double k) { return {a.x * k, a.y * k}; }
  friend Point operator*(double k, Point a) { return a * k; }
  friend bool operator==(const Point&, const Point&) = default;
};

/// Euclidean norm of a displacement.
inline double norm(Point p) { return std::hypot(p.x, p.y); }

/// Euclidean distance between two points, metres.
inline double distance(Point a, Point b) { return norm(b - a); }

/// Dot product of two displacements.
inline double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// Linear interpolation between `a` and `b`; `t` in [0,1] maps to [a,b].
inline Point lerp(Point a, Point b, double t) { return a + (b - a) * t; }

/// Axis-aligned bounding box.
struct BoundingBox {
  Point min;
  Point max;

  bool contains(Point p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  double width() const { return max.x - min.x; }
  double height() const { return max.y - min.y; }
};

/// Result of projecting a point onto a polyline.
struct PolylineProjection {
  double arc_length = 0.0;  ///< arc-length position of the closest point
  Point closest;            ///< the closest point on the polyline
  double distance = 0.0;    ///< distance from the query to `closest`
};

/// An immutable open polyline with precomputed cumulative arc lengths.
///
/// Invariant: at least two vertices; consecutive vertices are distinct.
class Polyline {
 public:
  /// Builds a polyline from `vertices`. Consecutive duplicate vertices are
  /// collapsed. Throws std::invalid_argument if fewer than two distinct
  /// vertices remain.
  explicit Polyline(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }

  /// Total arc length, metres. Strictly positive.
  double length() const { return cumulative_.back(); }

  /// Point at arc-length `s` from the start. `s` is clamped to [0, length()].
  Point point_at(double s) const;

  /// Unit tangent direction at arc-length `s` (direction of the containing
  /// segment; at a vertex, the direction of the following segment).
  Point direction_at(double s) const;

  /// Closest point on the polyline to `p`.
  PolylineProjection project(Point p) const;

  /// A polyline with the same geometry traversed in the opposite direction.
  Polyline reversed() const;

 private:
  /// Index of the segment containing arc-length `s` plus the offset into it.
  std::pair<std::size_t, double> locate(double s) const;

  std::vector<Point> vertices_;
  std::vector<double> cumulative_;  ///< cumulative_[i] = arc length at vertex i
};

}  // namespace bussense
