// Small statistics toolkit used by the estimator and the experiment harness:
// streaming moments (Welford), empirical distributions (CDF / percentiles),
// simple linear regression, and fixed-width histograms.
#pragma once

#include <cstddef>
#include <vector>

namespace bussense {

/// Streaming mean/variance via Welford's algorithm. Numerically stable and
/// single-pass; used wherever the simulator accumulates long series.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// An empirical distribution over collected samples. Percentile queries sort
/// lazily on first use.
class EmpiricalDistribution {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// p-th percentile with linear interpolation, p in [0, 100].
  /// Precondition: not empty.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Empirical CDF value: fraction of samples <= x.
  double cdf(double x) const;

  /// CDF evaluated on `points` evenly spaced over [lo, hi] (inclusive).
  /// Returns (x, F(x)) pairs — the series a paper-style CDF figure plots.
  std::vector<std::pair<double, double>> cdf_series(double lo, double hi,
                                                    std::size_t points) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Ordinary least squares y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Fits OLS over paired samples. Precondition: xs.size() == ys.size() >= 2
/// and xs not all equal.
LinearFit linear_regression(const std::vector<double>& xs,
                            const std::vector<double>& ys);

/// Fits y = a + b*x with the intercept `a` fixed (the paper's Eq. 3 fixes
/// a = length / free-speed and regresses only b).
double regression_slope_fixed_intercept(const std::vector<double>& xs,
                                        const std::vector<double>& ys,
                                        double intercept);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins so mass is never lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Centre x-value of bin i.
  double bin_center(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bussense
