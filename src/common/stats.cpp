#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bussense {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void EmpiricalDistribution::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalDistribution::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void EmpiricalDistribution::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("percentile of empty distribution");
  }
  ensure_sorted();
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalDistribution::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalDistribution::cdf_series(
    double lo, double hi, std::size_t points) const {
  std::vector<std::pair<double, double>> series;
  if (points < 2) points = 2;
  series.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    series.emplace_back(x, cdf(x));
  }
  return series;
}

LinearFit linear_regression(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("linear_regression needs >= 2 paired samples");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("linear_regression: x values are all equal");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double regression_slope_fixed_intercept(const std::vector<double>& xs,
                                        const std::vector<double>& ys,
                                        double intercept) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("fixed-intercept regression needs paired samples");
  }
  double num = 0, den = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    num += xs[i] * (ys[i] - intercept);
    den += xs[i] * xs[i];
  }
  if (den == 0.0) {
    throw std::invalid_argument("fixed-intercept regression: x all zero");
  }
  return num / den;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram needs bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

}  // namespace bussense
