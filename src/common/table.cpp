#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace bussense {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table needs a header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(fmt(v, precision));
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace bussense
