// Seeded random number generation.
//
// Every stochastic component in the library takes an explicit Rng so that
// simulations, tests and benches are reproducible. Rng is a thin wrapper
// around std::mt19937_64 with the distributions the simulator needs.
#pragma once

#include <cstdint>
#include <random>

namespace bussense {

/// SplitMix64 finaliser — cheap, well-mixed 64-bit hash. Shared by every
/// component that derives deterministic values from integer keys (static
/// shadowing, per-scan temporal noise, tower churn, per-trip substreams).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal such that the *result* has the given median and the given
  /// sigma of the underlying normal (median = exp(mu)).
  double lognormal_median(double median, double sigma) {
    return std::lognormal_distribution<double>(std::log(median), sigma)(engine_);
  }

  /// Exponential with the given mean (mean = 1/lambda).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Poisson with the given mean. libstdc++'s large-mean (>= 12) rejection
  /// path calls lgamma(), which writes glibc's process-global `signgam` — a
  /// data race once trips simulate in parallel — so large means are shaved
  /// down by exact Poisson additivity (Pois(a+b) = Pois(a) + Pois(b)) until
  /// the lgamma-free product method handles the remainder. Means below 12
  /// draw exactly as before.
  int poisson(double mean) {
    int n = 0;
    while (mean >= 12.0) {
      n += std::poisson_distribution<int>(8.0)(engine_);
      mean -= 8.0;
    }
    return n + std::poisson_distribution<int>(mean)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// A fresh generator deterministically derived from this one. Used to give
  /// independent substreams to sub-components without sharing state.
  Rng fork() { return Rng(engine_()); }

  /// Order-independent substream derivation: the generator for stream
  /// `index` under `seed` is the same no matter how many other streams were
  /// created before it (unlike sequential fork()). This is what makes
  /// parallel per-trip simulation bit-identical at any thread count.
  static Rng stream(std::uint64_t seed, std::uint64_t index) {
    return Rng(mix64(seed ^ mix64(index + 0x632be59bd9b4e019ULL)));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bussense
