// Console table printer used by the benchmark harness to emit the paper's
// tables and figure series in a readable, diffable fixed-width format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace bussense {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each double with `precision` decimals.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for hand-built rows).
std::string fmt(double v, int precision = 2);

/// Prints a figure-style banner, e.g. "=== Figure 2(b): ... ===".
void print_banner(std::ostream& os, const std::string& title);

}  // namespace bussense
