#include "common/geo.h"

#include <algorithm>
#include <stdexcept>

namespace bussense {

namespace {
constexpr double kDuplicateEps = 1e-9;
}

Polyline::Polyline(std::vector<Point> vertices) {
  vertices_.reserve(vertices.size());
  for (const Point& v : vertices) {
    if (vertices_.empty() || distance(vertices_.back(), v) > kDuplicateEps) {
      vertices_.push_back(v);
    }
  }
  if (vertices_.size() < 2) {
    throw std::invalid_argument("Polyline needs at least two distinct vertices");
  }
  cumulative_.resize(vertices_.size());
  cumulative_[0] = 0.0;
  for (std::size_t i = 1; i < vertices_.size(); ++i) {
    cumulative_[i] = cumulative_[i - 1] + distance(vertices_[i - 1], vertices_[i]);
  }
}

std::pair<std::size_t, double> Polyline::locate(double s) const {
  const double clamped = std::clamp(s, 0.0, length());
  // First vertex with cumulative length >= clamped; segment index precedes it.
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), clamped);
  std::size_t idx = static_cast<std::size_t>(it - cumulative_.begin());
  if (idx > 0) --idx;
  idx = std::min(idx, vertices_.size() - 2);
  return {idx, clamped - cumulative_[idx]};
}

Point Polyline::point_at(double s) const {
  const auto [idx, offset] = locate(s);
  const double seg_len = cumulative_[idx + 1] - cumulative_[idx];
  const double t = seg_len > 0.0 ? offset / seg_len : 0.0;
  return lerp(vertices_[idx], vertices_[idx + 1], t);
}

Point Polyline::direction_at(double s) const {
  const auto [idx, offset] = locate(s);
  (void)offset;
  const Point d = vertices_[idx + 1] - vertices_[idx];
  const double n = norm(d);
  return {d.x / n, d.y / n};
}

PolylineProjection Polyline::project(Point p) const {
  PolylineProjection best;
  best.distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < vertices_.size(); ++i) {
    const Point a = vertices_[i];
    const Point b = vertices_[i + 1];
    const Point ab = b - a;
    const double len2 = dot(ab, ab);
    const double t = len2 > 0.0 ? std::clamp(dot(p - a, ab) / len2, 0.0, 1.0) : 0.0;
    const Point q = lerp(a, b, t);
    const double d = distance(p, q);
    if (d < best.distance) {
      best.distance = d;
      best.closest = q;
      best.arc_length = cumulative_[i] + t * std::sqrt(len2);
    }
  }
  return best;
}

Polyline Polyline::reversed() const {
  std::vector<Point> rev(vertices_.rbegin(), vertices_.rend());
  return Polyline(std::move(rev));
}

}  // namespace bussense
