// Simulation time conventions.
//
// SimTime is seconds since midnight of simulation day 0 as a double.
// Multi-day experiments simply run past 86 400.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

namespace bussense {

using SimTime = double;

constexpr SimTime kSecond = 1.0;
constexpr SimTime kMinute = 60.0;
constexpr SimTime kHour = 3600.0;
constexpr SimTime kDay = 86400.0;

/// Seconds since midnight of the day containing `t`.
inline SimTime time_of_day(SimTime t) {
  const double d = std::fmod(t, kDay);
  return d < 0 ? d + kDay : d;
}

/// Day index (0-based) containing `t`.
inline int day_index(SimTime t) { return static_cast<int>(std::floor(t / kDay)); }

/// Builds a SimTime on day `day` at hh:mm:ss.
inline SimTime at_clock(int day, int hh, int mm = 0, double ss = 0.0) {
  return day * kDay + hh * kHour + mm * kMinute + ss;
}

/// Formats the time-of-day portion as "HH:MM" (e.g. traffic-map snapshots).
inline std::string format_clock(SimTime t) {
  const int s = static_cast<int>(time_of_day(t));
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02d:%02d", s / 3600, (s % 3600) / 60);
  return buf;
}

/// km/h -> m/s.
constexpr double kmh_to_ms(double kmh) { return kmh / 3.6; }
/// m/s -> km/h.
constexpr double ms_to_kmh(double ms) { return ms * 3.6; }

}  // namespace bussense
