// Bounded lock-free single-producer / single-consumer ring buffer.
//
// The sharded ingest service (core/ingest_service.h) gives every
// (producer thread, shard) pair its own ring, so each ring really does
// have exactly one pusher and one popper — the precondition that makes
// the classic Lamport queue correct with nothing stronger than one
// release store per operation.
//
// Layout notes:
//
//   * capacity is rounded up to a power of two so the index wrap is a
//     mask, not a division;
//   * head (consumer) and tail (producer) live on their own cache lines,
//     as do the producer's cached copy of head and the consumer's cached
//     copy of tail — the cached copies let the hot path run entirely on
//     core-local state and only touch the other side's line when the ring
//     *looks* full/empty (the "cached index" refinement of Lamport's
//     queue);
//   * slots are plain (non-atomic) T; publication is ordered by the
//     release store of the index and the matching acquire load on the
//     other side.
//
// try_push/try_pop never block and never allocate after construction.
// size()/empty() are safe from any thread but only exact when the other
// side is quiescent — good enough for drain loops and depth gauges.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace bussense {

inline constexpr std::size_t kCacheLineBytes = 64;

template <typename T>
class SpscRing {
 public:
  /// A ring holding at least `min_capacity` items (rounded up to the next
  /// power of two; 0 is treated as 1).
  explicit SpscRing(std::size_t min_capacity)
      : mask_(round_up_pow2(min_capacity) - 1),
        slots_(round_up_pow2(min_capacity)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false (value untouched) when the ring is full.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  bool try_push(const T& value) {
    T copy(value);
    return try_push(std::move(copy));
  }

  /// Consumer side. Returns false (out untouched) when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Item count; exact only while the other side is quiescent.
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }
  bool empty() const { return size() == 0; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLineBytes) std::atomic<std::size_t> head_{0};  ///< consumer
  alignas(kCacheLineBytes) std::atomic<std::size_t> tail_{0};  ///< producer
  alignas(kCacheLineBytes) std::size_t cached_head_ = 0;  ///< producer-local
  alignas(kCacheLineBytes) std::size_t cached_tail_ = 0;  ///< consumer-local
};

}  // namespace bussense
