// Phone-side trip recorder (paper Section III-B).
//
// State machine: idle until a beep is detected. On the first beep the phone
// checks the accelerometer variance to reject rapid-train rides (trains use
// the same card readers), then starts a trip. Every subsequent beep appends
// a timestamped cellular sample. If no beep arrives for trip_timeout_s
// (paper: 10 minutes) the trip is concluded and queued for upload.
//
// The recorder is sensor-agnostic: the environment supplies a fingerprint
// scan and an accelerometer-variance reading through callbacks, so the same
// recorder runs against the audio-level beep detector (dsp/beep_detector.h)
// in tests and against the event-level beep channel in day-scale simulation.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "cellular/fingerprint.h"
#include "common/sim_time.h"
#include "sensing/trip.h"

namespace bussense {

struct TripRecorderConfig {
  double trip_timeout_s = 600.0;  ///< silence that concludes a trip (10 min)
  /// Accel-magnitude variance below which the ride is classified as a rapid
  /// train and the beep is ignored.
  double accel_variance_threshold = 0.22;
  /// Minimum samples for a trip to be worth uploading (a single-sample trip
  /// carries no travel-time information).
  std::size_t min_samples = 2;
};

class TripRecorder {
 public:
  using ScanFn = std::function<Fingerprint(SimTime)>;
  using AccelVarianceFn = std::function<double(SimTime)>;

  TripRecorder(TripRecorderConfig config, std::int32_t participant_id,
               ScanFn scan, AccelVarianceFn accel_variance);

  /// Feeds one detected beep. Returns a completed trip if this beep arrived
  /// after the previous trip timed out (the new beep then opens a new trip).
  std::optional<TripUpload> on_beep(SimTime time);

  /// Advances time without a beep; returns the completed trip if the
  /// timeout has elapsed.
  std::optional<TripUpload> tick(SimTime now);

  /// Force-concludes any open trip (end of simulation / app shutdown).
  std::optional<TripUpload> flush();

  bool recording() const { return recording_; }
  std::size_t open_sample_count() const { return samples_.size(); }

 private:
  std::optional<TripUpload> conclude();

  TripRecorderConfig config_;
  std::int32_t participant_id_;
  ScanFn scan_;
  AccelVarianceFn accel_variance_;
  bool recording_ = false;
  SimTime last_beep_time_ = 0.0;
  std::vector<CellularSample> samples_;
};

}  // namespace bussense
