// Accelerometer vehicle-mode model (paper Section III-B).
//
// The phone filters out rapid-train rides (trains share the same IC-card
// readers) by thresholding the variance of the acceleration magnitude:
// buses accelerate, brake and turn frequently, trains run smoothly. We
// model the measured variance over a short window for each vehicle class.
#pragma once

#include "common/rng.h"

namespace bussense {

enum class VehicleClass {
  kBus,
  kRapidTrain,
};

struct AccelModelConfig {
  /// Typical accel-magnitude variance ((m/s^2)^2) over a detection window.
  double bus_variance_median = 0.70;
  double bus_variance_sigma = 0.35;    ///< log-normal shape
  double train_variance_median = 0.06;
  double train_variance_sigma = 0.40;
};

class AccelModel {
 public:
  explicit AccelModel(AccelModelConfig config = {}) : config_(config) {}

  /// Variance of the acceleration magnitude observed over one window.
  double sample_variance(VehicleClass vehicle, Rng& rng) const;

  const AccelModelConfig& config() const { return config_; }

 private:
  AccelModelConfig config_;
};

/// The trip recorder's default decision threshold between train and bus
/// variance populations (between the two medians on a log scale).
constexpr double kDefaultAccelVarianceThreshold = 0.22;

}  // namespace bussense
