#include "sensing/gps_model.h"

#include <cmath>
#include <numbers>

namespace bussense {

double GpsModel::sample_error_m(GpsMode mode, Rng& rng) const {
  switch (mode) {
    case GpsMode::kStationary:
      return rng.lognormal_median(config_.stationary_median_m,
                                  config_.stationary_sigma);
    case GpsMode::kMobileOnBus:
      return rng.lognormal_median(config_.mobile_median_m, config_.mobile_sigma);
  }
  return 0.0;  // unreachable
}

Point GpsModel::sample_fix(Point true_position, GpsMode mode, Rng& rng) const {
  const double r = sample_error_m(mode, rng);
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  return true_position + Point{r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace bussense
