// Phone power model (paper Section IV-D, Table III).
//
// Substitute for the Monsoon power-monitor measurements: a component model
// with per-phone constants (baseline, cellular sampling, GPS receiver,
// microphone ADC) plus a CPU term derived from the DSP operation counts of
// the running algorithm (Goertzel vs FFT). The per-MAC energy is an
// *effective* constant calibrated so the component sums reproduce Table III
// — it folds in wake-up and memory overheads, not just ALU energy.
//
// When GPS and the microphone run concurrently the SoC cannot enter its
// deep idle state between fixes, adding a concurrency overhead term; this
// reproduces the super-additive GPS+Mic rows of Table III.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"

namespace bussense {

enum class SensorConfig {
  kNoSensors,
  kCellular1Hz,
  kGps,
  kCellularMicGoertzel,
  kCellularMicFft,  ///< the baseline the paper's earlier system used
  kGpsMicGoertzel,
};

std::string to_string(SensorConfig config);

struct PhoneProfile {
  std::string name;
  double baseline_mw = 70.0;            ///< screen off, no sensors
  double cellular_sampling_mw = 2.0;    ///< marginal cost of 1 Hz cell scans
  double gps_receiver_mw = 270.0;       ///< continuous tracking at 0.5 Hz
  double mic_adc_mw = 6.0;              ///< microphone + ADC at 8 kHz
  double concurrency_overhead_mw = 97.0;///< GPS + mic wakelock penalty
  double nj_per_mac = 244.0;            ///< effective CPU energy per DSP MAC
  double measurement_rel_std = 0.08;    ///< run-to-run spread of a session
};

/// The two phones the paper measured; constants calibrated to Table III.
PhoneProfile htc_sensation_profile();
PhoneProfile nexus_one_profile();

struct DspWorkload {
  double sample_rate_hz = 8000.0;
  std::size_t tone_count = 2;        ///< monitored beep frequencies
  std::size_t frame_samples = 80;    ///< per-evaluation window (10 ms)
  double fft_macs_per_butterfly = 2.5;
};

class PowerModel {
 public:
  explicit PowerModel(DspWorkload workload = {}) : workload_(workload) {}

  /// Steady-state draw of a sensor configuration, milliwatts.
  double mean_power_mw(const PhoneProfile& phone, SensorConfig config) const;

  /// CPU draw of the beep-detection DSP alone (Goertzel or FFT front end).
  double dsp_power_mw(const PhoneProfile& phone, bool use_fft) const;

  /// One simulated measurement session: mean power plus run-to-run noise
  /// (stands in for a Monsoon capture of `duration_s`).
  double measure_session_mw(const PhoneProfile& phone, SensorConfig config,
                            double duration_s, Rng& rng) const;

  /// DSP multiply-accumulate rate (ops/s) of the chosen front end.
  double dsp_mac_rate(bool use_fft) const;

  const DspWorkload& workload() const { return workload_; }

 private:
  DspWorkload workload_;
};

}  // namespace bussense
