// Urban-canyon GPS error model (paper Section II, Figure 1).
//
// The paper measured GPS fixes in downtown Singapore: multipath from high
// buildings yields median errors of ~40 m when stationary and ~68 m on a
// moving bus (90th percentiles ~75 m and ~130 m; the OCR'd text drops
// digits — EXPERIMENTS.md records the reconstruction). We model the radial
// error as log-normal with those medians/percentiles and a uniform bearing.
#pragma once

#include "common/geo.h"
#include "common/rng.h"

namespace bussense {

enum class GpsMode {
  kStationary,
  kMobileOnBus,  ///< additional attenuation inside the bus
};

struct GpsErrorConfig {
  double stationary_median_m = 40.0;
  double stationary_sigma = 0.49;  ///< log-normal shape; p90 ~ 75 m
  double mobile_median_m = 68.0;
  double mobile_sigma = 0.51;      ///< p90 ~ 130 m
};

class GpsModel {
 public:
  explicit GpsModel(GpsErrorConfig config = {}) : config_(config) {}

  /// Radial error magnitude of one fix, metres.
  double sample_error_m(GpsMode mode, Rng& rng) const;

  /// A reported fix for a device truly at `true_position`.
  Point sample_fix(Point true_position, GpsMode mode, Rng& rng) const;

  const GpsErrorConfig& config() const { return config_; }

 private:
  GpsErrorConfig config_;
};

}  // namespace bussense
