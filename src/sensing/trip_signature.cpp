#include "sensing/trip_signature.h"

#include <bit>

#include "common/rng.h"

namespace bussense {

std::uint64_t trip_signature(const TripUpload& trip) {
  std::uint64_t h =
      mix64(static_cast<std::uint64_t>(static_cast<std::uint32_t>(
          trip.participant_id)) ^
            (static_cast<std::uint64_t>(trip.samples.size()) << 32));
  for (const CellularSample& sample : trip.samples) {
    h = mix64(h ^ std::bit_cast<std::uint64_t>(sample.time));
    // Chain the length before the cells so ({1,2},{3}) and ({1},{2,3})
    // cannot alias.
    h = mix64(h ^ sample.fingerprint.cells.size());
    for (const CellId cell : sample.fingerprint.cells) {
      h = mix64(h ^ static_cast<std::uint64_t>(
                        static_cast<std::uint32_t>(cell)));
    }
  }
  return h;
}

}  // namespace bussense
