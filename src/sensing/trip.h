// Trip data: what a participant's phone uploads to the backend server.
//
// A trip is a sequence of timestamped cellular samples, one per detected
// IC-card beep (paper Section III-B). Simulation-side ground truth rides
// along in AnnotatedTrip for evaluation only — the server never sees it.
#pragma once

#include <cstdint>
#include <vector>

#include "cellular/fingerprint.h"
#include "common/sim_time.h"

namespace bussense {

struct CellularSample {
  SimTime time = 0.0;
  Fingerprint fingerprint;

  friend bool operator==(const CellularSample&, const CellularSample&) = default;
};

struct TripUpload {
  std::int32_t participant_id = 0;
  std::vector<CellularSample> samples;

  bool empty() const { return samples.empty(); }
  friend bool operator==(const TripUpload&, const TripUpload&) = default;
};

/// Evaluation-only annotations produced by the simulator.
struct TripGroundTruth {
  std::int32_t route_id = -1;       ///< directed route of the (first) bus leg
  int board_stop_index = -1;        ///< index into the route's stop list
  int alight_stop_index = -1;
  /// All directed routes ridden, in order; more than one for transfer trips
  /// (the paper's "concatenation of multiple bus routes").
  std::vector<std::int32_t> leg_routes;
  /// True stop id for each sample of the upload, aligned by index;
  /// kInvalidStop (-1) marks a spurious (false-beep) sample.
  std::vector<std::int32_t> sample_stops;
};

struct AnnotatedTrip {
  TripUpload upload;
  TripGroundTruth truth;
};

}  // namespace bussense
