// Calibrated event-level beep channel (DESIGN.md §15).
//
// Day-scale simulation does not synthesize cabin audio for every rider:
// each IC-card tap is delivered to nearby phones as an *event* with a
// calibrated detection probability, plus a low rate of spurious beeps
// (sound-alike noises mid-ride). EventChannel is that error model, pulled
// out of World so the tiered-fidelity simulation (trafficsim/lod_world.h)
// can share one calibrated instance between its Event and OnRails tiers
// while the Focus tier runs the real waveform path underneath.
//
// Calibration: calibrate_event_channel() drives the full audio-DSP stack
// (dsp/audio_synth.h → dsp/beep_detector.h) on synthetic cabin clips with
// known tap times and measures the detection rate and the spurious-event
// rate — the two parameters the event channel needs. The test suite pins
// the calibrated values in a golden band so the shortcut channel cannot
// silently drift away from the waveform truth it stands in for.
//
// Draw discipline: delivered() consumes exactly one Bernoulli draw,
// spurious_count() one Poisson draw and spurious_time() one uniform draw.
// World::build_trip_from_legs consumed exactly this sequence before the
// channel was factored out, so day-scale workloads are bit-identical
// across the refactor (fixed seeds, golden-tested).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/sim_time.h"

namespace bussense {

struct EventChannelConfig {
  /// Probability that a phone on the bus detects one IC-card tap.
  double detection_prob = 0.98;
  /// Mean spurious detections per bus leg (sound-alike noises mid-ride).
  double false_beeps_per_trip = 0.06;

  /// Throws std::invalid_argument on nonsense (probability outside [0, 1],
  /// negative spurious rate).
  void validate() const;
};

/// The event-level delivery model: answers, per tap, "did this phone hear
/// it?", and per leg, "how many spurious beeps, and when?". Stateless
/// between calls; all randomness comes from the caller's Rng.
class EventChannel {
 public:
  explicit EventChannel(EventChannelConfig config = {});

  /// One tap reaches the phone? Consumes one Bernoulli draw.
  bool delivered(Rng& rng) const {
    return rng.bernoulli(config_.detection_prob);
  }

  /// Spurious detections over one bus leg. Consumes one Poisson draw.
  int spurious_count(Rng& rng) const {
    return rng.poisson(config_.false_beeps_per_trip);
  }

  /// When a spurious beep fires within the leg window [t0, t1). Consumes
  /// one uniform draw.
  SimTime spurious_time(SimTime t0, SimTime t1, Rng& rng) const {
    return rng.uniform(t0, t1);
  }

  const EventChannelConfig& config() const { return config_; }

 private:
  EventChannelConfig config_;
};

// ---------------------------------------------------------------- calibration

struct AudioEnvironmentConfig;  // dsp/audio_synth.h
struct BeepDetectorConfig;      // dsp/beep_detector.h

/// What a calibration run measured from the waveform path.
struct EventChannelCalibration {
  std::size_t clips = 0;            ///< cabin clips rendered
  std::size_t taps = 0;             ///< true taps across all clips
  std::size_t detected = 0;         ///< taps matched by a detector event
  std::size_t spurious = 0;         ///< detector events matching no tap
  double audio_seconds = 0.0;       ///< total rendered audio

  /// Measured per-tap detection probability.
  double detection_prob() const {
    return taps > 0 ? static_cast<double>(detected) / static_cast<double>(taps)
                    : 0.0;
  }
  /// Measured spurious-event rate, scaled to a typical leg duration.
  double false_beeps_per_trip(double typical_trip_s) const {
    return audio_seconds > 0.0
               ? static_cast<double>(spurious) / audio_seconds * typical_trip_s
               : 0.0;
  }
  /// The calibrated channel parameters for legs of `typical_trip_s`.
  EventChannelConfig to_config(double typical_trip_s) const {
    EventChannelConfig config;
    config.detection_prob = detection_prob();
    config.false_beeps_per_trip = false_beeps_per_trip(typical_trip_s);
    return config;
  }
};

/// Runs `clips` synthetic cabin clips of `clip_s` seconds, each carrying
/// `taps_per_clip` taps at deterministic jittered positions, through the
/// audio synthesiser and the Goertzel beep detector, and counts matches
/// within ±`match_tolerance_s`. Deterministic given `seed`.
EventChannelCalibration calibrate_event_channel(
    const AudioEnvironmentConfig& audio, const BeepDetectorConfig& detector,
    int clips, double clip_s, int taps_per_clip, std::uint64_t seed,
    double match_tolerance_s = 0.15);

}  // namespace bussense
