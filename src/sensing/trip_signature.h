// Content signature of a trip upload, for duplicate/replay detection.
//
// A retrying phone resends the same upload byte for byte, so the admission
// stage (core/admission.h) fingerprints each upload with a 64-bit hash of
// its full content — participant id, every sample timestamp (bit pattern,
// so ±0.0 and NaN payloads cannot alias) and every fingerprint cell — and
// keeps recent signatures in a bounded LRU. Equal uploads always collide by
// construction; unequal uploads collide with probability ~2⁻⁶⁴, which over
// any realistic dedup window is negligible next to the sensing noise floor.
#pragma once

#include <cstdint>

#include "sensing/trip.h"

namespace bussense {

/// Order-sensitive 64-bit content hash of the upload (mix64 chaining).
std::uint64_t trip_signature(const TripUpload& trip);

}  // namespace bussense
