#include "sensing/accel_model.h"

namespace bussense {

double AccelModel::sample_variance(VehicleClass vehicle, Rng& rng) const {
  switch (vehicle) {
    case VehicleClass::kBus:
      return rng.lognormal_median(config_.bus_variance_median,
                                  config_.bus_variance_sigma);
    case VehicleClass::kRapidTrain:
      return rng.lognormal_median(config_.train_variance_median,
                                  config_.train_variance_sigma);
  }
  return 0.0;  // unreachable
}

}  // namespace bussense
