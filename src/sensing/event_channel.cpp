#include "sensing/event_channel.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "dsp/audio_synth.h"
#include "dsp/beep_detector.h"

namespace bussense {

void EventChannelConfig::validate() const {
  if (!(detection_prob >= 0.0 && detection_prob <= 1.0)) {
    throw std::invalid_argument("EventChannelConfig: detection_prob outside [0, 1]");
  }
  if (!(false_beeps_per_trip >= 0.0)) {
    throw std::invalid_argument("EventChannelConfig: negative false_beeps_per_trip");
  }
}

EventChannel::EventChannel(EventChannelConfig config) : config_(config) {
  config_.validate();
}

EventChannelCalibration calibrate_event_channel(
    const AudioEnvironmentConfig& audio, const BeepDetectorConfig& detector,
    int clips, double clip_s, int taps_per_clip, std::uint64_t seed,
    double match_tolerance_s) {
  if (clips < 0 || taps_per_clip < 0 || clip_s <= 0.0) {
    throw std::invalid_argument("calibrate_event_channel: bad clip geometry");
  }
  EventChannelCalibration cal;
  cal.clips = static_cast<std::size_t>(clips);
  for (int clip = 0; clip < clips; ++clip) {
    Rng rng = Rng::stream(seed, static_cast<std::uint64_t>(clip));
    // Taps spread evenly with jitter, clear of clip edges so the detector's
    // baseline window has settled before the first burst.
    std::vector<SimTime> taps;
    taps.reserve(static_cast<std::size_t>(taps_per_clip));
    const double lead = 1.0;
    const double span = clip_s - 2.0 * lead;
    for (int k = 0; k < taps_per_clip; ++k) {
      double slot = span * (k + 0.5) / std::max(taps_per_clip, 1);
      taps.push_back(lead + slot + rng.uniform(-0.12, 0.12));
    }
    std::sort(taps.begin(), taps.end());

    std::vector<float> samples = synthesize_bus_audio(audio, clip_s, taps, rng);
    BeepDetector det(detector);
    std::vector<BeepEvent> events = det.process(samples);

    // Greedy one-to-one matching: each event claims the nearest unclaimed tap
    // within tolerance; leftover events are spurious.
    std::vector<bool> claimed(taps.size(), false);
    for (const BeepEvent& e : events) {
      std::size_t best = taps.size();
      double best_dist = match_tolerance_s;
      for (std::size_t i = 0; i < taps.size(); ++i) {
        if (claimed[i]) continue;
        double dist = std::abs(e.time - taps[i]);
        if (dist <= best_dist) {
          best = i;
          best_dist = dist;
        }
      }
      if (best < taps.size()) {
        claimed[best] = true;
      } else {
        ++cal.spurious;
      }
    }
    cal.taps += taps.size();
    for (bool c : claimed) {
      if (c) ++cal.detected;
    }
    cal.audio_seconds += clip_s;
  }
  return cal;
}

}  // namespace bussense
