#include "sensing/trip_recorder.h"

#include <stdexcept>
#include <utility>

namespace bussense {

TripRecorder::TripRecorder(TripRecorderConfig config,
                           std::int32_t participant_id, ScanFn scan,
                           AccelVarianceFn accel_variance)
    : config_(config),
      participant_id_(participant_id),
      scan_(std::move(scan)),
      accel_variance_(std::move(accel_variance)) {
  if (!scan_ || !accel_variance_) {
    throw std::invalid_argument("TripRecorder: callbacks must be set");
  }
}

std::optional<TripUpload> TripRecorder::on_beep(SimTime time) {
  std::optional<TripUpload> completed;
  if (recording_ && time - last_beep_time_ > config_.trip_timeout_s) {
    completed = conclude();
  }
  if (!recording_) {
    // First beep of a potential trip: reject rapid trains by accelerometer
    // variance before committing to record.
    if (accel_variance_(time) < config_.accel_variance_threshold) {
      return completed;
    }
    recording_ = true;
    samples_.clear();
  }
  samples_.push_back(CellularSample{time, scan_(time)});
  last_beep_time_ = time;
  return completed;
}

std::optional<TripUpload> TripRecorder::tick(SimTime now) {
  if (recording_ && now - last_beep_time_ > config_.trip_timeout_s) {
    return conclude();
  }
  return std::nullopt;
}

std::optional<TripUpload> TripRecorder::flush() {
  if (recording_) return conclude();
  return std::nullopt;
}

std::optional<TripUpload> TripRecorder::conclude() {
  recording_ = false;
  if (samples_.size() < config_.min_samples) {
    samples_.clear();
    return std::nullopt;
  }
  TripUpload trip;
  trip.participant_id = participant_id_;
  trip.samples = std::move(samples_);
  samples_.clear();
  return trip;
}

}  // namespace bussense
