#include "sensing/power_model.h"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.h"
#include "dsp/goertzel.h"

namespace bussense {

std::string to_string(SensorConfig config) {
  switch (config) {
    case SensorConfig::kNoSensors: return "No sensors";
    case SensorConfig::kCellular1Hz: return "Cellular 1Hz";
    case SensorConfig::kGps: return "GPS";
    case SensorConfig::kCellularMicGoertzel: return "Cellular+Mic(Goertzel)";
    case SensorConfig::kCellularMicFft: return "Cellular+Mic(FFT)";
    case SensorConfig::kGpsMicGoertzel: return "GPS+Mic(Goertzel)";
  }
  return "?";
}

PhoneProfile htc_sensation_profile() {
  PhoneProfile p;
  p.name = "HTC Sensation";
  p.baseline_mw = 70.0;
  p.cellular_sampling_mw = 2.0;
  p.gps_receiver_mw = 270.0;
  p.mic_adc_mw = 6.0;
  p.concurrency_overhead_mw = 97.0;
  p.nj_per_mac = 244.0;
  p.measurement_rel_std = 0.08;
  return p;
}

PhoneProfile nexus_one_profile() {
  PhoneProfile p;
  p.name = "Nexus One";
  p.baseline_mw = 84.0;
  p.cellular_sampling_mw = 1.0;
  p.gps_receiver_mw = 249.0;
  p.mic_adc_mw = 6.0;
  p.concurrency_overhead_mw = 99.0;
  p.nj_per_mac = 312.0;
  p.measurement_rel_std = 0.10;
  return p;
}

double PowerModel::dsp_mac_rate(bool use_fft) const {
  const double frames_per_s =
      workload_.sample_rate_hz / static_cast<double>(workload_.frame_samples);
  if (use_fft) {
    // The FFT front end transforms an overlapping window of the next power
    // of two >= 3x the frame (the paper's earlier design used full-spectrum
    // frames), paying the butterfly count every hop.
    const std::size_t window = next_pow2(workload_.frame_samples * 3);
    return frames_per_s * static_cast<double>(fft_op_count(window)) *
           workload_.fft_macs_per_butterfly;
  }
  return workload_.sample_rate_hz * static_cast<double>(workload_.tone_count);
}

double PowerModel::dsp_power_mw(const PhoneProfile& phone, bool use_fft) const {
  // mW = (MAC/s) * (nJ/MAC) * 1e-9 J/nJ * 1e3 mW/W
  return dsp_mac_rate(use_fft) * phone.nj_per_mac * 1e-6;
}

double PowerModel::mean_power_mw(const PhoneProfile& phone,
                                 SensorConfig config) const {
  double mw = phone.baseline_mw;
  switch (config) {
    case SensorConfig::kNoSensors:
      break;
    case SensorConfig::kCellular1Hz:
      mw += phone.cellular_sampling_mw;
      break;
    case SensorConfig::kGps:
      mw += phone.gps_receiver_mw;
      break;
    case SensorConfig::kCellularMicGoertzel:
      mw += phone.cellular_sampling_mw + phone.mic_adc_mw +
            dsp_power_mw(phone, /*use_fft=*/false);
      break;
    case SensorConfig::kCellularMicFft:
      mw += phone.cellular_sampling_mw + phone.mic_adc_mw +
            dsp_power_mw(phone, /*use_fft=*/true);
      break;
    case SensorConfig::kGpsMicGoertzel:
      mw += phone.gps_receiver_mw + phone.mic_adc_mw +
            dsp_power_mw(phone, /*use_fft=*/false) +
            phone.concurrency_overhead_mw;
      break;
  }
  return mw;
}

double PowerModel::measure_session_mw(const PhoneProfile& phone,
                                      SensorConfig config, double duration_s,
                                      Rng& rng) const {
  if (duration_s <= 0.0) {
    throw std::invalid_argument("measure_session_mw: non-positive duration");
  }
  const double mean = mean_power_mw(phone, config);
  // Longer captures average out the run-to-run variation.
  const double ref_duration_s = 600.0;
  const double sigma = mean * phone.measurement_rel_std *
                       std::sqrt(ref_duration_s / duration_s);
  return std::max(0.0, mean + rng.normal(0.0, sigma));
}

}  // namespace bussense
