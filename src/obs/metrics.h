// Pipeline-wide observability: counters, gauges and fixed-bucket latency
// histograms behind one registry.
//
// Design constraints (DESIGN.md §8):
//
//   * the hot path never takes a lock — every instrument is a handful of
//     relaxed atomics, and callers cache the instrument pointer returned by
//     the registry, so recording is a few nanoseconds;
//   * instruments never influence results — the pipeline is bit-identical
//     with metrics on or off (property-tested);
//   * snapshots are deterministic — instruments are keyed by name and
//     exported in sorted order, so two registries fed the same values
//     produce the same JSON regardless of registration or thread order.
//
// The registry mutex guards only registration/lookup (rare, setup-time) and
// snapshotting; concurrent record()/snapshot() is safe — a snapshot is a
// consistent-enough point-in-time read of monotonic counters.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace bussense {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, worker count). Lock-free.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: immutable upper bounds chosen at registration,
/// one overflow bucket, running count and sum. record() is a binary search
/// over the bounds plus two relaxed atomic adds — lock-free and wait-free
/// on x86. Percentiles are linearly interpolated inside the bucket, so
/// their resolution is the bucket ladder's (the default 1-2-5 latency
/// ladder resolves p50/p99 to within a factor ~2 — plenty to tell a 50 µs
/// stage from a 5 ms one).
class BucketHistogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit BucketHistogram(std::vector<double> upper_bounds);

  void record(double value);

  /// 1-2-5 ladder from 1 µs to 10 s — fits every pipeline stage latency.
  static const std::vector<double>& default_latency_bounds_s();

  struct Snapshot {
    std::vector<double> bounds;          ///< finite upper bounds
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (overflow last)
    std::uint64_t total = 0;
    double sum = 0.0;

    double mean() const { return total ? sum / static_cast<double>(total) : 0.0; }
    /// Interpolated q-quantile, q in [0, 1]. Values in the overflow bucket
    /// report the last finite bound.
    double percentile(double q) const;
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  /// Adds `other`'s buckets into this histogram (bounds must match).
  void merge(const BucketHistogram& other);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Deterministic point-in-time view of a registry: name-sorted maps.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, BucketHistogram::Snapshot> histograms;

  /// Stable JSON export: keys sorted, doubles printed with %.17g, histogram
  /// entries carry count/sum/p50/p99 plus the full bucket vector.
  std::string to_json() const;
};

/// Named instruments, created on first use and stable in memory for the
/// registry's lifetime (so cached Counter*/BucketHistogram* handles never move).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers (or finds) a histogram; `bounds` applies on first creation.
  BucketHistogram& histogram(
      const std::string& name,
      const std::vector<double>& bounds = BucketHistogram::default_latency_bounds_s());

  /// Folds `other` into this registry: counters and histogram buckets sum;
  /// gauges take `other`'s value (last-writer-wins, matching their
  /// instantaneous semantics). Deterministic: merging per-thread registries
  /// in a fixed order yields the same counters, bucket counts and
  /// percentiles at any shard count; only a histogram's running `sum` is a
  /// float accumulation, so it agrees across shardings to within rounding.
  void merge(const MetricsRegistry& other);

  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<BucketHistogram>> histograms_;
};

/// Monotonic time in seconds (steady clock) for latency instruments.
inline double monotonic_time_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace bussense
