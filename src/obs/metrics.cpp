#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace bussense {

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("BucketHistogram: no buckets");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("BucketHistogram: bounds must strictly increase");
    }
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void BucketHistogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

const std::vector<double>& BucketHistogram::default_latency_bounds_s() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1e-6; decade < 20.0; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    return b;  // 1 µs, 2 µs, 5 µs, …, 10 s (last bound 50 s trimmed by <20)
  }();
  return bounds;
}

BucketHistogram::Snapshot BucketHistogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.total = total_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double BucketHistogram::Snapshot::percentile(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (static_cast<double>(cumulative + in_bucket) >= rank && in_bucket > 0) {
      if (i >= bounds.size()) return bounds.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double into = rank - static_cast<double>(cumulative);
      return lo + (hi - lo) * std::clamp(into / static_cast<double>(in_bucket),
                                         0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

void BucketHistogram::merge(const BucketHistogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("BucketHistogram::merge: bucket bounds differ");
  }
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

BucketHistogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<BucketHistogram>(bounds);
  return *slot;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Lock ordering: other is read under its own mutex into a snapshot-like
  // copy first, so merge(a, b) and concurrent recording never deadlock.
  std::vector<std::pair<std::string, std::uint64_t>> add_counters;
  std::vector<std::pair<std::string, double>> set_gauges;
  std::vector<std::pair<std::string, const BucketHistogram*>> add_histograms;
  {
    const std::lock_guard<std::mutex> lock(other.mutex_);
    for (const auto& [name, c] : other.counters_) {
      add_counters.emplace_back(name, c->value());
    }
    for (const auto& [name, g] : other.gauges_) {
      set_gauges.emplace_back(name, g->value());
    }
    for (const auto& [name, h] : other.histograms_) {
      add_histograms.emplace_back(name, h.get());
    }
  }
  // Safe as long as `other` outlives the call (histogram pointers are read
  // outside its lock; instruments are never deleted while a registry lives).
  for (const auto& [name, v] : add_counters) counter(name).add(v);
  for (const auto& [name, v] : set_gauges) gauge(name).set(v);
  for (const auto& [name, h] : add_histograms) {
    histogram(name, h->bounds()).merge(*h);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": " << num(v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "" : ",") << "\n    \"" << name << "\": {\"count\": "
       << h.total << ", \"sum\": " << num(h.sum) << ", \"mean\": "
       << num(h.mean()) << ", \"p50\": " << num(h.percentile(0.50))
       << ", \"p99\": " << num(h.percentile(0.99)) << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      os << (i ? ", " : "") << "[\""
         << (i < h.bounds.size() ? num(h.bounds[i]) : std::string("+inf"))
         << "\", " << h.counts[i] << "]";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace bussense
