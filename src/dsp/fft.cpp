#include "dsp/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bussense {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& data) {
  const std::size_t n = data.size();
  if (n < 2 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("fft_inplace: size must be a power of two >= 2");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<std::complex<double>> fft_real(std::span<const float> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("fft_real: empty window");
  }
  std::vector<std::complex<double>> data(next_pow2(samples.size()));
  for (std::size_t i = 0; i < samples.size(); ++i) data[i] = samples[i];
  if (data.size() < 2) data.resize(2);
  fft_inplace(data);
  return data;
}

std::vector<double> power_spectrum(std::span<const float> samples) {
  const auto spec = fft_real(samples);
  const std::size_t half = spec.size() / 2;
  std::vector<double> power(half + 1);
  for (std::size_t k = 0; k <= half; ++k) {
    power[k] = std::norm(spec[k]) / static_cast<double>(samples.size());
  }
  return power;
}

double fft_bin_power(std::span<const float> samples, double sample_rate_hz,
                     double frequency_hz) {
  const auto power = power_spectrum(samples);
  const std::size_t fft_size = next_pow2(samples.size());
  const double bin_width = sample_rate_hz / static_cast<double>(fft_size);
  auto bin = static_cast<std::size_t>(std::lround(frequency_hz / bin_width));
  if (bin >= power.size()) bin = power.size() - 1;
  return power[bin];
}

std::size_t fft_op_count(std::size_t n) {
  const std::size_t p = next_pow2(n);
  std::size_t log2p = 0;
  while ((std::size_t{1} << log2p) < p) ++log2p;
  return p / 2 * log2p;  // butterflies
}

}  // namespace bussense
