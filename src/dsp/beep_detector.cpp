#include "dsp/beep_detector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/goertzel.h"

namespace bussense {

namespace {
// Baseline needs at least this many frames before detections are armed.
constexpr std::size_t kMinBaselineFrames = 10;
}  // namespace

BeepDetector::BeepDetector(BeepDetectorConfig config)
    : config_(std::move(config)),
      frame_len_(static_cast<std::size_t>(config_.sample_rate_hz *
                                          config_.frame_seconds)),
      smooth_frames_(std::max<std::size_t>(
          1, static_cast<std::size_t>(config_.smoothing_seconds /
                                      config_.frame_seconds))) {
  if (frame_len_ == 0) {
    throw std::invalid_argument("BeepDetector: frame too short for sample rate");
  }
  if (config_.tone_frequencies_hz.empty()) {
    throw std::invalid_argument("BeepDetector: no tone frequencies");
  }
  for (double f : config_.tone_frequencies_hz) {
    bands_.push_back(Band{f, {}, 0.0});
    recent_raw_.emplace_back();
  }
  frame_buf_.reserve(frame_len_);
}

std::vector<BeepEvent> BeepDetector::process(std::span<const float> samples) {
  std::vector<BeepEvent> events;
  for (float s : samples) {
    frame_buf_.push_back(s);
    ++samples_consumed_;
    if (frame_buf_.size() == frame_len_) {
      finish_frame(events);
      frame_buf_.clear();
    }
  }
  return events;
}

void BeepDetector::finish_frame(std::vector<BeepEvent>& events) {
  ++frames_;
  // Wideband frame energy used to normalise the tone powers, making the
  // detector robust to overall volume (pocket vs hand-held phone).
  double frame_energy = 0.0;
  for (float s : frame_buf_) frame_energy += static_cast<double>(s) * s;
  frame_energy /= static_cast<double>(frame_len_);
  const double norm = frame_energy + 1e-12;

  double min_jump_sigmas = std::numeric_limits<double>::infinity();
  bool baseline_ready = true;
  bool bands_strong = true;
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    Band& band = bands_[b];
    const double raw =
        goertzel_power(frame_buf_, config_.sample_rate_hz, band.frequency) / norm;
    auto& recent = recent_raw_[b];
    recent.push_back(raw);
    if (recent.size() > smooth_frames_) recent.erase(recent.begin());
    double sum = 0.0;
    for (double v : recent) sum += v;
    band.smoothed = sum / static_cast<double>(recent.size());
    // The Goertzel power of an in-band tone scales with ~N/2 of the frame
    // energy share; compare against the frame-normalised level accordingly.
    const double band_fraction =
        band.smoothed / (0.5 * static_cast<double>(frame_len_));
    bands_strong = bands_strong && band_fraction >= config_.min_band_fraction;

    if (band.smooth_buf.size() < kMinBaselineFrames) {
      baseline_ready = false;
    } else {
      double mean = 0.0;
      for (double v : band.smooth_buf) mean += v;
      mean /= static_cast<double>(band.smooth_buf.size());
      double var = 0.0;
      for (double v : band.smooth_buf) var += (v - mean) * (v - mean);
      var /= static_cast<double>(band.smooth_buf.size());
      // Deviation floor: slow amplitude modulation of the background (crowd
      // babble) shrinks neither to silence nor to beep-scale jumps; tying
      // the floor to the baseline mean keeps 3-sigma meaningful.
      const double sigma =
          std::max(std::sqrt(var), config_.sigma_floor_fraction * mean + 1e-12);
      min_jump_sigmas =
          std::min(min_jump_sigmas, (band.smoothed - mean) / sigma);
    }
  }

  const SimTime frame_start =
      origin_ + static_cast<double>(samples_consumed_ - frame_len_) /
                    config_.sample_rate_hz;

  const bool triggered = baseline_ready && bands_strong &&
                         min_jump_sigmas >= config_.threshold_sigmas;
  if (triggered &&
      frame_start - last_event_time_ >= config_.refractory_seconds) {
    events.push_back(BeepEvent{frame_start, min_jump_sigmas});
    last_event_time_ = frame_start;
  }

  // Keep the baseline clean: frames that look like a beep are excluded so
  // one beep does not desensitise the detector to the next.
  if (!baseline_ready || min_jump_sigmas < config_.threshold_sigmas) {
    for (Band& band : bands_) {
      band.smooth_buf.push_back(band.smoothed);
      if (band.smooth_buf.size() > config_.baseline_frames) {
        band.smooth_buf.erase(band.smooth_buf.begin());
      }
    }
  }
}

}  // namespace bussense
