#include "dsp/beep_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bussense {

namespace {
// Baseline needs at least this many frames before detections are armed.
constexpr std::size_t kMinBaselineFrames = 10;
}  // namespace

BeepDetector::BeepDetector(BeepDetectorConfig config)
    : config_(std::move(config)),
      frame_len_(static_cast<std::size_t>(config_.sample_rate_hz *
                                          config_.frame_seconds)),
      bank_(config_.sample_rate_hz, config_.tone_frequencies_hz),
      band_powers_(config_.tone_frequencies_hz.size(), 0.0) {
  if (frame_len_ == 0) {
    throw std::invalid_argument("BeepDetector: frame too short for sample rate");
  }
  if (config_.tone_frequencies_hz.empty()) {
    throw std::invalid_argument("BeepDetector: no tone frequencies");
  }
  const std::size_t smooth_frames = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.smoothing_seconds /
                                  config_.frame_seconds));
  const std::size_t baseline_frames =
      std::max<std::size_t>(1, config_.baseline_frames);
  bands_.reserve(config_.tone_frequencies_hz.size());
  for (std::size_t b = 0; b < config_.tone_frequencies_hz.size(); ++b) {
    bands_.emplace_back(smooth_frames, baseline_frames);
  }
  frame_buf_.reserve(frame_len_);
}

std::vector<BeepEvent> BeepDetector::process(std::span<const float> samples) {
  std::vector<BeepEvent> events;
  for (float s : samples) {
    frame_buf_.push_back(s);
    ++samples_consumed_;
    if (frame_buf_.size() == frame_len_) {
      finish_frame(events);
      frame_buf_.clear();
    }
  }
  return events;
}

void BeepDetector::finish_frame(std::vector<BeepEvent>& events) {
  ++frames_;
  // One pass over the frame advances every tone recurrence and accumulates
  // the wideband energy that normalises the tone powers (making the
  // detector robust to overall volume — pocket vs hand-held phone).
  const double frame_energy = bank_.analyze(frame_buf_, band_powers_);
  const double norm = frame_energy + 1e-12;

  double min_jump_sigmas = std::numeric_limits<double>::infinity();
  bool baseline_ready = true;
  bool bands_strong = true;
  for (std::size_t b = 0; b < bands_.size(); ++b) {
    Band& band = bands_[b];
    const double raw = band_powers_[b] / norm;
    band.recent.push(raw);
    band.smoothed = band.recent.mean();
    // The Goertzel power of an in-band tone scales with ~N/2 of the frame
    // energy share; compare against the frame-normalised level accordingly.
    const double band_fraction =
        band.smoothed / (0.5 * static_cast<double>(frame_len_));
    bands_strong = bands_strong && band_fraction >= config_.min_band_fraction;

    if (band.baseline.size() < kMinBaselineFrames) {
      baseline_ready = false;
    } else {
      const double mean = band.baseline.mean();
      // Deviation floor: slow amplitude modulation of the background (crowd
      // babble) shrinks neither to silence nor to beep-scale jumps; tying
      // the floor to the baseline mean keeps 3-sigma meaningful.
      const double sigma =
          std::max(std::sqrt(band.baseline.variance()),
                   config_.sigma_floor_fraction * mean + 1e-12);
      min_jump_sigmas =
          std::min(min_jump_sigmas, (band.smoothed - mean) / sigma);
    }
  }

  const SimTime frame_start =
      origin_ + static_cast<double>(samples_consumed_ - frame_len_) /
                    config_.sample_rate_hz;

  const bool triggered = baseline_ready && bands_strong &&
                         min_jump_sigmas >= config_.threshold_sigmas;
  if (triggered &&
      frame_start - last_event_time_ >= config_.refractory_seconds) {
    events.push_back(BeepEvent{frame_start, min_jump_sigmas});
    last_event_time_ = frame_start;
  }

  // Keep the baseline clean: frames that look like a beep are excluded so
  // one beep does not desensitise the detector to the next.
  if (!baseline_ready || min_jump_sigmas < config_.threshold_sigmas) {
    for (Band& band : bands_) band.baseline.push(band.smoothed);
  }
}

}  // namespace bussense
