// IC-card beep detector (paper Section III-B, "Bus riders").
//
// The detector monitors the card-reader tone frequencies with Goertzel
// filters over short frames, normalises band power against a wideband
// reference, smooths with a 30 ms sliding window, and declares a beep when
// every monitored band jumps more than three standard deviations above its
// recent baseline. A refractory period collapses one physical beep into one
// detection event.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/sim_time.h"
#include "dsp/goertzel_bank.h"
#include "dsp/sliding_window.h"

namespace bussense {

struct BeepDetectorConfig {
  double sample_rate_hz = 8000.0;
  /// Tone components of the card-reader beep. Singapore EZ-link readers emit
  /// a 1 kHz + 3 kHz combination; London Oyster uses a single 2.4 kHz tone.
  std::vector<double> tone_frequencies_hz = {1000.0, 3000.0};
  /// Analysis frame length (one Goertzel evaluation per frame).
  double frame_seconds = 0.010;
  /// Smoothing window over frame powers; the paper uses w = 30 ms.
  double smoothing_seconds = 0.030;
  /// Jump threshold in baseline standard deviations (paper: 3 sigma).
  double threshold_sigmas = 3.0;
  /// Number of past frames forming the noise baseline.
  std::size_t baseline_frames = 50;
  /// Deviation floor as a fraction of the baseline mean: slow modulation of
  /// background noise (crowd babble) must not read as a 3-sigma jump.
  double sigma_floor_fraction = 0.25;
  /// A tone band must also hold at least this fraction of the frame's total
  /// energy — a beep concentrates energy at its tones, babble does not.
  double min_band_fraction = 0.04;
  /// Minimum spacing between two distinct detections.
  double refractory_seconds = 0.25;
};

struct BeepEvent {
  SimTime time = 0.0;       ///< time of the triggering frame start
  double strength = 0.0;    ///< smallest per-band jump, in baseline sigmas
};

/// Streaming detector: feed audio in arbitrary chunks, collect events.
class BeepDetector {
 public:
  explicit BeepDetector(BeepDetectorConfig config = {});

  /// Processes `samples` starting at stream time implied by samples already
  /// consumed. Returns events detected within this chunk.
  std::vector<BeepEvent> process(std::span<const float> samples);

  /// Stream time origin; event times are origin + sample offset.
  void set_origin(SimTime origin) { origin_ = origin; }

  const BeepDetectorConfig& config() const { return config_; }
  std::size_t frames_processed() const { return frames_; }

 private:
  void finish_frame(std::vector<BeepEvent>& events);

  BeepDetectorConfig config_;
  std::size_t frame_len_;
  std::vector<float> frame_buf_;
  SimTime origin_ = 0.0;
  std::size_t samples_consumed_ = 0;
  std::size_t frames_ = 0;
  // Per-band state. Both windows are O(1) running-sum rings: `recent` is
  // the w = 30 ms smoothing window over raw powers, `baseline` the noise
  // history the jump threshold is measured against.
  struct Band {
    Band(std::size_t smooth_frames, std::size_t baseline_frames)
        : recent(smooth_frames), baseline(baseline_frames) {}
    RingWindow recent;
    RingWindow baseline;
    double smoothed = 0.0;
  };
  std::vector<Band> bands_;
  GoertzelBank bank_;             ///< all tone recurrences in one frame pass
  std::vector<double> band_powers_;  ///< scratch for the bank output
  double last_event_time_ = -1e18;
};

}  // namespace bussense
