// Goertzel algorithm — single-bin DFT power extraction.
//
// The paper detects IC-card beeps by monitoring a small, known set of audio
// frequencies (1 kHz + 3 kHz in Singapore). Goertzel computes the power at
// one frequency in O(N) multiply-adds, so for M target frequencies it costs
// O(K_g * N * M) versus the FFT's O(K_f * N log N) for all bins; when
// M < log2(N) (here M = 2 and log2(240) ~ 7.9) Goertzel wins, which is the
// paper's Section IV-D energy argument.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bussense {

/// Recurrence coefficient 2·cos(2π·f/fs) shared by the scalar filter and
/// the multi-tone bank. Throws unless 0 < frequency_hz < sample_rate_hz / 2.
double goertzel_coefficient(double sample_rate_hz, double frequency_hz);

/// Power of the frequency bin nearest `frequency_hz` over `samples`,
/// normalised by the window length so windows of different sizes compare.
/// Preconditions: !samples.empty(), 0 < frequency_hz < sample_rate_hz / 2.
double goertzel_power(std::span<const float> samples, double sample_rate_hz,
                      double frequency_hz);

/// Powers for several target frequencies over the same window. Returns one
/// value per entry of `frequencies_hz`, in order.
std::vector<double> goertzel_powers(std::span<const float> samples,
                                    double sample_rate_hz,
                                    std::span<const double> frequencies_hz);

/// Streaming form: feed samples incrementally, read power per window.
class GoertzelFilter {
 public:
  GoertzelFilter(double sample_rate_hz, double frequency_hz);

  void reset();
  void push(float sample);
  /// Power of the accumulated window, normalised by its length.
  double power() const;
  std::size_t samples_seen() const { return n_; }

 private:
  double coeff_;
  double s1_ = 0.0;
  double s2_ = 0.0;
  std::size_t n_ = 0;
};

/// Multiply-add operation count of Goertzel for window size `n` and `m`
/// monitored frequencies — the K_g * N * M term of the paper's cost model.
constexpr std::size_t goertzel_op_count(std::size_t n, std::size_t m) {
  return n * m;  // one multiply-add per sample per frequency
}

}  // namespace bussense
