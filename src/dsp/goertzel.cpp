#include "dsp/goertzel.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bussense {

double goertzel_coefficient(double sample_rate_hz, double frequency_hz) {
  if (frequency_hz <= 0.0 || frequency_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument("Goertzel frequency must be in (0, Nyquist)");
  }
  const double omega = 2.0 * std::numbers::pi * frequency_hz / sample_rate_hz;
  return 2.0 * std::cos(omega);
}

double goertzel_power(std::span<const float> samples, double sample_rate_hz,
                      double frequency_hz) {
  if (samples.empty()) {
    throw std::invalid_argument("goertzel_power: empty window");
  }
  const double coeff = goertzel_coefficient(sample_rate_hz, frequency_hz);
  double s1 = 0.0, s2 = 0.0;
  for (float x : samples) {
    const double s0 = x + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  const double power = s1 * s1 + s2 * s2 - coeff * s1 * s2;
  return power / static_cast<double>(samples.size());
}

std::vector<double> goertzel_powers(std::span<const float> samples,
                                    double sample_rate_hz,
                                    std::span<const double> frequencies_hz) {
  std::vector<double> out;
  out.reserve(frequencies_hz.size());
  for (double f : frequencies_hz) {
    out.push_back(goertzel_power(samples, sample_rate_hz, f));
  }
  return out;
}

GoertzelFilter::GoertzelFilter(double sample_rate_hz, double frequency_hz)
    : coeff_(goertzel_coefficient(sample_rate_hz, frequency_hz)) {}

void GoertzelFilter::reset() {
  s1_ = s2_ = 0.0;
  n_ = 0;
}

void GoertzelFilter::push(float sample) {
  const double s0 = sample + coeff_ * s1_ - s2_;
  s2_ = s1_;
  s1_ = s0;
  ++n_;
}

double GoertzelFilter::power() const {
  if (n_ == 0) return 0.0;
  const double power = s1_ * s1_ + s2_ * s2_ - coeff_ * s1_ * s2_;
  return power / static_cast<double>(n_);
}

}  // namespace bussense
