#include "dsp/goertzel_bank.h"

#include <cassert>

#include "dsp/goertzel.h"

namespace bussense {

GoertzelBank::GoertzelBank(double sample_rate_hz,
                           std::span<const double> frequencies_hz) {
  coeffs_.reserve(frequencies_hz.size());
  for (const double f : frequencies_hz) {
    coeffs_.push_back(goertzel_coefficient(sample_rate_hz, f));
  }
  s1_.assign(coeffs_.size(), 0.0);
  s2_.assign(coeffs_.size(), 0.0);
}

double GoertzelBank::analyze(std::span<const float> frame,
                             std::span<double> powers_out) {
  assert(!frame.empty());
  assert(powers_out.size() == coeffs_.size());
  const std::size_t k = coeffs_.size();
  const double* const c = coeffs_.data();
  const double n = static_cast<double>(frame.size());

  // The two-tone case (the default card-reader signature) keeps all state
  // in registers: the three recurrences are independent dependency chains,
  // so they pipeline in the latency shadow of one scalar Goertzel pass.
  if (k == 2) {
    const double c0 = c[0], c1 = c[1];
    double a1 = 0.0, a2 = 0.0, b1 = 0.0, b2 = 0.0, energy = 0.0;
    for (const float sample : frame) {
      const double x = static_cast<double>(sample);
      energy += x * x;
      const double a0 = x + c0 * a1 - a2;
      a2 = a1;
      a1 = a0;
      const double b0 = x + c1 * b1 - b2;
      b2 = b1;
      b1 = b0;
    }
    powers_out[0] = (a1 * a1 + a2 * a2 - c0 * a1 * a2) / n;
    powers_out[1] = (b1 * b1 + b2 * b2 - c1 * b1 * b2) / n;
    return energy / n;
  }

  double* const s1 = s1_.data();
  double* const s2 = s2_.data();
  for (std::size_t b = 0; b < k; ++b) s1[b] = s2[b] = 0.0;
  double energy = 0.0;
  for (const float sample : frame) {
    const double x = static_cast<double>(sample);
    energy += x * x;
    for (std::size_t b = 0; b < k; ++b) {
      const double s0 = x + c[b] * s1[b] - s2[b];
      s2[b] = s1[b];
      s1[b] = s0;
    }
  }
  for (std::size_t b = 0; b < k; ++b) {
    powers_out[b] = (s1[b] * s1[b] + s2[b] * s2[b] - c[b] * s1[b] * s2[b]) / n;
  }
  return energy / n;
}

}  // namespace bussense
