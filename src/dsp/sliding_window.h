// Fixed-capacity sliding-window statistics over a scalar stream.
//
// The beep detector smooths band power with the paper's w = 30 ms averaging
// window and thresholds jumps at three standard deviations of the recent
// history; this class provides both the mean and the deviation estimate.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>
#include <stdexcept>

namespace bussense {

class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("SlidingWindow capacity 0");
  }

  void push(double x) {
    buf_.push_back(x);
    sum_ += x;
    sum2_ += x * x;
    if (buf_.size() > capacity_) {
      const double old = buf_.front();
      buf_.pop_front();
      sum_ -= old;
      sum2_ -= old * old;
    }
  }

  bool full() const { return buf_.size() == capacity_; }
  std::size_t size() const { return buf_.size(); }

  double mean() const {
    return buf_.empty() ? 0.0 : sum_ / static_cast<double>(buf_.size());
  }

  double stddev() const {
    if (buf_.size() < 2) return 0.0;
    const double n = static_cast<double>(buf_.size());
    const double var = (sum2_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  void clear() {
    buf_.clear();
    sum_ = sum2_ = 0.0;
  }

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
  double sum_ = 0.0;
  double sum2_ = 0.0;
};

}  // namespace bussense
