// Fixed-capacity sliding-window statistics over a scalar stream.
//
// The beep detector smooths band power with the paper's w = 30 ms averaging
// window and thresholds jumps at three standard deviations of the recent
// history; these classes provide the mean and the deviation estimate.
// RingWindow is the allocation-free form used on the per-frame hot path:
// a fixed vector ring with running first and second moments, so push, mean
// and variance are O(1) regardless of the window length.
#pragma once

#include <cmath>
#include <cstddef>
#include <deque>
#include <stdexcept>
#include <vector>

namespace bussense {

class RingWindow {
 public:
  explicit RingWindow(std::size_t capacity) : buf_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingWindow capacity 0");
  }

  void push(double x) {
    if (size_ == buf_.size()) {
      const double old = buf_[head_];
      sum_ -= old;
      sum2_ -= old * old;
    } else {
      ++size_;
    }
    buf_[head_] = x;
    head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
    sum_ += x;
    sum2_ += x * x;
    // The add/subtract form accumulates cancellation error without bound
    // over a long stream; rebuilding the moments from the buffer each time
    // the ring wraps keeps the drift O(capacity) deep while staying O(1)
    // amortised per push.
    if (head_ == 0 && size_ == buf_.size()) recompute_moments();
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  bool full() const { return size_ == buf_.size(); }

  double mean() const {
    return size_ == 0 ? 0.0 : sum_ / static_cast<double>(size_);
  }

  /// Population variance (the beep detector's baseline convention); the
  /// running-moment form can go slightly negative from cancellation, so it
  /// is floored at zero.
  double variance() const {
    if (size_ == 0) return 0.0;
    const double m = mean();
    const double v = sum2_ / static_cast<double>(size_) - m * m;
    return v > 0.0 ? v : 0.0;
  }

  void clear() {
    size_ = head_ = 0;
    sum_ = sum2_ = 0.0;
  }

 private:
  void recompute_moments() {
    sum_ = sum2_ = 0.0;
    for (std::size_t i = 0; i < size_; ++i) {
      const double v = buf_[i];
      sum_ += v;
      sum2_ += v * v;
    }
  }

  std::vector<double> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  double sum_ = 0.0;
  double sum2_ = 0.0;
};

class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("SlidingWindow capacity 0");
  }

  void push(double x) {
    buf_.push_back(x);
    sum_ += x;
    sum2_ += x * x;
    if (buf_.size() > capacity_) {
      const double old = buf_.front();
      buf_.pop_front();
      sum_ -= old;
      sum2_ -= old * old;
    }
  }

  bool full() const { return buf_.size() == capacity_; }
  std::size_t size() const { return buf_.size(); }

  double mean() const {
    return buf_.empty() ? 0.0 : sum_ / static_cast<double>(buf_.size());
  }

  double stddev() const {
    if (buf_.size() < 2) return 0.0;
    const double n = static_cast<double>(buf_.size());
    const double var = (sum2_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }

  void clear() {
    buf_.clear();
    sum_ = sum2_ = 0.0;
  }

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
  double sum_ = 0.0;
  double sum2_ = 0.0;
};

}  // namespace bussense
