// Synthetic in-bus audio environment.
//
// Stands in for the phone microphone on a real bus (substitution documented
// in DESIGN.md Section 2): card-reader beeps are dual-tone bursts, the
// background mixes engine rumble, white sensor noise and crowd babble. The
// synthesiser drives the beep detector end-to-end in tests, the DSP bench
// and the quickstart example.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace bussense {

struct AudioEnvironmentConfig {
  double sample_rate_hz = 8000.0;
  /// Beep tone components and their relative amplitudes.
  std::vector<double> tone_frequencies_hz = {1000.0, 3000.0};
  double beep_amplitude = 0.30;
  double beep_duration_s = 0.10;
  /// Background levels (signal units; beep SNR follows from the ratios).
  double white_noise_rms = 0.02;
  double engine_rumble_amplitude = 0.08;  ///< low-frequency (< 200 Hz) rumble
  double babble_amplitude = 0.03;         ///< mid-band crowd noise
};

/// Renders `duration_s` of bus audio containing beeps at `beep_times`
/// (seconds from the start of the rendered clip; beeps outside the clip are
/// ignored). Deterministic given `rng`.
std::vector<float> synthesize_bus_audio(const AudioEnvironmentConfig& config,
                                        double duration_s,
                                        const std::vector<SimTime>& beep_times,
                                        Rng& rng);

}  // namespace bussense
