// Radix-2 iterative FFT.
//
// The FFT is the baseline the paper replaced with Goertzel for beep
// detection (their earlier bus-arrival work used FFT). We implement it both
// as that baseline and for test cross-validation of the Goertzel bins.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace bussense {

/// In-place radix-2 decimation-in-time FFT.
/// Precondition: data.size() is a power of two and >= 2.
void fft_inplace(std::vector<std::complex<double>>& data);

/// Forward FFT of a real signal, zero-padded to the next power of two.
std::vector<std::complex<double>> fft_real(std::span<const float> samples);

/// One-sided power spectrum normalised by window length: bin k corresponds
/// to frequency k * sample_rate / fft_size, k in [0, fft_size/2].
std::vector<double> power_spectrum(std::span<const float> samples);

/// Power of the spectrum bin nearest `frequency_hz` (FFT-based equivalent of
/// goertzel_power, used to cross-check the two implementations).
double fft_bin_power(std::span<const float> samples, double sample_rate_hz,
                     double frequency_hz);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Multiply-add cost model of the radix-2 FFT for window size `n` (padded to
/// a power of two): the K_f * N log N term of the paper's comparison. The
/// constant per butterfly is larger than Goertzel's per-sample constant; we
/// expose the butterfly count and let the power model apply K_f.
std::size_t fft_op_count(std::size_t n);

}  // namespace bussense
