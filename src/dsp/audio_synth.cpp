#include "dsp/audio_synth.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bussense {

std::vector<float> synthesize_bus_audio(const AudioEnvironmentConfig& config,
                                        double duration_s,
                                        const std::vector<SimTime>& beep_times,
                                        Rng& rng) {
  if (duration_s <= 0.0) {
    throw std::invalid_argument("synthesize_bus_audio: non-positive duration");
  }
  const double fs = config.sample_rate_hz;
  const auto n = static_cast<std::size_t>(duration_s * fs);
  std::vector<float> audio(n, 0.0f);

  // Engine rumble: a few slowly drifting low-frequency components.
  struct Tone {
    double freq;
    double phase;
    double amp;
  };
  std::vector<Tone> rumble;
  for (int i = 0; i < 4; ++i) {
    rumble.push_back(Tone{rng.uniform(40.0, 180.0), rng.uniform(0.0, 6.28),
                          config.engine_rumble_amplitude * rng.uniform(0.4, 1.0)});
  }
  // Babble: broad mid-band components that come and go; modelled as a small
  // set of tones with random amplitude modulation.
  std::vector<Tone> babble;
  for (int i = 0; i < 6; ++i) {
    babble.push_back(Tone{rng.uniform(300.0, 2200.0), rng.uniform(0.0, 6.28),
                          config.babble_amplitude * rng.uniform(0.2, 1.0)});
  }

  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / fs;
    double x = rng.normal(0.0, config.white_noise_rms);
    for (const Tone& tone : rumble) {
      x += tone.amp * std::sin(2.0 * std::numbers::pi * tone.freq * t + tone.phase);
    }
    for (const Tone& tone : babble) {
      // Slow ~1 Hz amplitude modulation so babble is non-stationary.
      const double am = 0.5 * (1.0 + std::sin(2.0 * std::numbers::pi * 0.7 * t +
                                              tone.phase * 1.7));
      x += am * tone.amp *
           std::sin(2.0 * std::numbers::pi * tone.freq * t + tone.phase);
    }
    audio[i] = static_cast<float>(x);
  }

  // Overlay the beeps: dual-tone bursts with a short attack/release ramp so
  // they resemble a card-reader chirp rather than a hard-keyed tone.
  const auto beep_len = static_cast<std::size_t>(config.beep_duration_s * fs);
  const std::size_t ramp = std::max<std::size_t>(1, beep_len / 10);
  for (SimTime bt : beep_times) {
    if (bt < 0.0 || bt >= duration_s) continue;
    const auto start = static_cast<std::size_t>(bt * fs);
    for (std::size_t k = 0; k < beep_len && start + k < n; ++k) {
      const double t = static_cast<double>(k) / fs;
      double envelope = 1.0;
      if (k < ramp) envelope = static_cast<double>(k) / static_cast<double>(ramp);
      const std::size_t from_end = beep_len - 1 - k;
      if (from_end < ramp) {
        envelope = std::min(envelope,
                            static_cast<double>(from_end) / static_cast<double>(ramp));
      }
      double tone = 0.0;
      for (double f : config.tone_frequencies_hz) {
        tone += std::sin(2.0 * std::numbers::pi * f * t);
      }
      tone *= config.beep_amplitude / static_cast<double>(
                                          config.tone_frequencies_hz.size());
      audio[start + k] += static_cast<float>(envelope * tone);
    }
  }
  return audio;
}

}  // namespace bussense
