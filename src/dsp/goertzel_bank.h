// One-pass multi-tone Goertzel bank.
//
// The beep detector monitors K tone bands plus the wideband frame energy,
// which as K+1 separate loops traverses every audio frame K+1 times. The
// bank keeps the K recurrences in struct-of-arrays form and advances all of
// them — and the energy accumulator — in a single pass over the frame, so
// each sample is loaded once and the per-band update auto-vectorizes. Band
// powers are normalised by the frame length exactly like goertzel_power();
// per band the operation sequence is identical to the scalar filter, so the
// results match it bit for bit.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace bussense {

class GoertzelBank {
 public:
  /// Preconditions per frequency: 0 < f < sample_rate_hz / 2.
  GoertzelBank(double sample_rate_hz,
               std::span<const double> frequencies_hz);

  std::size_t size() const { return coeffs_.size(); }

  /// One pass over `frame`: writes the per-band powers (normalised by the
  /// frame length) to `powers_out` and returns the mean per-sample frame
  /// energy. Preconditions: !frame.empty(), powers_out.size() == size().
  double analyze(std::span<const float> frame, std::span<double> powers_out);

 private:
  std::vector<double> coeffs_;
  std::vector<double> s1_;
  std::vector<double> s2_;
};

}  // namespace bussense
