// Per-trip maximum-likelihood mapping (paper Section III-C.3, Eq. 2).
//
// Given the cluster sequence of one trip, choose one candidate stop per
// cluster maximising
//
//   p_1 s̄_1 + Σ_{i>=2} p_i s̄_i · R(b_{i-1}, b_i)
//
// where p and s̄ come from the cluster candidate pools and R is the route
// order relation. The objective is additive over consecutive pairs, so the
// argmax is computed exactly by dynamic programming over (cluster,
// candidate) states; an exhaustive enumeration is provided for testing the
// DP's optimality on small instances.
#pragma once

#include <vector>

#include "core/clustering.h"
#include "core/route_graph.h"

namespace bussense {

struct MappedCluster {
  SampleCluster cluster;
  StopId stop = kInvalidStop;  ///< chosen effective stop
};

struct MappedTrip {
  std::vector<MappedCluster> stops;  ///< one entry per input cluster, in order
  double likelihood = 0.0;           ///< value of the Eq. 2 objective
};

class TripMapper {
 public:
  explicit TripMapper(const RouteGraph& graph) : graph_(&graph) {}

  /// Exact argmax of Eq. 2 by dynamic programming.
  MappedTrip map_trip(const std::vector<SampleCluster>& clusters) const;

  /// Brute-force argmax (exponential; property tests only).
  MappedTrip map_trip_exhaustive(const std::vector<SampleCluster>& clusters) const;

  /// Objective value of a concrete stop assignment (shared by both solvers).
  double sequence_score(const std::vector<SampleCluster>& clusters,
                        const std::vector<int>& choice) const;

 private:
  const RouteGraph* graph_;
};

}  // namespace bussense
