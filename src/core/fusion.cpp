#include "core/fusion.h"

#include <cmath>

namespace bussense {

SpeedFusion::SpeedFusion(FusionConfig config) : config_(config) {}

void SpeedFusion::add(const SpeedEstimate& estimate) {
  State& state = states_[estimate.segment];
  const auto period =
      static_cast<std::int64_t>(std::floor(estimate.time / config_.update_period_s));
  auto& [sum, count] = state.pending[period];
  sum += estimate.att_speed_kmh;
  ++count;
}

void SpeedFusion::apply(State& state, double mean_obs, SimTime at, int count) {
  if (!state.fused) {
    state.fused = FusedSpeed{mean_obs, config_.observation_variance, at, count};
    return;
  }
  FusedSpeed& f = *state.fused;
  // Ageing: precision decays while no data arrives (process noise).
  f.variance += config_.process_noise_per_s * std::max(0.0, at - f.updated_at);
  const double obs_var = config_.observation_variance;
  const double denom = f.variance + obs_var;
  f.mean_kmh = (f.mean_kmh * obs_var + mean_obs * f.variance) / denom;
  f.variance = std::max(f.variance * obs_var / denom, config_.variance_floor);
  f.updated_at = at;
  f.observation_count += count;
}

void SpeedFusion::flush_until(SimTime now) {
  const auto now_period =
      static_cast<std::int64_t>(std::floor(now / config_.update_period_s));
  for (auto& [key, state] : states_) {
    (void)key;
    while (!state.pending.empty()) {
      const auto it = state.pending.begin();
      // A batch closes when its period has fully elapsed.
      if (it->first >= now_period) break;
      const auto [sum, count] = it->second;
      const SimTime close_time =
          (static_cast<double>(it->first) + 1.0) * config_.update_period_s;
      apply(state, sum / count, close_time, count);
      state.pending.erase(it);
    }
  }
}

std::optional<FusedSpeed> SpeedFusion::query(const SegmentKey& segment) const {
  const auto it = states_.find(segment);
  if (it == states_.end()) return std::nullopt;
  return it->second.fused;
}

std::vector<std::pair<SegmentKey, FusedSpeed>> SpeedFusion::all() const {
  std::vector<std::pair<SegmentKey, FusedSpeed>> out;
  out.reserve(states_.size());
  for (const auto& [key, state] : states_) {
    if (state.fused) out.emplace_back(key, *state.fused);
  }
  return out;
}

}  // namespace bussense
