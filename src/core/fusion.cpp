#include "core/fusion.h"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace bussense {

SpeedFusion::SpeedFusion(FusionConfig config) : config_(config) {}

void SpeedFusion::add(const SpeedEstimate& estimate) {
  State& state = states_[estimate.segment];
  const auto period =
      static_cast<std::int64_t>(std::floor(estimate.time / config_.update_period_s));
  state.pending[period].push_back(estimate.att_speed_kmh);
}

void SpeedFusion::apply(State& state, double mean_obs, SimTime at, int count) {
  if (!state.fused) {
    state.fused = FusedSpeed{mean_obs, config_.observation_variance, at, count};
    return;
  }
  FusedSpeed& f = *state.fused;
  // Ageing: precision decays while no data arrives (process noise).
  f.variance += config_.process_noise_per_s * std::max(0.0, at - f.updated_at);
  const double obs_var = config_.observation_variance;
  const double denom = f.variance + obs_var;
  f.mean_kmh = (f.mean_kmh * obs_var + mean_obs * f.variance) / denom;
  f.variance = std::max(f.variance * obs_var / denom, config_.variance_floor);
  f.updated_at = at;
  f.observation_count += count;
}

void SpeedFusion::flush_until(SimTime now) {
  const auto now_period =
      static_cast<std::int64_t>(std::floor(now / config_.update_period_s));
  for (auto& [key, state] : states_) {
    (void)key;
    while (!state.pending.empty()) {
      const auto it = state.pending.begin();
      // A batch closes when its period has fully elapsed.
      if (it->first >= now_period) break;
      std::vector<double>& values = it->second;
      // Sum in sorted order: the period mean then depends only on the
      // multiset of estimates, never on their arrival order.
      std::sort(values.begin(), values.end());
      double sum = 0.0;
      for (const double v : values) sum += v;
      const int count = static_cast<int>(values.size());
      const SimTime close_time =
          (static_cast<double>(it->first) + 1.0) * config_.update_period_s;
      apply(state, sum / count, close_time, count);
      state.pending.erase(it);
    }
  }
}

std::optional<FusedSpeed> SpeedFusion::query(const SegmentKey& segment) const {
  const auto it = states_.find(segment);
  if (it == states_.end()) return std::nullopt;
  return it->second.fused;
}

std::vector<std::pair<SegmentKey, FusedSpeed>> SpeedFusion::all() const {
  std::vector<std::pair<SegmentKey, FusedSpeed>> out;
  out.reserve(states_.size());
  for (const auto& [key, state] : states_) {
    if (state.fused) out.emplace_back(key, *state.fused);
  }
  return out;
}

void SpeedFusion::visit_all(
    const std::function<void(const SegmentKey&, const FusedSpeed&)>& fn) const {
  // Same traversal as all(): visitation order and the copying overload's
  // vector order are identical, so consumers that fold in order (e.g. the
  // float sums in TrafficMap aggregates) are bit-identical either way.
  for (const auto& [key, state] : states_) {
    if (state.fused) fn(key, *state.fused);
  }
}

std::vector<FusionExportEntry> SpeedFusion::export_state() const {
  std::vector<FusionExportEntry> out;
  out.reserve(states_.size());
  for (const auto& [key, state] : states_) {
    FusionExportEntry entry;
    entry.key = key;
    entry.fused = state.fused;
    entry.pending.reserve(state.pending.size());
    for (const auto& [period, values] : state.pending) {
      std::vector<double> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      entry.pending.emplace_back(period, std::move(sorted));
    }
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const FusionExportEntry& a, const FusionExportEntry& b) {
              return a.key.from != b.key.from ? a.key.from < b.key.from
                                              : a.key.to < b.key.to;
            });
  return out;
}

void SpeedFusion::restore_state(const std::vector<FusionExportEntry>& entries) {
  states_.clear();
  for (const FusionExportEntry& entry : entries) {
    State& state = states_[entry.key];
    state.fused = entry.fused;
    for (const auto& [period, values] : entry.pending) {
      state.pending[period] = values;
    }
  }
}

// ----------------------------------------------------- StripedSpeedFusion

StripedSpeedFusion::StripedSpeedFusion(FusionConfig config,
                                       std::size_t stripe_count)
    : config_(config) {
  stripes_.reserve(std::max<std::size_t>(1, stripe_count));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, stripe_count); ++i) {
    stripes_.push_back(std::make_unique<Stripe>(config_));
  }
}

void StripedSpeedFusion::add(const SpeedEstimate& estimate) {
  Stripe& stripe = *stripes_[stripe_of(estimate.segment)];
  const std::lock_guard<std::mutex> lock(stripe.mutex);
  stripe.fusion.add(estimate);
}

void StripedSpeedFusion::add_batch(const std::vector<SpeedEstimate>& estimates) {
  if (estimates.empty()) return;
  // One pass per stripe keeps each lock acquired at most once; batches are
  // small (tens of estimates), so the extra scans are cheaper than the
  // lock traffic they avoid.
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    bool locked = false;
    std::unique_lock<std::mutex> lock(stripes_[s]->mutex, std::defer_lock);
    for (const SpeedEstimate& e : estimates) {
      if (stripe_of(e.segment) != s) continue;
      if (!locked) {
        lock.lock();
        locked = true;
      }
      stripes_[s]->fusion.add(e);
    }
  }
}

void StripedSpeedFusion::flush_until(SimTime now) {
  for (const auto& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe->mutex);
    stripe->fusion.flush_until(now);
  }
}

std::optional<FusedSpeed> StripedSpeedFusion::query(
    const SegmentKey& segment) const {
  const Stripe& stripe = *stripes_[stripe_of(segment)];
  const std::lock_guard<std::mutex> lock(stripe.mutex);
  return stripe.fusion.query(segment);
}

std::vector<std::pair<SegmentKey, FusedSpeed>> StripedSpeedFusion::all() const {
  std::vector<std::pair<SegmentKey, FusedSpeed>> out;
  for (const auto& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe->mutex);
    auto part = stripe->fusion.all();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<FusionExportEntry> StripedSpeedFusion::export_state() const {
  std::vector<FusionExportEntry> out;
  for (const auto& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe->mutex);
    auto part = stripe->fusion.export_state();
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  // Stripes partition the key space, so the concatenation has no duplicate
  // keys — one global sort yields the same canonical order as the
  // single-shard export.
  std::sort(out.begin(), out.end(),
            [](const FusionExportEntry& a, const FusionExportEntry& b) {
              return a.key.from != b.key.from ? a.key.from < b.key.from
                                              : a.key.to < b.key.to;
            });
  return out;
}

void StripedSpeedFusion::restore_state(
    const std::vector<FusionExportEntry>& entries) {
  std::vector<std::vector<FusionExportEntry>> per_stripe(stripes_.size());
  for (const FusionExportEntry& entry : entries) {
    per_stripe[stripe_of(entry.key)].push_back(entry);
  }
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    const std::lock_guard<std::mutex> lock(stripes_[s]->mutex);
    stripes_[s]->fusion.restore_state(per_stripe[s]);
  }
}

void StripedSpeedFusion::visit_all(
    const std::function<void(const SegmentKey&, const FusedSpeed&)>& fn) const {
  // Stripe-by-stripe in index order — the exact concatenation order of
  // all(), without materializing the per-stripe vectors.
  for (const auto& stripe : stripes_) {
    const std::lock_guard<std::mutex> lock(stripe->mutex);
    stripe->fusion.visit_all(fn);
  }
}

}  // namespace bussense
