// Admission control for trip uploads: the defense half of the fault story.
//
// Uploads come from uncontrolled phones, so a networked deployment must
// assume hostile input — replayed uploads, absurd counts, shuffled or
// skewed timestamps (src/faults/ injects exactly these). Before any
// pipeline work is spent, every TrafficIngestor front end runs the upload
// through one shared AdmissionController:
//
//   1. sanity bounds — sample count, per-fingerprint cell count, finite
//      timestamps, total duration (kMalformed);
//   2. time order — backward jumps beyond a tolerance are rejected
//      (kNonMonotone); small inversions are tolerated because the matcher
//      sorts anyway;
//   3. duplicate detection — a bounded LRU of recent trip_signature()
//      hashes refuses byte-identical replays (kDuplicate);
//   4. clock-skew re-anchoring — a per-participant constant offset,
//      estimated against the fusion watermark (the latest advance_time),
//      is subtracted from the sample times of trips that end implausibly
//      far from it. Correction, not rejection: the data is good, only the
//      phone's clock is wrong.
//
// Rejections return TripReport{kRejected, reason} instead of throwing, and
// every verdict is counted: ingest.admitted + Σ ingest.rejected.* ==
// uploads submitted (tested). Re-anchoring only fires once a watermark
// exists, so offline batch runs — which call advance_time() after the last
// trip — are bit-identical with admission on or off for clean workloads
// (property-tested). Skew state is processing-order dependent by nature;
// duplicate detection is not (replays are byte-identical, so whichever
// copy wins admission yields the same analysis).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "core/traffic_ingestor.h"
#include "obs/metrics.h"
#include "sensing/trip.h"

namespace bussense {

struct AdmissionConfig {
  /// Off by default: the historical trusting pipeline. ServerConfig embeds
  /// this struct; all three front ends honour it.
  bool enabled = false;

  /// Replay window: how many recent upload signatures the LRU remembers.
  /// 0 disables duplicate detection.
  std::size_t dedup_capacity = 4096;

  /// Sample-count bounds. Uploads below min_samples (e.g. empty) carry no
  /// usable signal; above max_samples they are a memory-exhaustion vector.
  std::size_t min_samples = 1;
  std::size_t max_samples = 100000;

  /// A scan sees a handful of towers; a fingerprint beyond this is bogus.
  std::size_t max_fingerprint_cells = 64;

  /// Largest tolerated backward timestamp step within an upload. Small
  /// inversions are lossy-link reordering (the matcher sorts them away);
  /// beyond this the sequence is garbage.
  double max_out_of_order_s = 120.0;

  /// Longest plausible single trip (first to last sample).
  double max_trip_duration_s = 6.0 * 3600.0;

  /// Clock-skew re-anchoring threshold: a trip ending further than this
  /// from the fusion watermark has its participant's offset re-estimated
  /// and subtracted. 0 disables re-anchoring.
  double max_clock_skew_s = 1800.0;

  /// Bound on the per-participant skew table (hostile participant ids must
  /// not grow it without limit); on overflow the table resets.
  std::size_t skew_state_capacity = 65536;

  /// Throws std::invalid_argument on nonsense (zero/negative bounds,
  /// min_samples > max_samples).
  void validate() const;
};

/// Facts the durability layer needs about an admitted upload: what the
/// dedup LRU recorded and what skew correction was applied. Written into
/// the WAL (core/trip_log.h) so replay can rebuild this controller's state
/// without re-running admit() — which would wrongly dedup-reject the
/// replayed records.
struct AdmitInfo {
  std::uint64_t signature = 0;  ///< pre-correction trip_signature; 0 = none
  double skew_offset_s = 0.0;   ///< offset subtracted; 0 = uncorrected
};

/// Complete controller state for a checkpoint: the dedup LRU oldest-first,
/// the skew table sorted by participant id, and the watermark —
/// byte-deterministic for a given admission history.
struct AdmissionCheckpoint {
  std::vector<std::uint64_t> lru_oldest_first;
  std::vector<std::pair<std::int32_t, double>> skew_offsets;
  bool have_watermark = false;
  SimTime watermark = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Registers the ingest.admitted / ingest.rejected.* /
  /// ingest.skew_corrected instruments; null unbinds (no-op recording).
  void bind_metrics(MetricsRegistry* registry);

  /// Runs the checks above. Returns kNone on admission, with `use`
  /// pointing at the upload the pipeline should analyse — `trip` itself,
  /// or `corrected` when a clock-skew offset was subtracted. On rejection
  /// `use` is left pointing at `trip`. When `info` is non-null it receives
  /// the recorded signature and applied offset (durability plumbing).
  /// Thread-safe.
  RejectReason admit(const TripUpload& trip, TripUpload& corrected,
                     const TripUpload*& use, AdmitInfo* info = nullptr);

  /// WAL-replay hook: re-records an admission verdict without re-judging
  /// it — refreshes/inserts the signature in the dedup LRU and restores
  /// the participant's skew offset. No instruments fire (the original
  /// admission already counted). Thread-safe.
  void note_replayed(std::uint64_t signature, std::int32_t participant_id,
                     double skew_offset_s);

  /// Snapshot of the full mutable state (thread-safe).
  AdmissionCheckpoint export_state() const;

  /// Replaces the mutable state with a checkpoint (thread-safe).
  void restore_state(const AdmissionCheckpoint& state);

  /// Advances the fusion watermark (called from advance_time). The
  /// watermark only moves forward.
  void observe_time(SimTime now);

  /// Latest watermark, or -infinity before the first observe_time().
  SimTime watermark() const;

  const AdmissionConfig& config() const { return config_; }

 private:
  RejectReason check_shape(const TripUpload& trip, SimTime* begin,
                           SimTime* end) const;
  bool note_signature(std::uint64_t signature);  ///< false when a replay

  AdmissionConfig config_;

  mutable std::mutex mutex_;
  // Signature LRU: recency list + signature → list position.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> seen_;
  std::unordered_map<std::int32_t, double> skew_offset_s_;
  SimTime watermark_ = 0.0;
  bool have_watermark_ = false;

  struct Instruments {
    Counter* admitted = nullptr;
    Counter* rejected_duplicate = nullptr;
    Counter* rejected_malformed = nullptr;
    Counter* rejected_non_monotone = nullptr;
    Counter* skew_corrected = nullptr;
  };
  Instruments inst_;
};

}  // namespace bussense
