#include "core/epoch_publisher.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "citynet/city.h"

namespace bussense {

namespace {

// Publisher ids are handed out once and never reused, so a thread's cached
// pin state for a destroyed publisher is simply never looked up again.
std::atomic<std::uint64_t> g_next_publisher_id{1};

}  // namespace

void EpochPublisherConfig::validate() const {
  if (max_readers == 0) {
    throw std::invalid_argument("EpochPublisherConfig: max_readers must be > 0");
  }
  if (grid_cols <= 0 || grid_rows <= 0) {
    throw std::invalid_argument(
        "EpochPublisherConfig: grid dimensions must be positive");
  }
  if (!(max_age_s > 0.0)) {
    throw std::invalid_argument("EpochPublisherConfig: max_age_s must be > 0");
  }
}

// ---------------------------------------------------------- SegmentGeometry

SegmentGeometry::SegmentGeometry(const SegmentCatalog& catalog, int cols,
                                 int rows)
    : catalog_(&catalog),
      region_(catalog.city().region()),
      cols_(cols),
      rows_(rows) {
  const auto& keys = catalog.adjacent_keys();
  entries_.reserve(keys.size());
  ordinal_.reserve(keys.size());
  for (const SegmentKey& key : keys) {
    const SpanInfo* info = catalog.adjacent(key);
    if (!info) continue;  // defensive: adjacent_keys only lists catalogued
    Entry e;
    e.key = key;
    const BusRoute& route = catalog.city().route(info->route);
    e.midpoint = route.path().point_at(0.5 * (info->arc_from + info->arc_to));
    e.length_m = info->length_m;
    ordinal_.emplace(key, static_cast<std::uint32_t>(entries_.size()));
    entries_.push_back(e);
  }
  // CSR binning by midpoint, row-major cells, ordinals ascending per cell.
  const std::size_t cells =
      static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  std::vector<std::uint32_t> counts(cells, 0);
  std::vector<std::size_t> cell_of_entry(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    cell_of_entry[i] = cell_of(entries_[i].midpoint);
    ++counts[cell_of_entry[i]];
  }
  cell_start_.assign(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    cell_start_[c + 1] = cell_start_[c] + counts[c];
  }
  cell_items_.resize(entries_.size());
  std::vector<std::uint32_t> fill(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    cell_items_[fill[cell_of_entry[i]]++] = static_cast<std::uint32_t>(i);
  }
}

std::optional<std::uint32_t> SegmentGeometry::ordinal(
    const SegmentKey& key) const {
  const auto it = ordinal_.find(key);
  if (it == ordinal_.end()) return std::nullopt;
  return it->second;
}

int SegmentGeometry::col_of(double x) const {
  const double w = region_.width();
  const int c = w > 0.0 ? static_cast<int>((x - region_.min.x) / w *
                                           static_cast<double>(cols_))
                        : 0;
  return std::clamp(c, 0, cols_ - 1);
}

int SegmentGeometry::row_of(double y) const {
  const double h = region_.height();
  const int r = h > 0.0 ? static_cast<int>((y - region_.min.y) / h *
                                           static_cast<double>(rows_))
                        : 0;
  return std::clamp(r, 0, rows_ - 1);
}

std::size_t SegmentGeometry::cell_of(Point p) const {
  return static_cast<std::size_t>(row_of(p.y)) *
             static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(col_of(p.x));
}

const std::uint32_t* SegmentGeometry::cell_begin(std::size_t cell) const {
  return cell_items_.data() + cell_start_[cell];
}

const std::uint32_t* SegmentGeometry::cell_end(std::size_t cell) const {
  return cell_items_.data() + cell_start_[cell + 1];
}

// ----------------------------------------------------------- EpochSnapshot

EpochSnapshot::EpochSnapshot(TrafficMap map, const SegmentGeometry& geometry,
                             double max_age_s)
    : max_age_s_(max_age_s), map_(std::move(map)), geometry_(&geometry) {
  const auto& segs = map_.segments();
  index_.reserve(segs.size());
  live_of_ordinal_.assign(geometry.size(), kNotLive);
  for (std::size_t i = 0; i < segs.size(); ++i) {
    index_.emplace(segs[i].key, static_cast<std::uint32_t>(i));
    if (const auto ord = geometry.ordinal(segs[i].key)) {
      live_of_ordinal_[*ord] = static_cast<std::uint32_t>(i);
    }
  }
  level_histogram_ = map_.level_histogram();
  coverage_ratio_ = map_.coverage_ratio(geometry.catalog());
  mean_speed_kmh_ = map_.mean_speed_kmh();
}

const MapSegment* EpochSnapshot::segment(const SegmentKey& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &map_.segments()[it->second];
}

std::optional<FusedSpeed> EpochSnapshot::fused(const SegmentKey& key) const {
  const MapSegment* seg = segment(key);
  if (!seg) return std::nullopt;
  FusedSpeed f;
  f.mean_kmh = seg->speed_kmh;
  f.variance = 0.0;  // not carried into epochs
  f.updated_at = seg->updated_at;
  f.observation_count = seg->observation_count;
  return f;
}

RegionAggregate EpochSnapshot::region(const BoundingBox& box) const {
  RegionAggregate out;
  out.epoch_id = id_;
  out.epoch_time = map_.time();
  const SegmentGeometry& geo = *geometry_;
  const int c0 = geo.col_of(box.min.x), c1 = geo.col_of(box.max.x);
  const int r0 = geo.row_of(box.min.y), r1 = geo.row_of(box.max.y);
  double weighted = 0.0;
  // Fixed fold order (row-major cells, then ascending ordinals) keeps the
  // float sums deterministic for a given epoch.
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      const std::size_t cell = static_cast<std::size_t>(r) *
                                   static_cast<std::size_t>(geo.cols()) +
                               static_cast<std::size_t>(c);
      for (const std::uint32_t* it = geo.cell_begin(cell);
           it != geo.cell_end(cell); ++it) {
        const SegmentGeometry::Entry& e = geo.entry(*it);
        if (!box.contains(e.midpoint)) continue;
        ++out.segments_total;
        out.total_length_m += e.length_m;
        const std::uint32_t li = live_of_ordinal_[*it];
        if (li == kNotLive) continue;
        const MapSegment& seg = map_.segments()[li];
        ++out.segments_live;
        out.live_length_m += e.length_m;
        weighted += seg.speed_kmh * e.length_m;
        ++out.level_histogram[static_cast<std::size_t>(seg.level)];
      }
    }
  }
  out.mean_speed_kmh =
      out.live_length_m > 0.0 ? weighted / out.live_length_m : 0.0;
  out.coverage_ratio =
      out.total_length_m > 0.0 ? out.live_length_m / out.total_length_m : 0.0;
  return out;
}

std::vector<NearestSegment> EpochSnapshot::k_nearest(Point p,
                                                     std::size_t k) const {
  std::vector<NearestSegment> best;  // kept sorted by (distance, key)
  if (k == 0) return best;
  const SegmentGeometry& geo = *geometry_;
  const auto before = [](const NearestSegment& a, const NearestSegment& b) {
    if (a.distance_m != b.distance_m) return a.distance_m < b.distance_m;
    if (a.segment.key.from != b.segment.key.from) {
      return a.segment.key.from < b.segment.key.from;
    }
    return a.segment.key.to < b.segment.key.to;
  };
  const auto consider = [&](std::uint32_t ordinal) {
    const std::uint32_t li = live_of_ordinal_[ordinal];
    if (li == kNotLive) return;
    const SegmentGeometry::Entry& e = geo.entry(ordinal);
    NearestSegment candidate{map_.segments()[li], e.midpoint,
                             distance(p, e.midpoint)};
    if (best.size() == k && !before(candidate, best.back())) return;
    best.insert(std::upper_bound(best.begin(), best.end(), candidate, before),
                std::move(candidate));
    if (best.size() > k) best.pop_back();
  };

  // Chebyshev rings around the (clamped) cell containing p. Any midpoint
  // in a ring-d cell is at least (d-1)*min_cell from the center cell, and
  // clamping only shrinks per-axis distances, so the bound also holds for
  // query points outside the city box.
  const int cc = geo.col_of(p.x);
  const int cr = geo.row_of(p.y);
  const double cell_w = geo.region().width() / geo.cols();
  const double cell_h = geo.region().height() / geo.rows();
  const double min_cell = std::min(cell_w, cell_h);
  const int max_ring = std::max(
      std::max(cc, geo.cols() - 1 - cc), std::max(cr, geo.rows() - 1 - cr));
  for (int d = 0; d <= max_ring; ++d) {
    if (best.size() == k && min_cell > 0.0 &&
        static_cast<double>(d - 1) * min_cell > best.back().distance_m) {
      break;
    }
    // Visit the ring's cells in row-major order (deterministic ties).
    const int r0 = std::max(0, cr - d), r1 = std::min(geo.rows() - 1, cr + d);
    const int c0 = std::max(0, cc - d), c1 = std::min(geo.cols() - 1, cc + d);
    for (int r = r0; r <= r1; ++r) {
      const bool edge_row = (r == cr - d || r == cr + d);
      for (int c = c0; c <= c1; ++c) {
        if (!edge_row && c != cc - d && c != cc + d) continue;  // interior
        const std::size_t cell = static_cast<std::size_t>(r) *
                                     static_cast<std::size_t>(geo.cols()) +
                                 static_cast<std::size_t>(c);
        for (const std::uint32_t* it = geo.cell_begin(cell);
             it != geo.cell_end(cell); ++it) {
          consider(*it);
        }
      }
    }
  }
  return best;
}

// ----------------------------------------------------------- EpochPublisher

EpochPublisher::EpochPublisher(const SegmentCatalog& catalog,
                               EpochPublisherConfig config)
    : geometry_(catalog, (config.validate(), config.grid_cols),
                config.grid_rows),
      config_(config),
      publisher_id_(g_next_publisher_id.fetch_add(1, std::memory_order_relaxed)),
      slots_(config.max_readers),
      metrics_(std::make_unique<MetricsRegistry>()) {
  if (config_.obs.enabled) {
    inst_.published = &metrics_->counter("epochs.published");
    inst_.retired = &metrics_->counter("epochs.retired");
    inst_.overflow_readers = &metrics_->counter("epochs.overflow_readers");
    inst_.pinned = &metrics_->gauge("epochs.pinned");
    inst_.live = &metrics_->gauge("epochs.live");
    inst_.build_s = &metrics_->histogram("publish.build_s");
  }
}

EpochPublisher::~EpochPublisher() {
  stop();
  // Contract: pins must not outlive the publisher. Spin until the last
  // reader lets go, reclaiming as they do, then free everything.
  for (;;) {
    {
      const std::lock_guard<std::mutex> lock(publish_mutex_);
      reclaim_locked();
      if (count_pinned_locked(nullptr) == 0) break;
    }
    std::this_thread::yield();
  }
}

EpochPublisher::LocalPin& EpochPublisher::local_pin() const {
  thread_local std::unordered_map<std::uint64_t, LocalPin> t_pins;
  return t_pins[publisher_id_];
}

EpochPublisher::Pin EpochPublisher::pin() const {
  LocalPin& lp = local_pin();
  if (lp.depth > 0) {  // re-entrant: same epoch, deeper
    ++lp.depth;
    return Pin(this, lp.snap);
  }
  if (lp.slot == SIZE_MAX && !lp.overflow) {
    const std::size_t s = next_slot_.fetch_add(1, std::memory_order_relaxed);
    if (s < slots_.size()) {
      lp.slot = s;
    } else {
      lp.overflow = true;
      if (inst_.overflow_readers) inst_.overflow_readers->inc();
    }
  }
  const EpochSnapshot* e = nullptr;
  if (!lp.overflow) {
    // Hazard-pointer handshake: advertise, then re-validate. The epoch is
    // only dereferenced after validation succeeds, at which point the
    // publisher is guaranteed to see the hazard before freeing it (both
    // sides order the store/load pair with seq_cst).
    std::atomic<const EpochSnapshot*>& hazard = slots_[lp.slot].hazard;
    e = current_.load(std::memory_order_acquire);
    for (;;) {
      hazard.store(e, std::memory_order_seq_cst);
      const EpochSnapshot* check = current_.load(std::memory_order_seq_cst);
      if (check == e) break;
      e = check;
    }
    if (e == nullptr) {
      hazard.store(nullptr, std::memory_order_relaxed);
      return Pin();
    }
  } else {
    // Overflow path: the mutex makes load+insert atomic with respect to
    // the publisher's reclaim scan, which takes the same mutex.
    const std::lock_guard<std::mutex> lock(overflow_mutex_);
    e = current_.load(std::memory_order_seq_cst);
    if (e == nullptr) return Pin();
    overflow_pins_.insert(e);
  }
  lp.depth = 1;
  lp.snap = e;
  return Pin(this, e);
}

void EpochPublisher::unpin() const {
  LocalPin& lp = local_pin();
  if (--lp.depth > 0) return;
  if (lp.overflow) {
    const std::lock_guard<std::mutex> lock(overflow_mutex_);
    overflow_pins_.erase(overflow_pins_.find(lp.snap));
  } else {
    // Release order: the publisher acquiring this null observes every read
    // the pin made before letting the epoch be freed.
    slots_[lp.slot].hazard.store(nullptr, std::memory_order_release);
  }
  lp.snap = nullptr;
}

void EpochPublisher::Pin::release() {
  if (pub_ != nullptr) {
    pub_->unpin();
    pub_ = nullptr;
    snap_ = nullptr;
  }
}

std::uint64_t EpochPublisher::publish_map(TrafficMap map) {
  return publish_impl(std::move(map),
                      inst_.build_s ? monotonic_time_s() : 0.0,
                      config_.max_age_s);
}

std::uint64_t EpochPublisher::publish_from(const SpeedFusion& fusion,
                                           SimTime now) {
  return publish_from(fusion, now, config_.max_age_s);
}

std::uint64_t EpochPublisher::publish_from(const SpeedFusion& fusion,
                                           SimTime now, double max_age_s) {
  const double t0 = inst_.build_s ? monotonic_time_s() : 0.0;
  return publish_impl(
      TrafficMap::snapshot_visiting(fusion, catalog(), now, max_age_s), t0,
      max_age_s);
}

std::uint64_t EpochPublisher::publish_from(const StripedSpeedFusion& fusion,
                                           SimTime now) {
  return publish_from(fusion, now, config_.max_age_s);
}

std::uint64_t EpochPublisher::publish_from(const StripedSpeedFusion& fusion,
                                           SimTime now, double max_age_s) {
  const double t0 = inst_.build_s ? monotonic_time_s() : 0.0;
  return publish_impl(
      TrafficMap::snapshot_visiting(fusion, catalog(), now, max_age_s), t0,
      max_age_s);
}

std::uint64_t EpochPublisher::publish_impl(TrafficMap map, double start_s,
                                           double max_age_s) {
  // Snapshot construction (index, overlay, aggregates) runs outside the
  // publish lock; only the id assignment, swap and reclaim serialize.
  // Not make_unique: the snapshot ctor is private to this friend class.
  std::unique_ptr<EpochSnapshot> snap(
      new EpochSnapshot(std::move(map), geometry_, max_age_s));
  EpochSnapshot* fresh = snap.get();
  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(publish_mutex_);
    id = next_id_++;
    fresh->id_ = id;
    owned_.push_back(std::move(snap));
    // seq_cst: totally ordered against the readers' hazard handshake.
    const EpochSnapshot* old =
        current_.exchange(fresh, std::memory_order_seq_cst);
    if (old != nullptr) retired_.push_back(old);
    published_.fetch_add(1, std::memory_order_relaxed);
    if (inst_.published) inst_.published->inc();
    reclaim_locked();
  }
  if (inst_.build_s) inst_.build_s->record(monotonic_time_s() - start_s);
  return id;
}

std::size_t EpochPublisher::count_pinned_locked(
    std::vector<const EpochSnapshot*>* hazards) const {
  std::size_t pinned = 0;
  for (const Slot& slot : slots_) {
    // seq_cst pairs with the readers' hazard publication; reading the null
    // a release-unpin wrote synchronizes with that reader's last access.
    const EpochSnapshot* h = slot.hazard.load(std::memory_order_seq_cst);
    if (h != nullptr) {
      ++pinned;
      if (hazards) hazards->push_back(h);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(overflow_mutex_);
    pinned += overflow_pins_.size();
    if (hazards) {
      hazards->insert(hazards->end(), overflow_pins_.begin(),
                      overflow_pins_.end());
    }
  }
  return pinned;
}

std::size_t EpochPublisher::reclaim_locked() {
  std::vector<const EpochSnapshot*> hazards;
  const std::size_t pinned = count_pinned_locked(&hazards);
  std::sort(hazards.begin(), hazards.end());
  std::size_t freed = 0;
  for (std::size_t i = 0; i < retired_.size();) {
    const EpochSnapshot* victim = retired_[i];
    if (std::binary_search(hazards.begin(), hazards.end(), victim)) {
      ++i;  // still pinned: grace period continues
      continue;
    }
    const auto it =
        std::find_if(owned_.begin(), owned_.end(),
                     [victim](const std::unique_ptr<EpochSnapshot>& p) {
                       return p.get() == victim;
                     });
    owned_.erase(it);
    retired_[i] = retired_.back();
    retired_.pop_back();
    ++freed;
  }
  if (freed > 0) {
    retired_freed_.fetch_add(freed, std::memory_order_relaxed);
    if (inst_.retired) inst_.retired->add(freed);
  }
  if (inst_.pinned) inst_.pinned->set(static_cast<double>(pinned));
  if (inst_.live) inst_.live->set(static_cast<double>(owned_.size()));
  return freed;
}

std::size_t EpochPublisher::reclaim() {
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  return reclaim_locked();
}

std::size_t EpochPublisher::epochs_live() const {
  const std::lock_guard<std::mutex> lock(publish_mutex_);
  return owned_.size();
}

std::size_t EpochPublisher::pinned_readers() const {
  return count_pinned_locked(nullptr);
}

void EpochPublisher::start(std::function<void(EpochPublisher&)> tick,
                           double period_s) {
  stop();
  {
    const std::lock_guard<std::mutex> lock(ticker_mutex_);
    ticker_stop_ = false;
  }
  ticker_ = std::thread([this, tick = std::move(tick), period_s] {
    std::unique_lock<std::mutex> lock(ticker_mutex_);
    while (!ticker_stop_) {
      lock.unlock();
      tick(*this);
      lock.lock();
      ticker_cv_.wait_for(lock, std::chrono::duration<double>(period_s),
                          [this] { return ticker_stop_; });
    }
  });
}

void EpochPublisher::stop() {
  {
    const std::lock_guard<std::mutex> lock(ticker_mutex_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

}  // namespace bussense
