// Online fingerprint-database maintenance (paper Section III-B: "a database
// storing cellular fingerprints of all bus stops which can be built
// online/offline", Figure 4's "Update" arrow).
//
// Cellular plants evolve — towers are re-homed, re-sectored, renumbered.
// The updater closes the loop: whenever the trip mapper places a cluster at
// a stop with high confidence, the cluster's samples become fresh survey
// observations of that stop; once enough accumulate, the stop's database
// fingerprint is re-selected as the medoid of the recent window. A crowd of
// riders thus keeps the database current without any deliberate war-walks.
#pragma once

#include <deque>
#include <unordered_map>

#include "core/matching.h"
#include "core/route_graph.h"
#include "core/stop_database.h"
#include "core/trip_mapper.h"
#include "sensing/trip.h"

namespace bussense {

struct DbUpdaterConfig {
  /// A cluster contributes only if every member matched the same stop
  /// (probability 1 after rounding) with at least this mean similarity.
  /// The bar sits just above the server's γ so the updater keeps learning
  /// even while tower churn erodes scores — the consensus requirement below
  /// carries the confidence instead.
  double min_probability = 0.99;
  double min_mean_similarity = 3.0;
  /// Single-tap clusters carry no redundancy; require several corroborating
  /// taps before trusting the mapping enough to learn from it.
  std::size_t min_cluster_size = 4;
  /// Recent observations kept per stop; the refresh medoid is taken over
  /// this window.
  std::size_t window = 16;
  /// Observations required before a refresh is applied.
  std::size_t refresh_after = 10;
  /// Refresh only on evidence of decay: if the incumbent entry still aligns
  /// with the fresh window at or above this mean similarity it is healthy
  /// and left untouched. This stops self-training drift — fresh, mutually
  /// correlated samples would otherwise outvote a perfectly good entry.
  double refresh_below_similarity = 3.6;
  /// Continuity guard: a replacement must still align with the incumbent at
  /// least this well. Gradual tower churn passes (one tower renumbers at a
  /// time); a confidently mis-mapped neighbour stop does not.
  double min_continuity_similarity = 1.5;
  MatchingConfig matching;
};

class DatabaseUpdater {
 public:
  explicit DatabaseUpdater(DbUpdaterConfig config = {});

  /// Harvests confident clusters of a mapped trip into the per-stop windows
  /// and refreshes `database` entries whose window is ripe. Returns the
  /// number of stops refreshed.
  int observe(const MappedTrip& trip, StopDatabase& database);

  /// Hole recovery: once a stop's database entry has decayed so far that
  /// its samples fall below the server's γ, no cluster ever forms there and
  /// observe() can never repair it. But the *trip context* still identifies
  /// the stop: samples rejected by the matcher that fall strictly between
  /// two confidently mapped clusters whose stops sit exactly two apart on a
  /// common route must belong to the stop in the middle. Those orphans are
  /// credited to that stop and can resurrect its entry. Returns the number
  /// of stops refreshed this way.
  int recover_holes(const TripUpload& upload, const MappedTrip& mapped,
                    const RouteGraph& graph, StopDatabase& database);

  std::uint64_t observations() const { return observations_; }
  std::uint64_t refreshes() const { return refreshes_; }

 private:
  /// Adds fingerprints to the stop's window; refreshes the database entry
  /// if the window is ripe and the entry has decayed. Returns true on
  /// refresh. `bypass_guards` skips the continuity check (hole recovery).
  bool learn(StopId stop, const std::vector<Fingerprint>& fingerprints,
             StopDatabase& database, bool bypass_guards);

  DbUpdaterConfig config_;
  std::unordered_map<StopId, std::deque<Fingerprint>> recent_;
  std::uint64_t observations_ = 0;
  std::uint64_t refreshes_ = 0;
};

}  // namespace bussense
