// Coarse 4-level traffic indicator (the paper's Google Maps comparator).
//
// Figure 10 contrasts the system's numeric speed estimates with the rough
// "very slow / slow / normal / fast" levels a consumer map shows. We apply
// the same quantisation to a speed and, for coverage comparisons, restrict
// the indicator to major arterials (consumer traffic layers cover far fewer
// roads than the bus network — Figure 9(c)).
#pragma once

#include <string>

namespace bussense {

enum class GoogleLevel { kVerySlow, kSlow, kNormal, kFast };

inline GoogleLevel google_level(double speed_kmh) {
  if (speed_kmh < 20.0) return GoogleLevel::kVerySlow;
  if (speed_kmh < 35.0) return GoogleLevel::kSlow;
  if (speed_kmh < 50.0) return GoogleLevel::kNormal;
  return GoogleLevel::kFast;
}

inline std::string to_string(GoogleLevel level) {
  switch (level) {
    case GoogleLevel::kVerySlow: return "very slow";
    case GoogleLevel::kSlow: return "slow";
    case GoogleLevel::kNormal: return "normal";
    case GoogleLevel::kFast: return "fast";
  }
  return "?";
}

/// Numeric code 1..4 as plotted on Figure 10's right axis.
inline int google_level_code(GoogleLevel level) {
  return static_cast<int>(level) + 1;
}

}  // namespace bussense
