// SVG rendering of the city traffic map (the shareable counterpart of the
// terminal ASCII view) — roads, bus stops and live segment speeds in the
// paper's five-level colour scheme.
#pragma once

#include <iosfwd>
#include <string>

#include "core/traffic_map.h"

namespace bussense {

struct SvgMapOptions {
  double pixels_per_meter = 0.12;  ///< 7 km -> 840 px wide
  double road_width_px = 1.5;
  double traffic_width_px = 4.0;
  bool draw_stops = true;
  double stop_radius_px = 1.8;
};

/// Writes a complete SVG document: grey road network, black bus stops, and
/// the map's live segments coloured by speed level (red = <20 km/h …
/// green = >50 km/h).
void write_svg_map(const TrafficMap& map, const SegmentCatalog& catalog,
                   std::ostream& os, const SvgMapOptions& options = {});

/// Convenience overload writing to a file (throws std::runtime_error).
void write_svg_map(const TrafficMap& map, const SegmentCatalog& catalog,
                   const std::string& path, const SvgMapOptions& options = {});

/// Hex colour of a display level (exposed for tests/legends).
std::string speed_level_color(SpeedLevel level);

}  // namespace bussense
