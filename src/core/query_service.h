// Lock-free serving tier: the read side of the epoch publisher
// (DESIGN.md §13).
//
// Millions of queries per second cannot touch the ingest locks. Every
// query pins the current epoch (hazard-pointer handshake, no locks on the
// registered-reader path), answers from the immutable snapshot, and
// unpins. Three query families:
//
//   segment_speed  O(1) hash lookup of one segment's fused speed + level;
//   route_eta      downstream arrival predictions for a route, reusing
//                  ArrivalPredictor against the epoch's speeds — bit-
//                  identical to predicting against the live fusion at the
//                  publish instant (the predictor reads only mean_kmh and
//                  updated_at, both preserved by the epoch);
//   region_aggregate  bounding-box mean speed / coverage / level histogram
//                  via the publisher's spatial grid.
//
// Results are stamped with the answering epoch's id and time, so callers
// can detect staleness and correlate across queries. The service is
// stateless apart from cached instrument pointers: one QueryService can be
// shared by any number of threads, or each thread can own one — metrics
// registries merge deterministically either way.
#pragma once

#include <memory>
#include <vector>

#include "core/arrival_predictor.h"
#include "core/epoch_publisher.h"
#include "obs/metrics.h"

namespace bussense {

struct QueryServiceConfig {
  ArrivalPredictorConfig predictor;
  using Observability = ObservabilityConfig;  // core/config_common.h
  Observability obs;
};

/// Answer to a segment-speed query. `live` is false when the epoch carries
/// no fresh estimate for the segment (or nothing has been published yet —
/// then epoch_id is 0).
struct SegmentSpeedResult {
  std::uint64_t epoch_id = 0;
  SimTime epoch_time = 0.0;
  bool live = false;
  double speed_kmh = 0.0;
  SpeedLevel level = SpeedLevel::kMedium;
  SimTime updated_at = 0.0;
  int observation_count = 0;
};

/// Answer to a route-ETA query. Before the first publish, predictions fall
/// back to free-flow times (epoch_id 0, `departure` as the reference now).
struct RouteEtaResult {
  std::uint64_t epoch_id = 0;
  SimTime epoch_time = 0.0;
  std::vector<ArrivalPrediction> arrivals;
};

/// Answer to a k-nearest-live-segments query. Empty (epoch_id 0) before
/// the first publish; fewer than k rows when the epoch has fewer live
/// segments.
struct KNearestResult {
  std::uint64_t epoch_id = 0;
  SimTime epoch_time = 0.0;
  std::vector<NearestSegment> nearest;  ///< ordered by (distance, key)
};

class QueryService {
 public:
  explicit QueryService(const EpochPublisher& publisher,
                        QueryServiceConfig config = {});

  /// One segment's fused speed and display level from the current epoch.
  SegmentSpeedResult segment_speed(const SegmentKey& key) const;

  /// Arrival predictions for every stop after `from_index`, departing that
  /// stop at `departure`, against the current epoch's speeds (epoch time is
  /// the staleness reference, exactly as a snapshot-based prediction).
  RouteEtaResult route_eta(const BusRoute& route, int from_index,
                           SimTime departure) const;

  /// Aggregate speed/coverage over a bounding box from the current epoch.
  RegionAggregate region_aggregate(const BoundingBox& box) const;

  /// The k live segments nearest `p` (planar-frame metres, midpoint
  /// distance) from the current epoch, via the publisher grid's expanding
  /// ring walk — bit-identical to a brute-force scan of the epoch's map.
  KNearestResult k_nearest_live_segments(Point p, std::size_t k) const;
  KNearestResult k_nearest_live_segments(double x, double y,
                                         std::size_t k) const {
    return k_nearest_live_segments(Point{x, y}, k);
  }

  /// Escape hatch: hold one epoch across several lookups (e.g. a display
  /// frame). The pin must be released on this thread.
  EpochPublisher::Pin pin() const { return publisher_->pin(); }

  const EpochPublisher& publisher() const { return *publisher_; }
  const ArrivalPredictor& predictor() const { return predictor_; }
  const QueryServiceConfig& config() const { return config_; }

  /// Query-side instruments: queries.{segment,eta,region,knearest}
  /// counters, queries.no_epoch, query.latency.{segment,eta,region,
  /// knearest} histograms. Empty when observability is disabled.
  const MetricsRegistry& metrics() const { return *metrics_; }
  MetricsRegistry& metrics_registry() { return *metrics_; }

 private:
  const EpochPublisher* publisher_;
  QueryServiceConfig config_;
  ArrivalPredictor predictor_;
  std::unique_ptr<MetricsRegistry> metrics_;
  struct Instruments {
    Counter* segment = nullptr;
    Counter* eta = nullptr;
    Counter* region = nullptr;
    Counter* knearest = nullptr;
    Counter* no_epoch = nullptr;
    BucketHistogram* lat_segment = nullptr;
    BucketHistogram* lat_eta = nullptr;
    BucketHistogram* lat_region = nullptr;
    BucketHistogram* lat_knearest = nullptr;
  };
  Instruments inst_;
};

}  // namespace bussense
