// Region-level traffic inference (paper Section VI, future work).
//
// "Future work includes deriving the overall traffic of a region from the
// bus covered road segments" — the bus network observes >50% of the road
// length; this module extends the live traffic map to the *whole* network
// by congestion transfer: each observed segment contributes its congestion
// level (1 − v/free-speed) to nearby unobserved links through a Gaussian
// spatial kernel, weighted up when road classes match (arterials congest
// like arterials, side streets like side streets). An unobserved link's
// speed is its own free speed scaled by the interpolated congestion.
#pragma once

#include <vector>

#include "citynet/city.h"
#include "core/segment_catalog.h"
#include "core/traffic_map.h"

namespace bussense {

struct RegionInferenceConfig {
  double kernel_bandwidth_m = 900.0;  ///< spatial correlation of congestion
  /// Affinity multiplier for congestion transfer between different road
  /// classes (same class = 1).
  double cross_class_affinity = 0.4;
  /// Below this total kernel weight the inference abstains for a link.
  double min_total_weight = 0.05;
};

struct LinkTrafficEstimate {
  SegmentId link = kInvalidSegment;
  double speed_kmh = 0.0;
  double congestion = 0.0;   ///< inferred 1 − v/free
  double confidence = 0.0;   ///< saturating function of kernel mass
  bool observed = false;     ///< true if a live map segment covers the link
};

class RegionInference {
 public:
  RegionInference(const City& city, const SegmentCatalog& catalog,
                  RegionInferenceConfig config = {});

  /// Extends a traffic-map snapshot to every link of the road network.
  /// Links without enough nearby evidence are omitted.
  std::vector<LinkTrafficEstimate> infer(const TrafficMap& map) const;

  const RegionInferenceConfig& config() const { return config_; }

 private:
  const City* city_;
  const SegmentCatalog* catalog_;
  RegionInferenceConfig config_;
  std::vector<Point> link_midpoints_;
};

}  // namespace bussense
