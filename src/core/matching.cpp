#include "core/matching.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace bussense {

namespace {

// Scratch buffers reused across calls. The hot path — StopMatcher scoring a
// sample against many candidate records — used to heap-allocate a fresh DP
// matrix per pair; for ≤7-cell fingerprints that allocation dominated the
// arithmetic. thread_local (not static) because the concurrent server calls
// similarity() from many ingestion workers at once.
thread_local std::vector<double> t_rows;          ///< 2 rolling rows (double DP)
thread_local std::vector<std::int32_t> t_rows10;  ///< 2 rolling rows (fixed DP)
thread_local std::vector<double> t_matrix;        ///< full H (align only)
thread_local std::vector<std::uint8_t> t_dir;     ///< per-cell direction

// Traceback directions recorded while filling the matrix. Storing the
// argmax as a byte (instead of re-deriving it from float equality on
// accumulated doubles at traceback time) keeps match/mismatch/gap counts
// exact regardless of how the scores were rounded.
enum Dir : std::uint8_t { kStop = 0, kDiag = 1, kUp = 2, kLeft = 3 };

// int16-exact fixed-point variant of the rolling DP below. The rows are kept
// as int32 for convenience — with fixed_point_usable() holding, every cell
// value fits int16, so this computes exactly what the 16-bit SIMD lanes of
// core/matching_simd.cpp compute.
double similarity_fixed(const Fingerprint& upload, const Fingerprint& database,
                        const FixedScores& fs) {
  const std::size_t n = upload.cells.size();
  const std::size_t m = database.cells.size();
  if (t_rows10.size() < 2 * (m + 1)) t_rows10.resize(2 * (m + 1));
  std::int32_t* prev = t_rows10.data();
  std::int32_t* cur = prev + (m + 1);
  std::fill(prev, prev + m + 1, 0);
  cur[0] = 0;
  std::int32_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const CellId ai = upload.cells[i - 1];
    for (std::size_t j = 1; j <= m; ++j) {
      const bool eq = ai == database.cells[j - 1];
      const std::int32_t diag = prev[j - 1] + (eq ? fs.match : -fs.mismatch);
      const std::int32_t up = prev[j] - fs.gap;
      const std::int32_t left = cur[j - 1] - fs.gap;
      const std::int32_t v = std::max({0, diag, up, left});
      cur[j] = v;
      if (v > best) best = v;
    }
    std::swap(prev, cur);
  }
  return fixed_to_score(best);
}

}  // namespace

FixedScores quantize_scores(const MatchingConfig& config) {
  FixedScores fs;
  const auto quantize = [](double v, std::int16_t& out) {
    if (!std::isfinite(v) || std::abs(v) > 3276.7) return false;
    const long long deci = std::llround(v * kFixedPointScale);
    // Round-trip check: the parameter must BE an exact multiple of 0.1 (as
    // doubles), or fixed-point scores would diverge from the double DP.
    if (static_cast<double>(deci) / static_cast<double>(kFixedPointScale) != v) {
      return false;
    }
    out = static_cast<std::int16_t>(deci);
    return true;
  };
  fs.exact = quantize(config.match_score, fs.match) &&
             quantize(config.mismatch_penalty, fs.mismatch) &&
             quantize(config.gap_penalty, fs.gap);
  if (!fs.exact) fs = FixedScores{};
  return fs;
}

bool fixed_point_usable(const FixedScores& scores, std::size_t min_len) {
  // Non-negative penalties keep every DP cell in [0, match·min_len] (the
  // max() clamps at 0 and a match adds at most `match` per diagonal step),
  // so int16 lanes cannot overflow when the best attainable score fits.
  return scores.exact && scores.match >= 0 && scores.mismatch >= 0 &&
         scores.gap >= 0 &&
         static_cast<long long>(scores.match) *
                 static_cast<long long>(min_len) <=
             32767;
}

double similarity(const Fingerprint& upload, const Fingerprint& database,
                  const MatchingConfig& config) {
  if (upload.empty() || database.empty()) return 0.0;
  const std::size_t n = upload.cells.size();
  const std::size_t m = database.cells.size();
  const FixedScores fs = quantize_scores(config);
  if (fixed_point_usable(fs, std::min(n, m))) {
    return similarity_fixed(upload, database, fs);
  }
  // Two-row rolling DP: only the previous row is needed for the recurrence,
  // and nothing is read back after the sweep, so the full (n+1)x(m+1)
  // matrix never materialises and warm calls allocate nothing.
  if (t_rows.size() < 2 * (m + 1)) t_rows.resize(2 * (m + 1));
  double* prev = t_rows.data();
  double* cur = prev + (m + 1);
  std::fill(prev, prev + m + 1, 0.0);
  cur[0] = 0.0;  // column 0 stays 0 in both rows for the whole sweep
  double best = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    const CellId ai = upload.cells[i - 1];
    for (std::size_t j = 1; j <= m; ++j) {
      const bool eq = ai == database.cells[j - 1];
      const double diag =
          prev[j - 1] + (eq ? config.match_score : -config.mismatch_penalty);
      const double up = prev[j] - config.gap_penalty;
      const double left = cur[j - 1] - config.gap_penalty;
      const double v = std::max({0.0, diag, up, left});
      cur[j] = v;
      if (v > best) best = v;
    }
    std::swap(prev, cur);
  }
  return best;
}

Alignment align(const Fingerprint& upload, const Fingerprint& database,
                const MatchingConfig& config) {
  Alignment out;
  if (upload.empty() || database.empty()) return out;
  const std::size_t rows = upload.cells.size() + 1;
  const std::size_t cols = database.cells.size() + 1;
  t_matrix.assign(rows * cols, 0.0);
  t_dir.assign(rows * cols, kStop);
  auto H = [&](std::size_t i, std::size_t j) -> double& {
    return t_matrix[i * cols + j];
  };
  auto D = [&](std::size_t i, std::size_t j) -> std::uint8_t& {
    return t_dir[i * cols + j];
  };
  double best = 0.0;
  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i < rows; ++i) {
    for (std::size_t j = 1; j < cols; ++j) {
      const bool eq = upload.cells[i - 1] == database.cells[j - 1];
      const double diag =
          H(i - 1, j - 1) + (eq ? config.match_score : -config.mismatch_penalty);
      const double up = H(i - 1, j) - config.gap_penalty;
      const double left = H(i, j - 1) - config.gap_penalty;
      const double v = std::max({0.0, diag, up, left});
      H(i, j) = v;
      // Comparing v against the operands it was just maximised over is
      // exact; tie order (diag, up, left) fixes the reported alignment.
      if (v <= 0.0) {
        D(i, j) = kStop;
      } else if (v == diag) {
        D(i, j) = kDiag;
      } else if (v == up) {
        D(i, j) = kUp;
      } else {
        D(i, j) = kLeft;
      }
      if (v > best) {
        best = v;
        best_i = i;
        best_j = j;
      }
    }
  }
  out.score = best;
  std::size_t i = best_i, j = best_j;
  while (i > 0 && j > 0 && D(i, j) != kStop) {
    switch (D(i, j)) {
      case kDiag:
        (upload.cells[i - 1] == database.cells[j - 1]) ? ++out.matches
                                                       : ++out.mismatches;
        --i;
        --j;
        break;
      case kUp:
        ++out.gaps;
        --i;
        break;
      default:  // kLeft
        ++out.gaps;
        --j;
        break;
    }
  }
  return out;
}

double max_similarity(const Fingerprint& a, const Fingerprint& b,
                      const MatchingConfig& config) {
  return config.match_score *
         static_cast<double>(std::min(a.cells.size(), b.cells.size()));
}

}  // namespace bussense
