#include "core/matching.h"

#include <algorithm>

namespace bussense {

namespace {

/// Fills the DP matrix; returns the best cell value and its position.
/// H is (n+1) x (m+1), row-major, H[0][*] = H[*][0] = 0.
struct DpResult {
  std::vector<double> h;
  std::size_t rows = 0, cols = 0;
  double best = 0.0;
  std::size_t best_i = 0, best_j = 0;
};

DpResult run_dp(const Fingerprint& a, const Fingerprint& b,
                const MatchingConfig& config) {
  DpResult r;
  r.rows = a.cells.size() + 1;
  r.cols = b.cells.size() + 1;
  r.h.assign(r.rows * r.cols, 0.0);
  auto H = [&](std::size_t i, std::size_t j) -> double& {
    return r.h[i * r.cols + j];
  };
  for (std::size_t i = 1; i < r.rows; ++i) {
    for (std::size_t j = 1; j < r.cols; ++j) {
      const bool eq = a.cells[i - 1] == b.cells[j - 1];
      const double diag =
          H(i - 1, j - 1) + (eq ? config.match_score : -config.mismatch_penalty);
      const double up = H(i - 1, j) - config.gap_penalty;
      const double left = H(i, j - 1) - config.gap_penalty;
      const double v = std::max({0.0, diag, up, left});
      H(i, j) = v;
      if (v > r.best) {
        r.best = v;
        r.best_i = i;
        r.best_j = j;
      }
    }
  }
  return r;
}

}  // namespace

double similarity(const Fingerprint& upload, const Fingerprint& database,
                  const MatchingConfig& config) {
  if (upload.empty() || database.empty()) return 0.0;
  return run_dp(upload, database, config).best;
}

Alignment align(const Fingerprint& upload, const Fingerprint& database,
                const MatchingConfig& config) {
  Alignment out;
  if (upload.empty() || database.empty()) return out;
  const DpResult r = run_dp(upload, database, config);
  out.score = r.best;
  // Traceback from the best cell to the first zero cell.
  auto H = [&](std::size_t i, std::size_t j) {
    return r.h[i * r.cols + j];
  };
  std::size_t i = r.best_i, j = r.best_j;
  while (i > 0 && j > 0 && H(i, j) > 0.0) {
    const bool eq = upload.cells[i - 1] == database.cells[j - 1];
    const double diag =
        H(i - 1, j - 1) + (eq ? config.match_score : -config.mismatch_penalty);
    if (H(i, j) == diag) {
      eq ? ++out.matches : ++out.mismatches;
      --i;
      --j;
    } else if (H(i, j) == H(i - 1, j) - config.gap_penalty) {
      ++out.gaps;
      --i;
    } else {
      ++out.gaps;
      --j;
    }
  }
  return out;
}

double max_similarity(const Fingerprint& a, const Fingerprint& b,
                      const MatchingConfig& config) {
  return config.match_score *
         static_cast<double>(std::min(a.cells.size(), b.cells.size()));
}

}  // namespace bussense
