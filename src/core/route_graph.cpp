#include "core/route_graph.h"

namespace bussense {

RouteGraph::RouteGraph(const City& city) {
  sequences_.reserve(city.routes().size());
  for (const BusRoute& route : city.routes()) {
    std::vector<StopId> seq;
    seq.reserve(route.stop_count());
    for (const RouteStop& rs : route.stops()) {
      seq.push_back(city.effective_stop(rs.stop));
    }
    for (std::size_t i = 0; i < seq.size(); ++i) {
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        behind_.insert(key(seq[i], seq[j]));
      }
    }
    sequences_.push_back(std::move(seq));
  }
}

bool RouteGraph::reachable(StopId x, StopId y) const {
  return behind_.contains(key(x, y));
}

int RouteGraph::relation(StopId x, StopId y) const {
  if (x == y) return 1;
  return reachable(x, y) ? 1 : -1;
}

}  // namespace bussense
