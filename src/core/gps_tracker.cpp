#include "core/gps_tracker.h"

#include <algorithm>
#include <optional>

namespace bussense {

GpsTracker::GpsTracker(const SegmentCatalog& catalog, AttModelConfig att_config)
    : catalog_(&catalog), estimator_(catalog, att_config) {}

std::vector<double> GpsTracker::matched_arcs(
    const BusRoute& route,
    const std::vector<std::pair<SimTime, Point>>& fixes) const {
  std::vector<double> arcs;
  arcs.reserve(fixes.size());
  for (const auto& [t, p] : fixes) {
    (void)t;
    arcs.push_back(route.path().project(p).arc_length);
  }
  // A bus never moves backwards along its route; clamp regressions caused
  // by GPS scatter (running maximum = isotonic projection good enough here).
  for (std::size_t i = 1; i < arcs.size(); ++i) {
    arcs[i] = std::max(arcs[i], arcs[i - 1]);
  }
  return arcs;
}

std::vector<SpeedEstimate> GpsTracker::estimate(
    const BusRoute& route,
    const std::vector<std::pair<SimTime, Point>>& fixes) const {
  std::vector<SpeedEstimate> out;
  if (fixes.size() < 2) return out;
  const std::vector<double> arcs = matched_arcs(route, fixes);

  // Passage time at an arc position by linear interpolation of (arc, time).
  auto passage_time = [&](double arc) -> std::optional<SimTime> {
    if (arc < arcs.front() || arc > arcs.back()) return std::nullopt;
    const auto it = std::lower_bound(arcs.begin(), arcs.end(), arc);
    const std::size_t hi = static_cast<std::size_t>(it - arcs.begin());
    if (hi == 0) return fixes.front().first;
    const std::size_t lo = hi - 1;
    const double span = arcs[hi] - arcs[lo];
    const double f = span > 0.0 ? (arc - arcs[lo]) / span : 0.0;
    return fixes[lo].first + f * (fixes[hi].first - fixes[lo].first);
  };

  const City& city = catalog_->city();
  for (std::size_t k = 0; k + 1 < route.stop_count(); ++k) {
    const double arc_a = route.stop_arc(static_cast<int>(k));
    const double arc_b = route.stop_arc(static_cast<int>(k) + 1);
    const auto t_a = passage_time(arc_a);
    const auto t_b = passage_time(arc_b);
    if (!t_a || !t_b || *t_b <= *t_a) continue;
    const SegmentKey key{
        city.effective_stop(route.stops()[k].stop),
        city.effective_stop(route.stops()[k + 1].stop)};
    const SpanInfo* info = catalog_->adjacent(key);
    if (!info) continue;
    // GPS cannot separate dwell from travel, so BTT here includes the dwell
    // at the upstream stop — a structural error source of this baseline.
    const double btt = *t_b - *t_a;
    const double att =
        estimator_.att_seconds(btt, info->length_m, info->free_speed_kmh);
    if (att <= 0.0) continue;
    SpeedEstimate e;
    e.segment = key;
    e.route = route.id();
    e.time = 0.5 * (*t_a + *t_b);
    e.att_speed_kmh = (info->length_m / 1000.0) / (att / 3600.0);
    e.btt_s = btt;
    e.span_length_m = info->length_m;
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace bussense
