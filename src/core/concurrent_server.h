// Thread-safe ingestion front end for the traffic server.
//
// The paper calls out "system scalability to support wider monitoring
// field" as a design consideration of the crowdsourcing framework. The
// heavy per-trip work — fingerprint matching, clustering, ML mapping,
// travel-time extraction — is a pure function of immutable state (the stop
// database, route graph and segment catalog), so worker threads run it
// without synchronisation. The mutable half is contention-free too:
//
//   * each worker thread buffers its speed estimates in a private batch
//     and folds them into the shared fusion only when the batch reaches
//     `batch_flush_threshold` (or when advance_time() drains all batches);
//   * the shared fusion is striped — segments are hashed across
//     independently locked SpeedFusion shards — so even simultaneous folds
//     rarely touch the same lock.
//
// Determinism is preserved end to end: SpeedFusion batches observations
// per 5-minute period and sums each period's estimates in sorted order, so
// the fused map depends only on the multiset of ingested estimates — any
// thread count, interleaving or batching yields bit-identical results,
// provided advance_time(now) is only called once every estimate older than
// `now`'s period has been ingested (the same contract a single-threaded
// deployment has).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/server.h"
#include "core/traffic_ingestor.h"

namespace bussense {

struct ConcurrentServerConfig {
  std::size_t fusion_stripes = 16;         ///< independently locked shards
  std::size_t batch_flush_threshold = 32;  ///< estimates buffered per thread

  /// Throws std::invalid_argument on nonsense (zero stripes or a zero
  /// flush threshold would deadlock/divide the fusion into nothing).
  void validate() const;
};

class ConcurrentTrafficServer : public TrafficIngestor {
 public:
  ConcurrentTrafficServer(const City& city, StopDatabase database,
                          ServerConfig config = {},
                          ConcurrentServerConfig concurrency = {});

  /// Full pipeline for one trip; safe to call from any thread.
  TripReport process_trip(const TripUpload& trip) override;

  /// Drains every thread's pending batch, then closes fusion periods up to
  /// `now` (thread-safe).
  void advance_time(SimTime now) override;

  /// Drains every thread's pending batch into the striped fusion without
  /// closing any period (thread-safe; graceful-shutdown hook for the async
  /// ingest service).
  void flush_batches();

  /// Snapshot of the shared map (thread-safe). Reflects estimates whose
  /// period a previous advance_time() closed, exactly as the serial server.
  TrafficMap snapshot(SimTime now, double max_age_s = 3600.0) const override;

  /// Publishes the striped fused state as a serving epoch (thread-safe;
  /// same visibility as snapshot()).
  std::uint64_t publish_epoch(EpochPublisher& publisher, SimTime now,
                              double max_age_s = 3600.0) const override;

  /// Durable lifecycle (core/traffic_ingestor.h). The WAL/checkpoint
  /// manager lives here, not in the inner server (whose durability config
  /// is stripped), so the log records exactly the uploads this front end
  /// admitted. checkpoint() requires quiescence — no concurrent
  /// process_trip() — same contract as advance_time().
  RecoveryReport open() override;
  std::uint64_t checkpoint() override;
  void close() override;

  /// Recovery hooks for the sharded wrapper (core/ingest_service.h), which
  /// owns per-shard WAL segments and admission but folds into this
  /// backend's fusion. Call only while quiescent.
  std::vector<FusionExportEntry> export_fusion() const {
    return fusion_.export_state();
  }
  void restore_fusion(const std::vector<FusionExportEntry>& entries) {
    fusion_.restore_state(entries);
  }
  void set_trips_processed(std::uint64_t n) {
    trips_processed_.store(n, std::memory_order_relaxed);
  }

  const MetricsRegistry& metrics() const override { return inner_.metrics(); }
  /// Shared registry (thread-safe instruments; see TrafficServer).
  MetricsRegistry& metrics_registry() { return inner_.metrics_registry(); }

  /// The pipeline-wide admission stage (null when disabled); lives in the
  /// inner server so serial and concurrent uploads share dedup/skew state.
  AdmissionController* admission() { return inner_.admission(); }
  const AdmissionController* admission() const { return inner_.admission(); }

  const SegmentCatalog& catalog() const override { return inner_.catalog(); }
  /// The shared fusion state (striped, safe to query concurrently).
  const StripedSpeedFusion& fusion() const { return fusion_; }
  std::uint64_t trips_processed() const override {
    return trips_processed_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadBatch {
    std::mutex mutex;  ///< guards pending against concurrent drains
    std::vector<SpeedEstimate> pending;
  };

  ThreadBatch& local_batch();
  void fold_batch(const std::vector<SpeedEstimate>& batch);
  void apply_recovered(const WalRecord& record, RecoveryReport* report);

  // TrafficServer's stateless analysis stages are reused; its own fusion
  // state stays empty — all folds go through the striped fusion below.
  TrafficServer inner_;
  ConcurrentServerConfig concurrency_;
  StripedSpeedFusion fusion_;
  std::atomic<std::uint64_t> trips_processed_{0};

  // Durability (null when disabled); the inner server's copy of the config
  // has durability stripped so only this front end touches the directory.
  std::unique_ptr<DurabilityManager> durability_;
  std::atomic<bool> opened_{false};
  std::atomic<bool> closed_{false};

  const std::uint64_t server_id_;  ///< key for thread-local batch lookup
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBatch>> batches_;

  // This front end skips inner_.process_trip() (the fold goes to the
  // striped fusion), so it records the trip-level instruments itself —
  // same names, one registry. Null when observability is disabled.
  struct Instruments {
    Counter* trips = nullptr;
    BucketHistogram* trip_s = nullptr;
    BucketHistogram* fold_s = nullptr;
  };
  Instruments inst_;
};

}  // namespace bussense
