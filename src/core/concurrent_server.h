// Thread-safe ingestion front end for the traffic server.
//
// The paper calls out "system scalability to support wider monitoring
// field" as a design consideration of the crowdsourcing framework. The
// heavy per-trip work — fingerprint matching, clustering, ML mapping,
// travel-time extraction — is a pure function of immutable state (the stop
// database, route graph and segment catalog), so worker threads run it
// without synchronisation; only folding estimates into the shared fusion
// state takes a lock. Because the fusion batches observations per 5-minute
// period with an order-insensitive sum, concurrent ingestion is
// *deterministic*: any arrival order yields the same fused map.
#pragma once

#include <mutex>

#include "core/server.h"

namespace bussense {

class ConcurrentTrafficServer {
 public:
  ConcurrentTrafficServer(const City& city, StopDatabase database,
                          ServerConfig config = {});

  /// Full pipeline for one trip; safe to call from any thread.
  TrafficServer::TripReport process_trip(const TripUpload& trip);

  /// Closes fusion batches up to `now` (thread-safe).
  void advance_time(SimTime now);

  /// Snapshot of the shared map (thread-safe).
  TrafficMap snapshot(SimTime now, double max_age_s = 3600.0) const;

  const SegmentCatalog& catalog() const { return inner_.catalog(); }
  const SpeedFusion& fusion_unsafe() const { return inner_.fusion(); }
  std::uint64_t trips_processed() const;

 private:
  // TrafficServer's stateless stages are reused; its fusion state is only
  // touched under the mutex.
  TrafficServer inner_;
  mutable std::mutex mutex_;
  std::uint64_t trips_processed_ = 0;
};

}  // namespace bussense
