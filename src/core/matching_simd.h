// Runtime-dispatched batch-scoring kernel for the fixed-point matcher DP
// (DESIGN.md §12).
//
// One upload sample is scored against `batch_width()` candidate fingerprints
// at once: each SIMD lane runs one candidate's two-row Smith–Waterman in
// int16 deci-score units (core/matching.h FixedScores), sharing the sweep
// over the upload. Because the arithmetic is exact integer math, every
// kernel — AVX2 (16 lanes), NEON (8 lanes) and the portable scalar batch —
// produces bit-identical scores, and all of them match the scalar
// similarity() fixed-point path. The instruction set is picked at runtime
// (no ISA assumptions are baked into the build): AVX2 code is compiled via
// the `target` function attribute and only entered after a cpuid check.
//
// Candidates are fed as *quantized ranks* (StopDatabase::QuantizedView):
// cell IDs remapped to dense small ints so a lane compare is one 16-bit
// equality instead of a 32-bit id compare, and the batch rows pack twice as
// many candidates per vector.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/matching.h"

namespace bussense::simd {

/// Rank sentinels. Database ranks are >= 0; an upload cell the dictionary
/// never saw maps to kUnknownRank and an unused batch lane is padded with
/// kPadRank — the three never compare equal, so unknown cells mismatch
/// everything and pad lanes score 0.
inline constexpr std::int16_t kUnknownRank = -1;
inline constexpr std::int16_t kPadRank = -2;

enum class Kernel : std::uint8_t { kAuto = 0, kScalar = 1, kAvx2 = 2, kNeon = 3 };

/// The kernel kAuto resolves to on this host (never returns kAuto). Decided
/// once per process from compiled-in support + a runtime CPU check.
Kernel active_kernel();

/// True when `kernel` can run on this host/build (kScalar always can).
bool kernel_available(Kernel kernel);

const char* kernel_name(Kernel kernel);

/// Lanes scored per score_batch call: 16 for AVX2, 8 for NEON and the
/// portable scalar batch.
std::size_t batch_width(Kernel kernel = Kernel::kAuto);

/// Scores one quantized upload (`upload[0..n)`) against batch_width(kernel)
/// candidates of identical length `m`, laid out TRANSPOSED: db_t[j * width +
/// lane] is lane `lane`'s j-th rank. Writes each lane's best local-alignment
/// score in deci-units to scores10[0..width). Preconditions:
/// fixed_point_usable(fs, min(n, m)); `kernel` available on this host.
/// Thread-safe (thread-local scratch), allocation-free on warm calls.
void score_batch(const std::int16_t* upload, std::size_t n,
                 const std::int16_t* db_t, std::size_t m,
                 const FixedScores& fs, std::int16_t* scores10,
                 Kernel kernel = Kernel::kAuto);

}  // namespace bussense::simd
