// Backend traffic-monitoring server: the full pipeline of Figure 4.
//
// receive trip → per-sample matching (γ filter) → per-bus-stop clustering →
// per-trip ML mapping under route constraints → travel time extraction →
// BTT→ATT model → Bayesian fusion → traffic map.
#pragma once

#include <cstdint>

#include "citynet/city.h"
#include "core/clustering.h"
#include "core/fusion.h"
#include "core/route_graph.h"
#include "core/segment_catalog.h"
#include "core/stop_matcher.h"
#include "core/traffic_map.h"
#include "core/travel_estimator.h"
#include "core/trip_mapper.h"
#include "sensing/trip.h"

namespace bussense {

struct ServerConfig {
  StopMatcherConfig matcher;
  ClusteringConfig clustering;
  AttModelConfig att;
  FusionConfig fusion;
  /// Ablation switches (DESIGN.md A1/A5): when disabled, the pipeline falls
  /// back to per-sample best matches / singleton clusters.
  bool enable_trip_mapping = true;
  bool enable_clustering = true;
};

class TrafficServer {
 public:
  TrafficServer(const City& city, StopDatabase database,
                ServerConfig config = {});

  /// Everything the pipeline derived from one trip (kept for evaluation).
  struct TripReport {
    std::vector<MatchedSample> matched;    ///< samples that passed γ
    std::size_t rejected_samples = 0;      ///< below-γ samples discarded
    MappedTrip mapped;                     ///< stop per cluster
    std::vector<SpeedEstimate> estimates;  ///< per adjacent segment
  };

  /// Runs the full pipeline and folds the estimates into the fusion state.
  TripReport process_trip(const TripUpload& trip);

  /// The pure analysis part of process_trip: match → cluster → map →
  /// estimate, touching no mutable state. Thread-safe against itself; the
  /// concurrent front end (core/concurrent_server.h) builds on this split.
  TripReport analyze_trip(const TripUpload& trip) const;

  /// Folds estimates into the fusion state (the mutable half).
  void ingest(const std::vector<SpeedEstimate>& estimates);

  /// Pipeline stages exposed individually (benches and ablations).
  std::vector<MatchedSample> match_samples(const TripUpload& trip,
                                           std::size_t* rejected = nullptr) const;
  std::vector<SampleCluster> cluster(const std::vector<MatchedSample>&) const;
  MappedTrip map(const std::vector<SampleCluster>&) const;

  void advance_time(SimTime now) { fusion_.flush_until(now); }
  TrafficMap snapshot(SimTime now, double max_age_s = 3600.0) const;

  const City& city() const { return *city_; }
  const StopDatabase& database() const { return database_; }
  const SegmentCatalog& catalog() const { return catalog_; }
  const SpeedFusion& fusion() const { return fusion_; }
  const RouteGraph& route_graph() const { return route_graph_; }
  std::uint64_t trips_processed() const { return trips_processed_; }

 private:
  const City* city_;
  StopDatabase database_;
  ServerConfig config_;
  RouteGraph route_graph_;
  SegmentCatalog catalog_;
  StopMatcher matcher_;
  TripMapper mapper_;
  TravelEstimator estimator_;
  SpeedFusion fusion_;
  std::uint64_t trips_processed_ = 0;
};

}  // namespace bussense
