// Backend traffic-monitoring server: the full pipeline of Figure 4.
//
// receive trip → per-sample matching (γ filter) → per-bus-stop clustering →
// per-trip ML mapping under route constraints → travel time extraction →
// BTT→ATT model → Bayesian fusion → traffic map.
//
// TrafficServer is the serial front end of the TrafficIngestor interface
// (core/traffic_ingestor.h); ConcurrentTrafficServer and IngestService
// build on its stateless analyze_trip() split. Every pipeline stage
// reports throughput, rejection counts and latency into the server's
// MetricsRegistry (disable via ServerConfig::Observability — results are
// bit-identical either way).
#pragma once

#include <cstdint>
#include <memory>

#include "citynet/city.h"
#include "core/admission.h"
#include "core/checkpoint.h"
#include "core/clustering.h"
#include "core/config_common.h"
#include "core/fusion.h"
#include "core/route_graph.h"
#include "core/segment_catalog.h"
#include "core/stop_matcher.h"
#include "core/traffic_ingestor.h"
#include "core/traffic_map.h"
#include "core/travel_estimator.h"
#include "core/trip_mapper.h"
#include "obs/metrics.h"
#include "sensing/trip.h"

namespace bussense {

struct ServerConfig {
  StopMatcherConfig matcher;
  ClusteringConfig clustering;
  AttModelConfig att;
  FusionConfig fusion;

  /// Shared nested blocks (core/config_common.h); the aliases keep the
  /// historical `ServerConfig::Stages{...}` spellings source-compatible.
  using Stages = StagesConfig;
  using Observability = ObservabilityConfig;
  Stages stages;
  Observability obs;

  /// Write-ahead trip log + checkpoint/restore (DESIGN.md §14). Off by
  /// default; when enabled the front end gains the
  /// open()/checkpoint()/close() lifecycle and every admitted upload is
  /// logged before its estimates are applied.
  DurabilityConfig durability;

  /// Admission control (core/admission.h): replay dedup, sanity bounds and
  /// clock-skew re-anchoring before any pipeline work. Off by default; on
  /// a clean workload the pipeline is bit-identical with it on or off
  /// (property-tested), so enabling it only ever costs the checks.
  AdmissionConfig admission;

  /// Validates the whole nested config tree (matcher scores, clustering
  /// scales, fusion periods); throws std::invalid_argument on nonsense
  /// such as a non-positive fusion update period. One call checks
  /// everything — the single entry point for all front ends.
  void validate() const;
};

class TrafficServer : public TrafficIngestor {
 public:
  TrafficServer(const City& city, StopDatabase database,
                ServerConfig config = {});

  /// Compatibility alias: the report type now lives with the interface.
  using TripReport = bussense::TripReport;

  /// Runs the full pipeline and folds the estimates into the fusion state.
  TripReport process_trip(const TripUpload& trip) override;

  /// The pure analysis part of process_trip: match → cluster → map →
  /// estimate, touching no mutable state. Thread-safe against itself; the
  /// concurrent front end (core/concurrent_server.h) builds on this split.
  TripReport analyze_trip(const TripUpload& trip) const;

  /// Folds estimates into the fusion state (the mutable half).
  void ingest(const std::vector<SpeedEstimate>& estimates);

  /// Pipeline stages exposed individually (benches and ablations).
  std::vector<MatchedSample> match_samples(const TripUpload& trip,
                                           std::size_t* rejected = nullptr) const;
  std::vector<SampleCluster> cluster_samples(
      const std::vector<MatchedSample>& matched) const;
  MappedTrip map_trip(const std::vector<SampleCluster>& clusters) const;

  void advance_time(SimTime now) override;
  TrafficMap snapshot(SimTime now, double max_age_s = 3600.0) const override;
  std::uint64_t publish_epoch(EpochPublisher& publisher, SimTime now,
                              double max_age_s = 3600.0) const override;

  /// Durable lifecycle (core/traffic_ingestor.h). With durability disabled
  /// these are the base-class no-ops; with it enabled, open() recovers
  /// checkpoint + WAL-suffix state and process_trip() outside the
  /// open()..close() window is rejected with kShutdown.
  RecoveryReport open() override;
  std::uint64_t checkpoint() override;
  void close() override;

  /// The shared admission stage; null when ServerConfig::admission is
  /// disabled. The concurrent front end routes its uploads through this
  /// same controller so dedup/skew state is pipeline-wide.
  AdmissionController* admission() { return admission_.get(); }
  const AdmissionController* admission() const { return admission_.get(); }

  const MetricsRegistry& metrics() const override { return *metrics_; }
  /// Mutable registry access (front ends layered on top register their own
  /// instruments here so one export covers the whole pipeline).
  MetricsRegistry& metrics_registry() { return *metrics_; }

  const City& city() const { return *city_; }
  const StopDatabase& database() const { return database_; }
  const SegmentCatalog& catalog() const override { return catalog_; }
  const SpeedFusion& fusion() const { return fusion_; }
  const RouteGraph& route_graph() const { return route_graph_; }
  std::uint64_t trips_processed() const override { return trips_processed_; }

 private:
  const City* city_;
  StopDatabase database_;
  ServerConfig config_;
  RouteGraph route_graph_;
  SegmentCatalog catalog_;
  StopMatcher matcher_;
  TripMapper mapper_;
  TravelEstimator estimator_;
  SpeedFusion fusion_;
  std::unique_ptr<AdmissionController> admission_;
  std::uint64_t trips_processed_ = 0;

  // Durability (null when disabled). Destruction without close() models a
  // crash: the WAL keeps only what reached the fd per the fsync policy.
  std::unique_ptr<DurabilityManager> durability_;
  bool opened_ = false;
  bool closed_ = false;

  void apply_recovered(const WalRecord& record, RecoveryReport* report);

  // Observability: instruments cached at construction; all null-checked so
  // the disabled path costs one branch. Owned registry exists either way
  // (metrics() must always have something to return).
  std::unique_ptr<MetricsRegistry> metrics_;
  struct Instruments {
    Counter* trips = nullptr;
    Counter* samples_considered = nullptr;
    Counter* samples_rejected = nullptr;
    Counter* samples_matched = nullptr;
    Counter* clusters = nullptr;
    Counter* estimates = nullptr;
    BucketHistogram* match_s = nullptr;
    BucketHistogram* cluster_s = nullptr;
    BucketHistogram* map_s = nullptr;
    BucketHistogram* estimate_s = nullptr;
    BucketHistogram* fold_s = nullptr;
    BucketHistogram* trip_s = nullptr;
  };
  Instruments inst_;
};

}  // namespace bussense
