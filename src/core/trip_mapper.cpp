#include "core/trip_mapper.h"

#include <limits>
#include <stdexcept>

namespace bussense {

double TripMapper::sequence_score(const std::vector<SampleCluster>& clusters,
                                  const std::vector<int>& choice) const {
  if (choice.size() != clusters.size()) {
    throw std::invalid_argument("sequence_score: choice size mismatch");
  }
  double score = 0.0;
  for (std::size_t k = 0; k < clusters.size(); ++k) {
    const StopCandidate& c =
        clusters[k].candidates.at(static_cast<std::size_t>(choice[k]));
    const double term = c.probability * c.mean_similarity;
    if (k == 0) {
      score += term;
    } else {
      const StopCandidate& prev = clusters[k - 1].candidates.at(
          static_cast<std::size_t>(choice[k - 1]));
      score += term * graph_->relation(prev.stop, c.stop);
    }
  }
  return score;
}

MappedTrip TripMapper::map_trip(const std::vector<SampleCluster>& clusters) const {
  MappedTrip out;
  if (clusters.empty()) return out;
  const double neg_inf = -std::numeric_limits<double>::infinity();

  // value[k][c]: best objective of a prefix ending with candidate c of
  // cluster k; parent[k][c]: argmax predecessor.
  std::vector<std::vector<double>> value(clusters.size());
  std::vector<std::vector<int>> parent(clusters.size());
  for (std::size_t k = 0; k < clusters.size(); ++k) {
    if (clusters[k].candidates.empty()) {
      throw std::invalid_argument("map_trip: cluster without candidates");
    }
    value[k].assign(clusters[k].candidates.size(), neg_inf);
    parent[k].assign(clusters[k].candidates.size(), -1);
  }
  for (std::size_t c = 0; c < clusters[0].candidates.size(); ++c) {
    const StopCandidate& cand = clusters[0].candidates[c];
    value[0][c] = cand.probability * cand.mean_similarity;
  }
  for (std::size_t k = 1; k < clusters.size(); ++k) {
    for (std::size_t c = 0; c < clusters[k].candidates.size(); ++c) {
      const StopCandidate& cand = clusters[k].candidates[c];
      const double term = cand.probability * cand.mean_similarity;
      for (std::size_t p = 0; p < clusters[k - 1].candidates.size(); ++p) {
        const StopCandidate& prev = clusters[k - 1].candidates[p];
        const double v =
            value[k - 1][p] + term * graph_->relation(prev.stop, cand.stop);
        if (v > value[k][c]) {
          value[k][c] = v;
          parent[k][c] = static_cast<int>(p);
        }
      }
    }
  }
  // Select the best terminal candidate and trace back.
  std::size_t best_c = 0;
  const std::size_t last = clusters.size() - 1;
  for (std::size_t c = 1; c < clusters[last].candidates.size(); ++c) {
    if (value[last][c] > value[last][best_c]) best_c = c;
  }
  out.likelihood = value[last][best_c];
  std::vector<int> choice(clusters.size());
  int c = static_cast<int>(best_c);
  for (std::size_t k = clusters.size(); k-- > 0;) {
    choice[k] = c;
    c = parent[k][static_cast<std::size_t>(c)];
  }
  out.stops.reserve(clusters.size());
  for (std::size_t k = 0; k < clusters.size(); ++k) {
    out.stops.push_back(MappedCluster{
        clusters[k],
        clusters[k].candidates[static_cast<std::size_t>(choice[k])].stop});
  }
  return out;
}

MappedTrip TripMapper::map_trip_exhaustive(
    const std::vector<SampleCluster>& clusters) const {
  MappedTrip out;
  if (clusters.empty()) return out;
  std::vector<int> choice(clusters.size(), 0);
  std::vector<int> best_choice;
  double best = -std::numeric_limits<double>::infinity();
  while (true) {
    const double s = sequence_score(clusters, choice);
    if (s > best) {
      best = s;
      best_choice = choice;
    }
    // Advance the mixed-radix counter.
    std::size_t k = 0;
    for (; k < clusters.size(); ++k) {
      if (++choice[k] < static_cast<int>(clusters[k].candidates.size())) break;
      choice[k] = 0;
    }
    if (k == clusters.size()) break;
  }
  out.likelihood = best;
  for (std::size_t k = 0; k < clusters.size(); ++k) {
    out.stops.push_back(MappedCluster{
        clusters[k],
        clusters[k].candidates[static_cast<std::size_t>(best_choice[k])].stop});
  }
  return out;
}

}  // namespace bussense
